#!/usr/bin/env bash
# load_soak.sh — advisory load soak: a knowload fleet drives a live knowd
# daemon and, mid-run, the daemon is SIGKILLed and restarted over its
# write-through state. The retrying fleet must finish with zero failed
# ops, proving the exactly-once-across-restart contract holds outside the
# Go test harness too. Produces LOAD_REPORT.md for CI to upload.
#
# Tunables (env): LOAD_SOAK_SEED (default 1), LOAD_SOAK_WORKERS (4),
# LOAD_SOAK_SESSIONS (6), LOAD_SOAK_PACE (100ms — stretches the run so the
# crash lands mid-workload), LOAD_SOAK_ADDR (127.0.0.1:7461).
set -euo pipefail

cd "$(dirname "$0")/.."

SEED="${LOAD_SOAK_SEED:-1}"
WORKERS="${LOAD_SOAK_WORKERS:-4}"
SESSIONS="${LOAD_SOAK_SESSIONS:-6}"
PACE="${LOAD_SOAK_PACE:-100ms}"
ADDR="${LOAD_SOAK_ADDR:-127.0.0.1:7461}"

BIN="$(mktemp -d)"
STATE="$(mktemp -d)"
trap 'kill "$KNOWD_PID" 2>/dev/null || true; rm -rf "$BIN" "$STATE"' EXIT

go build -o "$BIN/knowd" ./cmd/knowd
go build -o "$BIN/knowctl" ./cmd/knowctl
go build -o "$BIN/knowload" ./cmd/knowload

start_knowd() {
    "$BIN/knowd" -addr "$ADDR" -state "$STATE" -write-through >>"$BIN/knowd.log" 2>&1 &
    KNOWD_PID=$!
    for _ in $(seq 1 200); do
        if "$BIN/knowctl" -addr "http://$ADDR" stats >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.05
    done
    echo "load_soak: knowd never became healthy" >&2
    cat "$BIN/knowd.log" >&2
    exit 1
}

start_knowd
echo "load_soak: knowd up as pid $KNOWD_PID, state in $STATE"

"$BIN/knowload" -addr "http://$ADDR" -seed "$SEED" -workers "$WORKERS" \
    -sessions "$SESSIONS" -pace "$PACE" -max-attempts 60 -report LOAD_REPORT.md &
LOAD_PID=$!

# Let the fleet get past its open phase and into the session bodies, then
# crash the daemon cold and bring it back over the same state.
sleep 1
echo "load_soak: SIGKILL knowd pid $KNOWD_PID mid-run"
kill -9 "$KNOWD_PID"
wait "$KNOWD_PID" 2>/dev/null || true
start_knowd
echo "load_soak: knowd restarted as pid $KNOWD_PID"

if ! wait "$LOAD_PID"; then
    echo "load_soak: knowload reported failed ops" >&2
    cat "$BIN/knowd.log" >&2
    exit 1
fi

"$BIN/knowctl" -addr "http://$ADDR" stats
kill -TERM "$KNOWD_PID"
wait "$KNOWD_PID" 2>/dev/null || true
echo "load_soak: done; report in LOAD_REPORT.md"
