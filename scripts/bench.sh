#!/usr/bin/env bash
# bench.sh — run the root benchmark suite and emit a JSON report
# (benchmark name -> ns/op, B/op, allocs/op) for the perf trajectory.
#
# Usage: scripts/bench.sh [output.json]
#        scripts/bench.sh --compare [previous.json]
#        scripts/bench.sh --readme
#
# Plain mode writes a report with a "current" section holding this run's
# numbers and, when a BENCH_BASELINE.json snapshot exists at the repo root
# (the numbers of the unoptimized seed), a "baseline" section copied from
# it, so speedups can be read off one file. The default output is
# BENCH_<N>.json at the repo root for the smallest N not yet taken
# (BENCH_1.json first).
#
# Compare mode runs a fresh suite (after one warmup pass, keeping the
# fastest of BENCH_COUNT timed runs per benchmark) against the "current"
# section of the given snapshot (default: the BENCH_<N>.json with the
# highest N). An ablation benchmark (BenchmarkAblation*) that is more than
# 25% slower in ns/op is re-measured in a second, targeted pass; the gate
# fails — exit 1 — only for regressions that reproduce there, so one load
# spike on a shared runner cannot fail the build while a real regression
# still does. A missing baseline is an error (exit 2), never a silent
# pass. The verdicts are also written as a markdown table to BENCH_DIFF.md
# (override with BENCH_DIFF) for CI artifact upload, the fresh numbers to
# BENCH_FRESH.json (override with BENCH_FRESH); BENCH_DIFF.md is truncated
# to a "did not complete" stub as soon as compare mode starts, so an
# aborted run can never leave a previous run's verdicts behind. On success
# the README benchmark-trajectory table is refreshed from the committed
# snapshots.
#
# Readme mode only regenerates the README table (between the
# "bench-table" markers) from BENCH_BASELINE.json and every committed
# BENCH_<N>.json, without running anything.
set -euo pipefail

cd "$(dirname "$0")/.."

REGRESSION_PCT=25

compare=0
readme_only=0
case "${1:-}" in
--compare)
    compare=1
    shift
    ;;
--readme)
    readme_only=1
    shift
    ;;
esac

# extract_current FILE — print "name ns_op" pairs from the "current"
# section of one of our reports (or from the whole file if it has no
# sections, as in BENCH_BASELINE.json).
extract_current() {
    awk '
    /"current":/ { in_current = 1 }
    in_current || !saw_section {
        if ($0 ~ /"Benchmark[^"]*": *\{/) {
            name = $0; sub(/^[ ]*"/, "", name); sub(/".*$/, "", name)
            ns = $0; sub(/.*"ns_op": */, "", ns); sub(/[,}].*$/, "", ns)
            print name, ns
        }
    }
    /"baseline":/ { saw_section = 1 }
    ' "$1"
}

# snap_pr SNAPNUM — the PR that recorded snapshot N. Snapshots are
# numbered densely (the compare gate discovers the latest one by counting
# up from 1), but not every PR records a snapshot, so the two sequences
# diverge: PRs 7-8 (serving layer, load harness) changed no benchmarked
# paths and recorded none.
snap_pr() {
    case "$1" in
    7) echo 9 ;;
    *) echo "$1" ;;
    esac
}

# readme_table rewrites the trajectory table between the bench-table
# markers of README.md: one row per ablation benchmark (plus the full
# experiment suite), one column per committed snapshot, and the overall
# seed→latest speedup.
readme_table() {
    local readme="README.md"
    [[ -f "$readme" ]] || return 0
    grep -q '<!-- bench-table:start -->' "$readme" || return 0
    local snaps=() labels=()
    if [[ -f BENCH_BASELINE.json ]]; then
        snaps+=(BENCH_BASELINE.json)
        labels+=(seed)
    fi
    local n=1
    while [[ -e "BENCH_${n}.json" ]]; do
        snaps+=("BENCH_${n}.json")
        labels+=("PR $(snap_pr "$n")")
        n=$((n + 1))
    done
    [[ "${#snaps[@]}" != 0 ]] || return 0

    local table
    table="$(
        for s in "${snaps[@]}"; do
            extract_current "$s" | awk -v src="$s" '{ print src, $1, $2 }'
        done | awk -v files="${snaps[*]}" -v labelstr="$(IFS='|'; echo "${labels[*]}")" '
        function fmt(ns) {
            if (ns == "") return "—"
            if (ns + 0 >= 1e9) return sprintf("%.2f s", ns / 1e9)
            if (ns + 0 >= 1e6) return sprintf("%.1f ms", ns / 1e6)
            if (ns + 0 >= 1e3) return sprintf("%.1f µs", ns / 1e3)
            return sprintf("%.0f ns", ns + 0)
        }
        BEGIN { nf = split(files, fname, " "); split(labelstr, lbl, "|") }
        {
            name = $2
            if (name !~ /^BenchmarkAblation/ && name != "BenchmarkAllExperiments") next
            if (!(name in seen)) { seen[name] = ++rows; order[rows] = name }
            val[name, $1] = $3
        }
        END {
            printf "| benchmark (ns/op, min of runs) |"
            for (i = 1; i <= nf; i++) printf " %s |", lbl[i]
            printf " speedup |\n|---|"
            for (i = 1; i <= nf; i++) printf "---|"
            printf "---|\n"
            for (r = 1; r <= rows; r++) {
                name = order[r]
                short = name
                sub(/^BenchmarkAblation/, "", short)
                sub(/^Benchmark/, "", short)
                printf "| %s |", short
                for (i = 1; i <= nf; i++) printf " %s |", fmt(val[name, fname[i]])
                first = val[name, fname[1]]
                last = ""
                for (i = nf; i >= 1; i--)
                    if (val[name, fname[i]] != "") { last = val[name, fname[i]]; break }
                if (first != "" && last != "" && last + 0 > 0)
                    printf " %.1f× |\n", first / last
                else
                    printf " — |\n"
            }
        }'
    )"
    local tmp
    tmp="$(mktemp)"
    awk -v table="$table" '
        /<!-- bench-table:start -->/ { print; print table; skip = 1; next }
        /<!-- bench-table:end -->/ { skip = 0 }
        !skip { print }
    ' "$readme" > "$tmp"
    mv "$tmp" "$readme"
    echo "refreshed benchmark table in $readme (${#snaps[@]} snapshots)"
}

if [[ "$readme_only" == 1 ]]; then
    readme_table
    exit 0
fi

# Each benchmark runs BENCH_COUNT times and the report keeps the fastest
# iteration — the noise-robust estimator on shared machines, where load
# spikes only ever slow a run down.
BENCH_COUNT="${BENCH_COUNT:-3}"

run_suite() { # run_suite RAWFILE
    go test -run='^$' -bench=. -benchmem -count="$BENCH_COUNT" . | tee "$1"
}

emit_json() { # emit_json RAWFILE OUTFILE
    {
        echo "{"
        if [[ -f BENCH_BASELINE.json ]]; then
            echo '  "baseline":'
            sed 's/^/  /' BENCH_BASELINE.json
            echo "  ,"
        fi
        echo '  "current":'
        awk '
        /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
            ns = ""; bytes = ""; allocs = ""
            for (i = 2; i <= NF; i++) {
                if ($i == "ns/op") ns = $(i - 1)
                if ($i == "B/op") bytes = $(i - 1)
                if ($i == "allocs/op") allocs = $(i - 1)
            }
            if (ns == "") next
            if (!(name in best) || ns + 0 < best[name] + 0) {
                best[name] = ns
                bbytes[name] = bytes
                ballocs[name] = allocs
            }
            if (!(name in order)) { order[name] = ++n; names[n] = name }
        }
        END {
            print "  {"
            for (i = 1; i <= n; i++) {
                name = names[i]
                printf "    \"%s\": {\"ns_op\": %s", name, best[name]
                if (bbytes[name] != "") printf ", \"b_op\": %s", bbytes[name]
                if (ballocs[name] != "") printf ", \"allocs_op\": %s", ballocs[name]
                printf "}"
                if (i < n) printf ","
                printf "\n"
            }
            print "  }"
        }
        ' "$1"
        echo "}"
    } > "$2"
}

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

if [[ "$compare" == 1 ]]; then
    prev="${1:-}"
    if [[ -z "$prev" ]]; then
        n=1
        while [[ -e "BENCH_${n}.json" ]]; do n=$((n + 1)); done
        if [[ "$n" == 1 ]]; then
            echo "bench.sh: no BENCH_<N>.json snapshot to compare against — run scripts/bench.sh once to record one" >&2
            exit 2
        fi
        prev="BENCH_$((n - 1)).json"
    fi
    if [[ ! -f "$prev" ]]; then
        echo "bench.sh: baseline snapshot $prev does not exist — nothing to compare against" >&2
        exit 2
    fi
    diffmd="${BENCH_DIFF:-BENCH_DIFF.md}"
    freshjson="${BENCH_FRESH:-BENCH_FRESH.json}"
    # Truncate the diff report up front: if this run dies mid-way, a CI
    # artifact upload must never surface a previous run's verdicts as if
    # they were this run's.
    {
        echo "# Benchmark comparison against \`$prev\`"
        echo
        echo "Run did not complete — no verdicts were produced."
    } > "$diffmd"
    echo "comparing fresh run against $prev (gate: >${REGRESSION_PCT}% ns/op regression in ablations, confirmed by a second pass)"

    echo "warmup pass (1 iteration per benchmark, discarded)..."
    go test -run='^$' -bench=. -benchtime=1x . >/dev/null
    run_suite "$raw" >/dev/null
    emit_json "$raw" "$freshjson"

    # First pass: flag candidate regressions and collect the diff rows.
    rows="$(mktemp)"
    trap 'rm -f "$raw" "$rows"' EXIT
    candidates=()
    missing=0
    while read -r name oldns; do
        case "$name" in BenchmarkAblation*) ;; *) continue ;; esac
        newns="$(extract_current "$freshjson" | awk -v n="$name" '$1 == n { print $2 }')"
        if [[ -z "$newns" ]]; then
            echo "MISSING  $name (in $prev but not in fresh run)"
            printf '%s\t%s\t%s\t%s\t%s\n' "$name" "$oldns" "—" "—" "MISSING" >> "$rows"
            missing=1
            continue
        fi
        verdict="$(awk -v old="$oldns" -v new="$newns" -v pct="$REGRESSION_PCT" \
            'BEGIN { print (new > old * (1 + pct / 100)) ? "REGRESSED" : "ok" }')"
        delta="$(awk -v old="$oldns" -v new="$newns" 'BEGIN { printf "%+.1f%%", (new - old) / old * 100 }')"
        printf '%-9s %-55s %14s -> %14s  (%s)\n' "$verdict" "$name" "$oldns" "$newns" "$delta"
        printf '%s\t%s\t%s\t%s\t%s\n' "$name" "$oldns" "$newns" "$delta" "$verdict" >> "$rows"
        if [[ "$verdict" == "REGRESSED" ]]; then candidates+=("$name"); fi
    done < <(extract_current "$prev")

    # Second pass: re-measure only the flagged benchmark families; a
    # regression counts only if it reproduces.
    fail="$missing"
    confirmed=()
    if [[ "${#candidates[@]}" != 0 ]]; then
        tops="$(printf '%s\n' "${candidates[@]}" | sed 's|/.*$||' | sort -u | paste -sd'|' -)"
        echo "re-measuring flagged benchmarks to confirm: ${tops}"
        raw2="$(mktemp)"
        json2="$(mktemp)"
        trap 'rm -f "$raw" "$rows" "$raw2" "$json2"' EXIT
        go test -run='^$' -bench="^(${tops})\$" -benchmem -count="$BENCH_COUNT" . | tee "$raw2" >/dev/null
        emit_json "$raw2" "$json2"
        for name in "${candidates[@]}"; do
            oldns="$(extract_current "$prev" | awk -v n="$name" '$1 == n { print $2 }')"
            rens="$(extract_current "$json2" | awk -v n="$name" '$1 == n { print $2 }')"
            if [[ -z "$rens" ]]; then
                echo "CONFIRMED $name (did not rerun)"
                fail=1
                confirmed+=("$name")
                continue
            fi
            verdict="$(awk -v old="$oldns" -v new="$rens" -v pct="$REGRESSION_PCT" \
                'BEGIN { print (new > old * (1 + pct / 100)) ? "CONFIRMED" : "transient" }')"
            delta="$(awk -v old="$oldns" -v new="$rens" 'BEGIN { printf "%+.1f%%", (new - old) / old * 100 }')"
            printf '%-9s %-55s %14s -> %14s  (%s, second pass)\n' "$verdict" "$name" "$oldns" "$rens" "$delta"
            awk -v n="$name" -v rens="$rens" -v d="$delta" -v v="$verdict" \
                'BEGIN { FS = OFS = "\t" } $1 == n { $3 = rens; $4 = d; $5 = v } { print }' \
                "$rows" > "$rows.tmp" && mv "$rows.tmp" "$rows"
            if [[ "$verdict" == "CONFIRMED" ]]; then
                fail=1
                confirmed+=("$name")
            fi
        done
    fi

    # Markdown diff table for the CI artifact.
    {
        echo "# Benchmark comparison against \`$prev\`"
        echo
        echo "Gate: >${REGRESSION_PCT}% ns/op regression in an ablation benchmark, confirmed by a second pass."
        echo
        echo "| benchmark | baseline ns/op | fresh ns/op | delta | verdict |"
        echo "|---|---|---|---|---|"
        awk 'BEGIN { FS = "\t" } { printf "| %s | %s | %s | %s | %s |\n", $1, $2, $3, $4, $5 }' "$rows"
    } > "$diffmd"
    echo "wrote $diffmd and $freshjson"

    if [[ "$fail" == 1 ]]; then
        echo "bench.sh: ablation regression detected (>${REGRESSION_PCT}% ns/op, reproduced)" >&2
        exit 1
    fi
    echo "no confirmed ablation regressions"
    readme_table
    exit 0
fi

out="${1:-}"
if [[ -z "$out" ]]; then
    n=1
    while [[ -e "BENCH_${n}.json" ]]; do n=$((n + 1)); done
    out="BENCH_${n}.json"
fi

run_suite "$raw"
emit_json "$raw" "$out"
echo "wrote $out"
