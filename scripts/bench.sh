#!/usr/bin/env bash
# bench.sh — run the root benchmark suite and emit a JSON report
# (benchmark name -> ns/op, B/op, allocs/op) for the perf trajectory.
#
# Usage: scripts/bench.sh [output.json]
#        scripts/bench.sh --compare [previous.json]
#        scripts/bench.sh --readme
#
# Plain mode writes a report with a "current" section holding this run's
# numbers and, when a BENCH_BASELINE.json snapshot exists at the repo root
# (the numbers of the unoptimized seed), a "baseline" section copied from
# it, so speedups can be read off one file. The default output is
# BENCH_<N>.json at the repo root for the smallest N not yet taken
# (BENCH_1.json first).
#
# Compare mode runs a fresh suite against the "current" section of the
# given snapshot (default: the BENCH_<N>.json with the highest N) and
# exits non-zero if any ablation benchmark (BenchmarkAblation*) regresses
# by more than 25% in ns/op — the perf gate wired into CI as a
# non-blocking job step. On success it also refreshes the README
# benchmark-trajectory table from the committed snapshots.
#
# Readme mode only regenerates the README table (between the
# "bench-table" markers) from BENCH_BASELINE.json and every committed
# BENCH_<N>.json, without running anything.
set -euo pipefail

cd "$(dirname "$0")/.."

REGRESSION_PCT=25

compare=0
readme_only=0
case "${1:-}" in
--compare)
    compare=1
    shift
    ;;
--readme)
    readme_only=1
    shift
    ;;
esac

# extract_current FILE — print "name ns_op" pairs from the "current"
# section of one of our reports (or from the whole file if it has no
# sections, as in BENCH_BASELINE.json).
extract_current() {
    awk '
    /"current":/ { in_current = 1 }
    in_current || !saw_section {
        if ($0 ~ /"Benchmark[^"]*": *\{/) {
            name = $0; sub(/^[ ]*"/, "", name); sub(/".*$/, "", name)
            ns = $0; sub(/.*"ns_op": */, "", ns); sub(/[,}].*$/, "", ns)
            print name, ns
        }
    }
    /"baseline":/ { saw_section = 1 }
    ' "$1"
}

# readme_table rewrites the trajectory table between the bench-table
# markers of README.md: one row per ablation benchmark (plus the full
# experiment suite), one column per committed snapshot, and the overall
# seed→latest speedup.
readme_table() {
    local readme="README.md"
    [[ -f "$readme" ]] || return 0
    grep -q '<!-- bench-table:start -->' "$readme" || return 0
    local snaps=()
    [[ -f BENCH_BASELINE.json ]] && snaps+=(BENCH_BASELINE.json)
    local n=1
    while [[ -e "BENCH_${n}.json" ]]; do
        snaps+=("BENCH_${n}.json")
        n=$((n + 1))
    done
    [[ "${#snaps[@]}" != 0 ]] || return 0

    local table
    table="$(
        for s in "${snaps[@]}"; do
            extract_current "$s" | awk -v src="$s" '{ print src, $1, $2 }'
        done | awk -v files="${snaps[*]}" '
        function fmt(ns) {
            if (ns == "") return "—"
            if (ns + 0 >= 1e9) return sprintf("%.2f s", ns / 1e9)
            if (ns + 0 >= 1e6) return sprintf("%.1f ms", ns / 1e6)
            if (ns + 0 >= 1e3) return sprintf("%.1f µs", ns / 1e3)
            return sprintf("%.0f ns", ns + 0)
        }
        BEGIN { nf = split(files, fname, " ") }
        {
            name = $2
            if (name !~ /^BenchmarkAblation/ && name != "BenchmarkAllExperiments") next
            if (!(name in seen)) { seen[name] = ++rows; order[rows] = name }
            val[name, $1] = $3
        }
        END {
            printf "| benchmark (ns/op, min of runs) |"
            for (i = 1; i <= nf; i++) {
                label = fname[i]
                sub(/^BENCH_/, "", label); sub(/\.json$/, "", label)
                if (label == "BASELINE") label = "seed"; else label = "PR " label
                printf " %s |", label
            }
            printf " speedup |\n|---|"
            for (i = 1; i <= nf; i++) printf "---|"
            printf "---|\n"
            for (r = 1; r <= rows; r++) {
                name = order[r]
                short = name
                sub(/^BenchmarkAblation/, "", short)
                sub(/^Benchmark/, "", short)
                printf "| %s |", short
                for (i = 1; i <= nf; i++) printf " %s |", fmt(val[name, fname[i]])
                first = val[name, fname[1]]
                last = ""
                for (i = nf; i >= 1; i--)
                    if (val[name, fname[i]] != "") { last = val[name, fname[i]]; break }
                if (first != "" && last != "" && last + 0 > 0)
                    printf " %.1f× |\n", first / last
                else
                    printf " — |\n"
            }
        }'
    )"
    local tmp
    tmp="$(mktemp)"
    awk -v table="$table" '
        /<!-- bench-table:start -->/ { print; print table; skip = 1; next }
        /<!-- bench-table:end -->/ { skip = 0 }
        !skip { print }
    ' "$readme" > "$tmp"
    mv "$tmp" "$readme"
    echo "refreshed benchmark table in $readme (${#snaps[@]} snapshots)"
}

if [[ "$readme_only" == 1 ]]; then
    readme_table
    exit 0
fi

# Each benchmark runs BENCH_COUNT times and the report keeps the fastest
# iteration — the noise-robust estimator on shared machines, where load
# spikes only ever slow a run down.
BENCH_COUNT="${BENCH_COUNT:-3}"

run_suite() { # run_suite RAWFILE
    go test -run='^$' -bench=. -benchmem -count="$BENCH_COUNT" . | tee "$1"
}

emit_json() { # emit_json RAWFILE OUTFILE
    {
        echo "{"
        if [[ -f BENCH_BASELINE.json ]]; then
            echo '  "baseline":'
            sed 's/^/  /' BENCH_BASELINE.json
            echo "  ,"
        fi
        echo '  "current":'
        awk '
        /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
            ns = ""; bytes = ""; allocs = ""
            for (i = 2; i <= NF; i++) {
                if ($i == "ns/op") ns = $(i - 1)
                if ($i == "B/op") bytes = $(i - 1)
                if ($i == "allocs/op") allocs = $(i - 1)
            }
            if (ns == "") next
            if (!(name in best) || ns + 0 < best[name] + 0) {
                best[name] = ns
                bbytes[name] = bytes
                ballocs[name] = allocs
            }
            if (!(name in order)) { order[name] = ++n; names[n] = name }
        }
        END {
            print "  {"
            for (i = 1; i <= n; i++) {
                name = names[i]
                printf "    \"%s\": {\"ns_op\": %s", name, best[name]
                if (bbytes[name] != "") printf ", \"b_op\": %s", bbytes[name]
                if (ballocs[name] != "") printf ", \"allocs_op\": %s", ballocs[name]
                printf "}"
                if (i < n) printf ","
                printf "\n"
            }
            print "  }"
        }
        ' "$1"
        echo "}"
    } > "$2"
}

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

if [[ "$compare" == 1 ]]; then
    prev="${1:-}"
    if [[ -z "$prev" ]]; then
        n=1
        while [[ -e "BENCH_${n}.json" ]]; do n=$((n + 1)); done
        if [[ "$n" == 1 ]]; then
            echo "bench.sh: no BENCH_<N>.json snapshot to compare against" >&2
            exit 2
        fi
        prev="BENCH_$((n - 1)).json"
    fi
    echo "comparing fresh run against $prev (gate: >${REGRESSION_PCT}% ns/op regression in ablations)"
    run_suite "$raw" >/dev/null

    freshjson="$(mktemp)"
    trap 'rm -f "$raw" "$freshjson"' EXIT
    emit_json "$raw" "$freshjson"

    fail=0
    while read -r name oldns; do
        case "$name" in BenchmarkAblation*) ;; *) continue ;; esac
        newns="$(extract_current "$freshjson" | awk -v n="$name" '$1 == n { print $2 }')"
        if [[ -z "$newns" ]]; then
            echo "MISSING  $name (in $prev but not in fresh run)"
            fail=1
            continue
        fi
        verdict="$(awk -v old="$oldns" -v new="$newns" -v pct="$REGRESSION_PCT" \
            'BEGIN { print (new > old * (1 + pct / 100)) ? "REGRESSED" : "ok" }')"
        delta="$(awk -v old="$oldns" -v new="$newns" 'BEGIN { printf "%+.1f%%", (new - old) / old * 100 }')"
        printf '%-9s %-55s %14s -> %14s  (%s)\n' "$verdict" "$name" "$oldns" "$newns" "$delta"
        if [[ "$verdict" == "REGRESSED" ]]; then fail=1; fi
    done < <(extract_current "$prev")

    if [[ "$fail" == 1 ]]; then
        echo "bench.sh: ablation regression detected (>${REGRESSION_PCT}% ns/op)" >&2
        exit 1
    fi
    echo "no ablation regressions"
    readme_table
    exit 0
fi

out="${1:-}"
if [[ -z "$out" ]]; then
    n=1
    while [[ -e "BENCH_${n}.json" ]]; do n=$((n + 1)); done
    out="BENCH_${n}.json"
fi

run_suite "$raw"
emit_json "$raw" "$out"
echo "wrote $out"
