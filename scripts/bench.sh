#!/usr/bin/env bash
# bench.sh — run the root benchmark suite and emit a JSON report
# (benchmark name -> ns/op, B/op, allocs/op) for the perf trajectory.
#
# Usage: scripts/bench.sh [output.json]
#
# The report has a "current" section with this run's numbers and, when a
# BENCH_BASELINE.json snapshot exists at the repo root (the numbers of the
# unoptimized seed), a "baseline" section copied from it, so speedups can
# be read off one file. The default output is BENCH_<N>.json at the repo
# root for the smallest N not yet taken (BENCH_1.json first).
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-}"
if [[ -z "$out" ]]; then
    n=1
    while [[ -e "BENCH_${n}.json" ]]; do n=$((n + 1)); done
    out="BENCH_${n}.json"
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run='^$' -bench=. -benchmem -count=1 . | tee "$raw"

{
    echo "{"
    if [[ -f BENCH_BASELINE.json ]]; then
        echo '  "baseline":'
        sed 's/^/  /' BENCH_BASELINE.json
        echo "  ,"
    fi
    echo '  "current":'
    awk '
    BEGIN { print "  {" }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
        ns = ""; bytes = ""; allocs = ""
        for (i = 2; i <= NF; i++) {
            if ($i == "ns/op") ns = $(i - 1)
            if ($i == "B/op") bytes = $(i - 1)
            if ($i == "allocs/op") allocs = $(i - 1)
        }
        if (ns == "") next
        if (seen++) printf ",\n"
        printf "    \"%s\": {\"ns_op\": %s", name, ns
        if (bytes != "") printf ", \"b_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_op\": %s", allocs
        printf "}"
    }
    END { print "\n  }" }
    ' "$raw"
    echo "}"
} > "$out"

echo "wrote $out"
