#!/usr/bin/env bash
# checkdocs.sh — the docs gate wired into CI: every package (the root
# package and every internal/*) must carry a proper "Package <name> ..."
# comment, and the top-level docs must exist. Run it locally before
# sending a PR; CI runs it verbatim.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

has_pkg_comment() { # has_pkg_comment PKGNAME FILE...
    local pkg="$1"
    shift
    local f
    for f in "$@"; do
        [[ "$f" == *_test.go ]] && continue
        if grep -q "^// Package $pkg " "$f"; then
            return 0
        fi
    done
    return 1
}

if ! has_pkg_comment repro ./*.go; then
    echo "missing package comment: repro (root)"
    fail=1
fi

for dir in internal/*/; do
    pkg="$(basename "$dir")"
    if ! has_pkg_comment "$pkg" "$dir"*.go; then
        echo "missing package comment: $pkg"
        fail=1
    fi
done

for doc in README.md ARCHITECTURE.md; do
    if [[ ! -f "$doc" ]]; then
        echo "missing $doc"
        fail=1
    fi
done

if [[ "$fail" != 0 ]]; then
    echo "checkdocs.sh: documentation gate failed" >&2
    exit 1
fi
echo "docs ok: package comments present, README.md and ARCHITECTURE.md exist"
