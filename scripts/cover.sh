#!/usr/bin/env bash
# cover.sh — coverage gate: run the full test suite with a coverage
# profile and fail if the statement coverage of any gated package drops
# below its threshold:
#
#   internal/kripke   >= 80   (the model checker core everything leans on)
#   internal/runs     >= 70   (runs-and-systems semantics + chain machinery)
#   internal/protocol >= 70   (generation + the fault-injection engine)
#   internal/faults   >= 70   (seeded fault plans: the chaos substrate)
#   internal/scenario >= 70   (regime builder behind scenariosim and knowd)
#   internal/server   >= 70   (the serving layer's robustness machinery)
#   internal/client   >= 80   (retry/breaker/idempotency-key internals)
#   internal/chaosproxy >= 80 (fault-injecting proxy: message + byte fates)
#   internal/gossip   >= 70   (gossip universes, chains and attainment search)
#   internal/cluster  >= 70   (rendezvous routing, health ejection, failover)
#
# Usage: scripts/cover.sh [profile.out]
#
# The profile is left at the given path (default coverage.out) so CI can
# upload it as an artifact. COVER_THRESHOLD overrides the kripke gate;
# COVER_THRESHOLD_<PKG> (RUNS, PROTOCOL, FAULTS, SCENARIO, SERVER,
# CLIENT, CHAOSPROXY, GOSSIP, CLUSTER) override the others.
set -euo pipefail

cd "$(dirname "$0")/.."

PROFILE="${1:-coverage.out}"

go test -coverprofile="$PROFILE" ./... >/dev/null

# pkg_pct PKGPATH — statement coverage of one package. Profile lines are
# "<file>:<range> <statements> <hits>"; coverage is covered/total
# statements over the package's files (not subpackages).
pkg_pct() {
    awk -v pkg="^repro/$1/[^/]+\\.go:" '
    $0 ~ pkg {
        total += $2
        if ($3 > 0) covered += $2
    }
    END {
        if (total == 0) { print "0.0"; exit }
        printf "%.1f", covered / total * 100
    }' "$PROFILE"
}

overall="$(go tool cover -func="$PROFILE" | awk '/^total:/ { print $3 }')"

fail=0
check() { # check PKGPATH THRESHOLD
    local pct
    pct="$(pkg_pct "$1")"
    echo "$1 statement coverage: ${pct}% (gate: >= $2%)"
    if awk -v p="$pct" -v t="$2" 'BEGIN { exit !(p < t) }'; then
        echo "cover.sh: $1 coverage ${pct}% is below the $2% gate" >&2
        fail=1
    fi
}

check internal/kripke "${COVER_THRESHOLD:-80}"
check internal/runs "${COVER_THRESHOLD_RUNS:-70}"
check internal/protocol "${COVER_THRESHOLD_PROTOCOL:-70}"
check internal/faults "${COVER_THRESHOLD_FAULTS:-70}"
check internal/scenario "${COVER_THRESHOLD_SCENARIO:-70}"
check internal/server "${COVER_THRESHOLD_SERVER:-70}"
check internal/client "${COVER_THRESHOLD_CLIENT:-80}"
check internal/chaosproxy "${COVER_THRESHOLD_CHAOSPROXY:-80}"
check internal/gossip "${COVER_THRESHOLD_GOSSIP:-70}"
check internal/cluster "${COVER_THRESHOLD_CLUSTER:-70}"
echo "repo total: ${overall}"

exit "$fail"
