#!/usr/bin/env bash
# cover.sh — coverage gate: run the full test suite with a coverage
# profile and fail if the statement coverage of internal/kripke (the model
# checker core every other package leans on) drops below the threshold.
#
# Usage: scripts/cover.sh [profile.out]
#
# The profile is left at the given path (default coverage.out) so CI can
# upload it as an artifact. COVER_THRESHOLD overrides the default gate of
# 80 (percent).
set -euo pipefail

cd "$(dirname "$0")/.."

THRESHOLD="${COVER_THRESHOLD:-80}"
PROFILE="${1:-coverage.out}"

go test -coverprofile="$PROFILE" ./... >/dev/null

# Profile lines are "<file>:<range> <statements> <hits>"; statement
# coverage of a package is covered-statements / statements over its files.
pct="$(awk '
/^repro\/internal\/kripke\// {
    total += $2
    if ($3 > 0) covered += $2
}
END {
    if (total == 0) { print "0.0"; exit }
    printf "%.1f", covered / total * 100
}' "$PROFILE")"

overall="$(go tool cover -func="$PROFILE" | awk '/^total:/ { print $3 }')"
echo "internal/kripke statement coverage: ${pct}% (gate: >= ${THRESHOLD}%); repo total: ${overall}"

if awk -v p="$pct" -v t="$THRESHOLD" 'BEGIN { exit !(p < t) }'; then
    echo "cover.sh: internal/kripke coverage ${pct}% is below the ${THRESHOLD}% gate" >&2
    exit 1
fi
