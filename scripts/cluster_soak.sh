#!/usr/bin/env bash
# cluster_soak.sh — advisory cluster soak: a knowload fleet drives the
# knowrouter front over three real knowd shards and, mid-run, one shard is
# SIGKILLed and restarted empty. The router must ride it out: boot-id
# fencing spots the new incarnation, failover replays the dead shard's
# sessions onto survivors, and the retrying fleet finishes with zero
# failed ops. Afterwards a reconcile pass must reach zero strays. Produces
# CLUSTER_REPORT.md (the router's per-shard latency/report table plus the
# fleet's own run report) for CI to upload.
#
# Tunables (env): CLUSTER_SOAK_SEED (default 1), CLUSTER_SOAK_WORKERS (4),
# CLUSTER_SOAK_SESSIONS (6), CLUSTER_SOAK_PACE (100ms), CLUSTER_SOAK_PORT
# (7471 — shards take the next three ports).
set -euo pipefail

cd "$(dirname "$0")/.."

SEED="${CLUSTER_SOAK_SEED:-1}"
WORKERS="${CLUSTER_SOAK_WORKERS:-4}"
SESSIONS="${CLUSTER_SOAK_SESSIONS:-6}"
PACE="${CLUSTER_SOAK_PACE:-100ms}"
PORT="${CLUSTER_SOAK_PORT:-7471}"

ROUTER="127.0.0.1:$PORT"
S1="127.0.0.1:$((PORT + 1))"
S2="127.0.0.1:$((PORT + 2))"
S3="127.0.0.1:$((PORT + 3))"

BIN="$(mktemp -d)"
PIDS=()
trap 'for p in "${PIDS[@]}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$BIN"' EXIT

go build -o "$BIN/knowd" ./cmd/knowd
go build -o "$BIN/knowrouter" ./cmd/knowrouter
go build -o "$BIN/knowctl" ./cmd/knowctl
go build -o "$BIN/knowload" ./cmd/knowload

wait_healthy() { # addr name
    for _ in $(seq 1 200); do
        if curl -fsS "http://$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.05
    done
    echo "cluster_soak: $2 on $1 never became healthy" >&2
    cat "$BIN"/*.log >&2 || true
    exit 1
}

start_shard() { # addr logname -> pid on stdout
    "$BIN/knowd" -addr "$1" >>"$BIN/$2.log" 2>&1 &
    echo $!
}

P1="$(start_shard "$S1" shard1)"; PIDS+=("$P1")
P2="$(start_shard "$S2" shard2)"; PIDS+=("$P2")
P3="$(start_shard "$S3" shard3)"; PIDS+=("$P3")
wait_healthy "$S1" shard1; wait_healthy "$S2" shard2; wait_healthy "$S3" shard3

# Aggressive health cadence so ejection, boot-id fencing, and half-open
# re-admission all land inside a short soak window.
"$BIN/knowrouter" -addr "$ROUTER" \
    -shards "n1=http://$S1,n2=http://$S2,n3=http://$S3" \
    -seed "$SEED" -hedge-after 15ms -health-every 50ms -fail-after 2 \
    -readmit-after 500ms -shard-attempts 30 -shard-base-delay 2ms \
    -shard-max-delay 50ms >>"$BIN/router.log" 2>&1 &
ROUTER_PID=$!; PIDS+=("$ROUTER_PID")
wait_healthy "$ROUTER" knowrouter
echo "cluster_soak: router up on $ROUTER fronting $S1 $S2 $S3"

"$BIN/knowload" -addr "http://$ROUTER" -seed "$SEED" -workers "$WORKERS" \
    -sessions "$SESSIONS" -pace "$PACE" -max-attempts 60 -report "$BIN/fleet.md" &
LOAD_PID=$!

# Let the fleet get into the session bodies, then kill shard 2 cold and
# bring it back empty: the restarted incarnation advertises a new boot id,
# the router fences the ghost mappings and replays chains onto survivors.
sleep 1
echo "cluster_soak: SIGKILL shard2 pid $P2 mid-run"
kill -9 "$P2"
wait "$P2" 2>/dev/null || true
P2="$(start_shard "$S2" shard2)"; PIDS+=("$P2")
wait_healthy "$S2" shard2
echo "cluster_soak: shard2 restarted empty as pid $P2"

if ! wait "$LOAD_PID"; then
    echo "cluster_soak: knowload reported failed ops" >&2
    cat "$BIN"/*.log >&2
    exit 1
fi

# Post-run anti-entropy must converge: repeat reconcile until a pass finds
# zero strays and zero shard errors (latched breakers may need a cooldown).
RECONCILED=""
for _ in $(seq 1 100); do
    OUT="$(curl -fsS -X POST "http://$ROUTER/v1/reconcile")"
    if [ "$OUT" = '{"shard_errors":0,"strays_closed":0}' ]; then
        RECONCILED=yes
        break
    fi
    echo "cluster_soak: reconcile still busy: $OUT"
    sleep 0.2
done
if [ -z "$RECONCILED" ]; then
    echo "cluster_soak: fleet never reconciled to zero strays" >&2
    cat "$BIN"/router.log >&2
    exit 1
fi

{
    curl -fsS "http://$ROUTER/v1/report"
    echo
    echo '## router stats'
    echo
    echo '```json'
    curl -fsS "http://$ROUTER/v1/stats"
    echo
    echo '```'
    echo
    cat "$BIN/fleet.md"
} >CLUSTER_REPORT.md

kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID" 2>/dev/null || true
echo "cluster_soak: done; report in CLUSTER_REPORT.md"
