#!/usr/bin/env bash
# bench_parallel.sh — measure the parallel evaluation fan-out.
#
# Runs the batch-shaped benchmarks (the EvalBatch ablation, the muddy
# scaling simulation, the full experiment suite) twice — pinned to
# GOMAXPROCS=1 and at the machine's full core count — and writes a
# markdown speedup table to PARALLEL_SPEEDUP.md (override with
# PARALLEL_MD). Advisory by design: the table is published as a CI
# artifact so the multi-core speedup stays visible, while the blocking
# regression gate (bench.sh --compare) runs pinned and deterministic.
#
# Usage: scripts/bench_parallel.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BENCH_COUNT="${BENCH_COUNT:-3}"
OUT="${PARALLEL_MD:-PARALLEL_SPEEDUP.md}"
PATTERN='^(BenchmarkAblationBatchEval|BenchmarkAblationMuddyScaling|BenchmarkAllExperiments)$'

cores="$(go env GOMAXPROCS 2>/dev/null || true)"
cores="${cores:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo '?')}"

# best_of RAWFILE — print "name ns_op" keeping the fastest of the counted runs.
best_of() {
    awk '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns = ""
        for (i = 2; i <= NF; i++) if ($i == "ns/op") ns = $(i - 1)
        if (ns == "") next
        if (!(name in best) || ns + 0 < best[name] + 0) best[name] = ns
        if (!(name in order)) { order[name] = ++n; names[n] = name }
    }
    END { for (i = 1; i <= n; i++) print names[i], best[names[i]] }
    ' "$1"
}

serial_raw="$(mktemp)"
multi_raw="$(mktemp)"
trap 'rm -f "$serial_raw" "$multi_raw"' EXIT

echo "serial pass (GOMAXPROCS=1, min of $BENCH_COUNT)..."
GOMAXPROCS=1 go test -run='^$' -bench="$PATTERN" -count="$BENCH_COUNT" . | tee "$serial_raw" >/dev/null

echo "multi-core pass (GOMAXPROCS unpinned, $cores cores, min of $BENCH_COUNT)..."
go test -run='^$' -bench="$PATTERN" -count="$BENCH_COUNT" . | tee "$multi_raw" >/dev/null

{
    echo "# Parallel evaluation fan-out speedup"
    echo
    echo "GOMAXPROCS=1 versus all cores ($cores), min of $BENCH_COUNT runs each."
    echo
    echo "| benchmark | serial ns/op | parallel ns/op | speedup |"
    echo "|---|---|---|---|"
    join <(best_of "$serial_raw" | sort) <(best_of "$multi_raw" | sort) \
        | awk '{ printf "| %s | %s | %s | %.2fx |\n", $1, $2, $3, ($3 + 0 > 0) ? $2 / $3 : 0 }'
} > "$OUT"

echo "wrote $OUT"
cat "$OUT"
