package repro_test

// Regression: quotient-before-eval must return identical verdicts on the
// models of the existing experiments. Each system an experiment driver
// evaluates — the R2-D2 delivery chain, the commit window, the coordinated
// attack, the muddy children — is checked formula by formula, world by
// world, against direct evaluation.

import (
	"testing"

	"repro"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/kripke"
	"repro/internal/logic"
	"repro/internal/muddy"
	"repro/internal/protocol"
	"repro/internal/runs"
)

// epistemicBatch builds the formula batch over a system's characteristic
// ground fact: every knowledge operator, a modal tower, and the ν form of
// common knowledge.
func epistemicBatch(prop string) []logic.Formula {
	p := logic.P(prop)
	return []logic.Formula{
		p,
		logic.Neg(p),
		logic.K(0, p),
		logic.K(1, logic.Neg(logic.K(0, p))),
		logic.S(nil, p),
		logic.E(nil, p),
		logic.D(nil, p),
		logic.C(nil, p),
		logic.EK(nil, 3, p),
		logic.GFP("X", logic.E(nil, logic.Conj(p, logic.X("X")))),
	}
}

func checkQuotientAgrees(t *testing.T, name string, m *repro.Model, q *kripke.Quotiented, batch []logic.Formula) {
	t.Helper()
	for _, phi := range batch {
		direct, err := m.Eval(phi)
		if err != nil {
			t.Fatalf("%s: direct eval of %s: %v", name, phi, err)
		}
		via, err := q.Eval(phi)
		if err != nil {
			t.Fatalf("%s: quotient eval of %s: %v", name, phi, err)
		}
		if !direct.Equal(via) {
			t.Errorf("%s: quotient-before-eval changed the verdict of %s", name, phi)
		}
	}
}

func TestQuotientBeforeEvalMatchesExperiments(t *testing.T) {
	// E7/ablation system: the R2-D2 message chain of Section 8.
	sys := core.R2D2Chain(6, 9)
	pm := sys.Model(repro.CompleteHistoryView, repro.Interpretation{
		"sent": repro.StablyTrue(repro.SentBy("m")),
	})
	q := pm.EpistemicQuotient(1)
	if !q.Quotiented() {
		t.Error("r2d2: point model did not shrink (silent tails should collapse)")
	}
	checkQuotientAgrees(t, "r2d2", pm.Model, q, epistemicBatch("sent"))

	// E12/commit-window system of Section 13.
	csys, interp, err := repro.CommitSystem(6)
	if err != nil {
		t.Fatal(err)
	}
	cpm := csys.Model(repro.CompleteHistoryView, interp)
	var cprop string
	for _, f := range cpm.Model.Facts() {
		cprop = f
		break
	}
	checkQuotientAgrees(t, "commit", cpm.Model, cpm.EpistemicQuotient(1), epistemicBatch(cprop))

	// E4/E13 coordinated-attack system.
	as, err := attack.Build(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	never := func(protocol.LocalView) bool { return false }
	apm := as.Sys.Model(runs.CompleteHistoryView, as.Interp(never, never))
	checkQuotientAgrees(t, "attack", apm.Model, apm.EpistemicQuotient(1), epistemicBatch(attack.IntentProp))

	// E1 muddy children (a plain Kripke model, no temporal hook). Its
	// quotient is the identity — all fact vectors differ — so this pins the
	// fallback path on a real driver model.
	pz, err := muddy.New(6, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	mq := pz.Model().QuotientForEval(1)
	if mq.Quotiented() {
		t.Error("muddy: model quotiented although every world has a distinct fact vector")
	}
	checkQuotientAgrees(t, "muddy", pz.Model(), mq, epistemicBatch(muddy.MuddyProp(0)))
}
