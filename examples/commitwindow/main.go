// Commit window (Sections 8 and 13): a coordinator commits a transaction
// and informs a participant; during the delivery window the sites reflect
// inconsistent histories. Acting "as if" the commit were common knowledge
// violates the knowledge axiom — but it is internally knowledge consistent,
// which is why real databases get away with it.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	sys, interp, err := repro.CommitSystem(6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("The coordinator sends \"commit\" at t=1; delivery takes 0, 1 or 2 ticks.")
	fmt.Println("Eager interpretation: each site believes the transaction is committed —")
	fmt.Println("and commonly known to be — as soon as it has sent/received the message.")
	fmt.Println()

	pm := sys.Model(repro.CompleteHistoryView, interp)
	violations, err := repro.CheckKnowledgeConsistent(pm, repro.EagerCommit())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Knowledge axiom violations (the window of vulnerability): %d\n", len(violations))
	for i, v := range violations {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(violations)-3)
			break
		}
		fmt.Printf("  %s\n", v)
	}
	fmt.Println()

	names, err := repro.FindConsistentSubsystem(sys, repro.CompleteHistoryView, interp, repro.EagerCommit())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Internally knowledge consistent with respect to the subsystem %v:\n", names)
	fmt.Println("every local history that can occur also occurs in the instantaneous-")
	fmt.Println("delivery world, where the eager beliefs are true. No site will ever")
	fmt.Println("observe evidence against acting as if the commit were common knowledge")
	fmt.Println("(Section 13's resolution of the Section 9 paradox).")
}
