// Coordinated attack (Sections 4 and 7): two generals, a messenger who may
// be captured, and the futility of acknowledgements. Each delivered message
// buys exactly one more level of "A knows that B knows that ...", but
// simultaneous attack needs common knowledge — unattainable over an
// unreliable channel — so the only correct protocol never attacks.
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro"
)

// generals implements the handshake: A initiates iff it is in favor of
// attacking ("go"); each side acknowledges every message it receives.
func generals() []repro.Protocol {
	step := func(v repro.LocalView) []repro.Outgoing {
		peer := 1 - v.Me
		if v.Me == 0 && v.Init == "go" && len(v.Sent) == 0 && len(v.Received) == 0 {
			return []repro.Outgoing{{To: peer, Payload: "msg1"}}
		}
		if len(v.Received) == 0 {
			return nil
		}
		replies := len(v.Sent)
		if v.Me == 0 && v.Init == "go" {
			replies--
		}
		if replies < len(v.Received) {
			n := len(v.Received) + len(v.Sent) + 1
			return []repro.Outgoing{{To: peer, Payload: "msg" + strconv.Itoa(n)}}
		}
		return nil
	}
	return []repro.Protocol{repro.ProtocolFunc(step), repro.ProtocolFunc(step)}
}

func main() {
	const budget = 4
	sys, err := repro.Generate(
		generals(),
		repro.Unreliable{Delay: 1}, // the messenger may be captured
		[]repro.GenConfig{
			{Name: "go", Init: []string{"go", ""}},
			{Name: "idle", Init: []string{"", ""}},
		},
		10,
		repro.GenOptions{MaxMessagesPerRun: budget},
	)
	if err != nil {
		log.Fatal(err)
	}
	pm := sys.Model(repro.CompleteHistoryView, repro.Interpretation{
		"intent": func(r *repro.Run, _ repro.Time) bool { return r.Init[0] == "go" },
	})

	fmt.Println("General A wants to coordinate an attack; the messenger may be captured.")
	fmt.Printf("System of all runs (%d of them), message budget %d:\n\n", len(sys.Runs), budget)
	fmt.Printf("%-10s %-36s %s\n", "deliveries", "deepest knowledge of A's intent", "holds?")

	for ri, r := range sys.Runs {
		if r.Init[0] != "go" {
			continue
		}
		delivered := 0
		for _, m := range r.Messages {
			if m.Delivered() {
				delivered++
			}
		}
		// Build K_B K_A ... intent with depth = deliveries.
		var b strings.Builder
		f := repro.P("intent")
		for lvl := 1; lvl <= delivered; lvl++ {
			if lvl%2 == 1 {
				f = repro.K(1, f)
			} else {
				f = repro.K(0, f)
			}
		}
		b.WriteString(f.String())
		set, err := pm.Eval(f)
		if err != nil {
			log.Fatal(err)
		}
		holds := set.Contains(pm.World(ri, sys.Horizon))
		fmt.Printf("%-10d %-36s %v\n", delivered, b.String(), holds)
	}

	ck, err := pm.Eval(repro.MustParse("C intent"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nC intent holds at %d of %d points: no finite number of\n", ck.Count(), pm.NumWorlds())
	fmt.Println("acknowledgements yields common knowledge, so no correct protocol")
	fmt.Println("can ever attack (Corollary 6). Run cmd/attacksim for the")
	fmt.Println("exhaustive decision-rule search.")
}
