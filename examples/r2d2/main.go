// R2-D2 (Section 8): with message delivery taking either 0 or ε, every
// level of "R2 knows that D2 knows" costs ε time units, and common
// knowledge of sent(m) is never attained — while ε-common knowledge holds
// as soon as the message is sent, and a timestamped message over a global
// clock attains full common knowledge at t_S + ε.
package main

import (
	"fmt"
	"log"

	"repro"
)

// chain builds the paper's system {r_i, r'_i}: for each send time i, run
// "now<i>" delivers immediately and run "late<i>" one tick later (ε = 1).
// R2 = processor 0, D2 = processor 1; both have (identity) clocks and the
// payload carries no timestamp.
func chain(m int, horizon repro.Time) *repro.System {
	rs := make([]*repro.Run, 0, 2*m)
	for i := 0; i < m; i++ {
		now := repro.NewRun(fmt.Sprintf("now%d", i), 2, horizon)
		now.SetIdentityClock(0)
		now.SetIdentityClock(1)
		now.Send(0, 1, repro.Time(i), repro.Time(i), "m")
		late := repro.NewRun(fmt.Sprintf("late%d", i), 2, horizon)
		late.SetIdentityClock(0)
		late.SetIdentityClock(1)
		late.Send(0, 1, repro.Time(i), repro.Time(i+1), "m")
		rs = append(rs, now, late)
	}
	return repro.MustSystem(rs...)
}

func main() {
	sys := chain(6, 9)
	pm := sys.Model(repro.CompleteHistoryView, repro.Interpretation{
		"sent": repro.StablyTrue(repro.SentBy("m")),
	})

	fmt.Println("R2 sends m to D2; delivery takes 0 or ε (= 1 tick).")
	fmt.Println("In the run where m is sent at 0 and arrives at ε:")
	fmt.Println()

	// The whole batch of knowledge-only formulas below evaluates on the
	// bisimulation quotient of the point model (silent run tails collapse),
	// with verdicts mapped back to the original points.
	qv := pm.EpistemicQuotient(1)
	if qv.Quotiented() {
		fmt.Printf("(epistemic checks run on the %d-world quotient of the %d-point model)\n\n",
			qv.QuotientWorlds(), qv.NumWorlds())
	}

	fmt.Printf("%-28s %s\n", "level", "first holds at")
	phi := repro.P("sent")
	label := "sent"
	for k := 1; k <= 4; k++ {
		phi = repro.K(0, repro.K(1, phi))
		label = "K_R K_D " + label
		set, err := qv.Eval(phi)
		if err != nil {
			log.Fatal(err)
		}
		first := -1
		for t := repro.Time(0); t <= sys.Horizon; t++ {
			w, _ := pm.WorldOf("late0", t)
			if set.Contains(w) {
				first = int(t)
				break
			}
		}
		fmt.Printf("%-28s t = %d\n", label, first)
	}
	fmt.Println()
	fmt.Println("One ε per level — so C sent(m), which implies every level, never holds:")
	ck, _ := qv.Eval(repro.MustParse("C sent"))
	fmt.Printf("  C sent holds at %d points (while send times remain uncertain)\n", countEarly(pm, ck, 5))

	ce, _ := pm.Eval(repro.MustParse("Ce[1] sent"))
	w, _ := pm.WorldOf("now0", 0)
	fmt.Printf("  Ce[1] sent at the send point: %v (ε-common knowledge is attained)\n\n", ce.Contains(w))

	// The fix: a global clock plus a timestamped message.
	fmt.Println("With a global clock and the message \"sent at time 2; m\":")
	now := repro.NewRun("now", 2, 6)
	now.Send(0, 1, 2, 2, "m@2")
	late := repro.NewRun("late", 2, 6)
	late.Send(0, 1, 2, 3, "m@2")
	never := repro.NewRun("never", 2, 6)
	for _, r := range []*repro.Run{now, late, never} {
		r.SetIdentityClock(0)
		r.SetIdentityClock(1)
	}
	tsys := repro.MustSystem(now, late, never)
	tpm := tsys.Model(repro.CompleteHistoryView, repro.Interpretation{
		"sent": repro.StablyTrue(repro.SentBy("m@2")),
	})
	tc, _ := tpm.Eval(repro.MustParse("C sent"))
	for _, t := range []repro.Time{3, 4} {
		w, _ := tpm.WorldOf("late", t)
		fmt.Printf("  C sent at t=%d: %v\n", t, tc.Contains(w))
	}
	fmt.Println("  — common knowledge arrives exactly when the delivery window closes.")
}

// countEarly counts points of the set at times below cutoff (away from the
// finite-horizon boundary).
func countEarly(pm *repro.PointModel, set *repro.WorldSet, cutoff repro.Time) int {
	n := 0
	for ri := range pm.Sys.Runs {
		for t := repro.Time(0); t < cutoff; t++ {
			if set.Contains(pm.World(ri, t)) {
				n++
			}
		}
	}
	return n
}
