// Quickstart: build a tiny two-processor system, ascribe knowledge with
// the complete-history interpretation, and walk the knowledge hierarchy of
// Section 3 — individual knowledge is gained message by message, while
// common knowledge stays out of reach because the channel may lose
// messages.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Two possible executions: the message from p0 to p1 is delivered at
	// time 2, or lost. Identifying the system with its set of runs is the
	// core move of Section 5.
	ok := repro.NewRun("ok", 2, 5)
	ok.Send(0, 1, 1, 2, "m")
	lost := repro.NewRun("lost", 2, 5)
	lost.SendLost(0, 1, 1, "m")
	sys := repro.MustSystem(ok, lost)

	// π: the ground fact "sent" holds once the message has been sent.
	pm := sys.Model(repro.CompleteHistoryView, repro.Interpretation{
		"sent": repro.StablyTrue(repro.SentBy("m")),
		"del":  repro.StablyTrue(repro.ReceivedBy("m")),
	})

	queries := []struct {
		formula string
		run     string
		t       repro.Time
		note    string
	}{
		{"K0 sent", "ok", 2, "the sender knows it sent"},
		{"K1 sent", "ok", 1, "the receiver does not know yet"},
		{"K1 sent", "ok", 3, "after delivery, it does"},
		{"K0 K1 sent", "ok", 5, "but the sender can never know that (the message may be lost)"},
		{"E sent", "ok", 3, "everyone knows sent"},
		{"D sent", "ok", 2, "the joint view settles it as soon as anyone acts"},
		{"C sent", "ok", 5, "common knowledge is unattainable (Theorem 5)"},
		{"Cv del", "ok", 3, "and so is even eventual common knowledge of delivery"},
	}
	for _, q := range queries {
		f, err := repro.Parse(q.formula)
		if err != nil {
			log.Fatal(err)
		}
		holds, err := pm.HoldsAt(f, q.run, q.t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s at (%s,%d) = %-5v  %s\n", q.formula, q.run, q.t, holds, q.note)
	}
}
