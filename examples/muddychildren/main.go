// Muddy children (Section 2): the father's public announcement of a fact
// every child already knows still changes the group's state of knowledge —
// from E^{k-1} m to common knowledge of m — and that difference is exactly
// what lets the muddy children prove their state in round k.
//
// Run with -n up to 18 (a 262144-world model) to see the scaling; each
// round prints how long evaluating the children's knowledge took versus
// rebuilding the model for the announcement of their answers.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	n := flag.Int("n", 6, "number of children (up to 18)")
	flag.Parse()
	if *n < 3 || *n > 18 {
		log.Fatalf("n = %d out of supported range [3, 18]", *n)
	}
	muddySet := []int{0, *n / 2, *n - 1} // k = 3 distinct children
	fmt.Printf("%d children play; children %v get mud on their foreheads.\n\n", *n, muddySet)

	fmt.Println("— With the father's public announcement —")
	res, err := repro.MuddyChildren(*n, muddySet, repro.PublicAnnouncement, *n+2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  model build + announcement: %v\n", res.BuildTime)
	narrate(res.Rounds)
	fmt.Printf("First proof in round %d (k = %d): as the induction predicts.\n\n", res.FirstYesRound, res.K)

	fmt.Println("— If the father says nothing —")
	res, err = repro.MuddyChildren(*n, muddySet, repro.NoAnnouncement, *n+2)
	if err != nil {
		log.Fatal(err)
	}
	narrate(res.Rounds)
	fmt.Println("Nobody ever learns anything: E^{k-1} m was already true, but the")
	fmt.Println("announcement's contribution — common knowledge of m — is missing.")
	fmt.Println()

	if *n <= 8 {
		fmt.Println("— If the father tells each child privately and secretly —")
		res, err = repro.MuddyChildren(*n, muddySet, repro.PrivateAnnouncement, *n+2)
		if err != nil {
			log.Fatal(err)
		}
		narrate(res.Rounds)
		fmt.Println("With k >= 2 every child already knew m, so the secret tellings add")
		fmt.Println("no usable information (the Clark–Marshall copresence contrast).")
	}
}

func narrate(rounds []repro.MuddyRound) {
	for i, r := range rounds {
		var yes []int
		for c, y := range r.Yes {
			if y {
				yes = append(yes, c)
			}
		}
		timing := fmt.Sprintf("[eval %v, build %v]", r.EvalTime, r.BuildTime)
		if len(yes) == 0 {
			fmt.Printf("  round %d: every child answers \"no\"   %s\n", i+1, timing)
		} else {
			fmt.Printf("  round %d: children %v answer \"yes\"   %s\n", i+1, yes, timing)
			return
		}
	}
}
