// Muddy children (Section 2): the father's public announcement of a fact
// every child already knows still changes the group's state of knowledge —
// from E^{k-1} m to common knowledge of m — and that difference is exactly
// what lets the muddy children prove their state in round k.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 6
	muddySet := []int{1, 3, 5} // k = 3

	fmt.Printf("%d children play; children %v get mud on their foreheads.\n\n", n, muddySet)

	fmt.Println("— With the father's public announcement —")
	res, err := repro.MuddyChildren(n, muddySet, repro.PublicAnnouncement, n+2)
	if err != nil {
		log.Fatal(err)
	}
	narrate(res.Rounds)
	fmt.Printf("First proof in round %d (k = %d): as the induction predicts.\n\n", res.FirstYesRound, res.K)

	fmt.Println("— If the father says nothing —")
	res, err = repro.MuddyChildren(n, muddySet, repro.NoAnnouncement, n+2)
	if err != nil {
		log.Fatal(err)
	}
	narrate(res.Rounds)
	fmt.Println("Nobody ever learns anything: E^{k-1} m was already true, but the")
	fmt.Println("announcement's contribution — common knowledge of m — is missing.")
	fmt.Println()

	fmt.Println("— If the father tells each child privately and secretly —")
	res, err = repro.MuddyChildren(n, muddySet, repro.PrivateAnnouncement, n+2)
	if err != nil {
		log.Fatal(err)
	}
	narrate(res.Rounds)
	fmt.Println("With k >= 2 every child already knew m, so the secret tellings add")
	fmt.Println("no usable information (the Clark–Marshall copresence contrast).")
}

func narrate(rounds []repro.MuddyRound) {
	for i, r := range rounds {
		var yes []int
		for c, y := range r.Yes {
			if y {
				yes = append(yes, c)
			}
		}
		if len(yes) == 0 {
			fmt.Printf("  round %d: every child answers \"no\"\n", i+1)
		} else {
			fmt.Printf("  round %d: children %v answer \"yes\"\n", i+1, yes)
			return
		}
	}
}
