package repro_test

import (
	"testing"

	"repro"
)

// TestQuickstart exercises the documented public API end to end.
func TestQuickstart(t *testing.T) {
	ok := repro.NewRun("ok", 2, 5)
	ok.Send(0, 1, 1, 2, "m")
	lost := repro.NewRun("lost", 2, 5)
	lost.SendLost(0, 1, 1, "m")
	sys := repro.MustSystem(ok, lost)
	pm := sys.Model(repro.CompleteHistoryView, repro.Interpretation{
		"sent": repro.StablyTrue(repro.SentBy("m")),
	})
	holds, err := pm.HoldsAt(repro.MustParse("K1 sent"), "ok", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !holds {
		t.Error("K1 sent should hold at (ok, 3)")
	}
	ck, err := pm.Eval(repro.MustParse("C sent"))
	if err != nil {
		t.Fatal(err)
	}
	if !ck.IsEmpty() {
		t.Error("C sent should be unattainable")
	}
}

func TestFormulaConstructorsMatchParser(t *testing.T) {
	g := repro.NewGroup(0, 1)
	pairs := []struct {
		built repro.Formula
		text  string
	}{
		{repro.K(0, repro.P("m")), "K0 m"},
		{repro.C(g, repro.Conj(repro.P("m"), repro.K(1, repro.P("m")))), "C{0,1} (m & K1 m)"},
		{repro.Ceps(nil, 2, repro.P("m")), "Ce[2] m"},
		{repro.Cev(nil, repro.P("m")), "Cv m"},
		{repro.Ct(nil, 5, repro.P("m")), "Ct[5] m"},
		{repro.GFP("X", repro.E(nil, repro.Conj(repro.P("m"), repro.X("X")))), "nu X . E (m & X)"},
	}
	for _, p := range pairs {
		parsed, err := repro.Parse(p.text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", p.text, err)
		}
		if parsed.String() != p.built.String() {
			t.Errorf("constructor %s != parsed %s", p.built, parsed)
		}
	}
}

func TestGenerateViaFacade(t *testing.T) {
	sender := repro.ProtocolFunc(func(v repro.LocalView) []repro.Outgoing {
		if len(v.Sent) == 0 {
			return []repro.Outgoing{{To: 1, Payload: "x"}}
		}
		return nil
	})
	sys, err := repro.Generate(
		[]repro.Protocol{sender, repro.Silent},
		repro.Unreliable{Delay: 1},
		[]repro.GenConfig{{Name: "c", Init: []string{"", ""}}},
		4, repro.GenOptions{},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Runs) != 2 {
		t.Errorf("generated %d runs, want 2", len(sys.Runs))
	}
}

func TestMuddyChildrenFacade(t *testing.T) {
	res, err := repro.MuddyChildren(5, []int{0, 1, 2}, repro.PublicAnnouncement, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstYesRound != 3 || !res.YesAreMuddy {
		t.Errorf("muddy children result = %+v", res)
	}
}

func TestExperimentsListed(t *testing.T) {
	exps := repro.Experiments()
	if len(exps) != 17 {
		t.Errorf("have %d experiments, want 17", len(exps))
	}
}

func TestRunExperimentsFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in short mode")
	}
	reps, err := repro.RunExperiments()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reps {
		if !r.Pass {
			t.Errorf("experiment %s failed:\n%s", r.ID, r)
		}
	}
}

func TestKnowledgeBasedProgramFacade(t *testing.T) {
	prog, cfgs := repro.BitTransmission([]string{"1"}, 1)
	res, err := repro.KBFixpoint(prog, repro.Reliable{Delay: 1}, cfgs, 6,
		repro.GenOptions{MaxMessagesPerRun: 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 1 || len(res.PM.Sys.Runs) == 0 {
		t.Errorf("unexpected fixed point: %+v", res)
	}
}

func TestKripkeModelFacade(t *testing.T) {
	m := repro.NewModel(2, 1)
	m.SetTrue(0, "p")
	m.Indistinguishable(0, 0, 1)
	set, err := m.Eval(repro.MustParse("K0 p"))
	if err != nil {
		t.Fatal(err)
	}
	if !set.IsEmpty() {
		t.Error("K0 p should fail: worlds indistinguishable")
	}
	taut, err := m.Valid(repro.MustParse("K0 (p | ~p)"))
	if err != nil {
		t.Fatal(err)
	}
	if !taut {
		t.Error("K0 of a tautology should be valid")
	}
}
