// Command knowd runs the knowledge-serving daemon: an HTTP/JSON service
// over the model-checking stack that keeps per-session announcement
// chains warm between requests. See internal/server for the API and the
// robustness contract (admission control, idempotency dedupe, panic
// recovery, graceful drain).
//
// knowd follows the repository's shared flag conventions: -seed pins
// every seeded draw (scenario fault sampling for sessions opened without
// an explicit seed) and -parallel caps EvalBatch workers (0 forces the
// serial loop, <0 uses one worker per core).
//
// SIGTERM or SIGINT drains gracefully: intake stops, in-flight requests
// finish, and — when -state is set — session chains are persisted to
// sessions.json and restored on the next start.
//
// Usage:
//
//	knowd -addr 127.0.0.1:7433 -seed 1 -parallel -1 -state /var/lib/knowd
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/kripke"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "knowd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("knowd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7433", "listen address")
	seed := fs.Int64("seed", 1, "seed for scenario sessions opened without an explicit seed")
	parallel := fs.Int("parallel", -1,
		"evaluation worker cap per request (0 forces the serial loop, <0 uses one worker per core)")
	queue := fs.Int("queue", 64, "concurrent compute slots before load shedding (429)")
	dedupe := fs.Int("dedupe", 256, "idempotency keys remembered by the dedupe window")
	sessionTTL := fs.Duration("session-ttl", 15*time.Minute, "idle session eviction age")
	state := fs.String("state", "", "directory for session persistence across drains (empty disables)")
	writeThrough := fs.Bool("write-through", false,
		"persist session state after every mutation, not only on drain (crash-survivable; needs -state)")
	drain := fs.Duration("drain", 30*time.Second, "graceful shutdown deadline")
	quiet := fs.Bool("quiet", false, "suppress operational logging")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logf := log.New(os.Stderr, "knowd: ", log.LstdFlags).Printf
	if *quiet {
		logf = nil
	}
	if *writeThrough && *state == "" {
		return fmt.Errorf("-write-through needs -state")
	}
	// A fresh incarnation stamp every boot: session ids minted by a
	// crashed-and-restarted knowd can never alias the previous process's,
	// and routers watching /healthz see the generation change.
	bootID := strconv.FormatInt(time.Now().UnixNano()^int64(os.Getpid()), 36)
	if bootID[0] == '-' {
		bootID = bootID[1:]
	}
	s := server.New(server.Config{
		Seed:         *seed,
		Workers:      kripke.WorkersFromFlag(*parallel),
		Queue:        *queue,
		DedupeWindow: *dedupe,
		SessionTTL:   *sessionTTL,
		StateDir:     *state,
		WriteThrough: *writeThrough,
		BootID:       bootID,
		Logf:         logf,
	})
	if *state != "" {
		restored, err := s.LoadSessions()
		if err != nil {
			return err
		}
		if restored > 0 {
			fmt.Fprintf(out, "knowd: restored %d sessions from %s\n", restored, *state)
		}
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "knowd: listening on %s (seed %d)\n", l.Addr(), *seed)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigc)

	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()
	select {
	case err := <-served:
		return err
	case sig := <-sigc:
		fmt.Fprintf(out, "knowd: %v: draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-served; err != nil {
			return err
		}
		fmt.Fprintln(out, "knowd: drained cleanly")
		return nil
	}
}
