package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// lineWriter hands each stdout line to the test as it appears, so the
// test can find the bound address before poking the daemon.
type lineWriter struct {
	mu    sync.Mutex
	buf   strings.Builder
	lines chan string
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	for _, ln := range strings.Split(string(p), "\n") {
		if ln != "" {
			select {
			case w.lines <- ln:
			default:
			}
		}
	}
	return len(p), nil
}

func (w *lineWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// TestServeAndDrain boots the daemon on an ephemeral port, serves one
// request, then delivers SIGTERM and expects a clean drain with session
// state persisted.
func TestServeAndDrain(t *testing.T) {
	dir := t.TempDir()
	out := &lineWriter{lines: make(chan string, 16)}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-state", dir, "-quiet"}, out)
	}()

	var addr string
	deadline := time.After(10 * time.Second)
	for addr == "" {
		select {
		case ln := <-out.lines:
			if m := listenRE.FindStringSubmatch(ln); m != nil {
				addr = m[1]
			}
		case err := <-done:
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		case <-deadline:
			t.Fatalf("daemon never reported its address\n%s", out.String())
		}
	}

	url := "http://" + addr
	resp, err := http.Post(url+"/v1/sessions", "application/json",
		strings.NewReader(`{"system":"muddy:2"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open: %d: %s", resp.StatusCode, body)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Fatalf("missing drain confirmation:\n%s", out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "sessions.json")); err != nil {
		t.Fatalf("drain did not persist sessions: %v", err)
	}

	// A second daemon over the same state dir restores the session.
	out2 := &lineWriter{lines: make(chan string, 16)}
	done2 := make(chan error, 1)
	go func() {
		done2 <- run([]string{"-addr", "127.0.0.1:0", "-state", dir, "-quiet"}, out2)
	}()
	restored := false
	deadline = time.After(10 * time.Second)
	for !restored {
		select {
		case ln := <-out2.lines:
			if strings.Contains(ln, "restored 1 sessions") {
				restored = true
			}
			if m := listenRE.FindStringSubmatch(ln); m != nil && !restored {
				t.Fatalf("daemon listening without restoring\n%s", out2.String())
			}
		case err := <-done2:
			t.Fatalf("second daemon exited early: %v\n%s", err, out2.String())
		case <-deadline:
			t.Fatalf("second daemon never restored\n%s", out2.String())
		}
	}
	syscall.Kill(os.Getpid(), syscall.SIGTERM)
	select {
	case <-done2:
	case <-time.After(30 * time.Second):
		t.Fatal("second daemon did not drain")
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-addr"}, io.Discard); err == nil {
		t.Fatal("bad flags accepted")
	}
	if err := run([]string{"-addr", "999.999.999.999:1"}, io.Discard); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}
