// Command knowctl is the knowd client CLI: it opens sessions against a
// running daemon, evaluates formula batches, drives announcement chains
// and inspects daemon state, all through the retrying internal/client
// (idempotency keys, backoff with full jitter, circuit breaker).
//
// The shared flag conventions apply: -seed pins the client's jitter and
// idempotency-key streams (equal seeds replay the identical request
// sequence), -parallel asks the server for that many evaluation workers
// (0 accepts the server default, <0 asks for one per core).
//
// Usage:
//
//	knowctl systems
//	knowctl open muddy:3
//	knowctl -worlds eval s1 "K0 muddy1" "C (muddy0 | muddy1 | muddy2)"
//	knowctl announce s1 "muddy0 | muddy1 | muddy2"
//	knowctl sessions | knowctl stats | knowctl close s1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/client"
	"repro/internal/kripke"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "knowctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("knowctl", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:7433", "knowd base URL")
	seed := fs.Int64("seed", 1, "client seed: jitter and idempotency-key streams; also the session seed for open")
	parallel := fs.Int("parallel", 0,
		"evaluation workers to request (0 accepts the server default, <0 asks for one per core)")
	worlds := fs.Bool("worlds", false, "print full denotation world lists with eval verdicts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no command (want systems | open | sessions | eval | announce | close | stats)")
	}
	c := client.New(client.Config{BaseURL: *addr, Seed: *seed})
	cmd, rest := fs.Arg(0), fs.Args()[1:]

	switch cmd {
	case "systems":
		infos, err := c.Systems()
		if err != nil {
			return err
		}
		for _, in := range infos {
			fmt.Fprintf(out, "%-22s %s\n", in.Spec, in.Desc)
		}
		return nil

	case "open":
		if len(rest) != 1 {
			return fmt.Errorf("usage: knowctl open <system-spec>")
		}
		st, err := c.Open(rest[0], *seed)
		if err != nil {
			return err
		}
		printState(out, st)
		return nil

	case "sessions":
		sts, err := c.Sessions()
		if err != nil {
			return err
		}
		for _, st := range sts {
			printState(out, st)
		}
		return nil

	case "eval":
		if len(rest) < 2 {
			return fmt.Errorf("usage: knowctl eval <session> <formula> [formula...]")
		}
		ev, err := c.Eval(rest[0], server.EvalRequest{
			Formulas: rest[1:],
			Workers:  kripke.WorkersFromFlag(*parallel),
			Worlds:   *worlds,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "session %s link %d\n", ev.Session, ev.Link)
		for _, v := range ev.Verdicts {
			at := "-"
			if v.Marked != nil {
				at = fmt.Sprintf("%v", *v.Marked)
			}
			fmt.Fprintf(out, "%-8d %-6s %s\n", v.Count, at, v.Formula)
			if *worlds {
				fmt.Fprintf(out, "         worlds %v\n", v.Worlds)
			}
		}
		return nil

	case "announce":
		if len(rest) != 2 {
			return fmt.Errorf("usage: knowctl announce <session> <formula>")
		}
		st, err := c.Announce(rest[0], rest[1])
		if err != nil {
			return err
		}
		printState(out, st)
		return nil

	case "close":
		if len(rest) != 1 {
			return fmt.Errorf("usage: knowctl close <session>")
		}
		if err := c.Close(rest[0]); err != nil {
			return err
		}
		fmt.Fprintf(out, "closed %s\n", rest[0])
		return nil

	case "stats":
		st, err := c.ServerStats()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "sessions %d opened %d closed %d evicted %d restored %d\n",
			st.Sessions, st.Opened, st.Closed, st.Evicted, st.Restored)
		fmt.Fprintf(out, "evals %d announces %d replays %d dedupe-hits %d shed %d panics %d\n",
			st.Evals, st.Announces, st.Replays, st.DedupeHits, st.Shed, st.Panics)
		return nil

	default:
		return fmt.Errorf("unknown command %q (want systems | open | sessions | eval | announce | close | stats)", cmd)
	}
}

func printState(out io.Writer, st server.SessionState) {
	fmt.Fprintf(out, "%-6s %-20s agents %-3d link %-3d worlds %-6d quotient %-6d marked %d\n",
		st.Session, st.System, st.Agents, st.Link, st.Worlds, st.Quotient, st.Marked)
}
