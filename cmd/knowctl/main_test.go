package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/server"
)

// ctl runs one knowctl invocation against the test daemon and returns its
// stdout.
func ctl(t *testing.T, url string, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(append([]string{"-addr", url}, args...), &sb); err != nil {
		t.Fatalf("knowctl %v: %v\n%s", args, err, sb.String())
	}
	return sb.String()
}

func TestFullSessionDialogue(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if out := ctl(t, ts.URL, "systems"); !strings.Contains(out, "muddy:N") || !strings.Contains(out, "scenario:dup") {
		t.Fatalf("systems output:\n%s", out)
	}
	out := ctl(t, ts.URL, "open", "muddy:3")
	if !strings.Contains(out, "muddy:3") || !strings.Contains(out, "worlds 8") {
		t.Fatalf("open output:\n%s", out)
	}
	sid := strings.Fields(out)[0]

	out = ctl(t, ts.URL, "eval", sid, "K0 muddy1", "K0 muddy0")
	if !strings.Contains(out, "4        true   K0 muddy1") || !strings.Contains(out, "0        false  K0 muddy0") {
		t.Fatalf("eval output:\n%s", out)
	}
	out = ctl(t, ts.URL, "-worlds", "eval", sid, "K0 muddy1")
	if !strings.Contains(out, "worlds [") {
		t.Fatalf("eval -worlds output:\n%s", out)
	}
	out = ctl(t, ts.URL, "announce", sid, "muddy0 | muddy1 | muddy2")
	if !strings.Contains(out, "link 1") || !strings.Contains(out, "worlds 7") {
		t.Fatalf("announce output:\n%s", out)
	}
	if out = ctl(t, ts.URL, "sessions"); !strings.Contains(out, sid) {
		t.Fatalf("sessions output:\n%s", out)
	}
	if out = ctl(t, ts.URL, "stats"); !strings.Contains(out, "evals 2 announces 1") {
		t.Fatalf("stats output:\n%s", out)
	}
	if out = ctl(t, ts.URL, "close", sid); !strings.Contains(out, "closed "+sid) {
		t.Fatalf("close output:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var sb strings.Builder
	for _, args := range [][]string{
		{"-addr", ts.URL},
		{"-addr", ts.URL, "quantum"},
		{"-addr", ts.URL, "open"},
		{"-addr", ts.URL, "eval", "s1"},
		{"-addr", ts.URL, "announce", "s1"},
		{"-addr", ts.URL, "close"},
	} {
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	// Server-side rejection surfaces as an error, not a panic.
	if err := run([]string{"-addr", ts.URL, "open", "quantum"}, &sb); err == nil {
		t.Error("unknown system spec accepted")
	}
}
