// Command scenariosim sweeps the fault regimes of Halpern & Moses
// dynamically: every regime is a seeded fault plan (delay distribution,
// drops, duplication, crash windows, clock drift) driving the virtual-clock
// simulation engine, and the resulting run systems are model-checked for
// which knowledge variant — C, ε-common, eventual-common, timestamped
// common — the broadcast fact attains at the witness action point. The
// printed matrix reproduces the paper's separations from injected faults
// alone; the whole sweep is byte-identical for equal -seed across
// repetitions and across -parallel worker counts.
//
// -ladder additionally replays the delivery announcement chain on one
// regime's epistemic structure ("at least d messages were delivered"),
// showing the knowledge the public announcements create that the faulty
// channel itself cannot; -incremental=false forces the chain onto the
// from-scratch restriction path (the ablation baseline).
//
// Usage:
//
//	scenariosim -seed 1 -agents 4 -runs 12 -parallel -1
//	scenariosim -seed 1 -delay-dist uniform:1-3 -drop 0.5 -ladder bounded
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/faults"
	"repro/internal/kripke"
	"repro/internal/runs"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "scenariosim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("scenariosim", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "sweep seed; equal seeds reproduce the matrix byte for byte")
	agents := fs.Int("agents", 4, "processors, including the broadcaster")
	samples := fs.Int("runs", 12, "sampled runs per initial configuration")
	eps := fs.Int("eps", 2, "ε of the C^eps column (ticks)")
	tstamp := fs.Int("T", 3, "timestamp of the C^T column (clock time)")
	drift := fs.Int("drift", 3, "clock-drift bound of the drift-beyond regime")
	drop := fs.Float64("drop", 0.4, "loss probability of the lossy regime")
	crash := fs.Float64("crash", 0.5, "crash probability of the crash regime")
	dup := fs.Float64("dup", 0.4, "duplication probability of the dup regime")
	delayDist := fs.String("delay-dist", "uniform:1-2",
		"delay distribution of the bounded regime (fixed:D | uniform:MIN-MAX | unbounded:SPAN)")
	horizon := fs.Int("horizon", 14, "observation horizon (ticks)")
	parallel := fs.Int("parallel", -1,
		"evaluation workers per regime (0 forces the serial loop, <0 uses one worker per core)")
	ladder := fs.String("ladder", "",
		"replay the delivery announcement chain on this regime (e.g. bounded); empty skips")
	incremental := fs.Bool("incremental", true,
		"thread quotient block maps and reachability seeds through the ladder's restrictions; false forces the from-scratch ablation path")
	recovery := fs.Bool("recovery", false,
		"model-check post-recovery knowledge around every sampled crash window of the crash regime")
	if err := fs.Parse(args); err != nil {
		return err
	}

	delay, err := faults.ParseDelayDist(*delayDist)
	if err != nil {
		return err
	}
	// WorkersFromFlag maps the shared -parallel convention onto EvalBatch
	// worker counts; Params treats 0 as "default" so per-core stays -1.
	workers := kripke.WorkersFromFlag(*parallel)
	if workers == 0 {
		workers = -1
	}
	p := scenario.Params{
		Seed:    *seed,
		Agents:  *agents,
		Samples: *samples,
		Eps:     *eps,
		T:       *tstamp,
		Drift:   *drift,
		Drop:    *drop,
		CrashP:  *crash,
		DupP:    *dup,
		Delay:   delay,
		Horizon: runs.Time(*horizon),
		Workers: workers,
	}
	// Validate the ladder key before the sweep runs, so a typo fails
	// immediately instead of after the full matrix prints.
	if *ladder != "" {
		if _, err := scenario.RegimeByKey(p, *ladder); err != nil {
			return err
		}
	}

	res, err := scenario.Sweep(p)
	if err != nil {
		return err
	}
	fmt.Print(res.Matrix())
	fmt.Println()
	fmt.Println("regimes:")
	for _, rg := range scenario.Regimes(p) {
		fmt.Printf("  %-14s %s\n", rg.Key, rg.Desc)
	}

	if *ladder != "" {
		if err := replayLadder(p, *ladder, *incremental); err != nil {
			return err
		}
	}
	if *recovery {
		if err := printRecovery(p); err != nil {
			return err
		}
	}
	return nil
}

// printRecovery prints the post-recovery knowledge checks of the crash
// regime: one row per sampled crash window whose recovery point lies
// inside the horizon.
func printRecovery(p scenario.Params) error {
	checks, err := scenario.PostRecoveryChecks(p)
	if err != nil {
		return err
	}
	fmt.Printf("\npost-recovery knowledge (crash regime, %d windows):\n", len(checks))
	fmt.Printf("%-16s %-5s %-9s %-6s %-9s %-7s %-9s\n",
		"run", "proc", "window", "knew", "recovers", "onset", "relearned")
	for _, c := range checks {
		onset := "never"
		if c.Onset >= 0 {
			onset = fmt.Sprintf("%d", c.Onset)
		}
		fmt.Printf("%-16s %-5d [%2d,%2d]   %-6v %-9v %-7s %-9v\n",
			c.Run, c.Proc, c.Start, c.End, c.KnewAtCrash, c.KnowsOnRecovery, onset, c.Relearned)
	}
	return nil
}

// replayLadder rebuilds one regime and prints its delivery announcement
// chain, one row per announced lower bound.
func replayLadder(p scenario.Params, key string, incremental bool) error {
	rg, err := scenario.RegimeByKey(p, key)
	if err != nil {
		return err
	}
	b, err := scenario.Build(p, rg)
	if err != nil {
		return err
	}
	steps, err := b.Ladder(p, incremental)
	if err != nil {
		return err
	}
	mode := "incremental"
	if !incremental {
		mode = "from-scratch"
	}
	fmt.Printf("\nannouncement ladder (regime %s, witness %s, t*=%d, %s restrictions):\n",
		rg.Key, b.Witness.Name, b.TStar, mode)
	fmt.Printf("%-14s %-10s %-10s %-8s\n", "announcement", "points", "E-depth", "C sent")
	for _, st := range steps {
		fmt.Printf("del >= %-7d %-10d %-10d %-8v\n", st.Deliveries, st.Points, st.EDepth, st.Common)
	}
	return nil
}
