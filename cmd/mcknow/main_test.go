package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleModel = `{
  "agents": 2,
  "worlds": ["w0", "w1", "w2"],
  "facts": {"p": ["w0", "w1"]},
  "indistinguishable": {"0": [["w0", "w1"]], "1": [["w1", "w2"]]}
}`

func writeModel(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEvaluatesFormulas(t *testing.T) {
	path := writeModel(t, sampleModel)
	if err := run([]string{"-model", path, "K0 p", "C p", "p | ~p"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeModel(t, sampleModel)
	cases := [][]string{
		{},                              // no model
		{"-model", path},                // no formulas
		{"-model", "/nonexistent", "p"}, // missing file
		{"-model", path, "K0 ("},        // parse error
		{"-model", path, "K9 p"},        // agent out of range
		{"-model", path, "<> p"},        // temporal on a static model
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestLoadModelValidation(t *testing.T) {
	bad := []string{
		`{`, // syntax
		`{"agents": 0, "worlds": ["a"]}`,
		`{"agents": 1, "worlds": []}`,
		`{"agents": 1, "worlds": ["a", "a"]}`, // duplicate world
		`{"agents": 1, "worlds": ["a"], "facts": {"p": ["zzz"]}}`,                      // unknown world
		`{"agents": 1, "worlds": ["a", "b"], "indistinguishable": {"7": [["a","b"]]}}`, // bad agent
		`{"agents": 1, "worlds": ["a", "b"], "indistinguishable": {"0": [["a","z"]]}}`, // unknown world
	}
	for _, content := range bad {
		path := writeModel(t, content)
		if _, err := loadModel(path); err == nil {
			t.Errorf("loadModel accepted %s", content)
		}
	}
	good := writeModel(t, sampleModel)
	m, err := loadModel(good)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumWorlds() != 3 || m.NumAgents() != 2 {
		t.Errorf("model = %d worlds, %d agents", m.NumWorlds(), m.NumAgents())
	}
	if !m.SameClass(0, 0, 1) || m.SameClass(0, 0, 2) {
		t.Error("indistinguishability not loaded correctly")
	}
}
