// Command mcknow is an epistemic model checker: it loads a finite Kripke
// model from a JSON file and evaluates formulas of the knowledge language
// over it.
//
// Usage:
//
//	mcknow -model m.json "C{0,1} (p & K0 p)" "E p -> D p"
//
// The formula batch is evaluated with the parallel fan-out of
// kripke.EvalBatch (-parallel=0 forces the serial loop, <0 one worker per
// core) and, under -quotient, on the bisimulation quotient of the model.
// -seed submits the batch in a seeded permuted order and prints results in
// the order given — verdicts are order-independent, so equal seeds (and
// in fact all seeds) reproduce the output byte for byte; varying the seed
// exercises exactly that property.
//
// Model file format:
//
//	{
//	  "agents": 2,
//	  "worlds": ["w0", "w1", "w2"],
//	  "facts": {"p": ["w0", "w1"]},
//	  "indistinguishable": {"0": [["w0", "w1"]], "1": [["w1", "w2"]]}
//	}
//
// Each entry of "indistinguishable" lists, per agent, groups of worlds the
// agent cannot tell apart (closed under reflexivity/symmetry/transitivity
// automatically).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/bitset"
	"repro/internal/faults"
	"repro/internal/kripke"
	"repro/internal/logic"
)

// seededPerm returns a deterministic Fisher-Yates permutation of [0, n).
func seededPerm(seed int64, n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	st := faults.NewStream(seed)
	for i := n - 1; i > 0; i-- {
		j := st.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

type modelFile struct {
	Agents            int                   `json:"agents"`
	Worlds            []string              `json:"worlds"`
	Facts             map[string][]string   `json:"facts"`
	Indistinguishable map[string][][]string `json:"indistinguishable"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mcknow:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mcknow", flag.ContinueOnError)
	modelPath := fs.String("model", "", "path to the model JSON file")
	quotient := fs.String("quotient", "auto", "evaluate the batch on the bisimulation quotient: auto, on, off")
	parallel := fs.Int("parallel", -1,
		"workers for the formula batch: <0 = one per core, 0 = serial, n = n workers")
	seed := fs.Int64("seed", 1,
		"seed of the batch submission order; verdicts are order-independent, so output is identical for every seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("-model is required")
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no formulas given")
	}

	m, err := loadModel(*modelPath)
	if err != nil {
		return err
	}

	// Quotient-before-eval: the whole formula batch is checked on the
	// bisimulation quotient (when it shrinks the model) and every verdict
	// mapped back to the original worlds, so names print unchanged.
	var q *kripke.Quotiented
	switch *quotient {
	case "auto":
		q = m.QuotientForEval(0)
	case "on":
		q = m.QuotientForEval(1)
	case "off":
		q = m.QuotientForEval(m.NumWorlds() + 1)
	default:
		return fmt.Errorf("bad -quotient %q (want auto, on or off)", *quotient)
	}
	if q.Quotiented() {
		fmt.Printf("(evaluating on the %d-world quotient of the %d-world model)\n",
			q.QuotientWorlds(), q.NumWorlds())
	}

	// Parse the whole batch first, then evaluate it in one EvalBatch: the
	// formulas are independent queries against one shared model, fanned
	// out across -parallel workers.
	formulas := make([]logic.Formula, 0, fs.NArg())
	for _, src := range fs.Args() {
		f, err := logic.Parse(src)
		if err != nil {
			return fmt.Errorf("parse %q: %w", src, err)
		}
		formulas = append(formulas, f)
	}
	// Submit the batch in a seeded permuted order and map the verdicts
	// back: batch evaluation is order-independent, so the printed output
	// does not depend on -seed — the shuffle exists to exercise that.
	perm := seededPerm(*seed, len(formulas))
	shuffled := make([]logic.Formula, len(formulas))
	for i, j := range perm {
		shuffled[j] = formulas[i]
	}
	shuffledSets, err := q.EvalBatch(shuffled, kripke.BatchWorkers(kripke.WorkersFromFlag(*parallel)))
	sets := make([]*bitset.Set, len(formulas))
	if err == nil {
		for i, j := range perm {
			sets[i] = shuffledSets[j]
		}
	}
	if err != nil {
		// Re-attribute the batch error to its formula: EvalBatch reports
		// the smallest failing index's error, which is the first formula
		// a serial sweep trips over.
		for _, f := range formulas {
			if _, ferr := q.Eval(f); ferr != nil {
				return fmt.Errorf("eval %q: %w", f.String(), ferr)
			}
		}
		return fmt.Errorf("eval: %w", err)
	}
	for i, f := range formulas {
		set := sets[i]
		fmt.Printf("%s\n", f)
		switch {
		case set.IsFull():
			fmt.Println("  valid (holds at every world)")
		case set.IsEmpty():
			fmt.Println("  unsatisfiable in this model (holds nowhere)")
		default:
			fmt.Print("  holds at:")
			set.ForEach(func(w int) bool {
				fmt.Printf(" %s", m.Name(w))
				return true
			})
			fmt.Println()
		}
	}
	return nil
}

func loadModel(path string) (*kripke.Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var mf modelFile
	if err := json.Unmarshal(data, &mf); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if mf.Agents < 1 {
		return nil, fmt.Errorf("%s: agents must be >= 1", path)
	}
	if len(mf.Worlds) == 0 {
		return nil, fmt.Errorf("%s: no worlds", path)
	}
	m := kripke.NewModel(len(mf.Worlds), mf.Agents)
	idx := make(map[string]int, len(mf.Worlds))
	for i, name := range mf.Worlds {
		if _, dup := idx[name]; dup {
			return nil, fmt.Errorf("%s: duplicate world %q", path, name)
		}
		idx[name] = i
		m.SetName(i, name)
	}
	lookup := func(name string) (int, error) {
		w, ok := idx[name]
		if !ok {
			return 0, fmt.Errorf("%s: unknown world %q", path, name)
		}
		return w, nil
	}
	for fact, worlds := range mf.Facts {
		for _, name := range worlds {
			w, err := lookup(name)
			if err != nil {
				return nil, err
			}
			m.SetTrue(w, fact)
		}
	}
	for agentStr, groups := range mf.Indistinguishable {
		a, err := strconv.Atoi(agentStr)
		if err != nil || a < 0 || a >= mf.Agents {
			return nil, fmt.Errorf("%s: bad agent %q", path, agentStr)
		}
		for _, group := range groups {
			for i := 1; i < len(group); i++ {
				w0, err := lookup(group[0])
				if err != nil {
					return nil, err
				}
				wi, err := lookup(group[i])
				if err != nil {
					return nil, err
				}
				m.Indistinguishable(a, w0, wi)
			}
		}
	}
	return m, nil
}
