// Command knowrouter fronts a fleet of knowd daemons: sessions are placed
// by weighted rendezvous-hashing their system spec, an active health
// checker ejects shards after consecutive probe failures and re-admits
// them through half-open probes, a dead shard's sessions fail over to a
// successor by replaying their persisted announcement sources (the
// announce-link CAS keeps the chain exactly-once across the handoff), and
// read-only requests hedge to a warm standby replica after a seeded
// latency threshold. Mutations are never hedged. See internal/cluster.
//
// knowrouter follows the repository's shared flag conventions: -seed pins
// every seeded draw (hedge-delay jitter, per-shard client backoff jitter,
// the default session seed). The -shards list uses id[*weight]=addr
// syntax, e.g.
//
//	knowrouter -addr 127.0.0.1:7500 \
//	    -shards n1=http://127.0.0.1:7501,n2*2=http://127.0.0.1:7502
//
// SIGTERM or SIGINT drains gracefully: intake stops answering (503 with a
// "draining" body, which upstream routers and checkers key off), in-flight
// requests finish, and shard-side sessions are left alive for the next
// router instance to adopt.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "knowrouter:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("knowrouter", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7500", "listen address")
	shardSpec := fs.String("shards", "", "shard fleet as comma-separated id[*weight]=addr entries (required)")
	seed := fs.Int64("seed", 1, "seed for hedge jitter, client jitter, and sessions opened without one")
	hedgeAfter := fs.Duration("hedge-after", 25*time.Millisecond,
		"base latency before hedging a read to the standby replica (<0 disables)")
	healthEvery := fs.Duration("health-every", time.Second, "health probe sweep period")
	failAfter := fs.Int("fail-after", 3, "consecutive failed probes before a shard is ejected")
	readmitAfter := fs.Duration("readmit-after", 5*time.Second,
		"cooldown before an ejected shard gets a half-open re-admission probe")
	shardAttempts := fs.Int("shard-attempts", 0, "data-path attempts per shard call (0 uses the client default)")
	shardBaseDelay := fs.Duration("shard-base-delay", 0, "data-path retry base backoff (0 uses the client default)")
	shardMaxDelay := fs.Duration("shard-max-delay", 0, "data-path retry backoff cap (0 uses the client default)")
	dedupe := fs.Int("dedupe", 256, "idempotency keys remembered by the dedupe window")
	drain := fs.Duration("drain", 30*time.Second, "graceful shutdown deadline")
	quiet := fs.Bool("quiet", false, "suppress operational logging")
	if err := fs.Parse(args); err != nil {
		return err
	}

	shards, err := cluster.ParseShards(*shardSpec)
	if err != nil {
		return err
	}
	logf := log.New(os.Stderr, "knowrouter: ", log.LstdFlags).Printf
	if *quiet {
		logf = nil
	}
	rt, err := cluster.New(cluster.Config{
		Shards:     shards,
		Seed:       *seed,
		HedgeAfter: *hedgeAfter,
		Health: cluster.HealthConfig{
			Every:        *healthEvery,
			FailAfter:    *failAfter,
			ReadmitAfter: *readmitAfter,
		},
		ShardMaxAttempts: *shardAttempts,
		ShardBaseDelay:   *shardBaseDelay,
		ShardMaxDelay:    *shardMaxDelay,
		DedupeWindow:     *dedupe,
		Logf:             logf,
	})
	if err != nil {
		return err
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "knowrouter: listening on %s (seed %d, %d shards)\n", l.Addr(), *seed, len(shards))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigc)

	served := make(chan error, 1)
	go func() { served <- rt.Serve(l) }()
	select {
	case err := <-served:
		return err
	case sig := <-sigc:
		fmt.Fprintf(out, "knowrouter: %v: draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-served; err != nil {
			return err
		}
		fmt.Fprintln(out, "knowrouter: drained cleanly")
		return nil
	}
}
