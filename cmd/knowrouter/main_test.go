package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
)

// lineWriter hands each stdout line to the test as it appears, so the
// test can find the bound address before poking the router.
type lineWriter struct {
	mu    sync.Mutex
	buf   strings.Builder
	lines chan string
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	for _, ln := range strings.Split(string(p), "\n") {
		if ln != "" {
			select {
			case w.lines <- ln:
			default:
			}
		}
	}
	return len(p), nil
}

func (w *lineWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// TestServeAndDrain boots the router over two in-process shards, routes
// one session open through it, then delivers SIGTERM and expects a clean
// drain.
func TestServeAndDrain(t *testing.T) {
	sh1 := httptest.NewServer(server.New(server.Config{}).Handler())
	defer sh1.Close()
	sh2 := httptest.NewServer(server.New(server.Config{}).Handler())
	defer sh2.Close()

	out := &lineWriter{lines: make(chan string, 16)}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0",
			"-shards", "n1=" + sh1.URL + ",n2=" + sh2.URL, "-quiet"}, out)
	}()

	var addr string
	deadline := time.After(10 * time.Second)
	for addr == "" {
		select {
		case ln := <-out.lines:
			if m := listenRE.FindStringSubmatch(ln); m != nil {
				addr = m[1]
			}
		case err := <-done:
			t.Fatalf("router exited early: %v\n%s", err, out.String())
		case <-deadline:
			t.Fatalf("router never reported its address\n%s", out.String())
		}
	}

	url := "http://" + addr
	resp, err := http.Post(url+"/v1/sessions", "application/json",
		strings.NewReader(`{"system":"muddy:2"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open through router: %d: %s", resp.StatusCode, body)
	}
	var st server.SessionState
	if err := json.Unmarshal(body, &st); err != nil || st.Session != "r1" {
		t.Fatalf("routed open state %s: %v", body, err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("router did not drain\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Fatalf("missing drain confirmation:\n%s", out.String())
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-addr"}, io.Discard); err == nil {
		t.Fatal("bad flags accepted")
	}
	if err := run([]string{"-shards", ""}, io.Discard); err == nil {
		t.Fatal("empty shard list accepted")
	}
	if err := run([]string{"-shards", "n1*0=http://a:1"}, io.Discard); err == nil {
		t.Fatal("zero-weight shard accepted")
	}
	if err := run([]string{"-shards", "n1=http://a:1", "-addr", "999.999.999.999:1"}, io.Discard); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}
