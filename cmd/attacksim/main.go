// Command attacksim explores the coordinated attack problem of Section 4:
// it generates the handshake system over an unreliable channel, tabulates
// the knowledge depth attained per delivery count, runs the exhaustive
// Corollary 6 / Proposition 10 rule searches, and replays the message
// chain as a public-announcement chain ("at least d messages were
// delivered"), showing the knowledge the announcement creates that the
// channel itself cannot. -incremental=false forces the chain onto the
// from-scratch restriction path (the ablation baseline); -chain=false
// skips the replay.
//
// -inject switches the system from exhaustive channel branching to the
// seeded fault-injection engine: message losses are drawn from a fault
// plan with the given drop probability (-seed seeds the plan, -runs sets
// the samples per configuration), and the same rule searches run over the
// sampled system. Equal seeds reproduce the output byte for byte;
// -parallel controls the chain replay's evaluation workers.
//
// Usage:
//
//	attacksim -budget 4 -horizon 10
//	attacksim -inject 0.5 -seed 1 -runs 40 -parallel -1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/faults"
	"repro/internal/kripke"
	"repro/internal/logic"
	"repro/internal/protocol"
	"repro/internal/runs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "attacksim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("attacksim", flag.ContinueOnError)
	budget := fs.Int("budget", 4, "maximum handshake messages per run")
	horizon := fs.Int("horizon", 10, "observation horizon (ticks)")
	chain := fs.Bool("chain", true, "replay the delivery announcement chain")
	incremental := fs.Bool("incremental", true,
		"thread quotient block maps and reachability seeds through the chain's restrictions; false forces the from-scratch ablation path")
	seed := fs.Int64("seed", 1, "fault-plan seed for -inject; equal seeds reproduce the output byte for byte")
	inject := fs.Float64("inject", 0,
		"sample the handshake under a fault plan with this drop probability instead of exhaustive channel branching (0 = exhaustive)")
	samples := fs.Int("runs", 40, "sampled runs per initial configuration when -inject is set")
	parallel := fs.Int("parallel", -1,
		"evaluation workers for the chain replay (0 forces the serial loop, <0 uses one worker per core)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var s *attack.System
	var err error
	if *inject > 0 {
		plan := &faults.Plan{Seed: *seed, Delay: faults.Fixed{D: 1}, Drop: *inject}
		s, err = attack.BuildInjected(*budget, runs.Time(*horizon), plan, *samples)
	} else {
		s, err = attack.Build(*budget, runs.Time(*horizon))
	}
	if err != nil {
		return err
	}
	never := func(protocol.LocalView) bool { return false }
	pm := s.Sys.Model(runs.CompleteHistoryView, s.Interp(never, never))

	if *inject > 0 {
		fmt.Printf("coordinated attack: budget %d, horizon %d, %d runs (injected: drop %g, seed %d, %d samples/config)\n\n",
			*budget, *horizon, len(s.Sys.Runs), *inject, *seed, *samples)
	} else {
		fmt.Printf("coordinated attack: budget %d, horizon %d, %d runs\n\n", *budget, *horizon, len(s.Sys.Runs))
	}
	fmt.Printf("%-24s %-12s %-16s\n", "run", "deliveries", "knowledge depth")
	for ri, r := range s.Sys.Runs {
		if r.Init[attack.GeneralA] != "go" {
			continue
		}
		d := 0
		for _, m := range r.Messages {
			if m.Delivered() {
				d++
			}
		}
		depth := 0
		f := logic.P(attack.IntentProp)
		for lvl := 1; lvl <= *budget+1; lvl++ {
			if lvl%2 == 1 {
				f = logic.K(attack.GeneralB, f)
			} else {
				f = logic.K(attack.GeneralA, f)
			}
			set, err := pm.Eval(f)
			if err != nil {
				return err
			}
			if !set.Contains(pm.World(ri, s.Sys.Horizon)) {
				break
			}
			depth = lvl
		}
		fmt.Printf("%-24s %-12d %-16d\n", r.Name, d, depth)
	}

	set, err := pm.Eval(logic.C(nil, logic.P(attack.IntentProp)))
	if err != nil {
		return err
	}
	fmt.Printf("\nC intent holds at %d of %d points\n", set.Count(), pm.NumWorlds())

	if *chain {
		if err := replayChain(s, *incremental, kripke.WorkersFromFlag(*parallel)); err != nil {
			return err
		}
	}

	c6, err := s.CheckCorollary6()
	if err != nil {
		return fmt.Errorf("corollary 6 violated: %w", err)
	}
	fmt.Printf("Corollary 6: %d threshold rule pairs tried, %d satisfy the constraints, none ever attacks\n",
		c6.RulesTried, c6.CorrectRules)

	p10, err := s.CheckProposition10()
	if err != nil {
		return fmt.Errorf("proposition 10 violated: %w", err)
	}
	fmt.Printf("Proposition 10: %d event rule pairs tried, %d satisfy eventual coordination, none ever attacks\n",
		p10.RulesTried, p10.CorrectRules)
	return nil
}

// replayChain runs the delivery announcement chain on the all-delivered
// run and prints one row per link.
func replayChain(s *attack.System, incremental bool, workers int) error {
	never := func(protocol.LocalView) bool { return false }
	pm := s.Sys.Model(runs.CompleteHistoryView, s.DeliveryInterp(never, never))
	best := s.BestChainRun()
	mode := "incremental"
	if !incremental {
		mode = "from-scratch"
	}
	fmt.Printf("\ndelivery announcement chain (run %s, %s restrictions):\n", best, mode)
	steps, err := s.ReplayDeliveryChain(pm, best, incremental, kripke.BatchWorkers(workers))
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %-10s %-10s %-8s %-8s\n", "announcement", "points", "quotient", "depth", "C intent")
	for _, st := range steps {
		fmt.Printf("del >= %-7d %-10d %-10d %-8d %-8v\n",
			st.Deliveries, st.Points, st.QuotientWorlds, st.Depth, st.Common)
	}
	return nil
}
