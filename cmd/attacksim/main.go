// Command attacksim explores the coordinated attack problem of Section 4:
// it generates the handshake system over an unreliable channel, tabulates
// the knowledge depth attained per delivery count, runs the exhaustive
// Corollary 6 / Proposition 10 rule searches, and replays the message
// chain as a public-announcement chain ("at least d messages were
// delivered"), showing the knowledge the announcement creates that the
// channel itself cannot. -incremental=false forces the chain onto the
// from-scratch restriction path (the ablation baseline); -chain=false
// skips the replay.
//
// Usage:
//
//	attacksim -budget 4 -horizon 10
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/logic"
	"repro/internal/protocol"
	"repro/internal/runs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "attacksim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("attacksim", flag.ContinueOnError)
	budget := fs.Int("budget", 4, "maximum handshake messages per run")
	horizon := fs.Int("horizon", 10, "observation horizon (ticks)")
	chain := fs.Bool("chain", true, "replay the delivery announcement chain")
	incremental := fs.Bool("incremental", true,
		"thread quotient block maps and reachability seeds through the chain's restrictions; false forces the from-scratch ablation path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	s, err := attack.Build(*budget, runs.Time(*horizon))
	if err != nil {
		return err
	}
	never := func(protocol.LocalView) bool { return false }
	pm := s.Sys.Model(runs.CompleteHistoryView, s.Interp(never, never))

	fmt.Printf("coordinated attack: budget %d, horizon %d, %d runs\n\n", *budget, *horizon, len(s.Sys.Runs))
	fmt.Printf("%-24s %-12s %-16s\n", "run", "deliveries", "knowledge depth")
	for ri, r := range s.Sys.Runs {
		if r.Init[attack.GeneralA] != "go" {
			continue
		}
		d := 0
		for _, m := range r.Messages {
			if m.Delivered() {
				d++
			}
		}
		depth := 0
		f := logic.P(attack.IntentProp)
		for lvl := 1; lvl <= *budget+1; lvl++ {
			if lvl%2 == 1 {
				f = logic.K(attack.GeneralB, f)
			} else {
				f = logic.K(attack.GeneralA, f)
			}
			set, err := pm.Eval(f)
			if err != nil {
				return err
			}
			if !set.Contains(pm.World(ri, s.Sys.Horizon)) {
				break
			}
			depth = lvl
		}
		fmt.Printf("%-24s %-12d %-16d\n", r.Name, d, depth)
	}

	set, err := pm.Eval(logic.C(nil, logic.P(attack.IntentProp)))
	if err != nil {
		return err
	}
	fmt.Printf("\nC intent holds at %d of %d points\n", set.Count(), pm.NumWorlds())

	if *chain {
		if err := replayChain(s, *incremental); err != nil {
			return err
		}
	}

	c6, err := s.CheckCorollary6()
	if err != nil {
		return fmt.Errorf("corollary 6 violated: %w", err)
	}
	fmt.Printf("Corollary 6: %d threshold rule pairs tried, %d satisfy the constraints, none ever attacks\n",
		c6.RulesTried, c6.CorrectRules)

	p10, err := s.CheckProposition10()
	if err != nil {
		return fmt.Errorf("proposition 10 violated: %w", err)
	}
	fmt.Printf("Proposition 10: %d event rule pairs tried, %d satisfy eventual coordination, none ever attacks\n",
		p10.RulesTried, p10.CorrectRules)
	return nil
}

// replayChain runs the delivery announcement chain on the all-delivered
// run and prints one row per link.
func replayChain(s *attack.System, incremental bool) error {
	never := func(protocol.LocalView) bool { return false }
	pm := s.Sys.Model(runs.CompleteHistoryView, s.DeliveryInterp(never, never))
	best := s.BestChainRun()
	mode := "incremental"
	if !incremental {
		mode = "from-scratch"
	}
	fmt.Printf("\ndelivery announcement chain (run %s, %s restrictions):\n", best, mode)
	steps, err := s.ReplayDeliveryChain(pm, best, incremental)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %-10s %-10s %-8s %-8s\n", "announcement", "points", "quotient", "depth", "C intent")
	for _, st := range steps {
		fmt.Printf("del >= %-7d %-10d %-10d %-8d %-8v\n",
			st.Deliveries, st.Points, st.QuotientWorlds, st.Depth, st.Common)
	}
	return nil
}
