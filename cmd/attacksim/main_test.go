package main

import "testing"

func TestRunDefaultish(t *testing.T) {
	if err := run([]string{"-budget", "3", "-horizon", "8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTinyBudget(t *testing.T) {
	if err := run([]string{"-budget", "1", "-horizon", "4"}); err != nil {
		t.Fatal(err)
	}
}
