// Command muddysim simulates the muddy children puzzle of Section 2.
//
// Usage:
//
//	muddysim -n 6 -muddy 0,2,4 -mode public
//
// Modes: public (the father announces m), none (he says nothing), private
// (he tells each child separately and secretly).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/muddy"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "muddysim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("muddysim", flag.ContinueOnError)
	n := fs.Int("n", 5, "number of children")
	muddyArg := fs.String("muddy", "0,1", "comma-separated indices of muddy children")
	mode := fs.String("mode", "public", "announcement mode: public, none, private")
	rounds := fs.Int("rounds", 0, "round budget (default n+2)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var muddySet []int
	if *muddyArg != "" {
		for _, part := range strings.Split(*muddyArg, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad child index %q", part)
			}
			muddySet = append(muddySet, c)
		}
	}
	var m muddy.AnnouncementMode
	switch *mode {
	case "public":
		m = muddy.PublicAnnouncement
	case "none":
		m = muddy.NoAnnouncement
	case "private":
		m = muddy.PrivateAnnouncement
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	budget := *rounds
	if budget == 0 {
		budget = *n + 2
	}

	fmt.Printf("%d children; muddy: %v; mode: %s\n\n", *n, muddySet, *mode)
	res, err := muddy.Simulate(*n, muddySet, m, budget)
	if err != nil {
		return err
	}
	for i, r := range res.Rounds {
		var yes []int
		for c, y := range r.Yes {
			if y {
				yes = append(yes, c)
			}
		}
		if len(yes) == 0 {
			fmt.Printf("round %d: all children answer \"no\"\n", i+1)
		} else {
			fmt.Printf("round %d: children %v answer \"yes\"\n", i+1, yes)
		}
	}
	fmt.Println()
	switch {
	case res.FirstYesRound == 0:
		fmt.Printf("no child ever proves its state (k=%d, %d rounds)\n", res.K, budget)
	case res.YesAreMuddy:
		fmt.Printf("the %d muddy children prove their state in round %d, as the theory predicts\n",
			res.K, res.FirstYesRound)
	default:
		fmt.Printf("unexpected: yes-sayers in round %d are not exactly the muddy children\n", res.FirstYesRound)
	}
	return nil
}
