// Command muddysim simulates the muddy children puzzle of Section 2.
//
// Usage:
//
//	muddysim -n 6 -muddy 0,2,4 -mode public
//
// Modes: public (the father announces m), none (he says nothing), private
// (he tells each child separately and secretly). n is supported up to 18
// (a 262144-world model); each round reports how long the children's
// knowledge checks took (eval) versus applying the resulting public
// announcement (build), making the construction/evaluation split of the
// model checker visible from the command line. -incremental=false forces
// every round's restriction onto the from-scratch path (the ablation
// baseline for the incremental announcement chain); -common checks common
// knowledge of m after every round; -parallel controls the worker pool
// that fans each round's n per-child knowledge checks out over the shared
// round model (-parallel=0 forces the serial loop, <0 uses one worker per
// core). -muddy random draws the muddy set from the seeded stream of
// -seed: equal seeds reproduce the output byte for byte.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/kripke"
	"repro/internal/muddy"
)

// maxN keeps interactive runs snappy; the muddy package itself supports 20.
const maxN = 18

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "muddysim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("muddysim", flag.ContinueOnError)
	n := fs.Int("n", 5, "number of children (up to 18)")
	muddyArg := fs.String("muddy", "0,1",
		"comma-separated indices of muddy children, or 'random' for a seeded draw (-seed)")
	seed := fs.Int64("seed", 1, "seed of the -muddy random draw; equal seeds reproduce the output byte for byte")
	mode := fs.String("mode", "public", "announcement mode: public, none, private")
	rounds := fs.Int("rounds", 0, "round budget (default n+2)")
	timing := fs.Bool("time", true, "print per-round build vs eval timing")
	quotient := fs.Bool("quotient", false, "report the bisimulation quotient of the initial model")
	incremental := fs.Bool("incremental", true,
		"thread derived state (joint views, reachability seeds) through each round's announcement; false forces the from-scratch ablation path")
	trackCommon := fs.Bool("common", false, "check common knowledge of m after every round")
	parallel := fs.Int("parallel", -1,
		"workers for the per-round knowledge batch: <0 = one per core, 0 = serial, n = n workers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n > maxN {
		return fmt.Errorf("n = %d out of supported range [1, %d]", *n, maxN)
	}

	var muddySet []int
	if *muddyArg == "random" {
		// Each child is muddy with probability 1/2 off the seeded stream;
		// the puzzle needs at least one muddy child, so an empty draw
		// muddies a seeded pick instead.
		st := faults.NewStream(*seed)
		for c := 0; c < *n; c++ {
			if st.Bool(0.5) {
				muddySet = append(muddySet, c)
			}
		}
		if len(muddySet) == 0 {
			muddySet = []int{st.Intn(*n)}
		}
		fmt.Printf("seeded muddy set (seed %d): %v\n", *seed, muddySet)
	} else if *muddyArg != "" {
		for _, part := range strings.Split(*muddyArg, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad child index %q", part)
			}
			muddySet = append(muddySet, c)
		}
	}
	var m muddy.AnnouncementMode
	switch *mode {
	case "public":
		m = muddy.PublicAnnouncement
	case "none":
		m = muddy.NoAnnouncement
	case "private":
		m = muddy.PrivateAnnouncement
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	budget := *rounds
	if budget == 0 {
		budget = *n + 2
	}

	fmt.Printf("%d children; muddy: %v; mode: %s\n\n", *n, muddySet, *mode)
	if *quotient {
		// Quotient-before-eval diagnostic: unlike the point models of the
		// runs packages (where silent tails collapse), every world of the
		// muddy model has a distinct fact vector, so the model is its own
		// bisimulation quotient and evaluation proceeds on it directly —
		// the granularity observation of "Common knowledge revisited" in
		// the other direction.
		p, err := muddy.New(*n, muddySet)
		if err != nil {
			return err
		}
		qv := p.Model().QuotientForEval(1)
		if qv.Quotiented() {
			fmt.Printf("quotient-before-eval: %d worlds collapse to %d\n\n",
				qv.NumWorlds(), qv.QuotientWorlds())
		} else {
			fmt.Printf("quotient-before-eval: the %d-world model is already minimal (all fact vectors distinct); evaluating directly\n\n",
				qv.NumWorlds())
		}
	}
	res, err := muddy.SimulateOpts(*n, muddySet, m, budget,
		muddy.SimOptions{Incremental: *incremental, TrackCommon: *trackCommon,
			Parallel: kripke.WorkersFromFlag(*parallel)})
	if err != nil {
		return err
	}
	if !*incremental {
		fmt.Println("announcements: from-scratch restriction (ablation path)")
	}
	if *timing {
		fmt.Printf("model build (2^%d worlds + announcement): %v\n", *n, res.BuildTime)
	}
	for i, r := range res.Rounds {
		var yes []int
		for c, y := range r.Yes {
			if y {
				yes = append(yes, c)
			}
		}
		suffix := ""
		if *trackCommon && i < len(res.CommonM) {
			suffix = fmt.Sprintf("   [C m: %v]", res.CommonM[i])
		}
		if *timing {
			suffix += fmt.Sprintf("   [eval %v, build %v]", r.EvalTime, r.BuildTime)
		}
		if len(yes) == 0 {
			fmt.Printf("round %d: all children answer \"no\"%s\n", i+1, suffix)
		} else {
			fmt.Printf("round %d: children %v answer \"yes\"%s\n", i+1, yes, suffix)
		}
	}
	fmt.Println()
	switch {
	case res.FirstYesRound == 0:
		fmt.Printf("no child ever proves its state (k=%d, %d rounds)\n", res.K, budget)
	case res.YesAreMuddy:
		fmt.Printf("the %d muddy children prove their state in round %d, as the theory predicts\n",
			res.K, res.FirstYesRound)
	default:
		fmt.Printf("unexpected: yes-sayers in round %d are not exactly the muddy children\n", res.FirstYesRound)
	}
	return nil
}
