package main

import "testing"

func TestRunModes(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "4", "-muddy", "0,2", "-mode", "public"},
		{"-n", "4", "-muddy", "1", "-mode", "none", "-rounds", "3"},
		{"-n", "4", "-muddy", "0,1,2", "-mode", "private"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "bogus"},
		{"-muddy", "x"},
		{"-n", "3", "-muddy", "9"},
		{"-n", "0"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
