package main

import "testing"

func TestRunModes(t *testing.T) {
	for _, args := range [][]string{
		{"-seed", "1", "-n", "4", "-maxcalls", "4", "-conv", "co"},
		{"-seed", "1", "-n", "3", "-maxcalls", "3", "-conv", "all", "-parallel", "0"},
		{"-seed", "1", "-n", "4", "-maxcalls", "4", "-conv", "lns", "-reveal", "-perlink", "4"},
		{"-seed", "1", "-n", "4", "-maxcalls", "4", "-conv", "co", "-reveal",
			"-calls", "ab.cd.ac.bd", "-incremental=false", "-parallel", "2"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-conv", "bogus"},
		{"-reveal"},
		{"-n", "1"},
		{"-conv", "co", "-maxcalls", "4", "-reveal", "-calls", "zz"},
		{"-badflag"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
