// Command gossipsim searches gossip-protocol call sequences for the
// knowledge levels they attain: n agents each hold a secret, calls merge
// secret sets, and the attainment table reports — per call convention
// (any, co, lns) — the minimal call count after which "everyone is an
// expert" holds, is mutually known to depth k (E^k), or is common
// knowledge at termination. Universes of candidate sequences are
// exhaustive below -cap and seeded samples beyond it, so the whole table
// is byte-identical for equal -seed across repetitions and -parallel
// worker counts.
//
// -reveal additionally replays one convention's witness sequence as a
// public revelation chain: link t announces the t-th call, the verdict
// tower is batch-evaluated per link, and the printed rows show common
// knowledge arriving only as the private call sequence becomes public.
// -incremental=false forces the chain onto the from-scratch restriction
// path (the ablation baseline); verdicts are identical either way.
//
// Usage:
//
//	gossipsim -seed 1 -n 4 -parallel -1
//	gossipsim -seed 1 -conv lns -reveal -perlink 8
//	gossipsim -seed 1 -conv co -reveal -calls ab.cd.ac.bd
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gossip"
	"repro/internal/kripke"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gossipsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gossipsim", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "search seed; equal seeds reproduce the table byte for byte")
	n := fs.Int("n", 4, "agents (2..12)")
	conv := fs.String("conv", "all", "convention to search: any, co, lns, or all")
	maxCalls := fs.Int("maxcalls", 8, "longest sequence length searched")
	depth := fs.Int("depth", 2, "E-tower depth of the table columns")
	capWorlds := fs.Int("cap", 262144, "exhaustive-universe world cap; longer lengths are sampled")
	sample := fs.Int("sample", 2048, "sampled-universe size beyond the cap")
	parallel := fs.Int("parallel", -1,
		"evaluation workers (0 forces the serial loop, <0 uses one worker per core)")
	reveal := fs.Bool("reveal", false,
		"replay the witness sequence of -conv as a public revelation chain")
	calls := fs.String("calls", "",
		"sequence for -reveal (e.g. ab.cd.ac.bd); empty uses the expert witness from the table")
	perLink := fs.Int("perlink", 8, "sampled deviations per revealed call in the -reveal universe")
	incremental := fs.Bool("incremental", true,
		"thread quotient block maps and reachability seeds through the chain's restrictions; false forces the from-scratch ablation path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	convs := gossip.Conventions()
	if *conv != "all" {
		v, err := gossip.ParseConvention(*conv)
		if err != nil {
			return err
		}
		convs = []gossip.Convention{v}
	}
	if *reveal && *conv == "all" {
		return fmt.Errorf("-reveal needs a single -conv (any, co or lns)")
	}
	workers := kripke.WorkersFromFlag(*parallel)

	p := gossip.Params{
		Seed:     *seed,
		N:        *n,
		MaxCalls: *maxCalls,
		Depth:    *depth,
		Cap:      *capWorlds,
		Sample:   *sample,
		Workers:  workers,
		Convs:    convs,
	}
	table, err := gossip.Search(p)
	if err != nil {
		return err
	}
	fmt.Print(table.Render())

	if !*reveal {
		return nil
	}
	return replay(table, convs[0], *calls, *perLink, *incremental, workers)
}

// replay prints the revelation chain of one convention: the actual
// sequence (the table's expert witness unless -calls overrides it) on a
// deviation-sampled universe.
func replay(table *gossip.Table, conv gossip.Convention, calls string, perLink int, incremental bool, workers int) error {
	p := table.P
	var seq gossip.Sequence
	if calls != "" {
		var err error
		if seq, err = gossip.ParseSequence(calls, p.N); err != nil {
			return err
		}
	} else {
		for _, row := range table.Rows {
			if row.Conv == conv && row.Levels[0].Calls >= 0 {
				var err error
				if seq, err = gossip.ParseSequence(row.Levels[0].Witness, p.N); err != nil {
					return err
				}
			}
		}
		if seq == nil {
			return fmt.Errorf("convention %s attained no expert sequence to reveal; pass -calls", conv.Key())
		}
	}
	u := gossip.SampleDeviations(conv, p.N, seq, perLink, p.Seed)
	m := u.Model()
	res, err := m.RevealChain(seq, gossip.ChainOptions{Incremental: incremental, Workers: workers})
	if err != nil {
		return err
	}
	mode := "incremental"
	if !incremental {
		mode = "from-scratch"
	}
	fmt.Printf("\nrevelation chain (conv %s, sequence %s, %d worlds, %s restrictions):\n",
		conv.Key(), seq, len(u.Seqs), mode)
	fmt.Printf("%-5s %-5s %-7s %-7s %-8s %-7s\n", "link", "call", "worlds", "blocks", "E-depth", "common")
	for _, st := range res.Steps {
		fmt.Printf("%-5d %-5s %-7d %-7d %-8d %-7v\n", st.Link, st.Call, st.Worlds, st.Blocks, st.EDepth, st.Common)
	}
	return nil
}
