package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/server"
)

// TestDryRunDeterministic: -dry dumps the canonical schedule without a
// server; equal seeds are byte-identical, different seeds are not.
func TestDryRunDeterministic(t *testing.T) {
	dump := func(seed string) string {
		var buf bytes.Buffer
		if err := run([]string{"-dry", "-seed", seed, "-workers", "3", "-sessions", "4"}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := dump("9"), dump("9")
	if a != b {
		t.Fatal("two -dry runs of one seed diverged")
	}
	if a == dump("10") {
		t.Fatal("different seeds produced identical schedules")
	}
	if !strings.Contains(a, "\topen\t") {
		t.Fatalf("dump has no open ops:\n%s", a)
	}
	// One op per line, tab-separated, logical IDs leading.
	for _, line := range strings.Split(strings.TrimRight(a, "\n"), "\n") {
		if !strings.HasPrefix(line, "w") || !strings.Contains(line, "\t") {
			t.Fatalf("malformed schedule line %q", line)
		}
	}
}

// TestRunAgainstLiveServer drives a small fleet at an in-process daemon
// and checks the report lands where -report points.
func TestRunAgainstLiveServer(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	path := filepath.Join(t.TempDir(), "LOAD_REPORT.md")
	var buf bytes.Buffer
	err := run([]string{
		"-addr", ts.URL, "-seed", "3", "-workers", "2", "-sessions", "2",
		"-report", path,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "0/") {
		t.Errorf("run output reports failures:\n%s", buf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	report := string(data)
	for _, want := range []string{"# knowload report", "-seed 3 -workers 2 -sessions 2", "## Latency by op type"} {
		if !strings.Contains(report, want) {
			t.Errorf("report misses %q", want)
		}
	}
}

// TestRunReportToStdout: empty -report prints the report inline.
func TestRunReportToStdout(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var buf bytes.Buffer
	if err := run([]string{"-addr", ts.URL, "-seed", "2", "-workers", "1", "-sessions", "2"}, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "# knowload report") {
		t.Errorf("stdout run misses inline report:\n%s", buf.String())
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mix", "quantum=3", "-dry"}, &buf); err == nil {
		t.Error("bad mix accepted")
	}
	if err := run([]string{"-dry", "extra"}, &buf); err == nil {
		t.Error("stray positional argument accepted")
	}
}
