// Command knowload is the deterministic load generator for knowd: a
// seeded multi-worker client fleet driving a mixed workload — muddy
// announcement ladders, scenario-regime sessions, r2d2 and attack
// sessions, eval batches — against a live daemon. Every op is drawn from
// an order-independent sub-stream of the seed, so equal seeds replay the
// byte-identical op sequence regardless of fleet size or timing; -dry
// dumps that sequence without touching a server. Live runs emit a
// LOAD_REPORT.md with per-op-type log-bucketed latency quantiles merged
// across workers.
//
// The shared flag conventions apply: -seed pins the schedule and every
// client's jitter and idempotency-key streams, -parallel asks the server
// for that many evaluation workers (0 accepts the server default, <0
// asks for one per core).
//
// Usage:
//
//	knowload -seed 7 -workers 4 -sessions 8 -dry
//	knowload -addr http://127.0.0.1:7433 -seed 7 -workers 4 -sessions 8 -report LOAD_REPORT.md
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/kripke"
	"repro/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "knowload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("knowload", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:7433", "knowd base URL")
	seed := fs.Int64("seed", 1, "schedule and client seed: equal seeds replay the identical op sequence")
	workers := fs.Int("workers", 4, "fleet workers (concurrent clients)")
	sessions := fs.Int("sessions", 4, "sessions per worker")
	mix := fs.String("mix", "", "workload mix weights, e.g. muddy=4,scenario=2,r2d2=1,attack=1 (empty uses the default)")
	closeProb := fs.Float64("close", 0.2, "probability a session's script ends with a close")
	parallel := fs.Int("parallel", 0,
		"evaluation workers to request (0 accepts the server default, <0 asks for one per core)")
	report := fs.String("report", "", "write the markdown run report to this path (empty prints it to stdout)")
	dry := fs.Bool("dry", false, "print the canonical op schedule and exit without contacting a server")
	maxAttempts := fs.Int("max-attempts", 30, "client retry attempts per op before it counts as failed")
	pace := fs.Duration("pace", 0,
		"per-worker sleep between ops: stretches wall clock for soak runs without changing the schedule")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	m, err := loadgen.ParseMix(*mix)
	if err != nil {
		return err
	}
	sc := loadgen.Build(loadgen.Config{
		Seed:      *seed,
		Workers:   *workers,
		Sessions:  *sessions,
		Mix:       m,
		CloseProb: *closeProb,
	})
	if *dry {
		return sc.Encode(out)
	}

	fmt.Fprintf(out, "knowload: %d ops over %d workers x %d sessions against %s (seed %d)\n",
		sc.NumOps(), sc.Cfg.Workers, sc.Cfg.Sessions, *addr, *seed)
	res, err := sc.Run(loadgen.RunConfig{
		NewClient: func(w int) *client.Client {
			return client.New(client.Config{
				BaseURL:     *addr,
				Seed:        *seed + int64(w)*7919,
				MaxAttempts: *maxAttempts,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    250 * time.Millisecond,
			})
		},
		EvalWorkers: kripke.WorkersFromFlag(*parallel),
		Pace:        *pace,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "knowload: done in %v, %d/%d ops failed\n", res.Elapsed, res.Errors, sc.NumOps())

	dst := out
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if err := loadgen.WriteReport(dst, sc, res); err != nil {
		return err
	}
	if *report != "" {
		fmt.Fprintf(out, "knowload: report written to %s\n", *report)
	}
	if res.Errors > 0 {
		return fmt.Errorf("%d ops failed", res.Errors)
	}
	return nil
}
