package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// E3 is one of the fastest drivers.
	if err := run([]string{"-run", "E3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "E999"}); err == nil {
		t.Fatal("unknown experiment id should fail")
	}
}
