// Command hmrepro runs the reproduction experiments (E1..E13 of DESIGN.md)
// and prints their reports. With -list it enumerates the experiments; with
// -run ID it executes a single one. The full suite fans the independent
// experiments out across one worker per core (-parallel=0 forces the
// serial loop); reports print in experiment order either way.
//
// Usage:
//
//	hmrepro            # run everything
//	hmrepro -list
//	hmrepro -run E7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/kripke"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hmrepro:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hmrepro", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiments and exit")
	only := fs.String("run", "", "run only the experiment with this id (e.g. E7)")
	parallel := fs.Int("parallel", -1,
		"workers for the experiment suite: <0 = one per core, 0 = serial, n = n workers")
	if err := fs.Parse(args); err != nil {
		return err
	}

	exps := core.All()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return nil
	}

	failures := 0
	if *only == "" {
		// The full suite: independent experiments fan out across workers,
		// reports print in experiment order.
		reps, err := core.RunAllWorkers(kripke.WorkersFromFlag(*parallel))
		// Print whatever completed before returning any error, so a
		// failing experiment does not swallow the clean reports.
		for _, rep := range reps {
			if rep == nil {
				continue
			}
			fmt.Print(rep)
			fmt.Println()
			if !rep.Pass {
				failures++
			}
		}
		if err != nil {
			return err
		}
	} else {
		found := false
		for _, e := range exps {
			if e.ID != *only {
				continue
			}
			found = true
			rep, err := e.Run()
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			fmt.Print(rep)
			fmt.Println()
			if !rep.Pass {
				failures++
			}
		}
		if !found {
			return fmt.Errorf("no experiment %q (try -list)", *only)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed", failures)
	}
	return nil
}
