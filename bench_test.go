// Benchmarks regenerating every experiment of the reproduction (one per
// table/series in DESIGN.md), plus ablation benchmarks for the design
// choices the library makes. Run with:
//
//	go test -bench=. -benchmem .
package repro_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/kripke"
	"repro/internal/logic"
	"repro/internal/muddy"
	"repro/internal/scenario"
)

// benchExperiment runs one experiment driver repeatedly, failing the bench
// if the reproduction deviates from the paper.
func benchExperiment(b *testing.B, run func() (*core.Report, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Pass {
			b.Fatalf("experiment failed:\n%s", rep)
		}
	}
}

func BenchmarkE1MuddyChildren(b *testing.B) {
	benchExperiment(b, func() (*core.Report, error) { return core.E1MuddyChildren(6) })
}

func BenchmarkE2KnowledgeDepth(b *testing.B) {
	benchExperiment(b, func() (*core.Report, error) { return core.E2KnowledgeDepth(5) })
}

func BenchmarkE3Hierarchy(b *testing.B) {
	benchExperiment(b, core.E3Hierarchy)
}

func BenchmarkE4CoordinatedAttack(b *testing.B) {
	benchExperiment(b, core.E4CoordinatedAttack)
}

func BenchmarkE5Theorem5(b *testing.B) {
	benchExperiment(b, core.E5Theorem5)
}

func BenchmarkE6Theorem7(b *testing.B) {
	benchExperiment(b, core.E6Theorem7)
}

func BenchmarkE7R2D2(b *testing.B) {
	benchExperiment(b, core.E7R2D2)
}

func BenchmarkE8Imprecision(b *testing.B) {
	benchExperiment(b, core.E8Imprecision)
}

func BenchmarkE9EpsilonEventual(b *testing.B) {
	benchExperiment(b, core.E9EpsilonEventual)
}

func BenchmarkE10Timestamped(b *testing.B) {
	benchExperiment(b, core.E10Timestamped)
}

func BenchmarkE11S5(b *testing.B) {
	benchExperiment(b, core.E11S5)
}

func BenchmarkE12InternalConsistency(b *testing.B) {
	benchExperiment(b, core.E12InternalConsistency)
}

func BenchmarkE13Fixpoint(b *testing.B) {
	benchExperiment(b, core.E13Fixpoint)
}

func BenchmarkE14Agreement(b *testing.B) {
	benchExperiment(b, core.E14Agreement)
}

func BenchmarkE15MessageChains(b *testing.B) {
	benchExperiment(b, core.E15MessageChains)
}

func BenchmarkE16FactDiscovery(b *testing.B) {
	benchExperiment(b, core.E16FactDiscovery)
}

func BenchmarkE17KnowledgeBasedProgram(b *testing.B) {
	benchExperiment(b, core.E17KnowledgeBasedProgram)
}

// Ablation: evaluation on a point model before and after bisimulation
// minimization (silent run tails collapse).
func BenchmarkAblationMinimizedEvaluation(b *testing.B) {
	sys := core.R2D2Chain(6, 9)
	pm := sys.Model(repro.CompleteHistoryView, repro.Interpretation{
		"sent": repro.StablyTrue(repro.SentBy("m")),
	})
	f := repro.MustParse("C sent")
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pm.Eval(f); err != nil {
				b.Fatal(err)
			}
		}
	})
	mini, _ := pm.Model.Minimize()
	b.Run("minimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mini.Eval(f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablations -----------------------------------------------------------

// chainModel is the strict-hierarchy model used by the ablations.
func chainModel(n int) *kripke.Model {
	m := kripke.NewModel(n, 2)
	for w := 0; w < n-1; w++ {
		m.SetTrue(w, "p")
	}
	for w := 0; w+1 < n; w++ {
		m.Indistinguishable(w%2, w, w+1)
	}
	return m
}

// Ablation: common knowledge via reachability components (the default)
// versus greatest-fixed-point iteration. On a chain of n worlds the gfp
// needs ~n iterations, so components win asymptotically.
func BenchmarkAblationCommonByComponents(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := chainModel(n)
			f := logic.C(nil, logic.P("p"))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Eval(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationCommonByIteration(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := chainModel(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := m.CommonKnowledgeByIteration(nil, logic.P("p")); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: muddy children model size — the 2^n-world model construction
// and a full simulation, as n grows.
func BenchmarkAblationMuddyScaling(b *testing.B) {
	for _, n := range []int{6, 9, 12, 15} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			muddySet := []int{0, 1, 2}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := muddy.Simulate(n, muddySet, muddy.PublicAnnouncement, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// redundantChain builds a model whose bisimulation quotient is a chain of
// `blocks` worlds (fact p marks one end; two agents alternate in pairing
// adjacent blocks into classes), with every block blown up to `copies`
// bisimilar copies. It is the worst case for from-scratch minimization —
// the refinement has to walk the whole chain, one block per round, over
// all blocks*copies worlds — and the best case for the seeded re-refinement,
// which re-confirms the renamed old blocks in one round.
func redundantChain(blocks, copies int) *kripke.Model {
	w := blocks * copies
	b := kripke.NewBuilder(w, 2)
	col := b.Column("p")
	for i := 0; i < copies; i++ {
		col.Add(i)
	}
	ids0 := make([]int32, w)
	ids1 := make([]int32, w)
	for i := 0; i < w; i++ {
		blk := i / copies
		ids0[i] = int32(blk / 2)
		ids1[i] = int32((blk + 1) / 2)
	}
	b.SetPartition(0, ids0, (blocks+1)/2)
	b.SetPartition(1, ids1, blocks/2+1)
	return b.Build()
}

// Ablation: a chained sequence of announcements, re-minimizing after every
// restriction — the announcement-chain hot path. The incremental arm
// threads the block map through RestrictWithQuotient so each Minimize is a
// seeded re-refinement; the from-scratch arm restricts with zero
// inheritance and refines from the trivial partition every round.
func BenchmarkAblationChainedRestrict(b *testing.B) {
	const blocks, copies, steps = 48, 96, 32
	run := func(b *testing.B, incremental bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := redundantChain(blocks, copies)
			q, blk := m.Minimize()
			for s := 0; s < steps; s++ {
				// Announce away the far end of the chain.
				keep := bitset.NewFull(m.NumWorlds())
				keep.RemoveRange(m.NumWorlds()-copies, m.NumWorlds())
				if incremental {
					m = m.RestrictWithQuotient(keep, blk)
				} else {
					m = m.RestrictOpts(keep, kripke.RestrictOptions{})
				}
				q, blk = m.Minimize()
			}
			if q.NumWorlds() != blocks-steps {
				b.Fatalf("chain ended with a %d-world quotient, want %d", q.NumWorlds(), blocks-steps)
			}
		}
	}
	b.Run("incremental", func(b *testing.B) { run(b, true) })
	b.Run("fromscratch", func(b *testing.B) { run(b, false) })
}

// Ablation: the muddy round loop with a per-round common-knowledge check,
// under the incremental announcement path (joint views and reachability
// seeds threaded through every Restrict) versus the from-scratch baseline.
func BenchmarkAblationMuddyRoundsQuotient(b *testing.B) {
	for _, n := range []int{10, 13} {
		for _, mode := range []struct {
			name string
			inc  bool
		}{{"incremental", true}, {"fromscratch", false}} {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode.name), func(b *testing.B) {
				opts := muddy.SimOptions{Incremental: mode.inc, TrackCommon: true}
				muddySet := []int{0, 1, 2}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := muddy.SimulateOpts(n, muddySet, muddy.PublicAnnouncement, 5, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// Ablation: formula evaluation cost by modal depth on a fixed model.
func BenchmarkAblationModalDepth(b *testing.B) {
	m := chainModel(512)
	for _, k := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("E^%d", k), func(b *testing.B) {
			f := logic.EK(nil, k, logic.P("p"))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Eval(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: point-model construction cost as the system grows (runs x
// horizon), dominated by view hashing.
func BenchmarkAblationPointModelBuild(b *testing.B) {
	for _, size := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("runs=%d", size), func(b *testing.B) {
			rs := make([]*repro.Run, size)
			for i := range rs {
				r := repro.NewRun(fmt.Sprintf("r%d", i), 3, 12)
				r.Send(0, 1, repro.Time(i%4), repro.Time(i%4+1), "m")
				r.Send(1, 2, repro.Time(i%4+2), repro.Time(i%4+3), "n")
				rs[i] = r
			}
			sys := repro.MustSystem(rs...)
			interp := repro.Interpretation{"sent": repro.StablyTrue(repro.SentBy("m"))}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = sys.Model(repro.CompleteHistoryView, interp)
			}
		})
	}
}

// Ablation: the parallel batch-evaluation engine against the serial loop
// on the muddy-round workload — n per-child know-sets plus group queries
// against one shared model. The serial arm is the engine every caller had
// before the fan-out; on a multi-core machine the parallel arm should
// approach workers× for the kernel-bound queries, and on one core the two
// arms coincide (EvalBatch degenerates to the serial loop).
func BenchmarkAblationBatchEval(b *testing.B) {
	const n = 13
	pz, err := muddy.New(n, []int{0, 1, 2})
	if err != nil {
		b.Fatal(err)
	}
	m := pz.Model()
	var fs []logic.Formula
	for i := 0; i < n; i++ {
		mi := logic.P(muddy.MuddyProp(i))
		fs = append(fs,
			logic.Disj(logic.K(logic.Agent(i), mi), logic.K(logic.Agent(i), logic.Neg(mi))))
	}
	fs = append(fs,
		logic.C(nil, logic.P(muddy.MProp)),
		logic.EK(nil, 3, logic.P(muddy.MProp)),
		logic.D(nil, logic.P(muddy.MuddyProp(0))),
	)
	if err := m.PrepareAgents(nil); err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.EvalBatch(fs, kripke.BatchWorkers(mode.workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: the fault-injected scenario sweep's announcement ladder with
// the incremental chain machinery (seeded quotient re-refinement threaded
// through each restriction) versus from-scratch restriction. The system is
// sampled once — the ablation measures the epistemic replay, not the
// simulation.
func BenchmarkAblationScenarioSweep(b *testing.B) {
	p := scenario.Params{Seed: 1}
	rg, err := scenario.RegimeByKey(p, "bounded")
	if err != nil {
		b.Fatal(err)
	}
	built, err := scenario.Build(p, rg)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name        string
		incremental bool
	}{{"incremental", true}, {"scratch", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				steps, err := built.Ladder(p, mode.incremental)
				if err != nil {
					b.Fatal(err)
				}
				if len(steps) == 0 {
					b.Fatal("empty ladder")
				}
			}
		})
	}
}

// Ablation: the gossip revelation chain — tens of public call revelations
// over a hundreds-of-worlds deviation universe, re-minimizing and
// batch-evaluating the verdict tower after every link. The incremental arm
// threads quotient block maps and reachability seeds through
// RestrictWithQuotient; the scratch arm restricts with zero inheritance and
// refines from the trivial partition every link. Unlike the redundantChain
// workload, a deviation universe has a near-trivial quotient (synchronous
// perfect recall makes almost every world its own block), so the two arms
// are expected to run close together: this ablation pins the overhead of
// threading inheritance through a workload it cannot compress, and the CI
// gate guards each arm against regressions separately. Universe sampling
// and model construction run inside the loop on both arms, mirroring how
// gossipsim consumes a chain.
func BenchmarkAblationGossipChain(b *testing.B) {
	const calls = "ab.cd.ef.ac.be.df.ae.bf.cd.ab.ce.df.ad.bc.ef.af.bd.ce.ab.cf.de.ac.bd.ef"
	const agents, perLink = 6, 12
	actual, err := gossip.ParseSequence(calls, agents)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		inc  bool
	}{{"incremental", true}, {"scratch", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				u := gossip.SampleDeviations(gossip.Any, agents, actual, perLink, 1)
				m := u.Model()
				res, err := m.RevealChain(actual, gossip.ChainOptions{Incremental: mode.inc, Workers: 1, Depth: 2})
				if err != nil {
					b.Fatal(err)
				}
				last := res.Steps[len(res.Steps)-1]
				if last.Worlds != 1 || !last.Common {
					b.Fatalf("chain should end on the actual world alone with C attained, got %+v", last)
				}
			}
		})
	}
}

// Ablation: the full experiment suite end to end.
func BenchmarkAllExperiments(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reps, err := core.RunAll()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reps {
			if !r.Pass {
				b.Fatalf("experiment %s failed", r.ID)
			}
		}
	}
}
