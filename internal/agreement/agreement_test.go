package agreement

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/runs"
)

func lockstep(t *testing.T) (Config, *runs.System, runs.Interpretation) {
	t.Helper()
	cfg := Config{N: 2, Variant: Lockstep, MinDelay: 1, MaxDelay: 1, Horizon: 5}
	sys, interp, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, sys, interp
}

func jittered(t *testing.T) (Config, *runs.System, runs.Interpretation) {
	t.Helper()
	cfg := Config{N: 2, Variant: Jittered, MinDelay: 1, MaxDelay: 2, Horizon: 6}
	sys, interp, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, sys, interp
}

func TestBuildValidation(t *testing.T) {
	bad := []Config{
		{N: 1, Variant: Lockstep, MinDelay: 1, MaxDelay: 1, Horizon: 5},
		{N: 5, Variant: Lockstep, MinDelay: 1, MaxDelay: 1, Horizon: 5},
		{N: 2, Variant: Lockstep, MinDelay: 0, MaxDelay: 1, Horizon: 5},
		{N: 2, Variant: Lockstep, MinDelay: 1, MaxDelay: 2, Horizon: 6}, // lockstep needs fixed delay
		{N: 2, Variant: Jittered, MinDelay: 2, MaxDelay: 1, Horizon: 6},
		{N: 2, Variant: Jittered, MinDelay: 1, MaxDelay: 2, Horizon: 3}, // horizon too small
	}
	for _, cfg := range bad {
		if _, _, err := Build(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestRunEnumeration(t *testing.T) {
	_, sys, _ := lockstep(t)
	// 2^2 bit patterns x 1 delay choice.
	if len(sys.Runs) != 4 {
		t.Errorf("lockstep: %d runs, want 4", len(sys.Runs))
	}
	_, jsys, _ := jittered(t)
	// 2^2 bit patterns x 2^2 delay choices (2 messages, 2 options each).
	if len(jsys.Runs) != 16 {
		t.Errorf("jittered: %d runs, want 16", len(jsys.Runs))
	}
}

func TestDecisionValues(t *testing.T) {
	_, sys, _ := lockstep(t)
	for _, r := range sys.Runs {
		want := 1
		for p := 0; p < r.N; p++ {
			if r.Init[p] == "0" {
				want = 0
			}
		}
		if r.Meta["decision"] != want {
			t.Errorf("run %s: decision %d, want %d", r.Name, r.Meta["decision"], want)
		}
	}
}

func TestDecisionSpread(t *testing.T) {
	_, sys, _ := lockstep(t)
	if got := DecisionSpread(sys); got != 0 {
		t.Errorf("lockstep spread = %d, want 0", got)
	}
	_, jsys, _ := jittered(t)
	if got := DecisionSpread(jsys); got != 1 {
		t.Errorf("jittered spread = %d, want 1", got)
	}
}

func TestLockstepAttainsCommonKnowledge(t *testing.T) {
	cfg, sys, interp := lockstep(t)
	cl, err := Check(cfg, sys, interp)
	if err != nil {
		t.Fatal(err)
	}
	if !cl.CAtFirstDecision {
		t.Error("lockstep: C(alldecided) should hold at the decision point")
	}
	if !cl.CByPhaseEnd || !cl.CTAtPhaseEnd {
		t.Error("lockstep: C and C^T should hold at the phase end")
	}
	if !cl.CepsOnFirstDecision {
		t.Error("lockstep: decisions are simultaneous, so C should hold from the decision point")
	}
}

func TestJitteredLosesCommonKnowledgeKeepsCT(t *testing.T) {
	cfg, sys, interp := jittered(t)
	cl, err := Check(cfg, sys, interp)
	if err != nil {
		t.Fatal(err)
	}
	if cl.CAtFirstDecision {
		t.Error("jittered: an early decider cannot have C(alldecided) at its decision point")
	}
	if !cl.CByPhaseEnd {
		t.Error("jittered: C(alldecided) should hold once the worst-case bound passes")
	}
	if !cl.CTAtPhaseEnd {
		t.Error("jittered: C^T(alldecided) with the phase-end timestamp should hold")
	}
	if !cl.CepsOnFirstDecision {
		t.Error("jittered: C^eps(somedecided) should hold from the first decision")
	}
}

func TestJitteredCEventuallyByClock(t *testing.T) {
	// With identity (global) clocks, C(alldecided) IS eventually attained
	// in the jittered variant: once the clock passes the latest possible
	// decision time, the phase being over is common knowledge. The
	// interesting failure is at the nominal phase end, where some runs
	// have decided and others have not.
	cfg, sys, interp := jittered(t)
	pm := sys.Model(runs.CompleteHistoryView, interp)
	cSet, err := pm.Eval(logic.C(nil, logic.P(DecideProp)))
	if err != nil {
		t.Fatal(err)
	}
	late := cfg.MaxDelay + 1
	for ri := range sys.Runs {
		if !cSet.Contains(pm.World(ri, late+1)) {
			t.Errorf("C(alldecided) should hold once the clock passes every decision time")
		}
	}
}

func TestDecisionValueKnowledge(t *testing.T) {
	// Every processor knows the decision value once it has decided; the
	// value itself becomes epsilon-common knowledge within the spread.
	_, sys, interp := jittered(t)
	pm := sys.Model(runs.CompleteHistoryView, interp)
	for ri, r := range sys.Runs {
		v := r.Meta["decision"]
		for p := 0; p < r.N; p++ {
			dt := runs.Time(r.Meta[decideKey(p)])
			f := logic.K(logic.Agent(p), logic.P(DecisionProp(v)))
			set, err := pm.Eval(f)
			if err != nil {
				t.Fatal(err)
			}
			if !set.Contains(pm.World(ri, dt)) {
				t.Errorf("run %s: p%d should know the decision value at its decision time %d", r.Name, p, dt)
			}
		}
	}
}

func BenchmarkBuildAndCheckJittered(b *testing.B) {
	cfg := Config{N: 2, Variant: Jittered, MinDelay: 1, MaxDelay: 2, Horizon: 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, interp, err := Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Check(cfg, sys, interp); err != nil {
			b.Fatal(err)
		}
	}
}
