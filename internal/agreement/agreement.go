// Package agreement implements the Section 12 discussion of phase-based
// agreement protocols: processors exchange their initial values in a
// synchronous phase and decide a joint function of what they received.
//
//   - In the lockstep variant (identical clocks, fixed delivery) the phase
//     ends simultaneously everywhere, and the decision value is common
//     knowledge at the end of the phase — the idealized model in which
//     protocols are usually analyzed.
//   - In the jittered variant message delivery within the phase varies by
//     up to ε, so phase ends are not simultaneous: plain common knowledge
//     of the decision is not attained (Theorem 8 morally applies), but
//     timestamped common knowledge with timestamp "end of phase" is — and,
//     as the paper notes for early-stopping protocols, once the first
//     processor decides, the decision value is ε-common knowledge.
//
// Decisions are modeled as ground facts derived from the runs; the
// knowledge claims are checked by the temporal machinery of the runs
// package.
package agreement

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/runs"
)

// Variant selects the phase timing model.
type Variant int

// Variants.
const (
	// Lockstep: every exchange message takes exactly MinDelay ticks.
	Lockstep Variant = iota + 1
	// Jittered: each message independently takes MinDelay..MaxDelay ticks.
	Jittered
)

// Config parameterizes the agreement system.
type Config struct {
	// N is the number of processors (2..4 supported; the run count is
	// 2^N x delivery choices).
	N int
	// Variant selects Lockstep or Jittered phases.
	Variant Variant
	// MinDelay and MaxDelay bound message delivery inside the phase.
	MinDelay, MaxDelay runs.Time
	// Horizon of the observed runs.
	Horizon runs.Time
}

// PhaseEnd returns the latest time by which every exchange message has
// been delivered and observed: the nominal "end of phase" timestamp.
func (c Config) PhaseEnd() runs.Time {
	// Messages are sent at time 0 and observed one tick after delivery.
	return c.MaxDelay + 1
}

// DecideProp is the ground fact "every processor has decided".
const DecideProp = "alldecided"

// DecisionProp returns the ground fact "the decided value is v" (v = 0, 1).
func DecisionProp(v int) string { return fmt.Sprintf("decision%d", v) }

// decide computes the decision from the initial bits: the AND of all
// inputs (agreement on "everyone voted yes").
func decide(bits []int) int {
	for _, b := range bits {
		if b == 0 {
			return 0
		}
	}
	return 1
}

// Build enumerates the system: every combination of initial bits and (for
// Jittered) per-message delivery delays. Every processor broadcasts its bit
// at time 0 and decides once it has heard from everyone; Meta["decide<p>"]
// records processor p's decision time in each run.
func Build(cfg Config) (*runs.System, runs.Interpretation, error) {
	if cfg.N < 2 || cfg.N > 4 {
		return nil, nil, fmt.Errorf("agreement: N must be in [2, 4], got %d", cfg.N)
	}
	if cfg.MinDelay < 1 || cfg.MinDelay > cfg.MaxDelay {
		return nil, nil, fmt.Errorf("agreement: need 1 <= MinDelay <= MaxDelay")
	}
	if cfg.Variant == Lockstep && cfg.MinDelay != cfg.MaxDelay {
		return nil, nil, fmt.Errorf("agreement: lockstep requires MinDelay == MaxDelay")
	}
	if cfg.PhaseEnd() >= cfg.Horizon {
		return nil, nil, fmt.Errorf("agreement: horizon %d too small for phase end %d", cfg.Horizon, cfg.PhaseEnd())
	}

	n := cfg.N
	nMsgs := n * (n - 1) // each processor sends to every other
	delayChoices := int(cfg.MaxDelay - cfg.MinDelay + 1)

	var rs []*runs.Run
	for bitsMask := 0; bitsMask < 1<<n; bitsMask++ {
		bits := make([]int, n)
		for i := range bits {
			bits[i] = (bitsMask >> i) & 1
		}
		// Enumerate delivery delay vectors.
		total := 1
		for i := 0; i < nMsgs; i++ {
			total *= delayChoices
		}
		for choice := 0; choice < total; choice++ {
			r := runs.NewRun(fmt.Sprintf("b%d_c%d", bitsMask, choice), n, cfg.Horizon)
			for p := 0; p < n; p++ {
				r.Init[p] = fmt.Sprintf("%d", bits[p])
				r.SetIdentityClock(p)
			}
			// Assign delays.
			c := choice
			msg := 0
			lastRecv := make([]runs.Time, n)
			for from := 0; from < n; from++ {
				for to := 0; to < n; to++ {
					if from == to {
						continue
					}
					d := cfg.MinDelay + runs.Time(c%delayChoices)
					c /= delayChoices
					r.Send(from, to, 0, d, fmt.Sprintf("v%d=%d", from, bits[from]))
					if d > lastRecv[to] {
						lastRecv[to] = d
					}
					msg++
				}
			}
			// Processor p decides one tick after its last receipt (when
			// the receipt enters its history).
			for p := 0; p < n; p++ {
				r.Meta[decideKey(p)] = int(lastRecv[p]) + 1
			}
			r.Meta["decision"] = decide(bits)
			rs = append(rs, r)
		}
	}
	sys, err := runs.NewSystem(rs...)
	if err != nil {
		return nil, nil, err
	}

	interp := runs.Interpretation{
		DecideProp: func(r *runs.Run, t runs.Time) bool {
			for p := 0; p < r.N; p++ {
				if int(t) < r.Meta[decideKey(p)] {
					return false
				}
			}
			return true
		},
		DecisionProp(0): func(r *runs.Run, t runs.Time) bool {
			return r.Meta["decision"] == 0 && somebodyDecided(r, t)
		},
		DecisionProp(1): func(r *runs.Run, t runs.Time) bool {
			return r.Meta["decision"] == 1 && somebodyDecided(r, t)
		},
		"somedecided": somebodyDecided,
	}
	return sys, interp, nil
}

func decideKey(p int) string { return fmt.Sprintf("decide%d", p) }

func somebodyDecided(r *runs.Run, t runs.Time) bool {
	for p := 0; p < r.N; p++ {
		if int(t) >= r.Meta[decideKey(p)] {
			return true
		}
	}
	return false
}

// DecisionSpread returns the largest gap, over runs, between the first and
// last decision times — 0 in lockstep systems, up to MaxDelay-MinDelay in
// jittered ones.
func DecisionSpread(sys *runs.System) runs.Time {
	var spread runs.Time
	for _, r := range sys.Runs {
		lo, hi := runs.Time(1<<30), runs.Time(0)
		for p := 0; p < r.N; p++ {
			d := runs.Time(r.Meta[decideKey(p)])
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		if hi-lo > spread {
			spread = hi - lo
		}
	}
	return spread
}

// Claims bundles the verdicts of the Section 12 checks.
type Claims struct {
	// CAtFirstDecision: in every run, C(alldecided) already holds at the
	// run's first decision point. True under lockstep phases (deciding and
	// everyone-having-decided coincide); false under jitter, where an
	// early decider cannot know the laggards are done.
	CAtFirstDecision bool
	// CByPhaseEnd: C(alldecided) holds once the worst-case phase end has
	// passed on the (global) clock — the time bound itself is common
	// knowledge.
	CByPhaseEnd bool
	// CTAtPhaseEnd: C^T(alldecided) with T = phase end holds everywhere —
	// the timestamped common knowledge the paper says phase protocols
	// actually attain.
	CTAtPhaseEnd bool
	// CepsOnFirstDecision: C^ε(somedecided) holds from the first decision
	// point on, with ε = the decision spread (0 means simultaneity, in
	// which case plain C is required instead) — the early-stopping remark
	// of Section 11.
	CepsOnFirstDecision bool
}

// Check verifies the Section 12 claims on a system built by Build.
func Check(cfg Config, sys *runs.System, interp runs.Interpretation) (Claims, error) {
	pm := sys.Model(runs.CompleteHistoryView, interp)
	var cl Claims

	phaseEnd := cfg.PhaseEnd()
	cSet, err := pm.Eval(logic.C(nil, logic.P(DecideProp)))
	if err != nil {
		return cl, err
	}
	cl.CAtFirstDecision = true
	cl.CByPhaseEnd = true
	for ri, r := range sys.Runs {
		first := runs.Time(1 << 30)
		for p := 0; p < r.N; p++ {
			if d := runs.Time(r.Meta[decideKey(p)]); d < first {
				first = d
			}
		}
		if !cSet.Contains(pm.World(ri, first)) {
			cl.CAtFirstDecision = false
		}
		if !cSet.Contains(pm.World(ri, phaseEnd)) {
			cl.CByPhaseEnd = false
		}
	}

	ctSet, err := pm.Eval(logic.Ct(nil, int(phaseEnd), logic.P(DecideProp)))
	if err != nil {
		return cl, err
	}
	cl.CTAtPhaseEnd = ctSet.IsFull()

	eps := int(DecisionSpread(sys))
	var spreadFormula logic.Formula
	if eps == 0 {
		spreadFormula = logic.C(nil, logic.P("somedecided"))
	} else {
		spreadFormula = logic.Ceps(nil, eps, logic.P("somedecided"))
	}
	ceSet, err := pm.Eval(spreadFormula)
	if err != nil {
		return cl, err
	}
	cl.CepsOnFirstDecision = true
	for ri, r := range sys.Runs {
		first := runs.Time(1 << 30)
		for p := 0; p < r.N; p++ {
			if d := runs.Time(r.Meta[decideKey(p)]); d < first {
				first = d
			}
		}
		for t := first; t <= sys.Horizon; t++ {
			if !ceSet.Contains(pm.World(ri, t)) {
				cl.CepsOnFirstDecision = false
			}
		}
	}
	return cl, nil
}
