package chains

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logic"
	"repro/internal/protocol"
	"repro/internal/runs"
)

func TestEarliestInfluenceRelay(t *testing.T) {
	// p0 -> p1 at (1, 2), p1 -> p2 at (3, 4): influence from p0 reaches
	// p1 at 2 and p2 at 4. The second hop works because 2 < 3.
	r := runs.NewRun("relay", 3, 6)
	r.Send(0, 1, 1, 2, "a")
	r.Send(1, 2, 3, 4, "b")
	e := EarliestInfluence(r, 0)
	if e[0] != 0 || e[1] != 2 || e[2] != 4 {
		t.Errorf("EarliestInfluence = %v, want [0 2 4]", e)
	}
	if !HasChain(r, 0, 2, 5) {
		t.Error("chain should reach p2 by t=5")
	}
	if HasChain(r, 0, 2, 4) {
		t.Error("receive at 4 is not in p2's history at t=4")
	}
}

func TestChainNeedsCausalOrder(t *testing.T) {
	// p1's send happens at the same instant it receives from p0: the
	// information cannot have been incorporated (sends depend on history
	// strictly before the send).
	r := runs.NewRun("tight", 3, 6)
	r.Send(0, 1, 1, 2, "a")
	r.Send(1, 2, 2, 3, "b") // sent at 2, the receive at 2 not yet in history
	e := EarliestInfluence(r, 0)
	if e[2] != runs.Lost {
		t.Errorf("influence should not pass through a same-instant relay, got %v", e)
	}
}

func TestLostMessagesCarryNothing(t *testing.T) {
	r := runs.NewRun("lossy", 2, 5)
	r.SendLost(0, 1, 1, "a")
	if HasChain(r, 0, 1, 5) {
		t.Error("a lost message is not a chain")
	}
}

// forwardingProtocols returns clockless protocols: the source (p0) sends
// its initial bit to p1 at the first opportunity; p1 forwards anything it
// receives to p2.
func forwardingProtocols() []protocol.Protocol {
	src := protocol.Func(func(v protocol.LocalView) []protocol.Outgoing {
		if len(v.Sent) == 0 {
			return []protocol.Outgoing{{To: 1, Payload: "bit=" + v.Init}}
		}
		return nil
	})
	fwd := protocol.Func(func(v protocol.LocalView) []protocol.Outgoing {
		if len(v.Received) > len(v.Sent) {
			return []protocol.Outgoing{{To: 2, Payload: "fwd:" + v.Received[len(v.Sent)].Payload}}
		}
		return nil
	})
	return []protocol.Protocol{src, fwd, protocol.Silent}
}

func relaySystem(t *testing.T, ch protocol.Channel) *runs.PointModel {
	t.Helper()
	cfgs := []protocol.Config{
		{Name: "one", Init: []string{"1", "", ""}},
		{Name: "zero", Init: []string{"0", "", ""}},
	}
	sys, err := protocol.Generate(forwardingProtocols(), ch, cfgs, 8, protocol.Options{MaxMessagesPerRun: 4})
	if err != nil {
		t.Fatal(err)
	}
	return sys.Model(runs.CompleteHistoryView, InitInterpretation(sys))
}

func TestKnowledgeGainOnRelay(t *testing.T) {
	pm := relaySystem(t, protocol.Unreliable{Delay: 1})
	rep, err := CheckKnowledgeGain(pm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PointsChecked == 0 {
		t.Fatal("no knowledge points found; the relay should teach p1 and p2")
	}
	if rep.KnowledgeWithChain != rep.PointsChecked {
		t.Errorf("chains missing: %+v", rep)
	}
	// And p2 does learn p0's bit in the fully delivered run.
	learned := false
	for ri, r := range pm.Sys.Runs {
		set, err := pm.Eval(logic.K(2, logic.P(InitProp(0, "1"))))
		if err != nil {
			t.Fatal(err)
		}
		if r.Init[0] == "1" && set.Contains(pm.World(ri, pm.Sys.Horizon)) {
			learned = true
		}
	}
	if !learned {
		t.Error("p2 should learn p0's bit through the relay in some run")
	}
}

func TestKnowledgeGainRejectsClockedSystems(t *testing.T) {
	r := runs.NewRun("clocked", 2, 4)
	r.SetIdentityClock(0)
	sys := runs.MustSystem(r)
	pm := sys.Model(runs.CompleteHistoryView, runs.Interpretation{})
	if _, err := CheckKnowledgeGain(pm); err == nil {
		t.Error("clocked systems must be rejected (timing can leak information)")
	}
}

// TestQuickKnowledgeGain property-checks the theorem over randomized
// clockless protocols and channels.
func TestQuickKnowledgeGain(t *testing.T) {
	channels := []protocol.Channel{
		protocol.Reliable{Delay: 1},
		protocol.Unreliable{Delay: 1},
		protocol.BoundedDelay{Min: 1, Max: 2},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3
		// Random static routing: processor p forwards its k-th message to
		// route[p][k]; the source sends its bit spontaneously.
		route := make([][]int, n)
		for p := range route {
			route[p] = []int{rng.Intn(n), rng.Intn(n)}
			for i, to := range route[p] {
				if to == p {
					route[p][i] = (p + 1) % n
				}
			}
		}
		protos := make([]protocol.Protocol, n)
		for p := 0; p < n; p++ {
			p := p
			protos[p] = protocol.Func(func(v protocol.LocalView) []protocol.Outgoing {
				if v.Me == 0 && len(v.Sent) == 0 && len(v.Received) == 0 {
					return []protocol.Outgoing{{To: route[0][0], Payload: "bit=" + v.Init}}
				}
				if len(v.Received) > len(v.Sent) && len(v.Sent) < len(route[p]) {
					return []protocol.Outgoing{{
						To:      route[p][len(v.Sent)],
						Payload: "f:" + v.Received[len(v.Sent)].Payload,
					}}
				}
				return nil
			})
		}
		cfgs := []protocol.Config{
			{Name: "one", Init: []string{"1", "", ""}},
			{Name: "zero", Init: []string{"0", "", ""}},
		}
		ch := channels[rng.Intn(len(channels))]
		sys, err := protocol.Generate(protos, ch, cfgs, 7, protocol.Options{MaxMessagesPerRun: 4})
		if err != nil {
			t.Log(err)
			return false
		}
		pm := sys.Model(runs.CompleteHistoryView, InitInterpretation(sys))
		if _, err := CheckKnowledgeGain(pm); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKnowledgeGain(b *testing.B) {
	cfgs := []protocol.Config{
		{Name: "one", Init: []string{"1", "", ""}},
		{Name: "zero", Init: []string{"0", "", ""}},
	}
	sys, err := protocol.Generate(forwardingProtocols(), protocol.Unreliable{Delay: 1}, cfgs, 8,
		protocol.Options{MaxMessagesPerRun: 4})
	if err != nil {
		b.Fatal(err)
	}
	pm := sys.Model(runs.CompleteHistoryView, InitInterpretation(sys))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CheckKnowledgeGain(pm); err != nil {
			b.Fatal(err)
		}
	}
}
