// Package chains implements the message-chain analysis of knowledge gain
// (Chandy & Misra, "How processes learn", cited in Sections 8, 14 and
// Appendix B of Halpern & Moses): in an asynchronous (clockless,
// event-driven) system, a processor can come to know a contingent fact
// about another processor's initial state only if a chain of messages
// carries the information — message m1 sent by the source, received by a
// processor that later sends m2, and so on, ending at the learner.
//
// The package computes message chains in runs and machine-checks the
// theorem over generated systems: wherever K_i("p_j's initial state is v")
// holds, a chain from p_j to p_i has completed in time to be observed.
package chains

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/runs"
)

// EarliestInfluence returns, for each processor, the earliest time its
// local state can reflect information originating in processor from's
// initial state: 0 for from itself, and for others the earliest receive
// time over message chains from from (runs.Lost if no chain reaches them).
func EarliestInfluence(r *runs.Run, from int) []runs.Time {
	const inf = runs.Time(1 << 30)
	earliest := make([]runs.Time, r.N)
	for i := range earliest {
		earliest[i] = inf
	}
	earliest[from] = 0
	// Relax until fixpoint; chains are acyclic in time, so repeated passes
	// converge (each pass propagates at least one more hop).
	for changed := true; changed; {
		changed = false
		for _, m := range r.Messages {
			if !m.Delivered() {
				continue
			}
			// The sender's state influences the message if the sender is
			// the source itself (its initial state is in its history from
			// the start) or the influence was received strictly before
			// the send (a send at time t depends on history before t).
			available := m.From == from || (earliest[m.From] != inf && earliest[m.From] < m.SendTime)
			if available && m.RecvTime < earliest[m.To] {
				earliest[m.To] = m.RecvTime
				changed = true
			}
		}
	}
	for i := range earliest {
		if earliest[i] == inf {
			earliest[i] = runs.Lost
		}
	}
	return earliest
}

// HasChain reports whether a message chain from processor from reaches
// processor to early enough to be part of to's history at time t (the last
// receive is strictly before t). A processor trivially "reaches" itself.
func HasChain(r *runs.Run, from, to int, t runs.Time) bool {
	if from == to {
		return true
	}
	e := EarliestInfluence(r, from)[to]
	return e != runs.Lost && e < t
}

// InitProp returns the ground-fact name for "processor j's initial state
// is v".
func InitProp(j int, v string) string { return fmt.Sprintf("init%d=%s", j, v) }

// InitInterpretation builds the interpretation assigning InitProp(j, v)
// for every processor j and value v occurring in the system.
func InitInterpretation(sys *runs.System) runs.Interpretation {
	interp := runs.Interpretation{}
	for j := 0; j < sys.N; j++ {
		values := map[string]bool{}
		for _, r := range sys.Runs {
			values[r.Init[j]] = true
		}
		for v := range values {
			j, v := j, v
			interp[InitProp(j, v)] = func(r *runs.Run, _ runs.Time) bool {
				return r.Init[j] == v
			}
		}
	}
	return interp
}

// GainReport summarizes a knowledge-gain check.
type GainReport struct {
	// PointsChecked counts (point, learner, source, value) combinations
	// where the learner knows the source's initial value.
	PointsChecked int
	// KnowledgeWithChain counts those backed by a message chain.
	KnowledgeWithChain int
}

// CheckKnowledgeGain verifies the message-chain theorem on a clockless
// system: for all processors i != j and every value v of p_j's initial
// state that is contingent (not constant across runs), whenever
// K_i(init_j = v) holds at (r, t) there is a message chain from j to i
// completing before t. Returns the tally, or an error with the first
// counterexample.
func CheckKnowledgeGain(pm *runs.PointModel) (GainReport, error) {
	var rep GainReport
	sys := pm.Sys
	for _, r := range sys.Runs {
		for p := 0; p < sys.N; p++ {
			if r.HasClock(p) {
				return rep, fmt.Errorf("chains: the message-chain theorem needs a clockless system; p%d has a clock in %s", p, r.Name)
			}
		}
	}
	for j := 0; j < sys.N; j++ {
		values := map[string]bool{}
		constant := true
		for _, r := range sys.Runs {
			values[r.Init[j]] = true
			if r.Init[j] != sys.Runs[0].Init[j] {
				constant = false
			}
		}
		if constant {
			continue // the fact is community knowledge, no chain needed
		}
		for v := range values {
			phi := logic.P(InitProp(j, v))
			for i := 0; i < sys.N; i++ {
				if i == j {
					continue
				}
				set, err := pm.Eval(logic.K(logic.Agent(i), phi))
				if err != nil {
					return rep, err
				}
				for ri, r := range sys.Runs {
					for t := runs.Time(0); t <= sys.Horizon; t++ {
						if !set.Contains(pm.World(ri, t)) {
							continue
						}
						rep.PointsChecked++
						if !HasChain(r, j, i, t) {
							return rep, fmt.Errorf(
								"chains: p%d knows %s at (%s,%d) with no message chain from p%d",
								i, phi, r.Name, t, j)
						}
						rep.KnowledgeWithChain++
					}
				}
			}
		}
	}
	return rep, nil
}
