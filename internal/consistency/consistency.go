// Package consistency implements Section 13 of Halpern & Moses: internal
// knowledge consistency. An epistemic interpretation ascribes beliefs to
// processors as a function of their local histories; it is a knowledge
// interpretation if beliefs are always true, and internally knowledge
// consistent if there is a subsystem R' ⊆ R on which it is a knowledge
// interpretation and which realizes every local history occurring in R —
// so nothing a processor ever observes contradicts acting as if the
// beliefs were knowledge.
//
// The canonical example (Sections 8 and 13) is the "eager" interpretation
// of distributed commit: the coordinator believes the transaction is
// (common) knowledge as soon as it sends the commit message, and the
// participant as soon as it receives it. During the window of
// vulnerability these beliefs are false, so the interpretation is not
// knowledge consistent — but it is internally knowledge consistent with
// respect to the subsystem of runs with instantaneous delivery.
package consistency

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/bitset"
	"repro/internal/logic"
	"repro/internal/runs"
)

// Epistemic ascribes beliefs to processors as a function of their local
// history, as required by Section 6's definition of an epistemic
// interpretation.
type Epistemic struct {
	// Believes returns the formulas processor p believes when its local
	// history is h (the canonical encoding of runs.Run.History).
	Believes func(p int, h string) []logic.Formula
}

// Violation describes one point where a belief is false.
type Violation struct {
	Run     string
	T       runs.Time
	Proc    int
	Formula string
}

func (v Violation) String() string {
	return fmt.Sprintf("p%d believes %s at (%s,%d) but it is false", v.Proc, v.Formula, v.Run, v.T)
}

// CheckKnowledgeConsistent verifies the knowledge axiom for the epistemic
// interpretation over the point model: every believed formula is true at
// every point where it is believed. Believed formulas are evaluated under
// the model's (view-based) semantics, so beliefs may mention K and C.
// It returns all violations found.
func CheckKnowledgeConsistent(pm *runs.PointModel, e Epistemic) ([]Violation, error) {
	var out []Violation
	cache := make(map[string]*bitset.Set)
	sys := pm.Sys
	for ri, r := range sys.Runs {
		for t := runs.Time(0); t <= sys.Horizon; t++ {
			for p := 0; p < sys.N; p++ {
				for _, f := range e.Believes(p, r.History(p, t)) {
					key := f.String()
					set, ok := cache[key]
					if !ok {
						var err error
						set, err = pm.Eval(f)
						if err != nil {
							return nil, err
						}
						cache[key] = set
					}
					if !set.Contains(pm.World(ri, t)) {
						out = append(out, Violation{Run: r.Name, T: t, Proc: p, Formula: key})
					}
				}
			}
		}
	}
	return out, nil
}

// CheckInternallyConsistent verifies that the epistemic interpretation is
// internally knowledge consistent with respect to the subsystem consisting
// of the named runs: (1) restricted to the subsystem it is a knowledge
// interpretation, and (2) every local history occurring anywhere in the
// full system also occurs at some point of the subsystem.
func CheckInternallyConsistent(full *runs.System, view runs.ViewFunc, interp runs.Interpretation, e Epistemic, subsystem []string) error {
	subRuns := make([]*runs.Run, 0, len(subsystem))
	for _, name := range subsystem {
		r, ok := full.RunByName(name)
		if !ok {
			return fmt.Errorf("consistency: no run named %q", name)
		}
		subRuns = append(subRuns, r)
	}
	if len(subRuns) == 0 {
		return fmt.Errorf("consistency: empty subsystem")
	}
	sub, err := runs.NewSystem(subRuns...)
	if err != nil {
		return err
	}
	pm := sub.Model(view, interp)
	viol, err := CheckKnowledgeConsistent(pm, e)
	if err != nil {
		return err
	}
	if len(viol) > 0 {
		return fmt.Errorf("consistency: subsystem not knowledge consistent: %s (and %d more)", viol[0], len(viol)-1)
	}

	// History coverage: every history in the full system occurs in the
	// subsystem.
	have := make(map[[2]any]bool)
	for _, r := range sub.Runs {
		for t := runs.Time(0); t <= sub.Horizon; t++ {
			for p := 0; p < sub.N; p++ {
				have[[2]any{p, r.History(p, t)}] = true
			}
		}
	}
	for _, r := range full.Runs {
		for t := runs.Time(0); t <= full.Horizon; t++ {
			for p := 0; p < full.N; p++ {
				if !have[[2]any{p, r.History(p, t)}] {
					return fmt.Errorf("consistency: history of p%d at (%s,%d) unrealized in subsystem", p, r.Name, t)
				}
			}
		}
	}
	return nil
}

// FindConsistentSubsystem searches all nonempty subsets of runs (largest
// first) for one witnessing internal knowledge consistency. It returns the
// run names of the first witness, or an error if none exists. The search
// is exponential in the number of runs and intended for the small systems
// of this reproduction (at most ~16 runs).
func FindConsistentSubsystem(full *runs.System, view runs.ViewFunc, interp runs.Interpretation, e Epistemic) ([]string, error) {
	n := len(full.Runs)
	if n > 16 {
		return nil, fmt.Errorf("consistency: subset search supports at most 16 runs, got %d", n)
	}
	// Order masks by descending population count so the largest witness is
	// found first.
	masks := make([]int, 0, 1<<n)
	for m := 1; m < 1<<n; m++ {
		masks = append(masks, m)
	}
	for size := n; size >= 1; size-- {
		for _, m := range masks {
			if bits.OnesCount(uint(m)) != size {
				continue
			}
			var names []string
			for i := 0; i < n; i++ {
				if m&(1<<i) != 0 {
					names = append(names, full.Runs[i].Name)
				}
			}
			if err := CheckInternallyConsistent(full, view, interp, e, names); err == nil {
				return names, nil
			}
		}
	}
	return nil, fmt.Errorf("consistency: no internally consistent subsystem exists")
}

// CommitSystem builds the distributed-commit example: the coordinator (p0)
// sends "commit" to the participant (p1) at time 1; delivery takes 0, 1 or
// 2 ticks (one run each); processors have no clocks. The ground fact
// "committed" holds once the participant has received the message.
func CommitSystem(horizon runs.Time) (*runs.System, runs.Interpretation, error) {
	if horizon < 4 {
		return nil, nil, fmt.Errorf("consistency: horizon must be at least 4")
	}
	mk := func(name string, d runs.Time) *runs.Run {
		r := runs.NewRun(name, 2, horizon)
		r.Send(0, 1, 1, 1+d, "commit")
		return r
	}
	sys, err := runs.NewSystem(mk("instant", 0), mk("slow", 1), mk("slower", 2))
	if err != nil {
		return nil, nil, err
	}
	interp := runs.Interpretation{
		"committed": runs.StablyTrue(runs.ReceivedBy("commit")),
	}
	return sys, interp, nil
}

// EagerCommit is the eager epistemic interpretation of the commit example:
// the coordinator believes the transaction is committed — and commonly
// known to be — as soon as it sends the commit message, the participant as
// soon as it receives it.
func EagerCommit() Epistemic {
	committed := logic.P("committed")
	beliefs := []logic.Formula{committed, logic.C(nil, committed)}
	return Epistemic{
		Believes: func(p int, h string) []logic.Formula {
			switch p {
			case 0:
				if strings.Contains(h, ";s:") { // has sent
					return beliefs
				}
			case 1:
				if strings.Contains(h, ";r:") { // has received
					return beliefs
				}
			}
			return nil
		},
	}
}
