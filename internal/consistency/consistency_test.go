package consistency

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/runs"
)

func commit(t *testing.T) (*runs.System, runs.Interpretation) {
	t.Helper()
	sys, interp, err := CommitSystem(6)
	if err != nil {
		t.Fatal(err)
	}
	return sys, interp
}

func TestEagerCommitNotKnowledgeConsistent(t *testing.T) {
	sys, interp := commit(t)
	pm := sys.Model(runs.CompleteHistoryView, interp)
	viol, err := CheckKnowledgeConsistent(pm, EagerCommit())
	if err != nil {
		t.Fatal(err)
	}
	if len(viol) == 0 {
		t.Fatal("the eager interpretation should violate the knowledge axiom")
	}
	// A violation occurs in the window of vulnerability: the coordinator
	// believes "committed" after sending while the slow runs have not yet
	// delivered.
	found := false
	for _, v := range viol {
		if v.Proc == 0 && v.Run == "slower" && v.Formula == "committed" && v.T == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a coordinator violation at (slower, 2); got %v", viol)
	}
}

func TestEagerCommitInternallyConsistent(t *testing.T) {
	sys, interp := commit(t)
	// With respect to the instantaneous-delivery subsystem, the eager
	// beliefs are true whenever held, and every history of the full system
	// occurs there (no clocks, so timing is invisible).
	err := CheckInternallyConsistent(sys, runs.CompleteHistoryView, interp, EagerCommit(), []string{"instant"})
	if err != nil {
		t.Errorf("eager commit should be internally consistent wrt {instant}: %v", err)
	}
}

func TestSlowSubsystemNotConsistent(t *testing.T) {
	sys, interp := commit(t)
	// {slower} alone is not a witness: the coordinator's post-send belief
	// in "committed" is false during the delivery window even inside it.
	err := CheckInternallyConsistent(sys, runs.CompleteHistoryView, interp, EagerCommit(), []string{"slower"})
	if err == nil {
		t.Error("{slower} should not witness internal consistency")
	}
	// And the full system is not a witness either.
	err = CheckInternallyConsistent(sys, runs.CompleteHistoryView, interp, EagerCommit(),
		[]string{"instant", "slow", "slower"})
	if err == nil {
		t.Error("the full system should not witness internal consistency")
	}
}

func TestFindConsistentSubsystem(t *testing.T) {
	sys, interp := commit(t)
	names, err := FindConsistentSubsystem(sys, runs.CompleteHistoryView, interp, EagerCommit())
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "instant" {
		t.Errorf("witness = %v, want [instant]", names)
	}
}

func TestNoWitnessWhenBeliefsAbsurd(t *testing.T) {
	sys, interp := commit(t)
	absurd := Epistemic{
		Believes: func(p int, h string) []logic.Formula {
			return []logic.Formula{logic.False}
		},
	}
	if _, err := FindConsistentSubsystem(sys, runs.CompleteHistoryView, interp, absurd); err == nil {
		t.Error("believing false can never be internally consistent")
	}
}

func TestTrivialBeliefsAlwaysConsistent(t *testing.T) {
	sys, interp := commit(t)
	trivial := Epistemic{
		Believes: func(int, string) []logic.Formula { return nil },
	}
	pm := sys.Model(runs.CompleteHistoryView, interp)
	viol, err := CheckKnowledgeConsistent(pm, trivial)
	if err != nil {
		t.Fatal(err)
	}
	if len(viol) != 0 {
		t.Error("believing nothing is vacuously knowledge consistent")
	}
	if err := CheckInternallyConsistent(sys, runs.CompleteHistoryView, interp, trivial,
		[]string{"instant", "slow", "slower"}); err != nil {
		t.Errorf("trivial beliefs should be internally consistent wrt the full system: %v", err)
	}
}

func TestHistoryCoverageEnforced(t *testing.T) {
	// A subsystem missing a realized history must be rejected even if it
	// is knowledge consistent. Build a system where run "b" contains a
	// history that run "a" lacks, with no beliefs at all.
	a := runs.NewRun("a", 2, 4)
	b := runs.NewRun("b", 2, 4)
	b.Send(0, 1, 1, 2, "x")
	sys := runs.MustSystem(a, b)
	trivial := Epistemic{Believes: func(int, string) []logic.Formula { return nil }}
	err := CheckInternallyConsistent(sys, runs.CompleteHistoryView, runs.Interpretation{}, trivial, []string{"a"})
	if err == nil {
		t.Error("subsystem {a} cannot realize b's post-receive history")
	}
	if err != nil && !strings.Contains(err.Error(), "unrealized") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	sys, interp := commit(t)
	e := EagerCommit()
	if err := CheckInternallyConsistent(sys, runs.CompleteHistoryView, interp, e, nil); err == nil {
		t.Error("empty subsystem accepted")
	}
	if err := CheckInternallyConsistent(sys, runs.CompleteHistoryView, interp, e, []string{"nope"}); err == nil {
		t.Error("unknown run accepted")
	}
	if _, _, err := CommitSystem(2); err == nil {
		t.Error("tiny horizon accepted")
	}
}

func BenchmarkFindConsistentSubsystem(b *testing.B) {
	sys, interp, err := CommitSystem(6)
	if err != nil {
		b.Fatal(err)
	}
	e := EagerCommit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindConsistentSubsystem(sys, runs.CompleteHistoryView, interp, e); err != nil {
			b.Fatal(err)
		}
	}
}
