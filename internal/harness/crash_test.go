package harness_test

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/harness"
	"repro/internal/loadgen"
	"repro/internal/server"
)

var (
	buildOnce sync.Once
	builtBin  string
	buildErr  error
)

// knowdBin builds cmd/knowd once for the whole test binary.
func knowdBin(t *testing.T) string {
	t.Helper()
	if !harness.GoToolAvailable() {
		t.Skip("go tool not on PATH; cannot build knowd")
	}
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "knowd-bin-*")
		if err != nil {
			buildErr = err
			return
		}
		builtBin, buildErr = harness.BuildKnowd(dir)
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return builtBin
}

// crashSeeds returns the sweep seeds: 1–3 by default, overridable via
// KNOWD_CRASH_SEEDS ("4,5,6") so flake sweeps can widen the net without
// editing the test.
func crashSeeds(t *testing.T) []int64 {
	env := os.Getenv("KNOWD_CRASH_SEEDS")
	if env == "" {
		return []int64{1, 2, 3}
	}
	var seeds []int64
	for _, part := range strings.Split(env, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			t.Fatalf("KNOWD_CRASH_SEEDS: bad seed %q", part)
		}
		seeds = append(seeds, n)
	}
	return seeds
}

// newFleetClient builds a worker client patient enough to ride out a
// daemon restart inside one logical call's retry loop.
func newFleetClient(baseURL string, seed int64) func(w int) *client.Client {
	return func(w int) *client.Client {
		return client.New(client.Config{
			BaseURL:          baseURL,
			Seed:             seed + int64(w)*7919,
			MaxAttempts:      60,
			BaseDelay:        2 * time.Millisecond,
			MaxDelay:         50 * time.Millisecond,
			BreakerThreshold: 1 << 20, // a restart outage must not trip the breaker
		})
	}
}

// TestCrashRestartConvergence is the harness tentpole: a loadgen fleet
// drives a real knowd process; mid-workload the daemon is SIGKILLed — no
// drain, no shutdown hook — and restarted over its write-through state.
// The retrying fleet must converge to records byte-identical with a clean
// in-process baseline, and the surviving chains must sit at exactly the
// scheduled links: announce link preconditions make chain advances
// exactly-once even though the dedupe window died with the process.
func TestCrashRestartConvergence(t *testing.T) {
	bin := knowdBin(t)
	for _, seed := range crashSeeds(t) {
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			sc := loadgen.Build(loadgen.Config{Seed: seed, Workers: 3, Sessions: 2})

			// Clean baseline: same schedule against an in-process daemon.
			cleanSrv := server.New(server.Config{})
			cleanTS := httptest.NewServer(cleanSrv.Handler())
			defer cleanTS.Close()
			clean, err := sc.Run(loadgen.RunConfig{NewClient: newFleetClient(cleanTS.URL, seed)})
			if err != nil {
				t.Fatal(err)
			}
			if clean.Errors > 0 {
				t.Fatalf("clean baseline failed %d ops", clean.Errors)
			}

			addr, err := harness.FreeAddr()
			if err != nil {
				t.Fatal(err)
			}
			d, err := harness.New(harness.Config{
				Bin:      bin,
				Addr:     addr,
				StateDir: t.TempDir(),
				Args:     []string{"-write-through", "-quiet"},
				Logf:     t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Start(); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(d.Stop)

			// Kill after the open barrier, halfway into the body ops, so
			// announcement ladders are mid-flight when the process dies.
			counts := sc.CountByKind()
			opens := counts[loadgen.OpOpen]
			killAt := opens + (sc.NumOps()-opens)/2
			killC := make(chan struct{})
			restartDone := make(chan error, 1)
			go func() {
				<-killC
				if err := d.Kill(); err != nil {
					restartDone <- err
					return
				}
				restartDone <- d.Start()
			}()

			res, err := sc.Run(loadgen.RunConfig{
				NewClient: newFleetClient(d.URL(), seed),
				AfterOp: func(done int, op loadgen.Op) {
					if done == killAt {
						close(killC)
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if rerr := <-restartDone; rerr != nil {
				t.Fatalf("crash-restart: %v", rerr)
			}
			if res.Errors > 0 {
				for _, rec := range res.Records {
					if rec.Err != "" {
						t.Errorf("op failed across restart: %s: %s", rec.Line, rec.Err)
					}
				}
				t.FailNow()
			}

			// Byte-identical verdicts: the crash run's normalized records
			// equal the clean baseline's.
			cleanJSON, err := json.Marshal(clean.Records)
			if err != nil {
				t.Fatal(err)
			}
			crashJSON, err := json.Marshal(res.Records)
			if err != nil {
				t.Fatal(err)
			}
			if string(crashJSON) != string(cleanJSON) {
				t.Fatalf("crash run diverged from clean baseline:\nclean: %s\ncrash: %s",
					cleanJSON, crashJSON)
			}

			// Exactly-once chain advances: the daemon's surviving sessions
			// sit at precisely the scheduled final links — none lost to the
			// crash, none doubled by a retried announce.
			c := client.New(client.Config{BaseURL: d.URL()})
			states, err := c.Sessions()
			if err != nil {
				t.Fatal(err)
			}
			links := sc.FinalLinks()
			if len(states) != len(links) {
				t.Fatalf("daemon holds %d sessions, schedule leaves %d open", len(states), len(links))
			}
			var got, want []int
			for _, st := range states {
				got = append(got, st.Link)
			}
			for _, n := range links {
				want = append(want, n)
			}
			sort.Ints(got)
			sort.Ints(want)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("final chain links %v, schedule wants %v", got, want)
				}
			}

			// The restart genuinely restored persisted chains.
			st, err := c.ServerStats()
			if err != nil {
				t.Fatal(err)
			}
			if st.Restored == 0 {
				t.Fatal("restarted daemon restored nothing; the kill landed before any persistence")
			}
			t.Logf("seed %d: killed at op %d/%d; restored %d; replays %d; announce hist %s",
				seed, killAt, sc.NumOps(), st.Restored, st.Replays, res.Hists[loadgen.OpAnnounce])
		})
	}
}

// TestDaemonLifecycle pins the harness controls themselves: boot, serve,
// drain; then boot, SIGKILL, and restart over the same state without a
// drain ever running.
func TestDaemonLifecycle(t *testing.T) {
	bin := knowdBin(t)
	addr, err := harness.FreeAddr()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	d, err := harness.New(harness.Config{
		Bin:      bin,
		Addr:     addr,
		StateDir: dir,
		Args:     []string{"-write-through", "-quiet"},
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	c := client.New(client.Config{BaseURL: d.URL()})
	st, err := c.Open("muddy:3", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AnnounceAt(st.Session, "muddy0 | muddy1 | muddy2", 0); err != nil {
		t.Fatal(err)
	}

	// SIGKILL: no drain ran, yet write-through already persisted the chain.
	if err := d.Kill(); err != nil {
		t.Fatal(err)
	}
	if d.Running() {
		t.Fatal("daemon reported running after Kill")
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	after, err := c.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 || after[0].Link != 1 {
		t.Fatalf("restart lost the chain: %+v", after)
	}
	if err := d.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if d.Running() {
		t.Fatal("daemon reported running after Drain")
	}
}
