package harness_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaosproxy"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/loadgen"
	"repro/internal/server"
)

var (
	routerOnce sync.Once
	routerBin  string
	routerErr  error
)

// knowrouterBin builds cmd/knowrouter once for the whole test binary.
func knowrouterBin(t *testing.T) string {
	t.Helper()
	if !harness.GoToolAvailable() {
		t.Skip("go tool not on PATH; cannot build knowrouter")
	}
	routerOnce.Do(func() {
		dir, err := os.MkdirTemp("", "knowrouter-bin-*")
		if err != nil {
			routerErr = err
			return
		}
		routerBin, routerErr = harness.BuildKnowrouter(dir)
	})
	if routerErr != nil {
		t.Fatal(routerErr)
	}
	return routerBin
}

// flakyLink is the router's only path to one shard: normally a mildly lossy
// chaosproxy (delays, occasional drops and duplicates, trickled and severed
// responses), flipped into a full partition where every message in either
// direction is lost — including the half of "drops" where the shard
// executes the request and only the response dies, the regime the paper's
// impossibility argument lives in.
type flakyLink struct {
	partitioned atomic.Bool
	mild, cut   http.Handler
}

func newFlakyLink(t *testing.T, target string, seed int64) *flakyLink {
	t.Helper()
	mild, err := chaosproxy.New(chaosproxy.Config{
		Target:    target,
		Plan:      faults.Plan{Seed: seed, Delay: faults.Uniform{Min: 1, MaxD: 2}, Drop: 0.05, Dup: 0.1},
		Tick:      time.Millisecond,
		SlowLoris: 0.2,
		Sever:     0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cut, err := chaosproxy.New(chaosproxy.Config{
		Target: target,
		Plan:   faults.Plan{Seed: seed + 1, Delay: faults.Fixed{D: 1}, Drop: 1},
		Tick:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &flakyLink{mild: mild, cut: cut}
}

func (l *flakyLink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if l.partitioned.Load() {
		l.cut.ServeHTTP(w, r)
		return
	}
	l.mild.ServeHTTP(w, r)
}

func routerStats(routerURL string) (cluster.RouterStats, error) {
	var st cluster.RouterStats
	resp, err := http.Get(routerURL + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// TestClusterPartitionConvergence is the cluster tentpole test: a loadgen
// fleet drives knowrouter over three real knowd shards; one shard sits
// behind a chaos link that is fully partitioned for the middle half of the
// run, and mid-partition the busiest healthy shard is SIGKILLed (stateless:
// the router's persisted announcement sources are the only replay script)
// and restarted empty. The retrying fleet must converge to records
// byte-identical with a clean single-shard baseline, final chains at
// exactly the scheduled links, no hedged mutation ever issued, and — after
// the partition heals — a reconciled fleet holding exactly the mapped
// replicas: a surviving unmapped upstream session would be a duplicate
// open, and there must be none.
func TestClusterPartitionConvergence(t *testing.T) {
	knowdPath := knowdBin(t)
	routerPath := knowrouterBin(t)
	for _, seed := range crashSeeds(t) {
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			sc := loadgen.Build(loadgen.Config{Seed: seed, Workers: 3, Sessions: 2})

			// Clean baseline: the same schedule against one in-process daemon.
			cleanTS := httptest.NewServer(server.New(server.Config{}).Handler())
			defer cleanTS.Close()
			clean, err := sc.Run(loadgen.RunConfig{NewClient: newFleetClient(cleanTS.URL, seed)})
			if err != nil {
				t.Fatal(err)
			}
			if clean.Errors > 0 {
				t.Fatalf("clean baseline failed %d ops", clean.Errors)
			}

			// Three real shards. No -state: a killed shard restarts empty, so
			// failover replay from the router is the only road back.
			shards := make([]*harness.Daemon, 3)
			for i := range shards {
				addr, err := harness.FreeAddr()
				if err != nil {
					t.Fatal(err)
				}
				d, err := harness.New(harness.Config{
					Bin: knowdPath, Addr: addr, Args: []string{"-quiet"}, Logf: t.Logf,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := d.Start(); err != nil {
					t.Fatal(err)
				}
				t.Cleanup(d.Stop)
				shards[i] = d
			}
			link := newFlakyLink(t, shards[2].URL(), seed)
			linkTS := httptest.NewServer(link)
			defer linkTS.Close()

			routerAddr, err := harness.FreeAddr()
			if err != nil {
				t.Fatal(err)
			}
			router, err := harness.New(harness.Config{
				Bin:  routerPath,
				Addr: routerAddr,
				Args: []string{
					"-shards", "n1=" + shards[0].URL() + ",n2=" + shards[1].URL() + ",n3=" + linkTS.URL,
					"-seed", strconv.FormatInt(seed, 10),
					"-hedge-after", "10ms",
					"-health-every", "25ms",
					"-fail-after", "2",
					"-readmit-after", "250ms",
					"-shard-attempts", "12",
					"-shard-base-delay", "2ms",
					"-shard-max-delay", "50ms",
					"-quiet",
				},
				Logf: t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := router.Start(); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(router.Stop)
			routerURL := router.URL()

			// Fault schedule over the op count: partition the chaos link for
			// the middle half of the body ops, and SIGKILL the busiest
			// un-proxied shard (then restart it empty) right in the middle of
			// the partition window.
			counts := sc.CountByKind()
			opens := counts[loadgen.OpOpen]
			body := sc.NumOps() - opens
			partitionAt := opens + body/4
			killAt := opens + body/2
			healAt := opens + (3*body)/4
			killC := make(chan struct{})
			killDone := make(chan error, 1)
			go func() {
				<-killC
				victim := 0
				if st, err := routerStats(routerURL); err == nil && len(st.Shards) == 3 &&
					st.Shards[1].Primaries > st.Shards[0].Primaries {
					victim = 1
				}
				t.Logf("seed %d: killing shard n%d mid-partition", seed, victim+1)
				if err := shards[victim].Kill(); err != nil {
					killDone <- err
					return
				}
				killDone <- shards[victim].Start()
			}()

			res, err := sc.Run(loadgen.RunConfig{
				NewClient: newFleetClient(routerURL, seed),
				AfterOp: func(done int, op loadgen.Op) {
					switch done {
					case partitionAt:
						t.Logf("seed %d: partitioning n3 at op %d", seed, done)
						link.partitioned.Store(true)
					case killAt:
						close(killC)
					case healAt:
						t.Logf("seed %d: healing n3 at op %d", seed, done)
						link.partitioned.Store(false)
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if kerr := <-killDone; kerr != nil {
				t.Fatalf("kill/restart: %v", kerr)
			}
			link.partitioned.Store(false) // in case healAt was never reached
			if res.Errors > 0 {
				for _, rec := range res.Records {
					if rec.Err != "" {
						t.Errorf("op failed across partition: %s: %s", rec.Line, rec.Err)
					}
				}
				t.FailNow()
			}

			// Byte-identical records: the fleet behind the router produced
			// exactly the clean single-daemon answers.
			cleanJSON, err := json.Marshal(clean.Records)
			if err != nil {
				t.Fatal(err)
			}
			chaosJSON, err := json.Marshal(res.Records)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(chaosJSON, cleanJSON) {
				t.Fatalf("partition run diverged from clean baseline:\nclean: %s\nchaos: %s",
					cleanJSON, chaosJSON)
			}

			// Final chain links: a fresh GET per session through the router.
			// This reads upstream truth, not the router's cached last state —
			// and doubles as the read-repair sweep for any replica wiped by a
			// kill+restart too quick for the health checker to eject (the
			// router's designed lazy repair: 404 → failover → source replay).
			rc := client.New(client.Config{BaseURL: routerURL})
			states, err := rc.Sessions()
			if err != nil {
				t.Fatal(err)
			}
			links := sc.FinalLinks()
			if len(states) != len(links) {
				t.Fatalf("router maps %d sessions, schedule leaves %d open", len(states), len(links))
			}
			var got, want []int
			for _, cached := range states {
				st, err := rc.Get(cached.Session)
				if err != nil {
					t.Fatalf("read-repair GET %s: %v", cached.Session, err)
				}
				got = append(got, st.Link)
			}
			for _, n := range links {
				want = append(want, n)
			}
			sort.Ints(got)
			sort.Ints(want)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("final chain links %v, schedule wants %v", got, want)
				}
			}

			// Convergence: the fleet may keep churning for a few seconds after
			// traffic stops (latched data-path breakers eject, evacuate, and
			// readmit as cooldowns lapse), so demand one quiescent fixed-point
			// iteration where everything holds at once: a reconcile pass found
			// zero strays and zero shard errors, every shard is healthy, and
			// every shard (asked directly, past the chaos link) holds exactly
			// the replicas the router maps there. An upstream session that
			// survived reconciliation unmapped would be a duplicate open.
			deadline := time.Now().Add(20 * time.Second)
			var st cluster.RouterStats
			converged := false
			var why string
			for !converged && time.Now().Before(deadline) {
				why = ""
				resp, err := http.Post(routerURL+"/v1/reconcile", "application/json", nil)
				if err != nil {
					t.Fatal(err)
				}
				var out map[string]int
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if out["strays_closed"] != 0 || out["shard_errors"] != 0 {
					why = "reconcile still busy: " + strconv.Itoa(out["strays_closed"]) + " strays, " +
						strconv.Itoa(out["shard_errors"]) + " errors"
				} else if st, err = routerStats(routerURL); err != nil {
					why = "stats: " + err.Error()
				} else {
					converged = true
					for i, sh := range st.Shards {
						if sh.State != "healthy" {
							converged, why = false, "shard "+sh.ID+" still "+sh.State
							break
						}
						held, err := client.New(client.Config{BaseURL: shards[i].URL()}).Sessions()
						if err != nil {
							converged, why = false, "listing "+sh.ID+": "+err.Error()
							break
						}
						if mapped := sh.Primaries + sh.Standbys; len(held) != mapped {
							converged = false
							why = "shard " + sh.ID + " holds " + strconv.Itoa(len(held)) +
								" sessions, router maps " + strconv.Itoa(mapped)
							break
						}
					}
				}
				if !converged {
					time.Sleep(50 * time.Millisecond)
				}
			}
			if !converged {
				t.Fatalf("fleet never reached the reconciled fixed point: %s", why)
			}
			if st.HedgedMutations != 0 {
				t.Fatalf("hedged mutations tripwire: %d", st.HedgedMutations)
			}
			if st.Panics != 0 {
				t.Fatalf("router recovered %d panics", st.Panics)
			}
			if st.Failovers == 0 {
				t.Fatal("a SIGKILL plus a partition produced no failovers; the chaos never bit")
			}
			t.Logf("seed %d: failovers %d (handoffs %d, reopens %d), hedges %d (wins %d), strays reaped %d, dedupe hits %d",
				seed, st.Failovers, st.Handoffs, st.Reopens, st.Hedges, st.HedgeWins, st.DupOpens, st.DedupeHits)
		})
	}
}

// TestClusterSoakReportShape boots nothing: it pins the report endpoint's
// shape through an in-process router so the soak script's CLUSTER_REPORT.md
// always has the table CI expects.
func TestClusterSoakReportShape(t *testing.T) {
	sh := httptest.NewServer(server.New(server.Config{}).Handler())
	defer sh.Close()
	rt, err := cluster.New(cluster.Config{
		Shards: []cluster.Shard{{ID: "n1", Addr: sh.URL, Weight: 1}},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	if _, err := client.New(client.Config{BaseURL: ts.URL}).Open("muddy:2", 0); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	report := buf.String()
	for _, want := range []string{"knowrouter fleet report", "| shard |", "| n1 |", "p99"} {
		if !bytes.Contains([]byte(report), []byte(want)) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	if got := resp.Header.Get("Content-Type"); got != "text/markdown; charset=utf-8" {
		t.Fatalf("report content type %q", got)
	}
}
