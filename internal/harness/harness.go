// Package harness controls real knowd daemon processes for lifecycle
// tests: build the binary once, boot it on a pinned address, SIGKILL it
// mid-workload, restart it over the same persisted state, and drain it
// cleanly. The package exists so crash-restart chaos tests exercise the
// genuine article — a separate OS process dying without any chance to
// flush — rather than an in-process server whose "crash" is a polite
// shutdown.
package harness

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"
)

// BuildBinary compiles a command package into dir under the given name and
// returns the binary path. The go build cache makes repeated calls cheap.
func BuildBinary(dir, name, pkg string) (string, error) {
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("harness: building %s: %v\n%s", name, err, out)
	}
	return bin, nil
}

// BuildKnowd compiles cmd/knowd into dir and returns the binary path.
func BuildKnowd(dir string) (string, error) {
	return BuildBinary(dir, "knowd", "repro/cmd/knowd")
}

// BuildKnowrouter compiles cmd/knowrouter into dir and returns the binary
// path.
func BuildKnowrouter(dir string) (string, error) {
	return BuildBinary(dir, "knowrouter", "repro/cmd/knowrouter")
}

// FreeAddr reserves an ephemeral localhost address and releases it for the
// daemon to bind. The tiny window between release and bind is the standard
// test-harness trade for an address that stays stable across restarts.
func FreeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// Config describes the daemon a harness boots.
type Config struct {
	// Bin is the knowd binary (from BuildKnowd).
	Bin string
	// Addr is the listen address; pin one with FreeAddr so restarts serve
	// the same clients. Required.
	Addr string
	// StateDir, when set, is passed as -state (and the crash tests add
	// -write-through via Args).
	StateDir string
	// Args are extra knowd flags.
	Args []string
	// Logf receives harness events; nil discards them.
	Logf func(format string, args ...any)
}

// Daemon is one controlled knowd process. Not safe for concurrent control
// calls; workloads talk to the daemon over HTTP, the harness owns the
// process.
type Daemon struct {
	cfg    Config
	cmd    *exec.Cmd
	waited chan error
}

// New prepares a daemon controller; Start boots it.
func New(cfg Config) (*Daemon, error) {
	if cfg.Bin == "" || cfg.Addr == "" {
		return nil, fmt.Errorf("harness: Bin and Addr are required")
	}
	return &Daemon{cfg: cfg}, nil
}

// URL is the daemon's base URL.
func (d *Daemon) URL() string { return "http://" + d.cfg.Addr }

func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// Start boots the process and blocks until /healthz answers ok (or the
// timeout lapses and the process is killed). Call again after Kill or
// Drain to restart over the same address and state dir.
func (d *Daemon) Start() error {
	if d.cmd != nil {
		return fmt.Errorf("harness: daemon already running")
	}
	args := []string{"-addr", d.cfg.Addr}
	if d.cfg.StateDir != "" {
		args = append(args, "-state", d.cfg.StateDir)
	}
	args = append(args, d.cfg.Args...)
	cmd := exec.Command(d.cfg.Bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("harness: starting knowd: %w", err)
	}
	d.cmd = cmd
	d.waited = make(chan error, 1)
	go func() { d.waited <- cmd.Wait() }()
	d.logf("started knowd pid %d on %s", cmd.Process.Pid, d.cfg.Addr)

	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(d.URL() + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case werr := <-d.waited:
			d.cmd = nil
			return fmt.Errorf("harness: knowd exited before serving: %v", werr)
		default:
		}
		if time.Now().After(deadline) {
			d.Kill()
			return fmt.Errorf("harness: knowd never answered /healthz on %s", d.cfg.Addr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Kill SIGKILLs the process — no drain, no persistence hook, the crash a
// write-through state file must survive — and reaps it.
func (d *Daemon) Kill() error {
	if d.cmd == nil {
		return fmt.Errorf("harness: daemon not running")
	}
	pid := d.cmd.Process.Pid
	if err := d.cmd.Process.Kill(); err != nil {
		return err
	}
	<-d.waited // reap; SIGKILL exits are expected errors
	d.cmd = nil
	d.logf("killed knowd pid %d", pid)
	return nil
}

// Drain SIGTERMs the process and waits for the graceful exit.
func (d *Daemon) Drain(timeout time.Duration) error {
	if d.cmd == nil {
		return fmt.Errorf("harness: daemon not running")
	}
	pid := d.cmd.Process.Pid
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-d.waited:
		d.cmd = nil
		d.logf("drained knowd pid %d", pid)
		return err
	case <-time.After(timeout):
		d.Kill()
		return fmt.Errorf("harness: knowd pid %d ignored SIGTERM for %v", pid, timeout)
	}
}

// Running reports whether the harness currently owns a live process.
func (d *Daemon) Running() bool { return d.cmd != nil }

// Stop force-stops the daemon if it is still running (cleanup helper).
func (d *Daemon) Stop() {
	if d.cmd != nil {
		d.Kill()
	}
}

// GoToolAvailable reports whether the go tool is on PATH (BuildKnowd needs
// it); tests skip rather than fail on stripped environments.
func GoToolAvailable() bool {
	_, err := exec.LookPath("go")
	return err == nil
}
