package faults

import (
	"testing"

	"repro/internal/runs"
)

func TestStreamDeterminism(t *testing.T) {
	a := Stream{state: 42}
	b := Stream{state: 42}
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal state diverge at draw %d", i)
		}
	}
	// The first draws of the splitmix64 stream are pinned, so a Go
	// release or refactor cannot silently change every seeded artifact in
	// the repo.
	s := Stream{state: 0}
	if got := s.Uint64(); got != 0xe220a8397b1dcdaf {
		t.Fatalf("splitmix64(0) first draw = %#x, want 0xe220a8397b1dcdaf", got)
	}
}

func TestParseDelayDist(t *testing.T) {
	cases := []struct {
		in   string
		want string
		max  int
	}{
		{"fixed:1", "fixed:1", 1},
		{"uniform:1-3", "uniform:1-3", 3},
		{"unbounded:8", "unbounded:8", -1},
	}
	for _, c := range cases {
		d, err := ParseDelayDist(c.in)
		if err != nil {
			t.Fatalf("ParseDelayDist(%q): %v", c.in, err)
		}
		if d.String() != c.want || d.Max() != c.max {
			t.Fatalf("ParseDelayDist(%q) = %s (max %d), want %s (max %d)",
				c.in, d, d.Max(), c.want, c.max)
		}
	}
	for _, bad := range []string{"", "fixed", "fixed:0", "uniform:3-1", "uniform:x", "gauss:1", "unbounded:0"} {
		if _, err := ParseDelayDist(bad); err == nil {
			t.Fatalf("ParseDelayDist(%q) should fail", bad)
		}
	}
}

func TestDelaySampleBounds(t *testing.T) {
	s := &Stream{state: 7}
	u := Uniform{Min: 2, MaxD: 5}
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		d := u.Sample(s)
		if d < 2 || d > 5 {
			t.Fatalf("uniform sample %d outside [2, 5]", d)
		}
		seen[d] = true
	}
	for d := 2; d <= 5; d++ {
		if !seen[d] {
			t.Fatalf("uniform never produced %d", d)
		}
	}
	ub := Unbounded{Span: 6}
	for i := 0; i < 2000; i++ {
		if d := ub.Sample(s); d < 1 || d > 6 {
			t.Fatalf("unbounded sample %d outside [1, 6]", d)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	good := &Plan{Seed: 1, Delay: Fixed{D: 1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Plan{
		{Seed: 1},
		{Seed: 1, Delay: Fixed{D: 1}, Drop: 1.5},
		{Seed: 1, Delay: Fixed{D: 1}, Dup: -0.1},
		{Seed: 1, Delay: Fixed{D: 1}, Crash: CrashSpec{P: 0.5}},
		{Seed: 1, Delay: Fixed{D: 1}, Drift: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad plan %d validated", i)
		}
	}
}

func TestRunStreamsAreOrderIndependent(t *testing.T) {
	plan := &Plan{Seed: 99, Delay: Uniform{Min: 1, MaxD: 4}, Drop: 0.3, Dup: 0.2,
		Crash: CrashSpec{P: 0.5, MinDown: 1, MaxDown: 3}, Drift: 2}

	sample := func(runIdx int) ([]MessageFate, [][3]int, [][]int) {
		rf := plan.ForRun(runIdx, 3, 8)
		var fates []MessageFate
		for i := 0; i < 10; i++ {
			fates = append(fates, rf.SampleMessage())
		}
		var crashes [][3]int
		for p := 0; p < 3; p++ {
			s, e, c := rf.CrashWindow(p)
			flag := 0
			if c {
				flag = 1
			}
			crashes = append(crashes, [3]int{int(s), int(e), flag})
		}
		var clocks [][]int
		for p := 0; p < 3; p++ {
			clocks = append(clocks, rf.ClockReadings(p, 0))
		}
		return fates, crashes, clocks
	}

	// Sampling run 5 after run 0, or alone, gives the same draws.
	f0a, c0a, k0a := sample(0)
	f5, _, _ := sample(5)
	f0b, c0b, k0b := sample(0)
	for i := range f0a {
		if f0a[i] != f0b[i] {
			t.Fatalf("run 0 message fates differ across samplings at %d", i)
		}
	}
	for i := range c0a {
		if c0a[i] != c0b[i] {
			t.Fatalf("run 0 crash windows differ across samplings at %d", i)
		}
	}
	for p := range k0a {
		for ti := range k0a[p] {
			if k0a[p][ti] != k0b[p][ti] {
				t.Fatalf("run 0 clocks differ across samplings")
			}
		}
	}
	// And distinct run indices get distinct streams.
	same := true
	for i := range f0a {
		if f0a[i] != f5[i] {
			same = false
		}
	}
	if same {
		t.Fatal("runs 0 and 5 drew identical message fates; streams not independent")
	}
}

func TestClockReadingsDriftBoundAndMonotone(t *testing.T) {
	plan := &Plan{Seed: 3, Delay: Fixed{D: 1}, Drift: 2}
	for runIdx := 0; runIdx < 50; runIdx++ {
		rf := plan.ForRun(runIdx, 4, 20)
		for p := 0; p < 4; p++ {
			rs := rf.ClockReadings(p, 0)
			for ti, r := range rs {
				if r < ti-2 || r > ti+2 {
					t.Fatalf("run %d p%d: reading %d at t=%d breaks the drift bound 2", runIdx, p, r, ti)
				}
				if ti > 0 && r < rs[ti-1] {
					t.Fatalf("run %d p%d: clock decreases at t=%d", runIdx, p, ti)
				}
			}
		}
	}
	// Drift 0 is exactly real time plus base.
	rf := (&Plan{Seed: 3, Delay: Fixed{D: 1}}).ForRun(0, 1, 5)
	for ti, r := range rf.ClockReadings(0, 7) {
		if r != ti+7 {
			t.Fatalf("drift-0 reading at t=%d is %d, want %d", ti, r, ti+7)
		}
	}
	// A valid run clock for the runs package: SetClock accepts it.
	r := runs.NewRun("x", 1, 20)
	rf2 := plan.ForRun(1, 1, 20)
	if err := r.SetClock(0, rf2.ClockReadings(0, 0)); err != nil {
		t.Fatalf("drifted readings rejected by runs.SetClock: %v", err)
	}
}

func TestCrashWindowWithinRange(t *testing.T) {
	plan := &Plan{Seed: 11, Delay: Fixed{D: 1}, Crash: CrashSpec{P: 1, MinDown: 2, MaxDown: 4}}
	sawDown := false
	for runIdx := 0; runIdx < 30; runIdx++ {
		rf := plan.ForRun(runIdx, 2, 10)
		for p := 0; p < 2; p++ {
			s, e, crashed := rf.CrashWindow(p)
			if !crashed {
				t.Fatalf("crash probability 1 produced no crash (run %d p%d)", runIdx, p)
			}
			if d := int(e-s) + 1; d < 2 || d > 4 {
				t.Fatalf("down window length %d outside [2, 4]", d)
			}
			if s < 0 || s > 10 {
				t.Fatalf("crash start %d outside the horizon", s)
			}
			if rf.Down(p, s) && rf.Down(p, e) && !rf.Down(p, e+1) {
				sawDown = true
			} else {
				t.Fatalf("Down disagrees with the window [%d, %d]", s, e)
			}
		}
	}
	if !sawDown {
		t.Fatal("no down window observed")
	}
}

func TestDeriveIsStable(t *testing.T) {
	plan := &Plan{Seed: 21, Delay: Fixed{D: 1}}
	a := plan.Derive(17, 4).Uint64()
	b := plan.Derive(17, 4).Uint64()
	if a != b {
		t.Fatal("Derive with equal labels differs")
	}
	if plan.Derive(17, 5).Uint64() == a {
		t.Fatal("Derive with different labels collides")
	}
}
