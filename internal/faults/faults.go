// Package faults defines seeded fault plans for the fault-injection
// engine: per-channel delay distributions, message drop and duplication
// probabilities, process crash/recovery windows, and bounded per-process
// clock drift, all derived from a single int64 seed.
//
// Reproducibility is the design constraint. Every random draw comes from a
// splitmix64 stream (implemented here, not math/rand, so the sequence is
// pinned by this package rather than by the Go release), and every stream
// is derived by hashing the plan seed with the identity of the consumer —
// the run index, the kind of draw, and the process index where relevant.
// Streams are therefore order-independent across runs and across
// processes: sampling run 7 never consumes state that run 8 depends on, so
// runs can be generated in any order (or in parallel) and still come out
// byte-identical for a given seed.
//
// The fault classes map onto the communication regimes of Halpern & Moses:
// a plan with a degenerate delay distribution and no faults is the
// paper's reliable synchronous channel; widening the delay distribution
// produces the bounded-uncertainty regime of Section 8 (R2–D2); positive
// drop probability realizes "communication is not guaranteed" (NG1/NG2);
// clock drift bounds realize the ε-synchronization premise of the
// timestamped variants of Section 12; crash windows model processors that
// stop observing, the failure mode under which even eventual common
// knowledge is lost.
package faults

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/runs"
)

// Stream is a deterministic splitmix64 random stream.
type Stream struct {
	state uint64
}

// NewStream returns the stream rooted at the given seed, hashed the same
// way a Plan's seed is, so a bare CLI seed and a fault plan derive
// unrelated draws from equal integers.
func NewStream(seed int64) *Stream {
	return &Stream{state: mix(uint64(seed), 0x5eed)}
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n); n must be positive.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("faults: Intn on nonpositive bound")
	}
	// The modulo bias over 2^64 is far below anything a simulation of
	// this size can observe, and avoiding it would cost loop iterations
	// whose count depends on the draw — worse for reproducibility
	// reasoning than the bias.
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1) with 53 random bits.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (p <= 0 never, p >= 1 always).
func (s *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// mix folds a label into a hash state (splitmix64's finalizer as the
// mixing function).
func mix(h, label uint64) uint64 {
	h ^= label + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	z := h
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DelayDist is a distribution of message delivery delays, in ticks.
type DelayDist interface {
	// Sample draws a delay >= 1 from the stream.
	Sample(s *Stream) int
	// Max returns the largest delay the distribution can produce, or -1
	// if it is unbounded below the horizon (the asynchronous regime).
	Max() int
	String() string
}

// Fixed delivers after exactly D ticks — the known-delay reliable channel.
type Fixed struct{ D int }

// Sample implements DelayDist.
func (f Fixed) Sample(*Stream) int { return f.D }

// Max implements DelayDist.
func (f Fixed) Max() int { return f.D }

func (f Fixed) String() string { return fmt.Sprintf("fixed:%d", f.D) }

// Uniform delivers after a uniform delay in [Min, Max] — bounded delivery
// with uncertain timing, the R2–D2 regime.
type Uniform struct{ Min, MaxD int }

// Sample implements DelayDist.
func (u Uniform) Sample(s *Stream) int { return u.Min + s.Intn(u.MaxD-u.Min+1) }

// Max implements DelayDist.
func (u Uniform) Max() int { return u.MaxD }

func (u Uniform) String() string { return fmt.Sprintf("uniform:%d-%d", u.Min, u.MaxD) }

// Unbounded delivers after a delay with no a-priori bound: the sampled
// delay is uniform in [1, Span] but the distribution advertises no
// maximum, realizing the asynchronous regime (delivery guaranteed,
// delivery time unbounded) within a finite observation window.
type Unbounded struct{ Span int }

// Sample implements DelayDist.
func (u Unbounded) Sample(s *Stream) int { return 1 + s.Intn(u.Span) }

// Max implements DelayDist.
func (u Unbounded) Max() int { return -1 }

func (u Unbounded) String() string { return fmt.Sprintf("unbounded:%d", u.Span) }

// ParseDelayDist parses the CLI syntax for delay distributions:
// "fixed:D", "uniform:MIN-MAX", or "unbounded:SPAN".
func ParseDelayDist(s string) (DelayDist, error) {
	kind, arg, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("faults: bad delay distribution %q (want kind:args)", s)
	}
	switch kind {
	case "fixed":
		d, err := strconv.Atoi(arg)
		if err != nil || d < 1 {
			return nil, fmt.Errorf("faults: bad fixed delay %q (want fixed:D with D >= 1)", s)
		}
		return Fixed{D: d}, nil
	case "uniform":
		lo, hi, ok := strings.Cut(arg, "-")
		if !ok {
			return nil, fmt.Errorf("faults: bad uniform delay %q (want uniform:MIN-MAX)", s)
		}
		min, err1 := strconv.Atoi(lo)
		max, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || min < 1 || max < min {
			return nil, fmt.Errorf("faults: bad uniform delay %q (want 1 <= MIN <= MAX)", s)
		}
		return Uniform{Min: min, MaxD: max}, nil
	case "unbounded":
		span, err := strconv.Atoi(arg)
		if err != nil || span < 1 {
			return nil, fmt.Errorf("faults: bad unbounded delay %q (want unbounded:SPAN with SPAN >= 1)", s)
		}
		return Unbounded{Span: span}, nil
	default:
		return nil, fmt.Errorf("faults: unknown delay distribution kind %q", kind)
	}
}

// CrashSpec describes process crash faults: with probability P a process
// crashes once per run, at a uniform time in [0, horizon], staying down
// for a uniform duration in [MinDown, MaxDown] ticks before recovering. A
// crashed process neither steps its protocol nor receives messages;
// deliveries into the window are lost. It keeps its pre-crash memory on
// recovery.
type CrashSpec struct {
	P       float64
	MinDown int
	MaxDown int
}

// Plan is a complete seeded fault plan. The zero value of every fault
// field is the fault-free setting; Delay is required.
type Plan struct {
	// Seed is the root of every stream the plan derives.
	Seed int64
	// Delay is the per-message delivery-delay distribution.
	Delay DelayDist
	// Drop is the per-message loss probability.
	Drop float64
	// Dup is the per-message duplication probability (one extra copy with
	// an independently sampled delay).
	Dup float64
	// Crash describes per-process crash/recovery windows.
	Crash CrashSpec
	// Drift bounds per-process clock drift: every sampled clock reading
	// stays within Drift ticks of real time (0 = perfectly synchronized).
	Drift int
}

// Validate reports a configuration error, if any.
func (p *Plan) Validate() error {
	if p.Delay == nil {
		return fmt.Errorf("faults: plan has no delay distribution")
	}
	for name, prob := range map[string]float64{"drop": p.Drop, "dup": p.Dup, "crash": p.Crash.P} {
		if prob < 0 || prob > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0, 1]", name, prob)
		}
	}
	if p.Crash.P > 0 && (p.Crash.MinDown < 1 || p.Crash.MaxDown < p.Crash.MinDown) {
		return fmt.Errorf("faults: crash window [%d, %d] invalid (want 1 <= min <= max)",
			p.Crash.MinDown, p.Crash.MaxDown)
	}
	if p.Drift < 0 {
		return fmt.Errorf("faults: negative drift bound %d", p.Drift)
	}
	return nil
}

// Stream labels, mixed into the seed so the per-run draw kinds never share
// a stream.
const (
	labelMessages = iota + 1
	labelClock
	labelCrash
	labelScenario
)

// Derive returns the deterministic stream identified by the given labels
// under this plan's seed. Scenario layers use it to draw their own
// reproducible values (initiation jitter, sampled configurations) from the
// same root seed; the engine's own streams are derived under the nested
// (runIdx, kind) labels of ForRun, so flat Derive labels never replay
// them.
func (p *Plan) Derive(labels ...uint64) *Stream {
	return SubStream(p.Seed, labels...)
}

// SubStream returns the deterministic stream identified by labels under
// seed, without requiring a Plan. Sub-streams are order-independent: each
// (seed, labels) identity owns its own state, so consumers (a load
// generator's workers, say) can draw in any interleaving — or in parallel
// from distinct labels — and still replay byte-identically from one seed.
// SubStream(seed) with no labels equals NewStream(seed).
func SubStream(seed int64, labels ...uint64) *Stream {
	h := mix(uint64(seed), 0x5eed)
	for _, l := range labels {
		h = mix(h, l)
	}
	return &Stream{state: h}
}

// RunFaults is the per-run view of a plan: the streams and sampled
// windows one simulated run consumes. Each run index gets independent
// streams, so runs may be generated in any order.
type RunFaults struct {
	plan   *Plan
	runIdx int
	msgs   Stream
	crash  []window // per process, sampled lazily
	horiz  runs.Time
	n      int
}

type window struct {
	sampled    bool
	crashed    bool
	start, end runs.Time // down during [start, end]
}

// ForRun returns the fault view of one simulated run with n processes
// observed up to the horizon.
func (p *Plan) ForRun(runIdx, n int, horizon runs.Time) *RunFaults {
	rf := &RunFaults{
		plan:   p,
		runIdx: runIdx,
		msgs:   Stream{state: mix(mix(uint64(p.Seed), 0x5eed), mix(uint64(runIdx), labelMessages))},
		crash:  make([]window, n),
		horiz:  horizon,
		n:      n,
	}
	return rf
}

// MessageFate is the sampled fate of one sent message.
type MessageFate struct {
	// Delay is the delivery delay in ticks (meaningful when !Dropped).
	Delay int
	// Dropped marks the message as lost by the channel.
	Dropped bool
	// DupDelay is the delay of a duplicated copy, or 0 when the message
	// was not duplicated.
	DupDelay int
}

// SampleMessage draws the fate of the next sent message. Draws are
// consumed in send order from the run's message stream, which is
// deterministic because the engine visits sends in a fixed order.
func (rf *RunFaults) SampleMessage() MessageFate {
	var f MessageFate
	f.Delay = rf.plan.Delay.Sample(&rf.msgs)
	f.Dropped = rf.msgs.Bool(rf.plan.Drop)
	if rf.msgs.Bool(rf.plan.Dup) {
		f.DupDelay = rf.plan.Delay.Sample(&rf.msgs)
	}
	return f
}

// CrashWindow returns process p's crash window in this run, sampling it on
// first use from the (runIdx, p)-derived stream.
func (rf *RunFaults) CrashWindow(p int) (start, end runs.Time, crashed bool) {
	w := &rf.crash[p]
	if !w.sampled {
		w.sampled = true
		s := Stream{state: mix(mix(mix(uint64(rf.plan.Seed), 0x5eed), mix(uint64(rf.runIdx), labelCrash)), uint64(p))}
		if s.Bool(rf.plan.Crash.P) {
			w.crashed = true
			w.start = runs.Time(s.Intn(int(rf.horiz) + 1))
			down := rf.plan.Crash.MinDown + s.Intn(rf.plan.Crash.MaxDown-rf.plan.Crash.MinDown+1)
			w.end = w.start + runs.Time(down) - 1
		}
	}
	return w.start, w.end, w.crashed
}

// Down reports whether process p is crashed at time t in this run.
func (rf *RunFaults) Down(p int, t runs.Time) bool {
	start, end, crashed := rf.CrashWindow(p)
	return crashed && t >= start && t <= end
}

// ClockReadings samples process p's drifted clock for this run: readings
// for times 0..horizon, each within the plan's Drift bound of real time
// plus the base offset, monotone nondecreasing (per-tick rate in {0, 1,
// 2}). With Drift == 0 the readings are exactly real time plus base.
func (rf *RunFaults) ClockReadings(p int, base int) []int {
	span := int(rf.horiz) + 1
	readings := make([]int, span)
	if rf.plan.Drift == 0 {
		for t := range readings {
			readings[t] = t + base
		}
		return readings
	}
	s := Stream{state: mix(mix(mix(uint64(rf.plan.Seed), 0x5eed), mix(uint64(rf.runIdx), labelClock)), uint64(p))}
	d := rf.plan.Drift
	off := s.Intn(2*d+1) - d
	for t := 0; t < span; t++ {
		readings[t] = t + base + off
		if t+1 < span {
			// The clock runs at rate 0, 1 or 2 for the next tick; the
			// offset random-walks within [-d, d]. Rate >= 0 keeps the
			// readings monotone.
			step := s.Intn(3) - 1
			if off+step > d || off+step < -d {
				step = -step
			}
			off += step
		}
	}
	return readings
}
