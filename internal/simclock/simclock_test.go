package simclock

import (
	"sync"
	"testing"
)

func TestAdvanceFiresInDeadlineOrder(t *testing.T) {
	c := New(0)
	var fired []int
	mustAfter := func(d int64, id int) *Timer {
		tm, err := c.AfterFunc(d, func() { fired = append(fired, id) })
		if err != nil {
			t.Fatal(err)
		}
		return tm
	}
	mustAfter(5, 1)
	mustAfter(2, 2)
	mustAfter(2, 3) // same deadline: scheduling order breaks the tie
	mustAfter(9, 4)
	if err := c.Advance(5); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 1}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if c.Now() != 5 {
		t.Fatalf("now = %d, want 5", c.Now())
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", c.Pending())
	}
}

func TestMonotonicity(t *testing.T) {
	c := New(10)
	if err := c.Advance(-1); err == nil {
		t.Fatal("Advance(-1) should fail")
	}
	if err := c.AdvanceTo(9); err == nil {
		t.Fatal("AdvanceTo into the past should fail")
	}
	if _, err := c.AfterFunc(-3, func() {}); err == nil {
		t.Fatal("negative AfterFunc delay should fail")
	}
	if _, err := c.At(5, func() {}); err == nil {
		t.Fatal("At in the past should fail")
	}
	if c.Now() != 10 {
		t.Fatalf("failed calls must not move time; now = %d", c.Now())
	}
}

func TestStepAndNextDeadline(t *testing.T) {
	c := New(0)
	if _, ok := c.NextDeadline(); ok {
		t.Fatal("empty clock has no deadline")
	}
	if now, ok := c.Step(); ok || now != 0 {
		t.Fatalf("Step on empty clock = (%d, %v)", now, ok)
	}
	hits := 0
	if _, err := c.AfterFunc(4, func() { hits++ }); err != nil {
		t.Fatal(err)
	}
	if d, ok := c.NextDeadline(); !ok || d != 4 {
		t.Fatalf("NextDeadline = (%d, %v), want (4, true)", d, ok)
	}
	if now, ok := c.Step(); !ok || now != 4 || hits != 1 {
		t.Fatalf("Step = (%d, %v), hits = %d", now, ok, hits)
	}
}

func TestStopPreventsFiring(t *testing.T) {
	c := New(0)
	fired := false
	tm, err := c.AfterFunc(3, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if !c.Stop(tm) {
		t.Fatal("Stop should report success before firing")
	}
	if c.Stop(tm) {
		t.Fatal("second Stop should report failure")
	}
	if err := c.Advance(10); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestCallbackMaySchedule(t *testing.T) {
	// A timer callback scheduling another timer inside the advance window
	// fires within the same sweep, at its own deadline.
	c := New(0)
	var fired []int64
	if _, err := c.AfterFunc(2, func() {
		fired = append(fired, c.Now())
		if _, err := c.AfterFunc(3, func() { fired = append(fired, c.Now()) }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(10); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 5 {
		t.Fatalf("fired at %v, want [2 5]", fired)
	}
}

func TestAutoAdvanceTwoSleepers(t *testing.T) {
	// Two simulated goroutines ping-pong through Sleep; the clock advances
	// by itself whenever both are blocked, so the whole exchange needs no
	// explicit Advance calls.
	c := NewAuto(0)
	var mu sync.Mutex
	var wakes []int64
	record := func() {
		mu.Lock()
		wakes = append(wakes, c.Now())
		mu.Unlock()
	}
	c.Go(func() {
		c.Sleep(3)
		record()
		c.Sleep(4) // wakes at 7
		record()
	})
	c.Go(func() {
		c.Sleep(5)
		record()
	})
	c.Wait()
	if c.Now() != 7 {
		t.Fatalf("now = %d, want 7", c.Now())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(wakes) != 3 {
		t.Fatalf("wakes = %v, want 3 entries", wakes)
	}
	seen := map[int64]bool{}
	for _, w := range wakes {
		seen[w] = true
	}
	for _, want := range []int64{3, 5, 7} {
		if !seen[want] {
			t.Fatalf("missing wake at %d: %v", want, wakes)
		}
	}
}

func TestManualClockWakesSleepers(t *testing.T) {
	c := New(0)
	done := make(chan int64, 1)
	c.Go(func() {
		c.Sleep(6)
		done <- c.Now()
	})
	// The sleeper blocks until someone advances a manual clock past its
	// deadline.
	for c.Pending() == 0 {
		// Wait for the sleeper to register its wake-up timer.
	}
	if err := c.Advance(6); err != nil {
		t.Fatal(err)
	}
	if at := <-done; at != 6 {
		t.Fatalf("woke at %d, want 6", at)
	}
	c.Wait()
}
