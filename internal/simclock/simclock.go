// Package simclock provides a deterministic virtual clock for simulation:
// time is an int64 tick counter that never reads the wall clock and only
// moves when a caller advances it. Timers fire in a deterministic order —
// by deadline, then by scheduling order — so a simulation driven by the
// clock is reproducible event for event.
//
// The clock serves two styles of use:
//
//   - Synchronous event loops (the fault-injection engine of
//     internal/protocol) advance the clock explicitly with Advance,
//     AdvanceTo or Step; due timers fire inline, before the call returns,
//     in (deadline, scheduling) order. This path is single-threaded and
//     byte-reproducible.
//
//   - Simulated goroutines register with Go and block in Sleep; a clock
//     built with NewAuto advances automatically to the earliest pending
//     wake-up when every registered goroutine is blocked (the
//     TestClock/FakeClock auto-advance idiom), so simulated concurrent
//     processes need no explicit driver.
//
// Monotonicity is enforced: Advance rejects negative durations, AdvanceTo
// rejects targets in the past, and timers cannot be scheduled at negative
// delays. Time is a plain tick count (the runs package's discrete Time),
// not a time.Time: the package deliberately has no way to observe real
// time.
package simclock

import (
	"fmt"
	"sync"
)

// Timer is a scheduled callback; it fires once unless stopped first.
type Timer struct {
	when    int64
	seq     int64
	fn      func()
	stopped bool
	fired   bool
	index   int // position in the heap, -1 when popped
}

// Clock is a deterministic virtual clock. The zero value is not usable;
// construct one with New or NewAuto.
type Clock struct {
	mu   sync.Mutex
	now  int64
	seq  int64
	heap []*Timer

	// Auto-advance bookkeeping: registered counts the simulated
	// goroutines (Go), sleeping counts how many of them are blocked in
	// Sleep. When auto is set and sleeping == registered > 0, the clock
	// advances itself to the earliest pending timer.
	auto       bool
	registered int
	sleeping   int
	wg         sync.WaitGroup
}

// New returns a clock reading start that advances only explicitly.
func New(start int64) *Clock {
	return &Clock{now: start}
}

// NewAuto returns a clock reading start that additionally auto-advances to
// the earliest pending timer whenever every goroutine registered with Go
// is blocked in Sleep.
func NewAuto(start int64) *Clock {
	return &Clock{now: start, auto: true}
}

// Now returns the current virtual time.
func (c *Clock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d ticks, firing every timer with a
// deadline at or before the target, in (deadline, scheduling) order, before
// returning. Negative d is a monotonicity violation and is rejected.
func (c *Clock) Advance(d int64) error {
	if d < 0 {
		return fmt.Errorf("simclock: Advance(%d): virtual time is monotone", d)
	}
	c.mu.Lock()
	target := c.now + d
	c.advanceLocked(target)
	c.mu.Unlock()
	return nil
}

// AdvanceTo moves the clock forward to time t (a no-op if t equals the
// current time), firing due timers as Advance does. A target in the past is
// rejected.
func (c *Clock) AdvanceTo(t int64) error {
	c.mu.Lock()
	if t < c.now {
		now := c.now
		c.mu.Unlock()
		return fmt.Errorf("simclock: AdvanceTo(%d) from %d: virtual time is monotone", t, now)
	}
	c.advanceLocked(t)
	c.mu.Unlock()
	return nil
}

// Step advances to the earliest pending timer deadline and fires every
// timer due there. It reports the new time and whether a timer was pending;
// with no pending timers the clock does not move.
func (c *Clock) Step() (int64, bool) {
	c.mu.Lock()
	if len(c.heap) == 0 {
		now := c.now
		c.mu.Unlock()
		return now, false
	}
	target := c.heap[0].when
	c.advanceLocked(target)
	now := c.now
	c.mu.Unlock()
	return now, true
}

// advanceLocked moves time to target, firing due timers in (deadline, seq)
// order. Callbacks run without the clock lock, so they may schedule further
// timers; timers a callback schedules within the advancing window fire in
// the same sweep.
func (c *Clock) advanceLocked(target int64) {
	for len(c.heap) > 0 && c.heap[0].when <= target {
		t := c.pop()
		if t.when > c.now {
			c.now = t.when
		}
		t.fired = true
		c.mu.Unlock()
		t.fn()
		c.mu.Lock()
	}
	if target > c.now {
		c.now = target
	}
}

// AfterFunc schedules fn to run when the clock has advanced d more ticks.
// d must be nonnegative; d == 0 fires on the next advance (time does not
// move backwards, and the current instant has already been observed).
func (c *Clock) AfterFunc(d int64, fn func()) (*Timer, error) {
	if d < 0 {
		return nil, fmt.Errorf("simclock: AfterFunc(%d): negative delay", d)
	}
	c.mu.Lock()
	t := &Timer{when: c.now + d, seq: c.seq, fn: fn}
	c.seq++
	c.push(t)
	c.mu.Unlock()
	return t, nil
}

// At schedules fn at the absolute virtual time when; it must not be in the
// past.
func (c *Clock) At(when int64, fn func()) (*Timer, error) {
	c.mu.Lock()
	if when < c.now {
		now := c.now
		c.mu.Unlock()
		return nil, fmt.Errorf("simclock: At(%d) from %d: deadline in the past", when, now)
	}
	t := &Timer{when: when, seq: c.seq, fn: fn}
	c.seq++
	c.push(t)
	c.mu.Unlock()
	return t, nil
}

// Stop cancels the timer if it has not fired; it reports whether the
// cancellation prevented a firing.
func (c *Clock) Stop(t *Timer) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	if t.index >= 0 {
		c.remove(t)
	}
	return true
}

// Pending returns the number of scheduled, unfired timers.
func (c *Clock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.heap)
}

// NextDeadline returns the earliest pending timer deadline, if any.
func (c *Clock) NextDeadline() (int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.heap) == 0 {
		return 0, false
	}
	return c.heap[0].when, true
}

// Go registers fn as a simulated goroutine and runs it; an auto-advance
// clock counts it toward the everyone-is-blocked condition until fn
// returns. Wait blocks until every goroutine started with Go has returned.
func (c *Clock) Go(fn func()) {
	c.mu.Lock()
	c.registered++
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer func() {
			c.mu.Lock()
			c.registered--
			c.maybeAutoAdvance()
			c.mu.Unlock()
			c.wg.Done()
		}()
		fn()
	}()
}

// Wait blocks until every simulated goroutine started with Go has
// returned.
func (c *Clock) Wait() { c.wg.Wait() }

// Sleep blocks the calling goroutine for d virtual ticks. On an
// auto-advance clock, when every goroutine registered with Go is asleep the
// clock advances itself to the earliest wake-up; on a manual clock the
// sleeper waits for someone to Advance past its deadline. d <= 0 returns
// immediately.
func (c *Clock) Sleep(d int64) {
	if d <= 0 {
		return
	}
	done := make(chan struct{})
	c.mu.Lock()
	t := &Timer{when: c.now + d, seq: c.seq, fn: func() { close(done) }}
	c.seq++
	c.push(t)
	c.sleeping++
	c.maybeAutoAdvance()
	c.mu.Unlock()
	<-done
	c.mu.Lock()
	c.sleeping--
	c.mu.Unlock()
}

// maybeAutoAdvance fires the earliest pending timers when every registered
// simulated goroutine is blocked in Sleep. Called with the lock held.
func (c *Clock) maybeAutoAdvance() {
	for c.auto && c.registered > 0 && c.sleeping >= c.registered && len(c.heap) > 0 {
		target := c.heap[0].when
		before := c.sleeping
		c.advanceLocked(target)
		if c.sleeping == before {
			// The fired timers woke no sleeper yet (wake-ups are
			// asynchronous); let the woken goroutines reduce sleeping
			// before advancing further.
			break
		}
	}
}

// Timer heap: min-heap ordered by (when, seq).

func (c *Clock) less(i, j int) bool {
	a, b := c.heap[i], c.heap[j]
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (c *Clock) swap(i, j int) {
	c.heap[i], c.heap[j] = c.heap[j], c.heap[i]
	c.heap[i].index = i
	c.heap[j].index = j
}

func (c *Clock) push(t *Timer) {
	t.index = len(c.heap)
	c.heap = append(c.heap, t)
	c.up(t.index)
}

func (c *Clock) pop() *Timer {
	t := c.heap[0]
	last := len(c.heap) - 1
	c.swap(0, last)
	c.heap = c.heap[:last]
	if last > 0 {
		c.down(0)
	}
	t.index = -1
	return t
}

func (c *Clock) remove(t *Timer) {
	i := t.index
	last := len(c.heap) - 1
	c.swap(i, last)
	c.heap = c.heap[:last]
	if i < last {
		c.down(i)
		c.up(i)
	}
	t.index = -1
}

func (c *Clock) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(i, parent) {
			break
		}
		c.swap(i, parent)
		i = parent
	}
}

func (c *Clock) down(i int) {
	n := len(c.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && c.less(l, smallest) {
			smallest = l
		}
		if r < n && c.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		c.swap(i, smallest)
		i = smallest
	}
}
