package cluster

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/client"
)

// HealthConfig carries the checker knobs; zero values mean defaults.
type HealthConfig struct {
	// Every is the probe sweep period. Default 1s.
	Every time.Duration
	// FailAfter ejects a shard after this many consecutive failed probes.
	// Default 3.
	FailAfter int
	// ReadmitAfter is the cooldown an ejected shard sits out before a
	// half-open probe may re-admit it. Default 5s.
	ReadmitAfter time.Duration
	// Timeout bounds one probe. Default 2s.
	Timeout time.Duration
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Every <= 0 {
		c.Every = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 5 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	return c
}

// shardHealth is one shard's view from the checker: probe failure run,
// ejection state, and the decaying shed penalty that feeds routing weight.
type shardHealth struct {
	ejected   bool
	fails     int
	ejectedAt time.Time
	penalty   float64
	lastSheds int
	// boot is the last incarnation stamp the shard advertised on healthz.
	// A change means the process died and came back between sweeps —
	// possibly faster than FailAfter could ever notice — and every session
	// the router still maps there is gone.
	boot string
}

// checker actively health-checks the fleet. It mirrors the client breaker
// semantics — consecutive failures open (eject), a cooldown ends in a
// half-open probe, one success closes (re-admits) — and it also *reads*
// each shard's data-path breaker through client.Stats, so a shard the data
// path has already given up on is ejected without waiting for FailAfter
// probe misses. The probe itself is a single raw un-retried GET /healthz:
// a draining daemon answers 503 and must be treated as down immediately,
// which the retrying client path would paper over.
type checker struct {
	cfg     HealthConfig
	shards  []Shard
	clients map[string]*client.Client

	// now and tick are injectable exactly like the server janitor's, so
	// tests drive ejection and re-admission from a virtual clock with zero
	// wall-clock sleeps.
	now   func() time.Time
	tick  func(d time.Duration) (<-chan time.Time, func())
	probe func(addr string) (boot string, err error)

	onEject   func(id string)
	onReadmit func(id string)
	onRestart func(id string)
	logf      func(format string, args ...any)

	mu sync.Mutex
	st map[string]*shardHealth

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

func newChecker(cfg HealthConfig, shards []Shard, clients map[string]*client.Client, logf func(string, ...any)) *checker {
	cfg = cfg.withDefaults()
	hc := &http.Client{Timeout: cfg.Timeout}
	c := &checker{
		cfg:     cfg,
		shards:  shards,
		clients: clients,
		now:     time.Now,
		tick: func(d time.Duration) (<-chan time.Time, func()) {
			t := time.NewTicker(d)
			return t.C, t.Stop
		},
		probe: func(addr string) (string, error) { return rawHealthProbe(hc, addr) },
		logf:  logf,
		st:    make(map[string]*shardHealth),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for _, sh := range shards {
		c.st[sh.ID] = &shardHealth{}
	}
	return c
}

// rawHealthProbe is one un-retried healthz round trip; anything but a 200
// is a failed probe. The shard's incarnation stamp (Knowd-Boot-Id) rides
// back with the verdict so the sweep can spot silent restarts.
func rawHealthProbe(hc *http.Client, addr string) (string, error) {
	resp, err := hc.Get(addr + "/healthz")
	if err != nil {
		return "", err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	resp.Body.Close()
	boot := resp.Header.Get("Knowd-Boot-Id")
	if resp.StatusCode != http.StatusOK {
		return boot, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return boot, nil
}

func (c *checker) start() {
	c.startOnce.Do(func() {
		go func() {
			defer close(c.done)
			tc, stop := c.tick(c.cfg.Every)
			defer stop()
			for {
				select {
				case <-c.stop:
					return
				case <-tc:
					c.sweep()
				}
			}
		}()
	})
}

func (c *checker) halt() {
	c.stopOnce.Do(func() { close(c.stop) })
}

// sweep runs one probe round over every shard. Probes happen outside the
// checker mutex; state transitions are applied under it; eject/readmit
// callbacks fire after it is released (they take session locks).
func (c *checker) sweep() {
	now := c.now()
	type verdict struct {
		id    string
		boot  string
		err   error
		stats client.Stats
	}
	verdicts := make([]verdict, 0, len(c.shards))
	for _, sh := range c.shards {
		stats := c.clients[sh.ID].Stats()
		var boot string
		var err error
		if stats.Breaker == "open" {
			// The data path has already opened the breaker on this shard:
			// trust its evidence instead of waiting out probe failures.
			err = fmt.Errorf("data-path breaker open after %d consecutive failures", stats.ConsecutiveFails)
		} else {
			boot, err = c.probe(sh.Addr)
		}
		verdicts = append(verdicts, verdict{sh.ID, boot, err, stats})
	}

	var ejected, readmitted, restarted []string
	c.mu.Lock()
	for _, v := range verdicts {
		st := c.st[v.id]
		// Generation fencing: a healthy probe answering with a new boot id
		// is a shard that died and returned between sweeps. FailAfter never
		// fired, but every session mapped there is gone all the same.
		if v.err == nil && v.boot != "" {
			if st.boot != "" && st.boot != v.boot {
				restarted = append(restarted, v.id)
			}
			st.boot = v.boot
		}
		// Backpressure aggregation: new 429/503 sheds observed by the data
		// path since the last sweep feed a decaying routing-weight penalty.
		delta := v.stats.Sheds - st.lastSheds
		st.lastSheds = v.stats.Sheds
		st.penalty = st.penalty/2 + float64(delta)
		switch {
		case !st.ejected && v.err != nil:
			st.fails++
			if st.fails >= c.cfg.FailAfter {
				st.ejected = true
				st.ejectedAt = now
				ejected = append(ejected, v.id)
			}
		case !st.ejected:
			st.fails = 0
		case now.Sub(st.ejectedAt) >= c.cfg.ReadmitAfter:
			// Half-open: this sweep's probe was the trial request.
			if v.err == nil {
				st.ejected = false
				st.fails = 0
				readmitted = append(readmitted, v.id)
			} else {
				st.ejectedAt = now // failed probe restarts the cooldown
			}
		}
		if v.err != nil && c.logf != nil && !st.ejected {
			c.logf("health: shard %s probe failed (%d/%d): %v", v.id, st.fails, c.cfg.FailAfter, v.err)
		}
	}
	c.mu.Unlock()

	for _, id := range restarted {
		if c.logf != nil {
			c.logf("health: shard %s advertises a new boot id; its sessions died with the old incarnation", id)
		}
		if c.onRestart != nil {
			c.onRestart(id)
		}
	}
	for _, id := range ejected {
		if c.logf != nil {
			c.logf("health: shard %s ejected after %d consecutive probe failures", id, c.cfg.FailAfter)
		}
		if c.onEject != nil {
			c.onEject(id)
		}
	}
	for _, id := range readmitted {
		if c.logf != nil {
			c.logf("health: shard %s re-admitted by half-open probe", id)
		}
		if c.onReadmit != nil {
			c.onReadmit(id)
		}
	}
}

// usable reports whether the shard is currently routable.
func (c *checker) usable(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.st[id]
	return ok && !st.ejected
}

// effectiveWeight maps a shard's static weight through its health state:
// zero while ejected, otherwise damped by the decaying shed penalty so a
// shedding shard attracts fewer new sessions.
func (c *checker) effectiveWeight(id string, static int) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.st[id]
	if !ok || st.ejected {
		return 0
	}
	return float64(static) / (1 + st.penalty)
}

// snapshot reports one shard's checker state for stats.
func (c *checker) snapshot(id string) (state string, fails int, penalty float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.st[id]
	if !ok {
		return "unknown", 0, 0
	}
	if st.ejected {
		return "ejected", st.fails, st.penalty
	}
	return "healthy", st.fails, st.penalty
}
