package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

// RouterStats is the router's counter snapshot.
type RouterStats struct {
	Sessions        int          `json:"sessions"`
	Opens           int64        `json:"opens"`
	Closes          int64        `json:"closes"`
	Failovers       int64        `json:"failovers"`
	Handoffs        int64        `json:"handoffs"`
	Reopens         int64        `json:"reopens"`
	StandbyRebuilds int64        `json:"standby_rebuilds"`
	Hedges          int64        `json:"hedges"`
	HedgeWins       int64        `json:"hedge_wins"`
	HedgedMutations int64        `json:"hedged_mutations"` // tripwire: must be 0
	Restarts        int64        `json:"restarts"`         // incarnation changes caught by boot-id fencing
	DupOpens        int64        `json:"dup_opens"`        // strays reaped by reconcile
	DedupeHits      int64        `json:"dedupe_hits"`
	Panics          int64        `json:"panics"`
	Shards          []ShardStats `json:"shards"`
}

// ShardStats is one shard's health, routing, and latency view.
type ShardStats struct {
	ID               string  `json:"id"`
	Addr             string  `json:"addr"`
	State            string  `json:"state"` // "healthy" | "ejected"
	ConsecutiveFails int     `json:"consecutive_fails"`
	Breaker          string  `json:"breaker"`
	Weight           int     `json:"weight"`
	Penalty          float64 `json:"penalty"`
	EffectiveWeight  float64 `json:"effective_weight"`
	Requests         int64   `json:"requests"`
	Errors           int64   `json:"errors"`
	Sheds            int     `json:"sheds"`
	Retries          int     `json:"retries"`
	Primaries        int     `json:"primaries"`
	Standbys         int     `json:"standbys"`
	LatencyCount     uint64  `json:"latency_count"`
	P50Micros        int64   `json:"p50_micros"`
	P90Micros        int64   `json:"p90_micros"`
	P99Micros        int64   `json:"p99_micros"`
	MaxMicros        int64   `json:"max_micros"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// writeUpstreamErr maps a shard-call failure onto the router's response: a
// definitive shard verdict passes through with its status, a latched
// breaker or transport exhaustion becomes a 502.
func writeUpstreamErr(w http.ResponseWriter, err error, what string) {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		writeErr(w, apiErr.Status, apiErr.Msg)
		return
	}
	writeErr(w, http.StatusBadGateway, fmt.Sprintf("%s: %v", what, err))
}

// decodeBody decodes a bounded JSON request body, reporting malformed
// input as 400. Returns false when a response was already written.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (rt *Router) handleSystems(w http.ResponseWriter, r *http.Request) {
	var lastErr error
	for _, sh := range rt.shards {
		if !rt.health.usable(sh.ID) {
			continue
		}
		t0 := time.Now()
		systems, err := rt.clients[sh.ID].Systems()
		rt.observe(sh.ID, t0, err)
		if err == nil {
			writeJSON(w, http.StatusOK, systems)
			return
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("no healthy shard")
	}
	writeUpstreamErr(w, lastErr, "systems")
}

func (rt *Router) handleOpen(w http.ResponseWriter, r *http.Request) {
	var req server.OpenRequest
	if !decodeBody(w, r, &req) {
		return
	}
	seed := req.Seed
	if seed == 0 {
		// Resolve at the router so a failover replay reconstructs the same
		// seeded faults regardless of any shard's own default.
		seed = rt.cfg.Seed
	}
	ranked := rt.rank(req.System, "")
	if len(ranked) == 0 {
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "no healthy shard")
		return
	}
	// The csession is registered (and its lock held) BEFORE the upstream
	// open, so a concurrent reconcile blocks on cs.mu and sees the new
	// upstream session as mapped rather than reaping it as a stray.
	cs := &csession{key: req.System, sys: req.System, seed: seed, standbyLink: -1}
	cs.mu.Lock()
	rt.mu.Lock()
	rt.nextID++
	cs.id = "r" + strconv.FormatInt(rt.nextID, 10)
	rt.sessions[cs.id] = cs
	rt.mu.Unlock()

	var st server.SessionState
	var err error
	opened := false
	for _, sh := range ranked {
		t0 := time.Now()
		st, err = rt.clients[sh.ID].Open(req.System, seed)
		rt.observe(sh.ID, t0, err)
		if err == nil {
			cs.primary, cs.primarySID = sh.ID, st.Session
			opened = true
			break
		}
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			break // a definitive verdict (bad system spec) won't improve elsewhere
		}
	}
	if !opened {
		cs.mu.Unlock()
		rt.mu.Lock()
		delete(rt.sessions, cs.id)
		rt.mu.Unlock()
		writeUpstreamErr(w, err, "open")
		return
	}
	cs.last = st
	rt.rebuildStandbyLocked(cs)
	cs.mu.Unlock()
	rt.opens.Add(1)
	st.Session = cs.id
	writeJSON(w, http.StatusCreated, st)
}

func (rt *Router) handleGet(w http.ResponseWriter, r *http.Request) {
	cs := rt.lookup(r.PathValue("id"))
	if cs == nil {
		writeErr(w, http.StatusNotFound, "no such session")
		return
	}
	st, err := readWithFailover(rt, r.Context(), cs,
		func(ctx context.Context, c *client.Client, sid string) (server.SessionState, error) {
			return c.GetCtx(ctx, sid)
		})
	if err != nil {
		writeUpstreamErr(w, err, "get")
		return
	}
	cs.mu.Lock()
	cs.last = st
	cs.mu.Unlock()
	st.Session = cs.id
	writeJSON(w, http.StatusOK, st)
}

func (rt *Router) handleEval(w http.ResponseWriter, r *http.Request) {
	cs := rt.lookup(r.PathValue("id"))
	if cs == nil {
		writeErr(w, http.StatusNotFound, "no such session")
		return
	}
	var req server.EvalRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := readWithFailover(rt, r.Context(), cs,
		func(ctx context.Context, c *client.Client, sid string) (server.EvalResponse, error) {
			return c.EvalCtx(ctx, sid, req)
		})
	if err != nil {
		writeUpstreamErr(w, err, "eval")
		return
	}
	resp.Session = cs.id
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleAnnounce(w http.ResponseWriter, r *http.Request) {
	cs := rt.lookup(r.PathValue("id"))
	if cs == nil {
		writeErr(w, http.StatusNotFound, "no such session")
		return
	}
	var req server.AnnounceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		at := len(cs.sources)
		use := at
		if req.Link != nil {
			// The client's own CAS precondition forwards untouched, so a
			// stale retry gets the shard's replay semantics through the
			// router; without one the router imposes its chain position.
			use = *req.Link
		}
		t0 := time.Now()
		st, err := rt.clients[cs.primary].AnnounceAt(cs.primarySID, req.Formula, use)
		rt.observe(cs.primary, t0, err)
		if err == nil {
			if st.Link == at+1 {
				cs.sources = append(cs.sources, req.Formula)
			}
			// st.Link == at means the shard replayed an already-applied
			// announce (the client retried a lost response): the router's
			// source chain already matches and stays put.
			cs.last = st
			rt.catchUpStandbyLocked(cs)
			st.Session = cs.id
			writeJSON(w, http.StatusOK, st)
			return
		}
		lastErr = err
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.Status != http.StatusNotFound {
			writeErr(w, apiErr.Status, apiErr.Msg)
			return
		}
		// Transport exhaustion, breaker, or a shard that lost the session:
		// fail over and retry once. The retry re-announces with the same
		// precondition; if the dead primary had already applied it, the
		// successor's replayed chain plus the CAS keeps it exactly-once.
		if ferr := rt.failoverLocked(cs, cs.primary); ferr != nil {
			writeErr(w, http.StatusBadGateway, fmt.Sprintf("announce: %v (failover: %v)", err, ferr))
			return
		}
	}
	writeUpstreamErr(w, lastErr, "announce")
}

func (rt *Router) handleClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	cs := rt.lookup(id)
	if cs == nil {
		writeErr(w, http.StatusNotFound, "no such session")
		return
	}
	cs.mu.Lock()
	// Best-effort upstream closes: a dead replica's copy is unreachable
	// anyway, and reconcile reaps whatever survives a partition.
	if cs.primarySID != "" {
		t0 := time.Now()
		err := rt.quick[cs.primary].Close(cs.primarySID)
		rt.observe(cs.primary, t0, err)
	}
	if cs.standby != "" && cs.standbySID != "" {
		rt.quick[cs.standby].Close(cs.standbySID)
	}
	rt.mu.Lock()
	delete(rt.sessions, id)
	rt.mu.Unlock()
	cs.mu.Unlock()
	rt.closes.Add(1)
	writeJSON(w, http.StatusOK, map[string]string{"closed": id})
}

func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	out := make([]server.SessionState, 0)
	for _, cs := range rt.sessionList() {
		cs.mu.Lock()
		st := cs.last
		st.Session = cs.id
		cs.mu.Unlock()
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleReconcile(w http.ResponseWriter, r *http.Request) {
	closed := 0
	errs := 0
	for _, sh := range rt.shards {
		if !rt.health.usable(sh.ID) {
			continue
		}
		n, err := rt.reconcile(sh.ID)
		if err != nil {
			errs++
			rt.logf("reconcile: shard %s: %v", sh.ID, err)
			continue
		}
		closed += n
	}
	writeJSON(w, http.StatusOK, map[string]int{"strays_closed": closed, "shard_errors": errs})
}

// StatsSnapshot assembles the router's counters and per-shard views.
func (rt *Router) StatsSnapshot() RouterStats {
	primaries := make(map[string]int)
	standbys := make(map[string]int)
	sessions := 0
	for _, cs := range rt.sessionList() {
		cs.mu.Lock()
		primaries[cs.primary]++
		if cs.standby != "" {
			standbys[cs.standby]++
		}
		cs.mu.Unlock()
		sessions++
	}
	out := RouterStats{
		Sessions:        sessions,
		Opens:           rt.opens.Load(),
		Closes:          rt.closes.Load(),
		Failovers:       rt.failovers.Load(),
		Handoffs:        rt.handoffs.Load(),
		Reopens:         rt.reopens.Load(),
		StandbyRebuilds: rt.standbyRebuilds.Load(),
		Hedges:          rt.hedges.Load(),
		HedgeWins:       rt.hedgeWins.Load(),
		HedgedMutations: rt.hedgedMutations.Load(),
		Restarts:        rt.restarts.Load(),
		DupOpens:        rt.dupOpens.Load(),
		DedupeHits:      rt.dedupe.Hits(),
		Panics:          rt.panics.Load(),
	}
	for _, sh := range rt.shards {
		state, fails, penalty := rt.health.snapshot(sh.ID)
		cst := rt.clients[sh.ID].Stats()
		rt.metricsMu.Lock()
		m := rt.perShard[sh.ID]
		ss := ShardStats{
			ID:               sh.ID,
			Addr:             sh.Addr,
			State:            state,
			ConsecutiveFails: fails,
			Breaker:          cst.Breaker,
			Weight:           sh.Weight,
			Penalty:          penalty,
			EffectiveWeight:  rt.health.effectiveWeight(sh.ID, sh.Weight),
			Requests:         m.requests,
			Errors:           m.errs,
			Sheds:            cst.Sheds,
			Retries:          cst.Retries,
			Primaries:        primaries[sh.ID],
			Standbys:         standbys[sh.ID],
			LatencyCount:     m.hist.Count(),
			P50Micros:        int64(m.hist.Quantile(0.5) / time.Microsecond),
			P90Micros:        int64(m.hist.Quantile(0.9) / time.Microsecond),
			P99Micros:        int64(m.hist.Quantile(0.99) / time.Microsecond),
			MaxMicros:        int64(m.hist.Max() / time.Microsecond),
		}
		rt.metricsMu.Unlock()
		out.Shards = append(out.Shards, ss)
	}
	return out
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.StatsSnapshot())
}

// handleReport renders the per-shard latency histograms and health states
// as markdown — curl-able straight into a soak report.
func (rt *Router) handleReport(w http.ResponseWriter, r *http.Request) {
	st := rt.StatsSnapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "## knowrouter fleet report\n\n")
	fmt.Fprintf(&b, "sessions %d · opens %d · failovers %d (handoffs %d, reopens %d) · hedges %d (wins %d) · hedged mutations %d · strays reaped %d\n\n",
		st.Sessions, st.Opens, st.Failovers, st.Handoffs, st.Reopens, st.Hedges, st.HedgeWins, st.HedgedMutations, st.DupOpens)
	fmt.Fprintf(&b, "| shard | state | breaker | w_eff | requests | errors | sheds | primaries | standbys | p50 | p90 | p99 | max |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	micros := func(us int64) string { return (time.Duration(us) * time.Microsecond).String() }
	for _, sh := range st.Shards {
		fmt.Fprintf(&b, "| %s | %s | %s | %.2f | %d | %d | %d | %d | %d | %s | %s | %s | %s |\n",
			sh.ID, sh.State, sh.Breaker, sh.EffectiveWeight, sh.Requests, sh.Errors, sh.Sheds,
			sh.Primaries, sh.Standbys, micros(sh.P50Micros), micros(sh.P90Micros), micros(sh.P99Micros), micros(sh.MaxMicros))
	}
	w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String()))
}
