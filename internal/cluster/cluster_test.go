package cluster

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestParseShards(t *testing.T) {
	good := []struct {
		spec string
		want []Shard
	}{
		{"n1=http://127.0.0.1:7501", []Shard{{"n1", "http://127.0.0.1:7501", 1}}},
		{"n1=http://127.0.0.1:7501/", []Shard{{"n1", "http://127.0.0.1:7501", 1}}},
		{" n1 = http://a:1 , n2*2 = https://b:2 ", []Shard{{"n1", "http://a:1", 1}, {"n2", "https://b:2", 2}}},
		{"n1*1048576=http://a:1", []Shard{{"n1", "http://a:1", 1 << 20}}},
	}
	for _, tc := range good {
		got, err := ParseShards(tc.spec)
		if err != nil {
			t.Errorf("ParseShards(%q): %v", tc.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseShards(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}

	bad := []struct {
		spec string
		frag string // must appear in the error
	}{
		{"", "empty shard list"},
		{"   ", "empty shard list"},
		{"n1=http://a:1,,n2=http://b:2", "empty shard entry"},
		{"n1", "want id[*weight]=addr"},
		{"=http://a:1", "empty id"},
		{"*2=http://a:1", "empty id"},
		{"n 1=http://a:1", "whitespace"},
		{"n1*x=http://a:1", "bad weight"},
		{"n1*0=http://a:1", "weight must be >= 1"},
		{"n1*-3=http://a:1", "weight must be >= 1"},
		{"n1*1048577=http://a:1", "cap"},
		{"n1=http://a:1,n1=http://b:2", "duplicate shard id"},
		{"n1=127.0.0.1:7501", "bad address"},
		{"n1=ftp://a:1", "absolute http(s) URL"},
		{"n1=http://", "absolute http(s) URL"},
		{"n1=http://user:pw@a:1", "credentials"},
		{"n1=http://a:1/metrics", "credentials, path, query, or fragment"},
		{"n1=http://a:1?x=1", "credentials, path, query, or fragment"},
		{"n1=http://a:1#frag", "credentials, path, query, or fragment"},
		{"n\n1=http://a:1", "whitespace"}, // any unicode whitespace in an id, not just ' '
	}
	for _, tc := range bad {
		got, err := ParseShards(tc.spec)
		if err == nil {
			t.Errorf("ParseShards(%q) = %+v, want error containing %q", tc.spec, got, tc.frag)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("ParseShards(%q) error %q, want it to contain %q", tc.spec, err, tc.frag)
		}
	}
}

func TestFormatShardsRoundTrip(t *testing.T) {
	spec := "n1=http://127.0.0.1:7501,n2*3=http://127.0.0.1:7502,far*7=https://example.com:8443"
	shards, err := ParseShards(spec)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseShards(FormatShards(shards))
	if err != nil {
		t.Fatalf("re-parse of %q: %v", FormatShards(shards), err)
	}
	if !reflect.DeepEqual(shards, again) {
		t.Fatalf("round trip changed shards: %+v vs %+v", shards, again)
	}
}

// rendezvousWinner is the test-side argmax over (score, then ID) — the same
// ordering Router.rank uses.
func rendezvousWinner(ids []string, key string, weight func(id string) float64) string {
	best, bestScore := "", math.Inf(-1)
	for _, id := range ids {
		s := rendezvousScore(id, key, weight(id))
		if s > bestScore || (s == bestScore && (best == "" || id < best)) {
			best, bestScore = id, s
		}
	}
	return best
}

func TestRendezvousDeterministicAndStable(t *testing.T) {
	ids := []string{"n1", "n2", "n3", "n4", "n5"}
	unit := func(string) float64 { return 1 }
	keys := make([]string, 0, 500)
	for i := 0; i < 500; i++ {
		keys = append(keys, "muddy:"+strings.Repeat("x", i%7)+string(rune('a'+i%26)))
	}
	for _, key := range keys {
		w := rendezvousWinner(ids, key, unit)
		if w2 := rendezvousWinner(ids, key, unit); w2 != w {
			t.Fatalf("key %q: nondeterministic winner %s vs %s", key, w, w2)
		}
		// The defining rendezvous property: removing a shard other than the
		// winner never moves the key.
		for _, gone := range ids {
			if gone == w {
				continue
			}
			rest := make([]string, 0, len(ids)-1)
			for _, id := range ids {
				if id != gone {
					rest = append(rest, id)
				}
			}
			if got := rendezvousWinner(rest, key, unit); got != w {
				t.Fatalf("key %q: removing loser %s moved it %s -> %s", key, gone, w, got)
			}
		}
	}
}

func TestRendezvousWeighting(t *testing.T) {
	ids := []string{"n1", "n2"}
	weight := func(id string) float64 {
		if id == "n2" {
			return 3
		}
		return 1
	}
	wins := map[string]int{}
	for i := 0; i < 4000; i++ {
		key := "sys:" + strings.Repeat("k", i%11) + string(rune('a'+i%26)) + string(rune('0'+i%10))
		wins[rendezvousWinner(ids, key, weight)]++
	}
	ratio := float64(wins["n2"]) / float64(wins["n1"])
	if ratio < 2.2 || ratio > 4.0 {
		t.Fatalf("weight-3 shard won %d vs %d (ratio %.2f), want ~3x", wins["n2"], wins["n1"], ratio)
	}
	if rendezvousScore("n1", "key", 0) != math.Inf(-1) || rendezvousScore("n1", "key", -2) != math.Inf(-1) {
		t.Fatal("non-positive weight must score -Inf")
	}
}
