// Package cluster implements knowrouter, the sharded front for a fleet of
// knowd daemons. Sessions are placed by weighted rendezvous-hashing their
// system spec (muddy:N, scenario:regime, attack — the workload families
// partition naturally by spec), so every router instance computes the same
// placement with no coordination and losing a shard reshuffles only that
// shard's keys.
//
// The design premise comes straight from the source paper: over unreliable
// communication the router can never *know* a shard's state, only act on
// stale evidence — health probes, breaker telemetry, timeouts. Every
// mechanism here is shaped by that:
//
//   - active health checks eject a shard after consecutive probe failures
//     and re-admit it through a half-open probe, mirroring the
//     internal/client breaker (whose telemetry the checker also reads);
//   - a dead shard's sessions fail over by replaying their announcement
//     sources on a successor; the announce-link CAS makes the replayed
//     chain advance exactly-once even when the "dead" shard had already
//     applied the announcement before the router lost its answer;
//   - read-only requests (eval batches, session GETs) hedge to a warm
//     standby replica after a seeded latency threshold, first success
//     wins, the loser is cancelled; mutations are never hedged, because a
//     lost mutation response is indistinguishable from a slow one and two
//     in-flight copies of an announce would race the chain;
//   - per-shard 429/503 shed counts decay into a routing-weight penalty,
//     so a shedding shard drains load instead of melting.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/url"
	"strconv"
	"strings"
	"unicode"
)

// Shard is one knowd upstream: a stable ID (the rendezvous identity), its
// base URL, and a static routing weight.
type Shard struct {
	ID     string
	Addr   string
	Weight int
}

// maxWeight bounds a shard's static weight; anything above it is almost
// certainly a typo and would drown out every other shard.
const maxWeight = 1 << 20

// ParseShards parses a knowrouter shard list: comma-separated
// "id[*weight]=addr" entries, e.g.
//
//	n1=http://127.0.0.1:7501,n2*2=http://127.0.0.1:7502
//
// Weight defaults to 1 and must be an integer in [1, 1<<20] — a
// zero-weight shard is a configuration error, not a soft-disabled entry.
// IDs must be unique, non-empty, and free of whitespace and '*'; addresses
// must be bare absolute http(s) URLs (scheme://host[:port]) — no
// credentials, path, query, or fragment. The returned addresses are
// normalized to exactly scheme://host.
func ParseShards(spec string) ([]Shard, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, errors.New("cluster: empty shard list")
	}
	seen := make(map[string]bool)
	var out []Shard
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("cluster: empty shard entry in %q", spec)
		}
		name, addr, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: shard %q: want id[*weight]=addr", entry)
		}
		id := strings.TrimSpace(name)
		weight := 1
		if base, ws, hasWeight := strings.Cut(name, "*"); hasWeight {
			id = strings.TrimSpace(base)
			n, err := strconv.Atoi(strings.TrimSpace(ws))
			if err != nil {
				return nil, fmt.Errorf("cluster: shard %q: bad weight %q", entry, strings.TrimSpace(ws))
			}
			if n < 1 {
				return nil, fmt.Errorf("cluster: shard %q: weight must be >= 1 (zero-weight shards are configuration errors)", entry)
			}
			if n > maxWeight {
				return nil, fmt.Errorf("cluster: shard %q: weight %d exceeds the %d cap", entry, n, maxWeight)
			}
			weight = n
		}
		if id == "" {
			return nil, fmt.Errorf("cluster: shard %q: empty id", entry)
		}
		if strings.ContainsRune(id, '*') || strings.IndexFunc(id, unicode.IsSpace) >= 0 {
			return nil, fmt.Errorf("cluster: shard %q: id %q contains whitespace or '*'", entry, id)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate shard id %q", id)
		}
		seen[id] = true
		u, err := url.Parse(strings.TrimSpace(addr))
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %q: bad address: %v", entry, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("cluster: shard %q: address must be an absolute http(s) URL with a host", entry)
		}
		if u.User != nil || u.Opaque != "" || (u.Path != "" && u.Path != "/") || u.RawQuery != "" || u.Fragment != "" {
			return nil, fmt.Errorf("cluster: shard %q: address must not carry credentials, path, query, or fragment", entry)
		}
		out = append(out, Shard{ID: id, Addr: u.Scheme + "://" + u.Host, Weight: weight})
	}
	return out, nil
}

// FormatShards renders shards back into ParseShards syntax (round-trip
// helper for logs and the fuzz oracle).
func FormatShards(shards []Shard) string {
	parts := make([]string, len(shards))
	for i, sh := range shards {
		if sh.Weight == 1 {
			parts[i] = sh.ID + "=" + sh.Addr
		} else {
			parts[i] = fmt.Sprintf("%s*%d=%s", sh.ID, sh.Weight, sh.Addr)
		}
	}
	return strings.Join(parts, ",")
}

// shardKeyHash mixes a (shard, key) pair into 64 uniform bits: FNV-1a over
// "id\x00key" pushed through the splitmix64 finalizer (FNV alone is too
// linear in its tail for rendezvous scores).
func shardKeyHash(shardID, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(shardID))
	h.Write([]byte{0})
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rendezvousScore is the weighted rendezvous (highest-random-weight) score
// of shard for key: -w/ln(u) with u uniform in (0,1) derived from the
// (shard, key) hash. Every router computes identical scores, the argmax is
// distributed ~proportionally to weights, and removing a shard never moves
// a key between two surviving shards.
func rendezvousScore(shardID, key string, weight float64) float64 {
	if weight <= 0 {
		return math.Inf(-1)
	}
	u := (float64(shardKeyHash(shardID, key)>>11) + 0.5) / (1 << 53)
	return -weight / math.Log(u)
}
