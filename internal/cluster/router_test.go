package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

// testShard is one in-process knowd upstream at a stable address. down
// simulates a SIGKILL (connections die mid-flight with no response);
// reset() is a crash-restart with total state loss; slowRead delays reads
// (GETs and eval batches) to provoke hedging without touching mutations.
type testShard struct {
	id       string
	ts       *httptest.Server
	handler  atomic.Pointer[http.Handler]
	down     atomic.Bool
	slowRead atomic.Int64 // nanoseconds
}

func (sh *testShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if sh.down.Load() {
		panic(http.ErrAbortHandler)
	}
	if d := sh.slowRead.Load(); d > 0 && (r.Method == http.MethodGet || strings.HasSuffix(r.URL.Path, "/eval")) {
		time.Sleep(time.Duration(d))
	}
	(*sh.handler.Load()).ServeHTTP(w, r)
}

func (sh *testShard) reset() { sh.resetWithBoot("") }

// resetWithBoot is a crash-restart into a fresh incarnation: total state
// loss plus a new boot id advertised on healthz.
func (sh *testShard) resetWithBoot(boot string) {
	h := server.New(server.Config{BootID: boot}).Handler()
	sh.handler.Store(&h)
	sh.down.Store(false)
}

func newFleet(t *testing.T, ids ...string) ([]Shard, map[string]*testShard) {
	t.Helper()
	shards := make([]Shard, 0, len(ids))
	fleet := make(map[string]*testShard, len(ids))
	for _, id := range ids {
		sh := &testShard{id: id}
		sh.reset()
		sh.ts = httptest.NewServer(sh)
		t.Cleanup(sh.ts.Close)
		shards = append(shards, Shard{ID: id, Addr: sh.ts.URL, Weight: 1})
		fleet[id] = sh
	}
	return shards, fleet
}

// newTestRouter mounts a router over the fleet (health checker NOT started:
// tests drive ejection explicitly) plus a client speaking to it.
func newTestRouter(t *testing.T, cfg Config, shards []Shard) (*Router, *httptest.Server, *client.Client) {
	t.Helper()
	cfg.Shards = shards
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = -1 // hedging opt-in per test
	}
	if cfg.ShardMaxAttempts == 0 {
		cfg.ShardMaxAttempts = 2
	}
	if cfg.ShardBaseDelay == 0 {
		cfg.ShardBaseDelay = time.Millisecond
	}
	if cfg.ShardMaxDelay == 0 {
		cfg.ShardMaxDelay = 4 * time.Millisecond
	}
	cfg.Logf = t.Logf
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	rc := client.New(client.Config{BaseURL: ts.URL, MaxAttempts: 2, BaseDelay: time.Millisecond})
	return rt, ts, rc
}

// control runs the same session script against a plain single knowd and
// returns its final state and eval response — the oracle every routed
// variant must match bit for bit (modulo the session id the router owns).
func control(t *testing.T, sys string, seed int64, sources, formulas []string) (server.SessionState, server.EvalResponse) {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	t.Cleanup(ts.Close)
	c := client.New(client.Config{BaseURL: ts.URL})
	st, err := c.Open(sys, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range sources {
		if st, err = c.AnnounceAt(st.Session, src, i); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := c.Eval(st.Session, server.EvalRequest{Formulas: formulas})
	if err != nil {
		t.Fatal(err)
	}
	st.Session, resp.Session = "", ""
	return st, resp
}

func ejectShard(rt *Router, id string) {
	rt.health.mu.Lock()
	rt.health.st[id].ejected = true
	rt.health.mu.Unlock()
}

func TestRouterBasicFlow(t *testing.T) {
	shards, fleet := newFleet(t, "n1", "n2")
	rt, _, rc := newTestRouter(t, Config{}, shards)

	st, err := rc.Open("muddy:3", 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Session != "r1" || st.Agents != 3 || st.Link != 0 {
		t.Fatalf("opened state: %+v", st)
	}
	father := "muddy0 | muddy1 | muddy2"
	if st, err = rc.Announce("r1", father); err != nil {
		t.Fatal(err)
	}
	if st.Session != "r1" || st.Link != 1 {
		t.Fatalf("announced state: %+v", st)
	}
	resp, err := rc.Eval("r1", server.EvalRequest{Formulas: []string{"muddy0", "muddy1"}})
	if err != nil {
		t.Fatal(err)
	}

	// The router must be invisible: state and verdicts byte-equal a plain
	// single-daemon run of the same script (seed 0 resolves to the router's
	// configured seed, so the control opens with that seed explicitly).
	wantSt, wantResp := control(t, "muddy:3", 7, []string{father}, []string{"muddy0", "muddy1"})
	got, err := rc.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	got.Session = ""
	if !reflect.DeepEqual(got, wantSt) {
		t.Fatalf("routed state %+v != control %+v", got, wantSt)
	}
	resp.Session = ""
	if !reflect.DeepEqual(resp, wantResp) {
		t.Fatalf("routed eval %+v != control %+v", resp, wantResp)
	}

	// A warm standby was built on the other shard and caught up through the
	// announce, so both shards hold exactly one replica of the chain.
	cs := rt.lookup("r1")
	cs.mu.Lock()
	if cs.standby == "" || cs.standby == cs.primary || cs.standbyLink != len(cs.sources) || len(cs.sources) != 1 {
		t.Fatalf("standby not in sync: primary=%s standby=%s standbyLink=%d sources=%d",
			cs.primary, cs.standby, cs.standbyLink, len(cs.sources))
	}
	cs.mu.Unlock()
	for id, sh := range fleet {
		states, err := client.New(client.Config{BaseURL: sh.ts.URL}).Sessions()
		if err != nil || len(states) != 1 || states[0].Link != 1 {
			t.Fatalf("shard %s replicas: %+v, %v", id, states, err)
		}
	}

	if err := rc.Close("r1"); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Get("r1"); err == nil {
		t.Fatal("get after close succeeded")
	}
	stats := rt.StatsSnapshot()
	if stats.Opens != 1 || stats.Closes != 1 || stats.Sessions != 0 {
		t.Fatalf("counters: %+v", stats)
	}
	if stats.HedgedMutations != 0 {
		t.Fatalf("hedged mutations tripwire: %d", stats.HedgedMutations)
	}
	// The upstream replicas were closed too.
	for id, sh := range fleet {
		if states, _ := client.New(client.Config{BaseURL: sh.ts.URL}).Sessions(); len(states) != 0 {
			t.Fatalf("shard %s kept replicas after close: %+v", id, states)
		}
	}
}

func TestRouterDedupe(t *testing.T) {
	shards, _ := newFleet(t, "n1", "n2")
	rt, ts, _ := newTestRouter(t, Config{}, shards)

	open := func() (int, []byte) {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions", strings.NewReader(`{"system":"muddy:2"}`))
		req.Header.Set("Idempotency-Key", "open-retry-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}
	code1, body1 := open()
	code2, body2 := open()
	if code1 != http.StatusCreated || code2 != http.StatusCreated || !bytes.Equal(body1, body2) {
		t.Fatalf("dedupe replay diverged: %d %s vs %d %s", code1, body1, code2, body2)
	}
	if st := rt.StatsSnapshot(); st.Opens != 1 || st.DedupeHits != 1 || st.Sessions != 1 {
		t.Fatalf("counters after idempotent retry: %+v", st)
	}
}

func TestRouterFailoverHandoff(t *testing.T) {
	shards, fleet := newFleet(t, "n1", "n2")
	rt, _, rc := newTestRouter(t, Config{}, shards)

	if _, err := rc.Open("muddy:2", 0); err != nil {
		t.Fatal(err)
	}
	father := "muddy0 | muddy1"
	if _, err := rc.Announce("r1", father); err != nil {
		t.Fatal(err)
	}
	cs := rt.lookup("r1")
	cs.mu.Lock()
	primary, standby := cs.primary, cs.standby
	cs.mu.Unlock()
	if standby == "" {
		t.Fatal("no standby to hand off to")
	}

	wantSt, wantResp := control(t, "muddy:2", 7, []string{father}, []string{"muddy0"})
	fleet[primary].down.Store(true)

	resp, err := rc.Eval("r1", server.EvalRequest{Formulas: []string{"muddy0"}})
	if err != nil {
		t.Fatalf("eval across failover: %v", err)
	}
	resp.Session = ""
	if !reflect.DeepEqual(resp, wantResp) {
		t.Fatalf("post-handoff eval %+v != control %+v", resp, wantResp)
	}
	st := rt.StatsSnapshot()
	if st.Failovers != 1 || st.Handoffs != 1 || st.Reopens != 0 {
		t.Fatalf("failover counters: %+v", st)
	}
	cs.mu.Lock()
	if cs.primary != standby {
		t.Fatalf("primary after handoff %s, want promoted standby %s", cs.primary, standby)
	}
	if cs.standby != "" {
		t.Fatalf("standby rebuilt on a dead shard: %s", cs.standby)
	}
	cs.mu.Unlock()
	got, err := rc.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	got.Session = ""
	if !reflect.DeepEqual(got, wantSt) {
		t.Fatalf("post-handoff state %+v != control %+v", got, wantSt)
	}

	// The dead shard crash-restarts empty at the same address; the next
	// announce catches the chain up and rebuilds the warm standby on it by
	// replaying the persisted sources.
	fleet[primary].reset()
	if _, err := rc.Announce("r1", "muddy0"); err != nil {
		t.Fatal(err)
	}
	cs.mu.Lock()
	if cs.standby != primary || cs.standbyLink != 2 || len(cs.sources) != 2 {
		t.Fatalf("standby after restart: standby=%s link=%d sources=%d", cs.standby, cs.standbyLink, len(cs.sources))
	}
	cs.mu.Unlock()
	if rt.StatsSnapshot().StandbyRebuilds == 0 {
		t.Fatal("standby rebuild not counted")
	}
}

func TestRouterFailoverReplay(t *testing.T) {
	shards, fleet := newFleet(t, "n1", "n2", "n3")
	rt, _, rc := newTestRouter(t, Config{}, shards)

	if _, err := rc.Open("muddy:2", 0); err != nil {
		t.Fatal(err)
	}
	father := "muddy0 | muddy1"
	if _, err := rc.Announce("r1", father); err != nil {
		t.Fatal(err)
	}
	cs := rt.lookup("r1")
	cs.mu.Lock()
	primary, standby := cs.primary, cs.standby
	cs.mu.Unlock()

	// The standby's shard is ejected and the primary is killed: the only
	// path left is a full re-open on the third shard by replaying the
	// persisted announcement sources.
	ejectShard(rt, standby)
	fleet[primary].down.Store(true)

	wantSt, wantResp := control(t, "muddy:2", 7, []string{father}, []string{"muddy1"})
	resp, err := rc.Eval("r1", server.EvalRequest{Formulas: []string{"muddy1"}})
	if err != nil {
		t.Fatalf("eval across replay failover: %v", err)
	}
	resp.Session = ""
	if !reflect.DeepEqual(resp, wantResp) {
		t.Fatalf("post-replay eval %+v != control %+v", resp, wantResp)
	}
	st := rt.StatsSnapshot()
	if st.Reopens != 1 || st.Handoffs != 0 {
		t.Fatalf("failover counters: %+v", st)
	}
	cs.mu.Lock()
	newPrimary := cs.primary
	cs.mu.Unlock()
	if newPrimary == primary || newPrimary == standby {
		t.Fatalf("replayed onto %s, want the third shard", newPrimary)
	}
	got, err := rc.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	got.Session = ""
	if !reflect.DeepEqual(got, wantSt) {
		t.Fatalf("replayed chain state %+v != control %+v", got, wantSt)
	}
}

func TestRouterHedgedReads(t *testing.T) {
	shards, fleet := newFleet(t, "n1", "n2")
	rt, _, rc := newTestRouter(t, Config{HedgeAfter: 2 * time.Millisecond}, shards)

	if _, err := rc.Open("muddy:2", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Announce("r1", "muddy0 | muddy1"); err != nil {
		t.Fatal(err)
	}
	cs := rt.lookup("r1")
	cs.mu.Lock()
	primary := cs.primary
	cs.mu.Unlock()

	// The primary answers reads 400ms late; the hedge fires after ~1-3ms
	// and the in-sync standby must win, so both calls return promptly with
	// correct results even though the primary never failed.
	fleet[primary].slowRead.Store(int64(400 * time.Millisecond))
	st, err := rc.Get("r1")
	if err != nil || st.Link != 1 {
		t.Fatalf("hedged get: %+v, %v", st, err)
	}
	resp, err := rc.Eval("r1", server.EvalRequest{Formulas: []string{"muddy0"}})
	if err != nil || resp.Link != 1 || len(resp.Verdicts) != 1 {
		t.Fatalf("hedged eval: %+v, %v", resp, err)
	}
	stats := rt.StatsSnapshot()
	if stats.Hedges < 2 || stats.HedgeWins < 2 {
		t.Fatalf("hedge counters after two slow reads: %+v", stats)
	}
	if stats.Failovers != 0 {
		t.Fatalf("hedging triggered a failover: %+v", stats)
	}

	// Mutations go straight to the slow primary — never hedged. (The
	// announce path isn't slowed by the fixture, so this stays fast; the
	// tripwire counter is the real assertion.)
	if _, err := rc.Announce("r1", "muddy0"); err != nil {
		t.Fatal(err)
	}
	if got := rt.StatsSnapshot().HedgedMutations; got != 0 {
		t.Fatalf("hedged mutations tripwire: %d", got)
	}
}

func TestRouterOpenNoHealthyShard(t *testing.T) {
	shards, _ := newFleet(t, "n1", "n2")
	rt, ts, _ := newTestRouter(t, Config{}, shards)
	ejectShard(rt, "n1")
	ejectShard(rt, "n2")
	// Raw request: the retrying client would honor Retry-After and sleep.
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{"system":"muddy:2"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "no healthy shard") {
		t.Fatalf("open with no healthy shard: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

func TestRouterReconcile(t *testing.T) {
	shards, fleet := newFleet(t, "n1", "n2")
	rt, ts, rc := newTestRouter(t, Config{}, shards)

	if _, err := rc.Open("muddy:2", 0); err != nil {
		t.Fatal(err)
	}
	// A stray upstream session the router never mapped — the residue a
	// partition-era failover leaves on a shard that comes back.
	strayClient := client.New(client.Config{BaseURL: fleet["n1"].ts.URL})
	stray, err := strayClient.Open("muddy:4", 3)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/reconcile", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out["strays_closed"] != 1 || out["shard_errors"] != 0 {
		t.Fatalf("reconcile: %v", out)
	}
	if rt.StatsSnapshot().DupOpens != 1 {
		t.Fatalf("dup_opens %d, want 1", rt.StatsSnapshot().DupOpens)
	}
	if _, err := strayClient.Get(stray.Session); err == nil {
		t.Fatal("stray survived reconcile")
	}
	// The mapped session (and its standby replica) did not get reaped.
	if _, err := rc.Get("r1"); err != nil {
		t.Fatalf("mapped session reaped by reconcile: %v", err)
	}
}

func TestRouterDrainAndReport(t *testing.T) {
	shards, _ := newFleet(t, "n1", "n2")
	rt, ts, rc := newTestRouter(t, Config{}, shards)
	if _, err := rc.Open("muddy:2", 0); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	report, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"| shard |", "| n1 |", "| n2 |", "knowrouter fleet report"} {
		if !strings.Contains(string(report), want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, probe := range []struct{ method, path, wantBody string }{
		{"GET", "/healthz", "draining"},
		{"POST", "/v1/sessions", "draining"},
		{"GET", "/v1/sessions/r1", "draining"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, strings.NewReader(`{"system":"muddy:2"}`))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), probe.wantBody) {
			t.Fatalf("%s %s while draining: %d %s", probe.method, probe.path, resp.StatusCode, body)
		}
	}
}

// TestRouterConcurrentEvalsDuringKill hammers reads while the primary dies:
// every request must either succeed with the correct link or fail over
// transparently — no duplicate chains, no wrong answers.
func TestRouterConcurrentEvalsDuringKill(t *testing.T) {
	shards, fleet := newFleet(t, "n1", "n2", "n3")
	rt, _, rc := newTestRouter(t, Config{}, shards)
	if _, err := rc.Open("muddy:2", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Announce("r1", "muddy0 | muddy1"); err != nil {
		t.Fatal(err)
	}
	cs := rt.lookup("r1")
	cs.mu.Lock()
	primary := cs.primary
	cs.mu.Unlock()

	const workers = 8
	errc := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func() {
			for j := 0; j < 5; j++ {
				st, err := rc.Get("r1")
				if err != nil {
					errc <- err
					return
				}
				if st.Link != 1 {
					errc <- fmt.Errorf("link %d, want 1", st.Link)
					return
				}
			}
			errc <- nil
		}()
	}
	fleet[primary].down.Store(true)
	for i := 0; i < workers; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("concurrent read during kill: %v", err)
		}
	}
	if got := rt.StatsSnapshot().HedgedMutations; got != 0 {
		t.Fatalf("hedged mutations tripwire: %d", got)
	}
}

// TestRouterBootRestartFencing crashes a shard and brings it back with a
// new boot id faster than any probe failure could accumulate — the blind
// spot of consecutive-failure ejection. The next sweep must spot the
// incarnation change and evacuate every session mapped there, replaying
// chains onto survivors, so no request ever reads a ghost of the old
// incarnation.
func TestRouterBootRestartFencing(t *testing.T) {
	shards, fleet := newFleet(t, "n1", "n2")
	fleet["n1"].resetWithBoot("inc1")
	fleet["n2"].resetWithBoot("inc1")
	rt, _, rc := newTestRouter(t, Config{}, shards)
	rt.health.sweep() // records each shard's first advertised incarnation

	father := "muddy0 | muddy1 | muddy2"
	sessions := make(map[string]int) // router session -> expected link
	byShard := map[string]int{}
	for i := 0; i < 8; i++ {
		st, err := rc.Open(fmt.Sprintf("muddy:%d", 2+i), 0)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if st, err = rc.Announce(st.Session, father); err != nil {
				t.Fatal(err)
			}
		}
		sessions[st.Session] = st.Link
		cs := rt.lookup(st.Session)
		cs.mu.Lock()
		byShard[cs.primary]++
		cs.mu.Unlock()
	}
	if byShard["n1"] == 0 || byShard["n2"] == 0 {
		t.Fatalf("placement never split: %v", byShard)
	}

	// Instant crash-restart: state gone, probes green the whole time.
	fleet["n1"].resetWithBoot("inc2")
	rt.health.sweep()

	if got := rt.restarts.Load(); got != 1 {
		t.Fatalf("restarts detected: %d, want 1", got)
	}
	for id, wantLink := range sessions {
		cs := rt.lookup(id)
		cs.mu.Lock()
		primary := cs.primary
		cs.mu.Unlock()
		if primary == "n1" {
			t.Fatalf("session %s still mapped to the dead incarnation", id)
		}
		st, err := rc.Get(id)
		if err != nil {
			t.Fatalf("get %s after fencing: %v", id, err)
		}
		if st.Link != wantLink {
			t.Fatalf("session %s link %d after evacuation, want %d", id, st.Link, wantLink)
		}
	}

	// A stable incarnation must not keep firing.
	rt.health.sweep()
	if got := rt.restarts.Load(); got != 1 {
		t.Fatalf("restarts after stable sweep: %d, want 1", got)
	}
}
