package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/server"
)

// Config carries the router knobs; zero values mean defaults.
type Config struct {
	// Shards is the upstream fleet (use ParseShards for the CLI syntax).
	Shards []Shard
	// Seed drives the hedge-delay jitter and the per-shard client jitter
	// streams, and is the session seed applied when an OpenRequest carries
	// none. Default 1.
	Seed int64
	// HedgeAfter is the base latency threshold before a read-only request
	// is hedged to the standby replica; the actual per-request delay is a
	// seeded draw from [HedgeAfter/2, 3*HedgeAfter/2). Zero means 25ms;
	// negative disables hedging.
	HedgeAfter time.Duration
	// Health configures the active health checker.
	Health HealthConfig
	// ShardMaxAttempts / ShardBaseDelay / ShardMaxDelay tune the primary
	// data-path client per shard (defaults follow internal/client).
	ShardMaxAttempts int
	ShardBaseDelay   time.Duration
	ShardMaxDelay    time.Duration
	// DedupeWindow is how many idempotency keys the router remembers.
	// Default 256.
	DedupeWindow int
	// HTTPClient overrides the shard transport (tests).
	HTTPClient *http.Client
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 25 * time.Millisecond
	}
	return c
}

// csession is the router's record of one logical session: where its
// primary and standby replicas live, and the full announcement source
// chain — the replay script that lets the router rebuild the session on
// any healthy shard. All fields are guarded by mu, which also serializes
// the session's mutations end to end (mirroring the shard-side lock).
type csession struct {
	mu  sync.Mutex
	id  string // router-assigned "r<n>"
	key string // rendezvous key: the system spec
	sys string
	// seed is the resolved session seed (never 0), so a replayed open
	// lands on identical fault sampling regardless of shard defaults.
	seed    int64
	sources []string // applied announcement formulas, in chain order

	primary    string // shard ID
	primarySID string // session ID on the primary
	standby    string // shard ID of the warm replica; "" when none
	standbySID string
	// standbyLink is how many links the standby chain has applied; it
	// equals len(sources) when the standby is promotable in-place and -1
	// when the replica is stale and must be rebuilt.
	standbyLink int

	last server.SessionState // latest state answered by the active replica
}

// placement is an immutable snapshot of a session's replica layout, taken
// under cs.mu and then used lock-free by the hedging machinery.
type placement struct {
	primary, primarySID string
	standby, standbySID string
	inSync              bool
}

func (cs *csession) placementLocked() placement {
	return placement{
		primary: cs.primary, primarySID: cs.primarySID,
		standby: cs.standby, standbySID: cs.standbySID,
		inSync: cs.standby != "" && cs.standbyLink == len(cs.sources),
	}
}

// shardMetrics aggregates one shard's data-path telemetry at the router.
type shardMetrics struct {
	requests int64
	errs     int64
	hist     loadgen.Hist
}

// Router fronts the shard fleet. Create with New, serve via Serve or
// mount Handler on a test server.
type Router struct {
	cfg    Config
	shards []Shard
	byID   map[string]Shard
	// clients carries the primary data path per shard; quick carries a
	// fail-fast sibling for best-effort maintenance (standby catch-up,
	// stray-session closes) that must never stall the serving path.
	clients map[string]*client.Client
	quick   map[string]*client.Client
	health  *checker
	dedupe  *server.Deduper
	mux     *http.ServeMux
	http    *http.Server

	draining atomic.Bool

	mu       sync.Mutex
	sessions map[string]*csession
	nextID   int64

	jitterMu sync.Mutex
	jitter   *faults.Stream

	metricsMu sync.Mutex
	perShard  map[string]*shardMetrics

	opens, closes   atomic.Int64
	failovers       atomic.Int64 // failover attempts, however resolved
	handoffs        atomic.Int64 // failovers resolved by promoting the standby
	reopens         atomic.Int64 // failovers resolved by full source replay
	standbyRebuilds atomic.Int64
	hedges          atomic.Int64
	hedgeWins       atomic.Int64
	hedgedMutations atomic.Int64 // tripwire; must stay 0
	restarts        atomic.Int64 // shard incarnations detected via boot-id change
	dupOpens        atomic.Int64 // stray upstream sessions closed by reconcile
	panics          atomic.Int64
}

// New builds a router over the shard fleet.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: no shards configured")
	}
	seen := make(map[string]bool)
	for _, sh := range cfg.Shards {
		if sh.ID == "" || sh.Addr == "" || sh.Weight < 1 || seen[sh.ID] {
			return nil, fmt.Errorf("cluster: invalid shard %+v (use ParseShards)", sh)
		}
		seen[sh.ID] = true
	}
	rt := &Router{
		cfg:      cfg,
		shards:   slices.Clone(cfg.Shards),
		byID:     make(map[string]Shard),
		clients:  make(map[string]*client.Client),
		quick:    make(map[string]*client.Client),
		sessions: make(map[string]*csession),
		jitter:   faults.SubStream(cfg.Seed, 0x4ed6e), // hedge-delay stream
		perShard: make(map[string]*shardMetrics),
	}
	for _, sh := range rt.shards {
		rt.byID[sh.ID] = sh
		seed := cfg.Seed ^ int64(shardKeyHash(sh.ID, "client")>>1)
		rt.clients[sh.ID] = client.New(client.Config{
			BaseURL:     sh.Addr,
			Seed:        seed,
			MaxAttempts: cfg.ShardMaxAttempts,
			BaseDelay:   cfg.ShardBaseDelay,
			MaxDelay:    cfg.ShardMaxDelay,
			HTTPClient:  cfg.HTTPClient,
		})
		rt.quick[sh.ID] = client.New(client.Config{
			BaseURL:          sh.Addr,
			Seed:             seed ^ 0x71c,
			MaxAttempts:      3,
			BaseDelay:        2 * time.Millisecond,
			MaxDelay:         20 * time.Millisecond,
			BreakerThreshold: 1 << 30, // best-effort path: fail per call, never latch
			HTTPClient:       cfg.HTTPClient,
		})
		rt.perShard[sh.ID] = &shardMetrics{}
	}
	rt.health = newChecker(cfg.Health, rt.shards, rt.clients, cfg.Logf)
	rt.health.onEject = rt.onEject
	rt.health.onReadmit = rt.onReadmit
	rt.health.onRestart = rt.onRestart
	rt.dedupe = server.NewDeduper(cfg.DedupeWindow, cfg.Logf, func() { rt.panics.Add(1) })

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.withRecover(rt.handleHealthz))
	mux.HandleFunc("GET /v1/systems", rt.withRecover(rt.intake(rt.handleSystems)))
	mux.HandleFunc("GET /v1/stats", rt.withRecover(rt.handleStats))
	mux.HandleFunc("GET /v1/report", rt.withRecover(rt.handleReport))
	mux.HandleFunc("GET /v1/sessions", rt.withRecover(rt.intake(rt.handleList)))
	mux.HandleFunc("GET /v1/sessions/{id}", rt.withRecover(rt.intake(rt.handleGet)))
	mux.HandleFunc("POST /v1/sessions", rt.withRecover(rt.dedupe.Wrap(rt.intake(rt.handleOpen))))
	mux.HandleFunc("POST /v1/sessions/{id}/eval", rt.withRecover(rt.dedupe.Wrap(rt.intake(rt.handleEval))))
	mux.HandleFunc("POST /v1/sessions/{id}/announce", rt.withRecover(rt.dedupe.Wrap(rt.intake(rt.handleAnnounce))))
	mux.HandleFunc("DELETE /v1/sessions/{id}", rt.withRecover(rt.dedupe.Wrap(rt.intake(rt.handleClose))))
	mux.HandleFunc("POST /v1/reconcile", rt.withRecover(rt.intake(rt.handleReconcile)))
	rt.mux = mux
	rt.http = &http.Server{Handler: mux}
	return rt, nil
}

// Handler exposes the router's routes (for tests and custom servers).
func (rt *Router) Handler() http.Handler { return rt.mux }

// Serve accepts connections on l until Shutdown, with the health checker
// running for the router's lifetime.
func (rt *Router) Serve(l net.Listener) error {
	rt.health.start()
	err := rt.http.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// StartHealth starts the health checker without serving (tests drive the
// handler directly).
func (rt *Router) StartHealth() { rt.health.start() }

// Shutdown drains the router: new requests are refused with 503 and
// in-flight ones finish (bounded by ctx). Shard-side sessions are left
// alive — the shards own their persistence, and another router instance
// can adopt the fleet.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.draining.Store(true)
	rt.health.halt()
	return rt.http.Shutdown(ctx)
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}

// Middleware (mirrors internal/server's, at fleet scope).

func (rt *Router) withRecover(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				rt.panics.Add(1)
				rt.logf("panic serving %s %s: %v", r.Method, r.URL.Path, p)
				writeErr(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p))
			}
		}()
		h(w, r)
	}
}

func (rt *Router) intake(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if rt.draining.Load() {
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, "draining")
			return
		}
		h(w, r)
	}
}

// Placement.

// rank returns the routable shards for key, best rendezvous score first.
// Ejected shards score zero weight and are excluded entirely; ties break
// on shard ID so every router ranks identically.
func (rt *Router) rank(key string, exclude string) []Shard {
	type scored struct {
		sh    Shard
		score float64
	}
	ranked := make([]scored, 0, len(rt.shards))
	for _, sh := range rt.shards {
		if sh.ID == exclude {
			continue
		}
		w := rt.health.effectiveWeight(sh.ID, sh.Weight)
		if w <= 0 {
			continue
		}
		ranked = append(ranked, scored{sh, rendezvousScore(sh.ID, key, w)})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].sh.ID < ranked[j].sh.ID
	})
	out := make([]Shard, len(ranked))
	for i, s := range ranked {
		out[i] = s.sh
	}
	return out
}

// Metrics.

func (rt *Router) observe(shard string, t0 time.Time, err error) {
	d := time.Since(t0)
	rt.metricsMu.Lock()
	m := rt.perShard[shard]
	m.requests++
	if err != nil {
		m.errs++
	}
	m.hist.Observe(d)
	rt.metricsMu.Unlock()
}

// Session table.

func (rt *Router) lookup(id string) *csession {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.sessions[id]
}

// sessionList snapshots the table in stable (numeric id) order.
func (rt *Router) sessionList() []*csession {
	rt.mu.Lock()
	out := make([]*csession, 0, len(rt.sessions))
	for _, cs := range rt.sessions {
		out = append(out, cs)
	}
	rt.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		ni, _ := strconv.Atoi(out[i].id[1:])
		nj, _ := strconv.Atoi(out[j].id[1:])
		return ni < nj
	})
	return out
}

// hedgeDelay draws one seeded hedge threshold in [base/2, 3*base/2).
func (rt *Router) hedgeDelay() time.Duration {
	base := rt.cfg.HedgeAfter
	rt.jitterMu.Lock()
	defer rt.jitterMu.Unlock()
	return base/2 + time.Duration(rt.jitter.Intn(int(base)))
}

// hedged runs call against the primary replica and, when the request is
// read-only and the standby is in sync, races a second copy against the
// standby after a seeded latency threshold. First success wins and the
// loser's context is cancelled — which aborts its in-flight attempt and,
// server-side, stops the eval between formulas via EvalBatchCtx. Mutations
// must never take this path: the readOnly flag is a tripwire, not an
// option — passing false counts a hedged mutation and hedging is refused.
func hedged[T any](rt *Router, ctx context.Context, pl placement, readOnly bool,
	call func(context.Context, *client.Client, string) (T, error)) (T, error) {
	if !readOnly {
		// Launch guard: no current caller passes false. Any future code
		// that routes a mutation here trips the asserted-zero counter and
		// gets an unhedged call.
		rt.hedgedMutations.Add(1)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		out   T
		err   error
		hedge bool
		shard string
	}
	ch := make(chan result, 2)
	launch := func(shard, sid string, isHedge bool) {
		go func() {
			t0 := time.Now()
			out, err := call(ctx, rt.clients[shard], sid)
			rt.observe(shard, t0, err)
			ch <- result{out, err, isHedge, shard}
		}()
	}
	launch(pl.primary, pl.primarySID, false)
	inFlight := 1

	var hedgeC <-chan time.Time
	canHedge := readOnly && rt.cfg.HedgeAfter > 0 && pl.inSync &&
		pl.standby != "" && rt.health.usable(pl.standby)
	if canHedge {
		timer := time.NewTimer(rt.hedgeDelay())
		defer timer.Stop()
		hedgeC = timer.C
	}

	var firstErr error
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			rt.hedges.Add(1)
			launch(pl.standby, pl.standbySID, true)
			inFlight++
		case res := <-ch:
			inFlight--
			if res.err == nil {
				if res.hedge {
					rt.hedgeWins.Add(1)
				}
				cancel() // the loser stops burning its shard
				return res.out, nil
			}
			if firstErr == nil || !res.hedge {
				firstErr = res.err // the primary's error is the authoritative one
			}
			if inFlight == 0 && hedgeC == nil {
				var zero T
				return zero, firstErr
			}
			if inFlight == 0 {
				// Primary failed before the hedge timer; give the standby
				// its chance immediately rather than waiting out the timer.
				hedgeC = nil
				rt.hedges.Add(1)
				launch(pl.standby, pl.standbySID, true)
				inFlight++
			}
		}
	}
}

// readWithFailover performs a hedged read, failing the session over once
// if its primary turns out dead (transport exhaustion or a shard that no
// longer knows the session) and retrying on the new layout.
func readWithFailover[T any](rt *Router, ctx context.Context, cs *csession,
	call func(context.Context, *client.Client, string) (T, error)) (T, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		cs.mu.Lock()
		pl := cs.placementLocked()
		cs.mu.Unlock()
		out, err := hedged(rt, ctx, pl, true, call)
		if err == nil {
			return out, nil
		}
		lastErr = err
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.Status != http.StatusNotFound {
			return out, err // a definitive shard verdict passes through
		}
		cs.mu.Lock()
		ferr := rt.failoverLocked(cs, pl.primary)
		cs.mu.Unlock()
		if ferr != nil {
			var zero T
			return zero, lastErr
		}
	}
	var zero T
	return zero, lastErr
}

// Failover.

// failoverLocked moves cs off dead (cs.mu held). The in-sync standby is
// promoted in place when possible; otherwise the session is re-opened on
// the best surviving shard by replaying its persisted announcement
// sources — the announce-link CAS on the new shard absorbs any replayed
// duplicate, so the chain advances exactly once across the handoff. A
// fresh standby is rebuilt afterwards, best effort.
func (rt *Router) failoverLocked(cs *csession, dead string) error {
	if cs.primary != dead {
		return nil // a concurrent path already moved it
	}
	rt.failovers.Add(1)
	if cs.standby != "" && cs.standby != dead &&
		cs.standbyLink == len(cs.sources) && rt.health.usable(cs.standby) {
		oldSID := cs.primarySID
		cs.primary, cs.primarySID = cs.standby, cs.standbySID
		cs.standby, cs.standbySID, cs.standbyLink = "", "", -1
		rt.handoffs.Add(1)
		rt.logf("failover: %s handed off %s -> %s (standby at link %d)", cs.id, dead, cs.primary, len(cs.sources))
		_ = oldSID // the dead shard's copy is unreachable; reconcile reaps it if the shard returns
	} else {
		moved := false
		for _, sh := range rt.rank(cs.key, dead) {
			if sh.ID == cs.standby && cs.standbySID != "" {
				// Reuse of the stale standby's shard: drop its old copy
				// first so the replay cannot leave two copies behind.
				rt.quick[sh.ID].Close(cs.standbySID)
				cs.standby, cs.standbySID, cs.standbyLink = "", "", -1
			}
			sid, err := rt.replayOn(rt.clients[sh.ID], sh.ID, cs)
			if err != nil {
				rt.logf("failover: %s replay on %s failed: %v", cs.id, sh.ID, err)
				continue
			}
			cs.primary, cs.primarySID = sh.ID, sid
			rt.reopens.Add(1)
			rt.logf("failover: %s re-opened on %s by replaying %d sources", cs.id, sh.ID, len(cs.sources))
			moved = true
			break
		}
		if !moved {
			return fmt.Errorf("cluster: no healthy shard to fail %s over to", cs.id)
		}
		if cs.standby == dead || cs.standby == cs.primary {
			cs.standby, cs.standbySID, cs.standbyLink = "", "", -1
		}
	}
	rt.rebuildStandbyLocked(cs)
	return nil
}

// replayOn re-creates cs on a shard: open with the same system and seed,
// then replay every announcement source at its exact link. Each announce
// carries the CAS precondition, so a duplicated network (or a dedupe hit)
// cannot advance the rebuilt chain twice.
func (rt *Router) replayOn(c *client.Client, shard string, cs *csession) (string, error) {
	t0 := time.Now()
	st, err := c.Open(cs.sys, cs.seed)
	rt.observe(shard, t0, err)
	if err != nil {
		return "", err
	}
	for i, src := range cs.sources {
		t0 = time.Now()
		_, err := c.AnnounceAt(st.Session, src, i)
		rt.observe(shard, t0, err)
		if err != nil {
			rt.quick[shard].Close(st.Session) // best effort; reconcile reaps leftovers
			return "", fmt.Errorf("replay link %d: %w", i, err)
		}
	}
	return st.Session, nil
}

// rebuildStandbyLocked (cs.mu held) drops any stale standby and builds a
// fresh warm replica on the best shard that is neither the primary nor
// unhealthy. Best effort throughout — a session without a standby just
// loses hedging and fast handoff until the next rebuild opportunity.
func (rt *Router) rebuildStandbyLocked(cs *csession) {
	if cs.standby != "" && cs.standbyLink == len(cs.sources) && rt.health.usable(cs.standby) && cs.standby != cs.primary {
		return // current standby is fine
	}
	if cs.standby != "" && cs.standbySID != "" {
		rt.quick[cs.standby].Close(cs.standbySID)
	}
	cs.standby, cs.standbySID, cs.standbyLink = "", "", -1
	for _, sh := range rt.rank(cs.key, cs.primary) {
		sid, err := rt.replayOn(rt.quick[sh.ID], sh.ID, cs)
		if err != nil {
			rt.logf("standby: %s build on %s failed: %v", cs.id, sh.ID, err)
			continue
		}
		cs.standby, cs.standbySID, cs.standbyLink = sh.ID, sid, len(cs.sources)
		rt.standbyRebuilds.Add(1)
		return
	}
}

// catchUpStandbyLocked pushes the newest announcement (cs.mu held, source
// already appended) onto the standby, rebuilding it when it cannot be
// caught up in one step.
func (rt *Router) catchUpStandbyLocked(cs *csession) {
	if cs.standby == "" || !rt.health.usable(cs.standby) || cs.standbyLink != len(cs.sources)-1 {
		rt.rebuildStandbyLocked(cs)
		return
	}
	link := len(cs.sources) - 1
	src := cs.sources[link]
	t0 := time.Now()
	_, err := rt.quick[cs.standby].AnnounceAt(cs.standbySID, src, link)
	rt.observe(cs.standby, t0, err)
	if err != nil {
		rt.logf("standby: %s catch-up on %s failed: %v", cs.id, cs.standby, err)
		cs.standbyLink = -1
		rt.rebuildStandbyLocked(cs)
		return
	}
	cs.standbyLink = len(cs.sources)
}

// Health-checker callbacks.

// evacuate moves every session mapped to shard off it: primaries fail
// over to a ranked successor, standbys are rebuilt elsewhere. Idempotent —
// a session already moved by a concurrent failover is left alone.
func (rt *Router) evacuate(id, why string) {
	for _, cs := range rt.sessionList() {
		cs.mu.Lock()
		switch {
		case cs.primary == id:
			if err := rt.failoverLocked(cs, id); err != nil {
				rt.logf("%s: %s stranded: %v", why, cs.id, err)
			}
		case cs.standby == id:
			cs.standby, cs.standbySID, cs.standbyLink = "", "", -1
			rt.rebuildStandbyLocked(cs)
		}
		cs.mu.Unlock()
	}
}

func (rt *Router) onEject(id string) { rt.evacuate(id, "eject") }

// onRestart fires when a healthy probe reports a new boot id: the shard
// died and came back faster than FailAfter could notice, so every replica
// mapped there belongs to a dead incarnation. The boot-prefixed session
// ids guarantee the stale mappings 404 rather than alias; evacuating them
// eagerly means routed traffic never even pays that 404.
func (rt *Router) onRestart(id string) {
	rt.restarts.Add(1)
	rt.evacuate(id, "restart")
}

func (rt *Router) onReadmit(id string) {
	if n, err := rt.reconcile(id); err != nil {
		rt.logf("readmit: reconcile of %s failed: %v", id, err)
	} else if n > 0 {
		rt.logf("readmit: closed %d stray sessions on %s", n, id)
	}
}

// reconcile closes upstream sessions on shard that the router does not
// map as a primary or standby — the leftovers of failovers away from a
// partitioned-but-alive shard. The shard's session list is fetched FIRST
// and the valid set second: any session created concurrently is recorded
// in its csession (under cs.mu) before the creating call returns, so a
// listed session either shows up valid by the time we lock its csession
// or is genuinely stray. Returns how many strays were closed.
func (rt *Router) reconcile(shard string) (int, error) {
	states, err := rt.clients[shard].Sessions()
	if err != nil {
		return 0, err
	}
	valid := make(map[string]bool)
	for _, cs := range rt.sessionList() {
		cs.mu.Lock()
		if cs.primary == shard && cs.primarySID != "" {
			valid[cs.primarySID] = true
		}
		if cs.standby == shard && cs.standbySID != "" {
			valid[cs.standbySID] = true
		}
		cs.mu.Unlock()
	}
	closed := 0
	for _, st := range states {
		if valid[st.Session] {
			continue
		}
		rt.dupOpens.Add(1)
		rt.logf("reconcile: closing stray session %s (%s, link %d) on %s", st.Session, st.System, st.Link, shard)
		if err := rt.quick[shard].Close(st.Session); err == nil {
			closed++
		}
	}
	return closed, nil
}
