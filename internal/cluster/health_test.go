package cluster

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/simclock"
)

// TestHealthVirtualClock drives the checker's whole lifecycle — healthy,
// consecutive probe failures, ejection, a failed half-open probe restarting
// the cooldown, re-admission — from a simclock virtual clock with injected
// now, tick, and probe, and zero wall-clock sleeps (the same pattern as the
// server janitor's TestTTLEvictionVirtualClock). Each assertion point is an
// idempotent fixed point of sweep, so the barrier tick (which runs one more
// sweep) cannot perturb the state it certifies.
func TestHealthVirtualClock(t *testing.T) {
	clk := simclock.New(0)
	base := time.Unix(1700000000, 0)
	shards := []Shard{{"n1", "http://unreachable.invalid:1", 1}, {"n2", "http://unreachable.invalid:2", 2}}
	clients := map[string]*client.Client{
		"n1": client.New(client.Config{BaseURL: shards[0].Addr}),
		"n2": client.New(client.Config{BaseURL: shards[1].Addr}),
	}

	c := newChecker(HealthConfig{Every: time.Second, FailAfter: 3, ReadmitAfter: 5 * time.Second}, shards, clients, t.Logf)
	c.now = func() time.Time { return base.Add(time.Duration(clk.Now()) * time.Second) }
	tickc := make(chan time.Time) // unbuffered: sends rendezvous with the sweep loop
	c.tick = func(d time.Duration) (<-chan time.Time, func()) {
		if d != time.Second {
			t.Errorf("checker tick period %v, want cfg.Every", d)
		}
		return tickc, func() {}
	}
	var probeMu sync.Mutex
	failing := map[string]bool{}
	c.probe = func(addr string) (string, error) {
		probeMu.Lock()
		defer probeMu.Unlock()
		if failing[addr] {
			return "", errors.New("probe refused")
		}
		return "", nil
	}
	setFailing := func(addr string, down bool) {
		probeMu.Lock()
		failing[addr] = down
		probeMu.Unlock()
	}
	var cbMu sync.Mutex
	var ejects, readmits []string
	c.onEject = func(id string) { cbMu.Lock(); ejects = append(ejects, id); cbMu.Unlock() }
	c.onReadmit = func(id string) { cbMu.Lock(); readmits = append(readmits, id); cbMu.Unlock() }

	c.start()
	t.Cleanup(c.halt)
	// Each send hands the loop one sweep; because tickc is unbuffered, the
	// acceptance of send N+1 proves sweep N has finished. ticks(n) therefore
	// runs n sweeps and barriers on all but the last, so callers follow it
	// with one barrier tick before asserting.
	ticks := func(n int) {
		for i := 0; i < n; i++ {
			tickc <- time.Time{}
		}
	}

	// Both healthy: ok-probe sweeps are idempotent.
	ticks(2)
	if !c.usable("n1") || !c.usable("n2") {
		t.Fatal("healthy shards not usable")
	}
	if w := c.effectiveWeight("n2", 2); w != 2 {
		t.Fatalf("healthy effective weight %v, want 2", w)
	}

	// n2 starts failing probes: ejection lands exactly on the FailAfter'th
	// consecutive failure, and the post-ejection sweep (the barrier) is a
	// cooldown no-op.
	setFailing(shards[1].Addr, true)
	ticks(4)
	if c.usable("n2") {
		t.Fatal("n2 still usable after FailAfter consecutive probe failures")
	}
	if !c.usable("n1") {
		t.Fatal("n1 was ejected by n2's failures")
	}
	if w := c.effectiveWeight("n2", 2); w != 0 {
		t.Fatalf("ejected shard effective weight %v, want 0", w)
	}
	cbMu.Lock()
	if len(ejects) != 1 || ejects[0] != "n2" {
		t.Fatalf("eject callbacks %v, want [n2]", ejects)
	}
	cbMu.Unlock()

	// Cooldown elapsed but the half-open probe fails: the cooldown restarts
	// and the shard stays out. (The second tick is the barrier; with the
	// virtual clock frozen it is a cooldown no-op.)
	if err := clk.Advance(6); err != nil {
		t.Fatal(err)
	}
	ticks(2)
	if c.usable("n2") {
		t.Fatal("n2 re-admitted by a failed half-open probe")
	}
	cbMu.Lock()
	if len(readmits) != 0 {
		t.Fatalf("readmit callbacks %v, want none yet", readmits)
	}
	cbMu.Unlock()

	// Before the restarted cooldown elapses, even a healthy probe is not
	// admitted.
	setFailing(shards[1].Addr, false)
	if err := clk.Advance(3); err != nil {
		t.Fatal(err)
	}
	ticks(2)
	if c.usable("n2") {
		t.Fatal("n2 re-admitted before the restarted cooldown elapsed")
	}

	// Cooldown over, probe healthy: the half-open probe re-admits, and the
	// barrier sweep is an ordinary healthy no-op.
	if err := clk.Advance(3); err != nil {
		t.Fatal(err)
	}
	ticks(2)
	if !c.usable("n2") {
		t.Fatal("n2 not re-admitted by a healthy half-open probe after cooldown")
	}
	state, fails, _ := c.snapshot("n2")
	if state != "healthy" || fails != 0 {
		t.Fatalf("re-admitted snapshot: state %s fails %d", state, fails)
	}
	cbMu.Lock()
	if len(readmits) != 1 || readmits[0] != "n2" {
		t.Fatalf("readmit callbacks %v, want [n2]", readmits)
	}
	cbMu.Unlock()
}

// TestHealthShedPenalty: 429/503 sheds observed by a shard's data-path
// client decay into the checker's routing-weight penalty — the backpressure
// aggregation that steers new sessions away from a shedding shard.
func TestHealthShedPenalty(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"over capacity"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	shards := []Shard{{"n1", ts.URL, 4}}
	clients := map[string]*client.Client{"n1": client.New(client.Config{
		BaseURL: ts.URL, MaxAttempts: 3, BaseDelay: time.Microsecond, BreakerThreshold: 1 << 30,
	})}
	c := newChecker(HealthConfig{}, shards, clients, nil)
	c.probe = func(string) (string, error) { return "", nil } // healthz stays green; only load is shed

	c.sweep()
	if w := c.effectiveWeight("n1", 4); w != 4 {
		t.Fatalf("weight before sheds %v, want 4", w)
	}

	// Three shed responses (every attempt of one call answers 429).
	if _, err := clients["n1"].Open("muddy:2", 0); err == nil {
		t.Fatal("open against a 429 wall should fail")
	}
	c.sweep()
	w1 := c.effectiveWeight("n1", 4)
	if w1 >= 4 {
		t.Fatalf("weight after sheds %v, want damped below 4", w1)
	}
	if _, _, penalty := c.snapshot("n1"); penalty != 3 {
		t.Fatalf("penalty %v, want 3 (one shed per attempt)", penalty)
	}

	// No new sheds: the penalty halves each sweep and the weight recovers.
	c.sweep()
	w2 := c.effectiveWeight("n1", 4)
	if w2 <= w1 || w2 >= 4 {
		t.Fatalf("weight after decay %v, want in (%v, 4)", w2, w1)
	}
}
