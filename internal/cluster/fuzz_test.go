package cluster

import (
	"net/url"
	"reflect"
	"strings"
	"testing"
	"unicode"
)

// FuzzRouterConfig fuzzes the shard-list parser. Whatever the input, the
// parser must never panic; whatever it accepts must satisfy every invariant
// the router relies on (non-empty fleet, unique clean IDs, weights in
// range, bare absolute http(s) addresses) and survive a Format/Parse round
// trip unchanged — the canonical form is a fixed point.
func FuzzRouterConfig(f *testing.F) {
	for _, seed := range []string{
		"n1=http://127.0.0.1:7501",
		"n1=http://127.0.0.1:7501,n2*2=http://127.0.0.1:7502,n3=https://10.0.0.3:7503",
		" n1 = http://a:1 , n2*3 = https://b:2 ",
		"n1*0=http://a:1",
		"n1*1048577=http://a:1",
		"n1=http://a:1,n1=http://b:2",
		"n1=127.0.0.1:7501",
		"n1=http://user:pw@a:1",
		"n1=http://a:1/path",
		"n1=http://a:1?q=1#frag",
		"n1=http://a:1,",
		"=http://a:1",
		"n*1",
		"n1=http://a:1/",
		"n 1=http://a:1",
		"идентификатор=http://a:1",
		"n1=http://[::1]:7501",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		shards, err := ParseShards(spec)
		if err != nil {
			if shards != nil {
				t.Fatalf("error %v with non-nil shards %+v", err, shards)
			}
			return
		}
		if len(shards) == 0 {
			t.Fatalf("accepted %q as an empty fleet", spec)
		}
		seen := make(map[string]bool)
		for _, sh := range shards {
			if sh.ID == "" {
				t.Fatalf("accepted empty id in %q", spec)
			}
			if strings.ContainsRune(sh.ID, '*') || strings.IndexFunc(sh.ID, unicode.IsSpace) >= 0 ||
				strings.ContainsAny(sh.ID, ",=") {
				t.Fatalf("accepted unclean id %q in %q", sh.ID, spec)
			}
			if seen[sh.ID] {
				t.Fatalf("accepted duplicate id %q in %q", sh.ID, spec)
			}
			seen[sh.ID] = true
			if sh.Weight < 1 || sh.Weight > maxWeight {
				t.Fatalf("accepted weight %d in %q", sh.Weight, spec)
			}
			u, uerr := url.Parse(sh.Addr)
			if uerr != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" ||
				u.User != nil || u.Path != "" || u.RawQuery != "" || u.Fragment != "" {
				t.Fatalf("accepted non-bare address %q in %q", sh.Addr, spec)
			}
		}
		again, err := ParseShards(FormatShards(shards))
		if err != nil {
			t.Fatalf("canonical form of %q rejected: %v", spec, err)
		}
		if !reflect.DeepEqual(shards, again) {
			t.Fatalf("round trip moved %q: %+v -> %+v", spec, shards, again)
		}
	})
}
