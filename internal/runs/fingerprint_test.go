package runs

import "testing"

func TestFingerprintSeparatesRuns(t *testing.T) {
	base := func() *Run {
		r := NewRun("r", 2, 3)
		r.Init[0] = "go"
		r.Send(0, 1, 0, 1, "m")
		r.SetIdentityClock(0)
		return r
	}
	a := base()
	if got := base().Fingerprint(); got != a.Fingerprint() {
		t.Fatal("identical runs fingerprint differently")
	}
	renamed := base()
	renamed.Name = "other"
	if renamed.Fingerprint() != a.Fingerprint() {
		t.Fatal("Name must not enter the fingerprint")
	}
	for name, mutate := range map[string]func(*Run){
		"payload": func(r *Run) { r.Messages[0].Payload = "x" },
		"lost":    func(r *Run) { r.Messages[0].RecvTime = Lost },
		"init":    func(r *Run) { r.Init[1] = "z" },
		"wake":    func(r *Run) { r.Wake[1] = 1 },
		"meta":    func(r *Run) { r.Meta["k"] = 1 },
		"clock":   func(r *Run) { r.SetShiftedClock(0, 5) },
		"extra":   func(r *Run) { r.Send(1, 0, 1, 2, "m") },
	} {
		m := base()
		mutate(m)
		if m.Fingerprint() == a.Fingerprint() {
			t.Fatalf("%s change not reflected in fingerprint", name)
		}
	}
	// Length-prefixing keeps concatenation ambiguities apart.
	p := NewRun("p", 1, 0)
	p.Init[0] = "ab"
	q := NewRun("q", 1, 0)
	q.Init[0] = "a"
	q.Meta["b"] = 0
	if p.Fingerprint() == q.Fingerprint() {
		t.Fatal("distinct runs collide")
	}
}

func TestDedupeRunsKeepsFirstInOrder(t *testing.T) {
	r1 := NewRun("first", 1, 2)
	r2 := NewRun("dup-of-first", 1, 2)
	r3 := NewRun("distinct", 1, 2)
	r3.Init[0] = "x"
	out := DedupeRuns([]*Run{r1, r2, r3})
	if len(out) != 2 || out[0] != r1 || out[1] != r3 {
		names := make([]string, len(out))
		for i, r := range out {
			names[i] = r.Name
		}
		t.Fatalf("DedupeRuns kept %v, want [first distinct]", names)
	}
}
