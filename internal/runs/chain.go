package runs

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/kripke"
	"repro/internal/logic"
)

// Chain replays a sequence of public announcements on the epistemic
// structure of a point model. Each Announce evaluates its formula on the
// current view, restricts the model to the worlds where it holds, and —
// on the incremental path — threads the quotient block map and the
// memoized reachability components through the restriction, so every link
// of the chain pays a seeded re-refinement (kripke.Quotiented.Restrict /
// RestrictWithQuotient) instead of a from-scratch Minimize and union-find
// rebuild. The from-scratch path restricts with zero inheritance; the two
// are observationally identical, which chain_test pins.
//
// The chain works on the point model's epistemic view: announcement
// formulas (and queries) must be free of the run-based temporal operators,
// which do not survive restriction.
type Chain struct {
	view        *kripke.Quotiented
	minWorlds   int
	incremental bool
	marked      int // tracked world in the current model, -1 when unset/eliminated
}

// Chain starts an announcement chain on the point model's epistemic view.
// minWorlds is the QuotientForEval threshold applied at every link (<= 0
// means the kripke default); incremental selects the seeded path.
func (pm *PointModel) Chain(minWorlds int, incremental bool) *Chain {
	return &Chain{
		view:        pm.EpistemicQuotient(minWorlds),
		minWorlds:   minWorlds,
		incremental: incremental,
		marked:      -1,
	}
}

// Mark tracks a world (an actual point) through subsequent announcements;
// its index is updated by rank at every restriction. Holds evaluates at
// the marked world.
func (c *Chain) Mark(w int) { c.marked = w }

// Marked returns the tracked world's index in the current model, or -1 if
// no world is marked or an announcement eliminated it.
func (c *Chain) Marked() int { return c.marked }

// NumWorlds returns the world count of the current (restricted) model.
func (c *Chain) NumWorlds() int { return c.view.NumWorlds() }

// QuotientWorlds returns the world count of the model formulas currently
// evaluate on (equal to NumWorlds when the quotient gates kept the model).
func (c *Chain) QuotientWorlds() int { return c.view.QuotientWorlds() }

// Eval returns the denotation of f over the current model's worlds.
func (c *Chain) Eval(f logic.Formula) (*bitset.Set, error) {
	return c.view.Eval(f)
}

// EvalBatch evaluates a batch of formulas on the current link's model with
// the parallel fan-out of kripke.EvalBatch (verdicts mapped back through
// the quotient when one is active). A link's verdict batch — the
// alternating-knowledge tower plus the common-knowledge check of the
// delivery replay — is a set of independent queries against one shared
// link model, the batch shape the fan-out accelerates.
func (c *Chain) EvalBatch(fs []logic.Formula, opts ...kripke.BatchOption) ([]*bitset.Set, error) {
	return c.view.EvalBatch(fs, opts...)
}

// Holds reports whether f holds at the marked world of the current model.
func (c *Chain) Holds(f logic.Formula) (bool, error) {
	if c.marked < 0 {
		return false, fmt.Errorf("runs: no marked world (unset, or eliminated by an announcement)")
	}
	return c.view.Holds(f, c.marked)
}

// Announce publicly announces f: the model is restricted to the worlds
// where f holds, and the marked world is tracked through by rank.
func (c *Chain) Announce(f logic.Formula) error {
	keep, err := c.view.Eval(f)
	if err != nil {
		return err
	}
	if c.marked >= 0 {
		if keep.Contains(c.marked) {
			c.marked = keep.Rank(c.marked)
		} else {
			c.marked = -1
		}
	}
	if c.incremental {
		c.view = c.view.Restrict(keep, c.minWorlds)
	} else {
		c.view = c.view.Model().RestrictOpts(keep, kripke.RestrictOptions{}).QuotientForEval(c.minWorlds)
	}
	return nil
}
