package runs

import (
	"testing"

	"repro/internal/logic"
)

// chainSystem builds a small two-processor system with a delivered and an
// undelivered variant of the same message, plus an idle run.
func chainSystem(t *testing.T) *System {
	t.Helper()
	r1 := NewRun("ok", 2, 6)
	r1.Send(0, 1, 1, 2, "m")
	r2 := NewRun("lost", 2, 6)
	r2.SendLost(0, 1, 1, "m")
	r3 := NewRun("idle", 2, 6)
	sys, err := NewSystem(r1, r2, r3)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestChainAnnounceTracksMarkedWorld checks the chain bookkeeping: marked
// worlds follow restrictions by rank, eliminated marks error, and world
// counts shrink with each truthful announcement.
func TestChainAnnounceTracksMarkedWorld(t *testing.T) {
	sys := chainSystem(t)
	interp := Interpretation{"sent": StablyTrue(SentBy("m"))}
	pm := sys.Model(CompleteHistoryView, interp)

	ch := pm.Chain(1, true)
	w, err := pm.WorldOf("ok", 4)
	if err != nil {
		t.Fatal(err)
	}
	ch.Mark(w)
	before := ch.NumWorlds()
	if err := ch.Announce(logic.P("sent")); err != nil {
		t.Fatal(err)
	}
	if ch.NumWorlds() >= before {
		t.Fatalf("announcement did not shrink the model (%d -> %d)", before, ch.NumWorlds())
	}
	holds, err := ch.Holds(logic.K(1, logic.P("sent")))
	if err != nil {
		t.Fatal(err)
	}
	if !holds {
		t.Errorf("after announcing sent, the receiver does not know sent at the marked point")
	}
	// Announce something false at the marked point: the mark dies and
	// Holds reports it.
	if err := ch.Announce(logic.Neg(logic.P("sent"))); err != nil {
		t.Fatal(err)
	}
	if ch.Marked() != -1 {
		t.Fatalf("mark survived an announcement that excluded it")
	}
	if _, err := ch.Holds(logic.P("sent")); err == nil {
		t.Errorf("Holds on an eliminated mark did not error")
	}
}

// TestChainIncrementalMatchesScratch pins the seeded chain path to the
// from-scratch one over a short announcement chain.
func TestChainIncrementalMatchesScratch(t *testing.T) {
	sys := chainSystem(t)
	interp := Interpretation{"sent": StablyTrue(SentBy("m"))}
	announcements := []logic.Formula{
		logic.P("sent"),
		logic.K(1, logic.P("sent")),
	}
	queries := []logic.Formula{
		logic.P("sent"),
		logic.K(0, logic.P("sent")),
		logic.C(nil, logic.P("sent")),
	}

	inc := sys.Model(CompleteHistoryView, interp).Chain(1, true)
	scr := sys.Model(CompleteHistoryView, interp).Chain(1, false)
	for _, a := range announcements {
		if err := inc.Announce(a); err != nil {
			t.Fatal(err)
		}
		if err := scr.Announce(a); err != nil {
			t.Fatal(err)
		}
		if inc.NumWorlds() != scr.NumWorlds() {
			t.Fatalf("after %s: incremental has %d worlds, from-scratch %d",
				a, inc.NumWorlds(), scr.NumWorlds())
		}
		for _, q := range queries {
			got, err := inc.Eval(q)
			if err != nil {
				t.Fatalf("eval %s incremental: %v", q, err)
			}
			want, err := scr.Eval(q)
			if err != nil {
				t.Fatalf("eval %s from-scratch: %v", q, err)
			}
			if !got.Equal(want) {
				t.Fatalf("after %s: Eval(%s) diverged: %s vs %s", a, q, got, want)
			}
		}
	}
}

// TestChainRejectsTemporalFormulas pins the epistemic-view contract: the
// run-based operators do not survive restriction, so a chain must refuse
// them instead of answering from a broken structure.
func TestChainRejectsTemporalFormulas(t *testing.T) {
	sys := chainSystem(t)
	interp := Interpretation{"sent": StablyTrue(SentBy("m"))}
	ch := sys.Model(CompleteHistoryView, interp).Chain(1, true)
	if err := ch.Announce(logic.Ev(logic.P("sent"))); err == nil {
		t.Fatal("announcing a temporal formula on a chain did not error")
	}
}
