package runs

import (
	"fmt"
	"testing"

	"repro/internal/logic"
)

func TestHistoryWithoutClockIgnoresTime(t *testing.T) {
	r := NewRun("r", 2, 10)
	r.Init[0] = "a"
	// No events, no clocks: every point after wake-up looks the same.
	h0 := r.History(0, 0)
	h5 := r.History(0, 5)
	if h0 != h5 {
		t.Errorf("silent clockless histories differ: %q vs %q", h0, h5)
	}
}

func TestHistoryWithClockTracksTime(t *testing.T) {
	r := NewRun("r", 2, 10)
	r.SetIdentityClock(0)
	if r.History(0, 0) == r.History(0, 5) {
		t.Error("clock readings should distinguish silent points")
	}
}

func TestHistoryBeforeWake(t *testing.T) {
	r := NewRun("r", 1, 5)
	r.Wake[0] = 3
	if got := r.History(0, 2); got != "asleep" {
		t.Errorf("history before wake = %q", got)
	}
	if r.History(0, 3) == "asleep" {
		t.Error("history at wake time should not be asleep")
	}
}

func TestHistoryObservesMessagesInOrder(t *testing.T) {
	r := NewRun("r", 2, 10)
	r.Send(0, 1, 2, 3, "x")
	r.Send(1, 0, 4, 6, "y")
	// p0 sends x at 2 and receives y at 6.
	h5 := r.History(0, 5) // only the send visible
	h7 := r.History(0, 7) // send and receive visible
	if h5 == h7 {
		t.Error("receiving a message should change the history")
	}
	// events strictly before t: at t=2 the send at 2 is not yet in history.
	if r.History(0, 2) != r.History(0, 0) {
		t.Error("history at t should exclude events at t")
	}
	if r.History(0, 3) == r.History(0, 0) {
		t.Error("history should include events before t")
	}
}

func TestHistoryLostMessageInvisibleToReceiver(t *testing.T) {
	r1 := NewRun("r1", 2, 5)
	r1.SendLost(0, 1, 1, "m")
	r2 := NewRun("r2", 2, 5)
	if r1.History(1, 5) != r2.History(1, 5) {
		t.Error("receiver should not observe a lost message")
	}
	if r1.History(0, 5) == r2.History(0, 5) {
		t.Error("sender observes its own send even if the message is lost")
	}
}

func TestClockValidation(t *testing.T) {
	r := NewRun("r", 1, 3)
	if err := r.SetClock(0, []int{0, 1}); err == nil {
		t.Error("wrong-length clock accepted")
	}
	if err := r.SetClock(0, []int{0, 2, 1, 3}); err == nil {
		t.Error("decreasing clock accepted")
	}
	if err := r.SetClock(0, []int{0, 0, 2, 2}); err != nil {
		t.Errorf("valid monotone clock rejected: %v", err)
	}
	if v, ok := r.ClockReading(0, 2); !ok || v != 2 {
		t.Errorf("ClockReading = %d, %v", v, ok)
	}
}

func TestSystemValidation(t *testing.T) {
	a := NewRun("a", 2, 5)
	b := NewRun("b", 3, 5)
	if _, err := NewSystem(a, b); err == nil {
		t.Error("mismatched processor counts accepted")
	}
	c := NewRun("c", 2, 6)
	if _, err := NewSystem(a, c); err == nil {
		t.Error("mismatched horizons accepted")
	}
	if _, err := NewSystem(); err == nil {
		t.Error("empty system accepted")
	}
	s, err := NewSystem(a, NewRun("d", 2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPoints() != 12 {
		t.Errorf("NumPoints = %d, want 12", s.NumPoints())
	}
	if _, ok := s.RunByName("d"); !ok {
		t.Error("RunByName failed")
	}
}

// messageSystem builds a two-run system: in "ok" p0 sends m at 1, delivered
// at 2; in "lost" the message is lost. Complete-history views, no clocks.
func messageSystem(t *testing.T) (*System, *PointModel) {
	t.Helper()
	ok := NewRun("ok", 2, 5)
	ok.Send(0, 1, 1, 2, "m")
	lost := NewRun("lost", 2, 5)
	lost.SendLost(0, 1, 1, "m")
	sys := MustSystem(ok, lost)
	interp := Interpretation{
		"sent":  StablyTrue(SentBy("m")),
		"recvd": StablyTrue(ReceivedBy("m")),
	}
	return sys, sys.Model(CompleteHistoryView, interp)
}

func TestPointModelBasicKnowledge(t *testing.T) {
	_, pm := messageSystem(t)

	// After delivery, p1 knows sent.
	ok, err := pm.HoldsAt(logic.MustParse("K1 sent"), "ok", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("p1 should know sent after receiving m")
	}
	// Before delivery, p1 does not know sent.
	ok, _ = pm.HoldsAt(logic.MustParse("K1 sent"), "ok", 1)
	if ok {
		t.Error("p1 should not know sent before receiving m")
	}
	// The sender knows sent right after sending.
	ok, _ = pm.HoldsAt(logic.MustParse("K0 sent"), "ok", 2)
	if !ok {
		t.Error("p0 should know sent after sending")
	}
	// But p0 never knows that p1 knows (delivery is uncertain).
	ok, _ = pm.HoldsAt(logic.MustParse("K0 K1 sent"), "ok", 5)
	if ok {
		t.Error("p0 cannot know K1 sent when the message may be lost")
	}
	// And C sent holds nowhere.
	set, err := pm.Eval(logic.MustParse("C sent"))
	if err != nil {
		t.Fatal(err)
	}
	if !set.IsEmpty() {
		t.Errorf("C sent should be unattainable, holds at %s", set)
	}
}

func TestEventuallyAlways(t *testing.T) {
	_, pm := messageSystem(t)
	// <> recvd holds at every point of "ok" (delivery at 2), nowhere in "lost".
	set, err := pm.Eval(logic.MustParse("<> recvd"))
	if err != nil {
		t.Fatal(err)
	}
	for tt := Time(0); tt <= 5; tt++ {
		w, _ := pm.WorldOf("ok", tt)
		if !set.Contains(w) {
			t.Errorf("<> recvd should hold at (ok, %d)", tt)
		}
		w, _ = pm.WorldOf("lost", tt)
		if set.Contains(w) {
			t.Errorf("<> recvd should fail at (lost, %d)", tt)
		}
	}
	// [] sent holds at (ok, t) from t=1 on (sent is stable).
	alw, err := pm.Eval(logic.MustParse("[] sent"))
	if err != nil {
		t.Fatal(err)
	}
	w, _ := pm.WorldOf("ok", 0)
	if alw.Contains(w) {
		t.Error("[] sent should fail at (ok, 0): sent is false at time 0... ")
	}
	w, _ = pm.WorldOf("ok", 1)
	if !alw.Contains(w) {
		t.Error("[] sent should hold at (ok, 1)")
	}
}

func TestEventualCommonKnowledgeOnReliableBroadcast(t *testing.T) {
	// One-run system (delivery guaranteed): when p1 receives m it is
	// eventual common knowledge that m was sent — Section 11.
	ok := NewRun("ok", 2, 5)
	ok.Send(0, 1, 1, 2, "m")
	sys := MustSystem(ok)
	pm := sys.Model(CompleteHistoryView, Interpretation{
		"sent": StablyTrue(SentBy("m")),
	})
	set, err := pm.Eval(logic.MustParse("Cv sent"))
	if err != nil {
		t.Fatal(err)
	}
	// C^⋄ is a run-uniform notion here: the single run delivers, so every
	// agent eventually knows sent, eventually knows everyone knows, etc.
	if !set.IsFull() {
		t.Errorf("Cv sent should hold throughout the reliable run, got %s", set)
	}

	// In the two-run (lossy) system it must fail everywhere: in the lost
	// run p1 never knows sent, and the sender cannot distinguish the runs.
	_, pm2 := messageSystem(t)
	set2, err := pm2.Eval(logic.MustParse("Cv sent"))
	if err != nil {
		t.Fatal(err)
	}
	if !set2.IsEmpty() {
		t.Errorf("Cv sent should fail in the lossy system, holds at %s", set2)
	}
}

// r2d2Chain builds the Section 8 R2–D2 system with spread ε = 1: for each
// send time i in [0, m), run "r<i>" delivers immediately and run "s<i>"
// delivers one tick later. Both processors have identity clocks and the
// payload carries no timestamp, so R cannot distinguish r_i from s_i, and D
// cannot distinguish r_i from s_{i-1} — the paper's indistinguishability
// chain. The horizon leaves room for every delivery to be observed.
func r2d2Chain(m int, horizon Time) *System {
	rs := make([]*Run, 0, 2*m)
	for i := 0; i < m; i++ {
		r := NewRun(fmt.Sprintf("r%d", i), 2, horizon)
		r.SetIdentityClock(0)
		r.SetIdentityClock(1)
		r.Send(0, 1, Time(i), Time(i), "m")
		s := NewRun(fmt.Sprintf("s%d", i), 2, horizon)
		s.SetIdentityClock(0)
		s.SetIdentityClock(1)
		s.Send(0, 1, Time(i), Time(i+1), "m")
		rs = append(rs, r, s)
	}
	return MustSystem(rs...)
}

func TestEpsCommonKnowledgeOnR2D2Chain(t *testing.T) {
	// On the R2–D2 chain, plain common knowledge of sent(m) is
	// unattainable (while send times remain uncertain), but ε-common
	// knowledge holds as soon as the message is sent — the Section 11
	// claim for broadcast channels with spread ε and L = 0.
	sys := r2d2Chain(5, 8)
	pm := sys.Model(CompleteHistoryView, Interpretation{
		"sent": StablyTrue(SentBy("m")),
	})

	c, err := pm.Eval(logic.MustParse("C sent"))
	if err != nil {
		t.Fatal(err)
	}
	ce, err := pm.Eval(logic.MustParse("Ce[1] sent"))
	if err != nil {
		t.Fatal(err)
	}
	// At (r0, 1): the message has been sent and delivered, yet C sent
	// fails (the chain reaches runs where m is not yet sent), while
	// Ce[1] sent holds.
	w, _ := pm.WorldOf("r0", 1)
	if c.Contains(w) {
		t.Error("C sent should fail at (r0, 1): send times are uncertain")
	}
	if !ce.Contains(w) {
		t.Error("Ce[1] sent should hold at (r0, 1)")
	}
	// C sent fails at every point with t below the largest send time.
	for ri, r := range sys.Runs {
		for tt := Time(0); tt < 4; tt++ {
			if c.Contains(pm.World(ri, tt)) {
				t.Errorf("C sent holds at (%s, %d); should be unattainable", r.Name, tt)
			}
		}
	}
	// Ce[1] sent holds in run r_i from the send time on (forward-looking
	// interval), and in s_i from one tick after the send.
	for i := 0; i < 4; i++ {
		w, _ := pm.WorldOf(fmt.Sprintf("r%d", i), Time(i))
		if !ce.Contains(w) {
			t.Errorf("Ce[1] sent should hold at (r%d, %d)", i, i)
		}
		w, _ = pm.WorldOf(fmt.Sprintf("s%d", i), Time(i+1))
		if !ce.Contains(w) {
			t.Errorf("Ce[1] sent should hold at (s%d, %d)", i, i+1)
		}
	}
	// Hierarchy of Section 11: C ⊆ Ce[1] ⊆ Ce[2] ⊆ Cv.
	ce2, err := pm.Eval(logic.MustParse("Ce[2] sent"))
	if err != nil {
		t.Fatal(err)
	}
	cv, err := pm.Eval(logic.MustParse("Cv sent"))
	if err != nil {
		t.Fatal(err)
	}
	if !c.SubsetOf(ce) || !ce.SubsetOf(ce2) || !ce2.SubsetOf(cv) {
		t.Error("temporal common knowledge hierarchy violated")
	}
}

func TestR2D2KnowledgeLadder(t *testing.T) {
	// The quantitative heart of the Section 8 example: each level of
	// "R knows that D knows that ..." costs one ε. In run s0 (send at 0,
	// delivery at 1), (K_R K_D)^k sent first holds at time k+1.
	sys := r2d2Chain(6, 9)
	pm := sys.Model(CompleteHistoryView, Interpretation{
		"sent": StablyTrue(SentBy("m")),
	})
	phi := logic.P("sent")
	for k := 1; k <= 4; k++ {
		phi = logic.K(0, logic.K(1, phi)) // K_R K_D applied k times
		set, err := pm.Eval(phi)
		if err != nil {
			t.Fatal(err)
		}
		first := Time(-1)
		for tt := Time(0); tt <= sys.Horizon; tt++ {
			w, _ := pm.WorldOf("s0", tt)
			if set.Contains(w) {
				first = tt
				break
			}
		}
		want := Time(k + 1)
		if first != want {
			t.Errorf("(K_R K_D)^%d sent first holds at t=%d in s0, want %d", k, first, want)
		}
	}
}

func TestTimestampedCommonKnowledge(t *testing.T) {
	// The timestamped message m' of Section 12: "this message is being
	// sent at time tS = 2 and will reach you by T0 on both clocks". With
	// identity (global) clocks and delivery taking 0 or 1 ticks, receipt
	// is observed in the history by t = 4, so with T0 = 4 the fact
	// sent(m') is timestamped common knowledge with timestamp T0. A third
	// run in which m' is never sent keeps the fact informative.
	r0 := NewRun("recv_now", 2, 6)
	r0.Send(0, 1, 2, 2, "m@2") // timestamped payload
	r1 := NewRun("recv_later", 2, 6)
	r1.Send(0, 1, 2, 3, "m@2")
	never := NewRun("never", 2, 6)
	for _, r := range []*Run{r0, r1, never} {
		r.SetIdentityClock(0)
		r.SetIdentityClock(1)
	}
	sys := MustSystem(r0, r1, never)
	pm := sys.Model(CompleteHistoryView, Interpretation{
		"sent": StablyTrue(SentBy("m@2")),
	})

	ct, err := pm.Eval(logic.MustParse("Ct[4] sent"))
	if err != nil {
		t.Fatal(err)
	}
	for tt := Time(0); tt <= 6; tt++ {
		for _, name := range []string{"recv_now", "recv_later"} {
			w, _ := pm.WorldOf(name, tt)
			if !ct.Contains(w) {
				t.Errorf("Ct[4] sent should hold at (%s, %d)", name, tt)
			}
		}
		w, _ := pm.WorldOf("never", tt)
		if ct.Contains(w) {
			t.Errorf("Ct[4] sent should fail at (never, %d)", tt)
		}
	}
	// At clock time 3 the receiver of recv_later has not yet observed the
	// delivery, so Ct[3] fails everywhere.
	ct3, err := pm.Eval(logic.MustParse("Ct[3] sent"))
	if err != nil {
		t.Fatal(err)
	}
	if !ct3.IsEmpty() {
		t.Errorf("Ct[3] sent should fail, got %s", ct3)
	}
	// Theorem 12(a): with identical clocks, C^T coincides with plain C at
	// time T on the clock. C sent holds at the message runs from t=4 on,
	// and not at t=3.
	c, err := pm.Eval(logic.MustParse("C sent"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"recv_now", "recv_later"} {
		w, _ := pm.WorldOf(name, 4)
		if !c.Contains(w) {
			t.Errorf("C sent should hold at (%s, 4)", name)
		}
		w, _ = pm.WorldOf(name, 3)
		if c.Contains(w) {
			t.Errorf("C sent should not hold at (%s, 3)", name)
		}
	}
}

func TestObliviousViewCollapsesSystem(t *testing.T) {
	okRun := NewRun("ok", 2, 3)
	okRun.Send(0, 1, 1, 2, "m")
	lost := NewRun("lost", 2, 3)
	lost.SendLost(0, 1, 1, "m")
	sys := MustSystem(okRun, lost)
	pm := sys.Model(ObliviousView, Interpretation{
		"sent": StablyTrue(SentBy("m")),
		"taut": func(*Run, Time) bool { return true },
	})
	// Everything valid is common knowledge; nothing else is known.
	c, err := pm.Eval(logic.MustParse("C taut"))
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsFull() {
		t.Error("valid facts should be common knowledge under the oblivious view")
	}
	k, _ := pm.Eval(logic.MustParse("K0 sent"))
	if !k.IsEmpty() {
		t.Error("nothing contingent should be known under the oblivious view")
	}
}

func TestGReachable(t *testing.T) {
	_, pm := messageSystem(t)
	// (ok, 0) and (lost, 0) are indistinguishable to everyone (no events
	// yet), hence mutually reachable.
	ok, err := pm.GReachable(nil, 0, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("(ok,0) and (lost,0) should be G-reachable")
	}
}

func TestLemma3(t *testing.T) {
	// Lemma 3: C_G is constant across points where some member of G has
	// the same view. Verified on both the lossy message system and the
	// R2-D2 chain.
	_, pm := messageSystem(t)
	family := []logic.Formula{
		logic.P("sent"), logic.P("recvd"), logic.Neg(logic.P("sent")), logic.True,
	}
	if err := pm.CheckLemma3(nil, family); err != nil {
		t.Error(err)
	}
	if err := pm.CheckLemma3(logic.NewGroup(0, 1), family); err != nil {
		t.Error(err)
	}
	chain := r2d2Chain(4, 7)
	cpm := chain.Model(CompleteHistoryView, Interpretation{
		"sent": StablyTrue(SentBy("m")),
	})
	if err := cpm.CheckLemma3(nil, []logic.Formula{logic.P("sent")}); err != nil {
		t.Error(err)
	}
}

func TestMetaCloneIndependence(t *testing.T) {
	r := NewRun("r", 2, 4)
	r.Meta["attack"] = 3
	r.Send(0, 1, 0, 1, "m")
	r.SetIdentityClock(0)
	c := r.Clone()
	c.Meta["attack"] = 9
	c.Send(1, 0, 2, 3, "ack")
	if r.Meta["attack"] != 3 {
		t.Error("Clone shares Meta")
	}
	if len(r.Messages) != 1 {
		t.Error("Clone shares Messages")
	}
	if !c.HasClock(0) {
		t.Error("Clone lost clocks")
	}
}

func TestEpsKnowledgeIntervalSemantics(t *testing.T) {
	// Two runs: in "yes" processor 2 holds bit 1 and informs p0 (received
	// at 2) and p1 (received at 4); in "no" it holds bit 0 and stays
	// silent. fact = "p2's bit is 1". With identity clocks, p0 learns fact
	// at t=3 (the receive at 2 enters its history at 3) and p1 at t=5.
	//
	// E^ε for ε=2 over {0,1} requires an interval [t', t'+2] containing
	// the current time in which both know fact at some point: the earliest
	// is [3,5], so Ee[2]{0,1} fact holds in "yes" exactly from t=3, and
	// nowhere in "no" (fact is false there).
	yes := NewRun("yes", 3, 8)
	yes.Init[2] = "1"
	no := NewRun("no", 3, 8)
	no.Init[2] = "0"
	for _, r := range []*Run{yes, no} {
		for p := 0; p < 3; p++ {
			r.SetIdentityClock(p)
		}
	}
	yes.Send(2, 0, 1, 2, "f")
	yes.Send(2, 1, 3, 4, "f")
	sys := MustSystem(yes, no)
	pm := sys.Model(CompleteHistoryView, Interpretation{
		"fact": func(r *Run, _ Time) bool { return r.Init[2] == "1" },
	})

	k0, err := pm.Eval(logic.MustParse("K0 fact"))
	if err != nil {
		t.Fatal(err)
	}
	for tt := Time(0); tt <= 8; tt++ {
		w, _ := pm.WorldOf("yes", tt)
		if got, want := k0.Contains(w), tt >= 3; got != want {
			t.Errorf("K0 fact at (yes,%d) = %v, want %v", tt, got, want)
		}
	}

	ee, err := pm.Eval(logic.MustParse("Ee[2]{0,1} fact"))
	if err != nil {
		t.Fatal(err)
	}
	for tt := Time(0); tt <= 8; tt++ {
		w, _ := pm.WorldOf("yes", tt)
		if got, want := ee.Contains(w), tt >= 3; got != want {
			t.Errorf("Ee[2] fact at (yes,%d) = %v, want %v", tt, got, want)
		}
		w, _ = pm.WorldOf("no", tt)
		if ee.Contains(w) {
			t.Errorf("Ee[2] fact should fail at (no,%d)", tt)
		}
	}

	// K2 fact holds everywhere in "yes": p2 sees its own bit.
	k2, err := pm.Eval(logic.MustParse("K2 fact"))
	if err != nil {
		t.Fatal(err)
	}
	w, _ := pm.WorldOf("yes", 0)
	if !k2.Contains(w) {
		t.Error("p2 should know its own bit at time 0")
	}
}
