package runs

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/kripke"
	"repro/internal/logic"
)

// PointModel is the Kripke model induced by a system under a view function
// and an interpretation: worlds are the points (r, t) of the system, agent
// partitions are determined by equal views, and ground facts by π. It
// additionally implements the temporal semantics of Sections 11–12 over the
// run/time structure of its worlds.
type PointModel struct {
	*kripke.Model
	Sys  *System
	View ViewFunc
}

var _ kripke.TemporalSemantics = (*PointModel)(nil)

// Model builds the point model of the system under the given view function
// and interpretation. Construction is columnar: each interpretation fact is
// written into its valuation column in one pass, and each agent's view
// partition is derived by interning the view keys of all points in a single
// sweep — one hash probe per point, no union-find — so systems rebuilt in
// tight experiment loops pay close to the minimum possible construction
// cost.
func (s *System) Model(view ViewFunc, interp Interpretation) *PointModel {
	span := int(s.Horizon) + 1
	b := kripke.NewBuilder(len(s.Runs)*span, s.N)

	for ri, r := range s.Runs {
		for t := 0; t < span; t++ {
			b.SetName(ri*span+t, fmt.Sprintf("(%s,%d)", r.Name, t))
		}
	}
	for prop, fn := range interp {
		col := b.Column(prop)
		for ri, r := range s.Runs {
			for t := Time(0); t <= s.Horizon; t++ {
				if fn(r, t) {
					col.Add(ri*span + int(t))
				}
			}
		}
	}

	// Partition points by view, per agent.
	for p := 0; p < s.N; p++ {
		b.PartitionFromKeys(p, func(w int) string {
			return view(s.Runs[w/span], p, Time(w%span))
		})
	}

	m := b.Build()
	pm := &PointModel{Model: m, Sys: s, View: view}
	m.Temporal = pm
	return pm
}

// EpistemicQuotient returns a quotient-before-eval view of the point model
// for formula batches free of the run-based operators: the batch evaluates
// on the bisimulation quotient when that shrinks the model (silent run
// tails and permuted histories collapse), with verdicts mapped back to the
// original points. minWorlds <= 0 applies the kripke default threshold.
// Temporal operators error out on the view — minimization does not
// preserve run/time structure — so batches using them must stay on the
// PointModel itself.
func (pm *PointModel) EpistemicQuotient(minWorlds int) *kripke.Quotiented {
	return pm.Model.QuotientForEvalEpistemic(minWorlds)
}

// World returns the world index of the point (run ri, time t).
func (pm *PointModel) World(ri int, t Time) int {
	return ri*(int(pm.Sys.Horizon)+1) + int(t)
}

// Point returns the (run index, time) of a world.
func (pm *PointModel) Point(w int) (int, Time) {
	span := int(pm.Sys.Horizon) + 1
	return w / span, Time(w % span)
}

// WorldOf returns the world index of the point (named run, time t).
func (pm *PointModel) WorldOf(runName string, t Time) (int, error) {
	for ri, r := range pm.Sys.Runs {
		if r.Name == runName {
			return pm.World(ri, t), nil
		}
	}
	return 0, fmt.Errorf("runs: no run named %q", runName)
}

// HoldsAt reports whether f holds at the point (named run, time t).
func (pm *PointModel) HoldsAt(f logic.Formula, runName string, t Time) (bool, error) {
	w, err := pm.WorldOf(runName, t)
	if err != nil {
		return false, err
	}
	return pm.Holds(f, w)
}

// clockReading returns the effective clock reading of processor p at (ri, t):
// the run's clock if it has one, and real time otherwise (a system without
// clocks but with an external timestamped operator E^T reads real time).
func (pm *PointModel) clockReading(ri, p int, t Time) (int, bool) {
	r := pm.Sys.Runs[ri]
	if r.HasClock(p) {
		return r.ClockReading(p, t)
	}
	if t < r.Wake[p] {
		return 0, false
	}
	return int(t), true
}

// EvalTemporal implements kripke.TemporalSemantics for the run-based
// operators. rec evaluates subformulas in the current environment.
func (pm *PointModel) EvalTemporal(m *kripke.Model, f logic.Formula, rec func(logic.Formula) (*bitset.Set, error)) (*bitset.Set, error) {
	switch n := f.(type) {
	case logic.Eventually:
		s, err := rec(n.F)
		if err != nil {
			return nil, err
		}
		return pm.suffixScan(s, false), nil

	case logic.Always:
		s, err := rec(n.F)
		if err != nil {
			return nil, err
		}
		return pm.suffixScan(s, true), nil

	case logic.EveryEps:
		agents, err := m.GroupAgents(n.G)
		if err != nil {
			return nil, err
		}
		s, err := rec(n.F)
		if err != nil {
			return nil, err
		}
		return pm.everyEpsSet(agents, n.Eps, s), nil

	case logic.CommonEps:
		agents, err := m.GroupAgents(n.G)
		if err != nil {
			return nil, err
		}
		s, err := rec(n.F)
		if err != nil {
			return nil, err
		}
		return pm.gfp(s, func(x *bitset.Set) *bitset.Set {
			return pm.everyEpsSet(agents, n.Eps, x)
		})

	case logic.EveryEv:
		agents, err := m.GroupAgents(n.G)
		if err != nil {
			return nil, err
		}
		s, err := rec(n.F)
		if err != nil {
			return nil, err
		}
		return pm.everyEvSet(agents, s), nil

	case logic.CommonEv:
		agents, err := m.GroupAgents(n.G)
		if err != nil {
			return nil, err
		}
		s, err := rec(n.F)
		if err != nil {
			return nil, err
		}
		return pm.gfp(s, func(x *bitset.Set) *bitset.Set {
			return pm.everyEvSet(agents, x)
		})

	case logic.EveryTime:
		agents, err := m.GroupAgents(n.G)
		if err != nil {
			return nil, err
		}
		s, err := rec(n.F)
		if err != nil {
			return nil, err
		}
		return pm.everyTimeSet(agents, n.T, s), nil

	case logic.CommonTime:
		agents, err := m.GroupAgents(n.G)
		if err != nil {
			return nil, err
		}
		s, err := rec(n.F)
		if err != nil {
			return nil, err
		}
		return pm.gfp(s, func(x *bitset.Set) *bitset.Set {
			return pm.everyTimeSet(agents, n.T, x)
		})

	default:
		return nil, fmt.Errorf("runs: unsupported temporal formula %T", f)
	}
}

// gfp computes the greatest fixed point of X ↦ step(phi ∧ X), the shape
// shared by C^ε, C^⋄ and C^T (Sections 11–12 and Appendix A). This is the
// temporal sibling of the kripke worklist shape check νX.op_G(φ ∧ X): the
// timeline steps have no support form to iterate incrementally (their
// "support" is the per-run suffix structure), but the invariant parts of
// the loop are hoisted all the same — the conjunction φ ∧ X runs in a
// reused scratch set instead of allocating per iteration, and the
// know-timelines behind step are memoized on the step's input: step is a
// pure function of φ ∧ X, so when that set repeats — always the case on
// the convergence-confirming iteration, since X_{k+1} = step(φ ∧ X_k) —
// the previous output is the fixed point and the whole per-agent
// know-timeline recomputation is skipped.
func (pm *PointModel) gfp(phi *bitset.Set, step func(*bitset.Set) *bitset.Set) (*bitset.Set, error) {
	W := pm.NumWorlds()
	cur := bitset.NewFull(W)
	x := bitset.New(W)    // reused scratch for φ ∧ X
	prev := bitset.New(W) // step input of the previous iteration
	for i := 0; i <= W+1; i++ {
		x.Copy(phi)
		x.And(cur)
		if i > 0 && x.Equal(prev) {
			// step(x) would recompute the previous iteration's output,
			// which is cur: the fixed point is confirmed without another
			// pass over the know-timelines.
			return cur, nil
		}
		prev.Copy(x)
		next := step(x)
		if next.Equal(cur) {
			return cur, nil
		}
		cur = next
	}
	return nil, fmt.Errorf("runs: temporal fixed point did not converge")
}

// suffixScan computes ◇φ (conj=false) or □φ (conj=true) by scanning each
// run backwards.
func (pm *PointModel) suffixScan(phi *bitset.Set, conj bool) *bitset.Set {
	out := bitset.New(pm.NumWorlds())
	span := int(pm.Sys.Horizon) + 1
	for ri := range pm.Sys.Runs {
		acc := conj // identity for AND is true, for OR is false
		for t := span - 1; t >= 0; t-- {
			w := ri*span + t
			if conj {
				acc = acc && phi.Contains(w)
			} else {
				acc = acc || phi.Contains(w)
			}
			if acc {
				out.Add(w)
			}
		}
	}
	return out
}

// knowTimelines computes, for each agent in agents and each run, the
// timeline of K_a φ truth values.
func (pm *PointModel) knowTimelines(agents []int, phi *bitset.Set) map[int]*bitset.Set {
	out := make(map[int]*bitset.Set, len(agents))
	for _, a := range agents {
		out[a] = pm.KnowSet(a, phi)
	}
	return out
}

// everyEpsSet computes E^ε_G φ: the point (r, t) is in the result iff there
// is an interval [t', t'+ε] containing t such that every agent in agents
// knows φ at some point of the interval (clipped to the horizon; see
// package comment on finite-horizon conservatism).
func (pm *PointModel) everyEpsSet(agents []int, eps int, phi *bitset.Set) *bitset.Set {
	know := pm.knowTimelines(agents, phi)
	out := bitset.New(pm.NumWorlds())
	span := int(pm.Sys.Horizon) + 1
	for ri := range pm.Sys.Runs {
		// okStart[t'] = every agent knows φ somewhere in [t', min(t'+eps, H)].
		okStart := make([]bool, span)
		for start := 0; start < span; start++ {
			end := start + eps
			if end > span-1 {
				end = span - 1
			}
			ok := true
			for _, a := range agents {
				found := false
				for t := start; t <= end; t++ {
					if know[a].Contains(ri*span + t) {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			okStart[start] = ok
		}
		for t := 0; t < span; t++ {
			// (r,t) qualifies if some interval starting in [t-eps, t] works.
			lo := t - eps
			if lo < 0 {
				lo = 0
			}
			for start := lo; start <= t; start++ {
				if okStart[start] {
					out.Add(ri*span + t)
					break
				}
			}
		}
	}
	return out
}

// everyEvSet computes E^⋄_G φ: (r, t) is in the result iff every agent in
// agents knows φ at some point of run r. The result is uniform across the
// run, as in the paper's definition (ti ranges over the whole run).
func (pm *PointModel) everyEvSet(agents []int, phi *bitset.Set) *bitset.Set {
	know := pm.knowTimelines(agents, phi)
	out := bitset.New(pm.NumWorlds())
	span := int(pm.Sys.Horizon) + 1
	for ri := range pm.Sys.Runs {
		ok := true
		for _, a := range agents {
			found := false
			for t := 0; t < span; t++ {
				if know[a].Contains(ri*span + t) {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			for t := 0; t < span; t++ {
				out.Add(ri*span + t)
			}
		}
	}
	return out
}

// everyTimeSet computes E^T_G φ: (r, t) is in the result iff every agent in
// agents knows φ at the first point of run r where its clock reads at least
// T (and actually reaches T within the horizon). Like E^⋄, the truth value
// is uniform across the run. Processors without clocks read real time.
func (pm *PointModel) everyTimeSet(agents []int, ts int, phi *bitset.Set) *bitset.Set {
	know := pm.knowTimelines(agents, phi)
	out := bitset.New(pm.NumWorlds())
	span := int(pm.Sys.Horizon) + 1
	for ri := range pm.Sys.Runs {
		ok := true
		for _, a := range agents {
			at := -1
			for t := 0; t < span; t++ {
				if reading, defined := pm.clockReading(ri, a, Time(t)); defined && reading >= ts {
					at = t
					break
				}
			}
			if at < 0 || !know[a].Contains(ri*span+at) {
				ok = false
				break
			}
		}
		if ok {
			for t := 0; t < span; t++ {
				out.Add(ri*span + t)
			}
		}
	}
	return out
}

// CheckLemma3 verifies Lemma 3 of the paper on this model: for every agent
// i in g and every pair of points at which i has the same view, C_G φ has
// the same truth value, for each φ in the family.
func (pm *PointModel) CheckLemma3(g logic.Group, formulas []logic.Formula) error {
	agents, err := pm.GroupAgents(g)
	if err != nil {
		return err
	}
	span := int(pm.Sys.Horizon) + 1
	for _, phi := range formulas {
		set, err := pm.Eval(logic.C(g, phi))
		if err != nil {
			return err
		}
		for _, a := range agents {
			// The truth of C_G φ must be constant on each view class.
			value := make(map[string]bool)
			for ri, r := range pm.Sys.Runs {
				for t := 0; t < span; t++ {
					key := pm.View(r, a, Time(t))
					holds := set.Contains(pm.World(ri, Time(t)))
					if prev, ok := value[key]; ok {
						if prev != holds {
							return fmt.Errorf("runs: Lemma 3 violated for %s at (%s,%d), agent %d", phi, r.Name, t, a)
						}
					} else {
						value[key] = holds
					}
				}
			}
		}
	}
	return nil
}

// GReachable reports whether the point (rj, tj) is G-reachable from
// (ri, ti) in the Section 6 graph of the model.
func (pm *PointModel) GReachable(g logic.Group, ri int, ti Time, rj int, tj Time) (bool, error) {
	ids, err := pm.GReachIDs(g)
	if err != nil {
		return false, err
	}
	return ids[pm.World(ri, ti)] == ids[pm.World(rj, tj)], nil
}
