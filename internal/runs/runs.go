// Package runs implements the runs-and-systems model of Sections 5 and 6 of
// Halpern & Moses: a distributed system is identified with the set of its
// possible runs, a point is a pair (run, time), and knowledge is ascribed to
// processors through view functions over points.
//
// Time is discrete (the paper's results carry over unchanged; see DESIGN.md)
// and runs are observed up to a finite horizon. A run records, for each
// processor, its initial state, wake-up time, optional clock readings, and
// the message events it sends and receives. The package derives local
// histories h(p, r, t) exactly as in Section 5: the initial state plus the
// sequence of messages sent and received before time t, with clock stamps if
// and only if the processor has a clock, plus the current clock reading.
//
// A System (a set of runs) together with a view function and a ground-fact
// interpretation π induces a finite Kripke model over points, on which the
// kripke package evaluates the full language, including the temporal
// operators of Sections 11–12, whose semantics this package supplies.
package runs

import (
	"fmt"
	"sort"
	"strconv"
)

// Time is a discrete instant; points of a run are times 0..Horizon.
type Time int

// MessageEvent is one message: sent by From at SendTime, received by To at
// RecvTime, or lost if RecvTime == Lost.
type MessageEvent struct {
	From, To int
	SendTime Time
	RecvTime Time // Lost if the message is never delivered
	Payload  string
}

// Lost marks a message that is never delivered.
const Lost Time = -1

// Delivered reports whether the message was delivered (within the horizon).
func (e MessageEvent) Delivered() bool { return e.RecvTime != Lost }

// Run is a single execution of the system observed up to a horizon.
type Run struct {
	// Name identifies the run within its system (for display/debugging).
	Name string
	// N is the number of processors.
	N int
	// Horizon is the last observed time; the run has points 0..Horizon.
	Horizon Time
	// Init holds each processor's initial state.
	Init []string
	// Wake holds each processor's wake-up time tinit(p, r).
	Wake []Time
	// Messages lists every message event of the run.
	Messages []MessageEvent
	// Meta carries application-defined run attributes (e.g. the time at
	// which a general decides to attack). Interpretations may read it.
	Meta map[string]int

	// clocks[p][t] is processor p's clock reading at time t; nil means the
	// processor has no clock.
	clocks [][]int

	// obsCache memoizes each processor's full sorted observation list
	// (History at successive times walks prefixes of it); obsCacheN is the
	// message count it was built from, so appended messages invalidate it.
	obsCache  [][]observation
	obsCacheN int
}

// NewRun returns a run with n processors, all awake from time 0, empty
// initial states, no clocks and no messages.
func NewRun(name string, n int, horizon Time) *Run {
	return &Run{
		Name:    name,
		N:       n,
		Horizon: horizon,
		Init:    make([]string, n),
		Wake:    make([]Time, n),
		Meta:    make(map[string]int),
	}
}

// Clone returns a deep copy of the run.
func (r *Run) Clone() *Run {
	c := &Run{
		Name:    r.Name,
		N:       r.N,
		Horizon: r.Horizon,
		Init:    append([]string(nil), r.Init...),
		Wake:    append([]Time(nil), r.Wake...),
		Meta:    make(map[string]int, len(r.Meta)),
	}
	c.Messages = append([]MessageEvent(nil), r.Messages...)
	for k, v := range r.Meta {
		c.Meta[k] = v
	}
	if r.clocks != nil {
		c.clocks = make([][]int, len(r.clocks))
		for p, cl := range r.clocks {
			if cl != nil {
				c.clocks[p] = append([]int(nil), cl...)
			}
		}
	}
	return c
}

// SetClock gives processor p a clock with the given readings, one per time
// 0..Horizon. Readings must be monotone nondecreasing from the wake-up time
// (Section 5); SetClock validates this.
func (r *Run) SetClock(p int, readings []int) error {
	if len(readings) != int(r.Horizon)+1 {
		return fmt.Errorf("runs: clock for p%d has %d readings, want %d", p, len(readings), r.Horizon+1)
	}
	for t := int(r.Wake[p]) + 1; t <= int(r.Horizon); t++ {
		if readings[t] < readings[t-1] {
			return fmt.Errorf("runs: clock for p%d decreases at t=%d", p, t)
		}
	}
	if r.clocks == nil {
		r.clocks = make([][]int, r.N)
	}
	r.clocks[p] = append([]int(nil), readings...)
	return nil
}

// SetIdentityClock gives processor p a clock that reads the real time.
func (r *Run) SetIdentityClock(p int) {
	readings := make([]int, r.Horizon+1)
	for t := range readings {
		readings[t] = t
	}
	_ = r.SetClock(p, readings) // identity readings are always valid
}

// SetShiftedClock gives processor p a clock reading real time plus offset.
func (r *Run) SetShiftedClock(p int, offset int) {
	readings := make([]int, r.Horizon+1)
	for t := range readings {
		readings[t] = t + offset
	}
	_ = r.SetClock(p, readings)
}

// HasClock reports whether processor p has a clock in this run.
func (r *Run) HasClock(p int) bool {
	return r.clocks != nil && p < len(r.clocks) && r.clocks[p] != nil
}

// ClockReading returns τ(p, r, t), and false if p has no clock or has not
// yet woken up.
func (r *Run) ClockReading(p int, t Time) (int, bool) {
	if !r.HasClock(p) || t < r.Wake[p] {
		return 0, false
	}
	return r.clocks[p][t], true
}

// Send appends a delivered message event.
func (r *Run) Send(from, to int, sendAt, recvAt Time, payload string) {
	r.Messages = append(r.Messages, MessageEvent{
		From: from, To: to, SendTime: sendAt, RecvTime: recvAt, Payload: payload,
	})
}

// SendLost appends a message event that is never delivered.
func (r *Run) SendLost(from, to int, sendAt Time, payload string) {
	r.Messages = append(r.Messages, MessageEvent{
		From: from, To: to, SendTime: sendAt, RecvTime: Lost, Payload: payload,
	})
}

// DeliveredBefore counts messages received strictly before t.
func (r *Run) DeliveredBefore(t Time) int {
	n := 0
	for _, m := range r.Messages {
		if m.Delivered() && m.RecvTime < t {
			n++
		}
	}
	return n
}

// observation is one entry of a local history.
type observation struct {
	at      Time // real time of the event
	kind    byte // 's' or 'r'
	peer    int
	payload string
	seq     int // tie-break: order of appearance in Messages
}

// observations returns the events processor p observes strictly before t,
// in order of occurrence.
func (r *Run) observations(p int, t Time) []observation {
	var obs []observation
	for i, m := range r.Messages {
		if m.From == p && m.SendTime < t {
			obs = append(obs, observation{at: m.SendTime, kind: 's', peer: m.To, payload: m.Payload, seq: i})
		}
		if m.To == p && m.Delivered() && m.RecvTime < t {
			obs = append(obs, observation{at: m.RecvTime, kind: 'r', peer: m.From, payload: m.Payload, seq: i})
		}
	}
	sort.Slice(obs, func(i, j int) bool {
		if obs[i].at != obs[j].at {
			return obs[i].at < obs[j].at
		}
		return obs[i].seq < obs[j].seq
	})
	return obs
}

// sortedObs returns everything processor p observes over the whole run,
// ordered by (time, seq), memoized on the run. The observations before any
// time t are a prefix of the list, so History at every t of a run — the
// inner loop of point-model construction — shares one collection and one
// sort. Appending messages invalidates the cache; callers that interleave
// Send with History (none do) just repay the sort.
func (r *Run) sortedObs(p int) []observation {
	if r.obsCache == nil || r.obsCacheN != len(r.Messages) {
		r.obsCache = make([][]observation, r.N)
		r.obsCacheN = len(r.Messages)
	}
	if obs := r.obsCache[p]; obs != nil {
		return obs
	}
	obs := r.observations(p, r.Horizon+1)
	if obs == nil {
		obs = make([]observation, 0) // cache "no events" as non-nil
	}
	r.obsCache[p] = obs
	return obs
}

// History returns a canonical encoding of h(p, r, t), the local history of
// Section 5: empty before the wake-up time; afterwards the initial state and
// the ordered sequence of messages sent and received before t. If p has a
// clock, each event is stamped with the clock reading at its occurrence and
// the encoding ends with the current clock reading; without a clock no
// times appear, so a processor that observes nothing cannot tell how much
// time has passed.
func (r *Run) History(p int, t Time) string {
	if t < r.Wake[p] {
		return "asleep"
	}
	hasClock := r.HasClock(p)
	buf := make([]byte, 0, 48)
	buf = append(buf, "init="...)
	buf = append(buf, r.Init[p]...)
	for _, o := range r.sortedObs(p) {
		if o.at >= t {
			break
		}
		buf = append(buf, ';', o.kind)
		if hasClock {
			buf = append(buf, '@')
			buf = strconv.AppendInt(buf, int64(r.clocks[p][o.at]), 10)
		}
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, int64(o.peer), 10)
		buf = append(buf, '/')
		buf = append(buf, o.payload...)
	}
	if hasClock {
		buf = append(buf, ";clock="...)
		buf = strconv.AppendInt(buf, int64(r.clocks[p][t]), 10)
	}
	return string(buf)
}

// System is a set of runs over the same processors and horizon — the
// paper's identification of a distributed system with its possible runs.
type System struct {
	Runs    []*Run
	N       int
	Horizon Time
}

// NewSystem collects runs into a system, validating that they agree on the
// number of processors and the horizon.
func NewSystem(rs ...*Run) (*System, error) {
	if len(rs) == 0 {
		return nil, fmt.Errorf("runs: a system needs at least one run")
	}
	s := &System{Runs: rs, N: rs[0].N, Horizon: rs[0].Horizon}
	for _, r := range rs {
		if r.N != s.N {
			return nil, fmt.Errorf("runs: run %q has %d processors, want %d", r.Name, r.N, s.N)
		}
		if r.Horizon != s.Horizon {
			return nil, fmt.Errorf("runs: run %q has horizon %d, want %d", r.Name, r.Horizon, s.Horizon)
		}
	}
	return s, nil
}

// MustSystem is NewSystem that panics on error (for tests and examples).
func MustSystem(rs ...*Run) *System {
	s, err := NewSystem(rs...)
	if err != nil {
		panic(err)
	}
	return s
}

// RunByName returns the run with the given name.
func (s *System) RunByName(name string) (*Run, bool) {
	for _, r := range s.Runs {
		if r.Name == name {
			return r, true
		}
	}
	return nil, false
}

// NumPoints returns the number of points (worlds) of the system.
func (s *System) NumPoints() int { return len(s.Runs) * (int(s.Horizon) + 1) }

// ViewFunc assigns processor p a view at the point (r, t). Points with
// equal views are indistinguishable to p. Views must be functions of the
// local history (Section 6); the provided view functions guarantee this.
type ViewFunc func(r *Run, p int, t Time) string

// CompleteHistoryView is the complete-history interpretation of Section 6:
// the view is the entire local history. It makes the finest distinctions any
// view-based interpretation can make, and is the interpretation used for the
// paper's impossibility results.
func CompleteHistoryView(r *Run, p int, t Time) string { return r.History(p, t) }

// ObliviousView assigns every processor the same view Λ at every point, the
// coarsest interpretation of Section 6: every fact valid in the system is
// common knowledge, and the knowledge hierarchy collapses.
func ObliviousView(*Run, int, Time) string { return "lambda" }

// PropFn decides whether a ground fact holds at the point (r, t); it is one
// column of the assignment π of Section 6.
type PropFn func(r *Run, t Time) bool

// Interpretation maps ground-fact names to their truth conditions.
type Interpretation map[string]PropFn

// StablyTrue returns a PropFn that holds from the given per-run time on
// (a stable fact in the sense of Section 11). The fact holds at (r, t) iff
// from(r) != Lost and t >= from(r).
func StablyTrue(from func(r *Run) Time) PropFn {
	return func(r *Run, t Time) bool {
		f := from(r)
		return f != Lost && t >= f
	}
}

// SentBy returns the time the first message with the given payload was sent
// in r, or Lost if none was.
func SentBy(payload string) func(r *Run) Time {
	return func(r *Run) Time {
		best := Lost
		for _, m := range r.Messages {
			if m.Payload == payload && (best == Lost || m.SendTime < best) {
				best = m.SendTime
			}
		}
		return best
	}
}

// ReceivedBy returns the time the first message with the given payload was
// received in r, or Lost if never delivered.
func ReceivedBy(payload string) func(r *Run) Time {
	return func(r *Run) Time {
		best := Lost
		for _, m := range r.Messages {
			if m.Payload == payload && m.Delivered() && (best == Lost || m.RecvTime < best) {
				best = m.RecvTime
			}
		}
		return best
	}
}
