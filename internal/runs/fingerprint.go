package runs

import (
	"sort"
	"strconv"
)

// Fingerprint returns a canonical encoding of the run's observable content
// — processors, horizon, initial states, wake-up times, clock readings,
// message events and Meta — everything except the Name. Two runs with equal
// fingerprints are indistinguishable to every view function and every
// interpretation, so sampled-run generators use it to collapse duplicate
// samples. Variable-length strings are length-prefixed, which keeps the
// encoding injective whatever bytes payloads contain.
func (r *Run) Fingerprint() string {
	buf := make([]byte, 0, 128)
	appendStr := func(s string) {
		buf = strconv.AppendInt(buf, int64(len(s)), 10)
		buf = append(buf, '/')
		buf = append(buf, s...)
	}
	buf = strconv.AppendInt(buf, int64(r.N), 10)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(r.Horizon), 10)
	for p := 0; p < r.N; p++ {
		buf = append(buf, "|i="...)
		appendStr(r.Init[p])
		buf = append(buf, ";w="...)
		buf = strconv.AppendInt(buf, int64(r.Wake[p]), 10)
		if r.HasClock(p) {
			buf = append(buf, ";c="...)
			for t := Time(0); t <= r.Horizon; t++ {
				buf = strconv.AppendInt(buf, int64(r.clocks[p][t]), 10)
				buf = append(buf, ',')
			}
		}
	}
	for _, m := range r.Messages {
		buf = append(buf, "|m="...)
		buf = strconv.AppendInt(buf, int64(m.From), 10)
		buf = append(buf, '>')
		buf = strconv.AppendInt(buf, int64(m.To), 10)
		buf = append(buf, '@')
		buf = strconv.AppendInt(buf, int64(m.SendTime), 10)
		buf = append(buf, '>')
		buf = strconv.AppendInt(buf, int64(m.RecvTime), 10)
		buf = append(buf, ':')
		appendStr(m.Payload)
	}
	if len(r.Meta) > 0 {
		keys := make([]string, 0, len(r.Meta))
		for k := range r.Meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			buf = append(buf, "|meta:"...)
			appendStr(k)
			buf = append(buf, '=')
			buf = strconv.AppendInt(buf, int64(r.Meta[k]), 10)
		}
	}
	return string(buf)
}

// DedupeRuns drops runs whose fingerprint duplicates an earlier run's,
// keeping the first occurrence of each and preserving order. Sampled-run
// systems dedupe before model construction: duplicate runs add points
// without adding distinguishable histories, so they only inflate the model.
func DedupeRuns(rs []*Run) []*Run {
	seen := make(map[string]bool, len(rs))
	out := make([]*Run, 0, len(rs))
	for _, r := range rs {
		fp := r.Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		out = append(out, r)
	}
	return out
}
