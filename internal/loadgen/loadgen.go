// Package loadgen is a deterministic load-generator fleet for knowd: a
// seeded multi-worker client swarm driving mixed workloads — muddy-children
// announcement ladders, scenario-regime verdict batches, R2-D2 and
// coordinated-attack sessions — against a live daemon.
//
// Determinism is the point. Every choice the generator makes (which system
// a session opens, how tall its ladder is, which formulas it evaluates,
// whether it closes) is drawn from an order-independent faults.SubStream
// keyed by (seed, worker, session), so a fixed seed produces the identical
// op schedule however the workers interleave at runtime — and two runs of
// the same seed can be compared op for op and byte for byte. Latency is the
// only nondeterministic output, and it is kept strictly apart from the
// comparable record stream: per-op-type log-bucketed histograms, merged
// across workers in worker order.
//
// The fleet runs in two phases. Phase A opens every session and reaches a
// barrier; phase B drives the session bodies concurrently. The barrier
// exists for crash-restart harnesses: an open retried across a daemon
// restart would mint a second session (the dedupe window died with the
// daemon), so harnesses inject their kill only after the barrier, where
// every surviving op is protected by an announce link precondition or is
// a read that may recompute.
package loadgen

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/faults"
)

// labelScript roots the per-(worker, session) script streams under the
// fleet seed; worker and session ordinals nest beneath it.
const labelScript = 0x10ad

// OpKind names the measured op classes; histogram keys.
type OpKind string

// The op classes one schedule can contain.
const (
	OpOpen     OpKind = "open"
	OpEval     OpKind = "eval"
	OpAnnounce OpKind = "announce"
	OpClose    OpKind = "close"
)

// Op is one scheduled client call.
type Op struct {
	Worker  int
	Session int // session ordinal within the worker
	Kind    OpKind

	System   string   // open: system spec
	Seed     int64    // open: session seed
	Formula  string   // announce: the announced formula
	Link     int      // announce: chain-position precondition
	Formulas []string // eval: formula batch
}

// ID is the op's logical session identity, stable across runs regardless
// of which server-side session IDs concurrent opens race into.
func (o Op) ID() string { return fmt.Sprintf("w%ds%d", o.Worker, o.Session) }

// Encode renders the op as one canonical tab-separated line; the schedule
// dump is the concatenation, and byte-equal dumps mean byte-equal
// schedules.
func (o Op) Encode() string {
	switch o.Kind {
	case OpOpen:
		return fmt.Sprintf("%s\topen\t%s\tseed=%d", o.ID(), o.System, o.Seed)
	case OpEval:
		return o.ID() + "\teval\t" + strings.Join(o.Formulas, "\t")
	case OpAnnounce:
		return fmt.Sprintf("%s\tannounce\t%d\t%s", o.ID(), o.Link, o.Formula)
	case OpClose:
		return o.ID() + "\tclose"
	}
	return o.ID() + "\t?"
}

// Mix weights the session script kinds; zero value means DefaultMix.
type Mix struct {
	Muddy    int // muddy:N announcement ladders (N in 2..4)
	Scenario int // scenario-regime verdict batches
	R2D2     int // R2-D2 temporal probes plus one announcement
	Attack   int // coordinated-attack delivery announcements
}

// DefaultMix is the standard workload blend.
var DefaultMix = Mix{Muddy: 4, Scenario: 2, R2D2: 1, Attack: 1}

func (m Mix) orDefault() Mix {
	if m == (Mix{}) {
		return DefaultMix
	}
	return m
}

func (m Mix) total() int { return m.Muddy + m.Scenario + m.R2D2 + m.Attack }

// ParseMix parses the CLI syntax "muddy=4,scenario=2,r2d2=1,attack=1";
// omitted kinds weigh zero, the empty string is DefaultMix.
func ParseMix(s string) (Mix, error) {
	if s == "" {
		return DefaultMix, nil
	}
	var m Mix
	for _, part := range strings.Split(s, ",") {
		kind, val, ok := strings.Cut(part, "=")
		var w int
		if ok {
			if _, err := fmt.Sscanf(val, "%d", &w); err != nil || w < 0 {
				ok = false
			}
		}
		if !ok {
			return Mix{}, fmt.Errorf("loadgen: bad mix term %q (want kind=weight)", part)
		}
		switch kind {
		case "muddy":
			m.Muddy = w
		case "scenario":
			m.Scenario = w
		case "r2d2":
			m.R2D2 = w
		case "attack":
			m.Attack = w
		default:
			return Mix{}, fmt.Errorf("loadgen: unknown mix kind %q", kind)
		}
	}
	if m.total() <= 0 {
		return Mix{}, fmt.Errorf("loadgen: mix %q has no positive weight", s)
	}
	return m, nil
}

func (m Mix) String() string {
	return fmt.Sprintf("muddy=%d,scenario=%d,r2d2=%d,attack=%d", m.Muddy, m.Scenario, m.R2D2, m.Attack)
}

// scenarioRegimes are the regime keys the scenario scripts sample from —
// the cheap-to-build rows of the sweep (async explodes the run space and
// has no place in a latency workload).
var scenarioRegimes = []string{"sync-fixed", "bounded", "lossy", "dup", "drift-within"}

// Config parameterizes a schedule.
type Config struct {
	// Seed roots every draw. Default 1.
	Seed int64
	// Workers is the fleet size. Default 4.
	Workers int
	// Sessions is how many session scripts each worker runs. Default 4.
	Sessions int
	// Mix weights the script kinds; zero value means DefaultMix.
	Mix Mix
	// CloseProb is the probability a script closes its session at the end.
	// Crash-restart harnesses set 0 so every final chain stays inspectable.
	CloseProb float64
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Sessions <= 0 {
		c.Sessions = 4
	}
	c.Mix = c.Mix.orDefault()
	return c
}

// Schedule is a fully materialized op plan: per-worker op lists, with the
// opens of every script leading (phase A) and the bodies following
// (phase B).
type Schedule struct {
	Cfg   Config
	Opens [][]Op // phase A, per worker
	Body  [][]Op // phase B, per worker
}

// Build materializes the schedule for cfg. Equal configs build
// byte-identical schedules.
func Build(cfg Config) *Schedule {
	cfg = cfg.withDefaults()
	sc := &Schedule{
		Cfg:   cfg,
		Opens: make([][]Op, cfg.Workers),
		Body:  make([][]Op, cfg.Workers),
	}
	for w := 0; w < cfg.Workers; w++ {
		for k := 0; k < cfg.Sessions; k++ {
			open, body := buildScript(cfg, w, k)
			sc.Opens[w] = append(sc.Opens[w], open)
			sc.Body[w] = append(sc.Body[w], body...)
		}
	}
	return sc
}

// buildScript draws one session's script from its own sub-stream.
func buildScript(cfg Config, w, k int) (open Op, body []Op) {
	s := faults.SubStream(cfg.Seed, labelScript, uint64(w), uint64(k))
	openSeed := int64(s.Uint64()&0x7fffffff) + 1
	mk := func(kind OpKind) Op { return Op{Worker: w, Session: k, Kind: kind} }
	eval := func(formulas ...string) Op {
		op := mk(OpEval)
		op.Formulas = formulas
		return op
	}
	announce := func(link int, formula string) Op {
		op := mk(OpAnnounce)
		op.Link, op.Formula = link, formula
		return op
	}

	open = mk(OpOpen)
	open.Seed = openSeed
	draw := s.Intn(cfg.Mix.total())
	switch {
	case draw < cfg.Mix.Muddy:
		n := 2 + s.Intn(3) // muddy:2 .. muddy:4
		open.System = fmt.Sprintf("muddy:%d", n)
		body = append(body, eval("K0 muddy1", "C ("+muddyFather(n)+")"))
		body = append(body, announce(0, muddyFather(n)))
		for link := 1; link < n; link++ {
			body = append(body, announce(link, muddyNobody(n)))
		}
		body = append(body, eval(muddyEveryoneKnows(n)))
	case draw < cfg.Mix.Muddy+cfg.Mix.Scenario:
		open.System = "scenario:" + scenarioRegimes[s.Intn(len(scenarioRegimes))]
		body = append(body, eval("sent", "K0 sent", "C sent"))
	case draw < cfg.Mix.Muddy+cfg.Mix.Scenario+cfg.Mix.R2D2:
		open.System = "r2d2"
		body = append(body, eval("K1 sent", "Ce[1] sent", "Cv sent"))
		body = append(body, announce(0, "sent"))
		body = append(body, eval("K1 sent"))
	default:
		open.System = "attack"
		body = append(body, eval("del1", "K0 del1"))
		body = append(body, announce(0, "del1"))
		body = append(body, eval("K0 del1"))
	}
	if s.Bool(cfg.CloseProb) {
		body = append(body, mk(OpClose))
	}
	return open, body
}

// muddyFather is the father's announcement: at least one child is muddy.
func muddyFather(n int) string {
	terms := make([]string, n)
	for i := range terms {
		terms[i] = fmt.Sprintf("muddy%d", i)
	}
	return strings.Join(terms, " | ")
}

// muddyNobody is the round announcement that no child knows its own state.
func muddyNobody(n int) string {
	terms := make([]string, n)
	for i := range terms {
		terms[i] = fmt.Sprintf("~(K%d muddy%d | K%d ~muddy%d)", i, i, i, i)
	}
	return strings.Join(terms, " & ")
}

// muddyEveryoneKnows is the post-ladder probe: every child knows it is
// muddy (all-muddy is the marked world, so the full ladder makes it hold).
func muddyEveryoneKnows(n int) string {
	terms := make([]string, n)
	for i := range terms {
		terms[i] = fmt.Sprintf("K%d muddy%d", i, i)
	}
	return strings.Join(terms, " & ")
}

// Ops returns every op in canonical order: phase A worker-major, then
// phase B worker-major.
func (s *Schedule) Ops() []Op {
	var out []Op
	for _, ops := range s.Opens {
		out = append(out, ops...)
	}
	for _, ops := range s.Body {
		out = append(out, ops...)
	}
	return out
}

// NumOps is the schedule's total op count.
func (s *Schedule) NumOps() int {
	n := 0
	for _, ops := range s.Opens {
		n += len(ops)
	}
	for _, ops := range s.Body {
		n += len(ops)
	}
	return n
}

// CountByKind tallies scheduled ops per kind.
func (s *Schedule) CountByKind() map[OpKind]int {
	out := make(map[OpKind]int)
	for _, op := range s.Ops() {
		out[op.Kind]++
	}
	return out
}

// Encode writes the schedule's canonical dump: one Encode line per op in
// canonical order. Byte-equal dumps mean byte-equal schedules, which is
// what `knowload -dry -seed S` pins.
func (s *Schedule) Encode(w io.Writer) error {
	for _, op := range s.Ops() {
		if _, err := fmt.Fprintln(w, op.Encode()); err != nil {
			return err
		}
	}
	return nil
}

// FinalLinks maps each logical session ID to the chain link its script
// ends at (announces applied, before any close). Harnesses compare this
// against the live daemon to prove no chain advance was lost or doubled.
// Closed sessions are omitted.
func (s *Schedule) FinalLinks() map[string]int {
	links := make(map[string]int)
	for _, ops := range s.Opens {
		for _, op := range ops {
			links[op.ID()] = 0
		}
	}
	for _, ops := range s.Body {
		for _, op := range ops {
			switch op.Kind {
			case OpAnnounce:
				links[op.ID()]++
			case OpClose:
				delete(links, op.ID())
			}
		}
	}
	return links
}

// sortedIDs returns links' keys in deterministic order (for renderers).
func sortedIDs(links map[string]int) []string {
	ids := make([]string, 0, len(links))
	for id := range links {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
