package loadgen

import (
	"fmt"
	"math/bits"
	"time"
)

// Hist is a log-bucketed latency histogram: bucket i holds observations
// whose microsecond count has bit length i, so bucket boundaries are
// powers of two and merging histograms is addition. Quantiles report the
// upper bound of the containing bucket — a deliberate overestimate, stable
// under merge order, never under-promising a percentile.
type Hist struct {
	buckets [64]uint64
	count   uint64
	max     time.Duration
}

// Observe records one latency; negative observations clamp to zero.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bits.Len64(uint64(d/time.Microsecond))]++
	h.count++
	if d > h.max {
		h.max = d
	}
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	for i, n := range o.buckets {
		h.buckets[i] += n
	}
	h.count += o.count
	if o.max > h.max {
		h.max = o.max
	}
}

// Count is the number of observations.
func (h *Hist) Count() uint64 { return h.count }

// Max is the largest observed latency.
func (h *Hist) Max() time.Duration { return h.max }

// Quantile returns the upper bound of the bucket containing the q-th
// observation (0 < q <= 1); zero when the histogram is empty.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			if i == 0 {
				return 0
			}
			// Bucket i holds microsecond counts in [2^(i-1), 2^i).
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	return h.max
}

// String summarizes the histogram for logs and reports.
func (h *Hist) String() string {
	return fmt.Sprintf("n=%d p50<=%v p90<=%v p99<=%v max=%v",
		h.count, h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.max)
}
