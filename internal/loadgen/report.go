package loadgen

import (
	"fmt"
	"io"
)

// reportKinds is the fixed row order of the latency table.
var reportKinds = []OpKind{OpOpen, OpEval, OpAnnounce, OpClose}

// WriteReport renders a fleet run as LOAD_REPORT.md: the run's identity
// (seed, fleet shape, mix — everything needed to replay it), the op
// outcome counts, and the per-op-type latency table. Quantiles are
// log-bucket upper bounds (see Hist), so they read "p99 at most".
func WriteReport(w io.Writer, sc *Schedule, res *Result) error {
	cfg := sc.Cfg
	fmt.Fprintf(w, "# knowload report\n\n")
	fmt.Fprintf(w, "Replay this run: `knowload -seed %d -workers %d -sessions %d -mix %s`\n\n",
		cfg.Seed, cfg.Workers, cfg.Sessions, cfg.Mix)
	fmt.Fprintf(w, "- seed: %d\n- workers: %d\n- sessions per worker: %d\n- mix: %s\n",
		cfg.Seed, cfg.Workers, cfg.Sessions, cfg.Mix)
	fmt.Fprintf(w, "- ops: %d scheduled, %d failed\n", sc.NumOps(), res.Errors)
	fmt.Fprintf(w, "- elapsed: %v\n\n", res.Elapsed)

	fmt.Fprintf(w, "## Latency by op type\n\n")
	fmt.Fprintf(w, "Histograms are log-bucketed at power-of-two microsecond boundaries;\n")
	fmt.Fprintf(w, "quantiles are bucket upper bounds (never under-reported) and merge\n")
	fmt.Fprintf(w, "across workers by bucket addition.\n\n")
	fmt.Fprintf(w, "| op | count | p50 | p90 | p99 | max |\n")
	fmt.Fprintf(w, "|----|------:|----:|----:|----:|----:|\n")
	for _, kind := range reportKinds {
		h := res.Hists[kind]
		if h == nil || h.Count() == 0 {
			continue
		}
		fmt.Fprintf(w, "| %s | %d | %v | %v | %v | %v |\n",
			kind, h.Count(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.Max())
	}

	fmt.Fprintf(w, "\n## Final chain links\n\n")
	links := sc.FinalLinks()
	fmt.Fprintf(w, "%d sessions left open by the schedule:\n\n", len(links))
	for _, id := range sortedIDs(links) {
		fmt.Fprintf(w, "- %s at link %d\n", id, links[id])
	}
	if res.Errors > 0 {
		fmt.Fprintf(w, "\n## Failed ops\n\n")
		for _, rec := range res.Records {
			if rec.Err != "" {
				fmt.Fprintf(w, "- `%s`: %s\n", rec.Line, rec.Err)
			}
		}
	}
	return nil
}
