package loadgen

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaosproxy"
	"repro/internal/client"
	"repro/internal/faults"
	"repro/internal/server"
)

// TestScheduleDeterminism: one seed, one schedule — the canonical dump is
// byte-identical across builds, order-independent in its sub-streams, and
// actually sensitive to the seed.
func TestScheduleDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Workers: 4, Sessions: 6, CloseProb: 0.3}
	var a, b bytes.Buffer
	if err := Build(cfg).Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := Build(cfg).Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("equal configs built different schedules")
	}
	var c bytes.Buffer
	cfg.Seed = 43
	if err := Build(cfg).Encode(&c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds built identical schedules")
	}

	// The default mix at this size exercises every op kind.
	counts := Build(Config{Seed: 42, Workers: 4, Sessions: 6, CloseProb: 0.3}).CountByKind()
	for _, kind := range []OpKind{OpOpen, OpEval, OpAnnounce, OpClose} {
		if counts[kind] == 0 {
			t.Errorf("schedule has no %s ops: %v", kind, counts)
		}
	}
	if counts[OpOpen] != 4*6 {
		t.Errorf("opens %d, want one per (worker, session)", counts[OpOpen])
	}

	// Sub-streams are per-(worker, session): a worker's scripts do not
	// shift when another worker's count changes.
	small := Build(Config{Seed: 42, Workers: 1, Sessions: 2})
	big := Build(Config{Seed: 42, Workers: 3, Sessions: 2})
	for k := range small.Opens[0] {
		if small.Opens[0][k].Encode() != big.Opens[0][k].Encode() {
			t.Fatalf("worker 0 script %d shifted when the fleet grew", k)
		}
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("")
	if err != nil || m != DefaultMix {
		t.Fatalf("empty mix: %+v, %v", m, err)
	}
	m, err = ParseMix("muddy=2,attack=1")
	if err != nil || m.Muddy != 2 || m.Attack != 1 || m.Scenario != 0 || m.R2D2 != 0 {
		t.Fatalf("partial mix: %+v, %v", m, err)
	}
	for _, bad := range []string{"muddy", "muddy=-1", "quantum=3", "muddy=0,attack=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("mix %q accepted", bad)
		}
	}
	if rt, err := ParseMix(DefaultMix.String()); err != nil || rt != DefaultMix {
		t.Fatalf("mix did not round-trip through String: %+v, %v", rt, err)
	}
}

func TestFinalLinks(t *testing.T) {
	sc := Build(Config{Seed: 7, Workers: 2, Sessions: 3})
	links := sc.FinalLinks()
	if len(links) != 2*3 {
		t.Fatalf("links for %d sessions, want 6 (CloseProb 0)", len(links))
	}
	// Re-derive from the raw ops: links must equal announce counts.
	want := make(map[string]int)
	for _, op := range sc.Ops() {
		switch op.Kind {
		case OpOpen:
			want[op.ID()] = 0
		case OpAnnounce:
			want[op.ID()]++
		}
	}
	for id, n := range want {
		if links[id] != n {
			t.Errorf("%s: final link %d, want %d", id, links[id], n)
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond) // bucket (64us, 128us]
	}
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond) // bucket (4096us, 8192us]
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if got := h.Quantile(0.5); got != 128*time.Microsecond {
		t.Errorf("p50 %v, want 128us bucket bound", got)
	}
	if got := h.Quantile(0.99); got != 8192*time.Microsecond {
		t.Errorf("p99 %v, want 8192us bucket bound", got)
	}
	if h.Max() != 5*time.Millisecond {
		t.Errorf("max %v", h.Max())
	}

	// Merge is bucket addition: two halves equal the whole.
	var a, b Hist
	for i := 0; i < 45; i++ {
		a.Observe(100 * time.Microsecond)
		b.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 5; i++ {
		a.Observe(5 * time.Millisecond)
		b.Observe(5 * time.Millisecond)
	}
	a.Merge(&b)
	if a.Count() != h.Count() || a.Quantile(0.5) != h.Quantile(0.5) ||
		a.Quantile(0.99) != h.Quantile(0.99) || a.Max() != h.Max() {
		t.Errorf("merged %s, whole %s", a.String(), h.String())
	}

	var empty Hist
	if empty.Quantile(0.99) != 0 || empty.Max() != 0 {
		t.Error("empty histogram reports nonzero latency")
	}
}

// runFleet executes sc against baseURL with per-worker seeded clients.
func runFleet(t *testing.T, sc *Schedule, baseURL string, afterOp func(int, Op)) *Result {
	t.Helper()
	res, err := sc.Run(RunConfig{
		NewClient: func(w int) *client.Client {
			return client.New(client.Config{
				BaseURL:     baseURL,
				Seed:        sc.Cfg.Seed + int64(w)*7919,
				MaxAttempts: 30,
				BaseDelay:   time.Millisecond,
				MaxDelay:    8 * time.Millisecond,
			})
		},
		AfterOp: afterOp,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFleetAgainstLiveServer: the fleet drives a real daemon handler; every
// op succeeds, records come out in canonical order, two runs of one seed
// produce byte-identical records on fresh daemons, and the histograms
// account for every op.
func TestFleetAgainstLiveServer(t *testing.T) {
	sc := Build(Config{Seed: 11, Workers: 3, Sessions: 3, CloseProb: 0.3})

	run := func() *Result {
		srv := server.New(server.Config{})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		var calls atomic.Int64
		res := runFleet(t, sc, ts.URL, func(done int, op Op) { calls.Add(1) })
		if int(calls.Load()) != sc.NumOps() {
			t.Fatalf("AfterOp saw %d ops, schedule has %d", calls.Load(), sc.NumOps())
		}

		// The live daemon's chains must sit exactly at the schedule's final
		// links: nothing lost, nothing doubled.
		links := sc.FinalLinks()
		c := client.New(client.Config{BaseURL: ts.URL})
		states, err := c.Sessions()
		if err != nil {
			t.Fatal(err)
		}
		if len(states) != len(links) {
			t.Fatalf("daemon holds %d sessions, schedule leaves %d open", len(states), len(links))
		}
		return res
	}
	r1 := run()
	if r1.Errors > 0 {
		for _, rec := range r1.Records {
			if rec.Err != "" {
				t.Errorf("op failed: %s: %s", rec.Line, rec.Err)
			}
		}
		t.FailNow()
	}
	if len(r1.Records) != sc.NumOps() {
		t.Fatalf("%d records for %d ops", len(r1.Records), sc.NumOps())
	}
	// Records are in canonical schedule order regardless of interleaving.
	ops := sc.Ops()
	for i, rec := range r1.Records {
		if rec.Line != ops[i].Encode() {
			t.Fatalf("record %d is %q, schedule has %q", i, rec.Line, ops[i].Encode())
		}
	}
	// Every op is in exactly one histogram bucket.
	var n uint64
	for _, h := range r1.Hists {
		n += h.Count()
	}
	if n != uint64(sc.NumOps()) {
		t.Fatalf("histograms hold %d observations for %d ops", n, sc.NumOps())
	}

	r2 := run()
	if fmt.Sprint(r1.Records) != fmt.Sprint(r2.Records) {
		t.Fatal("two runs of one seed diverged on fresh daemons")
	}
}

// TestFleetThroughChaos: the same schedule through a fault-injecting proxy
// — delay, loss, duplication, trickled and severed responses — must
// converge to records byte-identical with the clean run, with every
// mutation executed exactly once server-side.
func TestFleetThroughChaos(t *testing.T) {
	sc := Build(Config{Seed: 5, Workers: 2, Sessions: 2})

	cleanSrv := server.New(server.Config{})
	cleanTS := httptest.NewServer(cleanSrv.Handler())
	defer cleanTS.Close()
	clean := runFleet(t, sc, cleanTS.URL, nil)
	if clean.Errors > 0 {
		t.Fatalf("clean run failed %d ops", clean.Errors)
	}

	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	proxy, err := chaosproxy.New(chaosproxy.Config{
		Target: ts.URL,
		Plan: faults.Plan{
			Seed:  5,
			Delay: faults.Uniform{Min: 1, MaxD: 3},
			Drop:  0.3,
			Dup:   0.3,
		},
		Tick:      time.Millisecond,
		SlowLoris: 0.2,
		Sever:     0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxyTS := httptest.NewServer(proxy)
	defer proxyTS.Close()

	chaos := runFleet(t, sc, proxyTS.URL, nil)
	if chaos.Errors > 0 {
		for _, rec := range chaos.Records {
			if rec.Err != "" {
				t.Errorf("chaos op failed: %s: %s", rec.Line, rec.Err)
			}
		}
		t.FailNow()
	}
	if fmt.Sprint(chaos.Records) != fmt.Sprint(clean.Records) {
		t.Fatal("chaos run diverged from clean run")
	}
	counts := sc.CountByKind()
	sst := srv.StatsSnapshot()
	if sst.Opened != int64(counts[OpOpen]) {
		t.Errorf("opens executed %d times, want %d", sst.Opened, counts[OpOpen])
	}
	if sst.Announces+sst.Replays < int64(counts[OpAnnounce]) || sst.Announces > int64(counts[OpAnnounce]) {
		t.Errorf("announces executed %d times (replays %d), schedule has %d",
			sst.Announces, sst.Replays, counts[OpAnnounce])
	}
	pst := proxy.StatsSnapshot()
	if pst.DroppedRequests+pst.DroppedResponses+pst.Duplicated+pst.Severed == 0 {
		t.Fatalf("proxy injected nothing; the run proves nothing: %+v", pst)
	}
}

// TestWriteReport smoke-checks the markdown renderer over a real run.
func TestWriteReport(t *testing.T) {
	sc := Build(Config{Seed: 3, Workers: 2, Sessions: 2})
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	res := runFleet(t, sc, ts.URL, nil)

	var buf bytes.Buffer
	if err := WriteReport(&buf, sc, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# knowload report",
		"-seed 3 -workers 2 -sessions 2",
		"## Latency by op type",
		"| open |",
		"## Final chain links",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report misses %q:\n%s", want, out)
		}
	}
}
