package loadgen

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

// RunConfig wires a schedule to live clients.
type RunConfig struct {
	// NewClient builds worker w's client. Each worker gets its own client
	// so breaker state and key sequences never cross workers.
	NewClient func(w int) *client.Client
	// AfterOp, when non-nil, is called after every completed op with the
	// global completed-op count (1-based) and the op. Harnesses hang kill
	// triggers here; the callback runs on the worker's goroutine, so it
	// must be cheap and concurrency-safe.
	AfterOp func(done int, op Op)
	// EvalWorkers is the evaluation worker count eval ops request from the
	// server (the repo's -parallel convention, already resolved through
	// kripke.WorkersFromFlag); 0 accepts the server default.
	EvalWorkers int
	// Pace, when positive, is a per-worker sleep between ops: it stretches
	// a run's wall clock (so soak harnesses can crash the daemon mid-run)
	// without touching the schedule or the records, which stay
	// byte-comparable across paced and unpaced runs of one seed.
	Pace time.Duration
}

// Record is one executed op's comparable outcome: the canonical op line,
// the normalized response payload, and the error if the call failed.
// Latency deliberately lives outside the record, in the histograms, so
// records from two runs of one seed can be compared byte for byte.
type Record struct {
	Line string `json:"line"`
	Body string `json:"body,omitempty"`
	Err  string `json:"err,omitempty"`
}

// Result is one fleet run's outcome.
type Result struct {
	// Records in canonical schedule order (phase A worker-major, then
	// phase B worker-major), independent of runtime interleaving.
	Records []Record
	// Hists are the per-op-type latency histograms, merged across workers
	// in worker order.
	Hists map[OpKind]*Hist
	// Errors counts failed ops.
	Errors int
	// Elapsed is the wall time of the whole run (reporting only).
	Elapsed time.Duration
}

// worker is one fleet member's runtime state.
type worker struct {
	w        int
	c        *client.Client
	sids     map[string]string // logical ID -> server session ID
	opens    []Record
	body     []Record
	hists    map[OpKind]*Hist
	errs     int
	afterOp  func(op Op)
	evalWkrs int
}

func (wk *worker) observe(kind OpKind, d time.Duration) {
	h := wk.hists[kind]
	if h == nil {
		h = &Hist{}
		wk.hists[kind] = h
	}
	h.Observe(d)
}

// exec runs one op against the worker's client and returns its record.
func (wk *worker) exec(op Op) Record {
	rec := Record{Line: op.Encode()}
	start := time.Now()
	body, err := wk.call(op)
	wk.observe(op.Kind, time.Since(start))
	if err != nil {
		rec.Err = err.Error()
		wk.errs++
	} else {
		rec.Body = body
	}
	if wk.afterOp != nil {
		wk.afterOp(op)
	}
	return rec
}

func (wk *worker) call(op Op) (string, error) {
	switch op.Kind {
	case OpOpen:
		st, err := wk.c.Open(op.System, op.Seed)
		if err != nil {
			return "", err
		}
		wk.sids[op.ID()] = st.Session
		return normalizeState(st, op.ID())
	case OpEval:
		sid, err := wk.sid(op)
		if err != nil {
			return "", err
		}
		ev, err := wk.c.Eval(sid, server.EvalRequest{Formulas: op.Formulas, Workers: wk.evalWkrs})
		if err != nil {
			return "", err
		}
		ev.Session = op.ID()
		return marshal(ev)
	case OpAnnounce:
		sid, err := wk.sid(op)
		if err != nil {
			return "", err
		}
		st, err := wk.c.AnnounceAt(sid, op.Formula, op.Link)
		if err != nil {
			return "", err
		}
		return normalizeState(st, op.ID())
	case OpClose:
		sid, err := wk.sid(op)
		if err != nil {
			return "", err
		}
		err = wk.c.Close(sid)
		// A retried close whose original applied lands on a session that
		// no longer exists; across a crash-restart the dedupe window is
		// gone, so the 404 is the already-closed signal, not a failure.
		var apiErr *client.APIError
		if err != nil && !(errors.As(err, &apiErr) && apiErr.Status == 404) {
			return "", err
		}
		return "closed", nil
	}
	return "", fmt.Errorf("loadgen: unknown op kind %q", op.Kind)
}

func (wk *worker) sid(op Op) (string, error) {
	sid, ok := wk.sids[op.ID()]
	if !ok {
		return "", fmt.Errorf("loadgen: session %s was never opened", op.ID())
	}
	return sid, nil
}

// normalizeState replaces the server-assigned session ID with the op's
// logical identity: concurrent opens race for server IDs, so only the
// logical name is stable across runs.
func normalizeState(st server.SessionState, id string) (string, error) {
	st.Session = id
	return marshal(st)
}

func marshal(v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// Run executes the schedule: phase A opens every session and reaches a
// barrier, phase B drives the session bodies, all workers concurrent
// within each phase.
func (s *Schedule) Run(rc RunConfig) (*Result, error) {
	if rc.NewClient == nil {
		return nil, fmt.Errorf("loadgen: RunConfig.NewClient is required")
	}
	start := time.Now()
	workers := make([]*worker, s.Cfg.Workers)
	var done atomic.Int64
	for w := range workers {
		wk := &worker{
			w:        w,
			c:        rc.NewClient(w),
			sids:     make(map[string]string),
			hists:    make(map[OpKind]*Hist),
			evalWkrs: rc.EvalWorkers,
		}
		if rc.AfterOp != nil {
			wk.afterOp = func(op Op) { rc.AfterOp(int(done.Add(1)), op) }
		}
		workers[w] = wk
	}

	phase := func(pick func(wk *worker) ([]Op, *[]Record)) {
		var wg sync.WaitGroup
		for _, wk := range workers {
			ops, out := pick(wk)
			wg.Add(1)
			go func(wk *worker, ops []Op, out *[]Record) {
				defer wg.Done()
				for _, op := range ops {
					*out = append(*out, wk.exec(op))
					if rc.Pace > 0 {
						time.Sleep(rc.Pace)
					}
				}
			}(wk, ops, out)
		}
		wg.Wait() // the phase-A barrier; phase B reuses the same shape
	}
	phase(func(wk *worker) ([]Op, *[]Record) { return s.Opens[wk.w], &wk.opens })
	phase(func(wk *worker) ([]Op, *[]Record) { return s.Body[wk.w], &wk.body })

	res := &Result{Hists: make(map[OpKind]*Hist), Elapsed: time.Since(start)}
	for _, wk := range workers {
		res.Records = append(res.Records, wk.opens...)
	}
	for _, wk := range workers {
		res.Records = append(res.Records, wk.body...)
		res.Errors += wk.errs
		for kind, h := range wk.hists {
			if res.Hists[kind] == nil {
				res.Hists[kind] = &Hist{}
			}
			res.Hists[kind].Merge(h)
		}
	}
	return res, nil
}
