package discovery

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/protocol"
	"repro/internal/runs"
)

func TestReliableClimb(t *testing.T) {
	pm, err := Build(protocol.Reliable{Delay: 1}, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	run, err := DeadlockRunWithDeliveries(pm, 2)
	if err != nil {
		t.Fatal(err)
	}
	climb, err := ClimbIn(pm, run)
	if err != nil {
		t.Fatal(err)
	}
	// D from the start; S when the detector has both edges (edge sent at
	// 0, received at 1, observed at 2); E and C when the verdict returns
	// (sent at 2, received at 3, observed at 4).
	if climb.D != 0 {
		t.Errorf("D first at %d, want 0", climb.D)
	}
	if climb.S != 2 {
		t.Errorf("S first at %d, want 2", climb.S)
	}
	if climb.E != 4 {
		t.Errorf("E first at %d, want 4", climb.E)
	}
	if climb.C != 4 {
		t.Errorf("C first at %d, want 4 (reliable exchange is deterministic)", climb.C)
	}
	// Strict climbing: each level is attained no earlier than the last.
	if !(climb.D <= climb.S && climb.S <= climb.E && climb.E <= climb.C) {
		t.Errorf("climb out of order: %+v", climb)
	}
}

func TestClocklessReliableNeverReachesC(t *testing.T) {
	// Even with guaranteed delivery, clockless processors cannot attain
	// common knowledge of the deadlock: without clocks no instant is
	// commonly identifiable, and the detector's pre-verdict points keep
	// the no-deadlock runs reachable. Simultaneity, not just delivery, is
	// what publication requires (Section 8).
	pm, err := Build(protocol.Reliable{Delay: 1}, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	run, err := DeadlockRunWithDeliveries(pm, 2)
	if err != nil {
		t.Fatal(err)
	}
	climb, err := ClimbIn(pm, run)
	if err != nil {
		t.Fatal(err)
	}
	if climb.D != 0 || climb.S != 2 || climb.E != 4 {
		t.Errorf("clockless climb D/S/E = %d/%d/%d, want 0/2/4", climb.D, climb.S, climb.E)
	}
	if climb.C != runs.Lost {
		t.Errorf("C first at %d, want never without clocks", climb.C)
	}
}

func TestUnreliableClimbNeverReachesC(t *testing.T) {
	pm, err := Build(protocol.Unreliable{Delay: 1}, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	run, err := DeadlockRunWithDeliveries(pm, 2)
	if err != nil {
		t.Fatal(err)
	}
	climb, err := ClimbIn(pm, run)
	if err != nil {
		t.Fatal(err)
	}
	if climb.D != 0 || climb.S != 2 || climb.E != 4 {
		t.Errorf("unreliable climb D/S/E = %d/%d/%d, want 0/2/4", climb.D, climb.S, climb.E)
	}
	if climb.C != runs.Lost {
		t.Errorf("C first at %d, want never (Theorem 5)", climb.C)
	}
}

func TestNoDeadlockNothingToDiscover(t *testing.T) {
	pm, err := Build(protocol.Reliable{Delay: 1}, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	// In a run with only one edge, the deadlock fact is false, so no level
	// of knowledge of it ever holds (knowledge is veridical).
	set, err := pm.Eval(logic.S(nil, logic.P(DeadlockProp)))
	if err != nil {
		t.Fatal(err)
	}
	for ri, r := range pm.Sys.Runs {
		if r.Init[0] == "1" && r.Init[1] == "1" {
			continue
		}
		for tt := runs.Time(0); tt <= pm.Sys.Horizon; tt++ {
			if set.Contains(pm.World(ri, tt)) {
				t.Errorf("S deadlock holds at (%s,%d) without a deadlock", r.Name, tt)
			}
		}
	}
}

func TestDetectorVerdictIsCorrect(t *testing.T) {
	pm, err := Build(protocol.Reliable{Delay: 1}, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range pm.Sys.Runs {
		for _, m := range r.Messages {
			if m.From != 1 {
				continue
			}
			wantYes := r.Init[0] == "1" && r.Init[1] == "1"
			if wantYes && m.Payload != "verdict=yes" {
				t.Errorf("run %s: verdict = %q, want yes", r.Name, m.Payload)
			}
			if !wantYes && m.Payload != "verdict=no" {
				t.Errorf("run %s: verdict = %q, want no", r.Name, m.Payload)
			}
		}
	}
}

func BenchmarkClimb(b *testing.B) {
	pm, err := Build(protocol.Unreliable{Delay: 1}, 8, true)
	if err != nil {
		b.Fatal(err)
	}
	run, err := DeadlockRunWithDeliveries(pm, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ClimbIn(pm, run); err != nil {
			b.Fatal(err)
		}
	}
}
