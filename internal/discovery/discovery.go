// Package discovery implements the Section 3 view of communication as
// climbing the knowledge hierarchy: fact discovery moves a fact from
// distributed knowledge (D) to explicit knowledge (S, E), and fact
// publication moves it to common knowledge (C).
//
// The running example is the one the paper names — detection of a global
// deadlock. Two processors each observe one wait-for edge; a deadlock is
// the conjunction, so initially the system only has distributed knowledge
// of it. A detection protocol (p0 ships its edge to p1, p1 ships the
// verdict back) discovers the fact: S at the detector, then E, and — when
// communication is reliable, so the exchange is deterministic — C. Over an
// unreliable channel the same protocol still yields S and E in successful
// runs, but common knowledge is never attained (Theorem 5).
package discovery

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/protocol"
	"repro/internal/runs"
)

// DeadlockProp is the ground fact "the wait-for graph has a cycle", i.e.
// both edges are present.
const DeadlockProp = "deadlock"

// detectorProtocols: p0 sends its edge bit at the first instant; p1, upon
// receiving it, replies with the verdict.
func detectorProtocols() []protocol.Protocol {
	p0 := protocol.Func(func(v protocol.LocalView) []protocol.Outgoing {
		if len(v.Sent) == 0 {
			return []protocol.Outgoing{{To: 1, Payload: "edge0=" + v.Init}}
		}
		return nil
	})
	p1 := protocol.Func(func(v protocol.LocalView) []protocol.Outgoing {
		if len(v.Received) > len(v.Sent) {
			verdict := "no"
			if v.Init == "1" && v.Received[0].Payload == "edge0=1" {
				verdict = "yes"
			}
			return []protocol.Outgoing{{To: 0, Payload: "verdict=" + verdict}}
		}
		return nil
	})
	return []protocol.Protocol{p0, p1}
}

// Build generates the detection system over the given channel: one initial
// configuration per combination of the two edge bits. With clocks, a
// reliable exchange is fully deterministic and publication (C) succeeds at
// the moment the verdict is observed; without clocks no point in time can
// be commonly identified, so even reliable communication cannot publish
// the fact — simultaneity, not just delivery, is what common knowledge
// needs (Section 8).
func Build(ch protocol.Channel, horizon runs.Time, withClocks bool) (*runs.PointModel, error) {
	var cfgs []protocol.Config
	for e0 := 0; e0 <= 1; e0++ {
		for e1 := 0; e1 <= 1; e1++ {
			cfg := protocol.Config{
				Name: fmt.Sprintf("e%d%d", e0, e1),
				Init: []string{fmt.Sprintf("%d", e0), fmt.Sprintf("%d", e1)},
			}
			if withClocks {
				cfg.Clock = []int{0, 0}
			}
			cfgs = append(cfgs, cfg)
		}
	}
	sys, err := protocol.Generate(detectorProtocols(), ch, cfgs, horizon,
		protocol.Options{MaxMessagesPerRun: 2})
	if err != nil {
		return nil, fmt.Errorf("discovery: %w", err)
	}
	interp := runs.Interpretation{
		DeadlockProp: func(r *runs.Run, _ runs.Time) bool {
			return r.Init[0] == "1" && r.Init[1] == "1"
		},
	}
	return sys.Model(runs.CompleteHistoryView, interp), nil
}

// FirstTime returns the first time f holds in the named run, or runs.Lost
// if it never does within the horizon.
func FirstTime(pm *runs.PointModel, f logic.Formula, runName string) (runs.Time, error) {
	set, err := pm.Eval(f)
	if err != nil {
		return 0, err
	}
	for t := runs.Time(0); t <= pm.Sys.Horizon; t++ {
		w, err := pm.WorldOf(runName, t)
		if err != nil {
			return 0, err
		}
		if set.Contains(w) {
			return t, nil
		}
	}
	return runs.Lost, nil
}

// Climb records when each level of the hierarchy is first attained for the
// deadlock fact in a given run.
type Climb struct {
	D, S, E, C runs.Time // runs.Lost = never within the horizon
}

// ClimbIn measures the hierarchy climb for the deadlock fact in the named
// run.
func ClimbIn(pm *runs.PointModel, runName string) (Climb, error) {
	var c Climb
	phi := logic.P(DeadlockProp)
	var err error
	if c.D, err = FirstTime(pm, logic.D(nil, phi), runName); err != nil {
		return c, err
	}
	if c.S, err = FirstTime(pm, logic.S(nil, phi), runName); err != nil {
		return c, err
	}
	if c.E, err = FirstTime(pm, logic.E(nil, phi), runName); err != nil {
		return c, err
	}
	if c.C, err = FirstTime(pm, logic.C(nil, phi), runName); err != nil {
		return c, err
	}
	return c, nil
}

// DeadlockRunWithDeliveries returns the name of a run with both edges
// present and exactly d delivered messages.
func DeadlockRunWithDeliveries(pm *runs.PointModel, d int) (string, error) {
	for _, r := range pm.Sys.Runs {
		if r.Init[0] != "1" || r.Init[1] != "1" {
			continue
		}
		got := 0
		for _, m := range r.Messages {
			if m.Delivered() {
				got++
			}
		}
		if got == d {
			return r.Name, nil
		}
	}
	return "", fmt.Errorf("discovery: no deadlock run with %d deliveries", d)
}
