// Package client is the retrying knowd client: the other half of the
// daemon's robustness contract. Every mutating call carries a
// deterministic idempotency key that is REUSED across retries, so the
// server's single-flight dedupe window can collapse duplicates — whether
// they come from this client's own retry loop or from a duplicating
// network in between. Transient failures (connection errors, 429, 503,
// 5xx) back off exponentially with full jitter drawn from the repo's
// seeded splitmix64 stream, honoring Retry-After; a run of consecutive
// failures opens a circuit breaker that fails fast until a cooldown
// elapses and a half-open probe is allowed through.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/server"
)

// ErrCircuitOpen fails a call fast while the breaker cooldown runs.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// APIError is a non-retryable server verdict (4xx other than 429).
type APIError struct {
	Status int
	Msg    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server said %d: %s", e.Status, e.Msg)
}

// Config carries the client knobs; zero values mean defaults.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7433".
	BaseURL string
	// Seed drives the jitter stream (and, with DeterministicKeys, the
	// idempotency-key sequence). Default 1.
	Seed int64
	// DeterministicKeys derives the idempotency-key prefix purely from
	// Seed, so a seeded chaos run replays the identical request stream.
	// Default false: every client instance mints a unique random prefix,
	// so separate processes (repeated CLI invocations, say) can never
	// collide in the server's dedupe window.
	DeterministicKeys bool
	// MaxAttempts bounds tries per call (first try included). Default 6.
	MaxAttempts int
	// BaseDelay is the first backoff ceiling; attempt k waits a uniform
	// draw from [0, min(MaxDelay, BaseDelay<<k)). Default 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling. Default 2s.
	MaxDelay time.Duration
	// BreakerThreshold is how many consecutive failed calls open the
	// breaker. Default 5.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before letting a
	// half-open probe through. Default 5s.
	BreakerCooldown time.Duration
	// HTTPClient overrides the transport (default http.Client with a 30s
	// timeout).
	HTTPClient *http.Client
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 6
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 50 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// Client talks to one knowd daemon. Safe for concurrent use.
type Client struct {
	cfg Config

	mu       sync.Mutex
	jitter   *faults.Stream
	keyPfx   string
	keySeq   uint64
	fails    int       // consecutive failed calls
	openedAt time.Time // breaker open time; zero when closed
	probing  bool      // a half-open probe is in flight

	now   func() time.Time      // injectable for tests
	sleep func(d time.Duration) // injectable for tests
	rand  func(n int64) int64   // injectable for tests; default jitter stream

	// Retries counts every retried attempt (total attempts minus calls),
	// for tests and chaos assertions.
	retries int
	// sheds counts 429/503 responses observed across attempts: the
	// server-side backpressure this client has been leaned on with. A
	// router reads it through Stats to down-weight a shedding shard.
	sheds int
}

// New builds a client from cfg.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	c := &Client{
		cfg:    cfg,
		jitter: faults.NewStream(cfg.Seed),
		now:    time.Now,
		sleep:  time.Sleep,
	}
	if cfg.DeterministicKeys {
		c.keyPfx = fmt.Sprintf("c%x", cfg.Seed)
	} else {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Fall back to a process-unique-ish prefix; colliding with
			// another client also requires colliding sequence numbers.
			binary.LittleEndian.PutUint64(b[:], uint64(time.Now().UnixNano())^uint64(os.Getpid())<<32)
		}
		c.keyPfx = hex.EncodeToString(b[:])
	}
	c.rand = func(n int64) int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(c.jitter.Intn(int(n)))
	}
	return c
}

// Retries reports how many retried attempts the client has made.
func (c *Client) Retries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retries
}

// Stats is the client's own telemetry: breaker state, failure run length,
// and backpressure counts. It is the client-side mirror of server.Stats —
// a router health-checks shards off this instead of shadow-counting.
type Stats struct {
	// Breaker is "closed", "open", or "half-open" (cooldown elapsed or a
	// probe in flight; the next admitted call decides).
	Breaker string
	// ConsecutiveFails is the current run of failed calls; BreakerThreshold
	// of them opens the breaker.
	ConsecutiveFails int
	// Retries mirrors the Retries accessor.
	Retries int
	// Sheds counts 429/503 responses observed across all attempts.
	Sheds int
}

// Stats snapshots the client's breaker and backpressure telemetry.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{Breaker: "closed", ConsecutiveFails: c.fails, Retries: c.retries, Sheds: c.sheds}
	if !c.openedAt.IsZero() {
		st.Breaker = "open"
		if c.probing || c.now().Sub(c.openedAt) >= c.cfg.BreakerCooldown {
			st.Breaker = "half-open"
		}
	}
	return st
}

// nextKey mints the idempotency key for one logical call. The sequence is
// deterministic in the seed, so a chaos run can be replayed exactly.
func (c *Client) nextKey() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.keySeq++
	return fmt.Sprintf("%s-%d", c.keyPfx, c.keySeq)
}

// breakerAdmit decides whether a call may proceed. While open, only the
// half-open probe after the cooldown is admitted.
func (c *Client) breakerAdmit() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.openedAt.IsZero() {
		return nil
	}
	if c.now().Sub(c.openedAt) < c.cfg.BreakerCooldown || c.probing {
		return ErrCircuitOpen
	}
	c.probing = true // this call is the probe
	return nil
}

func (c *Client) recordOutcome(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.probing = false
	if err == nil {
		c.fails = 0
		c.openedAt = time.Time{}
		return
	}
	c.fails++
	if c.fails >= c.cfg.BreakerThreshold {
		c.openedAt = c.now()
	}
}

// recordNeutral ends a call that says nothing about the daemon's health —
// a context-cancelled attempt (a hedge loser is cancelled on purpose).
// Neither the failure run nor the breaker moves; a probe slot is released.
func (c *Client) recordNeutral() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.probing = false
}

// retryable reports whether a response status is worth another attempt.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// call performs one logical API call with retries; out, when non-nil, is
// filled from the final 2xx body. Mutating calls pass idempotent=true to
// attach a per-call Idempotency-Key reused across every attempt. ctx
// cancellation aborts the in-flight attempt and the retry loop.
func (c *Client) call(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	if err := c.breakerAdmit(); err != nil {
		return err
	}
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			c.recordOutcome(err)
			return err
		}
	}
	key := ""
	if idempotent {
		key = c.nextKey()
	}
	err := c.attemptLoop(ctx, method, path, key, body, out)
	// A definitive 4xx verdict means the server is healthy and answering;
	// only transport failures and exhausted retries feed the breaker. A
	// cancelled call says nothing about the daemon at all.
	var apiErr *APIError
	switch {
	case errors.As(err, &apiErr):
		c.recordOutcome(nil)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		c.recordNeutral()
	default:
		c.recordOutcome(err)
	}
	return err
}

func (c *Client) attemptLoop(ctx context.Context, method, path, key string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			return fmt.Errorf("client: %s %s: %w", method, path, lastErr)
		}
		if attempt > 0 {
			c.mu.Lock()
			c.retries++
			c.mu.Unlock()
		}
		req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		resp, err := c.cfg.HTTPClient.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("client: %s %s: %w", method, path, ctx.Err())
			}
			lastErr = err
			c.backoff(attempt, 0)
			continue
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
		resp.Body.Close()
		if rerr != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("client: %s %s: %w", method, path, ctx.Err())
			}
			lastErr = rerr
			c.backoff(attempt, 0)
			continue
		}
		switch {
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			if out == nil {
				return nil
			}
			return json.Unmarshal(data, out)
		case retryable(resp.StatusCode):
			if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
				c.mu.Lock()
				c.sheds++
				c.mu.Unlock()
			}
			lastErr = fmt.Errorf("client: server said %d: %s", resp.StatusCode, bytes.TrimSpace(data))
			c.backoff(attempt, parseRetryAfter(resp.Header.Get("Retry-After")))
			continue
		default:
			var eb struct {
				Error string `json:"error"`
			}
			_ = json.Unmarshal(data, &eb)
			if eb.Error == "" {
				eb.Error = string(bytes.TrimSpace(data))
			}
			return &APIError{Status: resp.StatusCode, Msg: eb.Error}
		}
	}
	return fmt.Errorf("client: %s %s failed after %d attempts: %w", method, path, c.cfg.MaxAttempts, lastErr)
}

// backoff sleeps a full-jitter exponential delay: uniform in [0, ceiling)
// where ceiling doubles per attempt, floored by any server Retry-After.
func (c *Client) backoff(attempt int, retryAfter time.Duration) {
	ceiling := c.cfg.BaseDelay << uint(attempt)
	if ceiling > c.cfg.MaxDelay || ceiling <= 0 {
		ceiling = c.cfg.MaxDelay
	}
	d := time.Duration(c.rand(int64(ceiling)))
	if retryAfter > d {
		d = retryAfter
	}
	c.sleep(d)
}

func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// API surface.

// Health reports the daemon's health status string ("ok" or "draining").
// Note a draining daemon answers 503, which this retrying path treats as
// transient; a health checker that wants a single unretried probe should
// issue its own GET.
func (c *Client) Health() (string, error) {
	var m map[string]string
	if err := c.call(context.Background(), "GET", "/healthz", nil, &m, false); err != nil {
		return "", err
	}
	return m["status"], nil
}

// Systems lists the loadable system specs.
func (c *Client) Systems() ([]server.SystemInfo, error) {
	var out []server.SystemInfo
	err := c.call(context.Background(), "GET", "/v1/systems", nil, &out, false)
	return out, err
}

// ServerStats snapshots the daemon's counters (the remote counterpart of
// the local Stats telemetry accessor).
func (c *Client) ServerStats() (server.Stats, error) {
	var out server.Stats
	err := c.call(context.Background(), "GET", "/v1/stats", nil, &out, false)
	return out, err
}

// Sessions lists the live sessions.
func (c *Client) Sessions() ([]server.SessionState, error) {
	var out []server.SessionState
	err := c.call(context.Background(), "GET", "/v1/sessions", nil, &out, false)
	return out, err
}

// Open creates a session on a system spec; seed 0 uses the server's seed.
func (c *Client) Open(system string, seed int64) (server.SessionState, error) {
	var out server.SessionState
	err := c.call(context.Background(), "POST", "/v1/sessions", server.OpenRequest{System: system, Seed: seed}, &out, true)
	return out, err
}

// Get fetches one session's current chain state.
func (c *Client) Get(session string) (server.SessionState, error) {
	return c.GetCtx(context.Background(), session)
}

// GetCtx is Get under a caller context: a hedged read cancels the losing
// leg through it.
func (c *Client) GetCtx(ctx context.Context, session string) (server.SessionState, error) {
	var out server.SessionState
	err := c.call(ctx, "GET", "/v1/sessions/"+session, nil, &out, false)
	return out, err
}

// Eval evaluates a formula batch on a session.
func (c *Client) Eval(session string, req server.EvalRequest) (server.EvalResponse, error) {
	return c.EvalCtx(context.Background(), session, req)
}

// EvalCtx is Eval under a caller context. Cancellation aborts the
// in-flight attempt and propagates server-side into EvalBatchCtx, so a
// hedge loser stops burning the shard's compute between formulas.
func (c *Client) EvalCtx(ctx context.Context, session string, req server.EvalRequest) (server.EvalResponse, error) {
	var out server.EvalResponse
	err := c.call(ctx, "POST", "/v1/sessions/"+session+"/eval", req, &out, true)
	return out, err
}

// Announce publicly announces a formula on a session.
func (c *Client) Announce(session, formula string) (server.SessionState, error) {
	var out server.SessionState
	err := c.call(context.Background(), "POST", "/v1/sessions/"+session+"/announce", server.AnnounceRequest{Formula: formula}, &out, true)
	return out, err
}

// AnnounceAt announces with a chain-position precondition: the formula
// must become link link+1 of the chain. A retry whose original applied but
// whose response was lost — even across a daemon crash-restart, where the
// dedupe window is gone — replays the resulting state instead of advancing
// the chain twice; a genuine position mismatch is a 409 APIError.
func (c *Client) AnnounceAt(session, formula string, link int) (server.SessionState, error) {
	var out server.SessionState
	err := c.call(context.Background(), "POST", "/v1/sessions/"+session+"/announce",
		server.AnnounceRequest{Formula: formula, Link: &link}, &out, true)
	return out, err
}

// Close deletes a session.
func (c *Client) Close(session string) error {
	return c.call(context.Background(), "DELETE", "/v1/sessions/"+session, nil, nil, true)
}
