package client

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestBackoffRetryAfterFloor unit-tests the backoff schedule directly: the
// jittered delay doubles its ceiling per attempt up to MaxDelay, and a
// server Retry-After is a floor over the jitter, never replaced by a
// smaller random draw.
func TestBackoffRetryAfterFloor(t *testing.T) {
	c := New(Config{BaseURL: "http://unused", BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond})
	st := stubClock(c)
	c.rand = func(n int64) int64 { return n - 1 } // always draw the ceiling

	for attempt, want := range []time.Duration{
		10*time.Millisecond - 1, // attempt 0: ceiling BaseDelay
		20*time.Millisecond - 1, // attempt 1: doubled
		40*time.Millisecond - 1,
		80*time.Millisecond - 1, // attempt 3: hits MaxDelay
		80*time.Millisecond - 1, // attempt 4: capped
	} {
		c.backoff(attempt, 0)
		if got := st.slept[attempt]; got != want {
			t.Errorf("attempt %d slept %v, want %v", attempt, got, want)
		}
	}
	// A shift past 63 bits goes non-positive; the ceiling must saturate at
	// MaxDelay instead of sleeping zero (or negative) forever.
	c.backoff(200, 0)
	if got := st.slept[len(st.slept)-1]; got != 80*time.Millisecond-1 {
		t.Errorf("overflowed attempt slept %v", got)
	}

	// Retry-After above the jitter draw wins...
	c.backoff(0, time.Second)
	if got := st.slept[len(st.slept)-1]; got != time.Second {
		t.Errorf("Retry-After floor: slept %v, want 1s", got)
	}
	// ...and below it, the jitter stands: a stale tiny hint cannot shrink
	// an already-large backoff.
	c.backoff(3, time.Millisecond)
	if got := st.slept[len(st.slept)-1]; got != 80*time.Millisecond-1 {
		t.Errorf("small Retry-After shrank the backoff to %v", got)
	}
}

func TestParseRetryAfter(t *testing.T) {
	for h, want := range map[string]time.Duration{
		"":     0,
		"2":    2 * time.Second,
		"0":    0,
		"-3":   0,
		"soon": 0, // HTTP-date form is unsupported, treated as absent
	} {
		if got := parseRetryAfter(h); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", h, got, want)
		}
	}
}

// TestBreakerProbeFailureReopens: a failed half-open probe snaps the
// breaker open again for a full cooldown, and while the probe is in
// flight every other call is rejected without touching the network.
func TestBreakerProbeFailureReopens(t *testing.T) {
	var n atomic.Int32
	healthy := atomic.Bool{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		if healthy.Load() {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := New(Config{
		BaseURL:          ts.URL,
		MaxAttempts:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second,
	})
	st := stubClock(c)

	for i := 0; i < 2; i++ {
		if _, err := c.Health(); err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
	}
	if _, err := c.Health(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("breaker not open: %v", err)
	}

	// Cooldown lapses but the daemon is still down: the probe goes out,
	// fails, and the breaker reopens from the probe's failure time.
	st.now = st.now.Add(11 * time.Second)
	if _, err := c.Health(); err == nil || errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("failed probe: %v", err)
	}
	if got := n.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 trips + 1 probe)", got)
	}
	if _, err := c.Health(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("breaker did not reopen after failed probe: %v", err)
	}
	if got := n.Load(); got != 3 {
		t.Fatalf("reopened breaker hit the server: %d calls", got)
	}

	// Probe exclusion: with the cooldown lapsed, exactly one call may be
	// the probe; a second admit while it is in flight is rejected.
	st.now = st.now.Add(11 * time.Second)
	if err := c.breakerAdmit(); err != nil {
		t.Fatalf("probe admit: %v", err)
	}
	if err := c.breakerAdmit(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second call admitted beside the probe: %v", err)
	}
	// The probe succeeds: breaker closes, everyone is admitted again.
	healthy.Store(true)
	c.recordOutcome(nil)
	if _, err := c.Health(); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
	if err := c.breakerAdmit(); err != nil {
		t.Fatalf("closed breaker rejected a call: %v", err)
	}
}

// TestDeterministicKeySequenceReplay: two clients with equal seeds mint
// the identical idempotency-key sequence across many calls and across
// retries, so a replayed chaos run re-presents the same keys and the
// server's dedupe window recognizes every retry.
func TestDeterministicKeySequenceReplay(t *testing.T) {
	var n atomic.Int32
	keys := make(chan string, 64)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		keys <- r.Header.Get("Idempotency-Key")
		// Every third attempt fails transiently, forcing retries into the
		// sequence without advancing the per-call key.
		if n.Add(1)%3 == 0 {
			http.Error(w, `{"error":"overload"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	sequence := func(seed int64) []string {
		c := New(Config{BaseURL: ts.URL, Seed: seed, DeterministicKeys: true, BaseDelay: time.Microsecond})
		stubClock(c)
		for i := 0; i < 6; i++ {
			if _, err := c.Announce("s1", "p"); err != nil {
				t.Fatal(err)
			}
		}
		var got []string
		for len(keys) > 0 {
			got = append(got, <-keys)
		}
		return got
	}

	a := sequence(7)
	n.Store(0) // realign the failure pattern for the replay
	b := sequence(7)
	if len(a) != len(b) {
		t.Fatalf("replay made %d attempts, original made %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("key %d diverged: %q vs %q", i, a[i], b[i])
		}
	}
	// Retries reuse their call's key, so the attempt stream must contain
	// adjacent duplicates (the transient failures) but distinct keys per
	// logical call.
	dups, distinct := 0, map[string]bool{}
	for i, k := range a {
		distinct[k] = true
		if i > 0 && a[i-1] == k {
			dups++
		}
	}
	if dups == 0 {
		t.Fatal("no retry reused its key; the failure pattern never fired")
	}
	if len(distinct) != 6 {
		t.Fatalf("%d distinct keys for 6 logical calls", len(distinct))
	}

	n.Store(0)
	c := sequence(8)
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds minted identical key sequences")
		}
	}
}
