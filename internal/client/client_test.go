package client

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// stubTime wires deterministic time into a client: sleeps are recorded,
// the clock only moves when the test says so.
type stubTime struct {
	now    time.Time
	slept  []time.Duration
	client *Client
}

func stubClock(c *Client) *stubTime {
	st := &stubTime{now: time.Unix(1700000000, 0), client: c}
	c.now = func() time.Time { return st.now }
	c.sleep = func(d time.Duration) { st.slept = append(st.slept, d) }
	return st
}

// TestRetryReusesIdempotencyKey: transient failures (429 with Retry-After,
// then 503) are retried with the SAME idempotency key, and the call
// converges on the eventual 200.
func TestRetryReusesIdempotencyKey(t *testing.T) {
	var keys []string
	var n atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		switch n.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"over capacity"}`, http.StatusTooManyRequests)
		case 2:
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		default:
			w.Write([]byte(`{"session":"s1","system":"muddy:2","agents":2,"link":0,"worlds":4,"quotient":4,"marked":3}`))
		}
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond})
	st := stubClock(c)
	got, err := c.Open("muddy:2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Session != "s1" || got.Worlds != 4 {
		t.Fatalf("open result: %+v", got)
	}
	if len(keys) != 3 {
		t.Fatalf("attempts: %d", len(keys))
	}
	if keys[0] == "" || keys[0] != keys[1] || keys[1] != keys[2] {
		t.Fatalf("idempotency keys drift across retries: %v", keys)
	}
	if c.Retries() != 2 {
		t.Fatalf("retries counter: %d", c.Retries())
	}
	// The first backoff honors Retry-After: 1s floor beats the tiny jitter.
	if len(st.slept) != 2 || st.slept[0] < time.Second {
		t.Fatalf("backoff sleeps: %v", st.slept)
	}
	// The second (no Retry-After) is full jitter under the ceiling.
	if st.slept[1] >= 8*time.Millisecond {
		t.Fatalf("jitter exceeded ceiling: %v", st.slept[1])
	}
}

// TestDistinctCallsDistinctKeys: two logical calls must never share a key,
// or the server would collapse them into one.
func TestDistinctCallsDistinctKeys(t *testing.T) {
	var keys []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL, DeterministicKeys: true})
	stubClock(c)
	if _, err := c.Announce("s1", "p"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Announce("s1", "q"); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] == keys[1] {
		t.Fatalf("keys: %v", keys)
	}

	// Equal seeds with DeterministicKeys mint the identical key sequence
	// (chaos runs replay).
	c2 := New(Config{BaseURL: ts.URL, DeterministicKeys: true})
	stubClock(c2)
	if _, err := c2.Announce("s1", "p"); err != nil {
		t.Fatal(err)
	}
	if keys[2] != keys[0] {
		t.Fatalf("key sequence not deterministic: %q vs %q", keys[2], keys[0])
	}

	// Two default clients sharing a seed never collide: each mints its own
	// random prefix, so separate processes can't dedupe each other away.
	c3, c4 := New(Config{BaseURL: ts.URL}), New(Config{BaseURL: ts.URL})
	stubClock(c3)
	stubClock(c4)
	if _, err := c3.Announce("s1", "p"); err != nil {
		t.Fatal(err)
	}
	if _, err := c4.Announce("s1", "p"); err != nil {
		t.Fatal(err)
	}
	if keys[3] == keys[4] {
		t.Fatalf("independent clients collided on key %q", keys[3])
	}
}

// TestNonRetryable4xxFailsFast: a definitive server verdict is returned
// as an APIError after one attempt and does not feed the breaker.
func TestNonRetryable4xxFailsFast(t *testing.T) {
	var n atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		http.Error(w, `{"error":"no such session"}`, http.StatusNotFound)
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL, BreakerThreshold: 2})
	stubClock(c)
	for i := 0; i < 5; i++ {
		_, err := c.Eval("s999", server.EvalRequest{Formulas: []string{"p"}})
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Msg != "no such session" {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := n.Load(); got != 5 {
		t.Fatalf("5 calls made %d attempts (retried a 404, or breaker opened)", got)
	}
}

// TestCircuitBreaker: consecutive transport failures open the breaker,
// open-state calls fail fast without touching the network, and after the
// cooldown a half-open probe closes it again on success.
func TestCircuitBreaker(t *testing.T) {
	var n atomic.Int32
	healthy := atomic.Bool{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		if healthy.Load() {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := New(Config{
		BaseURL:          ts.URL,
		MaxAttempts:      1,
		BreakerThreshold: 3,
		BreakerCooldown:  10 * time.Second,
	})
	st := stubClock(c)

	for i := 0; i < 3; i++ {
		if _, err := c.Health(); err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
	}
	if got := n.Load(); got != 3 {
		t.Fatalf("attempts before open: %d", got)
	}
	// Open: calls fail fast, the server sees nothing.
	if _, err := c.Health(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker: %v", err)
	}
	if got := n.Load(); got != 3 {
		t.Fatalf("open breaker still hit the server: %d attempts", got)
	}
	// Cooldown passes; the probe goes through and closes the breaker.
	healthy.Store(true)
	st.now = st.now.Add(11 * time.Second)
	if status, err := c.Health(); err != nil || status != "ok" {
		t.Fatalf("half-open probe: %q, %v", status, err)
	}
	if _, err := c.Health(); err != nil {
		t.Fatalf("after close: %v", err)
	}
	if got := n.Load(); got != 5 {
		t.Fatalf("attempts after recovery: %d", got)
	}
}

// TestExhaustedRetries: a persistently failing endpoint yields the last
// transient error wrapped with the attempt count.
func TestExhaustedRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"overload"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL, MaxAttempts: 3, BaseDelay: time.Microsecond})
	stubClock(c)
	_, err := c.Open("muddy:2", 0)
	if err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if c.Retries() != 2 {
		t.Fatalf("retries: %d", c.Retries())
	}
}

// TestAgainstLiveDaemon drives the real server package end to end through
// the client: the full session lifecycle with idempotent calls.
func TestAgainstLiveDaemon(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL})

	systems, err := c.Systems()
	if err != nil || len(systems) == 0 {
		t.Fatalf("systems: %v, %v", systems, err)
	}
	st, err := c.Open("muddy:3", 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Worlds != 8 {
		t.Fatalf("open: %+v", st)
	}
	ev, err := c.Eval(st.Session, server.EvalRequest{Formulas: []string{"K0 muddy1"}})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Verdicts[0].Count != 4 {
		t.Fatalf("eval: %+v", ev)
	}
	st, err = c.Announce(st.Session, "muddy0 | muddy1 | muddy2")
	if err != nil {
		t.Fatal(err)
	}
	if st.Link != 1 || st.Worlds != 7 {
		t.Fatalf("announce: %+v", st)
	}
	if err := c.Close(st.Session); err != nil {
		t.Fatal(err)
	}
	stats, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Opened != 1 || stats.Closed != 1 || stats.Evals != 1 || stats.Announces != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}
