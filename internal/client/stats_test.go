package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// TestStatsAccessor walks the breaker through its whole lifecycle —
// closed, a growing failure run, open, half-open after the cooldown,
// closed again on a successful probe — asserting every transition through
// the Stats telemetry accessor (what a cluster router watches instead of
// shadow-counting failures itself).
func TestStatsAccessor(t *testing.T) {
	var healthy atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if healthy.Load() {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := New(Config{
		BaseURL:          ts.URL,
		MaxAttempts:      1,
		BreakerThreshold: 3,
		BreakerCooldown:  10 * time.Second,
	})
	clk := stubClock(c)

	if st := c.Stats(); st.Breaker != "closed" || st.ConsecutiveFails != 0 {
		t.Fatalf("fresh client stats: %+v", st)
	}
	for i := 1; i <= 2; i++ {
		c.Health()
		if st := c.Stats(); st.Breaker != "closed" || st.ConsecutiveFails != i {
			t.Fatalf("after %d failures: %+v", i, st)
		}
	}
	c.Health() // third consecutive failure opens the breaker
	if st := c.Stats(); st.Breaker != "open" || st.ConsecutiveFails != 3 {
		t.Fatalf("at threshold: %+v", st)
	}

	// Cooldown elapsed but no probe admitted yet: half-open.
	clk.now = clk.now.Add(11 * time.Second)
	if st := c.Stats(); st.Breaker != "half-open" {
		t.Fatalf("after cooldown: %+v", st)
	}

	// A successful probe closes it and resets the run.
	healthy.Store(true)
	if _, err := c.Health(); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if st := c.Stats(); st.Breaker != "closed" || st.ConsecutiveFails != 0 {
		t.Fatalf("after probe success: %+v", st)
	}
}

// TestStatsSheds: 429 and 503 responses are counted as sheds — the
// backpressure signal a router folds into its routing weights.
func TestStatsSheds(t *testing.T) {
	var n atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) {
		case 1:
			http.Error(w, `{"error":"over capacity"}`, http.StatusTooManyRequests)
		case 2:
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		default:
			w.Write([]byte(`{"session":"s1","system":"muddy:2","agents":2,"link":0,"worlds":4,"quotient":4,"marked":3}`))
		}
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, BaseDelay: time.Microsecond})
	stubClock(c)
	if _, err := c.Open("muddy:2", 0); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Sheds != 2 || st.Retries != 2 {
		t.Fatalf("sheds %d retries %d, want 2 and 2", st.Sheds, st.Retries)
	}
	if st.Breaker != "closed" || st.ConsecutiveFails != 0 {
		t.Fatalf("converged call left breaker state: %+v", st)
	}
}

// TestCancelledCallIsNeutral: a context-cancelled call (the hedge-loser
// path) reports the cancellation but moves neither the failure run nor
// the breaker — cancelling a healthy shard's request must not eject it.
func TestCancelledCallIsNeutral(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, MaxAttempts: 1, BreakerThreshold: 1})
	stubClock(c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.EvalCtx(ctx, "s1", server.EvalRequest{Formulas: []string{"p"}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call error: %v", err)
	}
	if st := c.Stats(); st.Breaker != "closed" || st.ConsecutiveFails != 0 {
		t.Fatalf("cancelled call fed the breaker: %+v", st)
	}
}
