package intern

import "testing"

func TestTable(t *testing.T) {
	tb := NewTable()
	if tb.Len() != 0 {
		t.Fatalf("fresh table has %d symbols", tb.Len())
	}
	a := tb.Intern("alpha")
	b := tb.Intern("beta")
	if a == b {
		t.Fatalf("distinct strings share id %d", a)
	}
	if got := tb.Intern("alpha"); got != a {
		t.Fatalf("re-interning alpha: got %d, want %d", got, a)
	}
	if tb.Sym(a) != "alpha" || tb.Sym(b) != "beta" {
		t.Fatalf("Sym round-trip broken: %q, %q", tb.Sym(a), tb.Sym(b))
	}
	if id, ok := tb.Lookup("beta"); !ok || id != b {
		t.Fatalf("Lookup(beta) = %d, %v", id, ok)
	}
	if _, ok := tb.Lookup("gamma"); ok {
		t.Fatal("Lookup found a symbol that was never interned")
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}

	tb.Reset()
	if tb.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tb.Len())
	}
	if _, ok := tb.Lookup("alpha"); ok {
		t.Fatal("Reset kept an old symbol")
	}
	// Ids restart from zero after a reset.
	if got := tb.Intern("gamma"); got != 0 {
		t.Fatalf("first id after Reset = %d, want 0", got)
	}
}

func TestTableDenseIDs(t *testing.T) {
	tb := NewTable()
	for i := 0; i < 100; i++ {
		s := string(rune('a' + i%26))
		id := tb.Intern(s)
		if int(id) >= tb.Len() {
			t.Fatalf("id %d out of dense range [0,%d)", id, tb.Len())
		}
	}
	if tb.Len() != 26 {
		t.Fatalf("Len = %d, want 26", tb.Len())
	}
}
