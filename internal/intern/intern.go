// Package intern provides a small string interner: a bijection between
// strings and dense int32 symbol ids.
//
// The model-construction pipeline uses interners in two places. Ground-fact
// names are interned by the kripke.Builder so that valuation columns are
// indexed by symbol id and each distinct fact name is hashed once per
// construction, not once per (world, fact) pair. View keys (the local-history
// strings of the runs package) are interned per agent to turn "partition the
// points by equal view" into a single pass that emits dense class ids
// directly — the ids a partition table wants — with one map probe per point
// and no union-find.
package intern

// Table maps strings to dense ids in [0, Len()) and back. The zero value is
// not ready for use; call NewTable. A Table is not safe for concurrent use.
type Table struct {
	idx  map[string]int32
	syms []string
}

// NewTable returns an empty interner.
func NewTable() *Table {
	return &Table{idx: make(map[string]int32)}
}

// Intern returns the id of s, assigning the next free id on first sight.
func (t *Table) Intern(s string) int32 {
	if id, ok := t.idx[s]; ok {
		return id
	}
	id := int32(len(t.syms))
	t.idx[s] = id
	t.syms = append(t.syms, s)
	return id
}

// Lookup returns the id of s without interning it.
func (t *Table) Lookup(s string) (int32, bool) {
	id, ok := t.idx[s]
	return id, ok
}

// Sym returns the string with the given id.
func (t *Table) Sym(id int32) string { return t.syms[id] }

// Len returns the number of interned symbols.
func (t *Table) Len() int { return len(t.syms) }

// Reset forgets all symbols but keeps the backing storage, so one Table can
// be reused across independent keyspaces (e.g. one agent's view keys after
// another's) without reallocating the map.
func (t *Table) Reset() {
	clear(t.idx)
	t.syms = t.syms[:0]
}
