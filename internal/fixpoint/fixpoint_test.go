package fixpoint

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/kripke"
	"repro/internal/logic"
	"repro/internal/protocol"
	"repro/internal/runs"
)

// chain builds the two-agent chain-of-ignorance model (see the kripke
// tests): p holds everywhere but the last world; E^k p shrinks one world
// per application.
func chain(n int) *kripke.Model {
	m := kripke.NewModel(n, 2)
	for w := 0; w < n-1; w++ {
		m.SetTrue(w, "p")
	}
	for w := 0; w+1 < n; w++ {
		m.Indistinguishable(w%2, w, w+1)
	}
	return m
}

func TestGFPOfCommonKnowledgeBody(t *testing.T) {
	m := chain(10)
	body := logic.MustParse("E (p & X)")
	f := FuncOf(m, body, "X", nil)
	gfp, iters, err := GFP(f, m.NumWorlds())
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Eval(logic.MustParse("C p"))
	if err != nil {
		t.Fatal(err)
	}
	if !gfp.Equal(c) {
		t.Error("GFP of E(p ∧ X) != C p")
	}
	if iters < 5 {
		t.Errorf("chain(10) converged in %d iterations; expected a slow descent", iters)
	}
}

func TestLFPLeastVsGreatest(t *testing.T) {
	m := chain(8)
	body := logic.MustParse("E (p & X)")
	f := FuncOf(m, body, "X", nil)
	lfp, _, err := LFP(f, m.NumWorlds())
	if err != nil {
		t.Fatal(err)
	}
	gfp, _, err := GFP(f, m.NumWorlds())
	if err != nil {
		t.Fatal(err)
	}
	if !lfp.SubsetOf(gfp) {
		t.Error("μ should be contained in ν")
	}
	// For this body the least fixed point is empty (false is a solution,
	// as the paper notes).
	if !lfp.IsEmpty() {
		t.Errorf("LFP = %s, want empty", lfp)
	}
	// Both are fixed points.
	for _, fp := range []*bitset.Set{lfp, gfp} {
		ok, err := IsFixedPoint(f, fp)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Error("reported fixed point is not fixed")
		}
	}
}

func TestMonotonicityFollowsFromPositivity(t *testing.T) {
	m := chain(12)
	rng := rand.New(rand.NewSource(7))
	positive := []string{
		"E (p & X)",
		"K0 X | p",
		"C{0,1} (X | p)",
		"D (p -> X)",
		"S X & true",
	}
	for _, src := range positive {
		body := logic.MustParse(src)
		if err := CheckMonotone(FuncOf(m, body, "X", nil), m.NumWorlds(), 60, rng); err != nil {
			t.Errorf("%s should be monotone: %v", src, err)
		}
	}
	// A negative occurrence breaks monotonicity (constructed directly;
	// the parser rejects ~X under ν but FuncOf takes raw bodies).
	neg := logic.Neg(logic.X("X"))
	if err := CheckMonotone(FuncOf(m, neg, "X", nil), m.NumWorlds(), 60, rng); err == nil {
		t.Error("~X should not be monotone")
	}
}

func TestGeneralFixedPointAxiom(t *testing.T) {
	m := chain(9)
	for _, src := range []string{
		"nu X . E (p & X)",
		"nu X . p & K0 X",
		"nu X . p | E X",
	} {
		nu, ok := logic.MustParse(src).(logic.Nu)
		if !ok {
			t.Fatalf("%s did not parse to Nu", src)
		}
		if err := CheckFixedPointAxiom(m, nu); err != nil {
			t.Error(err)
		}
	}
}

func TestGeneralInductionRule(t *testing.T) {
	m := chain(9)
	nu := logic.MustParse("nu X . E (p & X)").(logic.Nu)
	samples := []logic.Formula{
		logic.P("p"),
		logic.C(nil, logic.P("p")),
		logic.False,
		logic.Disj(logic.P("p"), logic.Neg(logic.P("p"))),
	}
	if err := CheckInductionRule(m, nu, samples); err != nil {
		t.Error(err)
	}
}

// TestQuickGFPAgreesWithEvalNu cross-checks the package GFP against the
// kripke evaluator's ν on random models.
func TestQuickGFPAgreesWithEvalNu(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		m := kripke.NewModel(n, 2)
		for w := 0; w < n; w++ {
			if rng.Intn(2) == 0 {
				m.SetTrue(w, "p")
			}
		}
		for a := 0; a < 2; a++ {
			for k := 0; k < n; k++ {
				m.Indistinguishable(a, rng.Intn(n), rng.Intn(n))
			}
		}
		body := logic.MustParse("E (p & X)")
		gfp, _, err := GFP(FuncOf(m, body, "X", nil), n)
		if err != nil {
			return false
		}
		direct, err := m.Eval(logic.Nu{Var: "X", Body: body})
		if err != nil {
			return false
		}
		return gfp.Equal(direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestEventualTowerExceedsGFP reproduces the Appendix A / Section 11
// counterexample finitely: on the coordinated-attack system, the tower
// (E^⋄)^k intent holds at points where the greatest fixed point C^⋄ intent
// does not — the gfp is strictly below the infinite conjunction.
func TestEventualTowerExceedsGFP(t *testing.T) {
	// A handshake over an unreliable channel, initiator only in "go".
	step := func(v protocol.LocalView) []protocol.Outgoing {
		peer := 1 - v.Me
		if v.Me == 0 && v.Init == "go" && len(v.Sent) == 0 && len(v.Received) == 0 {
			return []protocol.Outgoing{{To: peer, Payload: "m1"}}
		}
		if len(v.Received) > 0 {
			replies := len(v.Sent)
			if v.Me == 0 && v.Init == "go" {
				replies--
			}
			if replies < len(v.Received) {
				return []protocol.Outgoing{{To: peer, Payload: "mx"}}
			}
		}
		return nil
	}
	protos := []protocol.Protocol{protocol.Func(step), protocol.Func(step)}
	cfgs := []protocol.Config{
		{Name: "go", Init: []string{"go", ""}},
		{Name: "idle", Init: []string{"", ""}},
	}
	sys, err := protocol.Generate(protos, protocol.Unreliable{Delay: 1}, cfgs, 10,
		protocol.Options{MaxMessagesPerRun: 4})
	if err != nil {
		t.Fatal(err)
	}
	pm := sys.Model(runs.CompleteHistoryView, runs.Interpretation{
		"intent": func(r *runs.Run, _ runs.Time) bool { return r.Init[0] == "go" },
	})
	op := func(f logic.Formula) logic.Formula { return logic.Eev(nil, f) }
	tower, gfp, err := TowerVsGFP(pm.Model, op, logic.P("intent"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !gfp.SubsetOf(tower) {
		t.Error("gfp should imply every tower level")
	}
	diff := tower.Clone()
	diff.AndNot(gfp)
	if diff.IsEmpty() {
		t.Error("expected points where the (E^⋄)^k tower holds but C^⋄ fails")
	}
	if !gfp.IsEmpty() {
		t.Errorf("C^⋄ intent should be empty here, got %s", gfp)
	}
}

func TestGFPNonConvergenceReported(t *testing.T) {
	// A deliberately oscillating (non-monotone) function: complement.
	f := func(a *bitset.Set) (*bitset.Set, error) {
		return bitset.Not(a), nil
	}
	if _, _, err := GFP(f, 8); err == nil {
		t.Error("complement has no fixed point; GFP should report failure")
	}
}

func BenchmarkGFPChain(b *testing.B) {
	m := chain(256)
	body := logic.MustParse("E (p & X)")
	f := FuncOf(m, body, "X", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GFP(f, m.NumWorlds()); err != nil {
			b.Fatal(err)
		}
	}
}
