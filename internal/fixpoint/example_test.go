package fixpoint_test

import (
	"fmt"

	"repro/internal/fixpoint"
	"repro/internal/kripke"
	"repro/internal/logic"
)

// ExampleFuncOf views the Appendix A body E(p ∧ X) as a set function of X
// and computes its greatest fixed point by downward iteration — the
// fixed-point characterization of common knowledge. On a 6-world chain of
// ignorance the iteration sheds one world per step, illustrating why no
// finite level of "everyone knows that everyone knows…" reaches C p.
func ExampleFuncOf() {
	n := 6
	m := kripke.NewModel(n, 2)
	for w := 0; w < n-1; w++ {
		m.SetTrue(w, "p")
	}
	for w := 0; w+1 < n; w++ {
		m.Indistinguishable(w%2, w, w+1)
	}

	f := fixpoint.FuncOf(m, logic.MustParse("E (p & X)"), "X", nil)
	gfp, iters, err := fixpoint.GFP(f, n)
	if err != nil {
		panic(err)
	}
	fmt.Printf("gfp of E(p & X) after %d iterations: %s\n", iters, gfp)

	ck, err := m.Eval(logic.MustParse("C p"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("C p by reachability components:      %s\n", ck)
	// Output:
	// gfp of E(p & X) after 5 iterations: {}
	// C p by reachability components:      {}
}

// ExampleGFPWorklist computes the same fixed point by chaotic iteration:
// kripke.Model.SupportStep presents X ↦ E(p ∧ X) in support form, and the
// worklist propagates only the worlds that left the approximant — same
// result, same round count, linear instead of quadratic total work.
func ExampleGFPWorklist() {
	n := 6
	m := kripke.NewModel(n, 2)
	for w := 0; w < n-1; w++ {
		m.SetTrue(w, "p")
	}
	for w := 0; w+1 < n; w++ {
		m.Indistinguishable(w%2, w, w+1)
	}

	first, step, err := m.SupportStep(nil, logic.P("p"))
	if err != nil {
		panic(err)
	}
	gfp, rounds := fixpoint.GFPWorklist(first, step)
	fmt.Printf("worklist gfp after %d rounds: %s\n", rounds, gfp)
	// Output:
	// worklist gfp after 5 rounds: {}
}
