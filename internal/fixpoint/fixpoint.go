// Package fixpoint implements the Appendix A view of formulas as set
// functions: a formula with a free propositional variable X denotes a
// function from world sets to world sets, fixed-point formulas νX.φ / μX.φ
// denote its greatest/least fixed points (Knaster–Tarski), and the
// syntactic positivity restriction guarantees monotonicity.
//
// The package provides the function view, iterative fixed-point computation
// with iteration counts, monotonicity probes, and semantic checkers for the
// general fixed-point axiom νX.φ ≡ φ[νX.φ/X] and induction rule
// (from ψ ⊃ φ[ψ/X] infer ψ ⊃ νX.φ) that generalize C1 and C2.
package fixpoint

import (
	"fmt"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/kripke"
	"repro/internal/logic"
)

// SetFunc maps world sets to world sets — the denotation φ^M of Appendix A.
type SetFunc func(*bitset.Set) (*bitset.Set, error)

// FuncOf returns the set function denoted by body, viewed as a function of
// the variable x, over the model m (with any other free variables resolved
// by env).
func FuncOf(m *kripke.Model, body logic.Formula, x string, env kripke.Env) SetFunc {
	return func(a *bitset.Set) (*bitset.Set, error) {
		e := kripke.Env{}
		for k, v := range env {
			e[k] = v
		}
		e[x] = a
		return m.EvalEnv(body, e)
	}
}

// GFP computes the greatest fixed point of f over a universe of n worlds by
// downward iteration from the full set, returning the fixed point and the
// number of iterations to convergence. Non-monotone functions may fail to
// converge, which is reported as an error.
func GFP(f SetFunc, n int) (*bitset.Set, int, error) {
	cur := bitset.NewFull(n)
	for i := 0; i <= n+1; i++ {
		next, err := f(cur)
		if err != nil {
			return nil, 0, err
		}
		if next.Equal(cur) {
			return cur, i, nil
		}
		cur = next
	}
	return nil, 0, fmt.Errorf("fixpoint: no convergence after %d iterations", n+1)
}

// DeltaFunc is the chaotic-iteration presentation of a deflationary
// monotone operator F: given the current approximant acc and the set of
// worlds removed from it since the previous call, it removes from acc (in
// place) every world whose F-support intersects removed, writes the worlds
// it newly removed into next (which the caller has cleared), and reports
// whether it removed anything. kripke.Model.SupportStep builds one for the
// operators X ↦ op_G(φ ∧ X) of the common-knowledge characterization.
type DeltaFunc func(acc, removed, next *bitset.Set) bool

// GFPWorklist computes the greatest fixed point of the operator presented
// by (first, step) via worklist/chaotic iteration: acc starts at
// first = F(full universe), the initial frontier is the complement of acc,
// and each round propagates only the frontier — the worlds that left the
// approximant — instead of re-applying F to the whole set. Worlds whose
// support classes already failed are no-ops inside step, so the total work
// is proportional to the model, not to iterations × model.
//
// It returns the fixed point (first, mutated in place) and the round count,
// which for a deflationary F equals the Knaster–Tarski iteration count that
// GFP would report.
func GFPWorklist(first *bitset.Set, step DeltaFunc) (*bitset.Set, int) {
	acc := first
	removed := bitset.Not(acc)
	if removed.IsEmpty() {
		return acc, 0 // F(full) = full: the universe is already closed
	}
	next := bitset.New(acc.Cap())
	k := 1
	for {
		next.Clear()
		if !step(acc, removed, next) {
			return acc, k
		}
		k++
		removed, next = next, removed
	}
}

// LFP computes the least fixed point of f by upward iteration from the
// empty set.
func LFP(f SetFunc, n int) (*bitset.Set, int, error) {
	cur := bitset.New(n)
	for i := 0; i <= n+1; i++ {
		next, err := f(cur)
		if err != nil {
			return nil, 0, err
		}
		if next.Equal(cur) {
			return cur, i, nil
		}
		cur = next
	}
	return nil, 0, fmt.Errorf("fixpoint: no convergence after %d iterations", n+1)
}

// IsFixedPoint reports whether f(a) = a.
func IsFixedPoint(f SetFunc, a *bitset.Set) (bool, error) {
	b, err := f(a)
	if err != nil {
		return false, err
	}
	return b.Equal(a), nil
}

// CheckMonotone probes monotonicity of f on random nested pairs A ⊆ B: it
// verifies f(A) ⊆ f(B). It is a sound refutation procedure and a
// probabilistic confirmation.
func CheckMonotone(f SetFunc, n int, trials int, rng *rand.Rand) error {
	for trial := 0; trial < trials; trial++ {
		a := bitset.New(n)
		b := bitset.New(n)
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0: // in both
				a.Add(i)
				b.Add(i)
			case 1: // only in b
				b.Add(i)
			}
		}
		fa, err := f(a)
		if err != nil {
			return err
		}
		fb, err := f(b)
		if err != nil {
			return err
		}
		if !fa.SubsetOf(fb) {
			return fmt.Errorf("fixpoint: not monotone: f(%s) ⊄ f(%s)", a, b)
		}
	}
	return nil
}

// CheckFixedPointAxiom verifies the general fixed point axiom
// νX.φ ≡ φ[νX.φ/X] semantically on the model.
func CheckFixedPointAxiom(m *kripke.Model, nu logic.Nu) error {
	lhs, err := m.Eval(nu)
	if err != nil {
		return err
	}
	unfolded := logic.Substitute(nu.Body, nu.Var, nu)
	rhs, err := m.Eval(unfolded)
	if err != nil {
		return err
	}
	if !lhs.Equal(rhs) {
		return fmt.Errorf("fixpoint: νX axiom fails: %s != its unfolding", nu)
	}
	return nil
}

// CheckInductionRule verifies the general induction rule on the model: for
// each sample ψ, if ψ ⊃ φ[ψ/X] is valid then ψ ⊃ νX.φ is valid.
func CheckInductionRule(m *kripke.Model, nu logic.Nu, samples []logic.Formula) error {
	for _, psi := range samples {
		prem, err := m.Valid(logic.Imp(psi, logic.Substitute(nu.Body, nu.Var, psi)))
		if err != nil {
			return err
		}
		if !prem {
			continue
		}
		conc, err := m.Valid(logic.Imp(psi, nu))
		if err != nil {
			return err
		}
		if !conc {
			return fmt.Errorf("fixpoint: induction rule fails for ψ = %s on %s", psi, nu)
		}
	}
	return nil
}

// TowerVsGFP compares the naive operator tower op^k(φ) (e.g. (E^⋄)^k φ)
// against the greatest fixed point of X ≡ op(φ ∧ X) (e.g. C^⋄ φ) on a
// model. The paper's Appendix A shows the two can differ: the gfp implies
// every tower level, but not conversely. It returns the set where the whole
// tower (up to maxK) holds and the gfp set.
func TowerVsGFP(m *kripke.Model, op func(logic.Formula) logic.Formula, phi logic.Formula, maxK int) (tower, gfp *bitset.Set, err error) {
	tower = bitset.NewFull(m.NumWorlds())
	cur := phi
	for k := 1; k <= maxK; k++ {
		cur = op(cur)
		s, err := m.Eval(cur)
		if err != nil {
			return nil, nil, err
		}
		tower.And(s)
	}
	f := func(a *bitset.Set) (*bitset.Set, error) {
		phiSet, err := m.Eval(phi)
		if err != nil {
			return nil, err
		}
		phiSet.And(a)
		// op applied to an arbitrary set: encode via a fresh variable.
		return m.EvalEnv(op(logic.X("__t")), kripke.Env{"__t": phiSet})
	}
	gfp, _, err = GFP(f, m.NumWorlds())
	if err != nil {
		return nil, nil, err
	}
	return tower, gfp, nil
}
