package fixpoint

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kripke"
	"repro/internal/logic"
)

// TestQuickGFPWorklistAgrees: chaotic iteration over the kripke support
// stepper must compute the same fixed point, in the same number of rounds,
// as the generic downward iteration of the same operator — and both must
// equal C_G φ.
func TestQuickGFPWorklistAgrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		worlds := 2 + rng.Intn(40)
		agents := 1 + rng.Intn(3)
		m := kripke.NewModel(worlds, agents)
		for w := 0; w < worlds; w++ {
			if rng.Intn(2) == 0 {
				m.SetTrue(w, "p")
			}
		}
		for a := 0; a < agents; a++ {
			for i := rng.Intn(worlds); i > 0; i-- {
				m.Indistinguishable(a, rng.Intn(worlds), rng.Intn(worlds))
			}
		}
		phi := logic.P("p")

		first, step, err := m.SupportStep(nil, phi)
		if err != nil {
			t.Fatal(err)
		}
		wl, wlRounds := GFPWorklist(first, step)

		fn := FuncOf(m, logic.E(nil, logic.Conj(phi, logic.X("X"))), "X", nil)
		gfp, gfpIters, err := GFP(fn, worlds)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := m.Eval(logic.C(nil, phi))
		if err != nil {
			t.Fatal(err)
		}
		if !wl.Equal(gfp) || !wl.Equal(direct) {
			t.Errorf("seed %d: worklist %s, GFP %s, C %s disagree", seed, wl, gfp, direct)
			return false
		}
		if wlRounds != gfpIters {
			t.Errorf("seed %d: worklist %d rounds, GFP %d iterations", seed, wlRounds, gfpIters)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
