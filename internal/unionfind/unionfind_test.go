package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSingletons(t *testing.T) {
	d := New(5)
	if got := d.Components(); got != 5 {
		t.Fatalf("Components() = %d, want 5", got)
	}
	for i := 0; i < 5; i++ {
		if d.Find(i) != i {
			t.Errorf("Find(%d) = %d, want %d", i, d.Find(i), i)
		}
		if d.SizeOf(i) != 1 {
			t.Errorf("SizeOf(%d) = %d, want 1", i, d.SizeOf(i))
		}
	}
}

func TestUnionMerges(t *testing.T) {
	d := New(6)
	if !d.Union(0, 1) {
		t.Error("first Union(0,1) should merge")
	}
	if d.Union(0, 1) {
		t.Error("second Union(0,1) should be a no-op")
	}
	if !d.Same(0, 1) {
		t.Error("0 and 1 should be in the same set")
	}
	if d.Same(0, 2) {
		t.Error("0 and 2 should be in different sets")
	}
	d.Union(2, 3)
	d.Union(1, 3)
	if !d.Same(0, 2) {
		t.Error("transitive union failed")
	}
	if got := d.Components(); got != 3 { // {0,1,2,3}, {4}, {5}
		t.Errorf("Components() = %d, want 3", got)
	}
	if got := d.SizeOf(3); got != 4 {
		t.Errorf("SizeOf(3) = %d, want 4", got)
	}
}

func TestCompIDsDense(t *testing.T) {
	d := New(7)
	d.Union(0, 3)
	d.Union(1, 4)
	d.Union(4, 5)
	ids := d.CompIDs()
	if len(ids) != 7 {
		t.Fatalf("len(ids) = %d", len(ids))
	}
	maxID := 0
	for _, id := range ids {
		if id > maxID {
			maxID = id
		}
	}
	if maxID != d.Components()-1 {
		t.Errorf("ids not dense: max %d, components %d", maxID, d.Components())
	}
	if ids[0] != ids[3] || ids[1] != ids[4] || ids[4] != ids[5] {
		t.Error("ids disagree with unions")
	}
	if ids[0] == ids[1] || ids[2] == ids[6] && ids[2] == ids[0] {
		t.Error("distinct components share an id")
	}
}

func TestGroups(t *testing.T) {
	d := New(5)
	d.Union(0, 2)
	d.Union(2, 4)
	groups := d.Groups()
	if len(groups) != 3 {
		t.Fatalf("len(groups) = %d, want 3", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += len(g)
		for i := 1; i < len(g); i++ {
			if g[i-1] >= g[i] {
				t.Error("group members not in increasing order")
			}
			if !d.Same(g[0], g[i]) {
				t.Error("group contains members of different sets")
			}
		}
	}
	if total != 5 {
		t.Errorf("groups cover %d elements, want 5", total)
	}
}

func TestZeroAndNegative(t *testing.T) {
	d := New(0)
	if d.Len() != 0 || d.Components() != 0 {
		t.Error("empty DSU malformed")
	}
	d = New(-3)
	if d.Len() != 0 {
		t.Error("negative size should clamp to zero")
	}
}

// TestQuickEquivalenceRelation verifies that Same is an equivalence relation
// consistent with an explicitly tracked reference partition.
func TestQuickEquivalenceRelation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		d := New(n)
		// reference: naive labeling
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for k := 0; k < n; k++ {
			x, y := rng.Intn(n), rng.Intn(n)
			merged := d.Union(x, y)
			if merged == (label[x] == label[y]) {
				return false // Union's report disagrees with reference
			}
			if label[x] != label[y] {
				relabel(label[x], label[y])
			}
		}
		// components count agrees
		uniq := map[int]bool{}
		for _, l := range label {
			uniq[l] = true
		}
		if len(uniq) != d.Components() {
			return false
		}
		// pairwise Same agrees with labels
		for k := 0; k < 50; k++ {
			x, y := rng.Intn(n), rng.Intn(n)
			if d.Same(x, y) != (label[x] == label[y]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	const n = 1 << 14
	rng := rand.New(rand.NewSource(1))
	pairs := make([][2]int, n)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New(n)
		for _, p := range pairs {
			d.Union(p[0], p[1])
		}
	}
}
