// Package unionfind implements a disjoint-set union (DSU) structure with
// path compression and union by size.
//
// The epistemic model checker uses DSU to compute the G-reachability
// components of Section 6 of Halpern & Moses: common knowledge C_G φ holds
// at a point exactly if φ holds at every point in the same component of the
// union of the indistinguishability relations of the agents in G.
package unionfind

// DSU is a disjoint-set union over the universe [0, n).
type DSU struct {
	parent []int
	size   []int
	comps  int
}

// New returns a DSU with each element of [0, n) in its own singleton set.
func New(n int) *DSU {
	if n < 0 {
		n = 0
	}
	d := &DSU{
		parent: make([]int, n),
		size:   make([]int, n),
		comps:  n,
	}
	for i := range d.parent {
		d.parent[i] = i
		d.size[i] = 1
	}
	return d
}

// NewFromIDs builds a DSU over [0, len(ids)) whose sets are exactly the
// classes of ids, which must be dense in [0, n). Every element is linked
// directly to the first element of its class, so the structure starts
// fully compressed. It is the bulk constructor used when a partition is
// already known (e.g. restricting a model to a subset of worlds).
func NewFromIDs(ids []int32, n int) *DSU {
	d := &DSU{
		parent: make([]int, len(ids)),
		size:   make([]int, len(ids)),
		comps:  n,
	}
	first := make([]int32, n)
	for i := range first {
		first[i] = -1
	}
	for i, id := range ids {
		if first[id] < 0 {
			first[id] = int32(i)
		}
		r := int(first[id])
		d.parent[i] = r
		d.size[r]++
	}
	return d
}

// Len returns the size of the universe.
func (d *DSU) Len() int { return len(d.parent) }

// Reset reinitializes the structure to n singleton sets, reusing the
// backing arrays when they are large enough. It lets a caller that runs
// many small local union-finds (the component-local reachability rebuild
// of the kripke package) recycle one DSU instead of allocating per group.
func (d *DSU) Reset(n int) {
	if n < 0 {
		n = 0
	}
	if cap(d.parent) < n {
		d.parent = make([]int, n)
		d.size = make([]int, n)
	}
	d.parent = d.parent[:n]
	d.size = d.size[:n]
	d.comps = n
	for i := 0; i < n; i++ {
		d.parent[i] = i
		d.size[i] = 1
	}
}

// Find returns the canonical representative of the set containing x.
func (d *DSU) Find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether a merge
// actually happened (false if they were already in the same set).
func (d *DSU) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.size[rx] < d.size[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = rx
	d.size[rx] += d.size[ry]
	d.comps--
	return true
}

// Same reports whether x and y belong to the same set.
func (d *DSU) Same(x, y int) bool { return d.Find(x) == d.Find(y) }

// Components returns the current number of disjoint sets.
func (d *DSU) Components() int { return d.comps }

// SizeOf returns the size of the set containing x.
func (d *DSU) SizeOf(x int) int { return d.size[d.Find(x)] }

// CompIDs returns a slice mapping each element to a dense component id in
// [0, Components()). Elements share an id iff they are in the same set.
func (d *DSU) CompIDs() []int {
	ids := make([]int, len(d.parent))
	mark := make([]int, len(d.parent))
	for i := range mark {
		mark[i] = -1
	}
	next := 0
	for i := range d.parent {
		r := d.Find(i)
		if mark[r] < 0 {
			mark[r] = next
			next++
		}
		ids[i] = mark[r]
	}
	return ids
}

// CompIDsInto writes the dense component ids of CompIDs into ids, which
// must have length Len(), and returns the number of components. It is the
// allocation-free form used when the caller owns a reusable buffer; mark is
// an optional scratch slice of length Len() (a fresh one is allocated when
// nil or too short).
func (d *DSU) CompIDsInto(ids []int32, mark []int32) int {
	n := len(d.parent)
	if len(mark) < n {
		mark = make([]int32, n)
	}
	for i := 0; i < n; i++ {
		mark[i] = -1
	}
	next := int32(0)
	for i := 0; i < n; i++ {
		r := d.Find(i)
		if mark[r] < 0 {
			mark[r] = next
			next++
		}
		ids[i] = mark[r]
	}
	return int(next)
}

// Groups returns the members of each set, indexed by the dense component ids
// of CompIDs. The inner slices list members in increasing order.
func (d *DSU) Groups() [][]int {
	ids := d.CompIDs()
	groups := make([][]int, d.comps)
	for i, id := range ids {
		groups[id] = append(groups[id], i)
	}
	return groups
}
