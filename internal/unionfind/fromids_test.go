package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompIDsInto(t *testing.T) {
	d := New(6)
	d.Union(0, 3)
	d.Union(4, 5)
	want := d.CompIDs()
	ids := make([]int32, 6)
	n := d.CompIDsInto(ids, nil)
	if n != d.Components() {
		t.Errorf("CompIDsInto count = %d, want %d", n, d.Components())
	}
	for i, w := range want {
		if int(ids[i]) != w {
			t.Errorf("ids[%d] = %d, want %d", i, ids[i], w)
		}
	}
	// With caller-provided scratch, same result.
	mark := make([]int32, 6)
	ids2 := make([]int32, 6)
	if d.CompIDsInto(ids2, mark) != n {
		t.Error("scratch variant disagrees on count")
	}
	for i := range ids {
		if ids[i] != ids2[i] {
			t.Error("scratch variant disagrees on ids")
		}
	}
}

func TestNewFromIDsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		d := New(n)
		for i := 0; i < rng.Intn(3*n); i++ {
			d.Union(rng.Intn(n), rng.Intn(n))
		}
		ids := make([]int32, n)
		k := d.CompIDsInto(ids, nil)
		e := NewFromIDs(ids, k)
		if e.Components() != d.Components() {
			return false
		}
		for i := 0; i < n; i++ {
			if e.SizeOf(i) != d.SizeOf(i) {
				return false
			}
			for j := i + 1; j < n; j += 7 {
				if e.Same(i, j) != d.Same(i, j) {
					return false
				}
			}
		}
		// The rebuilt DSU yields the same dense ids.
		ids2 := make([]int32, n)
		if e.CompIDsInto(ids2, nil) != k {
			return false
		}
		for i := range ids {
			if ids[i] != ids2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
