package kbp

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/protocol"
	"repro/internal/runs"
)

func bitTransmissionFixpoint(t *testing.T, ch protocol.Channel) Result {
	t.Helper()
	prog, cfgs := BitTransmission([]string{"0", "1"}, 2)
	res, err := Fixpoint(prog, ch, cfgs, 8, protocol.Options{MaxMessagesPerRun: 6}, 8)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBitTransmissionReliable(t *testing.T) {
	res := bitTransmissionFixpoint(t, protocol.Reliable{Delay: 1})
	if res.Iterations < 2 {
		t.Errorf("fixed point after %d iterations; expected the program to need warm-up", res.Iterations)
	}
	sys := res.PM.Sys
	for _, r := range sys.Runs {
		var bitSends, acks int
		for _, m := range r.Messages {
			switch {
			case strings.HasPrefix(m.Payload, "bit="):
				bitSends++
				if m.Payload != "bit="+r.Init[0] {
					t.Errorf("run %s: sender transmitted %q", r.Name, m.Payload)
				}
			case m.Payload == "ack":
				acks++
			}
		}
		if bitSends == 0 {
			t.Errorf("run %s: sender never sent its bit", r.Name)
		}
		if acks == 0 {
			t.Errorf("run %s: receiver never acknowledged", r.Name)
		}
	}
}

func TestBitTransmissionKnowledgeAtFixpoint(t *testing.T) {
	res := bitTransmissionFixpoint(t, protocol.Reliable{Delay: 1})
	pm := res.PM
	// At the fixed point the program's epistemic goals hold: by the end of
	// each run the receiver knows the bit, and the sender knows it knows.
	recvKnows := logic.Disj(logic.K(1, logic.P("bit0")), logic.K(1, logic.P("bit1")))
	senderKnows := logic.K(0, recvKnows)
	for _, f := range []logic.Formula{recvKnows, senderKnows} {
		set, err := pm.Eval(f)
		if err != nil {
			t.Fatal(err)
		}
		for ri, r := range pm.Sys.Runs {
			if !set.Contains(pm.World(ri, pm.Sys.Horizon)) {
				t.Errorf("%s fails at the end of run %s", f, r.Name)
			}
		}
	}
	// And the sender stops sending once it knows: no bit message is sent
	// at or after the time the ack enters its history.
	for _, r := range pm.Sys.Runs {
		ackSeen := runs.Lost
		for _, m := range r.Messages {
			if m.Payload == "ack" && m.Delivered() && (ackSeen == runs.Lost || m.RecvTime+1 < ackSeen) {
				ackSeen = m.RecvTime + 1
			}
		}
		if ackSeen == runs.Lost {
			continue
		}
		for _, m := range r.Messages {
			if strings.HasPrefix(m.Payload, "bit=") && m.SendTime > ackSeen {
				t.Errorf("run %s: sender sent the bit at %d after learning at %d", r.Name, m.SendTime, ackSeen)
			}
		}
	}
}

func TestBitTransmissionUnreliable(t *testing.T) {
	// Over an unreliable channel the fixed point still exists; in runs
	// where everything is lost, the sender exhausts its budget and the
	// receiver stays silent.
	res := bitTransmissionFixpoint(t, protocol.Unreliable{Delay: 1})
	sys := res.PM.Sys
	foundAllLost := false
	for _, r := range sys.Runs {
		delivered := 0
		for _, m := range r.Messages {
			if m.Delivered() {
				delivered++
			}
		}
		if delivered == 0 {
			foundAllLost = true
			for _, m := range r.Messages {
				if m.Payload == "ack" {
					t.Errorf("run %s: ack without receiving the bit", r.Name)
				}
			}
		}
	}
	if !foundAllLost {
		t.Error("expected an all-lost run in the unreliable fixed point")
	}
}

func TestParadoxicalProgramHasNoFixpoint(t *testing.T) {
	// "Send iff you have not sent": the iteration oscillates and must be
	// reported as having no fixed point.
	prog := Program{
		Rules: map[int][]Rule{
			0: {{
				Name:     "paradox",
				When:     logic.Neg(logic.P("sent0")),
				To:       1,
				Payload:  func(protocol.LocalView) string { return "x" },
				MaxSends: 1,
			}},
		},
		Interp: runs.Interpretation{
			"sent0": runs.StablyTrue(runs.SentBy("x")),
		},
	}
	cfgs := []protocol.Config{{Name: "c", Init: []string{"", ""}}}
	_, err := Fixpoint(prog, protocol.Reliable{Delay: 1}, cfgs, 4, protocol.Options{}, 6)
	if err == nil {
		t.Fatal("the paradoxical program should have no fixed point")
	}
	if !strings.Contains(err.Error(), "no fixed point") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestEmptyProgramRejected(t *testing.T) {
	if _, err := Fixpoint(Program{}, protocol.Reliable{Delay: 1}, nil, 4, protocol.Options{}, 3); err == nil {
		t.Error("empty program accepted")
	}
}

func TestGuardMustBeViewDetermined(t *testing.T) {
	// A guard about the OTHER processor's unknown state is not determined
	// by the acting processor's view and must be rejected.
	prog := Program{
		Rules: map[int][]Rule{
			0: {{
				Name:    "cheat",
				When:    logic.P("bit1set"), // p1's private state, invisible to p0
				To:      1,
				Payload: func(protocol.LocalView) string { return "x" },
			}},
		},
		Interp: runs.Interpretation{
			"bit1set": func(r *runs.Run, _ runs.Time) bool { return r.Init[1] == "1" },
		},
	}
	cfgs := []protocol.Config{
		{Name: "a", Init: []string{"", "0"}},
		{Name: "b", Init: []string{"", "1"}},
	}
	_, err := Fixpoint(prog, protocol.Reliable{Delay: 1}, cfgs, 4, protocol.Options{}, 5)
	if err == nil {
		t.Fatal("view-undetermined guard accepted")
	}
	if !strings.Contains(err.Error(), "not determined") {
		t.Errorf("unexpected error: %v", err)
	}
}

func BenchmarkBitTransmissionFixpoint(b *testing.B) {
	prog, cfgs := BitTransmission([]string{"0", "1"}, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fixpoint(prog, protocol.Reliable{Delay: 1}, cfgs, 8,
			protocol.Options{MaxMessagesPerRun: 6}, 8); err != nil {
			b.Fatal(err)
		}
	}
}
