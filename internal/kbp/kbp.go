// Package kbp implements knowledge-based protocols (Section 14, after
// Halpern & Fagin): protocols whose actions are guarded by knowledge tests
// — "if K_i φ then send m" — where the knowledge is evaluated in the very
// system the protocol generates. A system is consistent with a
// knowledge-based program when running the program with knowledge evaluated
// over that system regenerates exactly that system.
//
// The package computes such fixed points by iteration: starting from the
// null system (nobody acts), each round evaluates every guard over the
// previous round's system, turns the program into a standard protocol
// (guards become view-indexed truth tables), regenerates the system, and
// stops when the truth tables stabilize. Programs need not have a fixed
// point (a guard like "send iff you have not sent" oscillates); iteration
// is capped and non-convergence reported.
//
// The running example is the bit-transmission problem: a sender repeats its
// bit until it knows the receiver knows the bit; the receiver acknowledges
// once it knows it.
package kbp

import (
	"fmt"
	"strings"

	"repro/internal/logic"
	"repro/internal/protocol"
	"repro/internal/runs"
)

// Rule is one guarded action of a knowledge-based program.
type Rule struct {
	// Name identifies the rule in diagnostics.
	Name string
	// When guards the action. It must be determined by the acting
	// processor's view (e.g. a Boolean combination of K_p-formulas and
	// facts about p's own state); Fixpoint verifies this and fails
	// otherwise.
	When logic.Formula
	// To is the destination processor.
	To int
	// Payload builds the message from the current view (e.g. "bit=" +
	// v.Init).
	Payload func(v protocol.LocalView) string
	// MaxSends caps how many messages with this rule's payload the
	// processor sends per run (0 = unlimited). The cap keeps generated
	// systems finite for "repeat until known" rules.
	MaxSends int
}

// Program is a knowledge-based program: rules per processor plus the
// ground-fact interpretation its guards refer to.
type Program struct {
	Rules  map[int][]Rule
	Interp runs.Interpretation
}

// keyOf canonically serializes a local view. It is the join point between
// guard-truth extraction (from system points) and protocol execution (from
// generator views); both sides use protocol.LocalView.
func keyOf(v protocol.LocalView) string {
	var b strings.Builder
	fmt.Fprintf(&b, "me=%d;init=%s;", v.Me, v.Init)
	if v.HasClock {
		fmt.Fprintf(&b, "clock=%d;", v.Clock)
	}
	for _, s := range v.Sent {
		fmt.Fprintf(&b, "s%d/%s", s.To, s.Payload)
		if s.HasClock {
			fmt.Fprintf(&b, "@%d", s.Clock)
		}
		b.WriteByte(';')
	}
	for _, r := range v.Received {
		fmt.Fprintf(&b, "r%d/%s", r.From, r.Payload)
		if r.HasClock {
			fmt.Fprintf(&b, "@%d", r.Clock)
		}
		b.WriteByte(';')
	}
	return b.String()
}

// truthTables holds, for each processor and rule index, the set of view
// keys at which the guard is true.
type truthTables map[int][]map[string]bool

func (t truthTables) equal(o truthTables) bool {
	if len(t) != len(o) {
		return false
	}
	for p, rules := range t {
		op, ok := o[p]
		if !ok || len(rules) != len(op) {
			return false
		}
		for i := range rules {
			if len(rules[i]) != len(op[i]) {
				return false
			}
			for k, v := range rules[i] {
				if op[i][k] != v {
					return false
				}
			}
		}
	}
	return true
}

// asProtocols compiles the program under fixed truth tables into standard
// protocols.
func (prog Program) asProtocols(n int, truth truthTables) []protocol.Protocol {
	out := make([]protocol.Protocol, n)
	for p := 0; p < n; p++ {
		p := p
		rules := prog.Rules[p]
		out[p] = protocol.Func(func(v protocol.LocalView) []protocol.Outgoing {
			var msgs []protocol.Outgoing
			key := keyOf(v)
			for i, rule := range rules {
				if !truth[p][i][key] {
					continue
				}
				payload := rule.Payload(v)
				if rule.MaxSends > 0 {
					sent := 0
					for _, s := range v.Sent {
						if s.Payload == payload && s.To == rule.To {
							sent++
						}
					}
					if sent >= rule.MaxSends {
						continue
					}
				}
				msgs = append(msgs, protocol.Outgoing{To: rule.To, Payload: payload})
			}
			return msgs
		})
	}
	return out
}

// extractTruth evaluates every guard over the system and indexes the
// results by view key, verifying view-determinacy.
func (prog Program) extractTruth(pm *runs.PointModel, n int) (truthTables, error) {
	truth := make(truthTables, n)
	sys := pm.Sys
	for p := 0; p < n; p++ {
		truth[p] = make([]map[string]bool, len(prog.Rules[p]))
		for i, rule := range prog.Rules[p] {
			set, err := pm.Eval(rule.When)
			if err != nil {
				return nil, fmt.Errorf("kbp: rule %s: %w", rule.Name, err)
			}
			table := make(map[string]bool)
			for ri, r := range sys.Runs {
				for t := runs.Time(0); t <= sys.Horizon; t++ {
					key := keyOf(protocol.ViewAt(r, p, t))
					holds := set.Contains(pm.World(ri, t))
					if prev, seen := table[key]; seen {
						if prev != holds {
							return nil, fmt.Errorf(
								"kbp: guard of rule %s is not determined by p%d's view (differs at (%s,%d))",
								rule.Name, p, r.Name, t)
						}
					} else {
						table[key] = holds
					}
				}
			}
			truth[p][i] = table
		}
	}
	return truth, nil
}

// Result is the outcome of a fixed-point computation.
type Result struct {
	// PM is the point model of the fixed-point system.
	PM *runs.PointModel
	// Iterations is the number of generate/evaluate rounds performed.
	Iterations int
}

// Fixpoint computes a system consistent with the program by iteration from
// the null system, over the given channel, configurations and horizon. It
// fails if the iteration has not stabilized after maxIter rounds.
func Fixpoint(prog Program, ch protocol.Channel, cfgs []protocol.Config, horizon runs.Time,
	opts protocol.Options, maxIter int) (Result, error) {
	n := 0
	for p := range prog.Rules {
		if p+1 > n {
			n = p + 1
		}
	}
	for _, cfg := range cfgs {
		if len(cfg.Init) > n {
			n = len(cfg.Init)
		}
	}
	if n == 0 {
		return Result{}, fmt.Errorf("kbp: empty program")
	}

	truth := make(truthTables, n)
	for p := 0; p < n; p++ {
		truth[p] = make([]map[string]bool, len(prog.Rules[p]))
		for i := range truth[p] {
			truth[p][i] = map[string]bool{}
		}
	}

	var pm *runs.PointModel
	for iter := 1; iter <= maxIter; iter++ {
		sys, err := protocol.Generate(prog.asProtocols(n, truth), ch, cfgs, horizon, opts)
		if err != nil {
			return Result{}, fmt.Errorf("kbp: iteration %d: %w", iter, err)
		}
		pm = sys.Model(runs.CompleteHistoryView, prog.Interp)
		next, err := prog.extractTruth(pm, n)
		if err != nil {
			return Result{}, err
		}
		if next.equal(truth) {
			return Result{PM: pm, Iterations: iter}, nil
		}
		truth = next
	}
	return Result{}, fmt.Errorf("kbp: no fixed point after %d iterations (the program may have none)", maxIter)
}

// BitTransmission returns the classic knowledge-based program: the sender
// (p0) repeats its bit until it knows the receiver knows the bit; the
// receiver (p1) acknowledges while it knows the bit. bits lists the
// possible sender inputs.
func BitTransmission(bits []string, maxSends int) (Program, []protocol.Config) {
	recvKnows := logic.Formula(logic.Disj(
		logic.K(1, logic.P("bit0")),
		logic.K(1, logic.P("bit1")),
	))
	prog := Program{
		Rules: map[int][]Rule{
			0: {{
				Name: "send-bit",
				When: logic.Neg(logic.K(0, recvKnows)),
				To:   1,
				Payload: func(v protocol.LocalView) string {
					return "bit=" + v.Init
				},
				MaxSends: maxSends,
			}},
			1: {{
				Name:     "send-ack",
				When:     recvKnows,
				To:       0,
				Payload:  func(protocol.LocalView) string { return "ack" },
				MaxSends: maxSends,
			}},
		},
		Interp: runs.Interpretation{
			"bit0": func(r *runs.Run, _ runs.Time) bool { return r.Init[0] == "0" },
			"bit1": func(r *runs.Run, _ runs.Time) bool { return r.Init[0] == "1" },
		},
	}
	var cfgs []protocol.Config
	for _, b := range bits {
		cfgs = append(cfgs, protocol.Config{Name: "bit" + b, Init: []string{b, ""}})
	}
	return prog, cfgs
}
