package logic

// Simplify returns a logically equivalent formula with constants folded,
// double negations removed, and n-ary connectives flattened and
// deduplicated. Equivalence is with respect to the view-based (S5)
// semantics: in particular K_i, S_G, E_G, D_G and C_G of a constant are
// that constant (knowledge is reflexive and closed under necessitation),
// and likewise for E^ε/C^ε, E^⋄/C^⋄, ◇ and □. The timestamped operators
// E^T/C^T are NOT constant-folded on true: "at time T on its clock" may
// never happen, so E^T true is not valid; E^T false is still false (it
// requires knowing false somewhere).
//
// Fixed-point subformulas are simplified in their bodies; νX.X and μX.X
// fold to true and false respectively.
func Simplify(f Formula) Formula {
	switch n := f.(type) {
	case Prop, Truth, Var:
		return f

	case Not:
		inner := Simplify(n.F)
		switch i := inner.(type) {
		case Truth:
			return Truth{Value: !i.Value}
		case Not:
			return i.F
		}
		return Not{F: inner}

	case And:
		return simplifyNary(n.Fs, true)

	case Or:
		return simplifyNary(n.Fs, false)

	case Implies:
		ant := Simplify(n.Ant)
		cons := Simplify(n.Cons)
		if t, ok := ant.(Truth); ok {
			if t.Value {
				return cons
			}
			return True
		}
		if t, ok := cons.(Truth); ok {
			if t.Value {
				return True
			}
			return Simplify(Not{F: ant})
		}
		if Equal(ant, cons) {
			return True
		}
		return Implies{Ant: ant, Cons: cons}

	case Iff:
		l := Simplify(n.L)
		r := Simplify(n.R)
		if t, ok := l.(Truth); ok {
			if t.Value {
				return r
			}
			return Simplify(Not{F: r})
		}
		if t, ok := r.(Truth); ok {
			if t.Value {
				return l
			}
			return Simplify(Not{F: l})
		}
		if Equal(l, r) {
			return True
		}
		return Iff{L: l, R: r}

	case Know:
		return foldConstant(Know{Agent: n.Agent, F: Simplify(n.F)}, true, true)
	case Someone:
		return foldConstant(Someone{G: n.G, F: Simplify(n.F)}, true, true)
	case Everyone:
		return foldConstant(Everyone{G: n.G, F: Simplify(n.F)}, true, true)
	case Dist:
		return foldConstant(Dist{G: n.G, F: Simplify(n.F)}, true, true)
	case Common:
		return foldConstant(Common{G: n.G, F: Simplify(n.F)}, true, true)
	case EveryEps:
		return foldConstant(EveryEps{G: n.G, Eps: n.Eps, F: Simplify(n.F)}, true, true)
	case CommonEps:
		return foldConstant(CommonEps{G: n.G, Eps: n.Eps, F: Simplify(n.F)}, true, true)
	case EveryEv:
		return foldConstant(EveryEv{G: n.G, F: Simplify(n.F)}, true, true)
	case CommonEv:
		return foldConstant(CommonEv{G: n.G, F: Simplify(n.F)}, true, true)
	case EveryTime:
		// E^T true is not valid (the clock may never read T), but E^T
		// false is false.
		return foldConstant(EveryTime{G: n.G, T: n.T, F: Simplify(n.F)}, false, true)
	case CommonTime:
		return foldConstant(CommonTime{G: n.G, T: n.T, F: Simplify(n.F)}, false, true)
	case Eventually:
		return foldConstant(Eventually{F: Simplify(n.F)}, true, true)
	case Always:
		return foldConstant(Always{F: Simplify(n.F)}, true, true)

	case Nu:
		body := Simplify(n.Body)
		if v, ok := body.(Var); ok && v.Name == n.Var {
			return True // νX.X is everything
		}
		if !FreeVars(body)[n.Var] {
			return body // the binder is vacuous
		}
		return Nu{Var: n.Var, Body: body}

	case Mu:
		body := Simplify(n.Body)
		if v, ok := body.(Var); ok && v.Name == n.Var {
			return False // μX.X is nothing
		}
		if !FreeVars(body)[n.Var] {
			return body
		}
		return Mu{Var: n.Var, Body: body}
	}
	return f
}

// foldConstant replaces a unary modal application to a constant by the
// constant itself when that folding is sound (foldTrue for op(true) = true,
// foldFalse for op(false) = false).
func foldConstant(f Formula, foldTrue, foldFalse bool) Formula {
	var arg Formula
	switch n := f.(type) {
	case Know:
		arg = n.F
	case Someone:
		arg = n.F
	case Everyone:
		arg = n.F
	case Dist:
		arg = n.F
	case Common:
		arg = n.F
	case EveryEps:
		arg = n.F
	case CommonEps:
		arg = n.F
	case EveryEv:
		arg = n.F
	case CommonEv:
		arg = n.F
	case EveryTime:
		arg = n.F
	case CommonTime:
		arg = n.F
	case Eventually:
		arg = n.F
	case Always:
		arg = n.F
	default:
		return f
	}
	if t, ok := arg.(Truth); ok {
		if t.Value && foldTrue {
			return True
		}
		if !t.Value && foldFalse {
			return False
		}
	}
	return f
}

// simplifyNary simplifies a conjunction (isAnd) or disjunction: children
// are simplified, nested connectives of the same kind flattened, identity
// elements dropped, absorbing elements short-circuit, and duplicates
// removed.
func simplifyNary(fs []Formula, isAnd bool) Formula {
	flat := make([]Formula, 0, len(fs))
	for _, c := range fs {
		s := Simplify(c)
		if t, ok := s.(Truth); ok {
			if t.Value == isAnd {
				continue // identity element
			}
			return Truth{Value: !isAnd} // absorbing element
		}
		if isAnd {
			if a, ok := s.(And); ok {
				flat = append(flat, a.Fs...)
				continue
			}
		} else {
			if o, ok := s.(Or); ok {
				flat = append(flat, o.Fs...)
				continue
			}
		}
		flat = append(flat, s)
	}
	// Deduplicate, preserving order (quadratic; formulas are small).
	out := flat[:0]
	for _, c := range flat {
		dup := false
		for _, prev := range out {
			if Equal(prev, c) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	switch len(out) {
	case 0:
		return Truth{Value: isAnd}
	case 1:
		return out[0]
	}
	if isAnd {
		return And{Fs: out}
	}
	return Or{Fs: out}
}
