package logic

import "fmt"

// Equal reports structural equality of two formulas, including bound
// variable names (no alpha-conversion).
func Equal(a, b Formula) bool {
	switch x := a.(type) {
	case Prop:
		y, ok := b.(Prop)
		return ok && x.Name == y.Name
	case Truth:
		y, ok := b.(Truth)
		return ok && x.Value == y.Value
	case Var:
		y, ok := b.(Var)
		return ok && x.Name == y.Name
	case Not:
		y, ok := b.(Not)
		return ok && Equal(x.F, y.F)
	case And:
		y, ok := b.(And)
		if !ok || len(x.Fs) != len(y.Fs) {
			return false
		}
		for i := range x.Fs {
			if !Equal(x.Fs[i], y.Fs[i]) {
				return false
			}
		}
		return true
	case Or:
		y, ok := b.(Or)
		if !ok || len(x.Fs) != len(y.Fs) {
			return false
		}
		for i := range x.Fs {
			if !Equal(x.Fs[i], y.Fs[i]) {
				return false
			}
		}
		return true
	case Implies:
		y, ok := b.(Implies)
		return ok && Equal(x.Ant, y.Ant) && Equal(x.Cons, y.Cons)
	case Iff:
		y, ok := b.(Iff)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case Know:
		y, ok := b.(Know)
		return ok && x.Agent == y.Agent && Equal(x.F, y.F)
	case Someone:
		y, ok := b.(Someone)
		return ok && x.G.Equal(y.G) && Equal(x.F, y.F)
	case Everyone:
		y, ok := b.(Everyone)
		return ok && x.G.Equal(y.G) && Equal(x.F, y.F)
	case Dist:
		y, ok := b.(Dist)
		return ok && x.G.Equal(y.G) && Equal(x.F, y.F)
	case Common:
		y, ok := b.(Common)
		return ok && x.G.Equal(y.G) && Equal(x.F, y.F)
	case EveryEps:
		y, ok := b.(EveryEps)
		return ok && x.G.Equal(y.G) && x.Eps == y.Eps && Equal(x.F, y.F)
	case CommonEps:
		y, ok := b.(CommonEps)
		return ok && x.G.Equal(y.G) && x.Eps == y.Eps && Equal(x.F, y.F)
	case EveryEv:
		y, ok := b.(EveryEv)
		return ok && x.G.Equal(y.G) && Equal(x.F, y.F)
	case CommonEv:
		y, ok := b.(CommonEv)
		return ok && x.G.Equal(y.G) && Equal(x.F, y.F)
	case EveryTime:
		y, ok := b.(EveryTime)
		return ok && x.G.Equal(y.G) && x.T == y.T && Equal(x.F, y.F)
	case CommonTime:
		y, ok := b.(CommonTime)
		return ok && x.G.Equal(y.G) && x.T == y.T && Equal(x.F, y.F)
	case Eventually:
		y, ok := b.(Eventually)
		return ok && Equal(x.F, y.F)
	case Always:
		y, ok := b.(Always)
		return ok && Equal(x.F, y.F)
	case Nu:
		y, ok := b.(Nu)
		return ok && x.Var == y.Var && Equal(x.Body, y.Body)
	case Mu:
		y, ok := b.(Mu)
		return ok && x.Var == y.Var && Equal(x.Body, y.Body)
	}
	return false
}

// children returns the immediate subformulas of f.
func children(f Formula) []Formula {
	switch x := f.(type) {
	case Prop, Truth, Var:
		return nil
	case Not:
		return []Formula{x.F}
	case And:
		return x.Fs
	case Or:
		return x.Fs
	case Implies:
		return []Formula{x.Ant, x.Cons}
	case Iff:
		return []Formula{x.L, x.R}
	case Know:
		return []Formula{x.F}
	case Someone:
		return []Formula{x.F}
	case Everyone:
		return []Formula{x.F}
	case Dist:
		return []Formula{x.F}
	case Common:
		return []Formula{x.F}
	case EveryEps:
		return []Formula{x.F}
	case CommonEps:
		return []Formula{x.F}
	case EveryEv:
		return []Formula{x.F}
	case CommonEv:
		return []Formula{x.F}
	case EveryTime:
		return []Formula{x.F}
	case CommonTime:
		return []Formula{x.F}
	case Eventually:
		return []Formula{x.F}
	case Always:
		return []Formula{x.F}
	case Nu:
		return []Formula{x.Body}
	case Mu:
		return []Formula{x.Body}
	}
	return nil
}

// Walk applies fn to f and then, if fn returned true, to each subformula
// recursively (pre-order).
func Walk(f Formula, fn func(Formula) bool) {
	if !fn(f) {
		return
	}
	for _, c := range children(f) {
		Walk(c, fn)
	}
}

// Size returns the number of nodes in the formula tree.
func Size(f Formula) int {
	n := 0
	Walk(f, func(Formula) bool {
		n++
		return true
	})
	return n
}

// Depth returns the height of the formula tree; atoms have depth 1.
func Depth(f Formula) int {
	max := 0
	for _, c := range children(f) {
		if d := Depth(c); d > max {
			max = d
		}
	}
	return max + 1
}

// ModalDepth returns the maximum nesting of knowledge operators (K, S, E, D,
// C and the temporal variants). Fixed-point operators contribute the modal
// depth of their bodies; propositional connectives contribute nothing.
func ModalDepth(f Formula) int {
	modal := 0
	switch f.(type) {
	case Know, Someone, Everyone, Dist, Common,
		EveryEps, CommonEps, EveryEv, CommonEv, EveryTime, CommonTime:
		modal = 1
	}
	max := 0
	for _, c := range children(f) {
		if d := ModalDepth(c); d > max {
			max = d
		}
	}
	return modal + max
}

// FreeVars returns the set of fixed-point variables occurring free in f.
func FreeVars(f Formula) map[string]bool {
	out := make(map[string]bool)
	freeVars(f, map[string]bool{}, out)
	return out
}

func freeVars(f Formula, bound map[string]bool, out map[string]bool) {
	switch x := f.(type) {
	case Var:
		if !bound[x.Name] {
			out[x.Name] = true
		}
	case Nu:
		inner := cloneBound(bound)
		inner[x.Var] = true
		freeVars(x.Body, inner, out)
	case Mu:
		inner := cloneBound(bound)
		inner[x.Var] = true
		freeVars(x.Body, inner, out)
	default:
		for _, c := range children(f) {
			freeVars(c, bound, out)
		}
	}
}

func cloneBound(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m)+1)
	for k, v := range m {
		c[k] = v
	}
	return c
}

// Props returns the set of ground-fact names occurring in f.
func Props(f Formula) map[string]bool {
	out := make(map[string]bool)
	Walk(f, func(g Formula) bool {
		if p, ok := g.(Prop); ok {
			out[p.Name] = true
		}
		return true
	})
	return out
}

// Agents returns the set of agents named explicitly in f (via K or explicit
// groups). It does not expand nil ("all agents") groups.
func Agents(f Formula) map[Agent]bool {
	out := make(map[Agent]bool)
	addGroup := func(g Group) {
		for _, a := range g {
			out[a] = true
		}
	}
	Walk(f, func(g Formula) bool {
		switch x := g.(type) {
		case Know:
			out[x.Agent] = true
		case Someone:
			addGroup(x.G)
		case Everyone:
			addGroup(x.G)
		case Dist:
			addGroup(x.G)
		case Common:
			addGroup(x.G)
		case EveryEps:
			addGroup(x.G)
		case CommonEps:
			addGroup(x.G)
		case EveryEv:
			addGroup(x.G)
		case CommonEv:
			addGroup(x.G)
		case EveryTime:
			addGroup(x.G)
		case CommonTime:
			addGroup(x.G)
		}
		return true
	})
	return out
}

// Polarity classifies occurrences of a variable.
type Polarity int

// Polarity values. A variable occurs positively if it is under an even
// number of negations, negatively if under an odd number; PolarityNone means
// it does not occur free at all, and PolarityMixed that it has occurrences
// of both signs.
const (
	PolarityNone Polarity = iota
	PolarityPositive
	PolarityNegative
	PolarityMixed
)

func combinePolarity(a, b Polarity) Polarity {
	switch {
	case a == PolarityNone:
		return b
	case b == PolarityNone:
		return a
	case a == b:
		return a
	default:
		return PolarityMixed
	}
}

func flipPolarity(p Polarity) Polarity {
	switch p {
	case PolarityPositive:
		return PolarityNegative
	case PolarityNegative:
		return PolarityPositive
	default:
		return p
	}
}

// PolarityOf returns the polarity of free occurrences of variable x in f.
// Appendix A requires all free occurrences of the bound variable of νX.φ and
// μX.φ to be positive, which guarantees monotonicity of the associated
// set function.
func PolarityOf(f Formula, x string) Polarity {
	switch n := f.(type) {
	case Var:
		if n.Name == x {
			return PolarityPositive
		}
		return PolarityNone
	case Not:
		return flipPolarity(PolarityOf(n.F, x))
	case Implies:
		return combinePolarity(flipPolarity(PolarityOf(n.Ant, x)), PolarityOf(n.Cons, x))
	case Iff:
		// X appears on both sides of an equivalence with unknown sign.
		l := combinePolarity(PolarityOf(n.L, x), flipPolarity(PolarityOf(n.L, x)))
		r := combinePolarity(PolarityOf(n.R, x), flipPolarity(PolarityOf(n.R, x)))
		return combinePolarity(l, r)
	case Nu:
		if n.Var == x {
			return PolarityNone // shadowed
		}
		return PolarityOf(n.Body, x)
	case Mu:
		if n.Var == x {
			return PolarityNone
		}
		return PolarityOf(n.Body, x)
	default:
		p := PolarityNone
		for _, c := range children(f) {
			p = combinePolarity(p, PolarityOf(c, x))
		}
		return p
	}
}

// WellFormed checks the syntactic restriction of Appendix A: in every
// subformula νX.φ or μX.φ, all free occurrences of X in φ are positive.
func WellFormed(f Formula) error {
	var err error
	Walk(f, func(g Formula) bool {
		switch x := g.(type) {
		case Nu:
			if p := PolarityOf(x.Body, x.Var); p == PolarityNegative || p == PolarityMixed {
				err = fmt.Errorf("logic: variable %s occurs negatively in %s", x.Var, g)
				return false
			}
		case Mu:
			if p := PolarityOf(x.Body, x.Var); p == PolarityNegative || p == PolarityMixed {
				err = fmt.Errorf("logic: variable %s occurs negatively in %s", x.Var, g)
				return false
			}
		}
		return err == nil
	})
	return err
}

// Substitute returns f with every free occurrence of variable x replaced by
// repl (the paper's φ[repl/X]). Bound occurrences are left untouched;
// capture is not checked, so callers substituting formulas with free
// variables must ensure the bound variable names differ.
func Substitute(f Formula, x string, repl Formula) Formula {
	switch n := f.(type) {
	case Prop, Truth:
		return f
	case Var:
		if n.Name == x {
			return repl
		}
		return f
	case Not:
		return Not{F: Substitute(n.F, x, repl)}
	case And:
		fs := make([]Formula, len(n.Fs))
		for i, c := range n.Fs {
			fs[i] = Substitute(c, x, repl)
		}
		return And{Fs: fs}
	case Or:
		fs := make([]Formula, len(n.Fs))
		for i, c := range n.Fs {
			fs[i] = Substitute(c, x, repl)
		}
		return Or{Fs: fs}
	case Implies:
		return Implies{Ant: Substitute(n.Ant, x, repl), Cons: Substitute(n.Cons, x, repl)}
	case Iff:
		return Iff{L: Substitute(n.L, x, repl), R: Substitute(n.R, x, repl)}
	case Know:
		return Know{Agent: n.Agent, F: Substitute(n.F, x, repl)}
	case Someone:
		return Someone{G: n.G, F: Substitute(n.F, x, repl)}
	case Everyone:
		return Everyone{G: n.G, F: Substitute(n.F, x, repl)}
	case Dist:
		return Dist{G: n.G, F: Substitute(n.F, x, repl)}
	case Common:
		return Common{G: n.G, F: Substitute(n.F, x, repl)}
	case EveryEps:
		return EveryEps{G: n.G, Eps: n.Eps, F: Substitute(n.F, x, repl)}
	case CommonEps:
		return CommonEps{G: n.G, Eps: n.Eps, F: Substitute(n.F, x, repl)}
	case EveryEv:
		return EveryEv{G: n.G, F: Substitute(n.F, x, repl)}
	case CommonEv:
		return CommonEv{G: n.G, F: Substitute(n.F, x, repl)}
	case EveryTime:
		return EveryTime{G: n.G, T: n.T, F: Substitute(n.F, x, repl)}
	case CommonTime:
		return CommonTime{G: n.G, T: n.T, F: Substitute(n.F, x, repl)}
	case Eventually:
		return Eventually{F: Substitute(n.F, x, repl)}
	case Always:
		return Always{F: Substitute(n.F, x, repl)}
	case Nu:
		if n.Var == x {
			return f // shadowed
		}
		return Nu{Var: n.Var, Body: Substitute(n.Body, x, repl)}
	case Mu:
		if n.Var == x {
			return f
		}
		return Mu{Var: n.Var, Body: Substitute(n.Body, x, repl)}
	}
	return f
}
