package logic

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestGroupNormalization(t *testing.T) {
	g := NewGroup(3, 1, 2, 1, 3)
	want := Group{1, 2, 3}
	if !g.Equal(want) {
		t.Errorf("NewGroup = %v, want %v", g, want)
	}
	if !g.Contains(2) || g.Contains(0) {
		t.Error("Contains wrong")
	}
	var all Group
	if !all.Contains(99) {
		t.Error("nil group should contain every agent")
	}
	if all.Equal(Group{}) {
		t.Error("nil group must differ from empty explicit group")
	}
}

func TestStringRendering(t *testing.T) {
	g01 := NewGroup(0, 1)
	tests := []struct {
		f    Formula
		want string
	}{
		{P("m"), "m"},
		{True, "true"},
		{Neg(P("m")), "~m"},
		{Conj(P("a"), P("b")), "a & b"},
		{Disj(P("a"), P("b"), P("c")), "a | b | c"},
		{Imp(P("a"), P("b")), "a -> b"},
		{Equiv(P("a"), P("b")), "a <-> b"},
		{K(1, P("m")), "K1 m"},
		{K(0, K(1, P("m"))), "K0 K1 m"},
		{E(g01, P("m")), "E{0,1} m"},
		{E(nil, P("m")), "E m"},
		{C(g01, P("m")), "C{0,1} m"},
		{D(nil, P("m")), "D m"},
		{S(nil, P("m")), "S m"},
		{Eeps(g01, 2, P("m")), "Ee[2]{0,1} m"},
		{Ceps(nil, 3, P("m")), "Ce[3] m"},
		{Eev(nil, P("m")), "Ev m"},
		{Cev(g01, P("m")), "Cv{0,1} m"},
		{Et(nil, 5, P("m")), "Et[5] m"},
		{Ct(nil, 7, P("m")), "Ct[7] m"},
		{Ev(P("m")), "<> m"},
		{Alw(P("m")), "[] m"},
		{GFP("X", E(nil, Conj(P("m"), X("X")))), "nu X . E (m & X)"},
		{Conj(Disj(P("a"), P("b")), P("c")), "(a | b) & c"},
		{Imp(Imp(P("a"), P("b")), P("c")), "(a -> b) -> c"},
		{Neg(Conj(P("a"), P("b"))), "~(a & b)"},
		{K(2, Disj(P("a"), P("b"))), "K2 (a | b)"},
	}
	for _, tt := range tests {
		if got := tt.f.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestParseBasics(t *testing.T) {
	tests := []struct {
		in   string
		want Formula
	}{
		{"m", P("m")},
		{"true", True},
		{"false", False},
		{"~m", Neg(P("m"))},
		{"a & b & c", And{Fs: []Formula{P("a"), P("b"), P("c")}}},
		{"a | b", Disj(P("a"), P("b"))},
		{"a -> b -> c", Imp(P("a"), Imp(P("b"), P("c")))},
		{"a <-> b", Equiv(P("a"), P("b"))},
		{"K0 m", K(0, P("m"))},
		{"K12 m", K(12, P("m"))},
		{"E{0,1} m", E(NewGroup(0, 1), P("m"))},
		{"E m", E(nil, P("m"))},
		{"E^3 m", EK(nil, 3, P("m"))},
		{"E^2{1,2} m", EK(NewGroup(1, 2), 2, P("m"))},
		{"C m", C(nil, P("m"))},
		{"D{0,2} p", D(NewGroup(0, 2), P("p"))},
		{"S p", S(nil, P("p"))},
		{"Ee[2] m", Eeps(nil, 2, P("m"))},
		{"Ce[4]{0,1} m", Ceps(NewGroup(0, 1), 4, P("m"))},
		{"Ev m", Eev(nil, P("m"))},
		{"Cv m", Cev(nil, P("m"))},
		{"Et[3] m", Et(nil, 3, P("m"))},
		{"Ct[9]{1,3} m", Ct(NewGroup(1, 3), 9, P("m"))},
		{"<> m", Ev(P("m"))},
		{"[] m", Alw(P("m"))},
		{"nu X . E (m & X)", GFP("X", E(nil, Conj(P("m"), X("X"))))},
		{"mu Y . m | E Y", LFP("Y", Disj(P("m"), E(nil, X("Y"))))},
		{"(a & b) | c", Disj(Conj(P("a"), P("b")), P("c"))},
		{"a & (b | c)", Conj(P("a"), Disj(P("b"), P("c")))},
		{"K0 K1 sent_m", K(0, K(1, P("sent_m")))},
		{"  m  ", P("m")},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got, err := Parse(tt.in)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.in, err)
			}
			if !Equal(got, tt.want) {
				t.Errorf("Parse(%q) = %s, want %s", tt.in, got, tt.want)
			}
		})
	}
}

func TestParsePrecedence(t *testing.T) {
	// & binds tighter than |, which binds tighter than ->, which binds
	// tighter than <->. Unary operators bind tightest.
	f := MustParse("a & b | c -> d <-> e")
	want := Equiv(
		Imp(Disj(Conj(P("a"), P("b")), P("c")), P("d")),
		P("e"),
	)
	if !Equal(f, want) {
		t.Errorf("precedence parse = %s, want %s", f, want)
	}

	g := MustParse("~K0 a & b")
	wantG := Conj(Neg(K(0, P("a"))), P("b"))
	if !Equal(g, wantG) {
		t.Errorf("unary precedence parse = %s, want %s", g, wantG)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"&",
		"a &",
		"(a",
		"a)",
		"K m",          // K without index parses K as... should fail or be a var? K is uppercase => Var, then m is trailing
		"E^0 m",        // k must be >= 1
		"Ee m",         // missing [eps]
		"Ee[2 m",       // unclosed bracket
		"E{0, m",       // bad group
		"nu X",         // missing body
		"nu X . ~X",    // negative occurrence
		"mu X . K0 ~X", // negative occurrence under K
	}
	for _, in := range bad {
		if f, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %s, want error", in, f)
		}
	}
}

func TestParseIffNonAssoc(t *testing.T) {
	// a <-> b <-> c parses left-to-right as (a <-> b) <-> c.
	f := MustParse("a <-> b <-> c")
	want := Equiv(Equiv(P("a"), P("b")), P("c"))
	if !Equal(f, want) {
		t.Errorf("got %s, want %s", f, want)
	}
}

func TestEKZero(t *testing.T) {
	if !Equal(EK(nil, 0, P("m")), P("m")) {
		t.Error("EK(g, 0, m) should be m")
	}
	if !Equal(EK(nil, 2, P("m")), E(nil, E(nil, P("m")))) {
		t.Error("EK(g, 2, m) should be E E m")
	}
}

func TestFreeVarsAndPolarity(t *testing.T) {
	f := MustParse("nu X . E (m & X)")
	if fv := FreeVars(f); len(fv) != 0 {
		t.Errorf("FreeVars(%s) = %v, want none", f, fv)
	}
	body := E(nil, Conj(P("m"), X("X")))
	if fv := FreeVars(body); !fv["X"] || len(fv) != 1 {
		t.Errorf("FreeVars(body) = %v, want {X}", fv)
	}
	if p := PolarityOf(body, "X"); p != PolarityPositive {
		t.Errorf("PolarityOf = %v, want positive", p)
	}
	if p := PolarityOf(Neg(X("X")), "X"); p != PolarityNegative {
		t.Errorf("PolarityOf(~X) = %v, want negative", p)
	}
	if p := PolarityOf(Imp(X("X"), X("X")), "X"); p != PolarityMixed {
		t.Errorf("PolarityOf(X -> X) = %v, want mixed", p)
	}
	if p := PolarityOf(Imp(X("X"), P("m")), "X"); p != PolarityNegative {
		t.Errorf("PolarityOf(X -> m) = %v, want negative", p)
	}
	if p := PolarityOf(P("m"), "X"); p != PolarityNone {
		t.Errorf("PolarityOf(m) = %v, want none", p)
	}
	// Shadowing: inner nu binds X, so outer occurrence check sees none.
	shadow := GFP("X", X("X"))
	if p := PolarityOf(shadow, "X"); p != PolarityNone {
		t.Errorf("PolarityOf(shadowed) = %v, want none", p)
	}
}

func TestSubstitute(t *testing.T) {
	// The fixed point axiom shape: (nu X . E(m & X))  unfolds to
	// E(m & nu X . E(m & X)).
	nu := GFP("X", E(nil, Conj(P("m"), X("X")))).(Nu)
	unfolded := Substitute(nu.Body, "X", nu)
	want := E(nil, Conj(P("m"), nu))
	if !Equal(unfolded, want) {
		t.Errorf("unfold = %s, want %s", unfolded, want)
	}
	// Bound occurrences are not substituted.
	f := Conj(X("X"), GFP("X", X("X")))
	got := Substitute(f, "X", P("m"))
	want2 := Conj(P("m"), GFP("X", X("X")))
	if !Equal(got, want2) {
		t.Errorf("Substitute = %s, want %s", got, want2)
	}
}

func TestSizeDepthModalDepth(t *testing.T) {
	f := MustParse("K0 K1 (m & K0 m)")
	if got := ModalDepth(f); got != 3 {
		t.Errorf("ModalDepth = %d, want 3", got)
	}
	if got := ModalDepth(P("m")); got != 0 {
		t.Errorf("ModalDepth(m) = %d, want 0", got)
	}
	if got := ModalDepth(MustParse("E E E m")); got != 3 {
		t.Errorf("ModalDepth(E^3 m) = %d, want 3", got)
	}
	if Size(P("m")) != 1 || Depth(P("m")) != 1 {
		t.Error("Size/Depth of atom should be 1")
	}
	g := Conj(P("a"), Neg(P("b")))
	if Size(g) != 4 {
		t.Errorf("Size = %d, want 4", Size(g))
	}
	if Depth(g) != 3 {
		t.Errorf("Depth = %d, want 3", Depth(g))
	}
}

func TestPropsAndAgents(t *testing.T) {
	f := MustParse("K0 m & E{1,2} (p -> q) & C sent")
	props := Props(f)
	for _, name := range []string{"m", "p", "q", "sent"} {
		if !props[name] {
			t.Errorf("Props missing %q", name)
		}
	}
	ag := Agents(f)
	if !ag[0] || !ag[1] || !ag[2] || len(ag) != 3 {
		t.Errorf("Agents = %v, want {0,1,2}", ag)
	}
}

func TestWellFormed(t *testing.T) {
	good := GFP("X", E(nil, Conj(P("m"), X("X"))))
	if err := WellFormed(good); err != nil {
		t.Errorf("WellFormed(%s) = %v, want nil", good, err)
	}
	bad := GFP("X", Neg(X("X")))
	if err := WellFormed(bad); err == nil {
		t.Errorf("WellFormed(%s) = nil, want error", bad)
	}
	// Double negation is positive.
	dn := GFP("X", Neg(Neg(X("X"))))
	if err := WellFormed(dn); err != nil {
		t.Errorf("WellFormed(%s) = %v, want nil", dn, err)
	}
}

// genFormula generates a random well-formed closed formula.
func genFormula(rng *rand.Rand, depth int, vars []string) Formula {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return P([]string{"m", "p", "q", "sent_m"}[rng.Intn(4)])
		case 1:
			return Truth{Value: rng.Intn(2) == 0}
		default:
			if len(vars) > 0 {
				return Var{Name: vars[rng.Intn(len(vars))]}
			}
			return P("m")
		}
	}
	g := []Group{nil, NewGroup(0, 1), NewGroup(0, 1, 2), NewGroup(2)}[rng.Intn(4)]
	sub := func() Formula { return genFormula(rng, depth-1, vars) }
	// Negation and implication antecedents must not contain free fixpoint
	// variables (to preserve positivity); generate those with no vars.
	subNoVars := func() Formula { return genFormula(rng, depth-1, nil) }
	switch rng.Intn(14) {
	case 0:
		return Neg(subNoVars())
	case 1:
		return Conj(sub(), sub())
	case 2:
		return Disj(sub(), sub())
	case 3:
		return Imp(subNoVars(), sub())
	case 4:
		return K(Agent(rng.Intn(3)), sub())
	case 5:
		return E(g, sub())
	case 6:
		return C(g, sub())
	case 7:
		return D(g, sub())
	case 8:
		return S(g, sub())
	case 9:
		return Eeps(g, 1+rng.Intn(3), sub())
	case 10:
		return Cev(g, sub())
	case 11:
		return Et(g, rng.Intn(5), sub())
	case 12:
		name := string(rune('X' + rng.Intn(3)))
		inner := genFormula(rng, depth-1, append(append([]string{}, vars...), name))
		return GFP(name, inner)
	default:
		return Ev(sub())
	}
}

// TestQuickRoundTrip: parsing the printed form yields a structurally equal
// formula.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := genFormula(rng, 1+rng.Intn(4), nil)
		text := orig.String()
		parsed, err := Parse(text)
		if err != nil {
			t.Logf("Parse(%q) failed: %v", text, err)
			return false
		}
		if !Equal(parsed, orig) {
			t.Logf("round trip mismatch: %q reparsed as %q", text, parsed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickGeneratedWellFormed: the generator respects positivity so parser
// acceptance should always hold.
func TestQuickGeneratedWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := genFormula(rng, 1+rng.Intn(5), nil)
		return WellFormed(orig) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseLongConjunction(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 100; i++ {
		if i > 0 {
			b.WriteString(" & ")
		}
		b.WriteString("p")
	}
	f, err := Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	and, ok := f.(And)
	if !ok || len(and.Fs) != 100 {
		t.Errorf("expected flat 100-ary conjunction, got %T with %d children", f, len(and.Fs))
	}
}

func BenchmarkParse(b *testing.B) {
	const src = "nu X . E{0,1} ((m & K0 (p -> q)) & X) & C{0,1,2} sent_m"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkString(b *testing.B) {
	f := MustParse("nu X . E{0,1} ((m & K0 (p -> q)) & X) & C{0,1,2} sent_m")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.String()
	}
}
