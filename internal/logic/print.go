package logic

import (
	"fmt"
	"strconv"
	"strings"
)

// Concrete syntax (also accepted by Parse):
//
//	p, sent_m        ground facts (lowercase identifier)
//	true, false      constants
//	X, Y0            fixed-point variables (uppercase identifier, not a keyword)
//	~phi             negation
//	phi & psi        conjunction
//	phi | psi        disjunction
//	phi -> psi       implication (right associative)
//	phi <-> psi      equivalence
//	K1 phi           K_1 phi (agent index follows K)
//	S{0,2} phi       S_G phi; omit {..} for "all agents": S phi
//	E{0,2} phi       E_G phi
//	E^3{0,2} phi     E^k_G phi (expanded to nested E)
//	D{0,2} phi       D_G phi
//	C{0,2} phi       C_G phi
//	Ee[2]{0,1} phi   E^eps_G phi with eps = 2 ticks
//	Ce[2] phi        C^eps_G phi
//	Ev phi, Cv phi   E^<> (eventual), C^<> (eventual common knowledge)
//	Et[5] phi        E^T phi with timestamp T = 5
//	Ct[5] phi        C^T phi
//	<> phi           eventually (temporal)
//	[] phi           always (temporal)
//	nu X . phi       greatest fixed point
//	mu X . phi       least fixed point

// precedence levels, loosest first
const (
	precIff = iota
	precImplies
	precOr
	precAnd
	precUnary
)

func groupString(g Group) string {
	if g == nil {
		return ""
	}
	parts := make([]string, len(g))
	for i, a := range g {
		parts[i] = strconv.Itoa(int(a))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func (f Prop) String() string { return f.Name }
func (f Truth) String() string {
	if f.Value {
		return "true"
	}
	return "false"
}
func (f Var) String() string { return f.Name }
func (f Not) String() string { return "~" + paren(f.F, precUnary) }

func joinFormulas(fs []Formula, sep string, prec int, empty string) string {
	if len(fs) == 0 {
		return empty
	}
	parts := make([]string, len(fs))
	for i, c := range fs {
		parts[i] = paren(c, prec+1)
	}
	return strings.Join(parts, sep)
}

func (f And) String() string { return joinFormulas(f.Fs, " & ", precAnd, "true") }
func (f Or) String() string  { return joinFormulas(f.Fs, " | ", precOr, "false") }
func (f Implies) String() string {
	return paren(f.Ant, precImplies+1) + " -> " + paren(f.Cons, precImplies)
}
func (f Iff) String() string {
	return paren(f.L, precIff+1) + " <-> " + paren(f.R, precIff+1)
}
func (f Know) String() string { return fmt.Sprintf("K%d %s", f.Agent, paren(f.F, precUnary)) }
func (f Someone) String() string {
	return "S" + groupString(f.G) + " " + paren(f.F, precUnary)
}
func (f Everyone) String() string {
	return "E" + groupString(f.G) + " " + paren(f.F, precUnary)
}
func (f Dist) String() string {
	return "D" + groupString(f.G) + " " + paren(f.F, precUnary)
}
func (f Common) String() string {
	return "C" + groupString(f.G) + " " + paren(f.F, precUnary)
}
func (f EveryEps) String() string {
	return fmt.Sprintf("Ee[%d]%s %s", f.Eps, groupString(f.G), paren(f.F, precUnary))
}
func (f CommonEps) String() string {
	return fmt.Sprintf("Ce[%d]%s %s", f.Eps, groupString(f.G), paren(f.F, precUnary))
}
func (f EveryEv) String() string {
	return "Ev" + groupString(f.G) + " " + paren(f.F, precUnary)
}
func (f CommonEv) String() string {
	return "Cv" + groupString(f.G) + " " + paren(f.F, precUnary)
}
func (f EveryTime) String() string {
	return fmt.Sprintf("Et[%d]%s %s", f.T, groupString(f.G), paren(f.F, precUnary))
}
func (f CommonTime) String() string {
	return fmt.Sprintf("Ct[%d]%s %s", f.T, groupString(f.G), paren(f.F, precUnary))
}
func (f Eventually) String() string { return "<> " + paren(f.F, precUnary) }
func (f Always) String() string     { return "[] " + paren(f.F, precUnary) }
func (f Nu) String() string         { return "nu " + f.Var + " . " + f.Body.String() }
func (f Mu) String() string         { return "mu " + f.Var + " . " + f.Body.String() }

// precOf returns the precedence of the top-level connective of f.
func precOf(f Formula) int {
	switch f.(type) {
	case Iff:
		return precIff
	case Implies:
		return precImplies
	case Or:
		return precOr
	case And:
		return precAnd
	case Nu, Mu:
		return precIff // binders extend as far right as possible
	default:
		return precUnary
	}
}

// paren renders f, adding parentheses if its top-level connective binds
// looser than the context requires.
func paren(f Formula, context int) string {
	if precOf(f) < context {
		return "(" + f.String() + ")"
	}
	return f.String()
}
