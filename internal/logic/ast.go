// Package logic defines the epistemic language of Halpern & Moses,
// "Knowledge and Common Knowledge in a Distributed Environment".
//
// The language extends propositional logic with knowledge operators for
// individual agents (K_i), groups (S_G, E_G, E^k_G, D_G, C_G), the temporal
// variants of Sections 11–12 (E^ε/C^ε, E^⋄/C^⋄, E^T/C^T), linear-time
// operators ◇ and □, and the fixed-point operators ν and μ of Appendix A.
//
// Formulas are immutable trees. Evaluation lives in the kripke and fixpoint
// packages; this package provides construction, printing, parsing, and the
// syntactic analyses (free variables, positivity) that the fixed-point
// semantics requires.
package logic

import "sort"

// Agent identifies a processor/agent by index (0-based).
type Agent int

// Group is a set of agents. A nil Group denotes "all agents in the system";
// the evaluator resolves it against the model. Groups are kept sorted and
// deduplicated by NewGroup.
type Group []Agent

// NewGroup returns a sorted, deduplicated group.
func NewGroup(agents ...Agent) Group {
	g := make(Group, 0, len(agents))
	g = append(g, agents...)
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	out := g[:0]
	for i, a := range g {
		if i == 0 || a != g[i-1] {
			out = append(out, a)
		}
	}
	return out
}

// Contains reports whether the group explicitly contains a. It returns true
// for the nil ("all agents") group.
func (g Group) Contains(a Agent) bool {
	if g == nil {
		return true
	}
	for _, b := range g {
		if b == a {
			return true
		}
	}
	return false
}

// Equal reports whether two groups denote the same agent set, treating nil
// as distinct from any explicit group.
func (g Group) Equal(h Group) bool {
	if (g == nil) != (h == nil) {
		return false
	}
	if len(g) != len(h) {
		return false
	}
	for i := range g {
		if g[i] != h[i] {
			return false
		}
	}
	return true
}

// Formula is a node in the abstract syntax tree of the epistemic language.
type Formula interface {
	// String renders the formula in the concrete syntax accepted by Parse.
	String() string
	isFormula()
}

// Prop is a ground fact about the state of the system (Section 6): its truth
// at a point is given directly by the assignment π, with no reference to
// knowledge.
type Prop struct {
	Name string
}

// Truth is a propositional constant: true or false.
type Truth struct {
	Value bool
}

// Var is a propositional variable bound by a fixed-point operator (App. A).
type Var struct {
	Name string
}

// Not is negation.
type Not struct {
	F Formula
}

// And is n-ary conjunction. An empty conjunction is true.
type And struct {
	Fs []Formula
}

// Or is n-ary disjunction. An empty disjunction is false.
type Or struct {
	Fs []Formula
}

// Implies is material implication (the paper's ⊃).
type Implies struct {
	Ant, Cons Formula
}

// Iff is material equivalence.
type Iff struct {
	L, R Formula
}

// Know is K_i φ: agent i knows φ.
type Know struct {
	Agent Agent
	F     Formula
}

// Someone is S_G φ: some member of G knows φ (⋁_{i∈G} K_i φ).
type Someone struct {
	G Group
	F Formula
}

// Everyone is E_G φ: every member of G knows φ (⋀_{i∈G} K_i φ).
type Everyone struct {
	G Group
	F Formula
}

// Dist is D_G φ: φ is distributed knowledge in G.
type Dist struct {
	G Group
	F Formula
}

// Common is C_G φ: φ is common knowledge in G — the greatest fixed point of
// X ≡ E_G(φ ∧ X), equivalently ⋀_k E^k_G φ under view-based interpretations.
type Common struct {
	G Group
	F Formula
}

// EveryEps is E^ε_G φ (Section 11): there is an interval of ε time units
// containing the current time in which every member of G comes to know φ.
// Eps is measured in the system's discrete clock ticks.
type EveryEps struct {
	G   Group
	Eps int
	F   Formula
}

// CommonEps is C^ε_G φ: ε-common knowledge, the greatest fixed point of
// X ≡ E^ε_G(φ ∧ X).
type CommonEps struct {
	G   Group
	Eps int
	F   Formula
}

// EveryEv is E^⋄_G φ (Section 11): every member of G knows φ at some point
// of the current run.
type EveryEv struct {
	G Group
	F Formula
}

// CommonEv is C^⋄_G φ: eventual common knowledge, the greatest fixed point
// of X ≡ E^⋄_G(φ ∧ X).
type CommonEv struct {
	G Group
	F Formula
}

// EveryTime is E^T_G φ (Section 12): every member of G knows φ at the point
// of the current run where its own clock reads T.
type EveryTime struct {
	G Group
	T int
	F Formula
}

// CommonTime is C^T_G φ: timestamped common knowledge, the greatest fixed
// point of X ≡ E^T_G(φ ∧ X).
type CommonTime struct {
	G Group
	T int
	F Formula
}

// Eventually is ◇φ: φ holds at some point (r, t') of the current run with
// t' ≥ t (footnote 7 of the paper).
type Eventually struct {
	F Formula
}

// Always is □φ: φ holds at every point (r, t') of the current run with
// t' ≥ t.
type Always struct {
	F Formula
}

// Nu is νX.φ: the greatest fixed point of φ viewed as a function of X
// (Appendix A). All free occurrences of X in φ must be positive.
type Nu struct {
	Var  string
	Body Formula
}

// Mu is μX.φ: the least fixed point of φ viewed as a function of X.
type Mu struct {
	Var  string
	Body Formula
}

func (Prop) isFormula()       {}
func (Truth) isFormula()      {}
func (Var) isFormula()        {}
func (Not) isFormula()        {}
func (And) isFormula()        {}
func (Or) isFormula()         {}
func (Implies) isFormula()    {}
func (Iff) isFormula()        {}
func (Know) isFormula()       {}
func (Someone) isFormula()    {}
func (Everyone) isFormula()   {}
func (Dist) isFormula()       {}
func (Common) isFormula()     {}
func (EveryEps) isFormula()   {}
func (CommonEps) isFormula()  {}
func (EveryEv) isFormula()    {}
func (CommonEv) isFormula()   {}
func (EveryTime) isFormula()  {}
func (CommonTime) isFormula() {}
func (Eventually) isFormula() {}
func (Always) isFormula()     {}
func (Nu) isFormula()         {}
func (Mu) isFormula()         {}

// Convenience constructors. These make test and example code read close to
// the paper's notation.

// P returns the ground fact with the given name.
func P(name string) Formula { return Prop{Name: name} }

// True and False are the propositional constants.
var (
	True  Formula = Truth{Value: true}
	False Formula = Truth{Value: false}
)

// X returns the fixed-point variable with the given name.
func X(name string) Formula { return Var{Name: name} }

// Neg returns ¬φ.
func Neg(f Formula) Formula { return Not{F: f} }

// Conj returns the conjunction of fs, flattening nested conjunctions so
// that And is always in n-ary normal form.
func Conj(fs ...Formula) Formula {
	flat := make([]Formula, 0, len(fs))
	for _, f := range fs {
		if a, ok := f.(And); ok {
			flat = append(flat, a.Fs...)
		} else {
			flat = append(flat, f)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return And{Fs: flat}
}

// Disj returns the disjunction of fs, flattening nested disjunctions so
// that Or is always in n-ary normal form.
func Disj(fs ...Formula) Formula {
	flat := make([]Formula, 0, len(fs))
	for _, f := range fs {
		if o, ok := f.(Or); ok {
			flat = append(flat, o.Fs...)
		} else {
			flat = append(flat, f)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return Or{Fs: flat}
}

// Imp returns ant ⊃ cons.
func Imp(ant, cons Formula) Formula { return Implies{Ant: ant, Cons: cons} }

// Equiv returns l ≡ r.
func Equiv(l, r Formula) Formula { return Iff{L: l, R: r} }

// K returns K_i φ.
func K(i Agent, f Formula) Formula { return Know{Agent: i, F: f} }

// S returns S_G φ.
func S(g Group, f Formula) Formula { return Someone{G: g, F: f} }

// E returns E_G φ.
func E(g Group, f Formula) Formula { return Everyone{G: g, F: f} }

// EK returns E^k_G φ as k nested E_G operators. EK(g, 0, φ) is φ itself.
func EK(g Group, k int, f Formula) Formula {
	for ; k > 0; k-- {
		f = Everyone{G: g, F: f}
	}
	return f
}

// D returns D_G φ.
func D(g Group, f Formula) Formula { return Dist{G: g, F: f} }

// C returns C_G φ.
func C(g Group, f Formula) Formula { return Common{G: g, F: f} }

// Eeps returns E^ε_G φ.
func Eeps(g Group, eps int, f Formula) Formula { return EveryEps{G: g, Eps: eps, F: f} }

// Ceps returns C^ε_G φ.
func Ceps(g Group, eps int, f Formula) Formula { return CommonEps{G: g, Eps: eps, F: f} }

// Eev returns E^⋄_G φ.
func Eev(g Group, f Formula) Formula { return EveryEv{G: g, F: f} }

// Cev returns C^⋄_G φ.
func Cev(g Group, f Formula) Formula { return CommonEv{G: g, F: f} }

// Et returns E^T_G φ.
func Et(g Group, ts int, f Formula) Formula { return EveryTime{G: g, T: ts, F: f} }

// Ct returns C^T_G φ.
func Ct(g Group, ts int, f Formula) Formula { return CommonTime{G: g, T: ts, F: f} }

// Ev returns ◇φ.
func Ev(f Formula) Formula { return Eventually{F: f} }

// Alw returns □φ.
func Alw(f Formula) Formula { return Always{F: f} }

// GFP returns νX.body.
func GFP(x string, body Formula) Formula { return Nu{Var: x, Body: body} }

// LFP returns μX.body.
func LFP(x string, body Formula) Formula { return Mu{Var: x, Body: body} }
