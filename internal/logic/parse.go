package logic

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a formula in the concrete syntax documented in print.go.
// It returns an error describing the first syntax problem encountered, and
// rejects formulas violating the positivity restriction on fixed points.
func Parse(input string) (Formula, error) {
	p := &parser{src: input}
	f, err := p.parseFormula(precIff)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("logic: unexpected trailing input at offset %d: %q", p.pos, p.src[p.pos:])
	}
	if err := WellFormed(f); err != nil {
		return nil, err
	}
	return f, nil
}

// MustParse is Parse for statically known formulas; it panics on error.
// It is intended for tests, examples and package-level declarations.
func MustParse(input string) Formula {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("logic: offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek(s string) bool {
	p.skipSpace()
	return strings.HasPrefix(p.src[p.pos:], s)
}

func (p *parser) accept(s string) bool {
	if p.peek(s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if !p.accept(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

// ident consumes a letter-initial identifier ([A-Za-z][A-Za-z0-9_]*).
func (p *parser) ident() (string, bool) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || c == '_' || (p.pos > start && unicode.IsDigit(c)) {
			p.pos++
		} else {
			break
		}
	}
	if p.pos == start {
		return "", false
	}
	return p.src[start:p.pos], true
}

func (p *parser) integer() (int, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && unicode.IsDigit(rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return 0, p.errf("expected integer")
	}
	n, err := strconv.Atoi(p.src[start:p.pos])
	if err != nil {
		return 0, p.errf("bad integer: %v", err)
	}
	return n, nil
}

// group parses an optional "{i,j,...}" group suffix; absence yields nil
// ("all agents").
func (p *parser) group() (Group, error) {
	if !p.accept("{") {
		return nil, nil
	}
	var agents []Agent
	for {
		n, err := p.integer()
		if err != nil {
			return nil, err
		}
		agents = append(agents, Agent(n))
		if p.accept(",") {
			continue
		}
		if err := p.expect("}"); err != nil {
			return nil, err
		}
		return NewGroup(agents...), nil
	}
}

// bracketInt parses "[n]".
func (p *parser) bracketInt() (int, error) {
	if err := p.expect("["); err != nil {
		return 0, err
	}
	n, err := p.integer()
	if err != nil {
		return 0, err
	}
	if err := p.expect("]"); err != nil {
		return 0, err
	}
	return n, nil
}

// parseFormula parses at the given minimum precedence level.
func (p *parser) parseFormula(minPrec int) (Formula, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case minPrec <= precAnd && p.peek("&"):
			p.accept("&")
			right, err := p.parseFormula(precAnd + 1)
			if err != nil {
				return nil, err
			}
			left = Conj(left, right)
		case minPrec <= precOr && !p.peek("|>") && p.peek("|"):
			p.accept("|")
			right, err := p.parseFormula(precOr + 1)
			if err != nil {
				return nil, err
			}
			left = Disj(left, right)
		case minPrec <= precIff && p.peek("<->"):
			p.accept("<->")
			right, err := p.parseFormula(precIff + 1)
			if err != nil {
				return nil, err
			}
			left = Iff{L: left, R: right}
		case minPrec <= precImplies && p.peek("->"):
			p.accept("->")
			right, err := p.parseFormula(precImplies) // right associative
			if err != nil {
				return nil, err
			}
			left = Implies{Ant: left, Cons: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (Formula, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, p.errf("unexpected end of input")
	}

	switch {
	case p.accept("~"):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{F: f}, nil
	case p.accept("<>"):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Eventually{F: f}, nil
	case p.accept("[]"):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Always{F: f}, nil
	case p.accept("("):
		f, err := p.parseFormula(precIff)
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return f, nil
	}

	id, ok := p.ident()
	if !ok {
		return nil, p.errf("expected formula, found %q", rest(p.src, p.pos))
	}
	return p.parseIdent(id)
}

// rest returns a short prefix of the remaining input for error messages.
func rest(src string, pos int) string {
	r := src[pos:]
	if len(r) > 12 {
		r = r[:12] + "..."
	}
	return r
}

// parseIdent dispatches on an identifier: keyword, modal operator, variable
// or ground fact.
func (p *parser) parseIdent(id string) (Formula, error) {
	switch id {
	case "true":
		return Truth{Value: true}, nil
	case "false":
		return Truth{Value: false}, nil
	case "nu", "mu":
		v, ok := p.ident()
		if !ok {
			return nil, p.errf("expected variable after %q", id)
		}
		if err := p.expect("."); err != nil {
			return nil, err
		}
		body, err := p.parseFormula(precIff)
		if err != nil {
			return nil, err
		}
		if id == "nu" {
			return Nu{Var: v, Body: body}, nil
		}
		return Mu{Var: v, Body: body}, nil
	}

	// K<int>: individual knowledge.
	if strings.HasPrefix(id, "K") && len(id) > 1 && allDigits(id[1:]) {
		n, err := strconv.Atoi(id[1:])
		if err != nil {
			return nil, p.errf("bad agent index in %q", id)
		}
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Know{Agent: Agent(n), F: f}, nil
	}

	// Modal group operators. Note longest-match ordering: Ee/Ev/Et before E,
	// Ce/Cv/Ct before C.
	switch id {
	case "Ee", "Ce":
		eps, err := p.bracketInt()
		if err != nil {
			return nil, err
		}
		g, err := p.group()
		if err != nil {
			return nil, err
		}
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if id == "Ee" {
			return EveryEps{G: g, Eps: eps, F: f}, nil
		}
		return CommonEps{G: g, Eps: eps, F: f}, nil
	case "Et", "Ct":
		ts, err := p.bracketInt()
		if err != nil {
			return nil, err
		}
		g, err := p.group()
		if err != nil {
			return nil, err
		}
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if id == "Et" {
			return EveryTime{G: g, T: ts, F: f}, nil
		}
		return CommonTime{G: g, T: ts, F: f}, nil
	case "Ev", "Cv":
		g, err := p.group()
		if err != nil {
			return nil, err
		}
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if id == "Ev" {
			return EveryEv{G: g, F: f}, nil
		}
		return CommonEv{G: g, F: f}, nil
	case "E":
		// optional ^k exponent
		k := 1
		if p.accept("^") {
			var err error
			k, err = p.integer()
			if err != nil {
				return nil, err
			}
			if k < 1 {
				return nil, p.errf("E^k requires k >= 1")
			}
		}
		g, err := p.group()
		if err != nil {
			return nil, err
		}
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return EK(g, k, f), nil
	case "S", "D", "C":
		g, err := p.group()
		if err != nil {
			return nil, err
		}
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		switch id {
		case "S":
			return Someone{G: g, F: f}, nil
		case "D":
			return Dist{G: g, F: f}, nil
		default:
			return Common{G: g, F: f}, nil
		}
	}

	// Uppercase-initial identifiers are fixed-point variables; lowercase are
	// ground facts.
	if unicode.IsUpper(rune(id[0])) {
		return Var{Name: id}, nil
	}
	return Prop{Name: id}, nil
}

func allDigits(s string) bool {
	for _, c := range s {
		if !unicode.IsDigit(c) {
			return false
		}
	}
	return len(s) > 0
}
