package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplifyBasics(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"~~m", "m"},
		{"~true", "false"},
		{"~~~m", "~m"},
		{"m & true", "m"},
		{"m & false", "false"},
		{"m | false", "m"},
		{"m | true", "true"},
		{"m & m", "m"},
		{"m | m | p", "m | p"},
		{"(m & p) & q", "m & p & q"},
		{"true -> m", "m"},
		{"false -> m", "true"},
		{"m -> true", "true"},
		{"m -> false", "~m"},
		{"m -> m", "true"},
		{"m <-> true", "m"},
		{"m <-> false", "~m"},
		{"m <-> m", "true"},
		{"K0 true", "true"},
		{"K0 false", "false"},
		{"E true", "true"},
		{"C{0,1} true", "true"},
		{"D false", "false"},
		{"S true", "true"},
		{"Ee[2] true", "true"},
		{"Cv false", "false"},
		{"<> true", "true"},
		{"[] false", "false"},
		{"nu X . X", "true"},
		{"mu X . X", "false"},
		{"nu X . m", "m"}, // vacuous binder
		{"K0 (m & true)", "K0 m"},
		{"C (false | sent)", "C sent"},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got := Simplify(MustParse(tt.in))
			want := MustParse(tt.want)
			if !Equal(got, want) {
				t.Errorf("Simplify(%q) = %s, want %s", tt.in, got, want)
			}
		})
	}
}

func TestSimplifyKeepsTimestampedTrue(t *testing.T) {
	// E^T true is not valid: the clock may never read T.
	for _, src := range []string{"Et[3] true", "Ct[3] true"} {
		got := Simplify(MustParse(src))
		if Equal(got, True) {
			t.Errorf("Simplify(%q) folded to true; that is unsound", src)
		}
	}
	// But E^T false is false.
	if got := Simplify(MustParse("Et[3] false")); !Equal(got, False) {
		t.Errorf("Simplify(Et[3] false) = %s, want false", got)
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := genFormula(rng, 1+rng.Intn(5), nil)
		once := Simplify(orig)
		twice := Simplify(once)
		return Equal(once, twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSimplifyPreservesWellFormedness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := genFormula(rng, 1+rng.Intn(5), nil)
		return WellFormed(Simplify(orig)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSimplifyNeverGrows(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := genFormula(rng, 1+rng.Intn(5), nil)
		return Size(Simplify(orig)) <= Size(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSimplify(b *testing.B) {
	f := MustParse("K0 (m & true & (p | false)) & C{0,1} (~~sent & (q -> q))")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Simplify(f)
	}
}
