package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKeyClosedness(t *testing.T) {
	tests := []struct {
		src    string
		closed bool
	}{
		{"p", true},
		{"K0 (p & q)", true},
		{"nu X . E (p & X)", true}, // X is bound inside
		{"mu Y . p | E Y", true},
		{"nu X . E (p & (mu Y . X | Y))", true},
		{"C{0,1} p", true},
	}
	for _, tt := range tests {
		if _, closed := Key(MustParse(tt.src)); closed != tt.closed {
			t.Errorf("Key(%q) closed = %v, want %v", tt.src, closed, tt.closed)
		}
	}
	// Free variables make a formula open; AppendKey must track shadowing.
	if _, closed := Key(X("X")); closed {
		t.Error("bare variable should be open")
	}
	open := Conj(P("p"), X("Z"))
	if _, closed := Key(open); closed {
		t.Error("conjunction with a free variable should be open")
	}
	// Same-named binder in a sibling does not capture.
	f := Conj(GFP("X", Conj(P("p"), X("X"))), X("X"))
	if _, closed := Key(f); closed {
		t.Error("free X next to a bound X should leave the formula open")
	}
}

func TestKeyAgreesWithEqual(t *testing.T) {
	gen := func(rng *rand.Rand, depth int) Formula {
		return randomFormulaForKeys(rng, depth)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := gen(rng, 3)
		b := gen(rng, 3)
		ka, _ := Key(a)
		kb, _ := Key(b)
		if Equal(a, b) != (ka == kb) {
			t.Logf("a = %s, b = %s, ka = %q, kb = %q", a, b, ka, kb)
			return false
		}
		// A formula always matches its own key, and keys are stable.
		ka2, _ := Key(a)
		return ka == ka2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// randomFormulaForKeys draws from a small pool so that random pairs collide
// often enough to exercise the equal-keys direction.
func randomFormulaForKeys(rng *rand.Rand, depth int) Formula {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(4) {
		case 0:
			return P("p")
		case 1:
			return P("q")
		case 2:
			return True
		default:
			return X("X")
		}
	}
	sub := func() Formula { return randomFormulaForKeys(rng, depth-1) }
	switch rng.Intn(8) {
	case 0:
		return Neg(sub())
	case 1:
		return And{Fs: []Formula{sub(), sub()}}
	case 2:
		return Or{Fs: []Formula{sub(), sub()}}
	case 3:
		return K(Agent(rng.Intn(2)), sub())
	case 4:
		return E(NewGroup(0, 1), sub())
	case 5:
		return C(nil, sub())
	case 6:
		return GFP("X", Conj(sub(), X("X")))
	default:
		return Imp(sub(), sub())
	}
}
