package logic

import "strconv"

// AppendKey appends a canonical structural key of f to dst and reports
// whether f is closed (contains no free fixed-point variables). Two
// formulas receive the same key iff they are structurally equal in the
// sense of Equal. The encoding is prefix-free: names are length-prefixed
// and n-ary connectives carry their arity, so keys of distinct formulas
// never collide.
//
// The kripke evaluation engine uses keys to memoize subformula denotations
// within a single model-checking run: closed subformulas denote the same
// world set at every occurrence, so their keys index a per-evaluation
// cache. Appending into a caller-owned buffer keeps key construction
// allocation-free on the hot path.
//
// bound is the stack of fixed-point variables in scope; pass nil at the
// top level. It may be appended to internally, so callers reusing a
// scratch slice should pass bound[:0].
func AppendKey(dst []byte, f Formula, bound []string) ([]byte, bool) {
	switch n := f.(type) {
	case Prop:
		return appendName(append(dst, 'p'), n.Name), true
	case Truth:
		if n.Value {
			return append(dst, '1'), true
		}
		return append(dst, '0'), true
	case Var:
		for _, b := range bound {
			if b == n.Name {
				return appendName(append(dst, 'x'), n.Name), true
			}
		}
		return appendName(append(dst, 'x'), n.Name), false
	case Not:
		return AppendKey(append(dst, '!'), n.F, bound)
	case And:
		return appendNary(dst, '&', n.Fs, bound)
	case Or:
		return appendNary(dst, '|', n.Fs, bound)
	case Implies:
		dst, c1 := AppendKey(append(dst, '>'), n.Ant, bound)
		dst, c2 := AppendKey(dst, n.Cons, bound)
		return dst, c1 && c2
	case Iff:
		dst, c1 := AppendKey(append(dst, '='), n.L, bound)
		dst, c2 := AppendKey(dst, n.R, bound)
		return dst, c1 && c2
	case Know:
		dst = strconv.AppendInt(append(dst, 'K'), int64(n.Agent), 10)
		return AppendKey(append(dst, ':'), n.F, bound)
	case Someone:
		return AppendKey(appendGroup(append(dst, 'S'), n.G), n.F, bound)
	case Everyone:
		return AppendKey(appendGroup(append(dst, 'E'), n.G), n.F, bound)
	case Dist:
		return AppendKey(appendGroup(append(dst, 'D'), n.G), n.F, bound)
	case Common:
		return AppendKey(appendGroup(append(dst, 'C'), n.G), n.F, bound)
	case EveryEps:
		dst = strconv.AppendInt(append(dst, 'E', 'e'), int64(n.Eps), 10)
		return AppendKey(appendGroup(dst, n.G), n.F, bound)
	case CommonEps:
		dst = strconv.AppendInt(append(dst, 'C', 'e'), int64(n.Eps), 10)
		return AppendKey(appendGroup(dst, n.G), n.F, bound)
	case EveryEv:
		return AppendKey(appendGroup(append(dst, 'E', 'v'), n.G), n.F, bound)
	case CommonEv:
		return AppendKey(appendGroup(append(dst, 'C', 'v'), n.G), n.F, bound)
	case EveryTime:
		dst = strconv.AppendInt(append(dst, 'E', 't'), int64(n.T), 10)
		return AppendKey(appendGroup(dst, n.G), n.F, bound)
	case CommonTime:
		dst = strconv.AppendInt(append(dst, 'C', 't'), int64(n.T), 10)
		return AppendKey(appendGroup(dst, n.G), n.F, bound)
	case Eventually:
		return AppendKey(append(dst, 'F'), n.F, bound)
	case Always:
		return AppendKey(append(dst, 'G'), n.F, bound)
	case Nu:
		return AppendKey(appendName(append(dst, 'n'), n.Var), n.Body, append(bound, n.Var))
	case Mu:
		return AppendKey(appendName(append(dst, 'm'), n.Var), n.Body, append(bound, n.Var))
	}
	// Unknown node: fall back to the rendered form; never memoizable.
	return append(dst, f.String()...), false
}

// Key returns the structural key of f as a string, with the closedness
// flag of AppendKey.
func Key(f Formula) (string, bool) {
	dst, closed := AppendKey(nil, f, nil)
	return string(dst), closed
}

func appendName(dst []byte, name string) []byte {
	dst = strconv.AppendInt(dst, int64(len(name)), 10)
	dst = append(dst, ':')
	return append(dst, name...)
}

func appendNary(dst []byte, op byte, fs []Formula, bound []string) ([]byte, bool) {
	dst = strconv.AppendInt(append(dst, op), int64(len(fs)), 10)
	dst = append(dst, ':')
	closed := true
	for _, f := range fs {
		var c bool
		dst, c = AppendKey(dst, f, bound)
		closed = closed && c
	}
	return dst, closed
}

func appendGroup(dst []byte, g Group) []byte {
	if g == nil {
		return append(dst, '*')
	}
	dst = append(dst, '{')
	for i, a := range g {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(a), 10)
	}
	return append(dst, '}')
}
