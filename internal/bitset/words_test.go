package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWordsAndWordMask(t *testing.T) {
	s := New(70) // two words, second one partial
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(69)
	w := s.Words()
	if len(w) != 2 {
		t.Fatalf("Words len = %d, want 2", len(w))
	}
	if w[0] != 1|1<<63 {
		t.Errorf("word 0 = %x", w[0])
	}
	if w[1] != 1|1<<5 {
		t.Errorf("word 1 = %x", w[1])
	}
	if s.WordMask(0) != ^uint64(0) {
		t.Errorf("WordMask(0) = %x, want all ones", s.WordMask(0))
	}
	if s.WordMask(1) != (1<<6)-1 {
		t.Errorf("WordMask(1) = %x, want 0x3f", s.WordMask(1))
	}
	// Words is the live backing store: writes are visible to the set.
	w[1] |= 1 << 2
	if !s.Contains(66) {
		t.Error("write through Words not visible")
	}
	// A multiple-of-64 capacity has a full final mask.
	if New(128).WordMask(1) != ^uint64(0) {
		t.Error("WordMask of full final word should be all ones")
	}
}

func TestNextSet(t *testing.T) {
	s := New(200)
	for _, e := range []int{3, 64, 150} {
		s.Add(e)
	}
	got := []int{}
	for i, ok := s.NextSet(0); ok; i, ok = s.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != 3 || got[0] != 3 || got[1] != 64 || got[2] != 150 {
		t.Errorf("NextSet walk = %v", got)
	}
	if _, ok := s.NextSet(151); ok {
		t.Error("NextSet past the last element should report false")
	}
	if _, ok := New(10).NextSet(0); ok {
		t.Error("NextSet on empty set should report false")
	}
}

func TestContainsAllAndXor(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Add(i)
			}
			if rng.Intn(2) == 0 {
				b.Add(i)
			}
		}
		// ContainsAll is the flipped SubsetOf.
		if a.ContainsAll(b) != b.SubsetOf(a) {
			return false
		}
		sup := Or(a, b)
		if !sup.ContainsAll(a) || !sup.ContainsAll(b) {
			return false
		}
		// Xor agrees with the elementwise definition.
		x := a.Clone()
		x.Xor(b)
		for i := 0; i < n; i++ {
			if x.Contains(i) != (a.Contains(i) != b.Contains(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
