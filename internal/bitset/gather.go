package bitset

import "math/bits"

// Rank returns the number of members of the set that are strictly smaller
// than i. For a member w of the set, Rank(w) is w's index in Elements() —
// the world-renaming function of a model restriction.
func (s *Set) Rank(i int) int {
	if i <= 0 {
		return 0
	}
	if i > s.n {
		i = s.n
	}
	wi := i / wordBits
	r := 0
	for k := 0; k < wi; k++ {
		r += bits.OnesCount64(s.words[k])
	}
	if rem := uint(i) % wordBits; rem != 0 {
		r += bits.OnesCount64(s.words[wi] & ((1 << rem) - 1))
	}
	return r
}

// Gather writes into dst the compaction of src through keep: bit j of dst is
// bit w of src, where w is the j-th member of keep. It is the word-level
// valuation-column kernel of model restriction — each 64-world block is
// compressed with a parallel-suffix bit extract instead of per-element
// probing. src and keep must share a capacity; dst must have capacity
// keep.Count(). dst is overwritten.
func Gather(dst, src, keep *Set) {
	src.mustMatch(keep)
	dw := dst.words
	for i := range dw {
		dw[i] = 0
	}
	var (
		acc  uint64 // bits gathered so far for the current output word
		fill uint   // number of valid low bits in acc
		out  int    // next output word index
	)
	for wi, m := range keep.words {
		if m == 0 {
			continue
		}
		pc := uint(bits.OnesCount64(m))
		x := extractBits(src.words[wi], m)
		acc |= x << fill
		if fill+pc >= wordBits {
			dw[out] = acc
			out++
			// Go shifts by >= 64 yield 0, so the boundary cases (fill == 0
			// with a full word, or an exact fit) fall out correctly.
			acc = x >> (wordBits - fill)
			fill = fill + pc - wordBits
		} else {
			fill += pc
		}
	}
	if fill > 0 && out < len(dw) {
		dw[out] = acc
	}
	dst.trim()
}

// extractBits compresses the bits of x selected by mask m into the low end
// of the result (the PEXT instruction, emulated with the parallel-suffix
// method of Hacker's Delight §7-4: O(log word) steps regardless of mask
// density).
func extractBits(x, m uint64) uint64 {
	x &= m
	mk := ^m << 1 // count 1s to the right of each bit
	for i := uint(0); i < 6; i++ {
		mp := mk ^ (mk << 1)
		mp ^= mp << 2
		mp ^= mp << 4
		mp ^= mp << 8
		mp ^= mp << 16
		mp ^= mp << 32
		mv := mp & m // bits to move this round
		m = (m ^ mv) | (mv >> (1 << i))
		t := x & mv
		x = (x ^ t) | (t >> (1 << i))
		mk &= ^mp
	}
	return x
}
