package bitset

import (
	"math/rand"
	"testing"
)

// gatherRef is the per-element reference implementation of Gather.
func gatherRef(dst, src, keep *Set) {
	dst.Clear()
	j := 0
	keep.ForEach(func(w int) bool {
		if src.Contains(w) {
			dst.Add(j)
		}
		j++
		return true
	})
}

func TestGatherAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 200, 513, 4096} {
		for trial := 0; trial < 20; trial++ {
			src := New(n)
			keep := New(n)
			for w := 0; w < n; w++ {
				if rng.Intn(2) == 0 {
					src.Add(w)
				}
				if rng.Intn(3) != 0 {
					keep.Add(w)
				}
			}
			got := New(keep.Count())
			want := New(keep.Count())
			Gather(got, src, keep)
			gatherRef(want, src, keep)
			if !got.Equal(want) {
				t.Fatalf("n=%d trial=%d: Gather = %s, want %s", n, trial, got, want)
			}
		}
	}
}

func TestGatherEdgeMasks(t *testing.T) {
	// Full keep: gather is a copy.
	src := New(130)
	for _, w := range []int{0, 1, 63, 64, 100, 129} {
		src.Add(w)
	}
	keep := NewFull(130)
	dst := New(130)
	Gather(dst, src, keep)
	if !dst.Equal(src) {
		t.Fatalf("gather through full mask: %s != %s", dst, src)
	}
	// Empty keep: empty result.
	empty := New(0)
	Gather(empty, src, New(130))
	if !empty.IsEmpty() {
		t.Fatal("gather through empty mask is nonempty")
	}
	// Overwrites stale dst contents.
	stale := NewFull(130)
	Gather(stale, New(130), keep)
	if !stale.IsEmpty() {
		t.Fatalf("gather did not overwrite dst: %s", stale)
	}
}

func TestRank(t *testing.T) {
	s := New(200)
	members := []int{0, 3, 63, 64, 65, 127, 199}
	for _, w := range members {
		s.Add(w)
	}
	for want, w := range members {
		if got := s.Rank(w); got != want {
			t.Fatalf("Rank(%d) = %d, want %d", w, got, want)
		}
	}
	if got := s.Rank(200); got != len(members) {
		t.Fatalf("Rank(cap) = %d, want %d", got, len(members))
	}
	if got := s.Rank(1000); got != len(members) {
		t.Fatalf("Rank beyond cap = %d, want %d", got, len(members))
	}
	if got := s.Rank(-5); got != 0 {
		t.Fatalf("Rank(-5) = %d, want 0", got)
	}
}

func TestExtractBits(t *testing.T) {
	cases := []struct{ x, m, want uint64 }{
		{0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF},
		{0xDEADBEEF, 0, 0},
		{0b1010, 0b1110, 0b101},
		{0b1000, 0b1000, 0b1},
		{0xAAAAAAAAAAAAAAAA, 0xAAAAAAAAAAAAAAAA, 0xFFFFFFFF},
		{0xAAAAAAAAAAAAAAAA, 0x5555555555555555, 0},
	}
	for _, c := range cases {
		if got := extractBits(c.x, c.m); got != c.want {
			t.Fatalf("extractBits(%#x, %#x) = %#x, want %#x", c.x, c.m, got, c.want)
		}
	}
}
