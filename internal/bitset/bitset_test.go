package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	tests := []struct {
		name string
		n    int
	}{
		{"zero", 0},
		{"one", 1},
		{"word boundary", 64},
		{"word boundary plus one", 65},
		{"large", 1000},
		{"negative clamps to zero", -5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := New(tt.n)
			if !s.IsEmpty() {
				t.Errorf("New(%d) not empty", tt.n)
			}
			if got := s.Count(); got != 0 {
				t.Errorf("Count() = %d, want 0", got)
			}
		})
	}
}

func TestAddContainsRemove(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Errorf("Contains(%d) = false after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count() = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Contains(64) = true after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count() = %d, want 7", got)
	}
}

func TestOutOfRangeIgnored(t *testing.T) {
	s := New(10)
	s.Add(-1)
	s.Add(10)
	s.Add(100)
	if !s.IsEmpty() {
		t.Error("out-of-range Add modified the set")
	}
	if s.Contains(-1) || s.Contains(10) {
		t.Error("out-of-range Contains returned true")
	}
	s.Remove(-1) // must not panic
	s.Remove(99)
}

func TestFillAndNot(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 129} {
		s := NewFull(n)
		if got := s.Count(); got != n {
			t.Errorf("NewFull(%d).Count() = %d", n, got)
		}
		if n > 0 && !s.IsFull() {
			t.Errorf("NewFull(%d) not full", n)
		}
		s.Not()
		if !s.IsEmpty() {
			t.Errorf("complement of full set (n=%d) not empty", n)
		}
		s.Not()
		if got := s.Count(); got != n {
			t.Errorf("double complement count = %d, want %d", got, n)
		}
	}
}

func TestBinaryOps(t *testing.T) {
	a := New(100)
	b := New(100)
	for i := 0; i < 100; i += 2 {
		a.Add(i) // evens
	}
	for i := 0; i < 100; i += 3 {
		b.Add(i) // multiples of 3
	}

	inter := And(a, b)
	for i := 0; i < 100; i++ {
		want := i%2 == 0 && i%3 == 0
		if inter.Contains(i) != want {
			t.Errorf("And: element %d membership = %v, want %v", i, inter.Contains(i), want)
		}
	}

	union := Or(a, b)
	for i := 0; i < 100; i++ {
		want := i%2 == 0 || i%3 == 0
		if union.Contains(i) != want {
			t.Errorf("Or: element %d membership = %v, want %v", i, union.Contains(i), want)
		}
	}

	diff := AndNot(a, b)
	for i := 0; i < 100; i++ {
		want := i%2 == 0 && i%3 != 0
		if diff.Contains(i) != want {
			t.Errorf("AndNot: element %d membership = %v, want %v", i, diff.Contains(i), want)
		}
	}
}

func TestSubsetAndIntersects(t *testing.T) {
	a := New(50)
	b := New(50)
	a.Add(3)
	a.Add(7)
	b.Add(3)
	b.Add(7)
	b.Add(11)
	if !a.SubsetOf(b) {
		t.Error("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Error("b should not be subset of a")
	}
	if !a.Intersects(b) {
		t.Error("a and b intersect")
	}
	c := New(50)
	c.Add(20)
	if a.Intersects(c) {
		t.Error("a and c are disjoint")
	}
	if !c.SubsetOf(b) == false {
		t.Error("c is not a subset of b")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Add(5)
	b := a.Clone()
	b.Add(6)
	if a.Contains(6) {
		t.Error("Clone shares storage with original")
	}
	if !b.Contains(5) {
		t.Error("Clone lost element")
	}
}

func TestEqual(t *testing.T) {
	a := New(70)
	b := New(70)
	if !a.Equal(b) {
		t.Error("two empty sets should be equal")
	}
	a.Add(69)
	if a.Equal(b) {
		t.Error("sets differ; Equal = true")
	}
	b.Add(69)
	if !a.Equal(b) {
		t.Error("identical sets; Equal = false")
	}
	c := New(71)
	c.Add(69)
	if a.Equal(c) {
		t.Error("different capacities should never be equal")
	}
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	s := New(200)
	want := []int{1, 64, 65, 128, 199}
	for _, i := range want {
		s.Add(i)
	}
	got := s.Elements()
	if len(got) != len(want) {
		t.Fatalf("Elements() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elements() = %v, want %v", got, want)
		}
	}
	var visited []int
	s.ForEach(func(i int) bool {
		visited = append(visited, i)
		return len(visited) < 2
	})
	if len(visited) != 2 {
		t.Errorf("early stop visited %d elements, want 2", len(visited))
	}
}

func TestNext(t *testing.T) {
	s := New(200)
	s.Add(5)
	s.Add(64)
	s.Add(150)
	tests := []struct {
		from, want int
	}{
		{-3, 5}, {0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 150}, {150, 150}, {151, -1}, {500, -1},
	}
	for _, tt := range tests {
		if got := s.Next(tt.from); got != tt.want {
			t.Errorf("Next(%d) = %d, want %d", tt.from, got, tt.want)
		}
	}
}

func TestString(t *testing.T) {
	s := New(10)
	if got := s.String(); got != "{}" {
		t.Errorf("empty String() = %q", got)
	}
	s.Add(1)
	s.Add(3)
	if got := s.String(); got != "{1, 3}" {
		t.Errorf("String() = %q, want {1, 3}", got)
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("And with mismatched capacity did not panic")
		}
	}()
	a := New(10)
	b := New(11)
	a.And(b)
}

// randomSet builds a reference map-based set and the bitset under test from
// the same membership vector.
func randomSet(rng *rand.Rand, n int) (*Set, map[int]bool) {
	s := New(n)
	ref := make(map[int]bool)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			s.Add(i)
			ref[i] = true
		}
	}
	return s, ref
}

// TestQuickAgainstMapModel cross-checks all set algebra against a map-based
// reference model on random inputs.
func TestQuickAgainstMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		a, ra := randomSet(rng, n)
		b, rb := randomSet(rng, n)

		union := Or(a, b)
		inter := And(a, b)
		diff := AndNot(a, b)
		comp := Not(a)

		for i := 0; i < n; i++ {
			if union.Contains(i) != (ra[i] || rb[i]) {
				return false
			}
			if inter.Contains(i) != (ra[i] && rb[i]) {
				return false
			}
			if diff.Contains(i) != (ra[i] && !rb[i]) {
				return false
			}
			if comp.Contains(i) != !ra[i] {
				return false
			}
		}
		// De Morgan: ¬(a ∪ b) == ¬a ∩ ¬b
		lhs := Not(Or(a, b))
		rhs := And(Not(a), Not(b))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickCountConsistency verifies Count agrees with element iteration.
func TestQuickCountConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		s, ref := randomSet(rng, n)
		if s.Count() != len(ref) {
			return false
		}
		els := s.Elements()
		if len(els) != len(ref) {
			return false
		}
		for _, e := range els {
			if !ref[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAnd(b *testing.B) {
	x := NewFull(1 << 16)
	y := NewFull(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.And(y)
	}
}

func BenchmarkCount(b *testing.B) {
	x := NewFull(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Count()
	}
}

// TestRemoveRange checks the word-level range removal against a per-bit
// reference across word boundaries: unaligned ends, single-word spans,
// word-aligned ends (hi%64 == 0), whole-universe spans, empty and
// out-of-range intervals.
func TestRemoveRange(t *testing.T) {
	cases := []struct{ n, lo, hi int }{
		{10, 2, 7},     // single word, interior
		{64, 0, 64},    // exactly one full word
		{70, 60, 66},   // straddles a word boundary
		{200, 3, 64},   // hi on a word boundary
		{200, 64, 130}, // lo on a word boundary
		{200, 0, 200},  // whole universe
		{200, 150, 150},
		{200, 150, 140}, // empty (lo >= hi)
		{200, -5, 10},   // clamped low
		{200, 190, 300}, // clamped high
		{130, 1, 129},   // spans three words, both ends unaligned
	}
	for _, tc := range cases {
		got := NewFull(tc.n)
		got.RemoveRange(tc.lo, tc.hi)
		want := NewFull(tc.n)
		for i := tc.lo; i < tc.hi; i++ {
			want.Remove(i)
		}
		if !got.Equal(want) {
			t.Errorf("RemoveRange(n=%d, %d, %d) = %s, want %s", tc.n, tc.lo, tc.hi, got, want)
		}
		if got.Count() != want.Count() {
			t.Errorf("RemoveRange(n=%d, %d, %d): count %d, want %d", tc.n, tc.lo, tc.hi, got.Count(), want.Count())
		}
	}
}
