// Package bitset provides dense, fixed-capacity bit sets.
//
// Bit sets are the world-set representation used throughout the epistemic
// model checker: a formula's denotation in a finite Kripke model is the set
// of worlds at which it holds, and the fixed-point semantics of Appendix A
// of Halpern & Moses is computed by iterating set-valued functions. All
// operations are O(capacity/64).
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit set over the universe [0, Cap).
//
// The zero value is an empty set of capacity zero; use New to create a set
// with a given capacity. Binary operations require both operands to have the
// same capacity.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set over the universe [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// NewFull returns the set {0, 1, ..., n-1}.
func NewFull(n int) *Set {
	s := New(n)
	s.Fill()
	return s
}

// Cap returns the capacity of the universe.
func (s *Set) Cap() int { return s.n }

// Contains reports whether i is a member of the set. Out-of-range indices
// are never members.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Add inserts i into the set. Out-of-range indices are ignored.
func (s *Set) Add(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes i from the set. Out-of-range indices are ignored.
func (s *Set) Remove(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// RemoveRange deletes every element in the half-open interval [lo, hi)
// from the set, whole words at a time. Out-of-range portions are ignored.
func (s *Set) RemoveRange(lo, hi int) {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return
	}
	lw, hw := lo/wordBits, (hi-1)/wordBits
	loMask := ^uint64(0) << (uint(lo) % wordBits)
	hiMask := ^uint64(0) >> (wordBits - 1 - uint(hi-1)%wordBits)
	if lw == hw {
		s.words[lw] &^= loMask & hiMask
		return
	}
	s.words[lw] &^= loMask
	for wi := lw + 1; wi < hw; wi++ {
		s.words[wi] = 0
	}
	s.words[hw] &^= hiMask
}

// Fill adds every element of the universe to the set.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// Clear removes every element from the set.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// trim zeroes the unused high bits of the last word so that Count, Equal and
// IsFull remain exact.
func (s *Set) trim() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << (uint(s.n) % wordBits)) - 1
	}
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether the set has no elements.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// IsFull reports whether the set contains the whole universe.
func (s *Set) IsFull() bool { return s.Count() == s.n }

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Copy overwrites s with the contents of other. The capacities must match.
func (s *Set) Copy(other *Set) {
	s.mustMatch(other)
	copy(s.words, other.words)
}

// Equal reports whether s and other contain exactly the same elements.
// Sets of different capacity are never equal.
func (s *Set) Equal(other *Set) bool {
	if s.n != other.n {
		return false
	}
	for i, w := range s.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// And replaces s with s ∩ other.
func (s *Set) And(other *Set) {
	s.mustMatch(other)
	for i := range s.words {
		s.words[i] &= other.words[i]
	}
}

// Or replaces s with s ∪ other.
func (s *Set) Or(other *Set) {
	s.mustMatch(other)
	for i := range s.words {
		s.words[i] |= other.words[i]
	}
}

// AndNot replaces s with s \ other.
func (s *Set) AndNot(other *Set) {
	s.mustMatch(other)
	for i := range s.words {
		s.words[i] &^= other.words[i]
	}
}

// Xor replaces s with the symmetric difference s △ other.
func (s *Set) Xor(other *Set) {
	s.mustMatch(other)
	for i := range s.words {
		s.words[i] ^= other.words[i]
	}
}

// Not replaces s with its complement relative to the universe.
func (s *Set) Not() {
	for i := range s.words {
		s.words[i] = ^s.words[i]
	}
	s.trim()
}

// ContainsAll reports whether s is a superset of other (other ⊆ s) — the
// flipped form of SubsetOf, reading in argument order. One AND-NOT per
// word, no per-element probing.
func (s *Set) ContainsAll(other *Set) bool {
	s.mustMatch(other)
	for i, w := range other.words {
		if w&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is also in other.
func (s *Set) SubsetOf(other *Set) bool {
	s.mustMatch(other)
	for i, w := range s.words {
		if w&^other.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and other share at least one element.
func (s *Set) Intersects(other *Set) bool {
	s.mustMatch(other)
	for i, w := range s.words {
		if w&other.words[i] != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for each element of the set in increasing order. If fn
// returns false, iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Elements returns the members of the set in increasing order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Next returns the smallest element >= i, or -1 if there is none.
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// NextSet returns the smallest element >= i together with true, or (0,
// false) if no element >= i exists — the explicit-ok twin of Next, for
// callers that would otherwise have to treat -1 as a sentinel.
func (s *Set) NextSet(i int) (int, bool) {
	n := s.Next(i)
	if n < 0 {
		return 0, false
	}
	return n, true
}

// Words exposes the backing word slice of the set: bit i of Words()[i/64]
// is set iff i is a member. The slice is shared with the set, not a copy —
// callers may read and write it to implement word-level kernels, but must
// not set bits at or beyond Cap() (use WordMask for the final partial
// word).
func (s *Set) Words() []uint64 { return s.words }

// WordMask returns the mask of in-universe bits for word wi: all ones for
// interior words and the partial mask for the final word of a capacity that
// is not a multiple of 64.
func (s *Set) WordMask(wi int) uint64 {
	if wi == len(s.words)-1 && s.n%wordBits != 0 {
		return (1 << (uint(s.n) % wordBits)) - 1
	}
	return ^uint64(0)
}

// String renders the set as "{e1, e2, ...}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) mustMatch(other *Set) {
	if s.n != other.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, other.n))
	}
}

// And returns a ∩ b as a new set.
func And(a, b *Set) *Set {
	c := a.Clone()
	c.And(b)
	return c
}

// Or returns a ∪ b as a new set.
func Or(a, b *Set) *Set {
	c := a.Clone()
	c.Or(b)
	return c
}

// Not returns the complement of a as a new set.
func Not(a *Set) *Set {
	c := a.Clone()
	c.Not()
	return c
}

// AndNot returns a \ b as a new set.
func AndNot(a, b *Set) *Set {
	c := a.Clone()
	c.AndNot(b)
	return c
}
