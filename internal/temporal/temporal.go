// Package temporal implements the analysis of the attainable variants of
// common knowledge from Sections 11 and 12 of Halpern & Moses: machine
// checkers for Theorem 9 (unreliable communication gates C^ε and C^⋄ on the
// silent run), Theorem 11 (asynchronous channels cannot yield C^ε), and
// Theorem 12 (the relationships between timestamped common knowledge C^T
// and C, C^ε, C^⋄ under different clock regimes), plus the "OK protocol"
// example showing that successful communication can prevent ε-common
// knowledge.
//
// The temporal operators themselves are evaluated by the runs package; this
// package supplies the theorem-level checks and example systems.
package temporal

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/protocol"
	"repro/internal/runs"
)

// noReceivesUpTo reports whether run r receives no messages strictly before
// time t (t = horizon+1 means "in the whole run").
func noReceivesUpTo(r *runs.Run, t runs.Time) bool {
	return r.DeliveredBefore(t) == 0
}

// CheckTheorem9 verifies the conclusion of Theorem 9 on a point model for
// the formula variant given by mk (which should build C^ε_G φ or C^⋄_G φ):
// if the formula fails at every point of every silent run (no messages
// received), then it fails at every point of every run with the same
// initial configuration and clock readings as some silent run.
//
// It returns an error if the premise holds but the conclusion fails, and
// ErrPremiseFails if no silent run satisfies the premise (so the theorem
// says nothing about this system/formula pair).
func CheckTheorem9(pm *runs.PointModel, mk func() logic.Formula) error {
	sys := pm.Sys
	set, err := pm.Eval(mk())
	if err != nil {
		return err
	}
	// Find silent runs where the formula fails throughout.
	premiseRuns := make([]*runs.Run, 0)
	for ri, r := range sys.Runs {
		if !noReceivesUpTo(r, sys.Horizon+1) {
			continue
		}
		failsThroughout := true
		for t := runs.Time(0); t <= sys.Horizon; t++ {
			if set.Contains(pm.World(ri, t)) {
				failsThroughout = false
				break
			}
		}
		if failsThroughout {
			premiseRuns = append(premiseRuns, r)
		}
	}
	if len(premiseRuns) == 0 {
		return ErrPremiseFails
	}
	for ri, r := range sys.Runs {
		for _, silent := range premiseRuns {
			if !protocol.SameInitialConfig(r, silent) || !protocol.SameClockReadings(r, silent) {
				continue
			}
			for t := runs.Time(0); t <= sys.Horizon; t++ {
				if set.Contains(pm.World(ri, t)) {
					return fmt.Errorf("temporal: Theorem 9 violated: %s holds at (%s,%d) though it fails throughout silent run %s",
						mk(), r.Name, t, silent.Name)
				}
			}
		}
	}
	return nil
}

// ErrPremiseFails indicates a theorem's premise does not hold on the given
// system, so the theorem makes no claim about it.
var ErrPremiseFails = fmt.Errorf("temporal: theorem premise does not hold on this system")

// CheckTheorem12a verifies Theorem 12(a): if all processors' clocks show
// identical readings at every point, then at every point where the (shared)
// clock reads T, C^T_G φ and C_G φ have the same truth value.
func CheckTheorem12a(pm *runs.PointModel, g logic.Group, ts int, phi logic.Formula) error {
	sys := pm.Sys
	if err := requireIdenticalClocks(sys); err != nil {
		return err
	}
	ct, err := pm.Eval(logic.Ct(g, ts, phi))
	if err != nil {
		return err
	}
	c, err := pm.Eval(logic.C(g, phi))
	if err != nil {
		return err
	}
	for ri, r := range sys.Runs {
		for t := runs.Time(0); t <= sys.Horizon; t++ {
			reading, ok := r.ClockReading(0, t)
			if !ok || reading != ts {
				continue
			}
			w := pm.World(ri, t)
			if ct.Contains(w) != c.Contains(w) {
				return fmt.Errorf("temporal: Theorem 12(a) violated at (%s,%d): C^T=%v C=%v",
					r.Name, t, ct.Contains(w), c.Contains(w))
			}
		}
	}
	return nil
}

func requireIdenticalClocks(sys *runs.System) error {
	for _, r := range sys.Runs {
		for t := runs.Time(0); t <= sys.Horizon; t++ {
			var ref int
			var have bool
			for p := 0; p < sys.N; p++ {
				c, ok := r.ClockReading(p, t)
				if !ok {
					return fmt.Errorf("temporal: processor %d has no clock reading at (%s,%d)", p, r.Name, t)
				}
				if !have {
					ref, have = c, true
				} else if c != ref {
					return fmt.Errorf("temporal: clocks differ at (%s,%d)", r.Name, t)
				}
			}
		}
	}
	return nil
}

// CheckTheorem12b verifies Theorem 12(b): if all clocks are within eps time
// units of each other at every point, then at every point where some clock
// reads T, C^T_G φ ⊃ C^ε_G φ.
func CheckTheorem12b(pm *runs.PointModel, g logic.Group, ts, eps int, phi logic.Formula) error {
	sys := pm.Sys
	// Verify the clock-skew premise.
	for _, r := range sys.Runs {
		for t := runs.Time(0); t <= sys.Horizon; t++ {
			lo, hi := 0, 0
			first := true
			for p := 0; p < sys.N; p++ {
				c, ok := r.ClockReading(p, t)
				if !ok {
					continue
				}
				if first {
					lo, hi, first = c, c, false
				} else {
					if c < lo {
						lo = c
					}
					if c > hi {
						hi = c
					}
				}
			}
			if hi-lo > eps {
				return fmt.Errorf("temporal: clock skew %d exceeds eps=%d at (%s,%d)", hi-lo, eps, r.Name, t)
			}
		}
	}
	ct, err := pm.Eval(logic.Ct(g, ts, phi))
	if err != nil {
		return err
	}
	ce, err := pm.Eval(logic.Ceps(g, eps, phi))
	if err != nil {
		return err
	}
	for ri, r := range sys.Runs {
		for t := runs.Time(0); t <= sys.Horizon; t++ {
			atT := false
			for p := 0; p < sys.N; p++ {
				if c, ok := r.ClockReading(p, t); ok && c == ts {
					atT = true
					break
				}
			}
			if !atT {
				continue
			}
			w := pm.World(ri, t)
			if ct.Contains(w) && !ce.Contains(w) {
				return fmt.Errorf("temporal: Theorem 12(b) violated at (%s,%d)", r.Name, t)
			}
		}
	}
	return nil
}

// CheckTheorem12c verifies Theorem 12(c): if in every run every processor's
// clock eventually reads T (within the horizon), then C^T_G φ ⊃ C^⋄_G φ is
// valid.
func CheckTheorem12c(pm *runs.PointModel, g logic.Group, ts int, phi logic.Formula) error {
	sys := pm.Sys
	for _, r := range sys.Runs {
		for p := 0; p < sys.N; p++ {
			reaches := false
			for t := runs.Time(0); t <= sys.Horizon; t++ {
				if c, ok := r.ClockReading(p, t); ok && c >= ts {
					reaches = true
					break
				}
			}
			if !reaches {
				return fmt.Errorf("temporal: clock of p%d never reads %d in run %s", p, ts, r.Name)
			}
		}
	}
	valid, err := pm.Valid(logic.Imp(logic.Ct(g, ts, phi), logic.Cev(g, phi)))
	if err != nil {
		return err
	}
	if !valid {
		return fmt.Errorf("temporal: Theorem 12(c) violated: C^T does not imply C^⋄")
	}
	return nil
}

// TemporalHierarchy verifies the Section 11 inclusion chain on a model:
// C φ ⊆ C^{ε1} φ ⊆ ... ⊆ C^{εk} φ ⊆ C^⋄ φ for ε1 <= ... <= εk.
func TemporalHierarchy(pm *runs.PointModel, g logic.Group, phi logic.Formula, epsilons []int) error {
	prev, err := pm.Eval(logic.C(g, phi))
	if err != nil {
		return err
	}
	prevName := "C"
	for _, eps := range epsilons {
		cur, err := pm.Eval(logic.Ceps(g, eps, phi))
		if err != nil {
			return err
		}
		if !prev.SubsetOf(cur) {
			return fmt.Errorf("temporal: hierarchy violated: %s ⊄ Ce[%d]", prevName, eps)
		}
		prev = cur
		prevName = fmt.Sprintf("Ce[%d]", eps)
	}
	cv, err := pm.Eval(logic.Cev(g, phi))
	if err != nil {
		return err
	}
	if !prev.SubsetOf(cv) {
		return fmt.Errorf("temporal: hierarchy violated: %s ⊄ Cv", prevName)
	}
	return nil
}
