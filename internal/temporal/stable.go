package temporal

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/runs"
)

// This file implements the stable-fact analysis of Section 11. A fact is
// stable if once true it remains true. For stable facts under
// complete-history interpretations the paper makes three claims, each
// machine-checked here:
//
//  1. (footnote 6) E^ε_G φ holds iff E_G φ holds within ε time units —
//     the current interval definition generalizes the earlier ©εE
//     definition and coincides with it on stable facts;
//  2. consequence closure (axiom A2) holds for E^ε and C^ε on stable
//     facts, although it fails in general;
//  3. C^ε implies the infinite conjunction of (E^ε)^k (and for stable
//     facts under complete-history views is equivalent to it).

// IsStable reports whether φ is stable in the model: at every point where
// it holds, it continues to hold for the rest of the run.
func IsStable(pm *runs.PointModel, phi logic.Formula) (bool, error) {
	set, err := pm.Eval(phi)
	if err != nil {
		return false, err
	}
	span := int(pm.Sys.Horizon) + 1
	for ri := range pm.Sys.Runs {
		holding := false
		for t := 0; t < span; t++ {
			now := set.Contains(pm.World(ri, runs.Time(t)))
			if holding && !now {
				return false, nil
			}
			holding = holding || now
		}
	}
	return true, nil
}

// CheckFootnote6 verifies, for a stable fact φ, that E^ε_G φ holds at
// (r, t) iff E_G φ holds at some point of r within ε of t. It returns an
// error if φ is not stable or the equivalence fails at some point.
func CheckFootnote6(pm *runs.PointModel, g logic.Group, eps int, phi logic.Formula) error {
	stable, err := IsStable(pm, phi)
	if err != nil {
		return err
	}
	if !stable {
		return fmt.Errorf("temporal: %s is not stable", phi)
	}
	eeps, err := pm.Eval(logic.Eeps(g, eps, phi))
	if err != nil {
		return err
	}
	e, err := pm.Eval(logic.E(g, phi))
	if err != nil {
		return err
	}
	span := int(pm.Sys.Horizon) + 1
	for ri, r := range pm.Sys.Runs {
		for t := 0; t < span; t++ {
			lhs := eeps.Contains(pm.World(ri, runs.Time(t)))
			rhs := false
			for u := t - eps; u <= t+eps; u++ {
				if u >= 0 && u < span && e.Contains(pm.World(ri, runs.Time(u))) {
					rhs = true
					break
				}
			}
			if lhs != rhs {
				return fmt.Errorf("temporal: footnote-6 equivalence fails at (%s,%d): E^eps=%v, E-within-eps=%v",
					r.Name, t, lhs, rhs)
			}
		}
	}
	return nil
}

// CheckStableConsequenceClosure verifies A2 for E^ε (and C^ε) on stable
// facts: if φ and φ ⊃ ψ are stable, then
//
//	E^ε φ ∧ E^ε (φ ⊃ ψ) ⊃ E^ε ψ
//
// is valid (and likewise with C^ε). Both φ and ψ must be stable.
func CheckStableConsequenceClosure(pm *runs.PointModel, g logic.Group, eps int, phi, psi logic.Formula) error {
	for _, f := range []logic.Formula{phi, psi, logic.Imp(phi, psi)} {
		st, err := IsStable(pm, f)
		if err != nil {
			return err
		}
		if !st {
			return fmt.Errorf("temporal: %s is not stable", f)
		}
	}
	for _, mk := range []func(logic.Formula) logic.Formula{
		func(x logic.Formula) logic.Formula { return logic.Eeps(g, eps, x) },
		func(x logic.Formula) logic.Formula { return logic.Ceps(g, eps, x) },
	} {
		a2 := logic.Imp(
			logic.Conj(mk(phi), mk(logic.Imp(phi, psi))),
			mk(psi),
		)
		valid, err := pm.Valid(a2)
		if err != nil {
			return err
		}
		if !valid {
			return fmt.Errorf("temporal: consequence closure fails for stable facts: %s", a2)
		}
	}
	return nil
}

// EpsBothWaysExample builds the Section 11 curiosity: a system and an
// unstable fact φ with a point satisfying E^ε φ ∧ E^ε ¬φ (E^ε fails the
// knowledge axiom because φ need only hold at SOME points of the
// interval). It returns the model, the fact name, and a point where the
// conjunction holds.
func EpsBothWaysExample() (*runs.PointModel, string, string, runs.Time, error) {
	// One run, two processors with identity clocks; the fact "blink"
	// holds only at t = 2. Both processors know it at t = 2 (clocks pin
	// the time) and know its negation at t = 4. With ε = 2 the interval
	// [2, 4] witnesses both E^ε blink and E^ε ~blink at t = 3.
	r := runs.NewRun("r", 2, 6)
	r.SetIdentityClock(0)
	r.SetIdentityClock(1)
	sys, err := runs.NewSystem(r)
	if err != nil {
		return nil, "", "", 0, err
	}
	pm := sys.Model(runs.CompleteHistoryView, runs.Interpretation{
		"blink": func(_ *runs.Run, t runs.Time) bool { return t == 2 },
	})
	return pm, "blink", "r", 3, nil
}

// CepsImpliesTower verifies that C^ε φ implies (E^ε)^k φ for k = 1..maxK
// at every point (the half of the infinite-conjunction comparison that
// always holds).
func CepsImpliesTower(pm *runs.PointModel, g logic.Group, eps, maxK int, phi logic.Formula) error {
	ce, err := pm.Eval(logic.Ceps(g, eps, phi))
	if err != nil {
		return err
	}
	cur := phi
	for k := 1; k <= maxK; k++ {
		cur = logic.Eeps(g, eps, cur)
		set, err := pm.Eval(cur)
		if err != nil {
			return err
		}
		if !ce.SubsetOf(set) {
			return fmt.Errorf("temporal: C^eps does not imply (E^eps)^%d", k)
		}
	}
	return nil
}
