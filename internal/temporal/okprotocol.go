package temporal

import (
	"fmt"

	"repro/internal/protocol"
	"repro/internal/runs"
)

// This file implements the "OK protocol" example of Section 11: a system
// where communication is not guaranteed, clocks are perfectly synchronized,
// and both processors send "OK" in rounds, continuing only while every
// expected message has arrived. Let ψ say that some past message was lost.
// Then ψ ⊃ E^ε ψ is valid (a processor that notices a missing OK stops
// sending, which its partner notices one round later), so by the induction
// rule ψ ⊃ C^ε ψ — and C^ε ψ holds in the run where messages are lost but
// NOT in the run where communication fully succeeds. Successful
// communication prevents this ε-common knowledge.
//
// In the paper's continuous formulation a round takes one time unit and
// messages arrive within it; in this discrete reproduction a message sent
// at an even time 2k arrives at 2k+1 (or is lost) and is observed at
// 2k+2, so a round spans two ticks and the relevant ε is 2.

// RoundLength is the duration of one OK-protocol round in ticks.
const RoundLength = 2

// OKProtocol returns the two processors' protocol: at each round start
// (time 2k with 2k <= lastSend), send "OK" iff k OK messages have been
// received so far (vacuously for k = 0). Bounding the send window keeps the
// finite-horizon system clean: a message sent at lastSend can still be
// delivered within the horizon, so no loss is forced by truncation.
func OKProtocol(lastSend int) []protocol.Protocol {
	step := func(v protocol.LocalView) []protocol.Outgoing {
		if !v.HasClock || v.Clock%RoundLength != 0 || v.Clock > lastSend {
			return nil
		}
		k := v.Clock / RoundLength
		if len(v.Received) >= k {
			return []protocol.Outgoing{{To: 1 - v.Me, Payload: "OK"}}
		}
		return nil
	}
	return []protocol.Protocol{protocol.Func(step), protocol.Func(step)}
}

// LossProp is the ground fact ψ of the example: "the current time is at
// least one full round, and some message sent at least a round ago was not
// delivered within one tick" (with the deterministic unit delay of the
// channel, "not delivered within one tick" means lost).
const LossProp = "psi"

// OKSystem generates the OK-protocol system up to the horizon, together
// with its interpretation. Sends stop at horizon−RoundLength so that every
// sent message has a delivery slot within the horizon.
//
// Finite-horizon surrogate: on a truly unreliable channel a loss in the
// final send round is noticed by the receiver but the sender has no later
// round in which to notice the receiver's silence, so the paper's ψ ⊃ E^ε ψ
// (valid for the unbounded protocol) would fail at the truncation boundary
// and the greatest fixed point C^ε ψ would erode everywhere. The system
// therefore uses a LossyUntil channel: losses happen only at send times up
// to horizon−2·RoundLength, exactly the losses whose detection by both
// parties fits within the horizon. In the region the paper's infinite
// system models, the behavior is unchanged.
func OKSystem(horizon runs.Time) (*runs.PointModel, error) {
	cfg := []protocol.Config{{Name: "ok", Init: []string{"", ""}, Clock: []int{0, 0}}}
	ch := protocol.LossyUntil{Delay: 1, Deadline: horizon - 2*RoundLength}
	sys, err := protocol.Generate(OKProtocol(int(horizon)-RoundLength), ch, cfg, horizon, protocol.Options{})
	if err != nil {
		return nil, fmt.Errorf("temporal: %w", err)
	}
	interp := runs.Interpretation{
		LossProp: func(r *runs.Run, t runs.Time) bool {
			if t < RoundLength {
				return false
			}
			for _, m := range r.Messages {
				if m.SendTime <= t-RoundLength && !m.Delivered() {
					return true
				}
			}
			return false
		},
		"alllost": func(r *runs.Run, t runs.Time) bool {
			for _, m := range r.Messages {
				if m.Delivered() {
					return false
				}
			}
			return true
		},
	}
	return sys.Model(runs.CompleteHistoryView, interp), nil
}

// FullyDeliveredRun returns the name of the run in which every sent message
// was delivered (the maximally successful communication).
func FullyDeliveredRun(sys *runs.System) (string, error) {
	best, bestCount := "", -1
	for _, r := range sys.Runs {
		lost := false
		for _, m := range r.Messages {
			if !m.Delivered() {
				lost = true
				break
			}
		}
		if lost {
			continue
		}
		if len(r.Messages) > bestCount {
			bestCount = len(r.Messages)
			best = r.Name
		}
	}
	if best == "" {
		return "", fmt.Errorf("temporal: no fully delivered run")
	}
	return best, nil
}

// AllLostRun returns the name of a run in which no message was delivered.
func AllLostRun(sys *runs.System) (string, error) {
	for _, r := range sys.Runs {
		delivered := false
		for _, m := range r.Messages {
			if m.Delivered() {
				delivered = true
				break
			}
		}
		if !delivered {
			return r.Name, nil
		}
	}
	return "", fmt.Errorf("temporal: no all-lost run")
}

// EarliestLoss returns the send time of the earliest lost message in r, or
// runs.Lost if nothing was lost.
func EarliestLoss(r *runs.Run) runs.Time {
	best := runs.Lost
	for _, m := range r.Messages {
		if !m.Delivered() && (best == runs.Lost || m.SendTime < best) {
			best = m.SendTime
		}
	}
	return best
}
