package temporal

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/runs"
)

// stableSystem: p0 sends m at 1, delivered at 2 or 3; identity clocks;
// "sent" and "del" are stable, "blink" is not.
func stableSystem(t *testing.T) *runs.PointModel {
	t.Helper()
	fast := runs.NewRun("fast", 2, 8)
	fast.Send(0, 1, 1, 2, "m")
	slow := runs.NewRun("slow", 2, 8)
	slow.Send(0, 1, 1, 3, "m")
	idle := runs.NewRun("idle", 2, 8)
	for _, r := range []*runs.Run{fast, slow, idle} {
		r.SetIdentityClock(0)
		r.SetIdentityClock(1)
	}
	sys := runs.MustSystem(fast, slow, idle)
	return sys.Model(runs.CompleteHistoryView, runs.Interpretation{
		"sent":  runs.StablyTrue(runs.SentBy("m")),
		"del":   runs.StablyTrue(runs.ReceivedBy("m")),
		"blink": func(_ *runs.Run, tt runs.Time) bool { return tt == 2 },
	})
}

func TestIsStable(t *testing.T) {
	pm := stableSystem(t)
	for _, tc := range []struct {
		src  string
		want bool
	}{
		{"sent", true},
		{"del", true},
		{"blink", false},
		{"~sent", false}, // negation of a stable contingent fact is not stable
		{"true", true},
		{"K1 del", true}, // knowledge of stable facts is stable (complete histories)
	} {
		got, err := IsStable(pm, logic.MustParse(tc.src))
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("IsStable(%s) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestFootnote6Equivalence(t *testing.T) {
	pm := stableSystem(t)
	for _, eps := range []int{1, 2, 3} {
		for _, src := range []string{"sent", "del"} {
			if err := CheckFootnote6(pm, nil, eps, logic.MustParse(src)); err != nil {
				t.Errorf("eps=%d %s: %v", eps, src, err)
			}
		}
	}
	// Unstable facts are rejected.
	if err := CheckFootnote6(pm, nil, 1, logic.P("blink")); err == nil {
		t.Error("footnote-6 check should reject unstable facts")
	}
}

func TestStableConsequenceClosure(t *testing.T) {
	pm := stableSystem(t)
	// φ = del, ψ = sent: both stable, and del ⊃ sent is valid (hence
	// stable).
	if err := CheckStableConsequenceClosure(pm, nil, 2, logic.P("del"), logic.P("sent")); err != nil {
		t.Error(err)
	}
	// Unstable inputs are rejected.
	if err := CheckStableConsequenceClosure(pm, nil, 2, logic.P("blink"), logic.P("sent")); err == nil {
		t.Error("consequence closure check should reject unstable facts")
	}
}

func TestEpsBothWaysExample(t *testing.T) {
	pm, fact, run, at, err := EpsBothWaysExample()
	if err != nil {
		t.Fatal(err)
	}
	conj := logic.Conj(
		logic.Eeps(nil, 2, logic.P(fact)),
		logic.Eeps(nil, 2, logic.Neg(logic.P(fact))),
	)
	holds, err := pm.HoldsAt(conj, run, at)
	if err != nil {
		t.Fatal(err)
	}
	if !holds {
		t.Errorf("E^eps %s ∧ E^eps ~%s should hold at (%s, %d)", fact, fact, run, at)
	}
	// This is exactly why E^ε fails the knowledge axiom: A1 would force
	// φ ∧ ¬φ.
	a1 := logic.Imp(logic.Eeps(nil, 2, logic.P(fact)), logic.P(fact))
	valid, err := pm.Valid(a1)
	if err != nil {
		t.Fatal(err)
	}
	if valid {
		t.Error("A1 for E^eps should fail on the blink example")
	}
}

func TestCepsImpliesTower(t *testing.T) {
	pm := stableSystem(t)
	if err := CepsImpliesTower(pm, nil, 1, 4, logic.P("sent")); err != nil {
		t.Error(err)
	}
	okpm, err := OKSystem(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := CepsImpliesTower(okpm, nil, RoundLength, 3, logic.P(LossProp)); err != nil {
		t.Error(err)
	}
}
