package temporal

import (
	"repro/internal/logic"
	"repro/internal/runs"
)

// Onsets computes the knowledge-onset table of φ: for every run and agent,
// the first time K_a φ holds, or runs.Lost if the agent never learns φ
// within the horizon. The per-run spread of these onsets is the quantity
// the ε-common variants of Section 11 trade against: E^ε φ is attainable
// at a point only if every agent's onset falls within an ε-window of it,
// so a regime whose injected delays stretch the onset spread beyond ε is
// exactly a regime that loses C^ε.
func Onsets(pm *runs.PointModel, phi logic.Formula) ([][]runs.Time, error) {
	set, err := pm.Eval(phi)
	if err != nil {
		return nil, err
	}
	n := pm.Sys.N
	span := int(pm.Sys.Horizon) + 1
	out := make([][]runs.Time, len(pm.Sys.Runs))
	for ri := range pm.Sys.Runs {
		out[ri] = make([]runs.Time, n)
		for a := range out[ri] {
			out[ri][a] = runs.Lost
		}
	}
	for a := 0; a < n; a++ {
		know := pm.KnowSet(a, set)
		for ri := range pm.Sys.Runs {
			for t := 0; t < span; t++ {
				if know.Contains(ri*span + t) {
					out[ri][a] = runs.Time(t)
					break
				}
			}
		}
	}
	return out, nil
}

// OnsetSpread returns the gap between the earliest and latest onset of one
// run's row, or -1 if some agent never learns the fact.
func OnsetSpread(row []runs.Time) int {
	lo, hi := runs.Time(-1), runs.Time(-1)
	for _, t := range row {
		if t == runs.Lost {
			return -1
		}
		if lo < 0 || t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	return int(hi - lo)
}
