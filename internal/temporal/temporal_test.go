package temporal

import (
	"errors"
	"testing"

	"repro/internal/logic"
	"repro/internal/protocol"
	"repro/internal/runs"
)

// lossySystem builds a simple unreliable system: p0 sends m at time 1
// (delivered at 2 or lost), identity clocks, from a "go" and an "idle"
// configuration so that sending is informative.
func lossySystem(t *testing.T, horizon runs.Time) *runs.PointModel {
	t.Helper()
	sender := protocol.Func(func(v protocol.LocalView) []protocol.Outgoing {
		if v.Init == "go" && v.HasClock && v.Clock == 1 && len(v.Sent) == 0 {
			return []protocol.Outgoing{{To: 1, Payload: "m"}}
		}
		return nil
	})
	cfgs := []protocol.Config{
		{Name: "go", Init: []string{"go", ""}, Clock: []int{0, 0}},
		{Name: "idle", Init: []string{"", ""}, Clock: []int{0, 0}},
	}
	sys, err := protocol.Generate([]protocol.Protocol{sender, protocol.Silent},
		protocol.Unreliable{Delay: 1}, cfgs, horizon, protocol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys.Model(runs.CompleteHistoryView, runs.Interpretation{
		"del": runs.StablyTrue(runs.ReceivedBy("m")),
	})
}

func TestTheorem9OnLossySystem(t *testing.T) {
	pm := lossySystem(t, 5)
	// C^ε del and C^⋄ del fail throughout the silent runs, so by Theorem 9
	// they fail everywhere.
	for _, mk := range []func() logic.Formula{
		func() logic.Formula { return logic.Ceps(nil, 1, logic.P("del")) },
		func() logic.Formula { return logic.Ceps(nil, 2, logic.P("del")) },
		func() logic.Formula { return logic.Cev(nil, logic.P("del")) },
	} {
		if err := CheckTheorem9(pm, mk); err != nil {
			t.Errorf("Theorem 9 for %s: %v", mk(), err)
		}
		// Direct corroboration: the formula holds nowhere.
		set, err := pm.Eval(mk())
		if err != nil {
			t.Fatal(err)
		}
		if !set.IsEmpty() {
			t.Errorf("%s should fail everywhere in the lossy system, holds at %s", mk(), set)
		}
	}
}

func TestTheorem11OnAsyncSystem(t *testing.T) {
	// One-shot send over an async channel: C^ε del fails in the silent run
	// and hence (Theorem 11) everywhere, even though delivery is
	// guaranteed eventually in the untruncated system.
	sender := protocol.Func(func(v protocol.LocalView) []protocol.Outgoing {
		if len(v.Sent) == 0 {
			return []protocol.Outgoing{{To: 1, Payload: "m"}}
		}
		return nil
	})
	cfgs := []protocol.Config{{Name: "a", Init: []string{"", ""}}}
	sys, err := protocol.Generate([]protocol.Protocol{sender, protocol.Silent},
		protocol.Async{}, cfgs, 5, protocol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pm := sys.Model(runs.CompleteHistoryView, runs.Interpretation{
		"del": runs.StablyTrue(runs.ReceivedBy("m")),
	})
	mk := func() logic.Formula { return logic.Ceps(nil, 2, logic.P("del")) }
	if err := CheckTheorem9(pm, mk); err != nil {
		t.Errorf("Theorem 11: %v", err)
	}
	set, err := pm.Eval(mk())
	if err != nil {
		t.Fatal(err)
	}
	if !set.IsEmpty() {
		t.Errorf("Ce[2] del should fail everywhere on the async channel, holds at %s", set)
	}
	// C^⋄ del, by contrast, is not ruled out by Theorem 11... but in the
	// truncated system the premise of Theorem 9 holds for it too (the
	// silent run never attains it), so it also fails. The distinction
	// between C^ε and C^⋄ on reliable asynchronous channels is exercised
	// in the runs package tests with guaranteed delivery.
}

func TestOKProtocolSuccessfulCommunicationPreventsEpsCK(t *testing.T) {
	const horizon = 8
	pm, err := OKSystem(horizon)
	if err != nil {
		t.Fatal(err)
	}
	sys := pm.Sys

	ce, err := pm.Eval(logic.MustParse("Ce[2] psi"))
	if err != nil {
		t.Fatal(err)
	}
	psi, err := pm.Eval(logic.MustParse("psi"))
	if err != nil {
		t.Fatal(err)
	}

	// ψ ⊃ Ee[2] ψ is valid (a processor that notices a missing OK stops
	// sending, which its partner notices one round later), and hence by
	// the induction rule ψ ⊃ Ce[2] ψ is valid too.
	for _, src := range []string{"psi -> Ee[2] psi", "psi -> Ce[2] psi"} {
		valid, err := pm.Valid(logic.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		if !valid {
			t.Errorf("%s should be valid in the OK system", src)
		}
	}

	// C^ε does not satisfy the knowledge axiom (Section 11): there are
	// points where Ce[2] ψ holds but ψ itself is false — ψ only holds
	// within ε of them.
	violation := ce.Clone()
	violation.AndNot(psi)
	if violation.IsEmpty() {
		t.Error("expected points where Ce[2] psi holds without psi (A1 failure for C^ε)")
	}

	// In the all-lost run, ψ (and hence Ce[2] ψ) holds from one round in.
	lost, err := AllLostRun(sys)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := pm.HoldsAt(logic.MustParse("Ce[2] psi"), lost, RoundLength)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("Ce[2] psi should hold at (%s, %d)", lost, RoundLength)
	}

	// In the fully delivered run, ψ is false throughout, so Ce[2] ψ never
	// holds: sufficiently successful communication prevents the ε-common
	// knowledge.
	full, err := FullyDeliveredRun(sys)
	if err != nil {
		t.Fatal(err)
	}
	for tt := runs.Time(0); tt <= sys.Horizon; tt++ {
		w, err := pm.WorldOf(full, tt)
		if err != nil {
			t.Fatal(err)
		}
		if ce.Contains(w) {
			t.Errorf("Ce[2] psi should fail at (%s, %d)", full, tt)
		}
		if psi.Contains(w) {
			t.Errorf("psi should be false at (%s, %d)", full, tt)
		}
	}
}

// clockedMessageSystem builds a two-processor system where p0 sends m at
// time 1 (delivered at 2 or lost), under a configurable clock-offset pair,
// plus an idle configuration. offsets[p] shifts p's clock.
func clockedMessageSystem(t *testing.T, horizon runs.Time, offsets [2]int) *runs.PointModel {
	t.Helper()
	mk := func(name string, send bool) *runs.Run {
		r := runs.NewRun(name, 2, horizon)
		r.SetShiftedClock(0, offsets[0])
		r.SetShiftedClock(1, offsets[1])
		if send {
			return r
		}
		return r
	}
	sent := mk("sent_fast", true)
	sent.Send(0, 1, 1, 2, "m")
	slow := mk("sent_slow", true)
	slow.Send(0, 1, 1, 3, "m")
	idle := mk("idle", false)
	sys := runs.MustSystem(sent, slow, idle)
	return sys.Model(runs.CompleteHistoryView, runs.Interpretation{
		"sent": runs.StablyTrue(runs.SentBy("m")),
	})
}

func TestTheorem12aIdenticalClocks(t *testing.T) {
	pm := clockedMessageSystem(t, 8, [2]int{0, 0})
	for ts := 0; ts <= 8; ts++ {
		if err := CheckTheorem12a(pm, nil, ts, logic.P("sent")); err != nil {
			t.Errorf("Theorem 12(a) at T=%d: %v", ts, err)
		}
	}
}

func TestTheorem12bSkewedClocks(t *testing.T) {
	pm := clockedMessageSystem(t, 8, [2]int{0, 1}) // skew 1 <= eps
	for ts := 1; ts <= 8; ts++ {
		if err := CheckTheorem12b(pm, nil, ts, 1, logic.P("sent")); err != nil {
			t.Errorf("Theorem 12(b) at T=%d: %v", ts, err)
		}
	}
	// The skew premise is enforced: eps=0 with skew 1 must be rejected.
	if err := CheckTheorem12b(pm, nil, 3, 0, logic.P("sent")); err == nil {
		t.Error("Theorem 12(b) should reject eps below the actual skew")
	}
}

func TestTheorem12cEventualClocks(t *testing.T) {
	pm := clockedMessageSystem(t, 8, [2]int{0, 2})
	for ts := 2; ts <= 8; ts++ {
		if err := CheckTheorem12c(pm, nil, ts, logic.P("sent")); err != nil {
			t.Errorf("Theorem 12(c) at T=%d: %v", ts, err)
		}
	}
	// A timestamp beyond the horizon violates the premise.
	if err := CheckTheorem12c(pm, nil, 100, logic.P("sent")); err == nil {
		t.Error("Theorem 12(c) should reject unreachable timestamps")
	}
}

func TestTemporalHierarchyOnLossySystem(t *testing.T) {
	pm := lossySystem(t, 6)
	if err := TemporalHierarchy(pm, nil, logic.P("del"), []int{1, 2, 3}); err != nil {
		t.Error(err)
	}
	pm2 := clockedMessageSystem(t, 8, [2]int{0, 0})
	if err := TemporalHierarchy(pm2, nil, logic.P("sent"), []int{1, 2}); err != nil {
		t.Error(err)
	}
}

func TestTheorem9PremiseFailure(t *testing.T) {
	// For ψ of the OK protocol, C^ε ψ HOLDS in the silent run, so Theorem
	// 9's premise fails and the checker must say so rather than claim a
	// violation.
	pm, err := OKSystem(8)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() logic.Formula { return logic.Ceps(nil, RoundLength, logic.P(LossProp)) }
	err = CheckTheorem9(pm, mk)
	if !errors.Is(err, ErrPremiseFails) {
		t.Errorf("CheckTheorem9 = %v, want ErrPremiseFails", err)
	}
}

func TestEarliestLoss(t *testing.T) {
	r := runs.NewRun("r", 2, 6)
	r.Send(0, 1, 0, 1, "a")
	if EarliestLoss(r) != runs.Lost {
		t.Error("run without losses should report Lost")
	}
	r.SendLost(1, 0, 4, "b")
	r.SendLost(0, 1, 2, "c")
	if got := EarliestLoss(r); got != 2 {
		t.Errorf("EarliestLoss = %d, want 2", got)
	}
}

func TestOKSystemRunStructure(t *testing.T) {
	pm, err := OKSystem(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pm.Sys.Runs) < 4 {
		t.Fatalf("OK system has %d runs; expected several delivery outcomes", len(pm.Sys.Runs))
	}
	full, err := FullyDeliveredRun(pm.Sys)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := pm.Sys.RunByName(full)
	// In the fully delivered run the protocol sends two messages per round
	// at t = 0, 2, 4, 6.
	if len(r.Messages) < 8 {
		t.Errorf("fully delivered run has %d messages, want >= 8", len(r.Messages))
	}
	// No message is force-lost by truncation: every loss is a channel
	// choice, and deliveries fit within the horizon.
	for _, rr := range pm.Sys.Runs {
		for _, m := range rr.Messages {
			if m.Delivered() && m.RecvTime > pm.Sys.Horizon {
				t.Errorf("run %s delivers beyond the horizon", rr.Name)
			}
		}
	}
}

func BenchmarkOKSystemCepsPsi(b *testing.B) {
	pm, err := OKSystem(8)
	if err != nil {
		b.Fatal(err)
	}
	f := logic.MustParse("Ce[2] psi")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pm.Eval(f); err != nil {
			b.Fatal(err)
		}
	}
}
