package temporal

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/runs"
)

func TestOnsetsAndSpread(t *testing.T) {
	// One delivered broadcast next to an idle run: the sender knows "sent"
	// from the start (its "go" initialization already entails the fact), the
	// receiver learns it when the delivery becomes visible, and nobody ever
	// learns it in the idle run (where it is false).
	sent := runs.NewRun("sent", 2, 5)
	sent.Init[0] = "go"
	sent.Send(0, 1, 0, 2, "m")
	idle := runs.NewRun("idle", 2, 5)
	sys, err := runs.NewSystem(sent, idle)
	if err != nil {
		t.Fatal(err)
	}
	interp := runs.Interpretation{"sent": runs.StablyTrue(runs.SentBy("m"))}
	pm := sys.Model(runs.CompleteHistoryView, interp)

	onsets, err := Onsets(pm, logic.P("sent"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := onsets[0], []runs.Time{0, 3}; got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("sent-run onsets %v, want %v", got, want)
	}
	if onsets[1][0] != runs.Lost || onsets[1][1] != runs.Lost {
		t.Fatalf("idle-run onsets %v, want all Lost", onsets[1])
	}
	if got := OnsetSpread(onsets[0]); got != 3 {
		t.Fatalf("sent-run spread %d, want 3", got)
	}
	if got := OnsetSpread(onsets[1]); got != -1 {
		t.Fatalf("idle-run spread %d, want -1", got)
	}
}
