package kripke

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/logic"
)

// batchFormulas is a battery with heavy subterm sharing (so the shared
// memo is exercised), duplicates (so publish races are exercised), and
// every operator family (so every derived-table build is exercised).
func batchFormulas(numAgents int) []logic.Formula {
	fs := propertyFormulas(numAgents)
	// Duplicates and shared subterms across batch entries.
	fs = append(fs, fs[0], fs[len(fs)/2])
	p := logic.P("p")
	common := logic.C(nil, p)
	fs = append(fs,
		logic.Conj(common, logic.K(0, p)),
		logic.Disj(common, logic.Neg(common)),
		logic.EK(nil, 4, p),
		logic.EK(nil, 4, p),
	)
	return fs
}

// TestEvalBatchMatchesSerial pins the batch contract: EvalBatch with any
// worker count returns, set for set, exactly what a serial Eval loop
// returns, on random models with cold and warm caches.
func TestEvalBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		n := 16 + rng.Intn(200)
		numAgents := 1 + rng.Intn(4)
		m := randModel(rng, n, numAgents)
		fs := batchFormulas(numAgents)

		want := make([]string, len(fs))
		for i, f := range fs {
			s, err := m.Eval(f)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = s.String()
		}

		for _, workers := range []int{1, 2, 8} {
			got, err := m.EvalBatch(fs, BatchWorkers(workers))
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			for i := range fs {
				if got[i].String() != want[i] {
					t.Fatalf("trial %d workers %d: EvalBatch[%d] = %s, want %s (formula %s)",
						trial, workers, i, got[i], want[i], fs[i])
				}
			}
		}
	}
}

// TestEvalBatchResultsAreOwned checks that mutating one batch result does
// not corrupt another (results sharing a memoized denotation must be
// independent copies by the time the caller sees them).
func TestEvalBatchResultsAreOwned(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randModel(rng, 120, 3)
	f := logic.C(nil, logic.P("p"))
	fs := []logic.Formula{f, f, f}
	got, err := m.EvalBatch(fs, BatchWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	before := got[1].String()
	got[0].Not()
	got[2].Clear()
	if got[1].String() != before {
		t.Fatalf("batch results alias one another: mutating result 0/2 changed result 1")
	}
}

// TestEvalBatchColdRace drives EvalBatch on fresh models with no
// PrepareAgents warm-up, forcing the lazy per-agent table builds, the
// single-flight joint-view and reachability builds, and the shared-memo
// publish races to all happen inside the worker pool (meaningful mainly
// under -race). Two concurrent EvalBatch calls share one model to cross
// the batches' evaluators over the same caches.
func TestEvalBatchColdRace(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prevProcs)
	restore := []struct {
		v   *int
		old int
	}{
		{&parallelPartsMinWorlds, parallelPartsMinWorlds},
		{&parallelPartsMinAgents, parallelPartsMinAgents},
		{&parallelKernelMinWords, parallelKernelMinWords},
		{&parallelKernelMinAgents, parallelKernelMinAgents},
	}
	defer func() {
		for _, r := range restore {
			*r.v = r.old
		}
	}()
	parallelPartsMinWorlds = 128
	parallelPartsMinAgents = 2
	parallelKernelMinWords = 2
	parallelKernelMinAgents = 2

	const n, agents = 768, 6
	formulas := []logic.Formula{
		logic.E(nil, logic.P("p")),
		logic.S(nil, logic.Neg(logic.P("p"))),
		logic.D(logic.NewGroup(0, 1, 2), logic.P("p")),
		logic.D(logic.NewGroup(1, 3, 5), logic.P("q")),
		logic.C(nil, logic.Disj(logic.P("p"), logic.P("q"))),
		logic.C(logic.NewGroup(0, 2, 4), logic.P("q")),
		logic.EK(nil, 3, logic.P("q")),
		logic.GFP("Z", logic.E(nil, logic.Conj(logic.P("q"), logic.X("Z")))),
		logic.Conj(logic.C(nil, logic.P("p")), logic.K(1, logic.P("q"))),
		logic.K(0, logic.Disj(logic.P("p"), logic.Neg(logic.P("q")))),
	}

	ref := buildWideModel(n, agents, 3)
	want := make([]string, len(formulas))
	for i, f := range formulas {
		s, err := ref.Eval(f)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = s.String()
	}

	for rep := 0; rep < 4; rep++ {
		m := buildWideModel(n, agents, 3) // fresh: every table cold
		var wg sync.WaitGroup
		for b := 0; b < 3; b++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got, err := m.EvalBatch(formulas, BatchWorkers(8))
				if err != nil {
					t.Error(err)
					return
				}
				for i := range formulas {
					if got[i].String() != want[i] {
						t.Errorf("cold EvalBatch[%d] = %s, want %s", i, got[i], want[i])
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}

// TestEvalBatchErrors pins the error contract: the batch reports the error
// of the smallest failing index — what a serial loop would have stopped at
// — and temporal operators on a plain model fail with ErrTemporal.
func TestEvalBatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randModel(rng, 64, 2)
	fs := []logic.Formula{
		logic.K(0, logic.P("p")),
		logic.K(7, logic.P("p")), // agent out of range: the first error
		logic.Eventually{F: logic.P("p")},
	}
	_, err := m.EvalBatch(fs, BatchWorkers(4))
	if err == nil {
		t.Fatal("EvalBatch with an out-of-range agent returned no error")
	}
	if errors.Is(err, ErrTemporal) {
		t.Fatalf("EvalBatch reported a later index's error (%v), want the smallest index's", err)
	}
	_, err = m.EvalBatch(fs[2:], BatchWorkers(4))
	if !errors.Is(err, ErrTemporal) {
		t.Fatalf("EvalBatch temporal error = %v, want ErrTemporal", err)
	}
}

// TestQuotientedEvalBatch checks the quotient view's batch front end:
// verdicts expanded through the block map must equal per-formula Eval.
func TestQuotientedEvalBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randModel(rng, 150, 3)
	q := m.QuotientForEval(1)
	fs := batchFormulas(3)
	got, err := q.EvalBatch(fs, BatchWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range fs {
		want, err := q.Eval(f)
		if err != nil {
			t.Fatal(err)
		}
		if !got[i].Equal(want) {
			t.Fatalf("Quotiented.EvalBatch[%d] = %s, want %s (formula %s)", i, got[i], want, f)
		}
	}
}
