package kripke

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

func TestMinimizeMergesDuplicateComponents(t *testing.T) {
	// Two identical disjoint components: worlds {0,1} and {2,3}, p at the
	// even world of each, agent 0 confusing the pair. The quotient should
	// have 2 worlds.
	m := NewModel(4, 1)
	m.SetTrue(0, "p")
	m.SetTrue(2, "p")
	m.Indistinguishable(0, 0, 1)
	m.Indistinguishable(0, 2, 3)
	q, block := m.Minimize()
	if q.NumWorlds() != 2 {
		t.Fatalf("quotient has %d worlds, want 2", q.NumWorlds())
	}
	if block[0] != block[2] || block[1] != block[3] || block[0] == block[1] {
		t.Errorf("block map %v does not identify the twin components", block)
	}
}

func TestMinimizeKeepsDistinguishableWorlds(t *testing.T) {
	// The chain model is already minimal: every world has a distinct
	// epistemic theory even when valuations repeat.
	m := chainModel(8)
	q, _ := m.Minimize()
	if q.NumWorlds() != 8 {
		t.Errorf("chain quotient has %d worlds, want 8", q.NumWorlds())
	}
}

func TestMinimizeSeparatesByDepth(t *testing.T) {
	// Worlds with equal facts but different knowledge must stay apart:
	// w0 (p, seen by agent as {w0}), w1 (p, confused with ~p world w2).
	m := NewModel(3, 1)
	m.SetTrue(0, "p")
	m.SetTrue(1, "p")
	m.Indistinguishable(0, 1, 2)
	q, block := m.Minimize()
	if q.NumWorlds() != 3 {
		t.Fatalf("quotient has %d worlds, want 3", q.NumWorlds())
	}
	if block[0] == block[1] {
		t.Error("K p differs at w0 and w1; they must not merge")
	}
}

// TestQuickMinimizePreservesTheory: random formulas hold at a world iff
// they hold at its block in the quotient.
func TestQuickMinimizePreservesTheory(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		agents := 1 + rng.Intn(3)
		m := randomModel(rng, 2+rng.Intn(25), agents)
		formulas := []logic.Formula{
			logic.P("p"),
			logic.K(0, logic.P("p")),
			logic.C(nil, logic.Disj(logic.P("p"), logic.P("q"))),
			logic.D(nil, logic.P("q")),
			logic.S(nil, logic.Conj(logic.P("p"), logic.P("q"))),
			logic.EK(nil, 3, logic.P("p")),
			logic.MustParse("nu X . E (p & X)"),
		}
		if agents >= 2 {
			formulas = append(formulas, logic.K(1, logic.Neg(logic.K(0, logic.P("p")))))
		}
		q, block := m.Minimize()
		if q.NumWorlds() > m.NumWorlds() {
			return false
		}
		for _, phi := range formulas {
			orig, err := m.Eval(phi)
			if err != nil {
				return false
			}
			mini, err := q.Eval(phi)
			if err != nil {
				return false
			}
			for w := 0; w < m.NumWorlds(); w++ {
				if orig.Contains(w) != mini.Contains(block[w]) {
					t.Logf("seed %d: %s differs at w%d (block %d)", seed, phi, w, block[w])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickMinimizeIdempotent: minimizing a quotient changes nothing.
func TestQuickMinimizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng, 2+rng.Intn(20), 1+rng.Intn(3))
		q, _ := m.Minimize()
		qq, _ := q.Minimize()
		return qq.NumWorlds() == q.NumWorlds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickMinimizeBlockContract pins the documented block-map contract:
// one entry per world, values dense in [0, quotient worlds) with no
// sentinel, ids assigned in first-occurrence order (each new id exceeds the
// running maximum by exactly one, starting at 0), and block b's
// representative — the world the quotient's facts and names come from — is
// its smallest member.
func TestQuickMinimizeBlockContract(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng, 1+rng.Intn(30), 1+rng.Intn(3))
		q, block := m.Minimize()
		if len(block) != m.NumWorlds() {
			t.Errorf("seed %d: block map has %d entries for %d worlds", seed, len(block), m.NumWorlds())
			return false
		}
		maxSeen := -1
		firstOf := make(map[int]int)
		for w, b := range block {
			if b < 0 || b >= q.NumWorlds() {
				t.Errorf("seed %d: block[%d] = %d outside [0,%d)", seed, w, b, q.NumWorlds())
				return false
			}
			if b > maxSeen+1 {
				t.Errorf("seed %d: block id %d at world %d skips ahead of max %d", seed, b, w, maxSeen)
				return false
			}
			if b > maxSeen {
				maxSeen = b
			}
			if _, ok := firstOf[b]; !ok {
				firstOf[b] = w
			}
		}
		if maxSeen != q.NumWorlds()-1 {
			t.Errorf("seed %d: ids reach %d but quotient has %d worlds", seed, maxSeen, q.NumWorlds())
			return false
		}
		// The representative's facts must be the block's facts.
		for b := 0; b < q.NumWorlds(); b++ {
			for _, prop := range m.Facts() {
				if q.FactSet(prop).Contains(b) != m.FactSet(prop).Contains(firstOf[b]) {
					t.Errorf("seed %d: block %d fact %s differs from its representative", seed, b, prop)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMinimize(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := randomModel(rng, 512, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Minimize()
	}
}
