package kripke

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/logic"
)

// randModel builds a random model: n worlds, numAgents agents, random
// valuation columns for props p/q/r, and random indistinguishability edges
// per agent (edge-based, so the DSU construction path is exercised).
func randModel(rng *rand.Rand, n, numAgents int) *Model {
	m := NewModel(n, numAgents)
	for w := 0; w < n; w++ {
		m.SetName(w, fmt.Sprintf("v%d", w))
		if rng.Intn(2) == 0 {
			m.SetTrue(w, "p")
		}
		if rng.Intn(3) == 0 {
			m.SetTrue(w, "q")
		}
		if rng.Intn(5) == 0 {
			m.SetTrue(w, "r")
		}
	}
	for a := 0; a < numAgents; a++ {
		edges := rng.Intn(2 * n)
		for e := 0; e < edges; e++ {
			m.Indistinguishable(a, rng.Intn(n), rng.Intn(n))
		}
	}
	return m
}

// propertyFormulas is a battery covering every knowledge operator, with
// groups drawn from the model's agents.
func propertyFormulas(numAgents int) []logic.Formula {
	p, q, r := logic.P("p"), logic.P("q"), logic.P("r")
	g2 := logic.NewGroup(0, logic.Agent(numAgents-1))
	fs := []logic.Formula{
		p,
		logic.Neg(q),
		logic.Conj(p, logic.Neg(r)),
		logic.K(0, p),
		logic.K(logic.Agent(numAgents-1), logic.Disj(p, q)),
		logic.E(nil, p),
		logic.S(nil, logic.Neg(p)),
		logic.E(g2, logic.Imp(q, p)),
		logic.D(nil, p),
		logic.D(g2, logic.Conj(p, q)),
		logic.C(nil, logic.Disj(p, q, r)),
		logic.C(g2, p),
		logic.EK(nil, 3, p),
		logic.K(0, logic.C(g2, logic.Disj(p, q))),
		logic.GFP("Z", logic.E(nil, logic.Conj(p, logic.X("Z")))),
	}
	return fs
}

// restrictByHand rebuilds the submodel of m induced by keep from scratch
// with the incremental, edge-based API — the reference Restrict is checked
// against.
func restrictByHand(m *Model, keep *bitset.Set) *Model {
	old := keep.Elements()
	sub := NewModel(len(old), m.NumAgents())
	for i, w := range old {
		for _, prop := range m.Facts() {
			if m.FactSet(prop).Contains(w) {
				sub.SetTrue(i, prop)
			}
		}
	}
	for a := 0; a < m.NumAgents(); a++ {
		for i := 0; i < len(old); i++ {
			for j := i + 1; j < len(old); j++ {
				if m.SameClass(a, old[i], old[j]) {
					sub.Indistinguishable(a, i, j)
				}
			}
		}
	}
	return sub
}

// TestRestrictAgreesWithHandRestriction is the guard on the incremental
// construction paths: evaluating on Restrict(keep) — including the
// remapped joint-view partitions and the renamed class ids — must agree
// with evaluating on a model rebuilt by hand over the kept worlds.
func TestRestrictAgreesWithHandRestriction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 10 + rng.Intn(120)
		numAgents := 1 + rng.Intn(5)
		m := randModel(rng, n, numAgents)
		formulas := propertyFormulas(numAgents)

		// Warm the derived caches (joint views, reachability, partitions)
		// so Restrict has memoized state to inherit and remap.
		for _, f := range formulas {
			if _, err := m.Eval(f); err != nil {
				t.Fatalf("trial %d: warm eval %s: %v", trial, f, err)
			}
		}

		// Random non-empty keep set.
		keep := bitset.New(n)
		for w := 0; w < n; w++ {
			if rng.Intn(3) != 0 {
				keep.Add(w)
			}
		}
		if keep.IsEmpty() {
			keep.Add(rng.Intn(n))
		}

		sub := m.Restrict(keep)
		ref := restrictByHand(m, keep)

		if got, want := sub.NumWorlds(), keep.Count(); got != want {
			t.Fatalf("trial %d: Restrict has %d worlds, want %d", trial, got, want)
		}
		for _, f := range formulas {
			got, err := sub.Eval(f)
			if err != nil {
				t.Fatalf("trial %d: eval %s on Restrict: %v", trial, f, err)
			}
			want, err := ref.Eval(f)
			if err != nil {
				t.Fatalf("trial %d: eval %s on reference: %v", trial, f, err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d: Eval(%s) on Restrict = %s, want %s (keep=%s)",
					trial, f, got, want, keep)
			}
		}

		// A second restriction chained on the first exercises remapping of
		// already-remapped (pending) joint partitions.
		keep2 := bitset.New(sub.NumWorlds())
		for w := 0; w < sub.NumWorlds(); w++ {
			if rng.Intn(4) != 0 {
				keep2.Add(w)
			}
		}
		if keep2.IsEmpty() {
			keep2.Add(0)
		}
		sub2 := sub.Restrict(keep2)
		ref2 := restrictByHand(ref, keep2)
		for _, f := range formulas {
			got, err := sub2.Eval(f)
			if err != nil {
				t.Fatalf("trial %d: eval %s on chained Restrict: %v", trial, f, err)
			}
			want, err := ref2.Eval(f)
			if err != nil {
				t.Fatalf("trial %d: eval %s on chained reference: %v", trial, f, err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d: chained Eval(%s) = %s, want %s", trial, f, got, want)
			}
		}
	}
}

// TestRestrictThenMutateDropsInheritedJoint pins the invalidation contract:
// incremental construction on a restricted model must discard the
// joint-view partitions it inherited, or D_G would be answered from the
// pre-mutation relations.
func TestRestrictThenMutateDropsInheritedJoint(t *testing.T) {
	m := NewModel(3, 2)
	m.SetTrue(0, "p")
	m.SetTrue(1, "p")
	m.Indistinguishable(0, 0, 2) // agent 0 confuses 0 and 2; agent 1 discrete
	g := logic.NewGroup(0, 1)
	// Memoize the joint partition (still discrete: agent 1 separates all
	// worlds), then restrict to everything — the submodel inherits it.
	if _, err := m.Eval(logic.D(g, logic.P("p"))); err != nil {
		t.Fatal(err)
	}
	sub := m.Restrict(bitset.NewFull(3))
	// Mutate the restricted model: now agent 1 confuses 0 and 2 as well,
	// so the joint view of {0,1} merges them.
	sub.Indistinguishable(1, 0, 2)
	got, err := sub.Eval(logic.D(g, logic.P("p")))
	if err != nil {
		t.Fatal(err)
	}
	// World 2 falsifies p and is now jointly indistinguishable from 0.
	want := bitset.New(3)
	want.Add(1)
	if !got.Equal(want) {
		t.Fatalf("D_G p after post-restriction mutation = %s, want %s", got, want)
	}
}

// TestMinimizePreservesVerdicts checks that the bisimulation quotient
// satisfies exactly the same E/C/D (and K) formulas at corresponding
// worlds.
func TestMinimizePreservesVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		n := 10 + rng.Intn(80)
		numAgents := 1 + rng.Intn(4)
		m := randModel(rng, n, numAgents)
		q, block := m.Minimize()
		for _, f := range propertyFormulas(numAgents) {
			on, err := m.Eval(f)
			if err != nil {
				t.Fatalf("trial %d: eval %s on model: %v", trial, f, err)
			}
			onQ, err := q.Eval(f)
			if err != nil {
				t.Fatalf("trial %d: eval %s on quotient: %v", trial, f, err)
			}
			for w := 0; w < n; w++ {
				if on.Contains(w) != onQ.Contains(block[w]) {
					t.Fatalf("trial %d: Minimize changed the verdict of %s at world %d (block %d)",
						trial, f, w, block[w])
				}
			}
		}
	}
}

// TestRefineAgentAgreesWithEdgeRebuild guards the id-renumbering path of
// RefineAgent against a pairwise-edge reference.
func TestRefineAgentAgreesWithEdgeRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		n := 10 + rng.Intn(60)
		numAgents := 1 + rng.Intn(4)
		m := randModel(rng, n, numAgents)
		a := rng.Intn(numAgents)
		phi, err := m.Eval(logic.Disj(logic.P("p"), logic.P("q")))
		if err != nil {
			t.Fatal(err)
		}
		got := m.RefineAgent(a, phi)

		// Reference: rebuild with pairwise edges, splitting a's classes.
		ref := NewModel(n, numAgents)
		for _, prop := range m.Facts() {
			set := m.FactSet(prop)
			for w := 0; w < n; w++ {
				if set.Contains(w) {
					ref.SetTrue(w, prop)
				}
			}
		}
		for b := 0; b < numAgents; b++ {
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if !m.SameClass(b, i, j) {
						continue
					}
					if b == a && phi.Contains(i) != phi.Contains(j) {
						continue
					}
					ref.Indistinguishable(b, i, j)
				}
			}
		}
		for _, f := range propertyFormulas(numAgents) {
			g, err := got.Eval(f)
			if err != nil {
				t.Fatal(err)
			}
			w, err := ref.Eval(f)
			if err != nil {
				t.Fatal(err)
			}
			if !g.Equal(w) {
				t.Fatalf("trial %d: RefineAgent Eval(%s) = %s, want %s", trial, f, g, w)
			}
		}
	}
}
