package kripke

import (
	"fmt"

	"repro/internal/logic"
)

// This file machine-checks Proposition 1 of the paper: under view-based
// knowledge interpretations the operators K_i, D_G and C_G all have the
// properties of S5, and C_G additionally satisfies the fixed point axiom C1
// and the induction rule C2. The checks are semantic: given a model and a
// family of sample formulas, each axiom scheme is instantiated and verified
// valid in the model.

// Op builds a modal formula from its argument; it abstracts over K_i, D_G,
// C_G and friends so one checker covers them all.
type Op func(logic.Formula) logic.Formula

// S5Report records which S5 properties held for an operator on a model.
type S5Report struct {
	KnowledgeAxiom        bool // A1: Mφ ⊃ φ
	ConsequenceClosure    bool // A2: Mφ ∧ M(φ ⊃ ψ) ⊃ Mψ
	PositiveIntrospection bool // A3: Mφ ⊃ MMφ
	NegativeIntrospection bool // A4: ¬Mφ ⊃ M¬Mφ
	Necessitation         bool // R1: φ valid ⇒ Mφ valid
	Failure               string
}

// AllHold reports whether every checked property held.
func (r S5Report) AllHold() bool {
	return r.KnowledgeAxiom && r.ConsequenceClosure &&
		r.PositiveIntrospection && r.NegativeIntrospection && r.Necessitation
}

// CheckS5 verifies the S5 axioms A1–A4 and the necessitation rule R1 for
// the operator op on model m, instantiating the schemes with every pair of
// sample formulas. It stops at the first failure, recording it in Failure.
func CheckS5(m *Model, op Op, samples []logic.Formula) (S5Report, error) {
	r := S5Report{
		KnowledgeAxiom:        true,
		ConsequenceClosure:    true,
		PositiveIntrospection: true,
		NegativeIntrospection: true,
		Necessitation:         true,
	}
	for _, phi := range samples {
		// A1
		ok, err := m.Valid(logic.Imp(op(phi), phi))
		if err != nil {
			return r, err
		}
		if !ok {
			r.KnowledgeAxiom = false
			r.Failure = fmt.Sprintf("A1 fails for φ = %s", phi)
			return r, nil
		}
		// A3
		ok, err = m.Valid(logic.Imp(op(phi), op(op(phi))))
		if err != nil {
			return r, err
		}
		if !ok {
			r.PositiveIntrospection = false
			r.Failure = fmt.Sprintf("A3 fails for φ = %s", phi)
			return r, nil
		}
		// A4
		ok, err = m.Valid(logic.Imp(logic.Neg(op(phi)), op(logic.Neg(op(phi)))))
		if err != nil {
			return r, err
		}
		if !ok {
			r.NegativeIntrospection = false
			r.Failure = fmt.Sprintf("A4 fails for φ = %s", phi)
			return r, nil
		}
		// R1
		valid, err := m.Valid(phi)
		if err != nil {
			return r, err
		}
		if valid {
			ok, err = m.Valid(op(phi))
			if err != nil {
				return r, err
			}
			if !ok {
				r.Necessitation = false
				r.Failure = fmt.Sprintf("R1 fails for φ = %s", phi)
				return r, nil
			}
		}
		// A2, over all sample consequents
		for _, psi := range samples {
			a2 := logic.Imp(
				logic.Conj(op(phi), op(logic.Imp(phi, psi))),
				op(psi),
			)
			ok, err = m.Valid(a2)
			if err != nil {
				return r, err
			}
			if !ok {
				r.ConsequenceClosure = false
				r.Failure = fmt.Sprintf("A2 fails for φ = %s, ψ = %s", phi, psi)
				return r, nil
			}
		}
	}
	return r, nil
}

// CheckFixedPointAxiom verifies C1 for group g on model m with the given
// sample formulas: C_G φ ≡ E_G(φ ∧ C_G φ).
func CheckFixedPointAxiom(m *Model, g logic.Group, samples []logic.Formula) error {
	for _, phi := range samples {
		c1 := logic.Equiv(
			logic.C(g, phi),
			logic.E(g, logic.Conj(phi, logic.C(g, phi))),
		)
		ok, err := m.Valid(c1)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("kripke: C1 fails for φ = %s", phi)
		}
	}
	return nil
}

// CheckInductionRule verifies C2 for group g on model m: for every sample
// pair (φ, ψ), if φ ⊃ E_G(φ ∧ ψ) is valid then φ ⊃ C_G ψ is valid.
func CheckInductionRule(m *Model, g logic.Group, samples []logic.Formula) error {
	for _, phi := range samples {
		for _, psi := range samples {
			prem, err := m.Valid(logic.Imp(phi, logic.E(g, logic.Conj(phi, psi))))
			if err != nil {
				return err
			}
			if !prem {
				continue
			}
			conc, err := m.Valid(logic.Imp(phi, logic.C(g, psi)))
			if err != nil {
				return err
			}
			if !conc {
				return fmt.Errorf("kripke: C2 fails for φ = %s, ψ = %s", phi, psi)
			}
		}
	}
	return nil
}

// CheckLemma2 verifies Lemma 2 of the paper on model m: for every sample φ,
// nonempty group g and agent i ∈ g, the three conditions
//
//	(1) C_G φ,  (2) K_i(φ ∧ C_G φ) for all i ∈ G,  (3) K_i(φ ∧ C_G φ) for some i ∈ G
//
// hold at exactly the same worlds.
func CheckLemma2(m *Model, g logic.Group, samples []logic.Formula) error {
	agents, err := m.resolveGroup(g)
	if err != nil {
		return err
	}
	if len(agents) == 0 {
		return fmt.Errorf("kripke: Lemma 2 requires a nonempty group")
	}
	for _, phi := range samples {
		c, err := m.Eval(logic.C(g, phi))
		if err != nil {
			return err
		}
		inner := logic.Conj(phi, logic.C(g, phi))
		for _, a := range agents {
			ki, err := m.Eval(logic.K(logic.Agent(a), inner))
			if err != nil {
				return err
			}
			if !ki.Equal(c) {
				return fmt.Errorf("kripke: Lemma 2 fails for φ = %s, agent %d", phi, a)
			}
		}
	}
	return nil
}

// HierarchyReport records, for one formula, the world sets of each level of
// the Section 3 hierarchy C ⊃ E^k ⊃ ... ⊃ E ⊃ S ⊃ D ⊃ φ.
type HierarchyReport struct {
	Phi     int   // |φ|
	D       int   // |D_G φ|
	S       int   // |S_G φ|
	E       []int // |E^1_G φ| ... |E^k_G φ|
	C       int   // |C_G φ|
	Ordered bool  // true iff C ⊆ E^k ⊆ ... ⊆ E^1 ⊆ S ⊆ D ⊆ φ... see below
}

// CheckHierarchy evaluates every level of the knowledge hierarchy for φ and
// verifies the inclusions of Section 3:
//
//	C_G φ ⊆ ... ⊆ E^{k+1}_G φ ⊆ E^k_G φ ⊆ ... ⊆ E_G φ ⊆ S_G φ ⊆ D_G φ ⊆ φ.
func CheckHierarchy(m *Model, g logic.Group, phi logic.Formula, maxK int) (HierarchyReport, error) {
	var rep HierarchyReport
	phiSet, err := m.Eval(phi)
	if err != nil {
		return rep, err
	}
	dSet, err := m.Eval(logic.D(g, phi))
	if err != nil {
		return rep, err
	}
	sSet, err := m.Eval(logic.S(g, phi))
	if err != nil {
		return rep, err
	}
	eSets, err := m.EKPrefix(g, phi, maxK)
	if err != nil {
		return rep, err
	}
	cSet, err := m.Eval(logic.C(g, phi))
	if err != nil {
		return rep, err
	}

	rep.Phi = phiSet.Count()
	rep.D = dSet.Count()
	rep.S = sSet.Count()
	rep.C = cSet.Count()
	rep.E = make([]int, len(eSets))
	for i, s := range eSets {
		rep.E[i] = s.Count()
	}

	rep.Ordered = dSet.SubsetOf(phiSet) && sSet.SubsetOf(dSet)
	if len(eSets) > 0 {
		rep.Ordered = rep.Ordered && eSets[0].SubsetOf(sSet)
		for i := 1; i < len(eSets); i++ {
			rep.Ordered = rep.Ordered && eSets[i].SubsetOf(eSets[i-1])
		}
		rep.Ordered = rep.Ordered && cSet.SubsetOf(eSets[len(eSets)-1])
	} else {
		rep.Ordered = rep.Ordered && cSet.SubsetOf(sSet)
	}
	return rep, nil
}
