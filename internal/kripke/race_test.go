package kripke

import (
	"sync"
	"testing"

	"repro/internal/bitset"
	"repro/internal/logic"
)

// TestConcurrentEval guards the documented contract that a fully
// constructed model may be evaluated concurrently. It is meaningful mainly
// under -race: the lazily built partition tables, the per-group
// reachability/joint-view caches and the pooled evaluators are all first
// touched from inside the goroutines, so lazy construction itself is
// exercised for races, not just steady-state reads.
func TestConcurrentEval(t *testing.T) {
	models := []*Model{chainModel(257), func() *Model {
		m := NewModel(64, 3)
		for w := 0; w < 64; w++ {
			if w%3 == 0 {
				m.SetTrue(w, "p")
			}
			if w%5 != 0 {
				m.SetTrue(w, "q")
			}
		}
		for w := 0; w+2 < 64; w += 2 {
			m.Indistinguishable(w%3, w, w+2)
			m.Indistinguishable((w+1)%3, w, w+1)
		}
		return m
	}()}

	formulas := []logic.Formula{
		logic.MustParse("C p"),
		logic.MustParse("E E p"),
		logic.MustParse("K0 (p | ~p) & ~K1 false"),
		logic.MustParse("D{0,1} p"),
		logic.MustParse("S (p -> p)"),
		logic.MustParse("nu X . E (p & X)"),
		logic.MustParse("mu X . p | E X"),
	}

	for _, m := range models {
		// Sequential reference results, computed on a fresh equal model so
		// the concurrent run below starts with cold caches.
		want := make([]string, len(formulas))
		for i, f := range formulas {
			s, err := m.Eval(f)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = s.String()
		}
		fresh := m.Restrict(mustEvalSet(t, m, logic.True)) // identity copy, cold caches
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for rep := 0; rep < 20; rep++ {
					i := (g + rep) % len(formulas)
					s, err := fresh.Eval(formulas[i])
					if err != nil {
						t.Error(err)
						return
					}
					if got := s.String(); got != want[i] {
						t.Errorf("concurrent Eval(%s) = %s, want %s", formulas[i], got, want[i])
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}
}

func mustEvalSet(t *testing.T, m *Model, f logic.Formula) *bitset.Set {
	t.Helper()
	s, err := m.Eval(f)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
