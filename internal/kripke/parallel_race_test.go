package kripke

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bitset"
	"repro/internal/logic"
)

// buildWideModel constructs a model wide and large enough for the sharded
// kernel paths: numAgents random partitions installed columnar, plus two
// valuation columns.
func buildWideModel(n, numAgents int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, numAgents)
	p := b.Column("p")
	q := b.Column("q")
	for w := 0; w < n; w++ {
		if rng.Intn(2) == 0 {
			p.Add(w)
		}
		if rng.Intn(7) != 0 {
			q.Add(w)
		}
	}
	for a := 0; a < numAgents; a++ {
		classes := 1 + rng.Intn(n/2)
		ids := make([]int32, n)
		// Ensure density: first `classes` worlds pin one world per class.
		for w := 0; w < n; w++ {
			if w < classes {
				ids[w] = int32(w)
			} else {
				ids[w] = int32(rng.Intn(classes))
			}
		}
		b.SetPartition(a, ids, classes)
	}
	return b.Build()
}

// TestParallelKernelsRace drives the sharded partition-table construction
// and the sharded E_G/S_G kernels from many concurrent evaluators at once
// (run under -race). The parallelism gates are lowered and GOMAXPROCS
// raised so the parallel paths engage even on small CI machines; results
// are checked against a serially evaluated twin model.
func TestParallelKernelsRace(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prevProcs)
	restore := []struct {
		v   *int
		old int
	}{
		{&parallelPartsMinWorlds, parallelPartsMinWorlds},
		{&parallelPartsMinAgents, parallelPartsMinAgents},
		{&parallelKernelMinWords, parallelKernelMinWords},
		{&parallelKernelMinAgents, parallelKernelMinAgents},
	}
	defer func() {
		for _, r := range restore {
			*r.v = r.old
		}
	}()
	parallelPartsMinWorlds = 128
	parallelPartsMinAgents = 2
	parallelKernelMinWords = 2
	parallelKernelMinAgents = 2

	const n, agents = 1024, 8
	formulas := []logic.Formula{
		logic.E(nil, logic.P("p")),
		logic.S(nil, logic.Neg(logic.P("p"))),
		logic.E(logic.NewGroup(0, 3, 5, 7), logic.Disj(logic.P("p"), logic.P("q"))),
		logic.S(logic.NewGroup(1, 2, 4, 6), logic.P("q")),
		logic.EK(nil, 3, logic.P("q")),
		logic.C(nil, logic.Disj(logic.P("p"), logic.P("q"))),
		logic.D(logic.NewGroup(0, 1, 2, 3), logic.P("p")),
		logic.GFP("Z", logic.E(nil, logic.Conj(logic.P("q"), logic.X("Z")))),
	}

	// Serial reference on an identically built twin.
	ref := buildWideModel(n, agents, 1)
	want := make([]string, len(formulas))
	for i, f := range formulas {
		s, err := ref.Eval(f)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = s.String()
	}

	// Cold target: lazy table construction, the sharded builds and the
	// sharded kernels all race against one another across 8 goroutines.
	m := buildWideModel(n, agents, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g == 0 {
				// One goroutine front-loads the sharded table build while
				// the others already evaluate.
				if err := m.PrepareAgents(nil); err != nil {
					t.Error(err)
					return
				}
			}
			for rep := 0; rep < 12; rep++ {
				i := (g + rep) % len(formulas)
				s, err := m.Eval(formulas[i])
				if err != nil {
					t.Error(err)
					return
				}
				if got := s.String(); got != want[i] {
					t.Errorf("concurrent Eval(%s) = %s, want %s", formulas[i], got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Restriction concurrent with evaluation: Restrict only reads the
	// source model (through the same lazily built tables) and the
	// restricted copies are evaluated in their own goroutines, exercising
	// the joint-partition inheritance remap under -race.
	keep := bitset.New(n)
	for w := 0; w < n; w++ {
		if w%5 != 0 {
			keep.Add(w)
		}
	}
	subWant := make([]string, len(formulas))
	{
		sub := ref.Restrict(keep)
		for i, f := range formulas {
			s, err := sub.Eval(f)
			if err != nil {
				t.Fatal(err)
			}
			subWant[i] = s.String()
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sub := m.Restrict(keep)
			for i, f := range formulas {
				s, err := sub.Eval(f)
				if err != nil {
					t.Error(err)
					return
				}
				if got := s.String(); got != subWant[i] {
					t.Errorf("restricted Eval(%s) = %s, want %s", f, got, subWant[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
