package kripke

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
)

// Minimize returns the bisimulation quotient of the model: the smallest
// model satisfying exactly the same formulas of the knowledge language at
// corresponding worlds, together with the mapping from old worlds to new.
//
// Point models built from large systems often contain many epistemically
// identical points (e.g. every silent tail of a run); minimizing before
// repeated evaluation can shrink them substantially — see QuotientForEval
// for the batch-evaluation front end. The quotient is computed by partition
// refinement on dense class ids: blocks start as valuation classes (one
// split per fact column) and split until every block has, for every agent,
// the same set of blocks reachable through that agent's view class. All
// bookkeeping is int32 renumbering through reusable mark tables and
// uint64-keyed pair maps — the same columnar machinery the Builder and
// Restrict use — not string signatures.
//
// # The block-map contract
//
// The returned slice ("block map") has exactly NumWorlds entries; entry w
// is the quotient world that old world w collapsed to. Every entry is a
// valid world of the quotient — values are dense in [0, q.NumWorlds()) and
// there is no sentinel (no -1, and 0 is an ordinary block id). Blocks are
// numbered by first occurrence: block b's representative — the world
// quotient facts and names are taken from — is the smallest old world w
// with block[w] == b, so block[0] == 0 and each new id exceeds the previous
// maximum by exactly one. Callers may therefore invert the map by a single
// forward scan, and may map any denotation back with set.Contains(block[w]).
//
// The quotient does not preserve the run/time structure, so the Temporal
// hook is not carried over; minimize only models whose formulas are free
// of the run-based operators.
func (m *Model) Minimize() (*Model, []int) {
	W := m.numWorlds
	outBlock := make([]int, W)
	if W == 0 {
		return NewModel(0, m.numAgents), outBlock
	}

	// block[w] is w's current block id; ids are dense in [0, n) and always
	// assigned in first-occurrence order, which is what makes the final
	// map satisfy the contract above without a renumbering pass.
	block := make([]int32, W)
	n := int32(1)

	var mark []int32
	// splitByBit refines the blocks by membership in col: (block, bit)
	// pairs are renumbered densely through the mark table.
	splitByBit := func(col *bitset.Set) {
		need := 2 * int(n)
		if cap(mark) < need {
			mark = make([]int32, need)
		}
		mk := mark[:need]
		for i := range mk {
			mk[i] = -1
		}
		next := int32(0)
		for w := 0; w < W; w++ {
			k := 2 * block[w]
			if col.Contains(w) {
				k++
			}
			if mk[k] < 0 {
				mk[k] = next
				next++
			}
			block[w] = mk[k]
		}
		n = next
	}

	// Initial partition: by fact signature, one column at a time (sorted
	// fact order keeps the numbering deterministic).
	for _, prop := range m.Facts() {
		splitByBit(m.valuation[prop])
	}

	// Resolve each agent's class ids once. A nil entry is the discrete
	// relation, which never splits anything: the blockset of a singleton
	// class is the world's own block, already part of the signature.
	type rel struct {
		ids []int32
		n   int
	}
	rels := make([]rel, m.numAgents)
	for a := range rels {
		ids, cn := m.relIDs(a)
		rels[a] = rel{ids, cn}
	}

	// classSigs assigns every class of one agent an interned id of its set
	// of current blocks (equal block sets ⇔ equal ids). Scratch: a counting
	// sort of worlds by class, an epoch stamp to deduplicate blocks within
	// a class, and a pair-fold interner for the sorted block lists — each
	// sorted list folds left through a map[uint64]int32, which is injective
	// on sequences, so no strings or hashes that could collide are
	// involved. Sig ids are bounded by the total list length, hence < W.
	members := make([]int32, W)
	cursor := make([]int32, W)
	var (
		off    []int32
		seen   []int32
		epoch  int32
		gather []int32
		sig    []int32
	)
	setIDs := make(map[uint64]int32)
	classSigs := func(r rel) []int32 {
		cn := r.n
		if cap(off) < cn+1 {
			off = make([]int32, cn+1)
		}
		ofs := off[:cn+1]
		for i := range ofs {
			ofs[i] = 0
		}
		for _, id := range r.ids {
			ofs[id+1]++
		}
		for c := 0; c < cn; c++ {
			ofs[c+1] += ofs[c]
		}
		cur := cursor[:cn]
		copy(cur, ofs[:cn])
		for w, id := range r.ids {
			members[cur[id]] = int32(w)
			cur[id]++
		}
		if cap(seen) < int(n) {
			seen = make([]int32, n)
			epoch = 0
		}
		st := seen[:n]
		if cap(sig) < cn {
			sig = make([]int32, cn)
		}
		sg := sig[:cn]
		clear(setIDs)
		next := int32(0)
		for c := 0; c < cn; c++ {
			epoch++
			gather = gather[:0]
			for k := ofs[c]; k < ofs[c+1]; k++ {
				b := block[members[k]]
				if st[b] != epoch {
					st[b] = epoch
					gather = append(gather, b)
				}
			}
			sort.Slice(gather, func(i, j int) bool { return gather[i] < gather[j] })
			acc := int32(-1)
			for _, b := range gather {
				k := uint64(uint32(acc+1))<<32 | uint64(uint32(b))
				id, ok := setIDs[k]
				if !ok {
					id = next
					next++
					setIDs[k] = id
				}
				acc = id
			}
			sg[c] = acc
		}
		return sg
	}

	// Refine until a full round over all agents splits nothing. Refinement
	// only ever splits, so a round that leaves the block count unchanged is
	// the fixed point.
	pair := make(map[uint64]int32)
	for {
		before := n
		for a := 0; a < m.numAgents; a++ {
			if rels[a].ids == nil {
				continue
			}
			sg := classSigs(rels[a])
			clear(pair)
			next := int32(0)
			for w := 0; w < W; w++ {
				k := uint64(uint32(block[w]))<<32 | uint64(uint32(sg[rels[a].ids[w]]))
				id, ok := pair[k]
				if !ok {
					id = next
					next++
					pair[k] = id
				}
				block[w] = id
			}
			n = next
		}
		if n == before {
			break
		}
	}

	// Build the quotient. rep[b] is the smallest world of block b (blocks
	// are numbered by first occurrence, so a forward scan fills it).
	nB := int(n)
	rep := make([]int32, nB)
	for i := range rep {
		rep[i] = -1
	}
	for w := 0; w < W; w++ {
		if rep[block[w]] < 0 {
			rep[block[w]] = int32(w)
		}
	}
	q := NewModel(nB, m.numAgents)
	for prop, set := range m.valuation {
		col := bitset.New(nB)
		for b := 0; b < nB; b++ {
			if set.Contains(int(rep[b])) {
				col.Add(b)
			}
		}
		q.setFactSet(prop, col)
	}
	// Quotient relations: in the stable partition, all members of a block
	// see the same set of blocks through an agent's classes, and any two
	// classes sharing a block have equal block sets — so "same block-set
	// id at the representative's class" is exactly the quotient partition,
	// installed as dense ids with no union-find.
	for a := 0; a < m.numAgents; a++ {
		if rels[a].ids == nil {
			continue // discrete stays discrete
		}
		sg := classSigs(rels[a])
		// Sig ids (including the prefix ids of the pair folds) are bounded
		// by the total block-list length, hence by W.
		if cap(mark) < W {
			mark = make([]int32, W)
		}
		mk := mark[:W]
		for i := range mk {
			mk[i] = -1
		}
		qids := make([]int32, nB)
		next := int32(0)
		for b := 0; b < nB; b++ {
			s := sg[rels[a].ids[rep[b]]]
			if mk[s] < 0 {
				mk[s] = next
				next++
			}
			qids[b] = mk[s]
		}
		q.setPartition(a, qids, int(next))
	}
	for b := 0; b < nB; b++ {
		q.SetName(b, fmt.Sprintf("b%d<%s>", b, m.Name(int(rep[b]))))
	}
	for w := 0; w < W; w++ {
		outBlock[w] = int(block[w])
	}
	return q, outBlock
}
