package kripke

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/unionfind"
)

// Minimize returns the bisimulation quotient of the model: the smallest
// model satisfying exactly the same formulas of the knowledge language at
// corresponding worlds, together with the mapping from old worlds to new.
//
// Point models built from large systems often contain many epistemically
// identical points (e.g. every silent tail of a run); minimizing before
// repeated evaluation can shrink them substantially — see QuotientForEval
// for the batch-evaluation front end. The quotient is computed by partition
// refinement on dense class ids: blocks start as valuation classes (one
// split per fact column) and split until every block has, for every agent,
// the same set of blocks reachable through that agent's view class. All
// bookkeeping is int32 renumbering through reusable mark tables and
// uint64-keyed pair maps — the same columnar machinery the Builder and
// Restrict use — not string signatures.
//
// On a model produced by RestrictWithQuotient, Minimize re-refines
// incrementally from the renamed pre-announcement blocks instead of the
// trivial partition (see minimizeSeeded); the result — including the block
// numbering — is identical to the from-scratch computation, so callers
// never need to distinguish the two paths.
//
// # The block-map contract
//
// The returned slice ("block map") has exactly NumWorlds entries; entry w
// is the quotient world that old world w collapsed to. Every entry is a
// valid world of the quotient — values are dense in [0, q.NumWorlds()) and
// there is no sentinel (no -1, and 0 is an ordinary block id). Blocks are
// numbered by first occurrence: block b's representative — the world
// quotient facts and names are taken from — is the smallest old world w
// with block[w] == b, so block[0] == 0 and each new id exceeds the previous
// maximum by exactly one. Callers may therefore invert the map by a single
// forward scan, and may map any denotation back with set.Contains(block[w]).
//
// The quotient does not preserve the run/time structure, so the Temporal
// hook is not carried over; minimize only models whose formulas are free
// of the run-based operators.
func (m *Model) Minimize() (*Model, []int) {
	if s := m.quotSeed; s != nil {
		return m.minimizeSeeded(s.ids, s.n, s.dirty)
	}
	return m.minimizeScratch()
}

// minimizeScratch is Minimize starting from the trivial partition: one
// block, split by every fact column, then refined to stability.
func (m *Model) minimizeScratch() (*Model, []int) {
	if m.numWorlds == 0 {
		return NewModel(0, m.numAgents), []int{}
	}
	r := m.newRefiner(nil, 0)
	r.splitByFacts()
	r.refine()
	return r.quotient()
}

// minimizeSeeded is Minimize re-refining from a seed partition — in the
// announcement-chain use, the pre-announcement block map renamed over the
// kept worlds by RestrictWithQuotient. The seed is first split by the fact
// columns (a no-op for true renamed block maps, which are fact-uniform,
// but it keeps arbitrary seeds sound) and then refined to stability, which
// yields the coarsest *stable refinement of the seed* — a bisimulation,
// but possibly finer than the true coarsest one: a restriction usually
// only splits blocks, yet it can also merge worlds that were previously
// distinguished only through removed worlds. To stay exact, the
// intermediate quotient — already small — is minimized once more, and the
// two block maps are composed. That second "compose" pass is bounded by
// the quotient size, never the world count, which is what makes the
// seeded path pay on redundant models; when the restriction recorded
// touched-block flags (dirty, non-nil only for declared-exact seeds), the
// pass is further narrowed to the disturbed region — or skipped outright
// when no block was disturbed (see composeQuotient). When something did
// merge, the composed partition is rebuilt into a quotient of m directly,
// so names, representatives and numbering follow the Minimize contract
// either way.
func (m *Model) minimizeSeeded(seed []int32, nSeed int, dirty []bool) (*Model, []int) {
	if m.numWorlds == 0 {
		return NewModel(0, m.numAgents), []int{}
	}
	r := m.newRefiner(seed, int32(nSeed))
	r.splitByFacts()
	r.refine()
	q1, b1 := r.quotient()
	q2, b2, exact := q1.composeQuotient(seed, b1, dirty)
	if exact {
		return q1, b1
	}
	if q2.numWorlds == q1.numWorlds {
		return q1, b1
	}
	comp := make([]int32, m.numWorlds)
	for w := range comp {
		comp[w] = int32(b2[b1[w]])
	}
	// comp is the coarsest bisimulation of m (stable by construction), and
	// composing two first-occurrence-dense maps is first-occurrence dense,
	// so the quotient tail applies directly with no further refinement.
	r2 := m.newRefiner(comp, int32(q2.numWorlds))
	return r2.quotient()
}

// composeQuotient runs minimizeSeeded's merge-finding pass on the
// intermediate quotient q1 (the stable refinement of the seed). Without
// touched-block flags it is a full from-scratch Minimize of q1. With them
// it exploits two facts:
//
//   - No dirty block at all means no kept world's view class lost a world
//     anywhere, so every world's modal environment — and hence its
//     bisimilarity class — is untouched: the restriction cannot have
//     merged anything and q1 is already exact (reported via exact=true).
//   - Otherwise, merges are confined to the disturbed region: a block
//     whose connected component (under the union of all agents' classes)
//     contains no dirty block sits in a sub-model identical to its
//     pre-announcement counterpart, so two such blocks that the exact seed
//     distinguished stay distinguished. Any merged pair therefore has a
//     member in a disturbed component — and its partners share that
//     member's fact signature. Grouping exactly the blocks that are in a
//     disturbed component or share a fact signature with one (coarser than
//     the true quotient, by the above) and refining to stability yields
//     the coarsest bisimulation while leaving every clean block a
//     singleton the refinement never has to walk.
//
// The dirty flags are sound only for seeds that were the parent model's
// own coarsest quotient (RestrictOptions.SeedBlocksExact); arbitrary seeds
// come through with dirty == nil and take the full pass.
func (q1 *Model) composeQuotient(seed []int32, b1 []int, dirty []bool) (*Model, []int, bool) {
	if dirty == nil {
		q2, b2 := q1.minimizeScratch()
		return q2, b2, false
	}
	// Map each q1 block to its seed block's dirty flag via the block's
	// representative (the smallest member, by the block-map contract).
	nB := q1.numWorlds
	blockDirty := make([]bool, nB)
	repSeen := make([]bool, nB)
	anyDirty := false
	for w, b := range b1 {
		if !repSeen[b] {
			repSeen[b] = true
			blockDirty[b] = dirty[seed[w]]
			anyDirty = anyDirty || blockDirty[b]
		}
	}
	if !anyDirty {
		return nil, nil, true // nothing disturbed: no merge is possible
	}
	// Connected components of q1 under the union of all agents' classes.
	d := unionfind.New(nB)
	var first []int32
	for a := 0; a < q1.numAgents; a++ {
		ids, n := q1.relIDs(a)
		if ids == nil {
			continue
		}
		if cap(first) < n {
			first = make([]int32, n)
		}
		f := first[:n]
		for i := range f {
			f[i] = -1
		}
		for w, id := range ids {
			if f[id] < 0 {
				f[id] = int32(w)
			} else {
				d.Union(int(f[id]), w)
			}
		}
	}
	compDirty := make([]bool, nB)
	for b := 0; b < nB; b++ {
		if blockDirty[b] {
			compDirty[d.Find(b)] = true
		}
	}
	// Fact signature of each q1 block: successive (sig, bit) renumbering
	// over the fact columns, the same split Minimize itself starts with.
	factSig := make([]int32, nB)
	nSig := int32(1)
	mark := make([]int32, 2*nB)
	for _, prop := range q1.Facts() {
		col := q1.valuation[prop]
		need := 2 * nSig
		for i := int32(0); i < need; i++ {
			mark[i] = -1
		}
		next := int32(0)
		for b := 0; b < nB; b++ {
			k := 2 * factSig[b]
			if col.Contains(b) {
				k++
			}
			if mark[k] < 0 {
				mark[k] = next
				next++
			}
			factSig[b] = mark[k]
		}
		nSig = next
	}
	// The disturbed region: blocks in dirty components seed it, and any
	// block sharing a fact signature with one joins (a merge partner has
	// equal facts, so the signature closure catches it).
	sigDirty := make([]bool, nSig)
	for b := 0; b < nB; b++ {
		if compDirty[d.Find(b)] {
			sigDirty[factSig[b]] = true
		}
	}
	// Hypothesis partition: disturbed blocks grouped by fact signature,
	// clean blocks as singletons, numbered by first occurrence. It is
	// coarser than the true quotient, so refining it to stability lands
	// exactly there — walking only the disturbed groups.
	hIDs := make([]int32, nB)
	sigClass := mark[:nSig]
	for i := range sigClass {
		sigClass[i] = -1
	}
	next := int32(0)
	for b := 0; b < nB; b++ {
		if sigDirty[factSig[b]] {
			if sigClass[factSig[b]] < 0 {
				sigClass[factSig[b]] = next
				next++
			}
			hIDs[b] = sigClass[factSig[b]]
		} else {
			hIDs[b] = next
			next++
		}
	}
	r := q1.newRefiner(hIDs, next)
	r.splitByFacts()
	r.refine()
	q2, b2 := r.quotient()
	return q2, b2, false
}

// refiner is one partition-refinement run over a model: the current block
// ids, the resolved agent relations, and every piece of reusable scratch
// the split and signature passes need. Minimize (from scratch or seeded)
// builds one, refines to stability, and materializes the quotient.
type refiner struct {
	m     *Model
	W     int
	block []int32 // block[w] is w's current block id, dense, first-occurrence order
	n     int32   // number of blocks

	rels []minRel

	mark    []int32
	members []int32
	cursor  []int32
	off     []int32
	seen    []int32
	epoch   int32
	gather  []int32
	sig     []int32
	setIDs  map[uint64]int32
	pair    map[uint64]int32
}

// minRel is one agent's class ids resolved once per refinement run. A nil
// ids slice is the discrete relation, which never splits anything: the
// blockset of a singleton class is the world's own block, already part of
// the signature.
type minRel struct {
	ids []int32
	n   int
}

// newRefiner prepares a refinement run starting from the given seed
// partition (renumbered to dense first-occurrence ids; seed ids must lie
// in [0, nSeed)). A nil seed starts from the trivial one-block partition.
func (m *Model) newRefiner(seed []int32, nSeed int32) *refiner {
	W := m.numWorlds
	r := &refiner{
		m:       m,
		W:       W,
		block:   make([]int32, W),
		members: make([]int32, W),
		cursor:  make([]int32, W),
		setIDs:  make(map[uint64]int32),
		pair:    make(map[uint64]int32),
	}
	if seed == nil {
		r.n = 1
	} else {
		mk := make([]int32, nSeed)
		for i := range mk {
			mk[i] = -1
		}
		next := int32(0)
		for w, id := range seed {
			if mk[id] < 0 {
				mk[id] = next
				next++
			}
			r.block[w] = mk[id]
		}
		r.n = next
	}
	r.rels = make([]minRel, m.numAgents)
	for a := range r.rels {
		ids, cn := m.relIDs(a)
		r.rels[a] = minRel{ids, cn}
	}
	return r
}

// splitByBit refines the blocks by membership in col: (block, bit) pairs
// are renumbered densely through the mark table.
func (r *refiner) splitByBit(col *bitset.Set) {
	need := 2 * int(r.n)
	if cap(r.mark) < need {
		r.mark = make([]int32, need)
	}
	mk := r.mark[:need]
	for i := range mk {
		mk[i] = -1
	}
	next := int32(0)
	for w := 0; w < r.W; w++ {
		k := 2 * r.block[w]
		if col.Contains(w) {
			k++
		}
		if mk[k] < 0 {
			mk[k] = next
			next++
		}
		r.block[w] = mk[k]
	}
	r.n = next
}

// splitByFacts refines by fact signature, one column at a time (sorted
// fact order keeps the numbering deterministic).
func (r *refiner) splitByFacts() {
	for _, prop := range r.m.Facts() {
		r.splitByBit(r.m.valuation[prop])
	}
}

// classSigs assigns every class of one agent an interned id of its set of
// current blocks (equal block sets ⇔ equal ids). Scratch: a counting sort
// of worlds by class, an epoch stamp to deduplicate blocks within a class,
// and a pair-fold interner for the sorted block lists — each sorted list
// folds left through a map[uint64]int32, which is injective on sequences,
// so no strings or hashes that could collide are involved. Sig ids are
// bounded by the total list length, hence < W.
func (r *refiner) classSigs(rel minRel) []int32 {
	cn := rel.n
	if cap(r.off) < cn+1 {
		r.off = make([]int32, cn+1)
	}
	ofs := r.off[:cn+1]
	for i := range ofs {
		ofs[i] = 0
	}
	for _, id := range rel.ids {
		ofs[id+1]++
	}
	for c := 0; c < cn; c++ {
		ofs[c+1] += ofs[c]
	}
	cur := r.cursor[:cn]
	copy(cur, ofs[:cn])
	for w, id := range rel.ids {
		r.members[cur[id]] = int32(w)
		cur[id]++
	}
	if cap(r.seen) < int(r.n) {
		r.seen = make([]int32, r.n)
		r.epoch = 0
	}
	st := r.seen[:r.n]
	if cap(r.sig) < cn {
		r.sig = make([]int32, cn)
	}
	sg := r.sig[:cn]
	clear(r.setIDs)
	next := int32(0)
	for c := 0; c < cn; c++ {
		r.epoch++
		r.gather = r.gather[:0]
		for k := ofs[c]; k < ofs[c+1]; k++ {
			b := r.block[r.members[k]]
			if st[b] != r.epoch {
				st[b] = r.epoch
				r.gather = append(r.gather, b)
			}
		}
		sort.Slice(r.gather, func(i, j int) bool { return r.gather[i] < r.gather[j] })
		acc := int32(-1)
		for _, b := range r.gather {
			k := uint64(uint32(acc+1))<<32 | uint64(uint32(b))
			id, ok := r.setIDs[k]
			if !ok {
				id = next
				next++
				r.setIDs[k] = id
			}
			acc = id
		}
		sg[c] = acc
	}
	return sg
}

// refine splits until a full round over all agents splits nothing.
// Refinement only ever splits, so a round that leaves the block count
// unchanged is the fixed point. Seeded runs that start at (or near) the
// stable partition pay one confirming round instead of one round per
// distinction the from-scratch refinement has to rediscover.
func (r *refiner) refine() {
	for {
		before := r.n
		for a := 0; a < r.m.numAgents; a++ {
			if r.rels[a].ids == nil {
				continue
			}
			sg := r.classSigs(r.rels[a])
			clear(r.pair)
			next := int32(0)
			for w := 0; w < r.W; w++ {
				k := uint64(uint32(r.block[w]))<<32 | uint64(uint32(sg[r.rels[a].ids[w]]))
				id, ok := r.pair[k]
				if !ok {
					id = next
					next++
					r.pair[k] = id
				}
				r.block[w] = id
			}
			r.n = next
		}
		if r.n == before {
			break
		}
	}
}

// quotient materializes the model of the current block partition, which
// must be stable (refine has run, or the blocks are a known bisimulation).
// rep[b] is the smallest world of block b (blocks are numbered by first
// occurrence, so a forward scan fills it).
func (r *refiner) quotient() (*Model, []int) {
	m, W := r.m, r.W
	nB := int(r.n)
	rep := make([]int32, nB)
	for i := range rep {
		rep[i] = -1
	}
	for w := 0; w < W; w++ {
		if rep[r.block[w]] < 0 {
			rep[r.block[w]] = int32(w)
		}
	}
	q := NewModel(nB, m.numAgents)
	for prop, set := range m.valuation {
		col := bitset.New(nB)
		for b := 0; b < nB; b++ {
			if set.Contains(int(rep[b])) {
				col.Add(b)
			}
		}
		q.setFactSet(prop, col)
	}
	// Quotient relations: in the stable partition, all members of a block
	// see the same set of blocks through an agent's classes, and any two
	// classes sharing a block have equal block sets — so "same block-set
	// id at the representative's class" is exactly the quotient partition,
	// installed as dense ids with no union-find.
	for a := 0; a < m.numAgents; a++ {
		if r.rels[a].ids == nil {
			continue // discrete stays discrete
		}
		sg := r.classSigs(r.rels[a])
		// Sig ids (including the prefix ids of the pair folds) are bounded
		// by the total block-list length, hence by W.
		if cap(r.mark) < W {
			r.mark = make([]int32, W)
		}
		mk := r.mark[:W]
		for i := range mk {
			mk[i] = -1
		}
		qids := make([]int32, nB)
		next := int32(0)
		for b := 0; b < nB; b++ {
			s := sg[r.rels[a].ids[rep[b]]]
			if mk[s] < 0 {
				mk[s] = next
				next++
			}
			qids[b] = mk[s]
		}
		q.setPartition(a, qids, int(next))
	}
	for b := 0; b < nB; b++ {
		q.SetName(b, fmt.Sprintf("b%d<%s>", b, m.Name(int(rep[b]))))
	}
	outBlock := make([]int, W)
	for w := 0; w < W; w++ {
		outBlock[w] = int(r.block[w])
	}
	return q, outBlock
}
