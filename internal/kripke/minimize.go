package kripke

import (
	"fmt"
	"sort"
	"strings"
)

// Minimize returns the bisimulation quotient of the model: the smallest
// model satisfying exactly the same formulas of the knowledge language at
// corresponding worlds, together with the mapping from old worlds to new.
//
// Point models built from large systems often contain many epistemically
// identical points (e.g. every silent tail of a run); minimizing before
// repeated evaluation can shrink them substantially. The quotient is
// computed by partition refinement: blocks start as valuation classes and
// split until every block has, for every agent, the same set of blocks
// reachable through that agent's indistinguishability class.
//
// The quotient does not preserve the run/time structure, so the Temporal
// hook is not carried over; minimize only models whose formulas are free
// of the run-based operators.
func (m *Model) Minimize() (*Model, []int) {
	t := m.tables()
	m.ensureParts(t, t.allAgents)
	partIDs := func(a int) []int32 { return t.parts[a].Load().ids }

	// Initial partition: by fact signature.
	block := make([]int, m.numWorlds)
	{
		props := make([]string, 0, len(m.valuation))
		for p := range m.valuation {
			props = append(props, p)
		}
		sort.Strings(props)
		sig := make(map[string]int)
		for w := 0; w < m.numWorlds; w++ {
			var b strings.Builder
			for _, p := range props {
				if m.valuation[p].Contains(w) {
					b.WriteString(p)
					b.WriteByte(';')
				}
			}
			key := b.String()
			id, ok := sig[key]
			if !ok {
				id = len(sig)
				sig[key] = id
			}
			block[w] = id
		}
	}

	// Refine until stable: signature = (block, for each agent the sorted
	// set of blocks in the agent's class).
	for {
		sig := make(map[string]int)
		next := make([]int, m.numWorlds)
		// classBlocks[a][class] caches the sorted block set of a class.
		classBlocks := make([]map[int]string, m.numAgents)
		for a := range classBlocks {
			classBlocks[a] = make(map[int]string)
		}
		for a := 0; a < m.numAgents; a++ {
			members := make(map[int][]int)
			for w := 0; w < m.numWorlds; w++ {
				id := int(partIDs(a)[w])
				members[id] = append(members[id], block[w])
			}
			for id, blocks := range members {
				sort.Ints(blocks)
				var b strings.Builder
				prev := -1
				for _, bl := range blocks {
					if bl != prev {
						fmt.Fprintf(&b, "%d,", bl)
						prev = bl
					}
				}
				classBlocks[a][id] = b.String()
			}
		}
		for w := 0; w < m.numWorlds; w++ {
			var b strings.Builder
			fmt.Fprintf(&b, "%d|", block[w])
			for a := 0; a < m.numAgents; a++ {
				b.WriteString(classBlocks[a][int(partIDs(a)[w])])
				b.WriteByte('|')
			}
			key := b.String()
			id, ok := sig[key]
			if !ok {
				id = len(sig)
				sig[key] = id
			}
			next[w] = id
		}
		same := true
		// Compare partitions up to renaming: refinement only splits, so
		// equal block counts mean stability.
		oldCount := countBlocks(block)
		newCount := countBlocks(next)
		if newCount != oldCount {
			same = false
		}
		block = next
		if same {
			break
		}
	}

	// Build the quotient.
	nBlocks := countBlocks(block)
	q := NewModel(nBlocks, m.numAgents)
	rep := make([]int, nBlocks)
	for i := range rep {
		rep[i] = -1
	}
	for w := 0; w < m.numWorlds; w++ {
		if rep[block[w]] == -1 {
			rep[block[w]] = w
		}
	}
	for prop, set := range m.valuation {
		for b := 0; b < nBlocks; b++ {
			if set.Contains(rep[b]) {
				q.SetTrue(b, prop)
			}
		}
	}
	for a := 0; a < m.numAgents; a++ {
		// Blocks are a-indistinguishable iff some members are.
		first := make(map[int]int) // class id -> block
		for w := 0; w < m.numWorlds; w++ {
			id := int(partIDs(a)[w])
			if prev, ok := first[id]; ok {
				q.Indistinguishable(a, prev, block[w])
			} else {
				first[id] = block[w]
			}
		}
	}
	for b := 0; b < nBlocks; b++ {
		q.SetName(b, fmt.Sprintf("b%d<%s>", b, m.Name(rep[b])))
	}
	return q, block
}

func countBlocks(block []int) int {
	max := -1
	for _, b := range block {
		if b > max {
			max = b
		}
	}
	return max + 1
}
