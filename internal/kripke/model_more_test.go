package kripke

import (
	"sort"
	"testing"

	"repro/internal/bitset"
	"repro/internal/logic"
)

func TestSetFactAndFacts(t *testing.T) {
	m := NewModel(3, 2)
	if m.NumAgents() != 2 {
		t.Errorf("NumAgents = %d", m.NumAgents())
	}
	m.SetFact(0, "p", true)
	m.SetFact(1, "p", true)
	m.SetFact(1, "p", false)
	m.SetFact(2, "q", false) // setting false on an unknown fact is a no-op
	set := m.FactSet("p")
	if !set.Contains(0) || set.Contains(1) {
		t.Errorf("p holds at %s", set)
	}
	facts := m.Facts()
	sort.Strings(facts)
	if len(facts) != 1 || facts[0] != "p" {
		t.Errorf("Facts = %v (q was never made true)", facts)
	}
	// FactSet returns a copy.
	set.Add(2)
	if m.FactSet("p").Contains(2) {
		t.Error("FactSet exposed internal storage")
	}
}

func TestSameClassAndClassID(t *testing.T) {
	m := NewModel(4, 1)
	m.Indistinguishable(0, 0, 1)
	m.Indistinguishable(0, 2, 3)
	if !m.SameClass(0, 0, 1) || m.SameClass(0, 1, 2) {
		t.Error("SameClass wrong")
	}
	if m.ClassID(0, 0) != m.ClassID(0, 1) {
		t.Error("class ids of merged worlds differ")
	}
	if m.ClassID(0, 0) == m.ClassID(0, 2) {
		t.Error("class ids of separate worlds coincide")
	}
}

func TestSetLevelOperators(t *testing.T) {
	// KnowSet / EveryoneSet / CommonSet agree with formula evaluation.
	m := chainModel(6)
	p, err := m.Eval(logic.P("p"))
	if err != nil {
		t.Fatal(err)
	}
	k0Direct, err := m.Eval(logic.K(0, logic.P("p")))
	if err != nil {
		t.Fatal(err)
	}
	if !m.KnowSet(0, p).Equal(k0Direct) {
		t.Error("KnowSet disagrees with K0 evaluation")
	}
	agents, err := m.GroupAgents(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(agents) != 2 {
		t.Errorf("GroupAgents(nil) = %v", agents)
	}
	eDirect, err := m.Eval(logic.E(nil, logic.P("p")))
	if err != nil {
		t.Fatal(err)
	}
	if !m.EveryoneSet(agents, p).Equal(eDirect) {
		t.Error("EveryoneSet disagrees with E evaluation")
	}
	cDirect, err := m.Eval(logic.C(nil, logic.P("p")))
	if err != nil {
		t.Fatal(err)
	}
	if !m.CommonSet(agents, p).Equal(cDirect) {
		t.Error("CommonSet disagrees with C evaluation")
	}
}

func TestGReachIDs(t *testing.T) {
	m := chainModel(6)
	ids, err := m.GReachIDs(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The chain is fully connected under both agents together.
	for w := 1; w < 6; w++ {
		if ids[w] != ids[0] {
			t.Errorf("world %d in a different component", w)
		}
	}
	// Under agent 0 alone, only the pairs (2i, 2i+1) are joined.
	ids0, err := m.GReachIDs(logic.NewGroup(0))
	if err != nil {
		t.Fatal(err)
	}
	if ids0[0] != ids0[1] || ids0[1] == ids0[2] {
		t.Errorf("agent-0 components wrong: %v", ids0)
	}
	if _, err := m.GReachIDs(logic.NewGroup(9)); err == nil {
		t.Error("out-of-range group accepted")
	}
}

func TestRefineAgentSemiPublicAnnouncement(t *testing.T) {
	// RefineAgent models a telling whose OCCURRENCE is commonly known
	// (only its content is directed at one agent). Worlds: 0 (p), 1 (~p);
	// both agents confused. Refining agent 0 by p makes agent 0 know
	// whether p, leaves agent 1 ignorant of p itself — but agent 1 now
	// knows that agent 0 knows whether p.
	m := NewModel(2, 2)
	m.SetTrue(0, "p")
	m.Indistinguishable(0, 0, 1)
	m.Indistinguishable(1, 0, 1)
	m.SetName(0, "yes")
	m.SetName(1, "no")

	pSet, err := m.Eval(logic.P("p"))
	if err != nil {
		t.Fatal(err)
	}
	refined := m.RefineAgent(0, pSet)

	k0, err := refined.Eval(logic.MustParse("K0 p | K0 ~p"))
	if err != nil {
		t.Fatal(err)
	}
	if !k0.IsFull() {
		t.Error("agent 0 should know whether p after refinement")
	}
	k1, err := refined.Eval(logic.MustParse("K1 p | K1 ~p"))
	if err != nil {
		t.Fatal(err)
	}
	if !k1.IsEmpty() {
		t.Error("agent 1 should remain ignorant of p")
	}
	k1k0, err := refined.Eval(logic.MustParse("K1 (K0 p | K0 ~p)"))
	if err != nil {
		t.Fatal(err)
	}
	if !k1k0.IsFull() {
		t.Error("agent 1 should know that agent 0 knows whether p (the telling is common knowledge)")
	}
	// Names and facts survive.
	if w, ok := refined.WorldByName("yes"); !ok || !refined.FactSet("p").Contains(w) {
		t.Error("names/facts not preserved by RefineAgent")
	}
	// Refining by the empty set collapses nothing new for others.
	empty := bitset.New(2)
	r2 := m.RefineAgent(1, empty)
	if !r2.SameClass(1, 0, 1) {
		t.Error("refining by the empty set should keep the class together")
	}
}
