package kripke

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/logic"
)

// This file implements the parallel batch-evaluation engine: EvalBatch fans
// independent Eval calls out across a worker pool over one shared model.
// The paper's headline workloads are many independent epistemic queries
// against one model — the n per-child know-sets of a muddy children round,
// the dozens of experiment formulas per system — and Halpern–Moses model
// checking is embarrassingly parallel at the query level.
//
// What the workers share, and why it is safe:
//
//   - The model's construction data (valuation columns, relation ids) is
//     immutable during evaluation, as the concurrent-Eval contract already
//     requires.
//   - Derived tables (per-agent partitions, joint-view refinements,
//     reachability components) are built lazily behind single-flight
//     guards — buildMu for the per-agent tables, an in-flight registry for
//     the per-group partitions — so concurrent cold evaluators build each
//     table exactly once and everyone else waits for the result instead of
//     duplicating the build. EvalBatch additionally front-loads the tables
//     its formulas will need (prepareBatch) before spawning workers.
//   - Each worker owns a pooled evaluator (scratch freelist, kernel
//     scratch, key arena), so all mutable evaluation state is private.
//   - Closed-subformula denotations are shared through a lock-striped
//     structural-key memo (sharedMemo): the first worker to finish a
//     closed subformula publishes its denotation, later workers reuse it.
//     Published sets are immutable from publication on — the evaluator
//     treats shared memo hits exactly like its local memo hits (owned =
//     false, copy before mutating).
//
// Verdicts are deterministic: denotations are semantically determined, so
// the batch result is byte-identical to a serial Eval loop regardless of
// scheduling (pinned by batch tests and the root regression test).

// BatchOption configures EvalBatch.
type BatchOption func(*batchConfig)

type batchConfig struct {
	workers int
}

// BatchWorkers sets the worker count of an EvalBatch: n <= 0 selects one
// worker per core (GOMAXPROCS, the default), n == 1 forces the serial
// path, and larger n caps the pool at n workers. The pool is never wider
// than the batch.
func BatchWorkers(n int) BatchOption {
	return func(c *batchConfig) { c.workers = n }
}

// WorkersFromFlag maps the CLI -parallel flag convention shared by the
// repo's commands (flag < 0 = one worker per core, flag == 0 = serial,
// flag == n = n workers) onto the worker-count semantics of BatchWorkers
// and core.RunAllWorkers (0 = one per core, 1 = serial).
func WorkersFromFlag(flag int) int {
	switch {
	case flag < 0:
		return 0
	case flag == 0:
		return 1
	default:
		return flag
	}
}

// memoShards is the stripe count of the shared structural-key memo. Keys
// are spread by FNV-1a, so a handful of stripes keeps workers on disjoint
// locks; the memo is per-batch and the stripes are tiny.
const memoShards = 16

type memoShard struct {
	mu sync.RWMutex
	m  map[string]*bitset.Set
}

// sharedMemo is the lock-striped closed-subformula memo one EvalBatch's
// workers share. Values are immutable once published.
type sharedMemo struct {
	shards [memoShards]memoShard
}

func newSharedMemo() *sharedMemo {
	sm := &sharedMemo{}
	for i := range sm.shards {
		sm.shards[i].m = make(map[string]*bitset.Set)
	}
	return sm
}

// shardOf spreads structural keys across the stripes (FNV-1a).
func shardOf(key []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range key {
		h = (h ^ uint32(b)) * 16777619
	}
	return h % memoShards
}

func (sm *sharedMemo) get(key []byte) *bitset.Set {
	sh := &sm.shards[shardOf(key)]
	sh.mu.RLock()
	s := sh.m[string(key)]
	sh.mu.RUnlock()
	return s
}

// put publishes s under key. The first publisher wins; put returns the
// winning set and whether s was it. A losing caller still owns its s and
// should recycle it.
func (sm *sharedMemo) put(key []byte, s *bitset.Set) (*bitset.Set, bool) {
	sh := &sm.shards[shardOf(key)]
	sh.mu.Lock()
	if w, ok := sh.m[string(key)]; ok {
		sh.mu.Unlock()
		return w, false
	}
	sh.m[string(key)] = s
	sh.mu.Unlock()
	return s, true
}

// EvalBatch evaluates every formula of the batch and returns their
// denotations, in order, fanning the evaluations out across a worker pool
// over this one model (see BatchWorkers; the default is one worker per
// core, so on a single-core machine the batch degenerates to the serial
// loop). All formulas must be closed. The returned sets are owned by the
// caller. On error, the error of the smallest failing index is returned —
// the same error a serial loop would have stopped at.
//
// Like concurrent Eval, EvalBatch requires the model to be fully
// constructed; it may run concurrently with other EvalBatch or Eval calls
// on the same model, but not with construction.
func (m *Model) EvalBatch(fs []logic.Formula, opts ...BatchOption) ([]*bitset.Set, error) {
	return m.EvalBatchCtx(context.Background(), fs, opts...)
}

// EvalBatchCtx is EvalBatch with deadline/cancellation propagation: the
// context is checked before every formula pickup — on the serial path and
// in every worker of the fan-out — and between the single-flight table
// builds of the batch preparation, so a caller whose context dies (a
// disconnected client, an expired deadline) stops burning cores after at
// most one in-flight formula per worker instead of finishing the whole
// batch. On cancellation the error is ctx.Err() and no results are
// returned. With a context that never cancels, results are byte-identical
// to EvalBatch — the checks are reads, never branches in the evaluation
// itself.
func (m *Model) EvalBatchCtx(ctx context.Context, fs []logic.Formula, opts ...BatchOption) ([]*bitset.Set, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var cfg batchConfig
	for _, o := range opts {
		o(&cfg)
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(fs) {
		workers = len(fs)
	}
	out := make([]*bitset.Set, len(fs))
	if workers <= 1 {
		// Serial path: one evaluator for the whole batch, so its
		// closed-subformula memo is shared across the formulas — a
		// knowledge tower (each level containing the previous) costs one
		// kernel per level instead of re-deriving every prefix. Results
		// are identical to per-formula Eval; -parallel=0 / GOMAXPROCS=1
		// callers measure the serial engine, batch-memoized.
		ev := m.getEvaluator()
		defer m.putEvaluator(ev)
		for i, f := range fs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			s, owned, err := ev.eval(f, nil)
			if err != nil {
				return nil, err
			}
			if owned {
				out[i] = s // scratch set leaves the evaluator's pool
			} else {
				out[i] = s.Clone()
			}
		}
		return out, nil
	}

	// Front-load every derived table the batch can be seen to need, so
	// workers start on warm tables instead of meeting on the single-flight
	// guards one build at a time.
	m.prepareBatch(ctx, fs)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	sm := newSharedMemo()
	errs := make([]error, len(fs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := m.getEvaluator()
			ev.shared = sm
			defer m.putEvaluator(ev)
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(fs) {
					return
				}
				s, owned, err := ev.eval(fs[i], nil)
				if err != nil {
					errs[i] = err
					continue
				}
				if owned {
					out[i] = s // scratch set leaves the evaluator's pool
				} else {
					// Shared state (a memo entry, a fact column): the
					// caller gets an independent copy.
					out[i] = s.Clone()
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// prepareBatch builds, ahead of the fan-out, the derived tables the batch
// formulas mention: per-agent partition tables (sharded across goroutines
// on large models, as PrepareAgents does), joint-view partitions for the
// D_G groups and reachability partitions for the C_G groups. Invalid
// agents or groups are skipped — the evaluation itself reports them with
// its usual errors. The context is checked between the single-flight
// builds: a cancelled batch stops launching further table builds (builds
// already in flight run to completion — they are shared with other
// batches through the model's caches and must stay coherent).
func (m *Model) prepareBatch(ctx context.Context, fs []logic.Formula) {
	t := m.tables()
	seen := make([]bool, m.numAgents)
	var agents []int
	markAgent := func(a int) {
		if a >= 0 && a < m.numAgents && !seen[a] {
			seen[a] = true
			agents = append(agents, a)
		}
	}
	type groupNeed struct {
		agents []int
		joint  bool
		reach  bool
	}
	groups := make(map[string]*groupNeed)
	var keyBuf []byte
	need := func(g logic.Group, joint, reach bool) {
		resolved, err := m.resolveGroup(g)
		if err != nil {
			return
		}
		for _, a := range resolved {
			markAgent(a)
		}
		if len(resolved) == 0 {
			return
		}
		keyBuf = m.groupKey(keyBuf[:0], resolved)
		gn := groups[string(keyBuf)]
		if gn == nil {
			gn = &groupNeed{agents: append([]int(nil), resolved...)}
			groups[string(keyBuf)] = gn
		}
		gn.joint = gn.joint || joint
		gn.reach = gn.reach || reach
	}
	for _, f := range fs {
		logic.Walk(f, func(g logic.Formula) bool {
			switch n := g.(type) {
			case logic.Know:
				markAgent(int(n.Agent))
			case logic.Someone:
				need(n.G, false, false)
			case logic.Everyone:
				need(n.G, false, false)
			case logic.Dist:
				need(n.G, true, false)
			case logic.Common:
				need(n.G, false, true)
			case logic.EveryEps:
				need(n.G, false, false)
			case logic.CommonEps:
				need(n.G, false, false)
			case logic.EveryEv:
				need(n.G, false, false)
			case logic.CommonEv:
				need(n.G, false, false)
			case logic.EveryTime:
				need(n.G, false, false)
			case logic.CommonTime:
				need(n.G, false, false)
			}
			return true
		})
	}
	if ctx.Err() != nil {
		return
	}
	if len(agents) > 0 {
		m.ensureParts(t, agents)
	}
	for _, gn := range groups {
		if ctx.Err() != nil {
			return
		}
		if gn.joint {
			m.jointPartition(t, gn.agents, nil)
		}
		if gn.reach {
			m.reachPartition(t, gn.agents, nil)
		}
	}
}
