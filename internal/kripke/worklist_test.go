package kripke

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

// nuBodies builds the νX bodies the worklist path recognizes, over a model
// with at least two agents: every modal operator, with and without closed
// conjuncts.
func nuBodies(v string) []logic.Formula {
	x := logic.X(v)
	g := logic.NewGroup(0, 1)
	return []logic.Formula{
		logic.E(nil, logic.Conj(logic.P("p"), x)),
		logic.E(g, logic.Conj(logic.P("p"), x)),
		logic.E(nil, x),
		logic.K(0, logic.Conj(logic.P("q"), x)),
		logic.K(1, x),
		logic.D(g, logic.Conj(logic.P("p"), x)),
		logic.C(g, logic.Conj(logic.Disj(logic.P("p"), logic.P("q")), x)),
		logic.E(nil, logic.Conj(logic.P("p"), logic.P("q"), x)),
		logic.E(nil, logic.Conj(logic.K(0, logic.P("p")), x)),
		// Nested supported ν inside φ: regression for the wparts scratch —
		// the inner fixpoint re-enters the worklist machinery while the
		// outer body is being set up.
		logic.E(nil, logic.Conj(logic.GFP("Y", logic.K(1, logic.Conj(logic.P("q"), logic.X("Y")))), x)),
	}
}

// TestQuickWorklistMatchesNaive: on random models, the worklist path must
// compute exactly the set and exactly the iteration count of the naive
// Knaster–Tarski loop, for every recognized body shape.
func TestQuickWorklistMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng, 2+rng.Intn(40), 2+rng.Intn(3))
		for _, body := range nuBodies("X") {
			ev := m.getEvaluator()
			mod, phi, ok := worklistShape("X", body)
			if !ok {
				t.Fatalf("worklistShape rejected %s", body)
			}
			// Same order as the fixpoint dispatch: φ first (it may re-enter
			// the worklist machinery), then the partition scratch.
			phiSet, owned, err := ev.eval(phi, nil)
			if err != nil {
				t.Fatal(err)
			}
			parts, ok := ev.worklistParts(mod)
			if !ok {
				t.Fatalf("worklistParts rejected %s", body)
			}
			fast := ev.fixpointWorklist(parts, phiSet)
			fastIters := ev.fixIters
			ev.releaseIf(phiSet, owned)

			slow, slowOwned, err := ev.fixpointNaive("X", body, nil, true)
			if err != nil {
				t.Fatal(err)
			}
			slowIters := ev.fixIters

			if !fast.Equal(slow) {
				t.Errorf("seed %d: νX.%s: worklist %s != naive %s", seed, body, fast, slow)
				return false
			}
			if fastIters != slowIters {
				t.Errorf("seed %d: νX.%s: worklist took %d iterations, naive %d", seed, body, fastIters, slowIters)
				return false
			}
			ev.release(fast)
			ev.releaseIf(slow, slowOwned)
			m.putEvaluator(ev)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestWorklistShape: the shape matcher must accept exactly the support
// shapes (so everything else falls back to the naive loop rather than be
// mis-evaluated).
func TestWorklistShape(t *testing.T) {
	x := logic.X("X")
	cases := []struct {
		body logic.Formula
		want bool
	}{
		{logic.P("p"), false},                                          // no modality
		{logic.Conj(logic.P("p"), logic.E(nil, x)), false},             // modality below a conjunction
		{logic.E(nil, logic.Disj(logic.P("p"), x)), false},             // disjunctive body
		{logic.E(nil, logic.Conj(x, x)), false},                        // variable twice
		{logic.E(nil, logic.Conj(logic.K(0, x), x)), false},            // variable inside a conjunct
		{logic.E(nil, logic.Neg(x)), false},                            // non-positive
		{logic.Someone{G: nil, F: x}, false},                           // S_G has no class-failure form
		{logic.E(nil, logic.Conj(logic.P("p"), logic.X("X2"))), false}, // X absent
		{logic.E(nil, x), true},
		{logic.E(nil, logic.Conj(logic.P("p"), x)), true},
		{logic.K(0, logic.Conj(logic.P("p"), x)), true},
		{logic.D(logic.NewGroup(0, 1), logic.Conj(logic.P("p"), x)), true},
		{logic.C(logic.NewGroup(0, 1), logic.Conj(logic.P("p"), x)), true},
		// A *different* free variable in a conjunct is allowed: it is
		// constant during this fixpoint's iteration.
		{logic.E(nil, logic.Conj(logic.X("Y"), x)), true},
	}
	for _, c := range cases {
		if _, _, ok := worklistShape("X", c.body); ok != c.want {
			t.Errorf("worklistShape(X, %s) = %v, want %v", c.body, ok, c.want)
		}
	}
}

// TestWorklistViaEval: the public entry points (Eval of a ν formula,
// CommonKnowledgeByIteration) take the worklist path and still agree with
// the component-based C_G on structured and random models.
func TestWorklistViaEval(t *testing.T) {
	models := []*Model{chainModel(1), chainModel(2), chainModel(65), chainModel(256)}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		models = append(models, randomModel(rng, 1+rng.Intn(80), 1+rng.Intn(4)))
	}
	// A model where φ is empty, and one where φ is full.
	empty := NewModel(6, 2)
	empty.Indistinguishable(0, 0, 1)
	full := NewModel(6, 2)
	full.Indistinguishable(1, 2, 3)
	for w := 0; w < 6; w++ {
		full.SetTrue(w, "p")
	}
	models = append(models, empty, full)

	for mi, m := range models {
		direct, err := m.Eval(logic.C(nil, logic.P("p")))
		if err != nil {
			t.Fatal(err)
		}
		viaNu, err := m.Eval(logic.MustParse("nu X . E (p & X)"))
		if err != nil {
			t.Fatal(err)
		}
		iter, _, err := m.CommonKnowledgeByIteration(nil, logic.P("p"))
		if err != nil {
			t.Fatal(err)
		}
		if !direct.Equal(viaNu) || !direct.Equal(iter) {
			t.Errorf("model %d: C=%s νX=%s iter=%s disagree", mi, direct, viaNu, iter)
		}
	}
}
