package kripke

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

// genStaticFormula generates a random closed formula without temporal
// operators (which plain Kripke models cannot evaluate), including
// constants so that simplification has work to do.
func genStaticFormula(rng *rand.Rand, depth int, agents int, vars []string) logic.Formula {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return logic.P("p")
		case 1:
			return logic.P("q")
		case 2:
			return logic.Truth{Value: rng.Intn(2) == 0}
		default:
			if len(vars) > 0 {
				return logic.Var{Name: vars[rng.Intn(len(vars))]}
			}
			return logic.P("p")
		}
	}
	groups := []logic.Group{nil, logic.NewGroup(0), logic.NewGroup(0, 1)}
	g := groups[rng.Intn(len(groups))]
	sub := func() logic.Formula { return genStaticFormula(rng, depth-1, agents, vars) }
	subNoVars := func() logic.Formula { return genStaticFormula(rng, depth-1, agents, nil) }
	switch rng.Intn(11) {
	case 0:
		return logic.Neg(subNoVars())
	case 1:
		return logic.Conj(sub(), sub())
	case 2:
		return logic.Disj(sub(), sub())
	case 3:
		return logic.Imp(subNoVars(), sub())
	case 4:
		return logic.Equiv(subNoVars(), subNoVars())
	case 5:
		return logic.K(logic.Agent(rng.Intn(agents)), sub())
	case 6:
		return logic.E(g, sub())
	case 7:
		return logic.C(g, sub())
	case 8:
		return logic.D(g, sub())
	case 9:
		return logic.S(g, sub())
	default:
		name := string(rune('X' + rng.Intn(2)))
		inner := genStaticFormula(rng, depth-1, agents, append(append([]string{}, vars...), name))
		return logic.GFP(name, inner)
	}
}

// TestQuickSimplifyPreservesSemantics: Simplify is truth-preserving on
// random models under the view-based semantics.
func TestQuickSimplifyPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		agents := 2 + rng.Intn(2)
		m := randomModel(rng, 2+rng.Intn(20), agents)
		phi := genStaticFormula(rng, 1+rng.Intn(4), agents, nil)
		simplified := logic.Simplify(phi)
		orig, err := m.Eval(phi)
		if err != nil {
			t.Logf("eval %s: %v", phi, err)
			return false
		}
		simp, err := m.Eval(simplified)
		if err != nil {
			t.Logf("eval simplified %s: %v", simplified, err)
			return false
		}
		if !orig.Equal(simp) {
			t.Logf("seed %d: %s != %s", seed, phi, simplified)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
