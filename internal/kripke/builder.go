package kripke

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/intern"
)

// Builder constructs a Model column-wise, the batch counterpart of the
// incremental SetTrue/Indistinguishable/SetName methods. It exists because
// announcement-style workloads are dominated by model construction, not
// evaluation: building a 2^n-world model one (world, fact) pair and one
// indistinguishability edge at a time costs a hash probe or a union-find
// operation per call, while the same model described columnar is a handful
// of map probes total.
//
//   - Ground facts are interned once and exposed as whole bitset columns
//     (Column); callers write membership bits — often whole 64-world words —
//     directly.
//   - Agent partitions are installed as dense class-id vectors
//     (SetPartition), or derived from arbitrary view keys in a single
//     interning pass (PartitionFromKeys). No union-find is involved, and
//     the ids feed the evaluator's partition tables as-is.
//   - World names are stored as a plain column (SetName, Names); the
//     name→world index is built lazily by the model on first lookup.
//
// A Builder is single-use: call Build once to obtain the finished model.
// It is not safe for concurrent use.
type Builder struct {
	m     *Model
	props *intern.Table
	cols  []*bitset.Set
	views *intern.Table // per-agent view-key interner, reset between agents
}

// NewBuilder starts a model with numWorlds worlds and numAgents agents,
// initially with all worlds distinguishable and no facts true.
func NewBuilder(numWorlds, numAgents int) *Builder {
	return &Builder{
		m:     NewModel(numWorlds, numAgents),
		props: intern.NewTable(),
	}
}

// NumWorlds returns the number of worlds of the model under construction.
func (b *Builder) NumWorlds() int { return b.m.numWorlds }

// NumAgents returns the number of agents of the model under construction.
func (b *Builder) NumAgents() int { return b.m.numAgents }

// Column returns the valuation column of prop — the set of worlds where it
// holds — creating an empty column on first sight of the name. The caller
// writes membership directly into the returned set (bit-wise with Add, or
// word-wise through Words for patterned facts); the column is live, so
// writes need no further installation call.
func (b *Builder) Column(prop string) *bitset.Set {
	id := b.props.Intern(prop)
	if int(id) == len(b.cols) {
		b.cols = append(b.cols, bitset.New(b.m.numWorlds))
	}
	return b.cols[id]
}

// SetName assigns a display/lookup name to a world. Unlike Model.SetName it
// never maintains a reverse index during construction; the model builds one
// lazily on the first WorldByName.
func (b *Builder) SetName(w int, name string) {
	b.m.ensureNames()
	b.m.names[w] = name
}

// Names installs the whole name column at once, adopting the slice. It must
// have length NumWorlds; empty strings mean unnamed.
func (b *Builder) Names(names []string) {
	if len(names) != b.m.numWorlds {
		panic(fmt.Sprintf("kripke: Names got %d names for %d worlds", len(names), b.m.numWorlds))
	}
	b.m.names = names
}

// SetPartition installs agent a's entire view partition as dense class ids:
// worlds v, w are indistinguishable to a iff ids[v] == ids[w]. ids must
// have length NumWorlds and values in [0, numClasses). The builder takes
// ownership of ids.
func (b *Builder) SetPartition(a int, ids []int32, numClasses int) {
	if len(ids) != b.m.numWorlds {
		panic(fmt.Sprintf("kripke: SetPartition got %d ids for %d worlds", len(ids), b.m.numWorlds))
	}
	for _, id := range ids {
		if id < 0 || int(id) >= numClasses {
			panic(fmt.Sprintf("kripke: SetPartition class id %d out of range [0,%d)", id, numClasses))
		}
	}
	b.m.setPartition(a, ids, numClasses)
}

// PartitionFromKeys installs agent a's view partition from an arbitrary
// view-key function: worlds with equal keys land in the same class. Keys
// are interned in one pass (one hash probe per world — the same cost a
// deduplicating map would pay just to find class representatives), and the
// resulting dense ids feed the partition tables directly.
func (b *Builder) PartitionFromKeys(a int, key func(w int) string) {
	if b.views == nil {
		b.views = intern.NewTable()
	} else {
		b.views.Reset()
	}
	ids := make([]int32, b.m.numWorlds)
	for w := range ids {
		ids[w] = b.views.Intern(key(w))
	}
	b.m.setPartition(a, ids, b.views.Len())
}

// Indistinguishable declares a single indistinguishability edge, the
// incremental fallback for relations with no natural columnar form.
func (b *Builder) Indistinguishable(a, w1, w2 int) {
	b.m.Indistinguishable(a, w1, w2)
}

// Build finalizes and returns the model. The builder must not be used
// afterwards.
func (b *Builder) Build() *Model {
	m := b.m
	for id, col := range b.cols {
		m.setFactSet(b.props.Sym(int32(id)), col)
	}
	b.m = nil
	b.cols = nil
	return m
}
