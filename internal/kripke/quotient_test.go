package kripke

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/logic"
)

var quotientBatch = []logic.Formula{
	logic.P("p"),
	logic.Neg(logic.P("q")),
	logic.K(0, logic.P("p")),
	logic.E(nil, logic.Disj(logic.P("p"), logic.P("q"))),
	logic.D(nil, logic.P("q")),
	logic.C(nil, logic.P("p")),
	logic.EK(nil, 4, logic.P("p")),
	logic.MustParse("nu X . E (p & X)"),
	logic.Disj(
		logic.K(0, logic.Neg(logic.K(1, logic.P("p")))),
		logic.C(nil, logic.Imp(logic.P("p"), logic.P("q")))),
}

// TestQuickQuotientForEvalAgrees: Eval/Holds/Valid through the quotient
// view must return exactly the direct verdicts, whether or not the gates
// let the quotient fire.
func TestQuickQuotientForEvalAgrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng, 2+rng.Intn(40), 2+rng.Intn(2))
		q := m.QuotientForEval(1) // force the quotient attempt at any size
		for _, phi := range quotientBatch {
			direct, err := m.Eval(phi)
			if err != nil {
				t.Fatal(err)
			}
			via, err := q.Eval(phi)
			if err != nil {
				t.Fatal(err)
			}
			if !direct.Equal(via) {
				t.Errorf("seed %d: %s: quotient verdict %s != direct %s", seed, phi, via, direct)
				return false
			}
			holds, err := q.Holds(phi, 0)
			if err != nil {
				t.Fatal(err)
			}
			if holds != direct.Contains(0) {
				t.Errorf("seed %d: %s: Holds(0) = %v, want %v", seed, phi, holds, direct.Contains(0))
				return false
			}
			valid, err := q.Valid(phi)
			if err != nil {
				t.Fatal(err)
			}
			if valid != direct.IsFull() {
				t.Errorf("seed %d: %s: Valid = %v, want %v", seed, phi, valid, direct.IsFull())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuotientForEvalGates: the size, shrinkage and temporal gates must
// fall back to the original model.
func TestQuotientForEvalGates(t *testing.T) {
	// Size gate: a collapsible model below the threshold stays unquotiented.
	m := NewModel(4, 1)
	m.SetTrue(0, "p")
	m.SetTrue(2, "p")
	m.Indistinguishable(0, 0, 1)
	m.Indistinguishable(0, 2, 3)
	if q := m.QuotientForEval(0); q.Quotiented() {
		t.Error("size gate did not hold below QuotientMinWorlds")
	}
	if q := m.QuotientForEval(1); !q.Quotiented() {
		t.Error("explicit minWorlds=1 did not force the quotient")
	} else if q.QuotientWorlds() != 2 {
		t.Errorf("quotient has %d worlds, want 2", q.QuotientWorlds())
	}

	// Shrinkage gate: the chain model is its own quotient.
	if q := chainModel(16).QuotientForEval(1); q.Quotiented() {
		t.Error("shrinkage gate kept an unshrunk quotient")
	}

	// Temporal gate.
	mt := NewModel(4, 1)
	mt.Indistinguishable(0, 0, 1)
	mt.Indistinguishable(0, 2, 3)
	mt.Temporal = stubTemporal{}
	if q := mt.QuotientForEval(1); q.Quotiented() {
		t.Error("temporal gate did not hold")
	}
}

type stubTemporal struct{}

func (stubTemporal) EvalTemporal(m *Model, f logic.Formula, rec func(logic.Formula) (*bitset.Set, error)) (*bitset.Set, error) {
	return bitset.New(m.NumWorlds()), nil
}

// TestQuotientForEvalEpistemic: detaching the temporal hook lets the
// epistemic structure quotient, temporal formulas error out on the view,
// and epistemic verdicts agree with the hooked original.
func TestQuotientForEvalEpistemic(t *testing.T) {
	m := NewModel(4, 1)
	m.SetTrue(0, "p")
	m.SetTrue(2, "p")
	m.Indistinguishable(0, 0, 1)
	m.Indistinguishable(0, 2, 3)
	m.Temporal = stubTemporal{}
	q := m.QuotientForEvalEpistemic(1)
	if !q.Quotiented() {
		t.Fatal("epistemic quotient did not fire on a temporal model")
	}
	phi := logic.K(0, logic.P("p"))
	direct, err := m.Eval(phi)
	if err != nil {
		t.Fatal(err)
	}
	via, err := q.Eval(phi)
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Equal(via) {
		t.Errorf("epistemic quotient verdict %s != direct %s", via, direct)
	}
	if _, err := q.Eval(logic.Eev(nil, logic.P("p"))); err == nil {
		t.Error("temporal operator did not error on the epistemic view")
	}
}
