package kripke_test

import (
	"fmt"

	"repro/internal/kripke"
	"repro/internal/logic"
)

// ExampleModel_Eval builds the "chain of ignorance" model of Section 6 —
// agent 0 confuses w0/w1, agent 1 confuses w1/w2 — and walks the knowledge
// hierarchy of Section 3: everyone knows p, but nobody knows that everyone
// knows it, and common knowledge (evaluated as the greatest fixed point
// νX.E(p ∧ X) as well as via reachability components) fails everywhere.
func ExampleModel_Eval() {
	m := kripke.NewModel(3, 2)
	m.SetTrue(0, "p")
	m.SetTrue(1, "p")
	m.Indistinguishable(0, 0, 1)
	m.Indistinguishable(1, 1, 2)

	for _, src := range []string{
		"p",
		"E p",
		"E (E p)",
		"C p",
		"nu X . E (p & X)", // C p by its fixed-point characterization
	} {
		f := logic.MustParse(src)
		set, err := m.Eval(f)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-16s holds at %d world(s)\n", f, set.Count())
	}
	// Output:
	// p                holds at 2 world(s)
	// E p              holds at 1 world(s)
	// E E p            holds at 0 world(s)
	// C p              holds at 0 world(s)
	// nu X . E (p & X) holds at 0 world(s)
}

// ExampleModel_QuotientForEval evaluates a batch of formulas on the
// bisimulation quotient of a model with two identical components, mapping
// the verdicts back to the original worlds.
func ExampleModel_QuotientForEval() {
	m := kripke.NewModel(4, 1)
	m.SetTrue(0, "p")
	m.SetTrue(2, "p")
	m.Indistinguishable(0, 0, 1)
	m.Indistinguishable(0, 2, 3)

	q := m.QuotientForEval(1)
	fmt.Printf("evaluating %d worlds on a %d-world quotient\n", q.NumWorlds(), q.QuotientWorlds())
	set, err := q.Eval(logic.MustParse("K0 p"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("K0 p holds at %s of the original model\n", set)
	// Output:
	// evaluating 4 worlds on a 2-world quotient
	// K0 p holds at {} of the original model
}
