// Package kripke implements finite epistemic Kripke models and the model
// checking of the knowledge hierarchy of Halpern & Moses Section 3.
//
// A model is a finite set of worlds, one indistinguishability partition per
// agent, and a valuation of ground facts. This is exactly the graph of
// Section 6 of the paper: worlds are nodes, and two worlds share an edge
// labeled p_i iff agent i has the same view in both. Knowledge operators are
// computed from the partitions:
//
//   - K_i φ holds at w iff φ holds throughout agent i's partition class of w.
//   - D_G φ uses the common refinement (joint views) of the G partitions.
//   - C_G φ holds at w iff φ holds throughout the G-reachability component
//     of w — the connected component of w under the union of the G
//     partitions — which the package computes with a disjoint-set union.
//
// The package also provides public-announcement updates (the father's
// announcement in the muddy children puzzle is Announce) and validity
// checking used by the axiom checkers in axioms.go.
//
// # Construction architecture: columns and class ids
//
// Construction is columnar. Each agent's indistinguishability relation is
// stored in one of two interchangeable forms: a disjoint-set union that
// accumulates pairwise Indistinguishable edges, or a dense class-id vector
// installed in one shot (the Builder's SetPartition / PartitionFromKeys).
// Valuations are bitset columns, written word-by-word by bulk constructors.
// The Builder in builder.go is the front door for batch construction;
// the incremental Model methods (SetTrue, Indistinguishable, SetName)
// remain for small or exploratory models and convert between the forms
// transparently.
//
// Model updates reuse rather than rebuild: Restrict compacts valuation
// columns with the word-level gather kernel of the bitset package, renames
// class ids through a pooled scratch, and hands the surviving joint-view
// partitions to the restricted model (restriction commutes with common
// refinement), so an announcement chain — the muddy children rounds, the
// attack message chains — never recomputes derived state it can remap.
//
// # Evaluation architecture: masks and caches
//
// Formula denotations are bit sets over the worlds, and every knowledge
// operator reduces to one kernel over a partition of the worlds (the
// agent's view classes for K_i, their common refinement for D_G, the
// G-reachability components for C_G). Each partition is materialized once
// as per-class bitset masks in CSR layout (see partition.go) and the
// kernel works on whole 64-bit words: classes that escape φ are found by
// scanning only ¬φ, and are removed from the full set by word-level
// AND-NOT of their masks.
//
// The derived tables are built lazily and cached on the model behind an
// atomic pointer: each agent's partition on its first use (so one-shot
// models never pay for tables no formula touches), and one partition per
// distinct agent group for D_G refinements and C_G reachability components
// (so fixed-point iteration re-uses the component structure instead of
// rebuilding a union-find per step). When a group operator needs many
// agents' tables at once on a large model, the per-agent builds are
// sharded across goroutines, as are the per-agent passes of the E_G/S_G
// kernels — each worker owns its scratch, and small models keep the serial
// path. Construction calls (Indistinguishable) invalidate the tables.
// Evaluation itself runs on a pooled evaluator that memoizes closed
// subformula denotations by structural key and recycles scratch sets,
// making steady-state Eval near-allocation-free. All caches are safe for
// concurrent Eval on a fully constructed model.
package kripke

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/logic"
	"repro/internal/unionfind"
)

// Parallelism gates for the sharded construction and kernel paths. They are
// variables (not constants) so tests can lower them to exercise the parallel
// paths on small models; production code treats them as constants.
var (
	// parallelPartsMinWorlds is the world count from which missing per-agent
	// partition tables are built concurrently (one goroutine per table).
	parallelPartsMinWorlds = 2048
	// parallelPartsMinAgents is the minimum number of missing tables worth
	// spawning goroutines for.
	parallelPartsMinAgents = 3
	// parallelKernelMinWords is the universe size (in 64-bit words) from
	// which the per-agent passes of the E_G/S_G kernels are sharded across
	// workers, each with its own scratch and accumulator.
	parallelKernelMinWords = 64
	// parallelKernelMinAgents is the minimum group width worth sharding.
	parallelKernelMinAgents = 4
)

// Model is a finite epistemic model. Create one with NewModel (or batch
// construct with a Builder), add facts and indistinguishability edges, then
// evaluate formulas with Eval. Models may be evaluated concurrently once
// fully constructed, but construction is not safe for concurrent use (nor
// concurrent with evaluation).
type Model struct {
	numWorlds int
	numAgents int

	names   []string                       // optional world names; nil if none assigned
	nameIdx atomic.Pointer[map[string]int] // lazy reverse lookup, built on first WorldByName

	// rels holds each agent's indistinguishability relation in whichever
	// form construction produced: DSU (edge accumulation) or dense class
	// ids (bulk installation). The derived partition tables are built
	// lazily per agent and invalidated by construction calls.
	rels []agentRel

	valuation map[string]*bitset.Set

	// inheritedJoint carries joint-view partitions remapped from the model
	// this one was restricted from, keyed like derived.joint. Read-only
	// after construction; jointPartition materializes entries on demand.
	inheritedJoint map[string]pendingPart

	// inheritedReach carries G-reachability partitions remapped from the
	// model this one was restricted from, keyed like derived.reach. Unlike
	// joint views the renamed ids are not exact — restriction can split
	// components — so each entry is a *seed*: the true components refine
	// it, and reachFromSeed rebuilds only the seed components that lost a
	// world. Read-only after construction.
	inheritedReach map[string]reachSeed

	// quotSeed, when non-nil, is a Minimize block map of the model this one
	// was restricted from, renamed over the kept worlds. Minimize uses it
	// to re-refine incrementally (minimizeSeeded) instead of refining from
	// the trivial partition. Read-only after construction.
	quotSeed *quotientSeed

	// derived caches the partition tables; buildMu serializes their
	// (re)construction so concurrent evaluators build them once.
	derived atomic.Pointer[derived]
	buildMu sync.Mutex

	// evalPool recycles evaluators (scratch sets, memo tables, kernel
	// state) across Eval calls.
	evalPool sync.Pool

	// Temporal, if non-nil, evaluates the run-based operators of Sections
	// 11–12 (E^ε, E^⋄, E^T and their C variants) and the linear-time ◇/□.
	// Plain Kripke models reject those operators.
	Temporal TemporalSemantics
}

// agentRel is one agent's indistinguishability relation during
// construction. At most one of the two forms is authoritative: dsu when
// edges are being accumulated, ids (dense class ids, n classes) when a
// whole partition was installed at once. Both nil means the discrete
// partition (every world distinguishable — the NewModel default).
type agentRel struct {
	dsu *unionfind.DSU
	ids []int32
	n   int
}

// pendingPart is a partition delivered as raw dense class ids, CSR tables
// not yet built (they are built only if the partition is actually used).
type pendingPart struct {
	ids []int32
	n   int
}

// quotientSeed is a Minimize block map renamed over the kept worlds of a
// restriction. dirty, when non-nil, records per seed block whether the
// restriction disturbed its modal environment — some world of one of its
// members' view classes was removed — and is only computed when the caller
// declared the seed exact (RestrictOptions.SeedBlocksExact): minimizeSeeded
// then narrows its compose pass to the disturbed region, and may skip it
// entirely when nothing was disturbed.
type quotientSeed struct {
	ids   []int32
	n     int
	dirty []bool
}

// reachSeed is a pre-announcement reachability partition renamed over the
// kept worlds. Removing worlds can only disconnect, never connect, so the
// true components of the restricted model refine the seed exactly within
// its classes; touched[c] records whether seed component c lost a world
// anywhere along the restriction chain (only those need rebuilding).
type reachSeed struct {
	ids     []int32
	n       int
	touched []bool
}

// derived holds everything computed from the construction-time relations:
// the per-agent view partitions (built lazily, one atomic slot each), plus
// memoized per-group partitions for the D_G common refinement and the C_G
// reachability components.
type derived struct {
	parts     []atomic.Pointer[partition] // per-agent view partitions, lazy
	allAgents []int                       // 0..numAgents-1, the resolution of the nil group

	mu    sync.RWMutex
	reach map[string]*partition // group key -> G-reachability components
	joint map[string]*partition // group key -> common refinement of views

	// In-flight build registries: per-group single-flight, so concurrent
	// cold evaluators (an EvalBatch fan-out with no warm-up) build each
	// group partition exactly once and the rest wait for the result.
	reachFlight map[string]*partFlight
	jointFlight map[string]*partFlight
}

// partFlight is one in-flight group-partition build: waiters block on done
// and read p afterwards (p is written before done is closed).
type partFlight struct {
	done chan struct{}
	p    *partition
}

// TemporalSemantics evaluates temporal operators over a model whose worlds
// carry run/time structure. rec evaluates subformulas in the same model
// (with the current fixed-point environment in scope).
type TemporalSemantics interface {
	EvalTemporal(m *Model, f logic.Formula, rec func(sub logic.Formula) (*bitset.Set, error)) (*bitset.Set, error)
}

// NewModel returns a model with numWorlds worlds and numAgents agents in
// which every pair of distinct worlds is distinguishable by every agent and
// no ground facts hold.
func NewModel(numWorlds, numAgents int) *Model {
	return &Model{
		numWorlds: numWorlds,
		numAgents: numAgents,
		rels:      make([]agentRel, numAgents),
		valuation: make(map[string]*bitset.Set),
	}
}

// NumWorlds returns the number of worlds in the model.
func (m *Model) NumWorlds() int { return m.numWorlds }

// NumAgents returns the number of agents in the model.
func (m *Model) NumAgents() int { return m.numAgents }

// ensureNames allocates the name column on first use.
func (m *Model) ensureNames() {
	if m.names == nil {
		m.names = make([]string, m.numWorlds)
	}
}

// SetName assigns a name to a world (for display and lookup).
func (m *Model) SetName(w int, name string) {
	m.ensureNames()
	m.names[w] = name
	if idx := m.nameIdx.Load(); idx != nil {
		(*idx)[name] = w
	}
}

// Name returns the name of world w, or "w<index>" if unnamed.
func (m *Model) Name(w int) string {
	if w >= 0 && w < len(m.names) && m.names[w] != "" {
		return m.names[w]
	}
	return fmt.Sprintf("w%d", w)
}

// WorldByName returns the index of the world with the given name. The
// reverse index is built lazily on first lookup, so models that are
// constructed, restricted and discarded without ever resolving a name (the
// inner models of an announcement chain) skip the map entirely.
func (m *Model) WorldByName(name string) (int, bool) {
	idx := m.nameIdx.Load()
	if idx == nil {
		m.buildMu.Lock()
		if idx = m.nameIdx.Load(); idx == nil {
			mp := make(map[string]int, len(m.names))
			for w, nm := range m.names {
				if nm != "" {
					mp[nm] = w
				}
			}
			idx = &mp
			m.nameIdx.Store(idx)
		}
		m.buildMu.Unlock()
	}
	w, ok := (*idx)[name]
	return w, ok
}

// SetTrue makes the ground fact prop true at world w.
func (m *Model) SetTrue(w int, prop string) {
	s, ok := m.valuation[prop]
	if !ok {
		s = bitset.New(m.numWorlds)
		m.valuation[prop] = s
	}
	s.Add(w)
}

// SetFact sets the truth value of prop at w explicitly.
func (m *Model) SetFact(w int, prop string, value bool) {
	if value {
		m.SetTrue(w, prop)
		return
	}
	if s, ok := m.valuation[prop]; ok {
		s.Remove(w)
	}
}

// setFactSet installs a whole valuation column at once (internal bulk
// constructor used by the Builder, Restrict and RefineAgent).
func (m *Model) setFactSet(prop string, set *bitset.Set) {
	m.valuation[prop] = set
}

// factShared returns the internal world set of prop (nil if the fact is
// unknown). The evaluator reads it without copying; callers must not
// mutate it.
func (m *Model) factShared(prop string) *bitset.Set {
	return m.valuation[prop]
}

// FactSet returns the set of worlds where prop holds. Unknown facts hold
// nowhere. The returned set is a copy.
func (m *Model) FactSet(prop string) *bitset.Set {
	if s, ok := m.valuation[prop]; ok {
		return s.Clone()
	}
	return bitset.New(m.numWorlds)
}

// Facts returns the names of all ground facts with a valuation entry, in
// sorted order (so reports built from it are deterministic).
func (m *Model) Facts() []string {
	out := make([]string, 0, len(m.valuation))
	for name := range m.valuation {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Indistinguishable declares that agent a cannot distinguish worlds w1 and
// w2 (they are joined by an edge labeled p_a in the Section 6 graph). The
// relation is closed under reflexivity, symmetry and transitivity
// automatically, as required for view-based (S5) interpretations.
func (m *Model) Indistinguishable(a int, w1, w2 int) {
	r := &m.rels[a]
	if r.dsu == nil {
		if r.ids != nil {
			r.dsu = unionfind.NewFromIDs(r.ids, r.n)
			r.ids, r.n = nil, 0
		} else {
			r.dsu = unionfind.New(m.numWorlds)
		}
	}
	if r.dsu.Union(w1, w2) {
		m.invalidateDerived()
	}
}

// invalidateDerived drops every table derived from the relations: the
// partition-table cache and any state inherited from a restriction —
// joint-view partitions, reachability seeds and the quotient seed all
// describe the pre-mutation relations.
func (m *Model) invalidateDerived() {
	if m.derived.Load() != nil {
		m.derived.Store(nil)
	}
	m.inheritedJoint = nil
	m.inheritedReach = nil
	m.quotSeed = nil
}

// setPartition installs agent a's whole view partition as dense class ids
// (the columnar counterpart of an Indistinguishable edge list). It takes
// ownership of ids.
func (m *Model) setPartition(a int, ids []int32, numClasses int) {
	m.rels[a] = agentRel{ids: ids, n: numClasses}
	m.invalidateDerived()
}

// SameClass reports whether agent a has the same view at w1 and w2.
func (m *Model) SameClass(a int, w1, w2 int) bool {
	r := &m.rels[a]
	switch {
	case r.dsu != nil:
		return r.dsu.Same(w1, w2)
	case r.ids != nil:
		return r.ids[w1] == r.ids[w2]
	default:
		return w1 == w2
	}
}

// tables returns the derived-table shell, creating it on first use. The
// per-agent partitions inside it are built lazily by part/ensureParts, so
// touching the shell (every getEvaluator does) costs a few small
// allocations once per construction, not a full table build.
func (m *Model) tables() *derived {
	if t := m.derived.Load(); t != nil {
		return t
	}
	m.buildMu.Lock()
	defer m.buildMu.Unlock()
	if t := m.derived.Load(); t != nil {
		return t
	}
	t := &derived{
		parts:     make([]atomic.Pointer[partition], m.numAgents),
		allAgents: make([]int, m.numAgents),
		reach:     make(map[string]*partition),
		joint:     make(map[string]*partition),
	}
	for i := range t.allAgents {
		t.allAgents[i] = i
	}
	m.derived.Store(t)
	return t
}

// buildPart materializes agent a's partition table from whichever relation
// form construction left behind.
func (m *Model) buildPart(a int) *partition {
	r := &m.rels[a]
	switch {
	case r.dsu != nil:
		ids := make([]int32, m.numWorlds)
		n := r.dsu.CompIDsInto(ids, nil)
		return newPartition(ids, n)
	case r.ids != nil:
		// The id vector is never mutated in place (conversions replace it),
		// so the partition may alias it.
		return newPartition(r.ids, r.n)
	default:
		ids := make([]int32, m.numWorlds)
		for w := range ids {
			ids[w] = int32(w)
		}
		return newPartition(ids, m.numWorlds)
	}
}

// part returns agent a's partition table, building it on first use. The
// loaded-table fast path is kept inlinable; the build takes partSlow.
func (m *Model) part(t *derived, a int) *partition {
	if p := t.parts[a].Load(); p != nil {
		return p
	}
	return m.partSlow(t, a)
}

func (m *Model) partSlow(t *derived, a int) *partition {
	m.buildMu.Lock()
	defer m.buildMu.Unlock()
	if p := t.parts[a].Load(); p != nil {
		return p
	}
	p := m.buildPart(a)
	t.parts[a].Store(p)
	return p
}

// ensureParts makes sure every listed agent's partition table exists,
// sharding the builds across goroutines when the model is large enough for
// the table construction itself to dominate (each build owns its scratch,
// so workers share nothing but the atomic result slots).
func (m *Model) ensureParts(t *derived, agents []int) {
	missing := 0
	for _, a := range agents {
		if t.parts[a].Load() == nil {
			missing++
		}
	}
	if missing == 0 {
		return
	}
	m.buildMu.Lock()
	defer m.buildMu.Unlock()
	var todo []int
	for _, a := range agents {
		if t.parts[a].Load() == nil {
			dup := false
			for _, b := range todo {
				if b == a {
					dup = true
					break
				}
			}
			if !dup {
				todo = append(todo, a)
			}
		}
	}
	if len(todo) == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(todo) {
		workers = len(todo)
	}
	if len(todo) < parallelPartsMinAgents || m.numWorlds < parallelPartsMinWorlds || workers < 2 {
		for _, a := range todo {
			t.parts[a].Store(m.buildPart(a))
		}
		return
	}
	var wg sync.WaitGroup
	for off := 0; off < workers; off++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := off; i < len(todo); i += workers {
				a := todo[i]
				t.parts[a].Store(m.buildPart(a))
			}
		}(off)
	}
	wg.Wait()
}

// PrepareAgents materializes the partition tables of the given group (nil
// means all agents) ahead of evaluation, sharding the builds across
// goroutines on large models. It is optional — evaluation builds tables
// lazily — but a caller about to run a per-agent loop of single-agent
// evaluations (which would otherwise build one table at a time) can
// front-load the construction in parallel.
func (m *Model) PrepareAgents(g logic.Group) error {
	agents, err := m.resolveGroup(g)
	if err != nil {
		return err
	}
	m.ensureParts(m.tables(), agents)
	return nil
}

// ClassID returns agent a's dense view-class id of world w.
func (m *Model) ClassID(a, w int) int {
	return int(m.part(m.tables(), a).ids[w])
}

// groupKey appends the canonical cache key of a resolved agent list: "*"
// for exactly the full agent set 0..numAgents-1, the comma-joined indices
// otherwise (agent lists with duplicates keep their literal key, which at
// worst caches an equal partition twice).
func (m *Model) groupKey(dst []byte, agents []int) []byte {
	if len(agents) == m.numAgents {
		full := true
		for i, a := range agents {
			if a != i {
				full = false
				break
			}
		}
		if full {
			return append(dst, '*')
		}
	}
	for i, a := range agents {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(a), 10)
	}
	return dst
}

// reachPartition returns the partition of the worlds into G-reachability
// components (Section 6: the transitive closure of the union of the G view
// partitions), memoized per agent group. C_G evaluation — including every
// iteration of a fixed point — reuses it instead of rebuilding a
// union-find per call.
//
// Unlike joint-view partitions, renamed reachability components are not
// exact after a restriction (two kept worlds may be connected only through
// removed worlds, so restricted components can be strictly finer). Restrict
// therefore carries them as *seeds*: components can only split within old
// components, so the rebuild is component-local — seed components that lost
// no world keep their id wholesale, and only the touched ones re-run a
// union-find over their own worlds (reachFromSeed). Without a seed the
// components are built from scratch over the whole model.
func (m *Model) reachPartition(t *derived, agents []int, keyBuf []byte) *partition {
	key := m.groupKey(keyBuf[:0], agents)
	// Warm fast path, kept free of the single-flight closure: fixed-point
	// iteration re-reads the memoized partition once per step.
	t.mu.RLock()
	p := t.reach[string(key)]
	t.mu.RUnlock()
	if p != nil {
		return p
	}
	return singleFlight(t, key, t.reach, &t.reachFlight, func() *partition {
		if seed, ok := m.inheritedReach[string(key)]; ok {
			return m.reachFromSeed(t, agents, seed)
		}
		return m.reachScratch(t, agents)
	})
}

// singleFlight resolves one group partition through its memo map with an
// in-flight registry: the first caller for a key builds (outside the lock),
// later callers for the same key wait on the build instead of duplicating
// it. cache and the flight registry are guarded by t.mu; callers check the
// cache's read fast path themselves before paying for the build closure.
// A panicking build unregisters its flight and wakes the waiters with a
// nil result, so they retry (one of them re-runs the build and surfaces
// the panic) instead of blocking forever on a wedged key.
func singleFlight(t *derived, key []byte, cache map[string]*partition, flights *map[string]*partFlight, build func() *partition) *partition {
	for {
		t.mu.Lock()
		if p := cache[string(key)]; p != nil {
			t.mu.Unlock()
			return p
		}
		if fl := (*flights)[string(key)]; fl != nil {
			t.mu.Unlock()
			<-fl.done
			if fl.p != nil {
				return fl.p
			}
			continue // the builder panicked; retry (and maybe rebuild)
		}
		fl := &partFlight{done: make(chan struct{})}
		if *flights == nil {
			*flights = make(map[string]*partFlight)
		}
		(*flights)[string(key)] = fl
		t.mu.Unlock()

		var p *partition
		func() {
			defer func() {
				t.mu.Lock()
				if p != nil {
					cache[string(key)] = p
				}
				delete(*flights, string(key))
				t.mu.Unlock()
				fl.p = p
				close(fl.done)
			}()
			p = build()
		}()
		return p
	}
}

// reachScratch builds the G-reachability components with one union-find
// pass over every agent's whole partition.
func (m *Model) reachScratch(t *derived, agents []int) *partition {
	m.ensureParts(t, agents)
	d := unionfind.New(m.numWorlds)
	var first []int32
	for _, a := range agents {
		part := t.parts[a].Load()
		if cap(first) < part.n {
			first = make([]int32, part.n)
		} else {
			first = first[:part.n]
		}
		for i := range first {
			first[i] = -1
		}
		for w, id := range part.ids {
			if first[id] < 0 {
				first[id] = int32(w)
			} else {
				d.Union(int(first[id]), w)
			}
		}
	}
	ids := make([]int32, m.numWorlds)
	n := d.CompIDsInto(ids, nil)
	return newPartition(ids, n)
}

// reachFromSeed rebuilds the G-reachability components from an inherited
// seed, component-locally: worlds are bucketed by seed component, untouched
// components keep a single fresh id with no union-find work at all, and
// each touched component runs a seeded union-find over only its own worlds
// (classes never cross components, so the locality is exact). Cost is
// O(worlds) for the bucketing plus O(|component| · |agents|) per touched
// component, instead of O(worlds · |agents|) from scratch.
func (m *Model) reachFromSeed(t *derived, agents []int, seed reachSeed) *partition {
	// A single touched component (the degenerate fully-connected case, as
	// in the muddy models) has nothing to skip, so the bucketing overhead
	// is not worth paying.
	if seed.n <= 1 && (seed.n == 0 || seed.touched[0]) {
		return m.reachScratch(t, agents)
	}
	m.ensureParts(t, agents)
	W := m.numWorlds
	// Bucket worlds by seed component (counting sort; seed ids are dense).
	off := make([]int32, seed.n+1)
	for _, id := range seed.ids {
		off[id+1]++
	}
	for c := 0; c < seed.n; c++ {
		off[c+1] += off[c]
	}
	members := make([]int32, W)
	cur := append([]int32(nil), off[:seed.n]...)
	for w, id := range seed.ids {
		members[cur[id]] = int32(w)
		cur[id]++
	}
	ids := make([]int32, W)
	next := int32(0)
	// Scratch for the touched components, allocated on first need: a
	// reusable local DSU, epoch-stamped first-member-per-class tables, and
	// epoch-stamped root→id tables for the dense renumbering.
	var (
		d              *unionfind.DSU
		stamp, firstAt []int32
		classEpoch     int32
		rootID         []int32
		rootStamp      []int32
		rootEpoch      int32
	)
	for c := 0; c < seed.n; c++ {
		ms := members[off[c]:off[c+1]]
		if !seed.touched[c] {
			// The component lost no world anywhere along the chain: its
			// classes are intact, so it is still one connected component.
			for _, w := range ms {
				ids[w] = next
			}
			next++
			continue
		}
		if d == nil {
			d = unionfind.New(len(ms))
			maxClasses := 0
			for _, a := range agents {
				if p := t.parts[a].Load(); p.n > maxClasses {
					maxClasses = p.n
				}
			}
			stamp = make([]int32, maxClasses)
			firstAt = make([]int32, maxClasses)
			rootID = make([]int32, W)
			rootStamp = make([]int32, W)
		} else {
			d.Reset(len(ms))
		}
		// Seeded union-find over only this component's worlds, indexed by
		// their position in ms.
		for _, a := range agents {
			part := t.parts[a].Load()
			classEpoch++
			for i, w := range ms {
				cls := part.ids[w]
				if stamp[cls] != classEpoch {
					stamp[cls] = classEpoch
					firstAt[cls] = int32(i)
				} else {
					d.Union(int(firstAt[cls]), i)
				}
			}
		}
		rootEpoch++
		for i, w := range ms {
			r := d.Find(i)
			if rootStamp[r] != rootEpoch {
				rootStamp[r] = rootEpoch
				rootID[r] = next
				next++
			}
			ids[w] = rootID[r]
		}
	}
	return newPartition(ids, int(next))
}

// jointPartition returns the common refinement of the agents' view
// partitions (the joint view underlying D_G), memoized per agent group. A
// partition inherited from the model this one was restricted from (common
// refinement commutes with restriction, so the remapped ids are exact) is
// materialized in preference to recomputing the refinement. Callers must
// pass a non-empty agent list.
func (m *Model) jointPartition(t *derived, agents []int, keyBuf []byte) *partition {
	key := m.groupKey(keyBuf[:0], agents)
	t.mu.RLock()
	p := t.joint[string(key)]
	t.mu.RUnlock()
	if p != nil {
		return p
	}
	return singleFlight(t, key, t.joint, &t.jointFlight, func() *partition {
		if pp, ok := m.inheritedJoint[string(key)]; ok {
			return newPartition(pp.ids, pp.n)
		}
		m.ensureParts(t, agents)
		ids := make([]int32, m.numWorlds)
		p0 := t.parts[agents[0]].Load()
		copy(ids, p0.ids)
		n := p0.n
		pair := make(map[uint64]int32)
		for _, a := range agents[1:] {
			clear(pair)
			other := t.parts[a].Load().ids
			next := int32(0)
			for w := 0; w < m.numWorlds; w++ {
				k := uint64(ids[w])<<32 | uint64(uint32(other[w]))
				id, ok := pair[k]
				if !ok {
					id = next
					next++
					pair[k] = id
				}
				ids[w] = id
			}
			n = int(next)
		}
		return newPartition(ids, n)
	})
}

// everyoneInto computes E_G(phi) = ∧_a K_a(phi) into dst (overwritten).
// Wide groups on large universes shard the per-agent kernel passes across
// workers, each with its own accumulator and scratch; the results meet in
// one word-level AND reduction.
func (m *Model) everyoneInto(t *derived, agents []int, dst, phi *bitset.Set, ks *kernelScratch) {
	dst.Fill()
	if m.kernelParallel(agents) {
		m.parallelKnow(t, agents, dst, phi, true)
		return
	}
	for _, a := range agents {
		m.part(t, a).andKnowInto(dst, phi, ks)
	}
}

// kernelParallel reports whether the per-agent passes of a group kernel
// are worth sharding for this model and group.
func (m *Model) kernelParallel(agents []int) bool {
	return len(agents) >= parallelKernelMinAgents &&
		(m.numWorlds+63)>>6 >= parallelKernelMinWords &&
		runtime.GOMAXPROCS(0) > 1
}

// parallelKnow shards the per-agent K passes of E_G (conj=true) or S_G
// (conj=false) across workers. dst must be pre-filled (E) or pre-cleared
// (S); each worker owns a private accumulator and kernel scratch, and the
// per-worker results are folded into dst with word-level AND/OR.
func (m *Model) parallelKnow(t *derived, agents []int, dst, phi *bitset.Set, conj bool) {
	m.ensureParts(t, agents)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(agents) {
		workers = len(agents)
	}
	results := make([]*bitset.Set, workers)
	var wg sync.WaitGroup
	for off := 0; off < workers; off++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			var ks kernelScratch
			acc := bitset.New(m.numWorlds)
			if conj {
				acc.Fill()
				for i := off; i < len(agents); i += workers {
					t.parts[agents[i]].Load().andKnowInto(acc, phi, &ks)
				}
			} else {
				tmp := bitset.New(m.numWorlds)
				for i := off; i < len(agents); i += workers {
					t.parts[agents[i]].Load().knowInto(tmp, phi, &ks)
					acc.Or(tmp)
				}
			}
			results[off] = acc
		}(off)
	}
	wg.Wait()
	for _, acc := range results {
		if conj {
			dst.And(acc)
		} else {
			dst.Or(acc)
		}
	}
}

// KnowSet computes K_a applied to an already-evaluated world set phi: the
// worlds whose whole partition class for agent a lies inside phi. It is the
// set-level form of the K_a operator, used by the temporal semantics of the
// runs package.
func (m *Model) KnowSet(a int, phi *bitset.Set) *bitset.Set {
	ev := m.getEvaluator()
	defer m.putEvaluator(ev)
	out := bitset.New(m.numWorlds)
	m.part(ev.t, a).knowInto(out, phi, &ev.ks)
	return out
}

// GroupAgents expands a (possibly nil) group into explicit agent indices.
func (m *Model) GroupAgents(g logic.Group) ([]int, error) {
	return m.resolveGroup(g)
}

// EveryoneSet computes E_G applied to an already-evaluated world set.
func (m *Model) EveryoneSet(agents []int, phi *bitset.Set) *bitset.Set {
	ev := m.getEvaluator()
	defer m.putEvaluator(ev)
	out := bitset.New(m.numWorlds)
	m.everyoneInto(ev.t, agents, out, phi, &ev.ks)
	return out
}

// CommonSet computes C_G applied to an already-evaluated world set: the
// worlds whose whole G-reachability component satisfies phi.
func (m *Model) CommonSet(agents []int, phi *bitset.Set) *bitset.Set {
	if len(agents) == 0 {
		return phi.Clone()
	}
	ev := m.getEvaluator()
	defer m.putEvaluator(ev)
	out := bitset.New(m.numWorlds)
	p := m.reachPartition(ev.t, agents, ev.keyScratch())
	p.knowInto(out, phi, &ev.ks)
	return out
}

// DistSet computes D_G applied to an already-evaluated world set:
// knowledge under the joint view, i.e. the common refinement of the
// agents' partitions.
func (m *Model) DistSet(agents []int, phi *bitset.Set) *bitset.Set {
	if len(agents) == 0 {
		return phi.Clone()
	}
	ev := m.getEvaluator()
	defer m.putEvaluator(ev)
	out := bitset.New(m.numWorlds)
	p := m.jointPartition(ev.t, agents, ev.keyScratch())
	p.knowInto(out, phi, &ev.ks)
	return out
}

// GReachIDs returns dense component ids for the G-reachability relation of
// Section 6 (the transitive closure of the union of the G partitions). Two
// worlds are G-reachable from one another iff they share an id. The
// returned slice is a fresh copy.
func (m *Model) GReachIDs(g logic.Group) ([]int, error) {
	agents, err := m.resolveGroup(g)
	if err != nil {
		return nil, err
	}
	var p *partition
	if len(agents) == 0 {
		// No agents: nothing is reachable from anywhere but itself.
		ids := make([]int, m.numWorlds)
		for w := range ids {
			ids[w] = w
		}
		return ids, nil
	}
	ev := m.getEvaluator()
	p = m.reachPartition(ev.t, agents, ev.keyScratch())
	m.putEvaluator(ev)
	out := make([]int, m.numWorlds)
	for w, id := range p.ids {
		out[w] = int(id)
	}
	return out, nil
}

// relIDs returns agent a's class ids and class count in whatever form is
// cheapest: the installed id vector, an already-built partition table, or
// a fresh component labeling of the DSU — never a full table build, since
// callers (Restrict, RefineAgent) need only the ids. Discrete relations
// return (nil, 0) and must be special-cased by the caller.
func (m *Model) relIDs(a int) ([]int32, int) {
	r := &m.rels[a]
	switch {
	case r.ids != nil:
		return r.ids, r.n
	case r.dsu != nil:
		if t := m.derived.Load(); t != nil {
			if p := t.parts[a].Load(); p != nil {
				return p.ids, p.n
			}
		}
		ids := make([]int32, m.numWorlds)
		n := r.dsu.CompIDsInto(ids, nil)
		return ids, n
	default:
		return nil, 0
	}
}

// RefineAgent returns a new model, over the same worlds, in which agent a's
// partition is refined by membership in phi: two worlds remain
// indistinguishable to a only if they were before and phi agrees on them.
// This models a private announcement of φ to agent a — the father taking
// one child aside in Section 3: the child learns whether φ, while the other
// children's knowledge (and the group's common knowledge) is unchanged.
func (m *Model) RefineAgent(a int, phi *bitset.Set) *Model {
	out := NewModel(m.numWorlds, m.numAgents)
	if m.names != nil {
		out.names = append([]string(nil), m.names...)
	}
	for prop, set := range m.valuation {
		out.setFactSet(prop, set.Clone())
	}
	for b := 0; b < m.numAgents; b++ {
		src, n := m.relIDs(b)
		if src == nil {
			continue // discrete stays discrete, refined or not
		}
		if b != a {
			out.rels[b] = agentRel{ids: append([]int32(nil), src...), n: n}
			continue
		}
		// Split agent a's classes by phi: renumber (class, φ-bit) pairs.
		mark := make([]int32, 2*n)
		for i := range mark {
			mark[i] = -1
		}
		ids := make([]int32, m.numWorlds)
		next := int32(0)
		for w := 0; w < m.numWorlds; w++ {
			k := 2 * src[w]
			if phi.Contains(w) {
				k++
			}
			if mark[k] < 0 {
				mark[k] = next
				next++
			}
			ids[w] = mark[k]
		}
		out.rels[a] = agentRel{ids: ids, n: int(next)}
	}
	return out
}

// restrictScratch is the reusable working state of Restrict: the kept-world
// list and the class-renaming mark table. Pooled so announcement chains
// (muddy rounds, attack message chains) recycle one scratch instead of
// reallocating per update.
type restrictScratch struct {
	old  []int
	mark []int32
}

var restrictPool = sync.Pool{New: func() any { return new(restrictScratch) }}

// renumber writes into dst the dense renaming of src's ids gathered over
// the kept worlds, using mark (len >= n, reset here) as scratch, and
// returns the number of surviving classes.
func renumber(dst []int32, src []int32, old []int, mark []int32) int32 {
	for i := range mark {
		mark[i] = -1
	}
	next := int32(0)
	for i, w := range old {
		id := src[w]
		if mark[id] < 0 {
			mark[id] = next
			next++
		}
		dst[i] = mark[id]
	}
	return next
}

// RestrictOptions selects which derived state Restrict threads into the
// submodel. The zero value is the fully from-scratch restriction (nothing
// inherited — the ablation baseline); DefaultRestrictOptions (what Restrict
// uses) inherits everything that is sound to inherit.
type RestrictOptions struct {
	// InheritJoint remaps memoized joint-view partitions into the submodel.
	// Common refinement commutes with restriction, so the renamed ids are
	// exact.
	InheritJoint bool
	// InheritReach carries memoized G-reachability partitions into the
	// submodel as re-refinement seeds: components only split under
	// restriction, so the submodel rebuilds them component-locally
	// (untouched components are free) instead of from scratch.
	InheritReach bool
	// SeedBlocks, when non-nil, must be a Minimize block map of the model
	// being restricted (or a chain-composed one); its renaming over the
	// kept worlds seeds the submodel's next Minimize, which then re-refines
	// from the old blocks instead of the trivial partition. Any partition
	// of the worlds yields a correct (exact) Minimize; seeds far from the
	// true quotient merely refine longer.
	SeedBlocks []int
	// SeedBlocksExact declares that SeedBlocks is exactly this model's own
	// coarsest quotient — a fresh Minimize block map, not a chain-composed
	// or arbitrary partition. It lets the restriction record which seed
	// blocks the announcement disturbed (touched-block tracking), so the
	// submodel's Minimize can bound its merge-finding compose pass to the
	// disturbed region instead of re-minimizing the whole quotient. With an
	// inexact seed the flags would be unsound; leave it false and Minimize
	// stays exact via the full compose pass.
	SeedBlocksExact bool
}

// DefaultRestrictOptions inherits joint views and reachability seeds — the
// options plain Restrict uses.
func DefaultRestrictOptions() RestrictOptions {
	return RestrictOptions{InheritJoint: true, InheritReach: true}
}

// Restrict returns the submodel induced by the given world set (a public
// announcement of "the actual world is in keep"). World w of the new model
// is the i-th element of keep in increasing order. Ground facts and
// indistinguishability are inherited: valuation columns are compacted with
// the word-level gather kernel, per-agent partitions are renamed in one
// pass per agent (sharded across goroutines on large wide models), any
// memoized joint-view partitions are remapped into the new model —
// restriction commutes with common refinement, so an announcement chain
// inherits its D_G structure instead of recomputing it — and memoized
// reachability components are carried as seeds for the component-local
// rebuild on the submodel's first C_G use. The Temporal hook is not
// carried over, since run/time structure generally does not survive
// restriction.
func (m *Model) Restrict(keep *bitset.Set) *Model {
	return m.RestrictOpts(keep, DefaultRestrictOptions())
}

// RestrictWithQuotient is Restrict threading a Minimize block map of this
// model through the announcement: the submodel's next Minimize (and hence
// QuotientForEval) re-refines from the renamed old blocks instead of the
// trivial partition, which is what makes quotient-before-eval pay inside a
// round loop rather than only for one-shot batches. blocks must be this
// model's own Minimize block map (one entry per world); passing an
// arbitrary or chain-composed partition instead requires RestrictOpts with
// SeedBlocksExact left false. The exactness lets the restriction track
// which blocks the announcement disturbed, bounding the submodel's
// Minimize to the disturbed region.
func (m *Model) RestrictWithQuotient(keep *bitset.Set, blocks []int) *Model {
	opts := DefaultRestrictOptions()
	opts.SeedBlocks = blocks
	opts.SeedBlocksExact = true
	return m.RestrictOpts(keep, opts)
}

// RestrictOpts is Restrict with explicit control over the inherited state;
// see RestrictOptions.
func (m *Model) RestrictOpts(keep *bitset.Set, opts RestrictOptions) *Model {
	scr := restrictPool.Get().(*restrictScratch)
	old := scr.old[:0]
	keep.ForEach(func(w int) bool {
		old = append(old, w)
		return true
	})
	scr.old = old
	k := len(old)
	sub := NewModel(k, m.numAgents)

	if m.names != nil {
		sub.names = make([]string, k)
		for i, w := range old {
			sub.names[i] = m.names[w]
		}
	}

	for prop, set := range m.valuation {
		if !set.Intersects(keep) {
			continue
		}
		col := bitset.New(k)
		bitset.Gather(col, set, keep)
		sub.setFactSet(prop, col)
	}

	// Rename each agent's class ids over the surviving worlds and install
	// the resulting partitions directly — no pairwise unions needed. Wide
	// large models shard the per-agent renaming across workers, each with
	// its own mark table.
	if m.numAgents >= parallelPartsMinAgents && k >= parallelPartsMinWorlds && runtime.GOMAXPROCS(0) > 1 {
		m.restrictRelsParallel(sub, old)
	} else {
		for a := 0; a < m.numAgents; a++ {
			src, n := m.relIDs(a)
			if src == nil {
				continue // discrete restricts to discrete
			}
			if cap(scr.mark) < n {
				scr.mark = make([]int32, n)
			}
			subIDs := make([]int32, k)
			next := renumber(subIDs, src, old, scr.mark[:n])
			sub.rels[a] = agentRel{ids: subIDs, n: int(next)}
		}
	}

	if opts.InheritJoint {
		m.inheritJointInto(sub, old, scr)
	}
	if opts.InheritReach {
		m.inheritReachInto(sub, old, scr)
	}
	if opts.SeedBlocks != nil {
		m.seedQuotientInto(sub, old, opts.SeedBlocks, opts.SeedBlocksExact)
	}
	restrictPool.Put(scr)
	return sub
}

// restrictRelsParallel is the sharded form of the per-agent renaming pass
// of Restrict: agents are striped across workers, one mark table each.
func (m *Model) restrictRelsParallel(sub *Model, old []int) {
	// Resolve id sources serially: relIDs may lazily build partition
	// tables, which takes the model build lock.
	srcs := make([][]int32, m.numAgents)
	ns := make([]int, m.numAgents)
	for a := 0; a < m.numAgents; a++ {
		srcs[a], ns[a] = m.relIDs(a)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m.numAgents {
		workers = m.numAgents
	}
	var wg sync.WaitGroup
	for off := 0; off < workers; off++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			var mark []int32
			for a := off; a < m.numAgents; a += workers {
				src, n := srcs[a], ns[a]
				if src == nil {
					continue
				}
				if cap(mark) < n {
					mark = make([]int32, n)
				}
				subIDs := make([]int32, len(old))
				next := renumber(subIDs, src, old, mark[:n])
				sub.rels[a] = agentRel{ids: subIDs, n: int(next)}
			}
		}(off)
	}
	wg.Wait()
}

// inheritJointInto remaps every memoized (or still-pending) joint-view
// partition of m onto the restricted model: common refinement commutes
// with restriction, so renaming the class ids over the kept worlds is
// exact. The remapped ids stay pending on the submodel — CSR tables are
// built only if D_G is actually evaluated there.
func (m *Model) inheritJointInto(sub *Model, old []int, scr *restrictScratch) {
	remap := func(key string, ids []int32, n int) {
		if _, ok := sub.inheritedJoint[key]; ok {
			return
		}
		if cap(scr.mark) < n {
			scr.mark = make([]int32, n)
		}
		subIDs := make([]int32, len(old))
		next := renumber(subIDs, ids, old, scr.mark[:n])
		if sub.inheritedJoint == nil {
			sub.inheritedJoint = make(map[string]pendingPart)
		}
		sub.inheritedJoint[key] = pendingPart{ids: subIDs, n: int(next)}
	}
	if t := m.derived.Load(); t != nil {
		t.mu.RLock()
		for key, p := range t.joint {
			remap(key, p.ids, p.n)
		}
		t.mu.RUnlock()
	}
	for key, pp := range m.inheritedJoint {
		remap(key, pp.ids, pp.n)
	}
}

// inheritReachInto carries every memoized (or still-pending) reachability
// partition of m onto the restricted model as a seed: the class ids are
// renamed over the kept worlds, and a seed component is flagged touched
// when it lost a world in this restriction (or already was touched earlier
// in the chain without having been rebuilt since). Materialized entries of
// m are exact components and take precedence over m's own pending seeds
// for the same group.
func (m *Model) inheritReachInto(sub *Model, old []int, scr *restrictScratch) {
	remap := func(key string, ids []int32, n int, oldTouched []bool) {
		if _, ok := sub.inheritedReach[key]; ok {
			return
		}
		if cap(scr.mark) < n {
			scr.mark = make([]int32, n)
		}
		mark := scr.mark[:n]
		subIDs := make([]int32, len(old))
		next := renumber(subIDs, ids, old, mark)
		// A component is touched iff it kept fewer worlds than it had (or
		// carried a touched flag from an earlier, never-rebuilt remap).
		oldCount := make([]int32, n)
		for _, id := range ids {
			oldCount[id]++
		}
		keptCount := make([]int32, next)
		for _, id := range subIDs {
			keptCount[id]++
		}
		touched := make([]bool, next)
		for oldID := 0; oldID < n; oldID++ {
			newID := mark[oldID]
			if newID < 0 {
				continue // component eliminated entirely
			}
			touched[newID] = keptCount[newID] != oldCount[oldID] ||
				(oldTouched != nil && oldTouched[oldID])
		}
		if sub.inheritedReach == nil {
			sub.inheritedReach = make(map[string]reachSeed)
		}
		sub.inheritedReach[key] = reachSeed{ids: subIDs, n: int(next), touched: touched}
	}
	if t := m.derived.Load(); t != nil {
		t.mu.RLock()
		for key, p := range t.reach {
			remap(key, p.ids, p.n, nil)
		}
		t.mu.RUnlock()
	}
	for key, rs := range m.inheritedReach {
		remap(key, rs.ids, rs.n, rs.touched)
	}
}

// seedQuotientInto renames a Minimize block map of m over the kept worlds
// and installs it as the submodel's quotient seed. When the caller declared
// the seed exact, it additionally records which surviving seed blocks the
// restriction disturbed: a block is dirty iff some view class of one of its
// kept members lost a world. An undisturbed block's members keep exactly
// the modal environment they had, which is what lets minimizeSeeded skip
// them when hunting for announcement-induced merges.
func (m *Model) seedQuotientInto(sub *Model, old []int, blocks []int, exact bool) {
	if len(blocks) != m.numWorlds {
		panic(fmt.Sprintf("kripke: RestrictWithQuotient got a block map of %d entries for %d worlds",
			len(blocks), m.numWorlds))
	}
	// The Minimize contract makes block ids dense in [0, numWorlds), so a
	// mark table sized by the world count always fits.
	mark := make([]int32, m.numWorlds)
	for i := range mark {
		mark[i] = -1
	}
	subIDs := make([]int32, len(old))
	next := int32(0)
	for i, w := range old {
		b := blocks[w]
		if mark[b] < 0 {
			mark[b] = next
			next++
		}
		subIDs[i] = mark[b]
	}
	var dirty []bool
	if exact {
		dirty = make([]bool, next)
		kept := make([]bool, m.numWorlds)
		for _, w := range old {
			kept[w] = true
		}
		var lost []bool
		for a := 0; a < m.numAgents; a++ {
			ids, n := m.relIDs(a)
			if ids == nil {
				// Discrete relation: a removed world's singleton class
				// contains no kept world, so nothing is disturbed.
				continue
			}
			if cap(lost) < n {
				lost = make([]bool, n)
			} else {
				lost = lost[:n]
				clear(lost)
			}
			for w, id := range ids {
				if !kept[w] {
					lost[id] = true
				}
			}
			for i, w := range old {
				if lost[ids[w]] {
					dirty[subIDs[i]] = true
				}
			}
		}
	}
	sub.quotSeed = &quotientSeed{ids: subIDs, n: int(next), dirty: dirty}
}
