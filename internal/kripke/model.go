// Package kripke implements finite epistemic Kripke models and the model
// checking of the knowledge hierarchy of Halpern & Moses Section 3.
//
// A model is a finite set of worlds, one indistinguishability partition per
// agent, and a valuation of ground facts. This is exactly the graph of
// Section 6 of the paper: worlds are nodes, and two worlds share an edge
// labeled p_i iff agent i has the same view in both. Knowledge operators are
// computed from the partitions:
//
//   - K_i φ holds at w iff φ holds throughout agent i's partition class of w.
//   - D_G φ uses the common refinement (joint views) of the G partitions.
//   - C_G φ holds at w iff φ holds throughout the G-reachability component
//     of w — the connected component of w under the union of the G
//     partitions — which the package computes with a disjoint-set union.
//
// The package also provides public-announcement updates (the father's
// announcement in the muddy children puzzle is Announce) and validity
// checking used by the axiom checkers in axioms.go.
package kripke

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/logic"
	"repro/internal/unionfind"
)

// Model is a finite epistemic model. Create one with NewModel, add facts and
// indistinguishability edges, then evaluate formulas with Eval. Models may
// be evaluated concurrently once fully constructed, but construction is not
// safe for concurrent use.
type Model struct {
	numWorlds int
	numAgents int

	names   []string       // optional world names, "" if unnamed
	nameIdx map[string]int // reverse lookup for named worlds

	// dsu[a] accumulates agent a's indistinguishability relation during
	// construction; class tables are derived lazily and invalidated by
	// Indistinguishable.
	dsu     []*unionfind.DSU
	classes [][]int // classes[a][w] = dense class id of w for agent a
	nclass  []int   // number of classes per agent

	valuation map[string]*bitset.Set

	// Temporal, if non-nil, evaluates the run-based operators of Sections
	// 11–12 (E^ε, E^⋄, E^T and their C variants) and the linear-time ◇/□.
	// Plain Kripke models reject those operators.
	Temporal TemporalSemantics
}

// TemporalSemantics evaluates temporal operators over a model whose worlds
// carry run/time structure. rec evaluates subformulas in the same model
// (with the current fixed-point environment in scope).
type TemporalSemantics interface {
	EvalTemporal(m *Model, f logic.Formula, rec func(sub logic.Formula) (*bitset.Set, error)) (*bitset.Set, error)
}

// NewModel returns a model with numWorlds worlds and numAgents agents in
// which every pair of distinct worlds is distinguishable by every agent and
// no ground facts hold.
func NewModel(numWorlds, numAgents int) *Model {
	m := &Model{
		numWorlds: numWorlds,
		numAgents: numAgents,
		names:     make([]string, numWorlds),
		nameIdx:   make(map[string]int),
		dsu:       make([]*unionfind.DSU, numAgents),
		valuation: make(map[string]*bitset.Set),
	}
	for a := range m.dsu {
		m.dsu[a] = unionfind.New(numWorlds)
	}
	return m
}

// NumWorlds returns the number of worlds in the model.
func (m *Model) NumWorlds() int { return m.numWorlds }

// NumAgents returns the number of agents in the model.
func (m *Model) NumAgents() int { return m.numAgents }

// SetName assigns a name to a world (for display and lookup).
func (m *Model) SetName(w int, name string) {
	m.names[w] = name
	m.nameIdx[name] = w
}

// Name returns the name of world w, or "w<index>" if unnamed.
func (m *Model) Name(w int) string {
	if w >= 0 && w < m.numWorlds && m.names[w] != "" {
		return m.names[w]
	}
	return fmt.Sprintf("w%d", w)
}

// WorldByName returns the index of the world with the given name.
func (m *Model) WorldByName(name string) (int, bool) {
	w, ok := m.nameIdx[name]
	return w, ok
}

// SetTrue makes the ground fact prop true at world w.
func (m *Model) SetTrue(w int, prop string) {
	s, ok := m.valuation[prop]
	if !ok {
		s = bitset.New(m.numWorlds)
		m.valuation[prop] = s
	}
	s.Add(w)
}

// SetFact sets the truth value of prop at w explicitly.
func (m *Model) SetFact(w int, prop string, value bool) {
	if value {
		m.SetTrue(w, prop)
		return
	}
	if s, ok := m.valuation[prop]; ok {
		s.Remove(w)
	}
}

// FactSet returns the set of worlds where prop holds. Unknown facts hold
// nowhere. The returned set is a copy.
func (m *Model) FactSet(prop string) *bitset.Set {
	if s, ok := m.valuation[prop]; ok {
		return s.Clone()
	}
	return bitset.New(m.numWorlds)
}

// Facts returns the names of all ground facts with a valuation entry.
func (m *Model) Facts() []string {
	out := make([]string, 0, len(m.valuation))
	for name := range m.valuation {
		out = append(out, name)
	}
	return out
}

// Indistinguishable declares that agent a cannot distinguish worlds w1 and
// w2 (they are joined by an edge labeled p_a in the Section 6 graph). The
// relation is closed under reflexivity, symmetry and transitivity
// automatically, as required for view-based (S5) interpretations.
func (m *Model) Indistinguishable(a int, w1, w2 int) {
	m.dsu[a].Union(w1, w2)
	m.classes = nil // invalidate derived tables
}

// SameClass reports whether agent a has the same view at w1 and w2.
func (m *Model) SameClass(a int, w1, w2 int) bool {
	return m.dsu[a].Same(w1, w2)
}

// ensureClasses materializes the dense class-id tables.
func (m *Model) ensureClasses() {
	if m.classes != nil {
		return
	}
	m.classes = make([][]int, m.numAgents)
	m.nclass = make([]int, m.numAgents)
	for a := 0; a < m.numAgents; a++ {
		ids := m.dsu[a].CompIDs()
		m.classes[a] = ids
		m.nclass[a] = m.dsu[a].Components()
	}
}

// ClassID returns agent a's dense view-class id of world w.
func (m *Model) ClassID(a, w int) int {
	m.ensureClasses()
	return m.classes[a][w]
}

// KnowSet computes K_a applied to an already-evaluated world set phi: the
// worlds whose whole partition class for agent a lies inside phi. It is the
// set-level form of the K_a operator, used by the temporal semantics of the
// runs package.
func (m *Model) KnowSet(a int, phi *bitset.Set) *bitset.Set {
	return m.knowSet(a, phi)
}

// GroupAgents expands a (possibly nil) group into explicit agent indices.
func (m *Model) GroupAgents(g logic.Group) ([]int, error) {
	return m.resolveGroup(g)
}

// EveryoneSet computes E_G applied to an already-evaluated world set.
func (m *Model) EveryoneSet(agents []int, phi *bitset.Set) *bitset.Set {
	out := bitset.NewFull(m.numWorlds)
	for _, a := range agents {
		out.And(m.knowSet(a, phi))
	}
	return out
}

// CommonSet computes C_G applied to an already-evaluated world set.
func (m *Model) CommonSet(agents []int, phi *bitset.Set) *bitset.Set {
	return m.commonSet(agents, phi)
}

// GReachIDs returns dense component ids for the G-reachability relation of
// Section 6 (the transitive closure of the union of the G partitions). Two
// worlds are G-reachable from one another iff they share an id.
func (m *Model) GReachIDs(g logic.Group) ([]int, error) {
	agents, err := m.resolveGroup(g)
	if err != nil {
		return nil, err
	}
	return m.reachIDs(agents), nil
}

// knowSet computes K_a applied to the world set phi: the worlds whose whole
// partition class for agent a lies inside phi.
func (m *Model) knowSet(a int, phi *bitset.Set) *bitset.Set {
	m.ensureClasses()
	ids := m.classes[a]
	allTrue := make([]bool, m.nclass[a])
	for i := range allTrue {
		allTrue[i] = true
	}
	for w := 0; w < m.numWorlds; w++ {
		if !phi.Contains(w) {
			allTrue[ids[w]] = false
		}
	}
	out := bitset.New(m.numWorlds)
	for w := 0; w < m.numWorlds; w++ {
		if allTrue[ids[w]] {
			out.Add(w)
		}
	}
	return out
}

// distSet computes D_G: knowledge under the joint view, i.e. the common
// refinement of the agents' partitions.
func (m *Model) distSet(agents []int, phi *bitset.Set) *bitset.Set {
	m.ensureClasses()
	if len(agents) == 0 {
		return phi.Clone()
	}
	ids := make([]int, m.numWorlds)
	copy(ids, m.classes[agents[0]])
	n := m.nclass[agents[0]]
	for _, a := range agents[1:] {
		pair := make(map[[2]int]int, n)
		next := make([]int, m.numWorlds)
		for w := 0; w < m.numWorlds; w++ {
			key := [2]int{ids[w], m.classes[a][w]}
			id, ok := pair[key]
			if !ok {
				id = len(pair)
				pair[key] = id
			}
			next[w] = id
		}
		ids = next
		n = len(pair)
	}
	allTrue := make([]bool, n)
	for i := range allTrue {
		allTrue[i] = true
	}
	for w := 0; w < m.numWorlds; w++ {
		if !phi.Contains(w) {
			allTrue[ids[w]] = false
		}
	}
	out := bitset.New(m.numWorlds)
	for w := 0; w < m.numWorlds; w++ {
		if allTrue[ids[w]] {
			out.Add(w)
		}
	}
	return out
}

// reachIDs returns dense component ids of the union of the G partitions:
// the G-reachability components of Section 6.
func (m *Model) reachIDs(agents []int) []int {
	m.ensureClasses()
	d := unionfind.New(m.numWorlds)
	for _, a := range agents {
		// Union each world with a representative of its class.
		rep := make(map[int]int, m.nclass[a])
		for w := 0; w < m.numWorlds; w++ {
			id := m.classes[a][w]
			if r, ok := rep[id]; ok {
				d.Union(r, w)
			} else {
				rep[id] = w
			}
		}
	}
	return d.CompIDs()
}

// commonSet computes C_G applied to phi: worlds whose whole G-reachability
// component satisfies phi.
func (m *Model) commonSet(agents []int, phi *bitset.Set) *bitset.Set {
	if len(agents) == 0 {
		return phi.Clone()
	}
	ids := m.reachIDs(agents)
	max := 0
	for _, id := range ids {
		if id > max {
			max = id
		}
	}
	allTrue := make([]bool, max+1)
	for i := range allTrue {
		allTrue[i] = true
	}
	for w := 0; w < m.numWorlds; w++ {
		if !phi.Contains(w) {
			allTrue[ids[w]] = false
		}
	}
	out := bitset.New(m.numWorlds)
	for w := 0; w < m.numWorlds; w++ {
		if allTrue[ids[w]] {
			out.Add(w)
		}
	}
	return out
}

// RefineAgent returns a new model, over the same worlds, in which agent a's
// partition is refined by membership in phi: two worlds remain
// indistinguishable to a only if they were before and phi agrees on them.
// This models a private announcement of φ to agent a — the father taking
// one child aside in Section 3: the child learns whether φ, while the other
// children's knowledge (and the group's common knowledge) is unchanged.
func (m *Model) RefineAgent(a int, phi *bitset.Set) *Model {
	out := NewModel(m.numWorlds, m.numAgents)
	for w := 0; w < m.numWorlds; w++ {
		if m.names[w] != "" {
			out.SetName(w, m.names[w])
		}
	}
	for prop, set := range m.valuation {
		set.ForEach(func(w int) bool {
			out.SetTrue(w, prop)
			return true
		})
	}
	for b := 0; b < m.numAgents; b++ {
		for _, group := range m.dsu[b].Groups() {
			if b != a {
				for i := 1; i < len(group); i++ {
					out.Indistinguishable(b, group[0], group[i])
				}
				continue
			}
			// Split the class by phi.
			var in, outOf []int
			for _, w := range group {
				if phi.Contains(w) {
					in = append(in, w)
				} else {
					outOf = append(outOf, w)
				}
			}
			for i := 1; i < len(in); i++ {
				out.Indistinguishable(a, in[0], in[i])
			}
			for i := 1; i < len(outOf); i++ {
				out.Indistinguishable(a, outOf[0], outOf[i])
			}
		}
	}
	return out
}

// Restrict returns the submodel induced by the given world set (a public
// announcement of "the actual world is in keep"). World w of the new model
// is the i-th element of keep in increasing order. Ground facts and
// indistinguishability are inherited. The Temporal hook is not carried over,
// since run/time structure generally does not survive restriction.
func (m *Model) Restrict(keep *bitset.Set) *Model {
	old := keep.Elements()
	sub := NewModel(len(old), m.numAgents)
	newIdx := make(map[int]int, len(old))
	for i, w := range old {
		newIdx[w] = i
		if m.names[w] != "" {
			sub.SetName(i, m.names[w])
		}
	}
	for prop, set := range m.valuation {
		set.ForEach(func(w int) bool {
			if i, ok := newIdx[w]; ok {
				sub.SetTrue(i, prop)
			}
			return true
		})
	}
	m.ensureClasses()
	for a := 0; a < m.numAgents; a++ {
		// Union surviving worlds that shared a class.
		rep := make(map[int]int)
		for _, w := range old {
			id := m.classes[a][w]
			if r, ok := rep[id]; ok {
				sub.Indistinguishable(a, newIdx[r], newIdx[w])
			} else {
				rep[id] = w
			}
		}
	}
	return sub
}
