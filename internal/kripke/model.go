// Package kripke implements finite epistemic Kripke models and the model
// checking of the knowledge hierarchy of Halpern & Moses Section 3.
//
// A model is a finite set of worlds, one indistinguishability partition per
// agent, and a valuation of ground facts. This is exactly the graph of
// Section 6 of the paper: worlds are nodes, and two worlds share an edge
// labeled p_i iff agent i has the same view in both. Knowledge operators are
// computed from the partitions:
//
//   - K_i φ holds at w iff φ holds throughout agent i's partition class of w.
//   - D_G φ uses the common refinement (joint views) of the G partitions.
//   - C_G φ holds at w iff φ holds throughout the G-reachability component
//     of w — the connected component of w under the union of the G
//     partitions — which the package computes with a disjoint-set union.
//
// The package also provides public-announcement updates (the father's
// announcement in the muddy children puzzle is Announce) and validity
// checking used by the axiom checkers in axioms.go.
//
// # Evaluation architecture: masks and caches
//
// Formula denotations are bit sets over the worlds, and every knowledge
// operator reduces to one kernel over a partition of the worlds (the
// agent's view classes for K_i, their common refinement for D_G, the
// G-reachability components for C_G). Each partition is materialized once
// as per-class bitset masks in CSR layout (see partition.go) and the
// kernel works on whole 64-bit words: classes that escape φ are found by
// scanning only ¬φ, and are removed from the full set by word-level
// AND-NOT of their masks.
//
// The derived tables are built lazily and cached on the model behind an
// atomic pointer: the per-agent partitions on first use, and one partition
// per distinct agent group for D_G refinements and C_G reachability
// components (so fixed-point iteration re-uses the component structure
// instead of rebuilding a union-find per step). Construction calls
// (Indistinguishable) invalidate the tables. Evaluation itself runs on a
// pooled evaluator that memoizes closed subformula denotations by
// structural key and recycles scratch sets, making steady-state Eval
// near-allocation-free. All caches are safe for concurrent Eval on a fully
// constructed model.
package kripke

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/logic"
	"repro/internal/unionfind"
)

// Model is a finite epistemic model. Create one with NewModel, add facts and
// indistinguishability edges, then evaluate formulas with Eval. Models may
// be evaluated concurrently once fully constructed, but construction is not
// safe for concurrent use (nor concurrent with evaluation).
type Model struct {
	numWorlds int
	numAgents int

	names   []string       // optional world names, "" if unnamed
	nameIdx map[string]int // reverse lookup for named worlds

	// dsu[a] accumulates agent a's indistinguishability relation during
	// construction; the derived partition tables are built lazily and
	// invalidated by Indistinguishable.
	dsu []*unionfind.DSU

	valuation map[string]*bitset.Set

	// derived caches the partition tables; buildMu serializes their
	// (re)construction so concurrent evaluators build them once.
	derived atomic.Pointer[derived]
	buildMu sync.Mutex

	// evalPool recycles evaluators (scratch sets, memo tables, kernel
	// state) across Eval calls.
	evalPool sync.Pool

	// Temporal, if non-nil, evaluates the run-based operators of Sections
	// 11–12 (E^ε, E^⋄, E^T and their C variants) and the linear-time ◇/□.
	// Plain Kripke models reject those operators.
	Temporal TemporalSemantics
}

// derived holds everything computed from the construction-time DSUs: the
// per-agent view partitions, plus memoized per-group partitions for the
// D_G common refinement and the C_G reachability components.
type derived struct {
	parts     []*partition // per-agent view partitions
	allAgents []int        // 0..numAgents-1, the resolution of the nil group

	mu    sync.RWMutex
	reach map[string]*partition // group key -> G-reachability components
	joint map[string]*partition // group key -> common refinement of views
}

// TemporalSemantics evaluates temporal operators over a model whose worlds
// carry run/time structure. rec evaluates subformulas in the same model
// (with the current fixed-point environment in scope).
type TemporalSemantics interface {
	EvalTemporal(m *Model, f logic.Formula, rec func(sub logic.Formula) (*bitset.Set, error)) (*bitset.Set, error)
}

// NewModel returns a model with numWorlds worlds and numAgents agents in
// which every pair of distinct worlds is distinguishable by every agent and
// no ground facts hold.
func NewModel(numWorlds, numAgents int) *Model {
	m := &Model{
		numWorlds: numWorlds,
		numAgents: numAgents,
		names:     make([]string, numWorlds),
		nameIdx:   make(map[string]int),
		dsu:       make([]*unionfind.DSU, numAgents),
		valuation: make(map[string]*bitset.Set),
	}
	for a := range m.dsu {
		m.dsu[a] = unionfind.New(numWorlds)
	}
	return m
}

// NumWorlds returns the number of worlds in the model.
func (m *Model) NumWorlds() int { return m.numWorlds }

// NumAgents returns the number of agents in the model.
func (m *Model) NumAgents() int { return m.numAgents }

// SetName assigns a name to a world (for display and lookup).
func (m *Model) SetName(w int, name string) {
	m.names[w] = name
	m.nameIdx[name] = w
}

// Name returns the name of world w, or "w<index>" if unnamed.
func (m *Model) Name(w int) string {
	if w >= 0 && w < m.numWorlds && m.names[w] != "" {
		return m.names[w]
	}
	return fmt.Sprintf("w%d", w)
}

// WorldByName returns the index of the world with the given name.
func (m *Model) WorldByName(name string) (int, bool) {
	w, ok := m.nameIdx[name]
	return w, ok
}

// SetTrue makes the ground fact prop true at world w.
func (m *Model) SetTrue(w int, prop string) {
	s, ok := m.valuation[prop]
	if !ok {
		s = bitset.New(m.numWorlds)
		m.valuation[prop] = s
	}
	s.Add(w)
}

// SetFact sets the truth value of prop at w explicitly.
func (m *Model) SetFact(w int, prop string, value bool) {
	if value {
		m.SetTrue(w, prop)
		return
	}
	if s, ok := m.valuation[prop]; ok {
		s.Remove(w)
	}
}

// setFactSet installs a whole valuation column at once (internal bulk
// constructor used by Restrict and RefineAgent).
func (m *Model) setFactSet(prop string, set *bitset.Set) {
	m.valuation[prop] = set
}

// factShared returns the internal world set of prop (nil if the fact is
// unknown). The evaluator reads it without copying; callers must not
// mutate it.
func (m *Model) factShared(prop string) *bitset.Set {
	return m.valuation[prop]
}

// FactSet returns the set of worlds where prop holds. Unknown facts hold
// nowhere. The returned set is a copy.
func (m *Model) FactSet(prop string) *bitset.Set {
	if s, ok := m.valuation[prop]; ok {
		return s.Clone()
	}
	return bitset.New(m.numWorlds)
}

// Facts returns the names of all ground facts with a valuation entry, in
// sorted order (so reports built from it are deterministic).
func (m *Model) Facts() []string {
	out := make([]string, 0, len(m.valuation))
	for name := range m.valuation {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Indistinguishable declares that agent a cannot distinguish worlds w1 and
// w2 (they are joined by an edge labeled p_a in the Section 6 graph). The
// relation is closed under reflexivity, symmetry and transitivity
// automatically, as required for view-based (S5) interpretations.
func (m *Model) Indistinguishable(a int, w1, w2 int) {
	if m.dsu[a].Union(w1, w2) && m.derived.Load() != nil {
		m.derived.Store(nil) // invalidate derived tables
	}
}

// SameClass reports whether agent a has the same view at w1 and w2.
func (m *Model) SameClass(a int, w1, w2 int) bool {
	return m.dsu[a].Same(w1, w2)
}

// tables returns the derived partition tables, building them on first use.
// The double-checked build keeps concurrent evaluators safe and makes the
// tables a once-per-construction cost.
func (m *Model) tables() *derived {
	if t := m.derived.Load(); t != nil {
		return t
	}
	m.buildMu.Lock()
	defer m.buildMu.Unlock()
	if t := m.derived.Load(); t != nil {
		return t
	}
	t := &derived{
		parts:     make([]*partition, m.numAgents),
		allAgents: make([]int, m.numAgents),
		reach:     make(map[string]*partition),
		joint:     make(map[string]*partition),
	}
	for i := range t.allAgents {
		t.allAgents[i] = i
	}
	mark := make([]int32, m.numWorlds)
	for a := 0; a < m.numAgents; a++ {
		ids := make([]int32, m.numWorlds)
		n := m.dsu[a].CompIDsInto(ids, mark)
		t.parts[a] = newPartition(ids, n)
	}
	m.derived.Store(t)
	return t
}

// ClassID returns agent a's dense view-class id of world w.
func (m *Model) ClassID(a, w int) int {
	return int(m.tables().parts[a].ids[w])
}

// groupKey appends the canonical cache key of a resolved agent list: "*"
// for exactly the full agent set 0..numAgents-1, the comma-joined indices
// otherwise (agent lists with duplicates keep their literal key, which at
// worst caches an equal partition twice).
func (m *Model) groupKey(dst []byte, agents []int) []byte {
	if len(agents) == m.numAgents {
		full := true
		for i, a := range agents {
			if a != i {
				full = false
				break
			}
		}
		if full {
			return append(dst, '*')
		}
	}
	for i, a := range agents {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(a), 10)
	}
	return dst
}

// reachPartition returns the partition of the worlds into G-reachability
// components (Section 6: the transitive closure of the union of the G view
// partitions), memoized per agent group. C_G evaluation — including every
// iteration of a fixed point — reuses it instead of rebuilding a
// union-find per call.
func (m *Model) reachPartition(t *derived, agents []int, keyBuf []byte) *partition {
	key := m.groupKey(keyBuf[:0], agents)
	t.mu.RLock()
	p := t.reach[string(key)]
	t.mu.RUnlock()
	if p != nil {
		return p
	}
	d := unionfind.New(m.numWorlds)
	for _, a := range agents {
		part := t.parts[a]
		first := make([]int32, part.n)
		for i := range first {
			first[i] = -1
		}
		for w, id := range part.ids {
			if first[id] < 0 {
				first[id] = int32(w)
			} else {
				d.Union(int(first[id]), w)
			}
		}
	}
	ids := make([]int32, m.numWorlds)
	n := d.CompIDsInto(ids, nil)
	p = newPartition(ids, n)
	t.mu.Lock()
	if q := t.reach[string(key)]; q != nil {
		p = q // another evaluator won the race; keep one copy
	} else {
		t.reach[string(key)] = p
	}
	t.mu.Unlock()
	return p
}

// jointPartition returns the common refinement of the agents' view
// partitions (the joint view underlying D_G), memoized per agent group.
// Callers must pass a non-empty agent list.
func (m *Model) jointPartition(t *derived, agents []int, keyBuf []byte) *partition {
	key := m.groupKey(keyBuf[:0], agents)
	t.mu.RLock()
	p := t.joint[string(key)]
	t.mu.RUnlock()
	if p != nil {
		return p
	}
	ids := make([]int32, m.numWorlds)
	copy(ids, t.parts[agents[0]].ids)
	n := t.parts[agents[0]].n
	pair := make(map[uint64]int32)
	for _, a := range agents[1:] {
		clear(pair)
		other := t.parts[a].ids
		next := int32(0)
		for w := 0; w < m.numWorlds; w++ {
			k := uint64(ids[w])<<32 | uint64(uint32(other[w]))
			id, ok := pair[k]
			if !ok {
				id = next
				next++
				pair[k] = id
			}
			ids[w] = id
		}
		n = int(next)
	}
	p = newPartition(ids, n)
	t.mu.Lock()
	if q := t.joint[string(key)]; q != nil {
		p = q
	} else {
		t.joint[string(key)] = p
	}
	t.mu.Unlock()
	return p
}

// KnowSet computes K_a applied to an already-evaluated world set phi: the
// worlds whose whole partition class for agent a lies inside phi. It is the
// set-level form of the K_a operator, used by the temporal semantics of the
// runs package.
func (m *Model) KnowSet(a int, phi *bitset.Set) *bitset.Set {
	ev := m.getEvaluator()
	defer m.putEvaluator(ev)
	out := bitset.New(m.numWorlds)
	m.tables().parts[a].knowInto(out, phi, &ev.ks)
	return out
}

// GroupAgents expands a (possibly nil) group into explicit agent indices.
func (m *Model) GroupAgents(g logic.Group) ([]int, error) {
	return m.resolveGroup(g)
}

// EveryoneSet computes E_G applied to an already-evaluated world set.
func (m *Model) EveryoneSet(agents []int, phi *bitset.Set) *bitset.Set {
	ev := m.getEvaluator()
	defer m.putEvaluator(ev)
	out := bitset.NewFull(m.numWorlds)
	t := m.tables()
	for _, a := range agents {
		t.parts[a].andKnowInto(out, phi, &ev.ks)
	}
	return out
}

// CommonSet computes C_G applied to an already-evaluated world set: the
// worlds whose whole G-reachability component satisfies phi.
func (m *Model) CommonSet(agents []int, phi *bitset.Set) *bitset.Set {
	if len(agents) == 0 {
		return phi.Clone()
	}
	ev := m.getEvaluator()
	defer m.putEvaluator(ev)
	out := bitset.New(m.numWorlds)
	p := m.reachPartition(m.tables(), agents, ev.keyScratch())
	p.knowInto(out, phi, &ev.ks)
	return out
}

// DistSet computes D_G applied to an already-evaluated world set:
// knowledge under the joint view, i.e. the common refinement of the
// agents' partitions.
func (m *Model) DistSet(agents []int, phi *bitset.Set) *bitset.Set {
	if len(agents) == 0 {
		return phi.Clone()
	}
	ev := m.getEvaluator()
	defer m.putEvaluator(ev)
	out := bitset.New(m.numWorlds)
	p := m.jointPartition(m.tables(), agents, ev.keyScratch())
	p.knowInto(out, phi, &ev.ks)
	return out
}

// GReachIDs returns dense component ids for the G-reachability relation of
// Section 6 (the transitive closure of the union of the G partitions). Two
// worlds are G-reachable from one another iff they share an id. The
// returned slice is a fresh copy.
func (m *Model) GReachIDs(g logic.Group) ([]int, error) {
	agents, err := m.resolveGroup(g)
	if err != nil {
		return nil, err
	}
	var p *partition
	if len(agents) == 0 {
		// No agents: nothing is reachable from anywhere but itself.
		ids := make([]int, m.numWorlds)
		for w := range ids {
			ids[w] = w
		}
		return ids, nil
	}
	ev := m.getEvaluator()
	p = m.reachPartition(m.tables(), agents, ev.keyScratch())
	m.putEvaluator(ev)
	out := make([]int, m.numWorlds)
	for w, id := range p.ids {
		out[w] = int(id)
	}
	return out, nil
}

// RefineAgent returns a new model, over the same worlds, in which agent a's
// partition is refined by membership in phi: two worlds remain
// indistinguishable to a only if they were before and phi agrees on them.
// This models a private announcement of φ to agent a — the father taking
// one child aside in Section 3: the child learns whether φ, while the other
// children's knowledge (and the group's common knowledge) is unchanged.
func (m *Model) RefineAgent(a int, phi *bitset.Set) *Model {
	out := NewModel(m.numWorlds, m.numAgents)
	for w := 0; w < m.numWorlds; w++ {
		if m.names[w] != "" {
			out.SetName(w, m.names[w])
		}
	}
	for prop, set := range m.valuation {
		out.setFactSet(prop, set.Clone())
	}
	for b := 0; b < m.numAgents; b++ {
		for _, group := range m.dsu[b].Groups() {
			if b != a {
				for i := 1; i < len(group); i++ {
					out.Indistinguishable(b, group[0], group[i])
				}
				continue
			}
			// Split the class by phi.
			var in, outOf []int
			for _, w := range group {
				if phi.Contains(w) {
					in = append(in, w)
				} else {
					outOf = append(outOf, w)
				}
			}
			for i := 1; i < len(in); i++ {
				out.Indistinguishable(a, in[0], in[i])
			}
			for i := 1; i < len(outOf); i++ {
				out.Indistinguishable(a, outOf[0], outOf[i])
			}
		}
	}
	return out
}

// Restrict returns the submodel induced by the given world set (a public
// announcement of "the actual world is in keep"). World w of the new model
// is the i-th element of keep in increasing order. Ground facts and
// indistinguishability are inherited. The Temporal hook is not carried over,
// since run/time structure generally does not survive restriction.
func (m *Model) Restrict(keep *bitset.Set) *Model {
	old := keep.Elements()
	sub := NewModel(len(old), m.numAgents)
	newIdx := make([]int32, m.numWorlds)
	for i := range newIdx {
		newIdx[i] = -1
	}
	for i, w := range old {
		newIdx[w] = int32(i)
		if m.names[w] != "" {
			sub.SetName(i, m.names[w])
		}
	}
	for prop, set := range m.valuation {
		if !set.Intersects(keep) {
			continue
		}
		col := bitset.New(len(old))
		set.ForEach(func(w int) bool {
			if i := newIdx[w]; i >= 0 {
				col.Add(int(i))
			}
			return true
		})
		sub.setFactSet(prop, col)
	}
	t := m.tables()
	subIDs := make([]int32, len(old))
	var mark []int32
	for a := 0; a < m.numAgents; a++ {
		// Renumber the old classes over the surviving worlds and install
		// the resulting partition directly — no pairwise unions needed.
		part := t.parts[a]
		if cap(mark) < part.n {
			mark = make([]int32, part.n)
		} else {
			mark = mark[:part.n]
		}
		for i := range mark {
			mark[i] = -1
		}
		next := int32(0)
		for i, w := range old {
			id := part.ids[w]
			if mark[id] < 0 {
				mark[id] = next
				next++
			}
			subIDs[i] = mark[id]
		}
		sub.dsu[a] = unionfind.NewFromIDs(subIDs, int(next))
	}
	return sub
}
