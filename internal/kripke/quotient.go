package kripke

import (
	"context"

	"repro/internal/bitset"
	"repro/internal/logic"
)

// Quotient-before-eval: "Common knowledge revisited" observes that whether
// common knowledge is attained depends on the granularity of the model —
// and so does the cost of checking it. Point models built from run systems
// are full of epistemically identical worlds (silent run tails, permuted
// histories); evaluating a batch of formulas is then cheaper on the
// bisimulation quotient, which satisfies exactly the same formulas at the
// image worlds. Quotiented packages that heuristic: minimize once, evaluate
// every formula of the batch on the quotient, and map each verdict back
// through the block map of Minimize.

// QuotientMinWorlds is the default size threshold of QuotientForEval: below
// it the one-off Minimize pass costs more than it could save, so the
// original model is evaluated directly.
const QuotientMinWorlds = 256

// quotientKeepRatio is the shrinkage a quotient must achieve to be worth
// indirecting through: quotients above this fraction of the original size
// (e.g. the muddy-children models, whose worlds all differ in facts) are
// discarded and the original model evaluated directly.
const quotientKeepRatio = 0.75

// Quotiented evaluates formulas on the bisimulation quotient of a model
// while reporting verdicts in terms of the original worlds. Build one with
// QuotientForEval; it is safe for concurrent use once built, like the
// models it wraps.
type Quotiented struct {
	orig  *Model
	quot  *Model // model formulas evaluate on; == orig when quotienting was skipped
	block []int  // Minimize block map; nil when quotienting was skipped
}

// QuotientForEval returns a batch-evaluation view of the model that
// evaluates on the bisimulation quotient when that is worthwhile:
// the model must have at least minWorlds worlds (<= 0 means the
// QuotientMinWorlds default), no temporal structure (run-based operators do
// not survive minimization), and the quotient must actually shrink the
// model (see quotientKeepRatio). Otherwise the view transparently evaluates
// the original model — callers never need to distinguish the two cases.
func (m *Model) QuotientForEval(minWorlds int) *Quotiented {
	if minWorlds <= 0 {
		minWorlds = QuotientMinWorlds
	}
	if m.Temporal != nil || m.numWorlds < minWorlds {
		return &Quotiented{orig: m, quot: m}
	}
	q, block := m.Minimize()
	if float64(q.NumWorlds()) > quotientKeepRatio*float64(m.numWorlds) {
		return &Quotiented{orig: m, quot: m}
	}
	return &Quotiented{orig: m, quot: q, block: block}
}

// QuotientForEvalEpistemic is QuotientForEval for models carrying a
// temporal hook whose formula batch is nonetheless known to be free of the
// run-based operators: the hook is detached (temporal operators error out
// on the view, matching the quotient, instead of silently depending on
// whether the quotient gates fired) and the purely epistemic structure is
// quotiented as usual. The view shares the model's construction data; like
// concurrent Eval, it requires the model to be fully constructed.
func (m *Model) QuotientForEvalEpistemic(minWorlds int) *Quotiented {
	return m.epistemicView().QuotientForEval(minWorlds)
}

// epistemicView returns the model stripped of its temporal hook: a shallow
// model sharing the (immutable once constructed) valuation columns, names,
// relation ids and restriction-inherited seeds, with its own derived-table
// caches.
func (m *Model) epistemicView() *Model {
	if m.Temporal == nil {
		return m
	}
	v := NewModel(m.numWorlds, m.numAgents)
	v.names = m.names
	v.valuation = m.valuation
	v.inheritedJoint = m.inheritedJoint
	v.inheritedReach = m.inheritedReach
	v.quotSeed = m.quotSeed
	for a := 0; a < m.numAgents; a++ {
		ids, n := m.relIDs(a)
		if ids != nil {
			v.rels[a] = agentRel{ids: ids, n: n}
		}
	}
	return v
}

// Quotiented reports whether evaluation actually runs on a quotient (false
// when the size or shrinkage gates kept the original model).
func (q *Quotiented) Quotiented() bool { return q.block != nil }

// Model returns the original model the view wraps.
func (q *Quotiented) Model() *Model { return q.orig }

// Blocks returns the Minimize block map evaluation is routed through, or
// nil when the gates kept the original model. The slice is shared with the
// view; callers must not modify it.
func (q *Quotiented) Blocks() []int { return q.block }

// Restrict applies a public announcement to the view: the original model is
// restricted to keep (a set of original-model worlds), the current block
// map — when there is one — is threaded through the restriction so the
// submodel's quotient re-refines incrementally from the renamed old blocks,
// and a fresh view is built over the submodel with the same gates as
// QuotientForEval. This is the per-round step of an announcement chain:
// each link pays an incremental re-refinement instead of a from-scratch
// Minimize.
func (q *Quotiented) Restrict(keep *bitset.Set, minWorlds int) *Quotiented {
	if q.block == nil {
		return q.orig.Restrict(keep).QuotientForEval(minWorlds)
	}
	return q.orig.RestrictWithQuotient(keep, q.block).QuotientForEval(minWorlds)
}

// NumWorlds returns the world count of the original model.
func (q *Quotiented) NumWorlds() int { return q.orig.numWorlds }

// QuotientWorlds returns the world count of the model evaluation runs on.
func (q *Quotiented) QuotientWorlds() int { return q.quot.numWorlds }

// Eval returns the set of original-model worlds at which f holds: the
// formula is evaluated on the quotient and the verdict expanded back
// through the block map. The returned set is owned by the caller.
func (q *Quotiented) Eval(f logic.Formula) (*bitset.Set, error) {
	qset, err := q.quot.Eval(f)
	if err != nil {
		return nil, err
	}
	if q.block == nil {
		return qset, nil
	}
	return q.expand(qset), nil
}

// expand maps a quotient-world denotation back to original-model worlds
// through the block map.
func (q *Quotiented) expand(qset *bitset.Set) *bitset.Set {
	out := bitset.New(q.orig.numWorlds)
	for w, b := range q.block {
		if qset.Contains(b) {
			out.Add(w)
		}
	}
	return out
}

// EvalBatch evaluates a batch of formulas on the quotient with the
// parallel fan-out of Model.EvalBatch and expands every verdict back
// through the block map. Results are identical, set for set, to calling
// Eval on each formula in order.
func (q *Quotiented) EvalBatch(fs []logic.Formula, opts ...BatchOption) ([]*bitset.Set, error) {
	return q.EvalBatchCtx(context.Background(), fs, opts...)
}

// EvalBatchCtx is EvalBatch with the deadline/cancellation propagation of
// Model.EvalBatchCtx: a cancelled context stops the underlying fan-out
// after at most one in-flight formula per worker, and the block-map
// expansion is skipped entirely.
func (q *Quotiented) EvalBatchCtx(ctx context.Context, fs []logic.Formula, opts ...BatchOption) ([]*bitset.Set, error) {
	qsets, err := q.quot.EvalBatchCtx(ctx, fs, opts...)
	if err != nil {
		return nil, err
	}
	if q.block == nil {
		return qsets, nil
	}
	out := make([]*bitset.Set, len(qsets))
	for i, qs := range qsets {
		out[i] = q.expand(qs)
	}
	return out, nil
}

// Holds reports whether f holds at original-model world w.
func (q *Quotiented) Holds(f logic.Formula, w int) (bool, error) {
	qset, err := q.quot.Eval(f)
	if err != nil {
		return false, err
	}
	if q.block == nil {
		return qset.Contains(w), nil
	}
	return qset.Contains(q.block[w]), nil
}

// Valid reports whether f holds at every world. Bisimilar worlds satisfy
// the same formulas, so validity on the quotient and on the original model
// coincide.
func (q *Quotiented) Valid(f logic.Formula) (bool, error) {
	qset, err := q.quot.Eval(f)
	if err != nil {
		return false, err
	}
	return qset.IsFull(), nil
}
