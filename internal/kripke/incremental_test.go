package kripke

// Property tests for the incremental announcement-chain paths: seeded
// quotient re-refinement (RestrictWithQuotient + minimizeSeeded) and
// component-local reachability rebuilds (inherited reach seeds) must be
// indistinguishable — block map for block map, component for component,
// verdict for verdict — from the from-scratch computations they replace.

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/logic"
)

// randKeep returns a random non-empty subset of [0, n).
func randKeep(rng *rand.Rand, n int) *bitset.Set {
	keep := bitset.New(n)
	for w := 0; w < n; w++ {
		if rng.Intn(3) != 0 {
			keep.Add(w)
		}
	}
	if keep.IsEmpty() {
		keep.Add(rng.Intn(n))
	}
	return keep
}

// canonIDs renumbers arbitrary component ids to dense first-occurrence
// form, so partitions can be compared independently of their numbering.
func canonIDs(ids []int) []int {
	mark := make(map[int]int, len(ids))
	out := make([]int, len(ids))
	next := 0
	for i, id := range ids {
		c, ok := mark[id]
		if !ok {
			c = next
			next++
			mark[id] = c
		}
		out[i] = c
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRestrictWithQuotientMinimizeExact pins the seeded-quotient contract:
// along a random announcement chain, Minimize on a RestrictWithQuotient
// submodel (which re-refines from the renamed pre-announcement blocks)
// must return exactly the same block map and quotient size as Minimize on
// the identical submodel restricted from scratch, and QuotientForEval on
// the seeded model must report the same verdicts.
func TestRestrictWithQuotientMinimizeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 20; trial++ {
		n := 12 + rng.Intn(100)
		numAgents := 1 + rng.Intn(4)
		m := randModel(rng, n, numAgents)
		formulas := propertyFormulas(numAgents)
		_, blocks := m.Minimize()

		inc, scratch := m, m
		for step := 0; step < 3 && inc.NumWorlds() > 2; step++ {
			keep := randKeep(rng, inc.NumWorlds())
			inc = inc.RestrictWithQuotient(keep, blocks)
			scratch = scratch.RestrictOpts(keep, RestrictOptions{})

			if inc.quotSeed == nil {
				t.Fatalf("trial %d step %d: RestrictWithQuotient installed no quotient seed", trial, step)
			}
			qi, bi := inc.Minimize()
			qs, bs := scratch.Minimize()
			if qi.NumWorlds() != qs.NumWorlds() {
				t.Fatalf("trial %d step %d: seeded quotient has %d worlds, from-scratch %d",
					trial, step, qi.NumWorlds(), qs.NumWorlds())
			}
			if !equalInts(bi, bs) {
				t.Fatalf("trial %d step %d: seeded block map diverged:\n  seeded  %v\n  scratch %v",
					trial, step, bi, bs)
			}
			view := inc.QuotientForEval(1)
			for _, f := range formulas {
				got, err := view.Eval(f)
				if err != nil {
					t.Fatalf("trial %d step %d: eval %s on seeded view: %v", trial, step, f, err)
				}
				want, err := scratch.Eval(f)
				if err != nil {
					t.Fatalf("trial %d step %d: eval %s on scratch model: %v", trial, step, f, err)
				}
				if !got.Equal(want) {
					t.Fatalf("trial %d step %d: Eval(%s) seeded view = %s, want %s",
						trial, step, f, got, want)
				}
			}
			blocks = bi
		}
	}
}

// TestMinimizeSeededMergesAcrossSeedBlocks is the deterministic witness
// for the compose pass of minimizeSeeded: restriction does not only split
// blocks — removing the world that distinguished two others merges them —
// and the seeded path must find the merge even though the seed keeps the
// worlds apart. Worlds: a, b, c with p only at c and agent 0 confusing
// {a, c}; a and b are distinguishable (a considers p possible), but after
// announcing ¬p they are bisimilar while the seed still separates them.
func TestMinimizeSeededMergesAcrossSeedBlocks(t *testing.T) {
	m := NewModel(3, 1)
	m.SetTrue(2, "p")
	m.Indistinguishable(0, 0, 2)
	_, blocks := m.Minimize()
	if blocks[0] == blocks[1] {
		t.Fatalf("premise broken: worlds 0 and 1 should be distinguishable before the announcement")
	}
	notP, err := m.Eval(logic.Neg(logic.P("p")))
	if err != nil {
		t.Fatal(err)
	}
	sub := m.RestrictWithQuotient(notP, blocks)
	q, b := sub.Minimize()
	if q.NumWorlds() != 1 || b[0] != 0 || b[1] != 0 {
		t.Fatalf("seeded Minimize missed the announcement-induced merge: %d worlds, block map %v",
			q.NumWorlds(), b)
	}
	qs, bs := sub.RestrictOpts(bitset.NewFull(2), RestrictOptions{}).Minimize()
	if qs.NumWorlds() != q.NumWorlds() || !equalInts(b, bs) {
		t.Fatalf("seeded and from-scratch Minimize disagree: %v vs %v", b, bs)
	}
}

// TestMinimizeSeededArbitrarySeed checks the robustness half of the seed
// contract: any partition of the worlds — not just a renamed block map —
// must still produce exactly the from-scratch quotient, because the seeded
// path splits by facts, refines to stability and composes with a quotient
// -level minimization.
func TestMinimizeSeededArbitrarySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(60)
		numAgents := 1 + rng.Intn(3)
		m := randModel(rng, n, numAgents)
		qs, bs := m.Minimize()

		nSeed := 1 + rng.Intn(n)
		seed := make([]int32, n)
		for w := range seed {
			seed[w] = int32(rng.Intn(nSeed))
		}
		qi, bi := m.minimizeSeeded(seed, nSeed, nil)
		if qi.NumWorlds() != qs.NumWorlds() || !equalInts(bi, bs) {
			t.Fatalf("trial %d: arbitrary seed changed the quotient: %d worlds %v, want %d worlds %v",
				trial, qi.NumWorlds(), bi, qs.NumWorlds(), bs)
		}
	}
}

// reachFormulas are the C_G formulas used to warm and compare the
// reachability caches.
func reachFormulas(numAgents int) []logic.Formula {
	g2 := logic.NewGroup(0, logic.Agent(numAgents-1))
	return []logic.Formula{
		logic.C(nil, logic.P("p")),
		logic.C(g2, logic.Disj(logic.P("p"), logic.P("q"))),
	}
}

// TestInheritedReachAgreesWithScratch pins the component-local rebuild:
// along a random restriction chain with warmed reach caches, C_G verdicts
// and G-reachability components on the default (seed-inheriting) Restrict
// must agree exactly with a chain restricted from scratch, for both the
// full group and a proper subgroup.
func TestInheritedReachAgreesWithScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for trial := 0; trial < 20; trial++ {
		n := 12 + rng.Intn(100)
		numAgents := 2 + rng.Intn(3)
		m := randModel(rng, n, numAgents)
		formulas := reachFormulas(numAgents)
		groups := []logic.Group{nil, logic.NewGroup(0, logic.Agent(numAgents-1))}

		inc, scratch := m, m
		for step := 0; step < 3 && inc.NumWorlds() > 2; step++ {
			// Warm the reach caches on the incremental side so the next
			// Restrict has partitions to carry as seeds.
			for _, f := range formulas {
				if _, err := inc.Eval(f); err != nil {
					t.Fatalf("trial %d step %d: warm eval %s: %v", trial, step, f, err)
				}
			}
			keep := randKeep(rng, inc.NumWorlds())
			inc = inc.Restrict(keep)
			scratch = scratch.RestrictOpts(keep, RestrictOptions{})
			if inc.inheritedReach == nil {
				t.Fatalf("trial %d step %d: Restrict carried no reach seeds despite warm caches", trial, step)
			}
			for _, f := range formulas {
				got, err := inc.Eval(f)
				if err != nil {
					t.Fatalf("trial %d step %d: eval %s on seeded model: %v", trial, step, f, err)
				}
				want, err := scratch.Eval(f)
				if err != nil {
					t.Fatalf("trial %d step %d: eval %s on scratch model: %v", trial, step, f, err)
				}
				if !got.Equal(want) {
					t.Fatalf("trial %d step %d: Eval(%s) seeded = %s, scratch = %s",
						trial, step, f, got, want)
				}
			}
			for _, g := range groups {
				gotIDs, err := inc.GReachIDs(g)
				if err != nil {
					t.Fatal(err)
				}
				wantIDs, err := scratch.GReachIDs(g)
				if err != nil {
					t.Fatal(err)
				}
				if !equalInts(canonIDs(gotIDs), canonIDs(wantIDs)) {
					t.Fatalf("trial %d step %d: G-reach components diverged for %v:\n  seeded  %v\n  scratch %v",
						trial, step, g, gotIDs, wantIDs)
				}
			}
		}
	}
}

// TestInheritedReachPendingChains checks the never-materialized case: two
// chained Restricts with no C_G evaluation in between must still produce
// exact components at the end — pending seeds compose their touched flags
// instead of being rebuilt at every link.
func TestInheritedReachPendingChains(t *testing.T) {
	rng := rand.New(rand.NewSource(99887))
	for trial := 0; trial < 15; trial++ {
		n := 16 + rng.Intn(80)
		numAgents := 2 + rng.Intn(3)
		m := randModel(rng, n, numAgents)
		// Warm only once, at the head of the chain.
		if _, err := m.Eval(logic.C(nil, logic.P("p"))); err != nil {
			t.Fatal(err)
		}
		inc, scratch := m, m
		for step := 0; step < 3 && inc.NumWorlds() > 2; step++ {
			keep := randKeep(rng, inc.NumWorlds())
			inc = inc.Restrict(keep)
			scratch = scratch.RestrictOpts(keep, RestrictOptions{})
		}
		got, err := inc.Eval(logic.C(nil, logic.P("p")))
		if err != nil {
			t.Fatal(err)
		}
		want, err := scratch.Eval(logic.C(nil, logic.P("p")))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: chained pending reach seeds diverged: %s vs %s", trial, got, want)
		}
	}
}

// TestMutationDropsIncrementalSeeds pins the invalidation contract: adding
// an edge to a restricted model describes new relations, so the quotient
// seed and the reach seeds inherited from the pre-mutation model must be
// discarded with the other derived state.
func TestMutationDropsIncrementalSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randModel(rng, 40, 3)
	if _, err := m.Eval(logic.C(nil, logic.P("p"))); err != nil {
		t.Fatal(err)
	}
	_, blocks := m.Minimize()
	keep := randKeep(rng, 40)
	sub := m.RestrictWithQuotient(keep, blocks)
	if sub.quotSeed == nil || sub.inheritedReach == nil {
		t.Fatalf("restriction carried no seeds to invalidate")
	}
	sub.Indistinguishable(0, 0, sub.NumWorlds()-1)
	if sub.quotSeed != nil || sub.inheritedReach != nil || sub.inheritedJoint != nil {
		t.Fatalf("mutation left stale incremental seeds behind")
	}
}
