package kripke

import (
	"math/bits"

	"repro/internal/bitset"
)

// partition is the word-level form of a partition of the worlds: a dense
// class id per world plus, per class, the sparse list of non-zero 64-bit
// words of the class's membership mask in CSR layout (off[c]..off[c+1]
// index into idx/bits). Storing only non-zero words keeps the tables O(n)
// overall, while letting the kernels AND/OR whole words instead of probing
// individual bits.
//
// A second, transposed index (twOff/twID/twBits, keyed by bitset word)
// lists the classes intersecting each word, so the kernels can test a
// whole 64-world block against a class in one AND.
//
// The same representation serves all three knowledge relations: an agent's
// view partition (K_i), the common refinement of a group's partitions
// (D_G), and the G-reachability components of Section 6 (C_G).
type partition struct {
	ids  []int32 // world -> dense class id
	n    int     // number of classes
	off  []int32 // n+1 offsets into idx/bits
	idx  []int32 // bitset word index of each mask word
	bits []uint64

	// Transpose: for each bitset word, the classes intersecting it.
	twOff  []int32 // numWords+1 offsets into twID/twBits
	twID   []int32
	twBits []uint64

	// Full-word failure tables; exactly one of the two is built. When
	// every class spans few words, spill[wi] is the union, per partner
	// word, of the mask bits that classes intersecting word wi own outside
	// it — so a fully-failing word is handled by zeroing it and a handful
	// of AND-NOTs, with no per-class iteration. Otherwise twm lists the
	// word-spanning classes per word (the only ones a full-word failure
	// has to remove bits for outside the word itself).
	spOff  []int32 // numWords+1 offsets into spIdx/spBits
	spIdx  []int32 // partner word index
	spBits []uint64
	twmOff []int32 // numWords+1 offsets into twmID
	twmID  []int32
}

// maxSpillSpan bounds the class span (in words) up to which the spill
// tables are built; beyond it their size could grow quadratically, and the
// per-class fallback is cheap for such partitions anyway.
const maxSpillSpan = 8

// minTransposeWords is the universe size (in bitset words) below which the
// transpose and full-word tables are not built at all: on models this
// small the per-bit probe is as fast as the word-level sweeps, and the
// experiments that rebuild models in a tight loop (point models per run
// system, announcement chains) should not pay table-construction cost
// they never amortize.
const minTransposeWords = 5

// newPartition builds the CSR mask tables from dense class ids over
// [0, len(ids)) with n classes.
func newPartition(ids []int32, n int) *partition {
	p := &partition{ids: ids, n: n}
	numWords := (len(ids) + 63) >> 6
	// One scratch slab: per-class last-word-seen and write cursors, plus
	// per-word cursors for the transposes.
	scratch := make([]int32, 2*n+numWords)
	last, cur, wcur := scratch[:n], scratch[n:2*n], scratch[2*n:]
	for i := range last {
		last[i] = -1
	}
	// First pass: count distinct bitset words per class.
	counts := make([]int32, n+1)
	for w, id := range ids {
		if wi := int32(w >> 6); last[id] != wi {
			last[id] = wi
			counts[id+1]++
		}
	}
	for c := 0; c < n; c++ {
		counts[c+1] += counts[c]
	}
	p.off = counts
	total := p.off[n]
	p.idx = make([]int32, total)
	p.bits = make([]uint64, total)
	// Second pass: fill the per-class word lists.
	copy(cur, p.off[:n])
	for i := range last {
		last[i] = -1
	}
	for w, id := range ids {
		wi := int32(w >> 6)
		if last[id] != wi {
			last[id] = wi
			p.idx[cur[id]] = wi
			p.bits[cur[id]] = 1 << (uint(w) & 63)
			cur[id]++
		} else {
			p.bits[cur[id]-1] |= 1 << (uint(w) & 63)
		}
	}
	if numWords < minTransposeWords {
		return p // tiny universe: the kernels fall back to per-bit probing
	}
	// Transpose into word-major order. The (word, class, bits) triples are
	// exactly idx/bits above, so only a counting sort by word is needed.
	p.twOff = make([]int32, numWords+1)
	for _, wi := range p.idx {
		p.twOff[wi+1]++
	}
	for wi := 0; wi < numWords; wi++ {
		p.twOff[wi+1] += p.twOff[wi]
	}
	p.twID = make([]int32, total)
	p.twBits = make([]uint64, total)
	copy(wcur, p.twOff[:numWords])
	for c := int32(0); c < int32(n); c++ {
		for k := p.off[c]; k < p.off[c+1]; k++ {
			wi := p.idx[k]
			p.twID[wcur[wi]] = c
			p.twBits[wcur[wi]] = p.bits[k]
			wcur[wi]++
		}
	}
	// Full-word failure tables: spill unions when class spans are small,
	// the per-class list otherwise.
	maxSpan := int32(0)
	for c := 0; c < n; c++ {
		if span := p.off[c+1] - p.off[c]; span > maxSpan {
			maxSpan = span
		}
	}
	if maxSpan <= maxSpillSpan {
		p.buildSpill(numWords)
	} else {
		p.buildTwm(numWords, wcur)
	}
	return p
}

// buildSpill fills the spill tables: for each word wi, the union per
// partner word wj ≠ wi of the mask bits owned there by classes
// intersecting wi.
func (p *partition) buildSpill(numWords int) {
	acc := make([]uint64, numWords)
	var touched []int32
	p.spOff = make([]int32, numWords+1)
	for wi := int32(0); wi < int32(numWords); wi++ {
		touched = touched[:0]
		for k := p.twOff[wi]; k < p.twOff[wi+1]; k++ {
			c := p.twID[k]
			for j := p.off[c]; j < p.off[c+1]; j++ {
				if wj := p.idx[j]; wj != wi {
					if acc[wj] == 0 {
						touched = append(touched, wj)
					}
					acc[wj] |= p.bits[j]
				}
			}
		}
		for _, wj := range touched {
			p.spIdx = append(p.spIdx, wj)
			p.spBits = append(p.spBits, acc[wj])
			acc[wj] = 0
		}
		p.spOff[wi+1] = int32(len(p.spIdx))
	}
}

// buildTwm fills the word-spanning class list per word.
func (p *partition) buildTwm(numWords int, wcur []int32) {
	p.twmOff = make([]int32, numWords+1)
	for c := int32(0); c < int32(p.n); c++ {
		if span := p.off[c+1] - p.off[c]; span > 1 {
			for k := p.off[c]; k < p.off[c+1]; k++ {
				p.twmOff[p.idx[k]+1]++
			}
		}
	}
	for wi := 0; wi < numWords; wi++ {
		p.twmOff[wi+1] += p.twmOff[wi]
	}
	p.twmID = make([]int32, p.twmOff[numWords])
	copy(wcur, p.twmOff[:numWords])
	for c := int32(0); c < int32(p.n); c++ {
		if span := p.off[c+1] - p.off[c]; span > 1 {
			for k := p.off[c]; k < p.off[c+1]; k++ {
				wi := p.idx[k]
				p.twmID[wcur[wi]] = c
				wcur[wi]++
			}
		}
	}
}

// kernelScratch is the reusable working state of the partition kernels: an
// epoch-stamped class marker, so deduplicating the failing classes needs
// no per-call clearing.
type kernelScratch struct {
	stamp []int32
	epoch int32
}

// ensure sizes the stamp table for partitions of up to n classes.
func (ks *kernelScratch) ensure(n int) {
	if len(ks.stamp) < n {
		ks.stamp = make([]int32, n)
		ks.epoch = 0
	}
}

// bump starts a new stamping round, clearing the table on epoch wraparound.
func (ks *kernelScratch) bump() {
	ks.epoch++
	if ks.epoch <= 0 {
		for i := range ks.stamp {
			ks.stamp[i] = 0
		}
		ks.epoch = 1
	}
}

// knowInto writes into dst the worlds whose whole class under p lies
// inside phi — the set-level K operator for this partition. dst and phi
// must have capacity len(p.ids) and must not alias.
func (p *partition) knowInto(dst, phi *bitset.Set, ks *kernelScratch) {
	dst.Fill()
	p.andKnowInto(dst, phi, ks)
}

// andKnowInto intersects dst in place with the knowInto result: since the
// classes cover the universe, K(phi) is the complement of the union of the
// masks of "failing" classes (those with a world outside phi). The kernel
// scans only the non-full words of phi; for each it finds the failing
// classes either by testing the word against the transposed class list
// (one AND per class intersecting the word) or, when the word has only a
// few zero bits, by probing those worlds' ids directly. Each failing class
// is then removed with whole-word AND-NOTs of its mask, deduplicated by
// epoch stamp. Cost is O(words + work near ¬phi) rather than O(worlds).
func (p *partition) andKnowInto(dst, phi *bitset.Set, ks *kernelScratch) {
	ks.ensure(p.n)
	ks.bump()
	epoch := ks.epoch
	stamp := ks.stamp
	dw := dst.Words()
	if p.twOff == nil {
		// Tiny universe: probe each missing world's class directly.
		for wi, w := range phi.Words() {
			inv := ^w & phi.WordMask(wi)
			base := wi << 6
			for inv != 0 {
				id := p.ids[base+bits.TrailingZeros64(inv)]
				if stamp[id] != epoch {
					stamp[id] = epoch
					for j := p.off[id]; j < p.off[id+1]; j++ {
						dw[p.idx[j]] &^= p.bits[j]
					}
				}
				inv &= inv - 1
			}
		}
		return
	}
	for wi, w := range phi.Words() {
		full := phi.WordMask(wi)
		inv := ^w & full
		if inv == 0 {
			continue
		}
		if inv == full {
			// The whole 64-world block lies outside phi, so every class
			// intersecting it fails and their union covers the block:
			// zero it and fix up only the mask bits spilling into other
			// words. All removals are idempotent, so no stamping is
			// needed on the spill path.
			dw[wi] = 0
			if p.spOff != nil {
				for k := p.spOff[wi]; k < p.spOff[wi+1]; k++ {
					dw[p.spIdx[k]] &^= p.spBits[k]
				}
				continue
			}
			for k := p.twmOff[wi]; k < p.twmOff[wi+1]; k++ {
				if id := p.twmID[k]; stamp[id] != epoch {
					stamp[id] = epoch
					for j := p.off[id]; j < p.off[id+1]; j++ {
						dw[p.idx[j]] &^= p.bits[j]
					}
				}
			}
			continue
		}
		lo, hi := p.twOff[wi], p.twOff[wi+1]
		if nz := bits.OnesCount64(inv); int32(nz) < (hi-lo)>>1 {
			// Sparse complement: probe the ids of the few missing worlds.
			base := wi << 6
			for inv != 0 {
				id := p.ids[base+bits.TrailingZeros64(inv)]
				if stamp[id] != epoch {
					stamp[id] = epoch
					for j := p.off[id]; j < p.off[id+1]; j++ {
						dw[p.idx[j]] &^= p.bits[j]
					}
				}
				inv &= inv - 1
			}
			continue
		}
		// Dense complement: sweep the classes intersecting this word.
		for k := lo; k < hi; k++ {
			if inv&p.twBits[k] != 0 {
				if id := p.twID[k]; stamp[id] != epoch {
					stamp[id] = epoch
					for j := p.off[id]; j < p.off[id+1]; j++ {
						dw[p.idx[j]] &^= p.bits[j]
					}
				}
			}
		}
	}
}
