package kripke

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/logic"
)

// TestEvalBatchCtxUncancelledIdentical pins the acceptance contract of the
// context-threading path: with a context that never cancels, EvalBatchCtx
// is byte-identical to EvalBatch across worker counts.
func TestEvalBatchCtxUncancelledIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		n := 16 + rng.Intn(150)
		numAgents := 1 + rng.Intn(4)
		m := randModel(rng, n, numAgents)
		fs := batchFormulas(numAgents)

		want, err := m.EvalBatch(fs, BatchWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := m.EvalBatchCtx(context.Background(), fs, BatchWorkers(workers))
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			for i := range fs {
				if !got[i].Equal(want[i]) {
					t.Fatalf("trial %d workers %d: EvalBatchCtx[%d] = %s, want %s",
						trial, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestEvalBatchCtxPreCancelled checks that an already-dead context returns
// its error before any evaluation work, on both engine paths.
func TestEvalBatchCtxPreCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randModel(rng, 64, 2)
	fs := batchFormulas(2)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		out, err := m.EvalBatchCtx(ctx, fs, BatchWorkers(workers))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers %d: err = %v, want context.Canceled", workers, err)
		}
		if out != nil {
			t.Fatalf("workers %d: results returned despite cancellation", workers)
		}
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := m.EvalBatchCtx(dctx, fs, BatchWorkers(2)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

// cancellingTemporal is a TemporalSemantics hook that counts evaluations
// and cancels a context on the first one — a deterministic probe for how
// much work a batch does after its caller disappears mid-flight.
type cancellingTemporal struct {
	worlds int
	evals  atomic.Int64
	cancel context.CancelFunc
}

func (c *cancellingTemporal) EvalTemporal(m *Model, f logic.Formula, rec func(logic.Formula) (*bitset.Set, error)) (*bitset.Set, error) {
	if c.evals.Add(1) == 1 {
		c.cancel()
	}
	return bitset.New(c.worlds), nil
}

// cancelProbeModel builds a model whose temporal hook cancels the given
// context on the first temporal evaluation, plus a batch of nf distinct
// temporal formulas (distinct, so the shared memo cannot absorb them: each
// one the engine actually picks up hits the hook exactly once).
func cancelProbeModel(nf int, cancel context.CancelFunc) (*Model, *cancellingTemporal, []logic.Formula) {
	const worlds = 32
	m := NewModel(worlds, 2)
	for w := 0; w < worlds; w++ {
		m.SetName(w, "w"+strconv.Itoa(w))
	}
	hook := &cancellingTemporal{worlds: worlds, cancel: cancel}
	m.Temporal = hook
	fs := make([]logic.Formula, nf)
	for i := range fs {
		fs[i] = logic.Cev(nil, logic.P(fmt.Sprintf("p%d", i)))
	}
	return m, hook, fs
}

// TestEvalBatchCtxSerialCancelStopsAfterOneFormula: on the serial path the
// context is checked between formulas, so a batch whose first formula's
// evaluation kills the caller evaluates exactly that one formula out of a
// thousand — far less than one batch's worth of work.
func TestEvalBatchCtxSerialCancelStopsAfterOneFormula(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m, hook, fs := cancelProbeModel(1000, cancel)
	out, err := m.EvalBatchCtx(ctx, fs, BatchWorkers(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatal("results returned despite cancellation")
	}
	if got := hook.evals.Load(); got != 1 {
		t.Fatalf("serial path evaluated %d formulas after cancellation, want exactly 1", got)
	}
}

// TestEvalBatchCtxWorkersCancelPromptly: on the fan-out path each worker
// re-checks the context before pulling its next formula, so after the
// first formula cancels the batch, at most the formulas already in flight
// (bounded by the worker count) finish — the other ~thousand are never
// picked up.
func TestEvalBatchCtxWorkersCancelPromptly(t *testing.T) {
	const workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m, hook, fs := cancelProbeModel(1000, cancel)
	out, err := m.EvalBatchCtx(ctx, fs, BatchWorkers(workers))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatal("results returned despite cancellation")
	}
	// One formula cancelled; every other worker can have at most one pull
	// in flight that raced the cancellation, plus one more each if the
	// pull happened before cancel() returned. 2*workers is a safe bound
	// that still proves promptness against a 1000-formula batch.
	if got := hook.evals.Load(); got > 2*workers {
		t.Fatalf("fan-out evaluated %d formulas after cancellation, want <= %d", got, 2*workers)
	}
}

// TestQuotientedEvalBatchCtx checks the view-level wrapper: cancellation
// propagates, and an uncancelled context returns exactly what EvalBatch
// does, expanded through the block map.
func TestQuotientedEvalBatchCtx(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := randModel(rng, 256, 3)
	q := m.QuotientForEval(1)
	fs := batchFormulas(3)

	want, err := q.EvalBatch(fs, BatchWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.EvalBatchCtx(context.Background(), fs, BatchWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range fs {
		if !got[i].Equal(want[i]) {
			t.Fatalf("EvalBatchCtx[%d] = %s, want %s", i, got[i], want[i])
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.EvalBatchCtx(ctx, fs, BatchWorkers(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
