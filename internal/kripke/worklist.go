package kripke

import (
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/logic"
)

// This file implements the incremental fixed-point path of the evaluator:
// chaotic iteration with an explicit frontier for greatest fixed points
// whose body has the "support" shape op_G(φ ∧ X) — the shape of the
// Halpern–Moses characterization C_G φ = νX.E_G(φ ∧ X), with op any of
// K_a, E_G, D_G or C_G and φ closed with respect to X.
//
// The naive Knaster–Tarski loop re-evaluates the whole body per step: on a
// chain of n worlds the ν-iteration takes ~n/2 steps and every step rescans
// every world outside the shrinking approximant, an O(n²) total. But the
// approximants only ever shrink, so a partition class that escaped the
// approximant once has failed forever: the only work step k+1 can add over
// step k is for classes that lost a member in step k. The worklist evaluator
// makes that delta explicit:
//
//   - acc starts as op_G(φ), the first approximant X₁ (X₀ is the full set).
//   - The frontier holds the worlds that left the approximant in the last
//     step. A class of one of the op partitions that intersects the
//     frontier newly fails; its whole mask is removed from acc with the
//     same word-level AND-NOTs the kernels use, deduplicated by a per-
//     partition epoch stamp that persists across iterations — each class is
//     removed at most once in the entire run, not once per step.
//   - Bits actually removed form the next frontier. The iteration converges
//     when a step removes nothing.
//
// Total cost is O(iterations·words + Σ class mask words): linear in the
// model instead of quadratic, while performing, step for step, exactly the
// downward iteration of Appendix A — the reported iteration count is
// identical to the naive loop's.
//
// Because every supported partition is reflexive (S5: each world lies in
// its own class), op(ψ) ⊆ ψ, so from the second step on the evaluated set
// φ ∧ X_k equals X_k and the frontier bookkeeping needs no separate copy of
// the conjunction.

// worklistShape matches a fixed-point body of the supported form
// op_G(φ ∧ X) (or op_G(X), with φ implicitly true): op is one of the S5
// knowledge operators, exactly one top-level conjunct is the fixed-point
// variable itself, and the remaining conjuncts do not mention the variable.
// It returns the modal node and the residual φ (Truth{true} when there are
// no other conjuncts).
func worklistShape(name string, body logic.Formula) (mod logic.Formula, phi logic.Formula, ok bool) {
	var inner logic.Formula
	switch n := body.(type) {
	case logic.Know:
		inner = n.F
	case logic.Everyone:
		inner = n.F
	case logic.Dist:
		inner = n.F
	case logic.Common:
		inner = n.F
	default:
		return nil, nil, false
	}
	switch c := inner.(type) {
	case logic.Var:
		if c.Name != name {
			return nil, nil, false
		}
		return body, logic.True, true
	case logic.And:
		rest := make([]logic.Formula, 0, len(c.Fs))
		seenVar := false
		for _, f := range c.Fs {
			if v, isVar := f.(logic.Var); isVar && v.Name == name {
				if seenVar {
					return nil, nil, false
				}
				seenVar = true
				continue
			}
			if logic.PolarityOf(f, name) != logic.PolarityNone {
				return nil, nil, false
			}
			rest = append(rest, f)
		}
		if !seenVar {
			return nil, nil, false
		}
		if len(rest) == 0 {
			return body, logic.True, true
		}
		return body, logic.Conj(rest...), true
	}
	return nil, nil, false
}

// worklistParts resolves the partitions the modal operator of a supported
// body quantifies over: the agent's view partition for K_a, one partition
// per agent for E_G, the joint-view refinement for D_G and the reachability
// components for C_G. Empty or invalid groups (whose operators either have
// degenerate semantics the naive loop handles in one or two steps, or are
// errors the naive path reports with its usual message) report !ok. The
// returned slice aliases the evaluator's scratch and is valid until the
// next worklistParts call.
func (ev *evaluator) worklistParts(mod logic.Formula) ([]*partition, bool) {
	switch n := mod.(type) {
	case logic.Know:
		if int(n.Agent) < 0 || int(n.Agent) >= ev.m.numAgents {
			return nil, false
		}
		ev.wparts = append(ev.wparts[:0], ev.m.part(ev.t, int(n.Agent)))
		return ev.wparts, true
	case logic.Everyone:
		agents, err := ev.resolveAgents(n.G)
		if err != nil || len(agents) == 0 {
			return nil, false
		}
		ev.m.ensureParts(ev.t, agents)
		ev.wparts = ev.wparts[:0]
		for _, a := range agents {
			ev.wparts = append(ev.wparts, ev.t.parts[a].Load())
		}
		return ev.wparts, true
	case logic.Dist:
		agents, err := ev.resolveAgents(n.G)
		if err != nil || len(agents) == 0 {
			return nil, false
		}
		ev.wparts = append(ev.wparts[:0], ev.m.jointPartition(ev.t, agents, ev.keyScratch()))
		return ev.wparts, true
	case logic.Common:
		agents, err := ev.resolveAgents(n.G)
		if err != nil || len(agents) == 0 {
			return nil, false
		}
		ev.wparts = append(ev.wparts[:0], ev.m.reachPartition(ev.t, agents, ev.keyScratch()))
		return ev.wparts, true
	}
	return nil, false
}

// fixpointWorklist computes νX.op_G(φ ∧ X) by chaotic iteration. parts are
// the partitions of op, phiSet the denotation of φ. The returned set is
// owned by the caller; ev.fixIters is set to the same iteration count the
// naive downward iteration would report.
func (ev *evaluator) fixpointWorklist(parts []*partition, phiSet *bitset.Set) *bitset.Set {
	// X₁ = op_G(φ): one kernel pass per partition.
	acc := ev.alloc()
	acc.Fill()
	for _, p := range parts {
		p.andKnowInto(acc, phiSet, &ev.ks)
	}
	if acc.IsFull() {
		ev.fixIters = 0 // X₁ == X₀: φ (and the model) were op-closed already
		return acc
	}

	// Persistent per-partition class stamps: a class is removed from acc at
	// most once over the whole run.
	for len(ev.wstamps) < len(parts) {
		ev.wstamps = append(ev.wstamps, kernelScratch{})
	}
	stamps := ev.wstamps[:len(parts)]
	for i, p := range parts {
		stamps[i].ensure(p.n)
		stamps[i].bump()
	}

	// frontier = ψ₀ \ X₁: the worlds whose loss step 2 must propagate. The
	// frontier is usually localized (on a chain it is the one or two worlds
	// at the failing boundary), so the loop tracks the word range its bits
	// occupy and scans only that window — per-step cost is proportional to
	// the frontier, not the universe.
	frontier := ev.alloc()
	frontier.Copy(phiSet)
	frontier.AndNot(acc)
	next := ev.alloc()
	next.Clear()

	aw := acc.Words()
	fw := frontier.Words()
	nw := next.Words()
	flo, fhi := len(fw), -1
	for wi, w := range fw {
		if w != 0 {
			if wi < flo {
				flo = wi
			}
			fhi = wi
		}
	}

	k := 1 // acc == X_k; frontier holds ψ_{k-1} \ X_k
	for flo <= fhi {
		nlo, nhi := len(nw), -1
		changed := false
		for pi, p := range parts {
			st := &stamps[pi]
			epoch, stamp := st.epoch, st.stamp
			for wi := flo; wi <= fhi; wi++ {
				w := fw[wi]
				base := wi << 6
				for w != 0 {
					id := p.ids[base+bits.TrailingZeros64(w)]
					w &= w - 1
					if stamp[id] == epoch {
						continue
					}
					stamp[id] = epoch
					for j := p.off[id]; j < p.off[id+1]; j++ {
						if rm := aw[p.idx[j]] & p.bits[j]; rm != 0 {
							wj := int(p.idx[j])
							aw[wj] &^= rm
							nw[wj] |= rm
							changed = true
							if wj < nlo {
								nlo = wj
							}
							if wj > nhi {
								nhi = wj
							}
						}
					}
				}
			}
		}
		if !changed {
			// Every frontier class had already failed: X_{k+1} = X_k.
			break
		}
		k++
		for wi := flo; wi <= fhi; wi++ {
			fw[wi] = 0
		}
		frontier, next = next, frontier
		fw, nw = nw, fw
		flo, fhi = nlo, nhi
	}
	ev.fixIters = k
	ev.release(frontier)
	ev.release(next)
	return acc
}

// SupportStep exposes the worklist machinery for external fixed-point
// drivers (the fixpoint package's GFPWorklist): it presents the operator
// X ↦ E_G(φ ∧ X) — whose greatest fixed point is C_G φ — in support form.
// first is the initial approximant E_G(φ); step removes from acc every
// world one of whose G-view classes intersects removed, writes the worlds
// it newly removed into next (pre-cleared by the caller), and reports
// whether acc changed. The step closure carries per-class stamps that
// persist across calls, so over a whole iteration each class is removed at
// most once per agent; it is single-use and not safe for concurrent use.
func (m *Model) SupportStep(g logic.Group, phi logic.Formula) (first *bitset.Set, step func(acc, removed, next *bitset.Set) bool, err error) {
	agents, err := m.resolveGroup(g)
	if err != nil {
		return nil, nil, err
	}
	phiSet, err := m.Eval(phi)
	if err != nil {
		return nil, nil, err
	}
	t := m.tables()
	m.ensureParts(t, agents)
	parts := make([]*partition, len(agents))
	stamps := make([]kernelScratch, len(agents))
	var ks kernelScratch
	first = bitset.NewFull(m.numWorlds)
	for i, a := range agents {
		parts[i] = t.parts[a].Load()
		stamps[i].ensure(parts[i].n)
		stamps[i].bump()
		parts[i].andKnowInto(first, phiSet, &ks)
	}
	step = func(acc, removed, next *bitset.Set) bool {
		aw, nw := acc.Words(), next.Words()
		changed := false
		for pi, p := range parts {
			st := &stamps[pi]
			epoch, stamp := st.epoch, st.stamp
			removed.ForEach(func(v int) bool {
				id := p.ids[v]
				if stamp[id] != epoch {
					stamp[id] = epoch
					for j := p.off[id]; j < p.off[id+1]; j++ {
						if rm := aw[p.idx[j]] & p.bits[j]; rm != 0 {
							aw[p.idx[j]] &^= rm
							nw[p.idx[j]] |= rm
							changed = true
						}
					}
				}
				return true
			})
		}
		return changed
	}
	return first, step, nil
}
