package kripke

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

// twoAgentModel builds the toy model used throughout the basic tests:
//
//	worlds: 0 (p true), 1 (p false)
//	agent 0 distinguishes them, agent 1 does not.
func twoAgentModel() *Model {
	m := NewModel(2, 2)
	m.SetTrue(0, "p")
	m.Indistinguishable(1, 0, 1)
	return m
}

func mustEval(t *testing.T, m *Model, src string) []int {
	t.Helper()
	s, err := m.Eval(logic.MustParse(src))
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return s.Elements()
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBasicKnowledge(t *testing.T) {
	m := twoAgentModel()
	tests := []struct {
		src  string
		want []int
	}{
		{"p", []int{0}},
		{"~p", []int{1}},
		{"K0 p", []int{0}},              // agent 0 sees which world it is
		{"K1 p", []int{}},               // agent 1 cannot rule out world 1
		{"K1 ~p", []int{}},              //
		{"~K1 p & ~K1 ~p", []int{0, 1}}, // agent 1 is ignorant everywhere
		{"K1 (p | ~p)", []int{0, 1}},
		{"E{0} p", []int{0}},
		{"E p", []int{}},     // both agents: intersection
		{"S p", []int{0}},    // someone (agent 0) knows at world 0
		{"D p", []int{0}},    // joint view separates the worlds
		{"C{0} p", []int{0}}, // single-agent C = K
		{"C p", []int{}},     // component {0,1} contains a ¬p world
		{"true", []int{0, 1}},
		{"false", []int{}},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			if got := mustEval(t, m, tt.src); !sameInts(got, tt.want) {
				t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
			}
		})
	}
}

func TestDistributedKnowledgePooling(t *testing.T) {
	// The Section 3 example: one member knows ψ, another knows ψ ⊃ φ, and
	// the group has distributed knowledge of φ although neither member
	// knows φ individually.
	//
	// Worlds encode (ψ, φ): w0 = (T,T), w1 = (T,F), w2 = (F,T), w3 = (F,F).
	// Agent 0 knows whether ψ: distinguishes {0,1} from {2,3}.
	// Agent 1 knows whether ψ ⊃ φ: ψ⊃φ holds at w0, w2, w3; fails at w1.
	m := NewModel(4, 2)
	m.SetTrue(0, "psi")
	m.SetTrue(1, "psi")
	m.SetTrue(0, "phi")
	m.SetTrue(2, "phi")
	// agent 0: {0,1}, {2,3}
	m.Indistinguishable(0, 0, 1)
	m.Indistinguishable(0, 2, 3)
	// agent 1: {0,2,3}, {1}
	m.Indistinguishable(1, 0, 2)
	m.Indistinguishable(1, 2, 3)

	// At w0: agent 0 knows ψ but not φ; agent 1 knows ψ⊃φ but not φ.
	if got := mustEval(t, m, "K0 phi"); len(got) != 0 {
		t.Errorf("K0 phi = %v, want empty", got)
	}
	if got := mustEval(t, m, "K1 phi"); len(got) != 0 {
		t.Errorf("K1 phi = %v, want empty", got)
	}
	if got := mustEval(t, m, "K0 psi"); !sameInts(got, []int{0, 1}) {
		t.Errorf("K0 psi = %v, want [0 1]", got)
	}
	if got := mustEval(t, m, "K1 (psi -> phi)"); !sameInts(got, []int{0, 2, 3}) {
		t.Errorf("K1 (psi->phi) = %v", got)
	}
	// Joint view at w0 intersects {0,1} ∩ {0,2,3} = {0}, so D φ holds.
	if got := mustEval(t, m, "D phi"); !sameInts(got, []int{0}) {
		t.Errorf("D phi = %v, want [0]", got)
	}
}

func TestSharedMemoryCollapse(t *testing.T) {
	// Section 3: when knowledge is based on a common memory (all agents
	// have the same view function), the hierarchy collapses:
	// D ≡ S ≡ E ≡ C.
	m := NewModel(6, 3)
	for w := 0; w < 6; w += 2 {
		m.SetTrue(w, "p")
	}
	// All agents share the partition {0,1}, {2,3}, {4,5}.
	for a := 0; a < 3; a++ {
		m.Indistinguishable(a, 0, 1)
		m.Indistinguishable(a, 2, 3)
		m.Indistinguishable(a, 4, 5)
	}
	for _, phi := range []string{"p", "~p", "p | ~p"} {
		d := mustEval(t, m, "D "+phi)
		s := mustEval(t, m, "S "+phi)
		e := mustEval(t, m, "E "+phi)
		c := mustEval(t, m, "C "+phi)
		if !sameInts(d, s) || !sameInts(s, e) || !sameInts(e, c) {
			t.Errorf("hierarchy did not collapse for %s: D=%v S=%v E=%v C=%v", phi, d, s, e, c)
		}
	}
}

func TestObliviousViewMakesValidFactsCommonKnowledge(t *testing.T) {
	// Section 6: under the single-view interpretation (one class per
	// agent), every fact true at all points is common knowledge.
	m := NewModel(5, 2)
	for w := 0; w < 5; w++ {
		m.SetTrue(w, "p")
		if w < 3 {
			m.SetTrue(w, "q")
		}
	}
	for a := 0; a < 2; a++ {
		for w := 1; w < 5; w++ {
			m.Indistinguishable(a, 0, w)
		}
	}
	if got := mustEval(t, m, "C p"); len(got) != 5 {
		t.Errorf("C p = %v, want all worlds", got)
	}
	if got := mustEval(t, m, "C q"); len(got) != 0 {
		t.Errorf("C q = %v, want empty (q is not valid)", got)
	}
}

func TestEKPrefixMatchesDirectEvaluation(t *testing.T) {
	m := chainModel(6)
	pre, err := m.EKPrefix(nil, logic.P("p"), 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 4; k++ {
		direct, err := m.Eval(logic.EK(nil, k, logic.P("p")))
		if err != nil {
			t.Fatal(err)
		}
		if !pre[k-1].Equal(direct) {
			t.Errorf("EKPrefix level %d disagrees with direct evaluation", k)
		}
	}
}

// chainModel builds the classic "chain of ignorance" model with n worlds:
// p holds everywhere except the last world; agent 0 confuses (2i, 2i+1),
// agent 1 confuses (2i+1, 2i+2). E^k p shrinks one world per level, so the
// hierarchy is strict — the structure underlying the muddy children and
// coordinated attack analyses.
func chainModel(n int) *Model {
	m := NewModel(n, 2)
	for w := 0; w < n-1; w++ {
		m.SetTrue(w, "p")
	}
	for w := 0; w+1 < n; w++ {
		m.Indistinguishable(w%2, w, w+1)
	}
	return m
}

func TestChainHierarchyStrict(t *testing.T) {
	const n = 8
	m := chainModel(n)
	rep, err := CheckHierarchy(m, nil, logic.P("p"), n)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ordered {
		t.Fatal("hierarchy inclusions violated")
	}
	if rep.C != 0 {
		t.Errorf("C p should be empty on the chain, got %d worlds", rep.C)
	}
	// Each E^k level strictly shrinks until empty.
	prev := rep.S
	for k, size := range rep.E {
		if size >= prev && size != 0 {
			t.Errorf("E^%d did not shrink: %d >= %d", k+1, size, prev)
		}
		prev = size
	}
}

func TestCommonKnowledgeByIterationAgrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng, 2+rng.Intn(30), 1+rng.Intn(3))
		phi := logic.P("p")
		direct, err := m.Eval(logic.C(nil, phi))
		if err != nil {
			return false
		}
		iter, _, err := m.CommonKnowledgeByIteration(nil, phi)
		if err != nil {
			return false
		}
		return direct.Equal(iter)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// randomModel generates a random model with random partitions and a random
// valuation of "p" and "q".
func randomModel(rng *rand.Rand, worlds, agents int) *Model {
	m := NewModel(worlds, agents)
	for w := 0; w < worlds; w++ {
		if rng.Intn(2) == 0 {
			m.SetTrue(w, "p")
		}
		if rng.Intn(2) == 0 {
			m.SetTrue(w, "q")
		}
	}
	for a := 0; a < agents; a++ {
		merges := rng.Intn(worlds)
		for i := 0; i < merges; i++ {
			m.Indistinguishable(a, rng.Intn(worlds), rng.Intn(worlds))
		}
	}
	return m
}

var s5Samples = []logic.Formula{
	logic.P("p"),
	logic.P("q"),
	logic.Neg(logic.P("p")),
	logic.Disj(logic.P("p"), logic.P("q")),
	logic.Disj(logic.P("p"), logic.Neg(logic.P("p"))), // valid
	logic.K(0, logic.P("p")),
}

// TestQuickProposition1 machine-checks Proposition 1: K_i, D_G and C_G have
// the S5 properties on random view-based models, and C satisfies C1/C2 and
// Lemma 2.
func TestQuickProposition1(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		agents := 2 + rng.Intn(2)
		m := randomModel(rng, 2+rng.Intn(20), agents)
		g := logic.NewGroup(0, 1)

		ops := []Op{
			func(x logic.Formula) logic.Formula { return logic.K(0, x) },
			func(x logic.Formula) logic.Formula { return logic.K(1, x) },
			func(x logic.Formula) logic.Formula { return logic.D(g, x) },
			func(x logic.Formula) logic.Formula { return logic.D(nil, x) },
			func(x logic.Formula) logic.Formula { return logic.C(g, x) },
			func(x logic.Formula) logic.Formula { return logic.C(nil, x) },
		}
		for _, op := range ops {
			rep, err := CheckS5(m, op, s5Samples)
			if err != nil {
				t.Logf("CheckS5 error: %v", err)
				return false
			}
			if !rep.AllHold() {
				t.Logf("S5 failure (seed %d): %s", seed, rep.Failure)
				return false
			}
		}
		if err := CheckFixedPointAxiom(m, g, s5Samples); err != nil {
			t.Log(err)
			return false
		}
		if err := CheckInductionRule(m, g, s5Samples); err != nil {
			t.Log(err)
			return false
		}
		if err := CheckLemma2(m, g, s5Samples); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickHierarchyInclusions checks the Section 3 inclusion chain on
// random models and random formulas.
func TestQuickHierarchyInclusions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng, 2+rng.Intn(25), 2+rng.Intn(3))
		for _, phi := range []logic.Formula{logic.P("p"), logic.Disj(logic.P("p"), logic.P("q"))} {
			rep, err := CheckHierarchy(m, nil, phi, 4)
			if err != nil || !rep.Ordered {
				t.Logf("hierarchy violated (seed %d): %+v err=%v", seed, rep, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNuMuEvaluation(t *testing.T) {
	m := chainModel(6)
	// νX.E(p ∧ X) is C p — empty on the chain.
	nu, err := m.Eval(logic.MustParse("nu X . E (p & X)"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Eval(logic.MustParse("C p"))
	if err != nil {
		t.Fatal(err)
	}
	if !nu.Equal(c) {
		t.Error("nu X . E (p & X) != C p")
	}
	// μX.p ∨ E X: least fixed point. Start empty: X0=∅, X1 = p ∨ E∅ = p,
	// X2 = p ∨ E p, ... converges to worlds from which... just check that
	// it contains p-worlds and is a fixed point.
	mu, err := m.Eval(logic.MustParse("mu X . p | E X"))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := m.Eval(logic.P("p"))
	if !p.SubsetOf(mu) {
		t.Error("mu X . p | E X should contain p")
	}
	// νX.X is everything; μX.X is nothing.
	top, _ := m.Eval(logic.MustParse("nu X . X"))
	if !top.IsFull() {
		t.Error("nu X . X should be all worlds")
	}
	bot, _ := m.Eval(logic.MustParse("mu X . X"))
	if !bot.IsEmpty() {
		t.Error("mu X . X should be empty")
	}
}

func TestFixpointRejectsNegativeBody(t *testing.T) {
	m := twoAgentModel()
	// Construct νX.¬X directly (the parser would reject it).
	bad := logic.Nu{Var: "X", Body: logic.Neg(logic.X("X"))}
	if _, err := m.Eval(bad); err == nil {
		t.Error("expected error for non-monotone fixed point body")
	}
}

func TestUnboundVariable(t *testing.T) {
	m := twoAgentModel()
	if _, err := m.Eval(logic.X("X")); err == nil {
		t.Error("expected error for unbound variable")
	}
}

func TestTemporalWithoutStructure(t *testing.T) {
	m := twoAgentModel()
	for _, src := range []string{"<> p", "[] p", "Ev p", "Cv p", "Ee[1] p", "Ce[1] p", "Et[0] p", "Ct[0] p"} {
		_, err := m.Eval(logic.MustParse(src))
		if !errors.Is(err, ErrTemporal) {
			t.Errorf("Eval(%q) error = %v, want ErrTemporal", src, err)
		}
	}
}

func TestAgentOutOfRange(t *testing.T) {
	m := twoAgentModel()
	if _, err := m.Eval(logic.MustParse("K7 p")); err == nil {
		t.Error("expected error for out-of-range agent")
	}
	if _, err := m.Eval(logic.MustParse("E{0,7} p")); err == nil {
		t.Error("expected error for out-of-range group member")
	}
}

func TestRestrictAnnounce(t *testing.T) {
	// Three worlds, p at {0,1}, q at {0}; agent 0 confuses all three,
	// agent 1 distinguishes all. Announcing p removes world 2.
	m := NewModel(3, 2)
	m.SetTrue(0, "p")
	m.SetTrue(1, "p")
	m.SetTrue(0, "q")
	m.Indistinguishable(0, 0, 1)
	m.Indistinguishable(0, 1, 2)
	m.SetName(0, "a")
	m.SetName(1, "b")
	m.SetName(2, "c")

	before, _ := m.Eval(logic.MustParse("K0 p"))
	if !before.IsEmpty() {
		t.Fatal("agent 0 should not know p before the announcement")
	}
	sub, err := m.Announce(logic.P("p"))
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumWorlds() != 2 {
		t.Fatalf("announcement kept %d worlds, want 2", sub.NumWorlds())
	}
	after, _ := sub.Eval(logic.MustParse("K0 p"))
	if !after.IsFull() {
		t.Error("agent 0 should know p after the announcement")
	}
	// p is common knowledge after the public announcement.
	c, _ := sub.Eval(logic.MustParse("C p"))
	if !c.IsFull() {
		t.Error("p should be common knowledge after the announcement")
	}
	// names survive
	if w, ok := sub.WorldByName("b"); !ok || sub.Name(w) != "b" {
		t.Error("world names not preserved by Restrict")
	}
	// q-world survived with q true
	qSet, _ := sub.Eval(logic.P("q"))
	if qSet.Count() != 1 {
		t.Error("q valuation not preserved by Restrict")
	}
}

func TestValidAndHolds(t *testing.T) {
	m := twoAgentModel()
	taut := logic.MustParse("p | ~p")
	if ok, _ := m.Valid(taut); !ok {
		t.Error("tautology should be valid")
	}
	if ok, _ := m.Valid(logic.P("p")); ok {
		t.Error("p is not valid")
	}
	if ok, _ := m.Holds(logic.P("p"), 0); !ok {
		t.Error("p should hold at world 0")
	}
	if ok, _ := m.Holds(logic.P("p"), 1); ok {
		t.Error("p should not hold at world 1")
	}
}

func TestIffSemantics(t *testing.T) {
	m := NewModel(4, 1)
	m.SetTrue(0, "a")
	m.SetTrue(1, "a")
	m.SetTrue(0, "b")
	m.SetTrue(2, "b")
	got := mustEval(t, m, "a <-> b")
	if !sameInts(got, []int{0, 3}) {
		t.Errorf("a <-> b = %v, want [0 3]", got)
	}
}

func TestFixpointIterationCount(t *testing.T) {
	// On the chain model, νX.E(p ∧ X) must iterate ~n times before
	// converging to empty — the "no finite level of E^k suffices"
	// observation made computational.
	for _, n := range []int{4, 8, 12} {
		m := chainModel(n)
		_, iters, err := m.CommonKnowledgeByIteration(nil, logic.P("p"))
		if err != nil {
			t.Fatal(err)
		}
		if iters < n/2 {
			t.Errorf("chain(%d): converged too fast (%d iterations)", n, iters)
		}
	}
}

func BenchmarkCommonKnowledgeComponents(b *testing.B) {
	m := chainModel(4096)
	phi := logic.C(nil, logic.P("p"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Eval(phi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommonKnowledgeIteration(b *testing.B) {
	m := chainModel(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.CommonKnowledgeByIteration(nil, logic.P("p")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKnowledgeOperator(b *testing.B) {
	m := chainModel(4096)
	phi := logic.K(0, logic.P("p"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Eval(phi); err != nil {
			b.Fatal(err)
		}
	}
}
