package kripke

import (
	"errors"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/logic"
)

// ErrTemporal is returned when a formula uses the run-based operators of
// Sections 11–12 (E^ε, E^⋄, E^T, ◇, □ and the corresponding common
// knowledge variants) on a model without temporal structure.
var ErrTemporal = errors.New("kripke: temporal operator requires a model with run/time structure")

// Env binds fixed-point variables to world sets during evaluation.
type Env map[string]*bitset.Set

// clone returns a shallow copy with one extra binding.
func (e Env) with(name string, s *bitset.Set) Env {
	c := make(Env, len(e)+1)
	for k, v := range e {
		c[k] = v
	}
	c[name] = s
	return c
}

// resolveGroup expands a (possibly nil) group into explicit agent indices,
// validating them against the model.
func (m *Model) resolveGroup(g logic.Group) ([]int, error) {
	if g == nil {
		all := make([]int, m.numAgents)
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	out := make([]int, 0, len(g))
	for _, a := range g {
		if int(a) < 0 || int(a) >= m.numAgents {
			return nil, fmt.Errorf("kripke: agent %d out of range [0,%d)", a, m.numAgents)
		}
		out = append(out, int(a))
	}
	return out, nil
}

// Eval returns the set of worlds at which f holds. The formula must be
// closed (no free fixed-point variables).
func (m *Model) Eval(f logic.Formula) (*bitset.Set, error) {
	return m.EvalEnv(f, nil)
}

// EvalEnv evaluates f under an environment binding free fixed-point
// variables to world sets.
func (m *Model) EvalEnv(f logic.Formula, env Env) (*bitset.Set, error) {
	switch n := f.(type) {
	case logic.Prop:
		return m.FactSet(n.Name), nil

	case logic.Truth:
		if n.Value {
			return bitset.NewFull(m.numWorlds), nil
		}
		return bitset.New(m.numWorlds), nil

	case logic.Var:
		if s, ok := env[n.Name]; ok {
			return s.Clone(), nil
		}
		return nil, fmt.Errorf("kripke: unbound fixed-point variable %s", n.Name)

	case logic.Not:
		s, err := m.EvalEnv(n.F, env)
		if err != nil {
			return nil, err
		}
		s.Not()
		return s, nil

	case logic.And:
		out := bitset.NewFull(m.numWorlds)
		for _, c := range n.Fs {
			s, err := m.EvalEnv(c, env)
			if err != nil {
				return nil, err
			}
			out.And(s)
		}
		return out, nil

	case logic.Or:
		out := bitset.New(m.numWorlds)
		for _, c := range n.Fs {
			s, err := m.EvalEnv(c, env)
			if err != nil {
				return nil, err
			}
			out.Or(s)
		}
		return out, nil

	case logic.Implies:
		ant, err := m.EvalEnv(n.Ant, env)
		if err != nil {
			return nil, err
		}
		cons, err := m.EvalEnv(n.Cons, env)
		if err != nil {
			return nil, err
		}
		ant.Not()
		ant.Or(cons)
		return ant, nil

	case logic.Iff:
		l, err := m.EvalEnv(n.L, env)
		if err != nil {
			return nil, err
		}
		r, err := m.EvalEnv(n.R, env)
		if err != nil {
			return nil, err
		}
		// (l ∧ r) ∪ (¬l ∧ ¬r)
		both := bitset.And(l, r)
		l.Not()
		r.Not()
		l.And(r)
		both.Or(l)
		return both, nil

	case logic.Know:
		if int(n.Agent) < 0 || int(n.Agent) >= m.numAgents {
			return nil, fmt.Errorf("kripke: agent %d out of range [0,%d)", n.Agent, m.numAgents)
		}
		s, err := m.EvalEnv(n.F, env)
		if err != nil {
			return nil, err
		}
		return m.knowSet(int(n.Agent), s), nil

	case logic.Someone:
		agents, err := m.resolveGroup(n.G)
		if err != nil {
			return nil, err
		}
		s, err := m.EvalEnv(n.F, env)
		if err != nil {
			return nil, err
		}
		out := bitset.New(m.numWorlds)
		for _, a := range agents {
			out.Or(m.knowSet(a, s))
		}
		return out, nil

	case logic.Everyone:
		agents, err := m.resolveGroup(n.G)
		if err != nil {
			return nil, err
		}
		s, err := m.EvalEnv(n.F, env)
		if err != nil {
			return nil, err
		}
		out := bitset.NewFull(m.numWorlds)
		for _, a := range agents {
			out.And(m.knowSet(a, s))
		}
		return out, nil

	case logic.Dist:
		agents, err := m.resolveGroup(n.G)
		if err != nil {
			return nil, err
		}
		s, err := m.EvalEnv(n.F, env)
		if err != nil {
			return nil, err
		}
		return m.distSet(agents, s), nil

	case logic.Common:
		agents, err := m.resolveGroup(n.G)
		if err != nil {
			return nil, err
		}
		s, err := m.EvalEnv(n.F, env)
		if err != nil {
			return nil, err
		}
		return m.commonSet(agents, s), nil

	case logic.Nu:
		return m.fixpoint(n.Var, n.Body, env, true)

	case logic.Mu:
		return m.fixpoint(n.Var, n.Body, env, false)

	case logic.EveryEps, logic.CommonEps, logic.EveryEv, logic.CommonEv,
		logic.EveryTime, logic.CommonTime, logic.Eventually, logic.Always:
		if m.Temporal == nil {
			return nil, fmt.Errorf("%w: %s", ErrTemporal, f)
		}
		rec := func(sub logic.Formula) (*bitset.Set, error) {
			return m.EvalEnv(sub, env)
		}
		return m.Temporal.EvalTemporal(m, f, rec)

	default:
		return nil, fmt.Errorf("kripke: unsupported formula %T", f)
	}
}

// fixpoint computes νX.body (greatest = true) or μX.body (least) by the
// standard Knaster–Tarski iteration of Appendix A. On a finite model the
// iteration converges in at most NumWorlds+1 steps for monotone bodies;
// non-monotone bodies (which WellFormed rejects) would oscillate, so the
// iteration is capped and an error returned if no fixed point is reached.
func (m *Model) fixpoint(name string, body logic.Formula, env Env, greatest bool) (*bitset.Set, error) {
	if p := logic.PolarityOf(body, name); p == logic.PolarityNegative || p == logic.PolarityMixed {
		return nil, fmt.Errorf("kripke: %s occurs non-positively in fixed point body %s", name, body)
	}
	var cur *bitset.Set
	if greatest {
		cur = bitset.NewFull(m.numWorlds)
	} else {
		cur = bitset.New(m.numWorlds)
	}
	for iter := 0; iter <= m.numWorlds+1; iter++ {
		next, err := m.EvalEnv(body, env.with(name, cur))
		if err != nil {
			return nil, err
		}
		if next.Equal(cur) {
			return cur, nil
		}
		cur = next
	}
	return nil, fmt.Errorf("kripke: fixed point for %s did not converge", name)
}

// FixpointIterations computes νX.body and additionally reports the number
// of iterations needed to converge (for the Appendix A experiments).
func (m *Model) FixpointIterations(name string, body logic.Formula) (*bitset.Set, int, error) {
	cur := bitset.NewFull(m.numWorlds)
	for iter := 0; iter <= m.numWorlds+1; iter++ {
		next, err := m.EvalEnv(body, Env{}.with(name, cur))
		if err != nil {
			return nil, 0, err
		}
		if next.Equal(cur) {
			return cur, iter, nil
		}
		cur = next
	}
	return nil, 0, fmt.Errorf("kripke: fixed point for %s did not converge", name)
}

// Holds reports whether f holds at world w.
func (m *Model) Holds(f logic.Formula, w int) (bool, error) {
	s, err := m.Eval(f)
	if err != nil {
		return false, err
	}
	return s.Contains(w), nil
}

// Valid reports whether f holds at every world of the model (the paper's
// "valid in the system").
func (m *Model) Valid(f logic.Formula) (bool, error) {
	s, err := m.Eval(f)
	if err != nil {
		return false, err
	}
	return s.IsFull(), nil
}

// Announce returns the model that results from a truthful public
// announcement of f: the submodel restricted to the worlds where f holds.
// This is the update performed by the father's announcement in the muddy
// children puzzle (Section 2) and by each round of simultaneous answers.
func (m *Model) Announce(f logic.Formula) (*Model, error) {
	s, err := m.Eval(f)
	if err != nil {
		return nil, err
	}
	return m.Restrict(s), nil
}

// CommonKnowledgeByIteration evaluates C_G φ via the greatest fixed point
// νX.E_G(φ ∧ X) rather than via reachability components. Used by the
// Appendix A experiments to confirm the two characterizations agree, and by
// the ablation benchmarks.
func (m *Model) CommonKnowledgeByIteration(g logic.Group, f logic.Formula) (*bitset.Set, int, error) {
	body := logic.E(g, logic.Conj(f, logic.X("__ck")))
	return m.FixpointIterations("__ck", body)
}

// EKPrefix returns the sets E^1_G φ, E^2_G φ, ..., E^k_G φ, computed
// incrementally (each level applies one "everyone knows" step to the
// previous level's world set).
func (m *Model) EKPrefix(g logic.Group, f logic.Formula, k int) ([]*bitset.Set, error) {
	agents, err := m.resolveGroup(g)
	if err != nil {
		return nil, err
	}
	cur, err := m.Eval(f)
	if err != nil {
		return nil, err
	}
	out := make([]*bitset.Set, 0, k)
	for i := 1; i <= k; i++ {
		next := bitset.NewFull(m.numWorlds)
		for _, a := range agents {
			next.And(m.knowSet(a, cur))
		}
		out = append(out, next)
		cur = next
	}
	return out, nil
}
