package kripke

import (
	"errors"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/logic"
)

// ErrTemporal is returned when a formula uses the run-based operators of
// Sections 11–12 (E^ε, E^⋄, E^T, ◇, □ and the corresponding common
// knowledge variants) on a model without temporal structure.
var ErrTemporal = errors.New("kripke: temporal operator requires a model with run/time structure")

// Env binds fixed-point variables to world sets during evaluation. The
// evaluator reads the bound sets without copying; callers must not mutate
// them while an evaluation is in flight.
type Env map[string]*bitset.Set

// binding is the evaluator's internal environment: a linked chain of
// variable bindings. Pushing a fixed-point binder is a single node, and
// lookup walks outward so inner binders shadow outer ones — the zero-copy
// replacement for cloning an Env map per fixpoint iteration.
type binding struct {
	name string
	set  *bitset.Set
	prev *binding
}

func (b *binding) lookup(name string) *bitset.Set {
	for ; b != nil; b = b.prev {
		if b.name == name {
			return b.set
		}
	}
	return nil
}

// evaluator is the reusable evaluation state pooled on each model: a
// freelist of scratch world sets, the kernel scratch, a memo table of
// closed-subformula denotations keyed by structural key (logic.AppendKey),
// and the key arena those keys are built in. A steady-state Eval allocates
// almost nothing: sets are recycled through the freelist and keys through
// the arena.
type evaluator struct {
	m *Model
	t *derived

	ks    kernelScratch
	free  []*bitset.Set
	arena []byte

	memo    map[string]*bitset.Set
	retired []*bitset.Set // memo values owned by the evaluator, recycled on reset

	// shared, when non-nil, is the batch-wide closed-subformula memo of an
	// EvalBatch fan-out (batch.go). Shared hits behave like local memo hits
	// (owned = false); computed closed denotations are published instead of
	// retired, transferring their ownership to the memo so no worker ever
	// recycles a set another worker may be reading.
	shared *sharedMemo

	// Worklist-fixpoint scratch (worklist.go): the resolved partition list
	// of the current body and the per-partition class stamps, which persist
	// across the whole chaotic iteration so each class is removed once.
	wparts  []*partition
	wstamps []kernelScratch

	empty *bitset.Set // canonical shared ∅ (never mutated)
	full  *bitset.Set // canonical shared universe (never mutated)

	fixIters int // iteration count of the most recent outermost fixpoint
}

func (m *Model) getEvaluator() *evaluator {
	if ev, ok := m.evalPool.Get().(*evaluator); ok && ev != nil {
		ev.t = m.tables()
		return ev
	}
	return &evaluator{
		m:    m,
		t:    m.tables(),
		memo: make(map[string]*bitset.Set),
	}
}

func (m *Model) putEvaluator(ev *evaluator) {
	ev.free = append(ev.free, ev.retired...)
	ev.retired = ev.retired[:0]
	clear(ev.memo)
	ev.arena = ev.arena[:0]
	ev.shared = nil
	m.evalPool.Put(ev)
}

// keyScratch exposes the evaluator's key arena tail for group-cache keys.
func (ev *evaluator) keyScratch() []byte {
	return ev.arena[len(ev.arena):]
}

// alloc hands out a scratch set in an unspecified state; the caller must
// Fill, Clear or Copy before reading it.
func (ev *evaluator) alloc() *bitset.Set {
	if n := len(ev.free); n > 0 {
		s := ev.free[n-1]
		ev.free = ev.free[:n-1]
		return s
	}
	return bitset.New(ev.m.numWorlds)
}

func (ev *evaluator) release(s *bitset.Set) {
	ev.free = append(ev.free, s)
}

// releaseIf returns owned sets to the freelist; shared sets (valuation
// columns, memo entries, environment bindings, the canonical constants)
// are left alone.
func (ev *evaluator) releaseIf(s *bitset.Set, owned bool) {
	if owned {
		ev.free = append(ev.free, s)
	}
}

// ensureOwned returns s itself when owned, or a scratch copy otherwise, so
// the caller may mutate the result in place.
func (ev *evaluator) ensureOwned(s *bitset.Set, owned bool) *bitset.Set {
	if owned {
		return s
	}
	d := ev.alloc()
	d.Copy(s)
	return d
}

func (ev *evaluator) emptySet() *bitset.Set {
	if ev.empty == nil {
		ev.empty = bitset.New(ev.m.numWorlds)
	}
	return ev.empty
}

func (ev *evaluator) fullSet() *bitset.Set {
	if ev.full == nil {
		ev.full = bitset.NewFull(ev.m.numWorlds)
	}
	return ev.full
}

// resolveGroup expands a (possibly nil) group into explicit agent indices,
// validating them against the model.
func (m *Model) resolveGroup(g logic.Group) ([]int, error) {
	if g == nil {
		all := make([]int, m.numAgents)
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	out := make([]int, 0, len(g))
	for _, a := range g {
		if int(a) < 0 || int(a) >= m.numAgents {
			return nil, fmt.Errorf("kripke: agent %d out of range [0,%d)", a, m.numAgents)
		}
		out = append(out, int(a))
	}
	return out, nil
}

// resolveAgents is resolveGroup without the nil-group allocation: the full
// agent set resolves to the index slice prebuilt with the derived tables.
func (ev *evaluator) resolveAgents(g logic.Group) ([]int, error) {
	if g == nil {
		return ev.t.allAgents, nil
	}
	return ev.m.resolveGroup(g)
}

// Eval returns the set of worlds at which f holds. The formula must be
// closed (no free fixed-point variables).
func (m *Model) Eval(f logic.Formula) (*bitset.Set, error) {
	return m.EvalEnv(f, nil)
}

// EvalEnv evaluates f under an environment binding free fixed-point
// variables to world sets. The returned set is owned by the caller.
func (m *Model) EvalEnv(f logic.Formula, env Env) (*bitset.Set, error) {
	ev := m.getEvaluator()
	defer m.putEvaluator(ev)
	var chain *binding
	for name, set := range env {
		chain = &binding{name: name, set: set, prev: chain}
	}
	s, owned, err := ev.eval(f, chain)
	if err != nil {
		return nil, err
	}
	if !owned {
		// A memoized top-level result is owned by the evaluator as the
		// most recently retired set; un-retire it instead of cloning —
		// the memo table is cleared before the evaluator is pooled, so
		// nothing else will alias it.
		if n := len(ev.retired); n > 0 && ev.retired[n-1] == s {
			ev.retired = ev.retired[:n-1]
			owned = true
		}
	}
	if owned {
		return s, nil // hand the scratch set out of the pool
	}
	return s.Clone(), nil
}

// eval computes the denotation of f. The returned flag reports ownership:
// owned sets are scratch the caller may mutate or release; shared sets
// (valuation columns, memo hits, bindings, constants) must be treated as
// immutable.
func (ev *evaluator) eval(f logic.Formula, env *binding) (*bitset.Set, bool, error) {
	// Atoms: no memoization needed, their lookups are already O(1).
	switch n := f.(type) {
	case logic.Prop:
		if s := ev.m.factShared(n.Name); s != nil {
			return s, false, nil
		}
		return ev.emptySet(), false, nil

	case logic.Truth:
		if n.Value {
			return ev.fullSet(), false, nil
		}
		return ev.emptySet(), false, nil

	case logic.Var:
		if s := env.lookup(n.Name); s != nil {
			return s, false, nil
		}
		return nil, false, fmt.Errorf("kripke: unbound fixed-point variable %s", n.Name)
	}

	// Modal and fixed-point nodes: memoize closed subformulas by
	// structural key within this evaluation, so shared subterms — and in
	// particular closed subformulas of fixed-point bodies, which are
	// revisited once per iteration — run their kernels exactly once.
	// Propositional connectives are not worth the key: recomputing them is
	// a handful of word operations.
	switch f.(type) {
	case logic.Know, logic.Someone, logic.Everyone, logic.Dist, logic.Common,
		logic.Nu, logic.Mu,
		logic.EveryEps, logic.CommonEps, logic.EveryEv, logic.CommonEv,
		logic.EveryTime, logic.CommonTime, logic.Eventually, logic.Always:
		start := len(ev.arena)
		var closed bool
		ev.arena, closed = logic.AppendKey(ev.arena, f, nil)
		if closed {
			if s, ok := ev.memo[string(ev.arena[start:])]; ok {
				ev.arena = ev.arena[:start]
				return s, false, nil
			}
			if ev.shared != nil {
				if s := ev.shared.get(ev.arena[start:]); s != nil {
					ev.memo[string(ev.arena[start:])] = s
					ev.arena = ev.arena[:start]
					return s, false, nil
				}
			}
		}
		s, owned, err := ev.evalCompound(f, env)
		if err == nil && closed {
			if ev.shared != nil {
				// Publish to the batch-wide memo. A winning set's ownership
				// transfers to the memo (it is immutable from here on, and
				// never recycled); a losing duplicate is reclaimed and the
				// winner adopted, so all workers alias one copy.
				winner, won := ev.shared.put(ev.arena[start:], s)
				if !won {
					ev.releaseIf(s, owned)
					s = winner
				}
				ev.memo[string(ev.arena[start:])] = s
				owned = false
			} else {
				ev.memo[string(ev.arena[start:])] = s
				if owned {
					ev.retired = append(ev.retired, s)
					owned = false
				}
			}
		}
		ev.arena = ev.arena[:start]
		return s, owned, err
	}
	return ev.evalCompound(f, env)
}

func (ev *evaluator) evalCompound(f logic.Formula, env *binding) (*bitset.Set, bool, error) {
	switch n := f.(type) {
	case logic.Not:
		s, owned, err := ev.eval(n.F, env)
		if err != nil {
			return nil, false, err
		}
		s = ev.ensureOwned(s, owned)
		s.Not()
		return s, true, nil

	case logic.And:
		var acc *bitset.Set
		for _, c := range n.Fs {
			s, owned, err := ev.eval(c, env)
			if err != nil {
				if acc != nil {
					ev.release(acc)
				}
				return nil, false, err
			}
			if acc == nil {
				acc = ev.ensureOwned(s, owned)
				continue
			}
			acc.And(s)
			ev.releaseIf(s, owned)
		}
		if acc == nil {
			return ev.fullSet(), false, nil // empty conjunction is true
		}
		return acc, true, nil

	case logic.Or:
		var acc *bitset.Set
		for _, c := range n.Fs {
			s, owned, err := ev.eval(c, env)
			if err != nil {
				if acc != nil {
					ev.release(acc)
				}
				return nil, false, err
			}
			if acc == nil {
				acc = ev.ensureOwned(s, owned)
				continue
			}
			acc.Or(s)
			ev.releaseIf(s, owned)
		}
		if acc == nil {
			return ev.emptySet(), false, nil // empty disjunction is false
		}
		return acc, true, nil

	case logic.Implies:
		ant, owned, err := ev.eval(n.Ant, env)
		if err != nil {
			return nil, false, err
		}
		ant = ev.ensureOwned(ant, owned)
		cons, cOwned, err := ev.eval(n.Cons, env)
		if err != nil {
			ev.release(ant)
			return nil, false, err
		}
		ant.Not()
		ant.Or(cons)
		ev.releaseIf(cons, cOwned)
		return ant, true, nil

	case logic.Iff:
		l, owned, err := ev.eval(n.L, env)
		if err != nil {
			return nil, false, err
		}
		l = ev.ensureOwned(l, owned)
		r, rOwned, err := ev.eval(n.R, env)
		if err != nil {
			ev.release(l)
			return nil, false, err
		}
		// l ≡ r is ¬(l ⊕ r).
		l.Xor(r)
		l.Not()
		ev.releaseIf(r, rOwned)
		return l, true, nil

	case logic.Know:
		if int(n.Agent) < 0 || int(n.Agent) >= ev.m.numAgents {
			return nil, false, fmt.Errorf("kripke: agent %d out of range [0,%d)", n.Agent, ev.m.numAgents)
		}
		phi, owned, err := ev.eval(n.F, env)
		if err != nil {
			return nil, false, err
		}
		dst := ev.alloc()
		ev.m.part(ev.t, int(n.Agent)).knowInto(dst, phi, &ev.ks)
		ev.releaseIf(phi, owned)
		return dst, true, nil

	case logic.Someone:
		agents, err := ev.resolveAgents(n.G)
		if err != nil {
			return nil, false, err
		}
		phi, owned, err := ev.eval(n.F, env)
		if err != nil {
			return nil, false, err
		}
		dst := ev.alloc()
		if ev.m.kernelParallel(agents) {
			dst.Clear()
			ev.m.parallelKnow(ev.t, agents, dst, phi, false)
		} else {
			dst.Clear()
			tmp := ev.alloc()
			for _, a := range agents {
				ev.m.part(ev.t, a).knowInto(tmp, phi, &ev.ks)
				dst.Or(tmp)
			}
			ev.release(tmp)
		}
		ev.releaseIf(phi, owned)
		return dst, true, nil

	case logic.Everyone:
		agents, err := ev.resolveAgents(n.G)
		if err != nil {
			return nil, false, err
		}
		phi, owned, err := ev.eval(n.F, env)
		if err != nil {
			return nil, false, err
		}
		dst := ev.alloc()
		dst.Fill()
		if ev.m.kernelParallel(agents) {
			ev.m.parallelKnow(ev.t, agents, dst, phi, true)
		} else {
			for _, a := range agents {
				ev.m.part(ev.t, a).andKnowInto(dst, phi, &ev.ks)
			}
		}
		ev.releaseIf(phi, owned)
		return dst, true, nil

	case logic.Dist:
		agents, err := ev.resolveAgents(n.G)
		if err != nil {
			return nil, false, err
		}
		phi, owned, err := ev.eval(n.F, env)
		if err != nil {
			return nil, false, err
		}
		if len(agents) == 0 {
			return phi, owned, nil
		}
		p := ev.m.jointPartition(ev.t, agents, ev.keyScratch())
		dst := ev.alloc()
		p.knowInto(dst, phi, &ev.ks)
		ev.releaseIf(phi, owned)
		return dst, true, nil

	case logic.Common:
		agents, err := ev.resolveAgents(n.G)
		if err != nil {
			return nil, false, err
		}
		phi, owned, err := ev.eval(n.F, env)
		if err != nil {
			return nil, false, err
		}
		if len(agents) == 0 {
			return phi, owned, nil
		}
		p := ev.m.reachPartition(ev.t, agents, ev.keyScratch())
		dst := ev.alloc()
		p.knowInto(dst, phi, &ev.ks)
		ev.releaseIf(phi, owned)
		return dst, true, nil

	case logic.Nu:
		return ev.fixpoint(n.Var, n.Body, env, true)

	case logic.Mu:
		return ev.fixpoint(n.Var, n.Body, env, false)

	case logic.EveryEps, logic.CommonEps, logic.EveryEv, logic.CommonEv,
		logic.EveryTime, logic.CommonTime, logic.Eventually, logic.Always:
		if ev.m.Temporal == nil {
			return nil, false, fmt.Errorf("%w: %s", ErrTemporal, f)
		}
		rec := func(sub logic.Formula) (*bitset.Set, error) {
			s, owned, err := ev.eval(sub, env)
			if err != nil {
				return nil, err
			}
			if !owned {
				// The temporal semantics may mutate or retain the set;
				// hand it an independent copy of shared state.
				return s.Clone(), nil
			}
			return s, nil
		}
		s, err := ev.m.Temporal.EvalTemporal(ev.m, f, rec)
		if err != nil {
			return nil, false, err
		}
		return s, true, nil

	default:
		return nil, false, fmt.Errorf("kripke: unsupported formula %T", f)
	}
}

// fixpoint computes νX.body (greatest = true) or μX.body (least). Greatest
// fixed points whose body has the support shape op_G(φ ∧ X) — the shape of
// the C_G characterization — take the incremental worklist path of
// worklist.go, which propagates only the worlds that left the approximant
// instead of re-evaluating the whole body per step. Everything else falls
// back to the naive Knaster–Tarski iteration. Both paths report the same
// iteration count in ev.fixIters.
func (ev *evaluator) fixpoint(name string, body logic.Formula, env *binding, greatest bool) (*bitset.Set, bool, error) {
	if p := logic.PolarityOf(body, name); p == logic.PolarityNegative || p == logic.PolarityMixed {
		return nil, false, fmt.Errorf("kripke: %s occurs non-positively in fixed point body %s", name, body)
	}
	if greatest {
		if mod, phi, ok := worklistShape(name, body); ok {
			// φ must be evaluated before resolving the partition list:
			// a nested supported ν inside φ re-enters worklistParts and
			// would clobber the shared ev.wparts scratch.
			phiSet, owned, err := ev.eval(phi, env)
			if err != nil {
				return nil, false, err
			}
			if parts, ok := ev.worklistParts(mod); ok {
				res := ev.fixpointWorklist(parts, phiSet)
				ev.releaseIf(phiSet, owned)
				return res, true, nil
			}
			ev.releaseIf(phiSet, owned)
		}
	}
	return ev.fixpointNaive(name, body, env, greatest)
}

// fixpointNaive is the standard Knaster–Tarski iteration of Appendix A. On
// a finite model the iteration converges in at most NumWorlds+1 steps for
// monotone bodies; non-monotone bodies (which WellFormed rejects) would
// oscillate, so the iteration is capped and an error returned if no fixed
// point is reached.
//
// The iteration runs in place: the binding's set is a single scratch
// buffer the next approximant is copied into, and closed subformulas of
// the body hit the evaluator memo, so each step costs one body evaluation
// over the open part of the formula and no allocation.
func (ev *evaluator) fixpointNaive(name string, body logic.Formula, env *binding, greatest bool) (*bitset.Set, bool, error) {
	cur := ev.alloc()
	if greatest {
		cur.Fill()
	} else {
		cur.Clear()
	}
	b := &binding{name: name, set: cur, prev: env}
	for iter := 0; iter <= ev.m.numWorlds+1; iter++ {
		next, owned, err := ev.eval(body, b)
		if err != nil {
			ev.release(cur)
			return nil, false, err
		}
		if next.Equal(cur) {
			ev.releaseIf(next, owned)
			ev.fixIters = iter
			return cur, true, nil
		}
		cur.Copy(next)
		ev.releaseIf(next, owned)
	}
	ev.release(cur)
	return nil, false, fmt.Errorf("kripke: fixed point for %s did not converge", name)
}

// FixpointIterations computes νX.body and additionally reports the number
// of iterations needed to converge (for the Appendix A experiments).
func (m *Model) FixpointIterations(name string, body logic.Formula) (*bitset.Set, int, error) {
	ev := m.getEvaluator()
	defer m.putEvaluator(ev)
	s, owned, err := ev.fixpoint(name, body, nil, true)
	if err != nil {
		return nil, 0, err
	}
	if !owned {
		s = s.Clone()
	}
	return s, ev.fixIters, nil
}

// Holds reports whether f holds at world w.
func (m *Model) Holds(f logic.Formula, w int) (bool, error) {
	s, err := m.Eval(f)
	if err != nil {
		return false, err
	}
	return s.Contains(w), nil
}

// Valid reports whether f holds at every world of the model (the paper's
// "valid in the system").
func (m *Model) Valid(f logic.Formula) (bool, error) {
	s, err := m.Eval(f)
	if err != nil {
		return false, err
	}
	return s.IsFull(), nil
}

// Announce returns the model that results from a truthful public
// announcement of f: the submodel restricted to the worlds where f holds.
// This is the update performed by the father's announcement in the muddy
// children puzzle (Section 2) and by each round of simultaneous answers.
func (m *Model) Announce(f logic.Formula) (*Model, error) {
	s, err := m.Eval(f)
	if err != nil {
		return nil, err
	}
	return m.Restrict(s), nil
}

// CommonKnowledgeByIteration evaluates C_G φ via the greatest fixed point
// νX.E_G(φ ∧ X) rather than via reachability components. Used by the
// Appendix A experiments to confirm the two characterizations agree, and by
// the ablation benchmarks.
func (m *Model) CommonKnowledgeByIteration(g logic.Group, f logic.Formula) (*bitset.Set, int, error) {
	body := logic.E(g, logic.Conj(f, logic.X("__ck")))
	return m.FixpointIterations("__ck", body)
}

// EKPrefix returns the sets E^1_G φ, E^2_G φ, ..., E^k_G φ, computed
// incrementally (each level applies one "everyone knows" step to the
// previous level's world set).
func (m *Model) EKPrefix(g logic.Group, f logic.Formula, k int) ([]*bitset.Set, error) {
	agents, err := m.resolveGroup(g)
	if err != nil {
		return nil, err
	}
	cur, err := m.Eval(f)
	if err != nil {
		return nil, err
	}
	ev := m.getEvaluator()
	defer m.putEvaluator(ev)
	out := make([]*bitset.Set, 0, k)
	for i := 1; i <= k; i++ {
		next := bitset.New(m.numWorlds) // escapes to the caller
		m.everyoneInto(ev.t, agents, next, cur, &ev.ks)
		out = append(out, next)
		cur = next
	}
	return out, nil
}
