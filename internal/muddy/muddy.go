// Package muddy implements the muddy children puzzle of Section 2 of
// Halpern & Moses, the paper's opening example of the difference between
// E^k-knowledge and common knowledge.
//
// The epistemic model is the standard one: with n children, the worlds are
// the 2^n muddiness assignments; child i cannot distinguish two worlds that
// differ only in its own bit (it sees every forehead but its own). The
// father's public announcement of m ("at least one of you is muddy") is a
// public-announcement update (model restriction); each round of
// simultaneous answers to "do you know whether you are muddy?" is likewise
// a public announcement of the full answer vector.
//
// Construction is columnar: the muddiness facts are periodic bit patterns
// written whole words at a time, and child i's view partition is installed
// directly as dense class ids (drop bit i of the world index), so building
// the 2^n-world model costs O(n·2^n/64) word writes plus one O(n·2^n)
// arithmetic pass — no per-world maps and no union-find. The actual world
// is tracked through announcements by its rank in the kept set rather than
// by name lookup.
//
// The package reproduces the puzzle's quantitative behaviour: with the
// announcement, the muddy children first answer "yes" in round k (k = number
// of muddy children) after k−1 rounds of unanimous "no"; without it — or
// with only private announcements when k ≥ 2 — they never do.
package muddy

import (
	"fmt"
	"math/bits"
	"strconv"
	"time"

	"repro/internal/bitset"
	"repro/internal/kripke"
	"repro/internal/logic"
)

// MaxChildren is the largest supported puzzle size; the model has 2^n
// worlds, so n=20 is a million-world model.
const MaxChildren = 20

// Puzzle is a muddy children instance: the current epistemic model plus the
// actual world (the true muddiness assignment).
type Puzzle struct {
	n      int
	actual int // bitmask: bit i set iff child i is muddy
	// actualWorld is the index of the actual world in the current model,
	// maintained across announcements; -1 if an inconsistent update
	// eliminated it.
	actualWorld int
	model       *kripke.Model
	// fromScratch forces every announcement to rebuild the model's derived
	// state from scratch instead of threading it through Restrict — the
	// ablation baseline for the incremental chain path, never the default.
	fromScratch bool
	// parallel is the worker count of the per-round knowledge batch
	// (kripke.BatchWorkers semantics: 0 = one per core, 1 = serial).
	parallel int
}

// MuddyProp returns the ground-fact name for "child i is muddy".
func MuddyProp(i int) string { return "muddy" + strconv.Itoa(i) }

// MProp is the ground fact m: "at least one child is muddy".
const MProp = "m"

// muddyPattern returns the 64-bit word wi of the membership column of
// "child i is muddy" over worlds indexed by muddiness mask: bit w of the
// column is set iff w has bit i. For i < 6 the pattern repeats inside
// every word; for i >= 6 whole words are all-ones or all-zeros.
func muddyPattern(i, wi int) uint64 {
	if i >= 6 {
		if (wi>>(i-6))&1 != 0 {
			return ^uint64(0)
		}
		return 0
	}
	// Alternating runs of 2^i bits, starting with zeros.
	var p uint64
	switch i {
	case 0:
		p = 0xAAAAAAAAAAAAAAAA
	case 1:
		p = 0xCCCCCCCCCCCCCCCC
	case 2:
		p = 0xF0F0F0F0F0F0F0F0
	case 3:
		p = 0xFF00FF00FF00FF00
	case 4:
		p = 0xFFFF0000FFFF0000
	case 5:
		p = 0xFFFFFFFF00000000
	}
	return p
}

// New creates a puzzle with n children, the listed ones muddy.
func New(n int, muddy []int) (*Puzzle, error) {
	if n < 1 || n > MaxChildren {
		return nil, fmt.Errorf("muddy: n = %d out of supported range [1, %d]", n, MaxChildren)
	}
	actual := 0
	for _, c := range muddy {
		if c < 0 || c >= n {
			return nil, fmt.Errorf("muddy: child %d out of range [0, %d)", c, n)
		}
		actual |= 1 << c
	}
	worlds := 1 << n
	b := kripke.NewBuilder(worlds, n)

	// m holds everywhere except the all-clean world 0.
	mcol := b.Column(MProp)
	mcol.Fill()
	mcol.Remove(0)

	// muddy_i is a periodic pattern over the mask-indexed worlds.
	for i := 0; i < n; i++ {
		col := b.Column(MuddyProp(i))
		cw := col.Words()
		for wi := range cw {
			cw[wi] = muddyPattern(i, wi) & col.WordMask(wi)
		}
	}

	// Child i's view: every forehead but its own, i.e. the world index
	// with bit i dropped — already a dense class id.
	for i := 0; i < n; i++ {
		ids := make([]int32, worlds)
		low := (1 << i) - 1
		for w := 0; w < worlds; w++ {
			ids[w] = int32((w>>(i+1))<<i | w&low)
		}
		b.SetPartition(i, ids, worlds>>1)
	}
	return &Puzzle{n: n, actual: actual, actualWorld: actual, model: b.Build()}, nil
}

// N returns the number of children.
func (p *Puzzle) N() int { return p.n }

// NumMuddy returns the number of muddy children k.
func (p *Puzzle) NumMuddy() int { return bits.OnesCount(uint(p.actual)) }

// Model returns the current epistemic model (shared, do not mutate).
func (p *Puzzle) Model() *kripke.Model { return p.model }

// ActualWorld returns the index of the actual world in the current model.
func (p *Puzzle) ActualWorld() (int, error) {
	if p.actualWorld < 0 {
		return 0, fmt.Errorf("muddy: actual world eliminated — inconsistent update")
	}
	return p.actualWorld, nil
}

// SetIncremental selects between the incremental announcement path (the
// default: Restrict threads memoized joint views and reachability seeds
// into each round's submodel) and the from-scratch ablation baseline
// (every round rebuilds derived state on first use).
func (p *Puzzle) SetIncremental(on bool) { p.fromScratch = !on }

// SetParallel sets the worker count of the per-round knowledge batch: each
// round evaluates the n "do you know?" formulas with kripke.EvalBatch, and
// workers fan them out over the shared round model. 0 (the default) means
// one worker per core; 1 forces the serial loop.
func (p *Puzzle) SetParallel(workers int) { p.parallel = workers }

// announce applies a truthful public announcement given as a world set,
// tracking the actual world through the restriction by rank.
func (p *Puzzle) announce(keep *bitset.Set) {
	if p.actualWorld >= 0 {
		if keep.Contains(p.actualWorld) {
			p.actualWorld = keep.Rank(p.actualWorld)
		} else {
			p.actualWorld = -1
		}
	}
	if p.fromScratch {
		p.model = p.model.RestrictOpts(keep, kripke.RestrictOptions{})
	} else {
		p.model = p.model.Restrict(keep)
	}
}

// HoldsNow reports whether f holds at the actual world of the current model.
func (p *Puzzle) HoldsNow(f logic.Formula) (bool, error) {
	w, err := p.ActualWorld()
	if err != nil {
		return false, err
	}
	return p.model.Holds(f, w)
}

// FatherAnnounces performs the father's public announcement of m. It fails
// if m is false at the actual world (the father only announces truths).
func (p *Puzzle) FatherAnnounces() error {
	if p.actual == 0 {
		return fmt.Errorf("muddy: father cannot truthfully announce m with no muddy children")
	}
	keep, err := p.model.Eval(logic.P(MProp))
	if err != nil {
		return err
	}
	p.announce(keep)
	return nil
}

// FatherTellsPrivately gives each child, privately and unobserved by the
// others, the information m — the Clark–Marshall copresence contrast of
// Section 3. The tellings are secret: no child knows whether any other
// child was told. The epistemic model therefore expands to worlds
// (muddiness, told-set): the told-set ranges over all subsets the father
// could truthfully have informed (every subset when m holds, only the empty
// set when it does not), and child i's view consists of the foreheads it
// sees plus its own told bit. It must be called on a fresh puzzle (before
// any announcement or round). Supported for n <= 8 (the model has up to
// 4^n worlds).
func (p *Puzzle) FatherTellsPrivately() error {
	if p.actual == 0 {
		return fmt.Errorf("muddy: father cannot truthfully tell m with no muddy children")
	}
	if p.n > 8 {
		return fmt.Errorf("muddy: private announcements supported for n <= 8, got %d", p.n)
	}
	if p.model.NumWorlds() != 1<<p.n {
		return fmt.Errorf("muddy: private announcement requires a fresh puzzle")
	}
	type world struct{ mask, told int }
	var ws []world
	actualIdx := -1
	allTold := (1 << p.n) - 1
	for mask := 0; mask < 1<<p.n; mask++ {
		for told := 0; told < 1<<p.n; told++ {
			if mask == 0 && told != 0 {
				continue // the father cannot truthfully tell m
			}
			if mask == p.actual && told == allTold {
				actualIdx = len(ws)
			}
			ws = append(ws, world{mask: mask, told: told})
		}
	}
	b := kripke.NewBuilder(len(ws), p.n)
	mcol := b.Column(MProp)
	muddyCols := make([]*bitset.Set, p.n)
	for i := range muddyCols {
		muddyCols[i] = b.Column(MuddyProp(i))
	}
	for w, ww := range ws {
		b.SetName(w, fmt.Sprintf("%d@%d", ww.mask, ww.told))
		if ww.mask != 0 {
			mcol.Add(w)
		}
		for i := 0; i < p.n; i++ {
			if ww.mask&(1<<i) != 0 {
				muddyCols[i].Add(w)
			}
		}
	}
	// Child i's view: the foreheads of the others plus its own told bit
	// (and the content m if told, which the world structure encodes: a
	// told child inhabits only m-worlds). The view key packs into n+1
	// bits, so the class ids come from a renumbering pass, no hashing.
	mark := make([]int32, 1<<(p.n+1))
	for i := 0; i < p.n; i++ {
		for k := range mark {
			mark[k] = -1
		}
		ids := make([]int32, len(ws))
		next := int32(0)
		for w, ww := range ws {
			key := (ww.mask&^(1<<i))<<1 | (ww.told>>i)&1
			if mark[key] < 0 {
				mark[key] = next
				next++
			}
			ids[w] = mark[key]
		}
		b.SetPartition(i, ids, int(next))
	}
	p.model = b.Build()
	p.actualWorld = actualIdx
	return nil
}

// knowsOwnState is the formula "child i knows whether it is muddy":
// K_i muddy_i ∨ K_i ¬muddy_i.
func knowsOwnState(i int) logic.Formula {
	mi := logic.P(MuddyProp(i))
	return logic.Disj(logic.K(logic.Agent(i), mi), logic.K(logic.Agent(i), logic.Neg(mi)))
}

// RoundResult records one round of simultaneous answers.
type RoundResult struct {
	// Yes[i] is true iff child i answered "yes, I can prove whether my
	// forehead is muddy".
	Yes []bool
	// EvalTime is the time spent evaluating the children's knowledge (the
	// n "do you know?" formulas) on the current model.
	EvalTime time.Duration
	// BuildTime is the time spent applying the public announcement of the
	// answer vector (restricting the model).
	BuildTime time.Duration
}

// AnyYes reports whether any child answered yes.
func (r RoundResult) AnyYes() bool {
	for _, y := range r.Yes {
		if y {
			return true
		}
	}
	return false
}

// Round asks every child simultaneously "can you prove whether you are
// muddy?", collects the answers at the actual world, and updates the model
// with the public announcement of the full answer vector.
func (p *Puzzle) Round() (RoundResult, error) {
	actual, err := p.ActualWorld()
	if err != nil {
		return RoundResult{}, err
	}
	evalStart := time.Now()
	// Build all children's partition tables up front (sharded across
	// goroutines on large models) so the per-child evaluations below don't
	// construct them one at a time.
	if err := p.model.PrepareAgents(nil); err != nil {
		return RoundResult{}, err
	}
	// knowSets[i] = worlds where child i would answer yes. The n per-child
	// formulas are independent queries against the shared round model —
	// exactly the batch shape EvalBatch fans out across cores.
	fs := make([]logic.Formula, p.n)
	for i := 0; i < p.n; i++ {
		fs[i] = knowsOwnState(i)
	}
	knowSets, err := p.model.EvalBatch(fs, kripke.BatchWorkers(p.parallel))
	if err != nil {
		return RoundResult{}, err
	}
	res := RoundResult{Yes: make([]bool, p.n)}
	for i := 0; i < p.n; i++ {
		res.Yes[i] = knowSets[i].Contains(actual)
	}
	res.EvalTime = time.Since(evalStart)
	// Public announcement of the answer vector: keep the worlds whose
	// hypothetical answers match the actual ones.
	buildStart := time.Now()
	keep := bitset.NewFull(p.model.NumWorlds())
	for i := 0; i < p.n; i++ {
		if res.Yes[i] {
			keep.And(knowSets[i])
		} else {
			keep.AndNot(knowSets[i])
		}
	}
	p.announce(keep)
	res.BuildTime = time.Since(buildStart)
	return res, nil
}

// SimResult summarizes a full simulation.
type SimResult struct {
	N, K int
	// FirstYesRound is the 1-based round at which some child first
	// answered yes, or 0 if none did within the round budget.
	FirstYesRound int
	// YesAreMuddy reports whether the first yes-sayers are exactly the
	// muddy children.
	YesAreMuddy bool
	Rounds      []RoundResult
	// CommonM, present only when SimOptions.TrackCommon is set, records
	// whether C m held at the actual world after each round's announcement
	// (one entry per round). With the public announcement it is true in
	// every round — common knowledge, once announced, survives the chain.
	CommonM []bool
	// BuildTime is the time spent constructing the initial model and
	// applying the father's announcement (if any).
	BuildTime time.Duration
}

// AnnouncementMode selects how the father communicates m.
type AnnouncementMode int

// Announcement modes.
const (
	// NoAnnouncement: the father says nothing.
	NoAnnouncement AnnouncementMode = iota + 1
	// PublicAnnouncement: the father publicly announces m (the puzzle).
	PublicAnnouncement
	// PrivateAnnouncement: the father tells each child m privately.
	PrivateAnnouncement
)

// SimOptions tunes a simulation beyond the announcement mode.
type SimOptions struct {
	// Incremental selects the announcement path of the round loop: true
	// (what Simulate uses) threads derived state through each Restrict,
	// false forces the from-scratch ablation baseline.
	Incremental bool
	// TrackCommon evaluates C m at the actual world after every round and
	// records the verdicts in SimResult.CommonM. The per-round C
	// evaluation is exactly the workload the inherited reachability seeds
	// accelerate.
	TrackCommon bool
	// Parallel is the worker count of the per-round knowledge batch
	// (kripke.BatchWorkers semantics): 0, the zero value, fans the n
	// per-child evaluations out with one worker per core; 1 forces the
	// serial loop; larger values cap the pool.
	Parallel int
}

// Simulate runs the puzzle with n children, the listed ones muddy, under
// the given announcement mode, for at most maxRounds rounds, on the
// incremental announcement path.
func Simulate(n int, muddy []int, mode AnnouncementMode, maxRounds int) (SimResult, error) {
	return SimulateOpts(n, muddy, mode, maxRounds, SimOptions{Incremental: true})
}

// SimulateOpts is Simulate with explicit options.
func SimulateOpts(n int, muddy []int, mode AnnouncementMode, maxRounds int, opts SimOptions) (SimResult, error) {
	buildStart := time.Now()
	p, err := New(n, muddy)
	if err != nil {
		return SimResult{}, err
	}
	p.SetIncremental(opts.Incremental)
	p.SetParallel(opts.Parallel)
	switch mode {
	case NoAnnouncement:
	case PublicAnnouncement:
		if err := p.FatherAnnounces(); err != nil {
			return SimResult{}, err
		}
	case PrivateAnnouncement:
		if err := p.FatherTellsPrivately(); err != nil {
			return SimResult{}, err
		}
	default:
		return SimResult{}, fmt.Errorf("muddy: unknown announcement mode %d", mode)
	}

	res := SimResult{N: n, K: p.NumMuddy(), BuildTime: time.Since(buildStart)}
	for round := 1; round <= maxRounds; round++ {
		r, err := p.Round()
		if err != nil {
			return res, err
		}
		res.Rounds = append(res.Rounds, r)
		if opts.TrackCommon {
			cm, err := p.CommonKnowledgeOfM()
			if err != nil {
				return res, err
			}
			res.CommonM = append(res.CommonM, cm)
		}
		if r.AnyYes() {
			res.FirstYesRound = round
			res.YesAreMuddy = true
			for i := 0; i < n; i++ {
				if r.Yes[i] != (p.actual&(1<<i) != 0) {
					res.YesAreMuddy = false
				}
			}
			return res, nil
		}
	}
	return res, nil
}

// ELevel returns the largest j <= maxK such that E^j m holds at the actual
// world of the current model (0 if even E^1 m fails).
func (p *Puzzle) ELevel(maxK int) (int, error) {
	actual, err := p.ActualWorld()
	if err != nil {
		return 0, err
	}
	sets, err := p.model.EKPrefix(nil, logic.P(MProp), maxK)
	if err != nil {
		return 0, err
	}
	level := 0
	for j, s := range sets {
		if s.Contains(actual) {
			level = j + 1
		} else {
			break
		}
	}
	return level, nil
}

// CommonKnowledgeOfM reports whether C m holds at the actual world.
func (p *Puzzle) CommonKnowledgeOfM() (bool, error) {
	return p.HoldsNow(logic.C(nil, logic.P(MProp)))
}
