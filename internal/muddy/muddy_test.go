package muddy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := New(25, nil); err == nil {
		t.Error("n=25 accepted")
	}
	if _, err := New(3, []int{5}); err == nil {
		t.Error("out-of-range child accepted")
	}
	p, err := New(3, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumMuddy() != 2 {
		t.Errorf("NumMuddy = %d, want 2", p.NumMuddy())
	}
	if p.Model().NumWorlds() != 8 {
		t.Errorf("NumWorlds = %d, want 8", p.Model().NumWorlds())
	}
}

func TestChildSeesOthersNotSelf(t *testing.T) {
	p, err := New(3, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Child 0 knows child 1 is muddy and child 2 is clean, but not its own
	// state.
	checks := []struct {
		src  string
		want bool
	}{
		{"K0 muddy1", true},
		{"K0 ~muddy2", true},
		{"K0 muddy0", false},
		{"K0 ~muddy0", false},
		{"K2 muddy0", true},
		{"K2 muddy1", true},
	}
	for _, c := range checks {
		got, err := p.HoldsNow(logic.MustParse(c.src))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestELevelBeforeAnnouncement(t *testing.T) {
	// Section 2/3: with k muddy children, E^{k-1} m holds before the
	// father speaks and E^k m does not.
	for k := 1; k <= 5; k++ {
		n := k + 2
		muddySet := make([]int, k)
		for i := range muddySet {
			muddySet[i] = i
		}
		p, err := New(n, muddySet)
		if err != nil {
			t.Fatal(err)
		}
		level, err := p.ELevel(k + 2)
		if err != nil {
			t.Fatal(err)
		}
		if level != k-1 {
			t.Errorf("k=%d: E-level before announcement = %d, want %d", k, level, k-1)
		}
	}
}

func TestAnnouncementCreatesCommonKnowledge(t *testing.T) {
	p, err := New(4, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := p.CommonKnowledgeOfM()
	if err != nil {
		t.Fatal(err)
	}
	if ck {
		t.Error("C m should not hold before the announcement")
	}
	if err := p.FatherAnnounces(); err != nil {
		t.Fatal(err)
	}
	ck, err = p.CommonKnowledgeOfM()
	if err != nil {
		t.Fatal(err)
	}
	if !ck {
		t.Error("C m should hold after the public announcement")
	}
}

func TestPrivateAnnouncementNoCommonKnowledge(t *testing.T) {
	// k >= 2: every child already knows m, so private announcements change
	// nothing; in particular C m still fails.
	p, err := New(4, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.FatherTellsPrivately(); err != nil {
		t.Fatal(err)
	}
	ck, err := p.CommonKnowledgeOfM()
	if err != nil {
		t.Fatal(err)
	}
	if ck {
		t.Error("C m should not hold after private announcements")
	}
	// E m does hold (it held already).
	em, err := p.HoldsNow(logic.MustParse("E m"))
	if err != nil {
		t.Fatal(err)
	}
	if !em {
		t.Error("E m should hold with k=2")
	}
}

func TestPrivateAnnouncementHelpsSingleMuddyChild(t *testing.T) {
	// k = 1: the muddy child sees no mud, so being told m privately lets
	// it deduce its own muddiness — but the group still lacks C m.
	p, err := New(3, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.FatherTellsPrivately(); err != nil {
		t.Fatal(err)
	}
	knows, err := p.HoldsNow(logic.MustParse("K1 muddy1"))
	if err != nil {
		t.Fatal(err)
	}
	if !knows {
		t.Error("the single muddy child should deduce its state from a private m")
	}
	ck, _ := p.CommonKnowledgeOfM()
	if ck {
		t.Error("C m should still fail after private announcements")
	}
}

func TestSimulateClassicBehaviour(t *testing.T) {
	// The puzzle's table: with the announcement, first "yes" in round k,
	// and the yes-sayers are exactly the muddy children.
	for _, tc := range []struct{ n, k int }{
		{3, 1}, {3, 2}, {3, 3}, {4, 2}, {5, 3}, {6, 4}, {7, 2},
	} {
		muddySet := make([]int, tc.k)
		for i := range muddySet {
			muddySet[i] = i
		}
		res, err := Simulate(tc.n, muddySet, PublicAnnouncement, tc.n+2)
		if err != nil {
			t.Fatal(err)
		}
		if res.FirstYesRound != tc.k {
			t.Errorf("n=%d k=%d: first yes in round %d, want %d", tc.n, tc.k, res.FirstYesRound, tc.k)
		}
		if !res.YesAreMuddy {
			t.Errorf("n=%d k=%d: yes-sayers are not exactly the muddy children", tc.n, tc.k)
		}
		// All earlier rounds are unanimous "no".
		for r := 0; r < tc.k-1; r++ {
			if res.Rounds[r].AnyYes() {
				t.Errorf("n=%d k=%d: unexpected yes in round %d", tc.n, tc.k, r+1)
			}
		}
	}
}

func TestSimulateWithoutAnnouncementNeverTerminates(t *testing.T) {
	// The subtle half of Section 2: without the father's announcement the
	// children never learn anything, even after many rounds.
	for _, tc := range []struct{ n, k int }{
		{3, 1}, {3, 2}, {4, 3}, {5, 2},
	} {
		muddySet := make([]int, tc.k)
		for i := range muddySet {
			muddySet[i] = i
		}
		res, err := Simulate(tc.n, muddySet, NoAnnouncement, tc.n+4)
		if err != nil {
			t.Fatal(err)
		}
		if res.FirstYesRound != 0 {
			t.Errorf("n=%d k=%d: yes in round %d without announcement", tc.n, tc.k, res.FirstYesRound)
		}
	}
}

func TestSimulatePrivateAnnouncementStallsForKAtLeast2(t *testing.T) {
	res, err := Simulate(4, []int{0, 1, 2}, PrivateAnnouncement, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstYesRound != 0 {
		t.Errorf("private announcement with k=3 should not help, yes in round %d", res.FirstYesRound)
	}
	// With k = 1 the muddy child answers immediately.
	res, err = Simulate(4, []int{2}, PrivateAnnouncement, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstYesRound != 1 {
		t.Errorf("private announcement with k=1: yes in round %d, want 1", res.FirstYesRound)
	}
}

func TestCleanChildrenLearnInRoundKPlus1(t *testing.T) {
	// After the muddy children say yes in round k, the clean children know
	// their own state in round k+1.
	p, err := New(4, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.FatherAnnounces(); err != nil {
		t.Fatal(err)
	}
	var last RoundResult
	for round := 1; round <= 3; round++ {
		last, err = p.Round()
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if !last.Yes[i] {
			t.Errorf("child %d should know its state in round k+1", i)
		}
	}
}

func TestAnnounceFalseFactRejected(t *testing.T) {
	p, err := New(3, nil) // nobody muddy
	if err != nil {
		t.Fatal(err)
	}
	if err := p.FatherAnnounces(); err == nil {
		t.Error("announcing a false m should fail")
	}
	if err := p.FatherTellsPrivately(); err == nil {
		t.Error("privately telling a false m should fail")
	}
}

// TestQuickSimulationMatchesTheory: for random n and muddy sets, the first
// yes round equals k and yes-sayers are the muddy children.
func TestQuickSimulationMatchesTheory(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6) // 2..7
		k := 1 + rng.Intn(n)
		perm := rng.Perm(n)
		muddySet := perm[:k]
		res, err := Simulate(n, muddySet, PublicAnnouncement, n+2)
		if err != nil {
			t.Log(err)
			return false
		}
		return res.FirstYesRound == k && res.YesAreMuddy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSimulate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(8, []int{0, 1, 2, 3}, PublicAnnouncement, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildModel(b *testing.B) {
	muddySet := []int{0, 1, 2, 3, 4}
	for i := 0; i < b.N; i++ {
		if _, err := New(12, muddySet); err != nil {
			b.Fatal(err)
		}
	}
}
