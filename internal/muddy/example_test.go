package muddy_test

import (
	"fmt"

	"repro/internal/muddy"
)

// ExamplePuzzle_Round plays the Section 2 puzzle round by round: four
// children, two muddy. After the father's announcement each round asks
// every child simultaneously "can you prove whether you are muddy?" and
// publicly announces the answer vector; with k = 2 muddy children, the
// muddy ones prove their state in round k exactly as Theorem 1 predicts.
func ExamplePuzzle_Round() {
	p, err := muddy.New(4, []int{1, 3})
	if err != nil {
		panic(err)
	}
	if err := p.FatherAnnounces(); err != nil {
		panic(err)
	}
	for round := 1; ; round++ {
		res, err := p.Round()
		if err != nil {
			panic(err)
		}
		var yes []int
		for child, y := range res.Yes {
			if y {
				yes = append(yes, child)
			}
		}
		if len(yes) == 0 {
			fmt.Printf("round %d: every child answers no\n", round)
			continue
		}
		fmt.Printf("round %d: children %v answer yes\n", round, yes)
		break
	}
	// Output:
	// round 1: every child answers no
	// round 2: children [1 3] answer yes
}
