package muddy

import (
	"reflect"
	"testing"
)

// TestSimulateOptsIncrementalMatchesScratch pins the two announcement
// paths of the round loop to each other: the incremental Restrict (joint
// views and reachability seeds threaded through every round) must be
// observationally identical to the from-scratch baseline, answers, common
// -knowledge verdicts and termination round alike.
func TestSimulateOptsIncrementalMatchesScratch(t *testing.T) {
	cases := []struct {
		n     int
		muddy []int
	}{
		{3, []int{1}},
		{5, []int{0, 2}},
		{6, []int{0, 1, 2, 3}},
		{8, []int{3, 4, 5}},
	}
	for _, tc := range cases {
		inc, err := SimulateOpts(tc.n, tc.muddy, PublicAnnouncement, tc.n+2,
			SimOptions{Incremental: true, TrackCommon: true})
		if err != nil {
			t.Fatalf("n=%d incremental: %v", tc.n, err)
		}
		scr, err := SimulateOpts(tc.n, tc.muddy, PublicAnnouncement, tc.n+2,
			SimOptions{Incremental: false, TrackCommon: true})
		if err != nil {
			t.Fatalf("n=%d from-scratch: %v", tc.n, err)
		}
		if inc.FirstYesRound != scr.FirstYesRound || inc.YesAreMuddy != scr.YesAreMuddy {
			t.Fatalf("n=%d: outcomes diverged: incremental %+v, from-scratch %+v", tc.n, inc, scr)
		}
		for i := range inc.Rounds {
			if !reflect.DeepEqual(inc.Rounds[i].Yes, scr.Rounds[i].Yes) {
				t.Fatalf("n=%d round %d: answers diverged: %v vs %v",
					tc.n, i+1, inc.Rounds[i].Yes, scr.Rounds[i].Yes)
			}
		}
		if !reflect.DeepEqual(inc.CommonM, scr.CommonM) {
			t.Fatalf("n=%d: common-knowledge track diverged: %v vs %v", tc.n, inc.CommonM, scr.CommonM)
		}
	}
}

// TestTrackCommonAfterPublicAnnouncement pins the paper's observation that
// the father's public announcement creates common knowledge of m, and that
// the round announcements — which only remove worlds — never destroy it.
func TestTrackCommonAfterPublicAnnouncement(t *testing.T) {
	res, err := SimulateOpts(6, []int{0, 1, 2}, PublicAnnouncement, 8,
		SimOptions{Incremental: true, TrackCommon: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CommonM) != len(res.Rounds) {
		t.Fatalf("CommonM has %d entries for %d rounds", len(res.CommonM), len(res.Rounds))
	}
	for i, cm := range res.CommonM {
		if !cm {
			t.Errorf("round %d: C m lost after the public announcement", i+1)
		}
	}
}
