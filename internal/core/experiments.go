package core

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/agreement"
	"repro/internal/attack"
	"repro/internal/chains"
	"repro/internal/consistency"
	"repro/internal/discovery"
	"repro/internal/fixpoint"
	"repro/internal/imprecision"
	"repro/internal/kbp"
	"repro/internal/kripke"
	"repro/internal/logic"
	"repro/internal/muddy"
	"repro/internal/protocol"
	"repro/internal/runs"
	"repro/internal/temporal"
)

// E1MuddyChildren regenerates the Section 2 table: with n children and k of
// them muddy, the father's announcement makes the muddy children answer
// "yes" for the first time in round k (after k-1 unanimous "no" rounds);
// without the announcement they never do.
func E1MuddyChildren(n int) (*Report, error) {
	rep := &Report{ID: "E1", Title: fmt.Sprintf("Muddy children, n=%d", n), Pass: true}
	rep.addf("%-4s %-18s %-18s", "k", "announce: 1st yes", "silent: 1st yes")
	for k := 1; k <= n; k++ {
		muddySet := make([]int, k)
		for i := range muddySet {
			muddySet[i] = i
		}
		ann, err := muddy.Simulate(n, muddySet, muddy.PublicAnnouncement, n+2)
		if err != nil {
			return nil, err
		}
		silent, err := muddy.Simulate(n, muddySet, muddy.NoAnnouncement, n+2)
		if err != nil {
			return nil, err
		}
		rep.addf("%-4d %-18d %-18s", k, ann.FirstYesRound, renderRound(silent.FirstYesRound))
		if ann.FirstYesRound != k || !ann.YesAreMuddy {
			rep.failf("k=%d: announcement run deviates from theory", k)
		}
		if silent.FirstYesRound != 0 {
			rep.failf("k=%d: children answered yes without the announcement", k)
		}
	}
	return rep, nil
}

func renderRound(r int) string {
	if r == 0 {
		return "never"
	}
	return fmt.Sprintf("%d", r)
}

// E2KnowledgeDepth regenerates the Section 2/3 depth analysis: before the
// father speaks E^{k-1} m holds but E^k m does not; after the public
// announcement m is common knowledge; private announcements leave C m
// false.
func E2KnowledgeDepth(maxK int) (*Report, error) {
	rep := &Report{ID: "E2", Title: "E-level of m before/after announcement", Pass: true}
	rep.addf("%-4s %-14s %-12s %-12s", "k", "level before", "C m after", "C m private")
	for k := 1; k <= maxK; k++ {
		n := k + 2
		muddySet := make([]int, k)
		for i := range muddySet {
			muddySet[i] = i
		}
		p, err := muddy.New(n, muddySet)
		if err != nil {
			return nil, err
		}
		level, err := p.ELevel(k + 2)
		if err != nil {
			return nil, err
		}
		if err := p.FatherAnnounces(); err != nil {
			return nil, err
		}
		ck, err := p.CommonKnowledgeOfM()
		if err != nil {
			return nil, err
		}

		priv, err := muddy.New(n, muddySet)
		if err != nil {
			return nil, err
		}
		if n <= 8 {
			if err := priv.FatherTellsPrivately(); err != nil {
				return nil, err
			}
		}
		ckPriv, err := priv.CommonKnowledgeOfM()
		if err != nil {
			return nil, err
		}

		rep.addf("%-4d %-14d %-12v %-12v", k, level, ck, ckPriv)
		if level != k-1 {
			rep.failf("k=%d: E-level before announcement = %d, want %d", k, level, k-1)
		}
		if !ck {
			rep.failf("k=%d: C m should hold after public announcement", k)
		}
		if ckPriv {
			rep.failf("k=%d: C m should not hold after private announcements", k)
		}
	}
	return rep, nil
}

// E3Hierarchy regenerates the Section 3 hierarchy demonstration: in a
// message-passing system the chain C ⊆ E^k ⊆ ... ⊆ E ⊆ S ⊆ D ⊆ φ is
// strict at every occupied level, while under a shared (oblivious) view it
// collapses.
func E3Hierarchy() (*Report, error) {
	rep := &Report{ID: "E3", Title: "Hierarchy of states of group knowledge", Pass: true}

	// The chain-of-ignorance model: E^k p loses one world per level.
	n := 10
	m := kripke.NewModel(n, 2)
	for w := 0; w < n-1; w++ {
		m.SetTrue(w, "p")
	}
	for w := 0; w+1 < n; w++ {
		m.Indistinguishable(w%2, w, w+1)
	}
	hr, err := kripke.CheckHierarchy(m, nil, logic.P("p"), n)
	if err != nil {
		return nil, err
	}
	rep.addf("message-passing: |phi|=%d |D|=%d |S|=%d |E^k|=%v |C|=%d ordered=%v",
		hr.Phi, hr.D, hr.S, hr.E, hr.C, hr.Ordered)
	if !hr.Ordered || hr.C != 0 {
		rep.failf("hierarchy should be ordered with empty C")
	}
	for i := 1; i < len(hr.E); i++ {
		if hr.E[i] >= hr.E[i-1] && hr.E[i] != 0 {
			rep.failf("E^%d did not shrink on the chain", i+1)
		}
	}

	// Per-level separation witnesses ("every two levels can be separated
	// by an actual task", Section 3).
	// D ⊊ φ: two worlds nobody can tell apart, φ differing.
	twin := kripke.NewModel(2, 2)
	twin.SetTrue(0, "phi")
	twin.Indistinguishable(0, 0, 1)
	twin.Indistinguishable(1, 0, 1)
	dSet, err := twin.Eval(logic.MustParse("D phi"))
	if err != nil {
		return nil, err
	}
	if dSet.Contains(0) {
		rep.failf("D phi should fail at the twin world")
	}

	// S ⊊ D: the pooled-knowledge example — one agent knows psi, the
	// other psi ⊃ phi; D phi holds where S phi does not.
	pool := kripke.NewModel(4, 2)
	pool.SetTrue(0, "psi")
	pool.SetTrue(1, "psi")
	pool.SetTrue(0, "phi")
	pool.SetTrue(2, "phi")
	pool.Indistinguishable(0, 0, 1)
	pool.Indistinguishable(0, 2, 3)
	pool.Indistinguishable(1, 0, 2)
	pool.Indistinguishable(1, 2, 3)
	dp, err := pool.Eval(logic.MustParse("D phi & ~S phi"))
	if err != nil {
		return nil, err
	}
	if !dp.Contains(0) {
		rep.failf("D phi without S phi should hold at the pooling world")
	}

	// E ⊊ S: one agent sees phi, the other does not.
	one := kripke.NewModel(2, 2)
	one.SetTrue(0, "phi")
	one.Indistinguishable(1, 0, 1)
	se, err := one.Eval(logic.MustParse("S phi & ~E phi"))
	if err != nil {
		return nil, err
	}
	if !se.Contains(0) {
		rep.failf("S phi without E phi should hold")
	}
	rep.addf("separations: D ⊊ phi, S ⊊ D, E ⊊ S, E^{k+1} ⊊ E^k, C ⊊ all E^k — each witnessed")

	// Shared-memory collapse: everyone has the same view.
	shared := kripke.NewModel(6, 3)
	for w := 0; w < 6; w += 2 {
		shared.SetTrue(w, "p")
	}
	for a := 0; a < 3; a++ {
		shared.Indistinguishable(a, 0, 1)
		shared.Indistinguishable(a, 2, 3)
		shared.Indistinguishable(a, 4, 5)
	}
	var sizes []int
	for _, src := range []string{"D p", "S p", "E p", "C p"} {
		s, err := shared.Eval(logic.MustParse(src))
		if err != nil {
			return nil, err
		}
		sizes = append(sizes, s.Count())
	}
	rep.addf("shared memory:   |D|=|S|=|E|=|C| = %v", sizes)
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != sizes[0] {
			rep.failf("hierarchy should collapse under a shared view")
		}
	}
	return rep, nil
}

// E4CoordinatedAttack regenerates the Section 4/7 analysis.
func E4CoordinatedAttack() (*Report, error) {
	rep := &Report{ID: "E4", Title: "Coordinated attack", Pass: true}
	s, err := attack.Build(4, 10)
	if err != nil {
		return nil, err
	}
	never := func(protocol.LocalView) bool { return false }
	pm := s.Sys.Model(runs.CompleteHistoryView, s.Interp(never, never))

	// Table: deliveries -> attained alternating-knowledge depth.
	rep.addf("%-12s %-14s", "deliveries", "depth attained")
	for ri, r := range s.Sys.Runs {
		if r.Init[attack.GeneralA] != "go" {
			continue
		}
		d := 0
		for _, msg := range r.Messages {
			if msg.Delivered() {
				d++
			}
		}
		depth := 0
		f := logic.P(attack.IntentProp)
		for lvl := 1; lvl <= d+1; lvl++ {
			if lvl%2 == 1 {
				f = logic.K(attack.GeneralB, f)
			} else {
				f = logic.K(attack.GeneralA, f)
			}
			set, err := pm.Eval(f)
			if err != nil {
				return nil, err
			}
			if set.Contains(pm.World(ri, s.Sys.Horizon)) {
				depth = lvl
			} else {
				break
			}
		}
		rep.addf("%-12d %-14d", d, depth)
		if depth != d {
			rep.failf("run with %d deliveries attained depth %d", d, depth)
		}
	}

	c6, err := s.CheckCorollary6()
	if err != nil {
		rep.failf("%v", err)
	} else {
		rep.addf("Corollary 6: %d rule pairs, %d correct, 0 attacking", c6.RulesTried, c6.CorrectRules)
	}
	p10, err := s.CheckProposition10()
	if err != nil {
		rep.failf("%v", err)
	} else {
		rep.addf("Proposition 10: %d rule pairs, %d correct, 0 attacking", p10.RulesTried, p10.CorrectRules)
	}
	if err := attack.CheckProposition4(pm); err != nil {
		rep.failf("%v", err)
	} else {
		rep.addf("Proposition 4 holds (unreliable system, never-attack rule)")
	}

	// Positive case: a reliable channel admits a correct attacking
	// protocol, whose attacks are common knowledge.
	rel, err := attack.ReliableSystem(2, 6)
	if err != nil {
		return nil, err
	}
	ruleA := func(v protocol.LocalView) bool { return v.HasClock && v.Clock >= 3 && v.Init == "go" }
	ruleB := attack.ThresholdRule(3, 1)
	out := rel.Evaluate(ruleA, ruleB)
	relPM := rel.Sys.Model(runs.CompleteHistoryView, rel.Interp(ruleA, ruleB))
	if !out.Simultaneous || !out.NoAttackWithoutComms || !out.EverAttacks {
		rep.failf("reliable-channel attacking protocol misbehaves: %+v", out)
	} else if err := attack.CheckProposition4(relPM); err != nil {
		rep.failf("%v", err)
	} else {
		rep.addf("reliable channel: correct attacking protocol exists; attack => C attacking")
	}
	return rep, nil
}

// attackFormulas is the formula family used by the Theorem 5/7 checks.
var attackFormulas = []logic.Formula{
	logic.P(attack.IntentProp),
	logic.P(attack.AttackingProp),
	logic.Neg(logic.P(attack.IntentProp)),
	logic.True,
}

// E5Theorem5 machine-checks Theorem 5 on the unreliable coordinated-attack
// system.
func E5Theorem5() (*Report, error) {
	rep := &Report{ID: "E5", Title: "Theorem 5 (communication not guaranteed)", Pass: true}
	s, err := attack.Build(3, 8)
	if err != nil {
		return nil, err
	}
	if err := protocol.CheckNG1(s.Sys); err != nil {
		rep.failf("%v", err)
	}
	if err := protocol.CheckNG2(s.Sys); err != nil {
		rep.failf("%v", err)
	}
	never := func(protocol.LocalView) bool { return false }
	pm := s.Sys.Model(runs.CompleteHistoryView, s.Interp(never, never))
	results, err := protocol.CheckTheorem5(pm, nil, attackFormulas)
	if err != nil {
		rep.failf("%v", err)
	} else {
		rep.addf("NG1, NG2 hold; %d point/formula comparisons, all consistent", len(results))
	}
	set, err := pm.Eval(logic.C(nil, logic.P(attack.IntentProp)))
	if err != nil {
		return nil, err
	}
	if !set.IsEmpty() {
		rep.failf("C intent attained somewhere")
	} else {
		rep.addf("C intent holds nowhere (Corollary 6 substrate)")
	}
	return rep, nil
}

// E6Theorem7 machine-checks Theorem 7 on an asynchronous one-shot system.
func E6Theorem7() (*Report, error) {
	rep := &Report{ID: "E6", Title: "Theorem 7 (unbounded message delivery)", Pass: true}
	sender := protocol.Func(func(v protocol.LocalView) []protocol.Outgoing {
		if v.Init == "go" && len(v.Sent) == 0 {
			return []protocol.Outgoing{{To: 1, Payload: "m"}}
		}
		return nil
	})
	cfgs := []protocol.Config{
		{Name: "go", Init: []string{"go", ""}},
		{Name: "idle", Init: []string{"", ""}},
	}
	sys, err := protocol.Generate([]protocol.Protocol{sender, protocol.Silent},
		protocol.Async{}, cfgs, 5, protocol.Options{})
	if err != nil {
		return nil, err
	}
	if err := protocol.CheckNG1Prime(sys); err != nil {
		rep.failf("%v", err)
	}
	if err := protocol.CheckNG2(sys); err != nil {
		rep.failf("%v", err)
	}
	pm := sys.Model(runs.CompleteHistoryView, runs.Interpretation{
		"sent": runs.StablyTrue(runs.SentBy("m")),
		"del":  runs.StablyTrue(runs.ReceivedBy("m")),
	})
	formulas := []logic.Formula{logic.P("sent"), logic.P("del")}
	results, err := protocol.CheckTheorem5(pm, nil, formulas)
	if err != nil {
		rep.failf("%v", err)
	} else {
		rep.addf("NG1', NG2 hold; %d comparisons, all consistent", len(results))
	}
	for _, src := range []string{"C sent", "C del"} {
		set, err := pm.Eval(logic.MustParse(src))
		if err != nil {
			return nil, err
		}
		if !set.IsEmpty() {
			rep.failf("%s attained on the async channel", src)
		}
	}
	rep.addf("C sent and C del hold nowhere")
	return rep, nil
}

// R2D2Chain builds the Section 8 R2–D2 system with broadcast spread 1: for
// each send time i in [0, m), one run delivers immediately (r<i>) and one a
// tick later (s<i>). Identity clocks, untimestamped payload.
func R2D2Chain(m int, horizon runs.Time) *runs.System {
	rs := make([]*runs.Run, 0, 2*m)
	for i := 0; i < m; i++ {
		r := runs.NewRun(fmt.Sprintf("r%d", i), 2, horizon)
		r.SetIdentityClock(0)
		r.SetIdentityClock(1)
		r.Send(0, 1, runs.Time(i), runs.Time(i), "m")
		s := runs.NewRun(fmt.Sprintf("s%d", i), 2, horizon)
		s.SetIdentityClock(0)
		s.SetIdentityClock(1)
		s.Send(0, 1, runs.Time(i), runs.Time(i+1), "m")
		rs = append(rs, r, s)
	}
	return runs.MustSystem(rs...)
}

// E7R2D2 regenerates the Section 8 R2–D2 series: level k of alternating
// knowledge (K_R K_D)^k sent(m) is first attained at t_S + k·ε (discrete
// observation shifts the whole ladder by one tick), C sent(m) is never
// attained, C^ε sent(m) holds from the send, and the timestamped
// global-clock variant attains C at t_S + ε.
func E7R2D2() (*Report, error) {
	rep := &Report{ID: "E7", Title: "R2-D2: the cost of one epsilon per level", Pass: true}
	sys := R2D2Chain(6, 9)
	pm := sys.Model(runs.CompleteHistoryView, runs.Interpretation{
		"sent": runs.StablyTrue(runs.SentBy("m")),
	})

	rep.addf("%-6s %-22s", "k", "first t of (K_R K_D)^k in s0")
	phi := logic.P("sent")
	for k := 1; k <= 4; k++ {
		phi = logic.K(0, logic.K(1, phi))
		set, err := pm.Eval(phi)
		if err != nil {
			return nil, err
		}
		first := runs.Time(-1)
		for t := runs.Time(0); t <= sys.Horizon; t++ {
			if w, _ := pm.WorldOf("s0", t); set.Contains(w) {
				first = t
				break
			}
		}
		rep.addf("%-6d %-22d", k, first)
		if first != runs.Time(k+1) {
			rep.failf("level %d first holds at %d, want %d (= t_S + k·eps + obs. lag)", k, first, k+1)
		}
	}

	c, err := pm.Eval(logic.MustParse("C sent"))
	if err != nil {
		return nil, err
	}
	unattained := true
	for ri := range sys.Runs {
		for t := runs.Time(0); t < 5; t++ {
			if c.Contains(pm.World(ri, t)) {
				unattained = false
			}
		}
	}
	if unattained {
		rep.addf("C sent unattained while send times remain uncertain")
	} else {
		rep.failf("C sent attained on the chain")
	}

	ce, err := pm.Eval(logic.MustParse("Ce[1] sent"))
	if err != nil {
		return nil, err
	}
	if w, _ := pm.WorldOf("r0", 0); !ce.Contains(w) {
		rep.failf("Ce[1] sent should hold at the send point")
	} else {
		rep.addf("Ce[1] sent holds from the send (broadcast spread eps, L=0)")
	}

	// Global clock + timestamped payload: the two-run system attains C at
	// t_S + eps (observed at t_S + eps + 1 with the discrete lag).
	r0 := runs.NewRun("recv_now", 2, 6)
	r0.Send(0, 1, 2, 2, "m@2")
	r1 := runs.NewRun("recv_later", 2, 6)
	r1.Send(0, 1, 2, 3, "m@2")
	never := runs.NewRun("never", 2, 6)
	for _, r := range []*runs.Run{r0, r1, never} {
		r.SetIdentityClock(0)
		r.SetIdentityClock(1)
	}
	tsys := runs.MustSystem(r0, r1, never)
	tpm := tsys.Model(runs.CompleteHistoryView, runs.Interpretation{
		"sent": runs.StablyTrue(runs.SentBy("m@2")),
	})
	tc, err := tpm.Eval(logic.MustParse("C sent"))
	if err != nil {
		return nil, err
	}
	w4, _ := tpm.WorldOf("recv_now", 4)
	w3, _ := tpm.WorldOf("recv_now", 3)
	if tc.Contains(w4) && !tc.Contains(w3) {
		rep.addf("timestamp + global clock: C sent attained exactly at t_S+eps (observed)")
	} else {
		rep.failf("timestamped variant: C sent at t=3: %v, t=4: %v", tc.Contains(w3), tc.Contains(w4))
	}
	return rep, nil
}

// E8Imprecision machine-checks Appendix B on the Proposition 15 system.
func E8Imprecision() (*Report, error) {
	rep := &Report{ID: "E8", Title: "Temporal imprecision (Theorem 8, Appendix B)", Pass: true}
	sys, err := imprecision.UncertainSystem(imprecision.UncertainConfig{
		MaxWake: 2, MinDelay: 1, MaxDelay: 2, Horizon: 6,
	})
	if err != nil {
		return nil, err
	}
	irep := imprecision.CheckImprecision(sys)
	rep.addf("imprecision witnesses: %d/%d tuples (discrete boundary corners excepted)",
		irep.Witnessed, irep.PointsChecked)
	if float64(irep.Witnessed) < 0.8*float64(irep.PointsChecked) {
		rep.failf("too few imprecision witnesses")
	}
	pm := sys.Model(runs.CompleteHistoryView, imprecision.Interp())
	if err := imprecision.CheckLemma14(pm); err != nil {
		rep.failf("%v", err)
	} else {
		rep.addf("Lemma 14: (r,0) reachable from every (r,t)")
	}
	family := []logic.Formula{
		logic.P(imprecision.DeliveredProp),
		logic.P("sent"),
		logic.K(0, logic.P("sent")),
		logic.True,
	}
	if err := imprecision.CheckProposition13(pm, nil, family); err != nil {
		rep.failf("%v", err)
	} else {
		rep.addf("Proposition 13: C constant along reachable runs")
	}
	if err := imprecision.CheckTheorem8(pm, nil, family); err != nil {
		rep.failf("%v", err)
	} else {
		rep.addf("Theorem 8: common knowledge neither gained nor lost")
	}
	return rep, nil
}

// E9EpsilonEventual regenerates the Section 11 analysis: the OK protocol
// (successful communication prevents C^ε ψ), Theorem 9 on lossy systems,
// Theorem 11 on asynchronous ones, and the (E^⋄)^k-without-C^⋄
// counterexample.
func E9EpsilonEventual() (*Report, error) {
	rep := &Report{ID: "E9", Title: "Attainable variants: C^eps and C^dia", Pass: true}

	pm, err := temporal.OKSystem(8)
	if err != nil {
		return nil, err
	}
	for _, src := range []string{"psi -> Ee[2] psi", "psi -> Ce[2] psi"} {
		valid, err := pm.Valid(logic.MustParse(src))
		if err != nil {
			return nil, err
		}
		if !valid {
			rep.failf("%s not valid in the OK system", src)
		}
	}
	lost, err := temporal.AllLostRun(pm.Sys)
	if err != nil {
		return nil, err
	}
	okAt, err := pm.HoldsAt(logic.MustParse("Ce[2] psi"), lost, temporal.RoundLength)
	if err != nil {
		return nil, err
	}
	full, err := temporal.FullyDeliveredRun(pm.Sys)
	if err != nil {
		return nil, err
	}
	ce, err := pm.Eval(logic.MustParse("Ce[2] psi"))
	if err != nil {
		return nil, err
	}
	noneAtFull := true
	for t := runs.Time(0); t <= pm.Sys.Horizon; t++ {
		if w, _ := pm.WorldOf(full, t); ce.Contains(w) {
			noneAtFull = false
		}
	}
	if okAt && noneAtFull {
		rep.addf("OK protocol: Ce[2] psi holds under lost messages, never under full delivery")
	} else {
		rep.failf("OK protocol deviates: lost=%v full-free=%v", okAt, noneAtFull)
	}

	// Theorem 9 premise failure for psi (C^eps psi holds in the silent
	// run) must be detected.
	err = temporal.CheckTheorem9(pm, func() logic.Formula {
		return logic.Ceps(nil, temporal.RoundLength, logic.P(temporal.LossProp))
	})
	if errors.Is(err, temporal.ErrPremiseFails) {
		rep.addf("Theorem 9: premise correctly fails for psi on the OK system")
	} else {
		rep.failf("Theorem 9 premise check: %v", err)
	}

	// Theorems 9 and 11 on a lossy one-shot system.
	s, err := attack.Build(3, 8)
	if err != nil {
		return nil, err
	}
	neverRule := func(protocol.LocalView) bool { return false }
	apm := s.Sys.Model(runs.CompleteHistoryView, s.Interp(neverRule, neverRule))
	for _, mk := range []func() logic.Formula{
		func() logic.Formula { return logic.Ceps(nil, 2, logic.P(attack.IntentProp)) },
		func() logic.Formula { return logic.Cev(nil, logic.P(attack.IntentProp)) },
	} {
		if err := temporal.CheckTheorem9(apm, mk); err != nil {
			rep.failf("Theorem 9 for %s: %v", mk(), err)
		}
	}
	rep.addf("Theorem 9: C^eps/C^dia of intent gated by the silent run (fails everywhere)")

	// (E^dia)^k tower without C^dia.
	s4, err := attack.Build(4, 10)
	if err != nil {
		return nil, err
	}
	apm4 := s4.Sys.Model(runs.CompleteHistoryView, s4.Interp(neverRule, neverRule))
	var fullRun string
	best := -1
	for _, r := range s4.Sys.Runs {
		d := 0
		for _, m := range r.Messages {
			if m.Delivered() {
				d++
			}
		}
		if r.Init[attack.GeneralA] == "go" && d > best {
			best, fullRun = d, r.Name
		}
	}
	depth, err := attack.MaxEventualDepth(apm4, fullRun, 8)
	if err != nil {
		return nil, err
	}
	cv, err := apm4.Eval(logic.Cev(nil, logic.P(attack.IntentProp)))
	if err != nil {
		return nil, err
	}
	if depth >= 3 && cv.IsEmpty() {
		rep.addf("(E^dia)^k intent holds to depth %d in the all-delivered run; C^dia intent never", depth)
	} else {
		rep.failf("tower depth %d, C^dia empty=%v", depth, cv.IsEmpty())
	}
	return rep, nil
}

// E10Timestamped machine-checks Theorem 12.
func E10Timestamped() (*Report, error) {
	rep := &Report{ID: "E10", Title: "Timestamped common knowledge (Theorem 12)", Pass: true}
	build := func(offsets [2]int) *runs.PointModel {
		mk := func(name string, send bool, recv runs.Time) *runs.Run {
			r := runs.NewRun(name, 2, 8)
			r.SetShiftedClock(0, offsets[0])
			r.SetShiftedClock(1, offsets[1])
			if send {
				r.Send(0, 1, 1, recv, "m")
			}
			return r
		}
		sys := runs.MustSystem(
			mk("fast", true, 2),
			mk("slow", true, 3),
			mk("idle", false, 0),
		)
		return sys.Model(runs.CompleteHistoryView, runs.Interpretation{
			"sent": runs.StablyTrue(runs.SentBy("m")),
		})
	}

	pmA := build([2]int{0, 0})
	okA := true
	for ts := 0; ts <= 8; ts++ {
		if err := temporal.CheckTheorem12a(pmA, nil, ts, logic.P("sent")); err != nil {
			rep.failf("12(a) at T=%d: %v", ts, err)
			okA = false
		}
	}
	if okA {
		rep.addf("12(a): identical clocks => C^T == C at time T")
	}

	pmB := build([2]int{0, 1})
	okB := true
	for ts := 1; ts <= 8; ts++ {
		if err := temporal.CheckTheorem12b(pmB, nil, ts, 1, logic.P("sent")); err != nil {
			rep.failf("12(b) at T=%d: %v", ts, err)
			okB = false
		}
	}
	if okB {
		rep.addf("12(b): eps-synchronized clocks => C^T implies C^eps")
	}

	pmC := build([2]int{0, 2})
	okC := true
	for ts := 2; ts <= 8; ts++ {
		if err := temporal.CheckTheorem12c(pmC, nil, ts, logic.P("sent")); err != nil {
			rep.failf("12(c) at T=%d: %v", ts, err)
			okC = false
		}
	}
	if okC {
		rep.addf("12(c): clocks reaching T => C^T implies C^dia")
	}
	return rep, nil
}

// E11S5 machine-checks Proposition 1 (S5 for K_i, D_G, C_G), the fixed
// point axiom C1, the induction rule C2, and Lemma 2, on seeded random
// view-based models.
func E11S5() (*Report, error) {
	rep := &Report{ID: "E11", Title: "Proposition 1: S5, C1, C2, Lemma 2", Pass: true}
	samples := []logic.Formula{
		logic.P("p"),
		logic.P("q"),
		logic.Neg(logic.P("p")),
		logic.Disj(logic.P("p"), logic.P("q")),
		logic.Disj(logic.P("p"), logic.Neg(logic.P("p"))),
		logic.K(0, logic.P("p")),
	}
	rng := rand.New(rand.NewSource(42))
	models := 0
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(20)
		m := kripke.NewModel(n, 3)
		for w := 0; w < n; w++ {
			if rng.Intn(2) == 0 {
				m.SetTrue(w, "p")
			}
			if rng.Intn(2) == 0 {
				m.SetTrue(w, "q")
			}
		}
		for a := 0; a < 3; a++ {
			for k := 0; k < n; k++ {
				m.Indistinguishable(a, rng.Intn(n), rng.Intn(n))
			}
		}
		g := logic.NewGroup(0, 1)
		ops := map[string]kripke.Op{
			"K0":     func(x logic.Formula) logic.Formula { return logic.K(0, x) },
			"D{0,1}": func(x logic.Formula) logic.Formula { return logic.D(g, x) },
			"C{0,1}": func(x logic.Formula) logic.Formula { return logic.C(g, x) },
		}
		for name, op := range ops {
			r, err := kripke.CheckS5(m, op, samples)
			if err != nil {
				return nil, err
			}
			if !r.AllHold() {
				rep.failf("S5 fails for %s: %s", name, r.Failure)
			}
		}
		if err := kripke.CheckFixedPointAxiom(m, g, samples); err != nil {
			rep.failf("%v", err)
		}
		if err := kripke.CheckInductionRule(m, g, samples); err != nil {
			rep.failf("%v", err)
		}
		if err := kripke.CheckLemma2(m, g, samples); err != nil {
			rep.failf("%v", err)
		}
		models++
	}
	if rep.Pass {
		rep.addf("S5 (A1-A4, R1) for K, D, C; C1; C2; Lemma 2 — all hold on %d random models", models)
	}
	return rep, nil
}

// E12InternalConsistency regenerates the Section 13 commit example.
func E12InternalConsistency() (*Report, error) {
	rep := &Report{ID: "E12", Title: "Internal knowledge consistency (eager commit)", Pass: true}
	sys, interp, err := consistency.CommitSystem(6)
	if err != nil {
		return nil, err
	}
	pm := sys.Model(runs.CompleteHistoryView, interp)
	viol, err := consistency.CheckKnowledgeConsistent(pm, consistency.EagerCommit())
	if err != nil {
		return nil, err
	}
	if len(viol) == 0 {
		rep.failf("eager commit should violate the knowledge axiom")
	} else {
		rep.addf("eager interpretation: %d knowledge-axiom violations (window of vulnerability)", len(viol))
	}
	names, err := consistency.FindConsistentSubsystem(sys, runs.CompleteHistoryView, interp, consistency.EagerCommit())
	if err != nil {
		rep.failf("%v", err)
	} else {
		rep.addf("internally consistent wrt subsystem %v", names)
	}
	return rep, nil
}

// E13Fixpoint regenerates the Appendix A analysis.
func E13Fixpoint() (*Report, error) {
	rep := &Report{ID: "E13", Title: "Fixed-point semantics (Appendix A)", Pass: true}

	n := 12
	m := kripke.NewModel(n, 2)
	for w := 0; w < n-1; w++ {
		m.SetTrue(w, "p")
	}
	for w := 0; w+1 < n; w++ {
		m.Indistinguishable(w%2, w, w+1)
	}
	direct, err := m.Eval(logic.MustParse("C p"))
	if err != nil {
		return nil, err
	}
	iter, iters, err := m.CommonKnowledgeByIteration(nil, logic.P("p"))
	if err != nil {
		return nil, err
	}
	if !direct.Equal(iter) {
		rep.failf("gfp iteration disagrees with reachability components")
	} else {
		rep.addf("C p by gfp == C p by components; %d iterations on the %d-world chain", iters, n)
	}

	// The same fixed point a third way: generic chaotic iteration over the
	// support form of X ↦ E(p ∧ X) (fixpoint.GFPWorklist driving the
	// kripke worklist stepper).
	first, step, err := m.SupportStep(nil, logic.P("p"))
	if err != nil {
		return nil, err
	}
	wl, wlRounds := fixpoint.GFPWorklist(first, step)
	if !wl.Equal(direct) {
		rep.failf("chaotic iteration disagrees with reachability components")
	} else if wlRounds != iters {
		rep.failf("chaotic iteration took %d rounds, Knaster–Tarski %d", wlRounds, iters)
	} else {
		rep.addf("C p by chaotic iteration (worklist) agrees, same %d rounds", wlRounds)
	}

	nu := logic.MustParse("nu X . E (p & X)").(logic.Nu)
	if err := fixpoint.CheckFixedPointAxiom(m, nu); err != nil {
		rep.failf("%v", err)
	} else {
		rep.addf("fixed point axiom: nu X . E(p & X) == its unfolding")
	}
	if err := fixpoint.CheckInductionRule(m, nu, []logic.Formula{logic.P("p"), logic.False}); err != nil {
		rep.failf("%v", err)
	} else {
		rep.addf("induction rule verified")
	}

	// Tower vs gfp divergence on the attack system.
	s, err := attack.Build(4, 10)
	if err != nil {
		return nil, err
	}
	neverRule := func(protocol.LocalView) bool { return false }
	pm := s.Sys.Model(runs.CompleteHistoryView, s.Interp(neverRule, neverRule))
	op := func(f logic.Formula) logic.Formula { return logic.Eev(nil, f) }
	tower, gfp, err := fixpoint.TowerVsGFP(pm.Model, op, logic.P(attack.IntentProp), 3)
	if err != nil {
		return nil, err
	}
	if gfp.SubsetOf(tower) && tower.Count() > gfp.Count() {
		rep.addf("(E^dia)^k tower holds at %d points; gfp C^dia at %d — strictly below the conjunction",
			tower.Count(), gfp.Count())
	} else {
		rep.failf("tower=%d gfp=%d", tower.Count(), gfp.Count())
	}
	return rep, nil
}

// E14Agreement regenerates the Section 12 phase-protocol discussion: under
// lockstep phases the decision value is common knowledge at the decision
// point; under phase jitter only timestamped ("end of phase") and ε-common
// knowledge are attained.
func E14Agreement() (*Report, error) {
	rep := &Report{ID: "E14", Title: "Phase-based agreement (Section 12 discussion)", Pass: true}

	lockCfg := agreement.Config{N: 2, Variant: agreement.Lockstep, MinDelay: 1, MaxDelay: 1, Horizon: 5}
	sys, interp, err := agreement.Build(lockCfg)
	if err != nil {
		return nil, err
	}
	lock, err := agreement.Check(lockCfg, sys, interp)
	if err != nil {
		return nil, err
	}
	rep.addf("lockstep: C@decision=%v C^T@phase-end=%v (spread %d)",
		lock.CAtFirstDecision, lock.CTAtPhaseEnd, agreement.DecisionSpread(sys))
	if !lock.CAtFirstDecision || !lock.CTAtPhaseEnd || !lock.CepsOnFirstDecision {
		rep.failf("lockstep claims violated: %+v", lock)
	}

	jitCfg := agreement.Config{N: 2, Variant: agreement.Jittered, MinDelay: 1, MaxDelay: 2, Horizon: 6}
	jsys, jinterp, err := agreement.Build(jitCfg)
	if err != nil {
		return nil, err
	}
	jit, err := agreement.Check(jitCfg, jsys, jinterp)
	if err != nil {
		return nil, err
	}
	rep.addf("jittered: C@decision=%v C-by-bound=%v C^T@phase-end=%v C^eps@decision=%v (spread %d)",
		jit.CAtFirstDecision, jit.CByPhaseEnd, jit.CTAtPhaseEnd, jit.CepsOnFirstDecision,
		agreement.DecisionSpread(jsys))
	if jit.CAtFirstDecision {
		rep.failf("jittered deciders should not have C at their decision point")
	}
	if !jit.CByPhaseEnd || !jit.CTAtPhaseEnd || !jit.CepsOnFirstDecision {
		rep.failf("jittered claims violated: %+v", jit)
	}
	return rep, nil
}

// E15MessageChains machine-checks the Chandy–Misra knowledge-gain theorem
// (cited in Sections 8, 14 and Appendix B) on relay systems: knowledge of
// another processor's initial state is always backed by a message chain.
func E15MessageChains() (*Report, error) {
	rep := &Report{ID: "E15", Title: "Knowledge gain requires message chains", Pass: true}
	src := protocol.Func(func(v protocol.LocalView) []protocol.Outgoing {
		if v.Me == 0 && len(v.Sent) == 0 {
			return []protocol.Outgoing{{To: 1, Payload: "bit=" + v.Init}}
		}
		return nil
	})
	fwd := protocol.Func(func(v protocol.LocalView) []protocol.Outgoing {
		if v.Me == 1 && len(v.Received) > len(v.Sent) {
			return []protocol.Outgoing{{To: 2, Payload: "fwd:" + v.Received[len(v.Sent)].Payload}}
		}
		return nil
	})
	cfgs := []protocol.Config{
		{Name: "one", Init: []string{"1", "", ""}},
		{Name: "zero", Init: []string{"0", "", ""}},
	}
	for _, ch := range []protocol.Channel{
		protocol.Reliable{Delay: 1},
		protocol.Unreliable{Delay: 1},
		protocol.BoundedDelay{Min: 1, Max: 2},
	} {
		sys, err := protocol.Generate([]protocol.Protocol{src, fwd, protocol.Silent}, ch, cfgs, 8,
			protocol.Options{MaxMessagesPerRun: 4})
		if err != nil {
			return nil, err
		}
		pm := sys.Model(runs.CompleteHistoryView, chains.InitInterpretation(sys))
		gain, err := chains.CheckKnowledgeGain(pm)
		if err != nil {
			rep.failf("%s: %v", ch.Name(), err)
			continue
		}
		rep.addf("%-22s %d knowledge points, every one backed by a chain", ch.Name(), gain.PointsChecked)
		if gain.PointsChecked == 0 {
			rep.failf("%s: relay produced no knowledge", ch.Name())
		}
	}
	return rep, nil
}

// E16FactDiscovery regenerates the Section 3 view of communication as
// climbing the knowledge hierarchy, on the paper's own example of deadlock
// detection: D at the start, S when the detector learns both edges, E when
// the verdict returns, and C only when the system supports simultaneity
// (clocks + reliable delivery).
func E16FactDiscovery() (*Report, error) {
	rep := &Report{ID: "E16", Title: "Fact discovery and publication (deadlock detection)", Pass: true}
	render := func(t runs.Time) string {
		if t == runs.Lost {
			return "never"
		}
		return fmt.Sprintf("%d", t)
	}
	type variant struct {
		name       string
		ch         protocol.Channel
		withClocks bool
		wantC      bool
	}
	rep.addf("%-28s %-5s %-5s %-5s %-6s", "variant", "D", "S", "E", "C")
	for _, v := range []variant{
		{"reliable + clocks", protocol.Reliable{Delay: 1}, true, true},
		{"reliable, clockless", protocol.Reliable{Delay: 1}, false, false},
		{"unreliable + clocks", protocol.Unreliable{Delay: 1}, true, false},
	} {
		pm, err := discovery.Build(v.ch, 8, v.withClocks)
		if err != nil {
			return nil, err
		}
		run, err := discovery.DeadlockRunWithDeliveries(pm, 2)
		if err != nil {
			return nil, err
		}
		climb, err := discovery.ClimbIn(pm, run)
		if err != nil {
			return nil, err
		}
		rep.addf("%-28s %-5s %-5s %-5s %-6s", v.name,
			render(climb.D), render(climb.S), render(climb.E), render(climb.C))
		if climb.D != 0 || climb.S != 2 || climb.E != 4 {
			rep.failf("%s: discovery climb deviates (D=%d S=%d E=%d)", v.name, climb.D, climb.S, climb.E)
		}
		if v.wantC && climb.C == runs.Lost {
			rep.failf("%s: publication should succeed", v.name)
		}
		if !v.wantC && climb.C != runs.Lost {
			rep.failf("%s: publication should fail", v.name)
		}
	}
	return rep, nil
}

// E17KnowledgeBasedProgram runs the Section 14 knowledge-based protocol
// machinery on the bit-transmission problem: the fixed-point system exists,
// realizes the program's epistemic goals, and a paradoxical program is
// correctly reported as having no fixed point.
func E17KnowledgeBasedProgram() (*Report, error) {
	rep := &Report{ID: "E17", Title: "Knowledge-based programs (bit transmission)", Pass: true}
	prog, cfgs := kbp.BitTransmission([]string{"0", "1"}, 2)
	for _, ch := range []protocol.Channel{protocol.Reliable{Delay: 1}, protocol.Unreliable{Delay: 1}} {
		res, err := kbp.Fixpoint(prog, ch, cfgs, 8, protocol.Options{MaxMessagesPerRun: 6}, 8)
		if err != nil {
			rep.failf("%s: %v", ch.Name(), err)
			continue
		}
		recvKnows := logic.Disj(logic.K(1, logic.P("bit0")), logic.K(1, logic.P("bit1")))
		set, err := res.PM.Eval(logic.K(0, recvKnows))
		if err != nil {
			return nil, err
		}
		achieved := 0
		for ri := range res.PM.Sys.Runs {
			if set.Contains(res.PM.World(ri, res.PM.Sys.Horizon)) {
				achieved++
			}
		}
		rep.addf("%-22s fixed point in %d iterations, %d runs, goal K_S K_R bit in %d runs",
			ch.Name(), res.Iterations, len(res.PM.Sys.Runs), achieved)
		if achieved == 0 {
			rep.failf("%s: the program never achieves its goal", ch.Name())
		}
	}
	// The paradoxical program has no fixed point.
	paradox := kbp.Program{
		Rules: map[int][]kbp.Rule{
			0: {{
				Name:     "paradox",
				When:     logic.Neg(logic.P("sent0")),
				To:       1,
				Payload:  func(protocol.LocalView) string { return "x" },
				MaxSends: 1,
			}},
		},
		Interp: runs.Interpretation{"sent0": runs.StablyTrue(runs.SentBy("x"))},
	}
	pcfgs := []protocol.Config{{Name: "c", Init: []string{"", ""}}}
	if _, err := kbp.Fixpoint(paradox, protocol.Reliable{Delay: 1}, pcfgs, 4, protocol.Options{}, 6); err == nil {
		rep.failf("paradoxical program should have no fixed point")
	} else {
		rep.addf("paradoxical program correctly reported: no fixed point")
	}
	return rep, nil
}
