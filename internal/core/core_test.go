package core

import (
	"strings"
	"testing"
)

func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in short mode")
	}
	reps, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(All()) {
		t.Fatalf("ran %d experiments, want %d", len(reps), len(All()))
	}
	for _, r := range reps {
		if !r.Pass {
			t.Errorf("experiment %s failed:\n%s", r.ID, r)
		}
		if len(r.Lines) == 0 {
			t.Errorf("experiment %s produced no findings", r.ID)
		}
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "EX", Title: "test", Pass: true}
	r.addf("row %d", 1)
	s := r.String()
	if !strings.Contains(s, "[EX]") || !strings.Contains(s, "PASS") || !strings.Contains(s, "row 1") {
		t.Errorf("rendering = %q", s)
	}
	r.failf("broken %s", "thing")
	if r.Pass {
		t.Error("failf should clear Pass")
	}
	if !strings.Contains(r.String(), "FAIL: broken thing") {
		t.Error("failure line missing")
	}
}

func TestE1Table(t *testing.T) {
	rep, err := E1MuddyChildren(5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("E1 failed:\n%s", rep)
	}
	// Header plus one row per k.
	if len(rep.Lines) != 6 {
		t.Errorf("E1 produced %d lines, want 6", len(rep.Lines))
	}
}

func TestE3HierarchyReport(t *testing.T) {
	rep, err := E3Hierarchy()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("E3 failed:\n%s", rep)
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" {
			t.Errorf("experiment %s has no title", e.ID)
		}
	}
}
