// Package core orchestrates the reproduction of Halpern & Moses,
// "Knowledge and Common Knowledge in a Distributed Environment": it exposes
// one driver per experiment in the paper's evaluation (the worked examples
// and numbered theorems; see DESIGN.md for the index), each regenerating
// the corresponding table, series or machine-checked claim on top of the
// substrate packages (logic, kripke, runs, protocol, temporal, imprecision,
// muddy, attack, consistency, fixpoint).
//
// Every driver returns a Report whose Lines are the rows of the regenerated
// table and whose Pass field records whether the paper's claims held.
package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
)

// Report is the outcome of one experiment.
type Report struct {
	// ID is the experiment identifier from DESIGN.md (E1..E13).
	ID string
	// Title summarizes the paper claim being reproduced.
	Title string
	// Pass records whether every checked claim held.
	Pass bool
	// Lines are the regenerated table rows / findings.
	Lines []string
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Report) failf(format string, args ...any) {
	r.Pass = false
	r.Lines = append(r.Lines, "FAIL: "+fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "[%s] %s — %s\n", r.ID, r.Title, status)
	for _, l := range r.Lines {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	return b.String()
}

// Experiment pairs an identifier with its driver.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Report, error)
}

// All returns every experiment with its default parameters, in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Muddy children: first yes in round k", func() (*Report, error) { return E1MuddyChildren(6) }},
		{"E2", "Muddy children: E-level k-1 before announcement, C m after", func() (*Report, error) { return E2KnowledgeDepth(5) }},
		{"E3", "Knowledge hierarchy: strict vs collapsed", E3Hierarchy},
		{"E4", "Coordinated attack: depth = deliveries; Cor. 6; Prop. 10; Prop. 4", E4CoordinatedAttack},
		{"E5", "Theorem 5: unreliable communication gates common knowledge", E5Theorem5},
		{"E6", "Theorem 7: unbounded delivery gates common knowledge", E6Theorem7},
		{"E7", "R2-D2: one epsilon per level; C^eps on send; global clock fix", E7R2D2},
		{"E8", "Temporal imprecision: Lemma 14, Prop. 13, Theorem 8, Prop. 15", E8Imprecision},
		{"E9", "OK protocol and C^eps/C^dia attainability (Thms 9, 11)", E9EpsilonEventual},
		{"E10", "Timestamped common knowledge vs C, C^eps, C^dia (Thm 12)", E10Timestamped},
		{"E11", "Proposition 1: S5 for K, D, C; C1; C2; Lemma 2", E11S5},
		{"E12", "Internal knowledge consistency: eager commit", E12InternalConsistency},
		{"E13", "Appendix A: fixed points, iteration, tower vs gfp", E13Fixpoint},
		{"E14", "Phase-based agreement: lockstep C vs jittered C^T/C^eps", E14Agreement},
		{"E15", "Knowledge gain requires message chains (Chandy-Misra)", E15MessageChains},
		{"E16", "Fact discovery and publication: the deadlock-detection climb", E16FactDiscovery},
		{"E17", "Knowledge-based programs: bit transmission fixed point", E17KnowledgeBasedProgram},
	}
}

// RunAll executes every experiment and returns the reports, in experiment
// order. Execution continues past failures; an error is returned only for
// infrastructure problems. The experiments are independent — each builds
// its own systems and models — so they are fanned out across one worker
// per core (RunAllWorkers for explicit control); the reports are identical
// to a serial run either way.
func RunAll() ([]*Report, error) { return RunAllWorkers(0) }

// RunAllWorkers is RunAll with an explicit worker count: 0 means one
// worker per core (GOMAXPROCS), 1 forces the serial loop. On error the
// returned slice holds the reports completed before the error was
// noticed, in order, with nil gaps for experiments not finished.
func RunAllWorkers(workers int) ([]*Report, error) {
	exps := All()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	out := make([]*Report, len(exps))
	if workers <= 1 {
		for i, e := range exps {
			rep, err := e.Run()
			if err != nil {
				return out[:i], fmt.Errorf("core: %s: %w", e.ID, err)
			}
			out[i] = rep
		}
		return out, nil
	}
	errs := make([]error, len(exps))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(exps) {
					return
				}
				out[i], errs[i] = exps[i].Run()
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return out[:i], fmt.Errorf("core: %s: %w", exps[i].ID, err)
		}
	}
	return out, nil
}
