package chaosproxy_test

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/chaosproxy"
	"repro/internal/client"
	"repro/internal/faults"
	"repro/internal/server"
)

// workloadResult collects everything a knowd workload produces that must
// be invariant under injected faults.
type workloadResult struct {
	States   []server.SessionState
	Verdicts []server.EvalResponse
}

// runWorkload drives one fixed muddy + R2-D2 workload through a client:
// session opens, eval batches at several chain links, announcements. All
// calls must succeed (the retrying client is expected to converge even
// when baseURL points at a chaos proxy).
func runWorkload(t *testing.T, c *client.Client) workloadResult {
	t.Helper()
	var res workloadResult
	record := func(st server.SessionState, err error) string {
		t.Helper()
		if err != nil {
			t.Fatalf("workload call failed: %v", err)
		}
		res.States = append(res.States, st)
		return st.Session
	}
	eval := func(sid string, formulas ...string) {
		t.Helper()
		ev, err := c.Eval(sid, server.EvalRequest{Formulas: formulas, Worlds: true})
		if err != nil {
			t.Fatalf("eval failed: %v", err)
		}
		res.Verdicts = append(res.Verdicts, ev)
	}

	muddySid := record(c.Open("muddy:3", 0))
	eval(muddySid, "K0 muddy1", "C (muddy0 | muddy1 | muddy2)")
	record(c.Announce(muddySid, "muddy0 | muddy1 | muddy2"))
	nobody := "~(K0 muddy0 | K0 ~muddy0) & ~(K1 muddy1 | K1 ~muddy1) & ~(K2 muddy2 | K2 ~muddy2)"
	record(c.Announce(muddySid, nobody))
	record(c.Announce(muddySid, nobody))
	eval(muddySid, "K0 muddy0 & K1 muddy1 & K2 muddy2", "C (muddy0 & muddy1 & muddy2)")

	r2d2Sid := record(c.Open("r2d2", 0))
	eval(r2d2Sid, "K1 sent", "Ce[1] sent", "Cv sent")
	record(c.Announce(r2d2Sid, "sent"))
	eval(r2d2Sid, "K1 sent")
	return res
}

// workloadCalls is how many mutating calls runWorkload makes: 2 opens, 4
// announces (father + two "nobody knows" on muddy, "sent" on R2-D2), 4
// evals. The chaos run must execute each exactly once server-side,
// however many duplicates the wire carries.
const (
	workloadOpens     = 2
	workloadAnnounces = 4
	workloadEvals     = 4
)

// chaosSeeds returns the convergence sweep seeds: 1–3 by default,
// overridable via CHAOS_SEEDS ("4,5,6") so flake sweeps can widen the net
// without editing the test. The convergence assertions are seed-free —
// every seed must produce the clean run's bytes — so any seed is fair.
func chaosSeeds(t *testing.T) []int64 {
	env := os.Getenv("CHAOS_SEEDS")
	if env == "" {
		return []int64{1, 2, 3}
	}
	var seeds []int64
	for _, part := range strings.Split(env, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEEDS: bad seed %q", part)
		}
		seeds = append(seeds, n)
	}
	return seeds
}

// TestChaosConvergence is the tentpole's acceptance test: the same
// workload runs once against a clean daemon and once, per seed, through a
// chaos proxy injecting delay, loss and duplication from the repo's own
// fault engine. The retrying client must converge to byte-identical
// verdicts, and the server's counters must show every logical call
// executed exactly once — duplicates absorbed by the idempotency window
// (dedupe hits, no recomputed evals, no double-advanced chains).
func TestChaosConvergence(t *testing.T) {
	cleanSrv := server.New(server.Config{})
	cleanTS := httptest.NewServer(cleanSrv.Handler())
	defer cleanTS.Close()
	clean := runWorkload(t, client.New(client.Config{BaseURL: cleanTS.URL}))
	cleanJSON, err := json.Marshal(clean)
	if err != nil {
		t.Fatal(err)
	}

	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			srv := server.New(server.Config{})
			srvTS := httptest.NewServer(srv.Handler())
			defer srvTS.Close()

			proxy, err := chaosproxy.New(chaosproxy.Config{
				Target: srvTS.URL,
				Plan: faults.Plan{
					Seed:  seed,
					Delay: faults.Uniform{Min: 1, MaxD: 3},
					Drop:  0.4,
					Dup:   0.4,
				},
				Tick: time.Millisecond,
				// Byte-level fates ride along: trickled reads must not
				// corrupt verdicts, and mid-body severs are one more
				// lost-response shape the idempotent retry must absorb.
				SlowLoris: 0.3,
				Sever:     0.3,
			})
			if err != nil {
				t.Fatal(err)
			}
			proxyTS := httptest.NewServer(proxy)
			defer proxyTS.Close()

			c := client.New(client.Config{
				BaseURL:           proxyTS.URL,
				Seed:              seed,
				DeterministicKeys: true,
				MaxAttempts:       30,
				BaseDelay:         time.Millisecond,
				MaxDelay:          8 * time.Millisecond,
			})
			chaos := runWorkload(t, c)
			chaosJSON, err := json.Marshal(chaos)
			if err != nil {
				t.Fatal(err)
			}
			if string(chaosJSON) != string(cleanJSON) {
				t.Fatalf("chaos run diverged from the clean run:\nclean: %s\nchaos: %s", cleanJSON, chaosJSON)
			}

			pst := proxy.StatsSnapshot()
			if pst.DroppedRequests+pst.DroppedResponses+pst.Duplicated == 0 {
				t.Fatalf("seed %d injected no faults; the run proves nothing: %+v", seed, pst)
			}
			sst := srv.StatsSnapshot()
			// Exactly-once execution server-side: duplicates and retries
			// never recompute an eval or advance a chain twice.
			if sst.Opened != workloadOpens {
				t.Errorf("opens executed %d times, want %d", sst.Opened, workloadOpens)
			}
			if sst.Announces != workloadAnnounces {
				t.Errorf("announces executed %d times, want %d (chain double-advanced or lost)", sst.Announces, workloadAnnounces)
			}
			if sst.Evals != workloadEvals {
				t.Errorf("evals executed %d times, want %d (verdict batch recomputed)", sst.Evals, workloadEvals)
			}
			// The wire carried duplicates (proxy-made or retry-made after a
			// dropped response); every one of them must have been absorbed
			// by the dedupe window rather than executed.
			if sst.DedupeHits == 0 && pst.Duplicated+pst.DroppedResponses > 0 {
				t.Errorf("faults injected (%+v) but no dedupe hits recorded: %+v", pst, sst)
			}
			// Sessions reflect exactly the workload's chains.
			if sst.Sessions != workloadOpens {
				t.Errorf("sessions: %d, want %d", sst.Sessions, workloadOpens)
			}
			t.Logf("seed %d: proxy %+v; server dedupe_hits=%d shed=%d; client retries=%d",
				seed, pst, sst.DedupeHits, sst.Shed, c.Retries())
		})
	}
}
