// Package chaosproxy is an HTTP proxy driven by the repository's own
// fault engine: every request's fate — extra delay, loss, duplication —
// is drawn from a seeded faults.Plan exactly the way the simulation
// engine draws message fates, so a chaos run against the knowd daemon is
// reproducible byte for byte from one int64 seed.
//
// Fates are order-independent: request index i draws from the stream
// plan.ForRun(i, ...) regardless of arrival interleaving, so concurrent
// clients do not perturb each other's faults and a replay with the same
// seed injects the same faults at the same request indices.
//
// Fault semantics, chosen to exercise both halves of the client/server
// robustness contract:
//
//   - delay: the sampled tick count becomes a real sleep before
//     forwarding (Tick scales a tick to wall time);
//   - drop: even request indices are dropped BEFORE the upstream (the
//     request never happened), odd indices are forwarded and their
//     RESPONSE is dropped (the server executed but the client cannot know
//     — precisely the case idempotency keys exist for); the client side
//     of the connection is severed so the caller sees a transport error;
//   - dup: a duplicated request is forwarded to the upstream first, its
//     response discarded, then the primary follows — the server's dedupe
//     window must collapse the pair or chains double-advance;
//   - slow-loris: the response body trickles back one byte per write (with
//     an optional per-byte pause), exercising clients that must survive a
//     dribbling read without declaring the peer dead;
//   - sever: the response is cut mid-body after the headers promised the
//     full length — the upstream executed, the client holds half a body
//     and a transport error, and only an idempotent retry can recover.
//
// The byte-level fates (slow-loris, sever) draw from their own per-request
// stream derived under a proxy-private label, so enabling them never
// shifts the delay/drop/dup sequence an existing seed pins.
package chaosproxy

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/faults"
)

// Config carries the proxy's knobs.
type Config struct {
	// Target is the upstream base URL, e.g. "http://127.0.0.1:7433".
	Target string
	// Plan is the seeded fault plan; Plan.Delay is required.
	Plan faults.Plan
	// Tick scales one delay tick to wall time. Default 1ms.
	Tick time.Duration
	// SlowLoris is the per-request probability that the response body is
	// trickled back one byte per write instead of in one copy.
	SlowLoris float64
	// Sever is the per-request probability that the response is cut
	// mid-body: headers and half the body are delivered, then the
	// connection dies with the Content-Length promise unmet.
	Sever float64
	// TrickleDelay is the pause between bytes of a slow-loris response.
	// Default 0: the trickle is byte-wise but adds no wall time, so tests
	// can exercise the read path with zero sleeps.
	TrickleDelay time.Duration
	// Logf receives per-request fate lines; nil discards them.
	Logf func(format string, args ...any)
	// HTTPClient overrides the upstream transport.
	HTTPClient *http.Client
}

// Stats counts what the proxy did to traffic.
type Stats struct {
	Requests         int64 `json:"requests"`
	Delayed          int64 `json:"delayed"`
	DroppedRequests  int64 `json:"dropped_requests"`
	DroppedResponses int64 `json:"dropped_responses"`
	Duplicated       int64 `json:"duplicated"`
	Trickled         int64 `json:"trickled"`
	Severed          int64 `json:"severed"`
}

// Proxy implements http.Handler. Safe for concurrent use.
type Proxy struct {
	cfg    Config
	client *http.Client
	idx    atomic.Int64

	requests, delayed, duplicated     atomic.Int64
	droppedRequests, droppedResponses atomic.Int64
	trickled, severed                 atomic.Int64
}

// New validates the plan and builds a proxy.
func New(cfg Config) (*Proxy, error) {
	if err := cfg.Plan.Validate(); err != nil {
		return nil, err
	}
	if cfg.Target == "" {
		return nil, fmt.Errorf("chaosproxy: no target configured")
	}
	for name, prob := range map[string]float64{"slow-loris": cfg.SlowLoris, "sever": cfg.Sever} {
		if prob < 0 || prob > 1 {
			return nil, fmt.Errorf("chaosproxy: %s probability %v outside [0, 1]", name, prob)
		}
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	client := cfg.HTTPClient
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Proxy{cfg: cfg, client: client}, nil
}

// StatsSnapshot returns the current counters.
func (p *Proxy) StatsSnapshot() Stats {
	return Stats{
		Requests:         p.requests.Load(),
		Delayed:          p.delayed.Load(),
		DroppedRequests:  p.droppedRequests.Load(),
		DroppedResponses: p.droppedResponses.Load(),
		Duplicated:       p.duplicated.Load(),
		Trickled:         p.trickled.Load(),
		Severed:          p.severed.Load(),
	}
}

// fateFor draws request i's fate from its own order-independent stream
// (the horizon is irrelevant to message fates).
func (p *Proxy) fateFor(i int) faults.MessageFate {
	return p.cfg.Plan.ForRun(i, 1, 1).SampleMessage()
}

// byteFateLabel roots the per-request stream the byte-level fates draw
// from; it must stay distinct from the faults package's internal labels so
// the message-fate sequences pinned by existing seeds never shift.
const byteFateLabel = 0xb17e

// byteFate is the delivery-time fate of one response body.
type byteFate struct {
	trickle bool // slow-loris: one byte per write
	sever   bool // cut mid-body; wins over trickle when both are drawn
}

// byteFateFor draws request i's byte-level fate from its own
// order-independent stream, exactly as fateFor does for message fates.
func (p *Proxy) byteFateFor(i int) byteFate {
	s := p.cfg.Plan.Derive(byteFateLabel, uint64(i))
	return byteFate{
		trickle: s.Bool(p.cfg.SlowLoris),
		sever:   s.Bool(p.cfg.Sever),
	}
}

func (p *Proxy) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	i := int(p.idx.Add(1) - 1)
	fate := p.fateFor(i)
	p.requests.Add(1)

	body, err := io.ReadAll(r.Body)
	if err != nil {
		sever(w)
		return
	}

	if fate.Delay > 1 {
		// Delay 1 is the channel's baseline tick; only the excess is real
		// wall time, so a fault-free Fixed{1} plan adds no latency.
		p.delayed.Add(1)
		time.Sleep(time.Duration(fate.Delay-1) * p.cfg.Tick)
	}

	if fate.Dropped && i%2 == 0 {
		// Request lost on the way in: the upstream never sees it.
		p.droppedRequests.Add(1)
		p.logf("req %d %s %s: dropped request", i, r.Method, r.URL.Path)
		sever(w)
		return
	}

	if fate.DupDelay > 0 {
		// The duplicate goes first so the primary's response is the one
		// the client receives; the server's idempotency window has to
		// collapse the pair.
		p.duplicated.Add(1)
		p.logf("req %d %s %s: duplicated", i, r.Method, r.URL.Path)
		if resp, err := p.forward(r, body); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}

	resp, err := p.forward(r, body)
	if err != nil {
		p.logf("req %d %s %s: upstream error: %v", i, r.Method, r.URL.Path, err)
		sever(w)
		return
	}
	defer resp.Body.Close()

	if fate.Dropped {
		// Response lost on the way back: the upstream executed, the
		// client saw nothing.
		io.Copy(io.Discard, resp.Body)
		p.droppedResponses.Add(1)
		p.logf("req %d %s %s: dropped response (%d)", i, r.Method, r.URL.Path, resp.StatusCode)
		sever(w)
		return
	}

	p.deliver(w, r, resp, i)
}

// deliver writes the upstream response to the client, applying the
// request's byte-level fate: intact in one copy, trickled byte by byte, or
// severed halfway through a body the headers promised in full.
func (p *Proxy) deliver(w http.ResponseWriter, r *http.Request, resp *http.Response, i int) {
	bf := p.byteFateFor(i)
	if !bf.trickle && !bf.sever {
		for k, vs := range resp.Header {
			w.Header()[k] = vs
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		sever(w)
		return
	}
	for k, vs := range resp.Header {
		w.Header()[k] = vs
	}
	// Both fates need the full length promised up front: the trickle so the
	// client knows when the dribble is done, the sever so the half-delivered
	// body is a broken promise (unexpected EOF), not a short success.
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))

	if bf.sever {
		p.severed.Add(1)
		p.logf("req %d %s %s: severed mid-body (%d, %d of %d bytes)",
			i, r.Method, r.URL.Path, resp.StatusCode, len(body)/2, len(body))
		if len(body) == 0 {
			// Nothing to cut in half; kill the connection before any
			// response so the client still sees a transport error.
			sever(w)
			return
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(body[:len(body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		sever(w)
		return
	}

	p.trickled.Add(1)
	p.logf("req %d %s %s: slow-loris trickle (%d bytes)", i, r.Method, r.URL.Path, len(body))
	w.WriteHeader(resp.StatusCode)
	f, _ := w.(http.Flusher)
	for j := range body {
		w.Write(body[j : j+1])
		if f != nil {
			f.Flush()
		}
		if p.cfg.TrickleDelay > 0 {
			time.Sleep(p.cfg.TrickleDelay)
		}
	}
}

// forward replays the request against the upstream.
func (p *Proxy) forward(r *http.Request, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(r.Method, p.cfg.Target+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for k, vs := range r.Header {
		req.Header[k] = vs
	}
	return p.client.Do(req)
}

// sever kills the client connection without an HTTP response, so the
// caller experiences network loss rather than a status code. When the
// connection cannot be hijacked the proxy falls back to 502, which the
// retrying client treats the same way.
func sever(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	w.WriteHeader(http.StatusBadGateway)
}
