package chaosproxy

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
)

func echoUpstream(hits *atomic.Int64) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("X-Key", r.Header.Get("Idempotency-Key"))
		w.Write([]byte(r.Method + " " + r.URL.Path + " "))
		w.Write(body)
	}))
}

func newProxy(t *testing.T, target string, plan faults.Plan) (*Proxy, *httptest.Server) {
	t.Helper()
	p, err := New(Config{Target: target, Plan: plan, Tick: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	return p, ts
}

// TestFaultFreePassThrough: a plan with only the baseline delay is a
// transparent proxy — bodies, headers and methods survive both ways.
func TestFaultFreePassThrough(t *testing.T) {
	var hits atomic.Int64
	up := echoUpstream(&hits)
	defer up.Close()
	p, ts := newProxy(t, up.URL, faults.Plan{Seed: 1, Delay: faults.Fixed{D: 1}})

	req, _ := http.NewRequest("POST", ts.URL+"/v1/thing", bytes.NewReader([]byte("payload")))
	req.Header.Set("Idempotency-Key", "k1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "POST /v1/thing payload" {
		t.Fatalf("body: %q", body)
	}
	if resp.Header.Get("X-Key") != "k1" {
		t.Fatal("idempotency key did not survive the proxy")
	}
	st := p.StatsSnapshot()
	if st.Requests != 1 || st.DroppedRequests != 0 || st.DroppedResponses != 0 || st.Duplicated != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if hits.Load() != 1 {
		t.Fatalf("upstream hits: %d", hits.Load())
	}
}

// TestFatesOrderIndependent: request i's fate depends only on (seed, i),
// so two proxies with the same plan draw identical fate sequences, and
// the sequence does not shift when earlier fates are consumed or not.
func TestFatesOrderIndependent(t *testing.T) {
	plan := faults.Plan{Seed: 7, Delay: faults.Uniform{Min: 1, MaxD: 4}, Drop: 0.3, Dup: 0.3}
	a, err := New(Config{Target: "http://unused", Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Target: "http://unused", Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if a.fateFor(i) != b.fateFor(i) {
			t.Fatalf("fate %d differs across proxies", i)
		}
	}
	// Reading index 50 before index 0 draws the same fates.
	if a.fateFor(50) != b.fateFor(50) || a.fateFor(0) != b.fateFor(0) {
		t.Fatal("fate depends on draw order")
	}
	// A drop-everything plan differs from a drop-nothing plan somewhere.
	seen := false
	for i := 0; i < 64 && !seen; i++ {
		f := a.fateFor(i)
		seen = f.Dropped || f.DupDelay > 0
	}
	if !seen {
		t.Fatal("plan with drop=0.3 dup=0.3 injected nothing in 64 fates")
	}
}

// TestDropSemantics: with Drop=1 every request fails at the client, but
// only odd request indices reach the upstream (request-drop vs
// response-drop alternation).
func TestDropSemantics(t *testing.T) {
	var hits atomic.Int64
	up := echoUpstream(&hits)
	defer up.Close()
	p, ts := newProxy(t, up.URL, faults.Plan{Seed: 1, Delay: faults.Fixed{D: 1}, Drop: 1})

	for i := 0; i < 4; i++ {
		resp, err := http.Post(ts.URL+"/x", "text/plain", bytes.NewReader(nil))
		if err == nil {
			resp.Body.Close()
			t.Fatalf("request %d: dropped fate produced a response (%d)", i, resp.StatusCode)
		}
	}
	if hits.Load() != 2 {
		t.Fatalf("upstream hits: %d, want 2 (odd indices only)", hits.Load())
	}
	st := p.StatsSnapshot()
	if st.DroppedRequests != 2 || st.DroppedResponses != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestDupSemantics: with Dup=1 the upstream sees each request twice and
// the client still gets exactly one good response.
func TestDupSemantics(t *testing.T) {
	var hits atomic.Int64
	up := echoUpstream(&hits)
	defer up.Close()
	p, ts := newProxy(t, up.URL, faults.Plan{Seed: 1, Delay: faults.Fixed{D: 1}, Dup: 1})

	resp, err := http.Post(ts.URL+"/x", "text/plain", bytes.NewReader([]byte("hi")))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "POST /x hi" {
		t.Fatalf("body: %q", body)
	}
	if hits.Load() != 2 {
		t.Fatalf("upstream hits: %d, want 2", hits.Load())
	}
	if st := p.StatsSnapshot(); st.Duplicated != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{Target: "http://x", Plan: faults.Plan{}}); err == nil {
		t.Fatal("plan without delay accepted")
	}
	if _, err := New(Config{Plan: faults.Plan{Delay: faults.Fixed{D: 1}}}); err == nil {
		t.Fatal("empty target accepted")
	}
	plan := faults.Plan{Seed: 1, Delay: faults.Fixed{D: 1}}
	if _, err := New(Config{Target: "http://x", Plan: plan, SlowLoris: 1.5}); err == nil {
		t.Fatal("slow-loris probability above 1 accepted")
	}
	if _, err := New(Config{Target: "http://x", Plan: plan, Sever: -0.1}); err == nil {
		t.Fatal("negative sever probability accepted")
	}
}

// TestSlowLorisDelivery: a trickled response arrives byte by byte but
// intact — the client reads the identical body, just off a dribbling wire.
// TrickleDelay stays 0, so the test adds no wall-clock sleeps.
func TestSlowLorisDelivery(t *testing.T) {
	var hits atomic.Int64
	up := echoUpstream(&hits)
	defer up.Close()
	p, err := New(Config{
		Target: up.URL,
		Plan:   faults.Plan{Seed: 1, Delay: faults.Fixed{D: 1}},
		// SlowLoris 1 trickles every response; Sever stays 0.
		SlowLoris: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/x", "text/plain", bytes.NewReader([]byte("dribble")))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "POST /x dribble" {
		t.Fatalf("trickled body corrupted: %q", body)
	}
	if st := p.StatsSnapshot(); st.Trickled != 1 || st.Severed != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSeverMidBody: a severed response reaches the upstream (the request
// executed) but dies mid-body at the client — an error the caller can only
// repair by retrying, which is exactly the lost-response case idempotency
// keys and announce link preconditions exist for.
func TestSeverMidBody(t *testing.T) {
	var hits atomic.Int64
	up := echoUpstream(&hits)
	defer up.Close()
	p, err := New(Config{
		Target: up.URL,
		Plan:   faults.Plan{Seed: 1, Delay: faults.Fixed{D: 1}},
		Sever:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/x", "text/plain", bytes.NewReader([]byte("payload")))
	if err == nil {
		// The headers may arrive before the cut; the body read must fail.
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil {
			t.Fatalf("severed response delivered in full: %q", body)
		}
	}
	if hits.Load() != 1 {
		t.Fatalf("upstream hits: %d, want 1 (sever happens after execution)", hits.Load())
	}
	if st := p.StatsSnapshot(); st.Severed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestByteFatesOrderIndependent: byte-level fates are (seed, index)
// functions like message fates, and enabling them must not shift the
// message-fate sequence existing seeds pin.
func TestByteFatesOrderIndependent(t *testing.T) {
	plan := faults.Plan{Seed: 7, Delay: faults.Uniform{Min: 1, MaxD: 4}, Drop: 0.3, Dup: 0.3}
	plain, err := New(Config{Target: "http://unused", Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := New(Config{Target: "http://unused", Plan: plan, SlowLoris: 0.3, Sever: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	trickled, severed := 0, 0
	for i := 0; i < 64; i++ {
		if plain.fateFor(i) != noisy.fateFor(i) {
			t.Fatalf("byte fates shifted message fate %d", i)
		}
		bf := noisy.byteFateFor(i)
		if bf != noisy.byteFateFor(i) {
			t.Fatalf("byte fate %d not a pure function of (seed, index)", i)
		}
		if bf.trickle {
			trickled++
		}
		if bf.sever {
			severed++
		}
	}
	if trickled == 0 || severed == 0 {
		t.Fatalf("0.3/0.3 plan drew no byte fates in 64 requests (trickle %d, sever %d)", trickled, severed)
	}
	// Probability zero draws nothing, whatever the seed's stream holds.
	for i := 0; i < 64; i++ {
		if bf := plain.byteFateFor(i); bf.trickle || bf.sever {
			t.Fatalf("zero-probability byte fate fired at %d", i)
		}
	}
}

// TestUpstreamDownSevers: a dead upstream severs the client connection
// (transport error), never a fabricated 200.
func TestUpstreamDownSevers(t *testing.T) {
	_, ts := newProxy(t, "http://127.0.0.1:1", faults.Plan{Seed: 1, Delay: faults.Fixed{D: 1}})
	resp, err := http.Get(ts.URL + "/x")
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode < 500 {
			t.Fatalf("dead upstream produced %d", resp.StatusCode)
		}
	}
}
