package server

import (
	"bytes"
	"container/list"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
)

// dedupeWindow is the server-side single-flight idempotency table: the
// first request carrying a given Idempotency-Key executes and stores its
// response; duplicates that arrive while it is in flight wait on done and
// replay the stored bytes, and duplicates that arrive after it completed
// replay immediately. Either way the handler body runs once per key — a
// retried eval is never recomputed and a retried announce never advances
// the session chain twice.
//
// Entries whose response was transient (load-shed 429, draining 503,
// panic 500) are dropped instead of stored, so a client retrying the same
// key gets a fresh execution once capacity returns.
type dedupeWindow struct {
	mu      sync.Mutex
	max     int
	entries map[string]*dedupeEntry
	order   *list.List // of string keys, oldest first; completed entries evict FIFO
}

type dedupeEntry struct {
	done      chan struct{} // closed when status/body are final
	status    int
	body      []byte
	header    http.Header
	transient bool // do not keep: a retry should re-execute
	elem      *list.Element
}

func newDedupeWindow(max int) *dedupeWindow {
	return &dedupeWindow{
		max:     max,
		entries: make(map[string]*dedupeEntry),
		order:   list.New(),
	}
}

// begin claims key. The first caller gets (entry, true) and must call
// finish exactly once; later callers get (entry, false) and wait on done.
func (d *dedupeWindow) begin(key string) (*dedupeEntry, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.entries[key]; ok {
		return e, false
	}
	d.evictLocked()
	e := &dedupeEntry{done: make(chan struct{})}
	e.elem = d.order.PushBack(key)
	d.entries[key] = e
	return e, true
}

// finish publishes the executed response (or drops the entry when the
// response is transient) and releases every waiter.
func (d *dedupeWindow) finish(key string, e *dedupeEntry, status int, header http.Header, body []byte, transient bool) {
	d.mu.Lock()
	e.status = status
	e.header = header
	e.body = body
	e.transient = transient
	if transient {
		delete(d.entries, key)
		d.order.Remove(e.elem)
	}
	d.mu.Unlock()
	close(e.done)
}

// evictLocked drops oldest completed entries until the window has room.
// In-flight entries are skipped: their waiters still need the result.
func (d *dedupeWindow) evictLocked() {
	for el := d.order.Front(); el != nil && d.order.Len() >= d.max; {
		key := el.Value.(string)
		next := el.Next()
		e := d.entries[key]
		select {
		case <-e.done:
			delete(d.entries, key)
			d.order.Remove(el)
		default: // in flight
		}
		el = next
	}
}

// size reports the number of tracked keys (testing hook).
func (d *dedupeWindow) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// Deduper packages the idempotency machinery as reusable middleware:
// Wrap gives any mutating handler single-flight Idempotency-Key semantics
// backed by one shared window. knowd fronts its compute endpoints with one,
// and knowrouter fronts its own routes with another, so a duplicate request
// is absorbed at whichever layer sees it first — the router's window
// collapses client retries before they fan upstream, and the shard's window
// collapses the router's own retried forwards.
type Deduper struct {
	win     *dedupeWindow
	hits    atomic.Int64
	logf    func(format string, args ...any)
	onPanic func()
}

// NewDeduper builds a Deduper remembering up to window keys (<=0 means
// 256). logf receives panic log lines and onPanic fires once per recovered
// handler panic; either may be nil.
func NewDeduper(window int, logf func(format string, args ...any), onPanic func()) *Deduper {
	if window <= 0 {
		window = 256
	}
	return &Deduper{win: newDedupeWindow(window), logf: logf, onPanic: onPanic}
}

// Hits reports how many duplicate requests replayed a stored response.
func (d *Deduper) Hits() int64 { return d.hits.Load() }

// Wrap gives h Idempotency-Key semantics: the first request with a key
// executes against a response recorder, stores the bytes, and every
// duplicate — concurrent or later — replays them. Transient outcomes
// (shed, draining, panic, client disconnect) are not stored, so a retry of
// the same key re-executes once conditions clear.
func (d *Deduper) Wrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get("Idempotency-Key")
		if key == "" {
			h(w, r)
			return
		}
		e, first := d.win.begin(key)
		if !first {
			select {
			case <-e.done:
			case <-r.Context().Done():
				return // duplicate's client gone before the original finished
			}
			d.hits.Add(1)
			writeStored(w, e)
			return
		}
		rec := &recorder{header: make(http.Header)}
		func() {
			defer func() {
				if p := recover(); p != nil {
					if d.onPanic != nil {
						d.onPanic()
					}
					if d.logf != nil {
						d.logf("panic serving %s %s: %v", r.Method, r.URL.Path, p)
					}
					rec.status = http.StatusInternalServerError
					rec.buf.Reset()
					rec.header.Set("Content-Type", "application/json")
					body, _ := json.Marshal(errorBody{Error: fmt.Sprintf("internal error: %v", p)})
					rec.buf.Write(body)
				}
			}()
			h(rec, r)
		}()
		status := rec.status
		if status == 0 {
			// The handler wrote nothing (client disconnected mid-compute).
			status = 499
		}
		transient := status == http.StatusTooManyRequests ||
			status == http.StatusServiceUnavailable ||
			status >= 500 || status == 499
		d.win.finish(key, e, status, rec.header, rec.buf.Bytes(), transient)
		writeStored(w, e)
	}
}

// recorder captures a handler's response for the dedupe window.
type recorder struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}

func (r *recorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.buf.Write(b)
}

func writeStored(w http.ResponseWriter, e *dedupeEntry) {
	if e.status == 499 {
		return // nothing was produced; the duplicate gets nothing to replay
	}
	for k, vs := range e.header {
		w.Header()[k] = vs
	}
	w.WriteHeader(e.status)
	w.Write(e.body)
}
