package server

import (
	"container/list"
	"net/http"
	"sync"
)

// dedupeWindow is the server-side single-flight idempotency table: the
// first request carrying a given Idempotency-Key executes and stores its
// response; duplicates that arrive while it is in flight wait on done and
// replay the stored bytes, and duplicates that arrive after it completed
// replay immediately. Either way the handler body runs once per key — a
// retried eval is never recomputed and a retried announce never advances
// the session chain twice.
//
// Entries whose response was transient (load-shed 429, draining 503,
// panic 500) are dropped instead of stored, so a client retrying the same
// key gets a fresh execution once capacity returns.
type dedupeWindow struct {
	mu      sync.Mutex
	max     int
	entries map[string]*dedupeEntry
	order   *list.List // of string keys, oldest first; completed entries evict FIFO
}

type dedupeEntry struct {
	done      chan struct{} // closed when status/body are final
	status    int
	body      []byte
	header    http.Header
	transient bool // do not keep: a retry should re-execute
	elem      *list.Element
}

func newDedupeWindow(max int) *dedupeWindow {
	return &dedupeWindow{
		max:     max,
		entries: make(map[string]*dedupeEntry),
		order:   list.New(),
	}
}

// begin claims key. The first caller gets (entry, true) and must call
// finish exactly once; later callers get (entry, false) and wait on done.
func (d *dedupeWindow) begin(key string) (*dedupeEntry, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.entries[key]; ok {
		return e, false
	}
	d.evictLocked()
	e := &dedupeEntry{done: make(chan struct{})}
	e.elem = d.order.PushBack(key)
	d.entries[key] = e
	return e, true
}

// finish publishes the executed response (or drops the entry when the
// response is transient) and releases every waiter.
func (d *dedupeWindow) finish(key string, e *dedupeEntry, status int, header http.Header, body []byte, transient bool) {
	d.mu.Lock()
	e.status = status
	e.header = header
	e.body = body
	e.transient = transient
	if transient {
		delete(d.entries, key)
		d.order.Remove(e.elem)
	}
	d.mu.Unlock()
	close(e.done)
}

// evictLocked drops oldest completed entries until the window has room.
// In-flight entries are skipped: their waiters still need the result.
func (d *dedupeWindow) evictLocked() {
	for el := d.order.Front(); el != nil && d.order.Len() >= d.max; {
		key := el.Value.(string)
		next := el.Next()
		e := d.entries[key]
		select {
		case <-e.done:
			delete(d.entries, key)
			d.order.Remove(el)
		default: // in flight
		}
		el = next
	}
}

// size reports the number of tracked keys (testing hook).
func (d *dedupeWindow) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}
