package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/kripke"
	"repro/internal/logic"
)

// errInconsistent marks an announcement whose denotation is empty on the
// session's current model: accepting it would leave a zero-world structure,
// so the chain refuses it and the handler maps this to 422.
var errInconsistent = errors.New("announcement denotation is empty on the current model")

// session is one client's warm announcement chain over a loaded system.
// The PR-4 incremental machinery lives behind ld.view: every announcement
// pays a seeded quotient re-refinement instead of a from-scratch Minimize,
// which is exactly what makes keeping sessions warm worthwhile.
type session struct {
	id   string
	seed int64

	// mu serializes all compute on the session: eval batches read the
	// current link's model and announcements replace it, so chain links can
	// never interleave even when a client (or a duplicating network) races
	// requests against one session.
	mu sync.Mutex

	ld        *loaded
	announced []string // announcement sources in chain order
	lastUsed  time.Time
}

// touch records use for idle eviction.
func (ss *session) touch(now time.Time) { ss.lastUsed = now }

// evalBatch evaluates fs over the session's current model. At link zero of
// a runs-based system the point model serves the batch, so temporal
// formulas (C^eps, C^dia, C^T, ...) work against the unrestricted
// structure; after the first announcement the chain view has moved off the
// original model and only the epistemic fragment is meaningful — temporal
// operators then fail with kripke.ErrTemporal, which the handler reports
// as 422 rather than recomputing a stale answer.
func (ss *session) evalBatch(ctx context.Context, fs []logic.Formula, workers int) ([]*bitset.Set, error) {
	if len(ss.announced) == 0 && ss.ld.pm != nil {
		return ss.ld.pm.EvalBatchCtx(ctx, fs, kripke.BatchWorkers(workers))
	}
	return ss.ld.view.EvalBatchCtx(ctx, fs, kripke.BatchWorkers(workers))
}

// announce publicly announces f: the current view is restricted to f's
// denotation (incremental quotient path), the marked world is tracked
// through by rank, and the source is appended to the chain record so the
// session can be persisted and replayed.
func (ss *session) announce(src string, f logic.Formula) error {
	keep, err := ss.ld.view.Eval(f)
	if err != nil {
		return err
	}
	if keep.IsEmpty() {
		return fmt.Errorf("%w: %s", errInconsistent, src)
	}
	if ss.ld.marked >= 0 {
		if keep.Contains(ss.ld.marked) {
			ss.ld.marked = keep.Rank(ss.ld.marked)
		} else {
			ss.ld.marked = -1
		}
	}
	ss.ld.view = ss.ld.view.Restrict(keep, 1)
	ss.announced = append(ss.announced, src)
	return nil
}

// replay rebuilds a persisted chain by announcing each recorded source in
// order against a freshly loaded system.
func (ss *session) replay(sources []string) error {
	for _, src := range sources {
		f, err := logic.Parse(src)
		if err != nil {
			return fmt.Errorf("replaying %q: %w", src, err)
		}
		if err := ss.announce(src, f); err != nil {
			return fmt.Errorf("replaying %q: %w", src, err)
		}
	}
	return nil
}
