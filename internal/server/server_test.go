package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/runs"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// do sends one JSON request and returns the status code and body bytes.
// A non-empty key is sent as the Idempotency-Key header.
func do(t *testing.T, ts *httptest.Server, method, path string, body any, key string) (int, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func decode[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("decoding %q: %v", data, err)
	}
	return v
}

// TestMuddySessionLifecycle drives the classic three-muddy-children
// dialogue through the HTTP surface: open, evaluate, announce the father's
// statement and two rounds of "nobody knows", and watch the chain shrink
// the model to the single all-muddy world where everyone finally knows.
func TestMuddySessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, body := do(t, ts, "POST", "/v1/sessions", OpenRequest{System: "muddy:3"}, "")
	if code != http.StatusCreated {
		t.Fatalf("open: status %d: %s", code, body)
	}
	st := decode[SessionState](t, body)
	if st.Worlds != 8 || st.Agents != 3 || st.Link != 0 || st.Marked < 0 {
		t.Fatalf("open state: %+v", st)
	}
	sid := st.Session

	code, body = do(t, ts, "POST", "/v1/sessions/"+sid+"/eval", EvalRequest{
		Formulas: []string{"K0 muddy1", "K0 muddy0", "C (muddy0 | muddy1 | muddy2)"},
		Worlds:   true,
	}, "")
	if code != http.StatusOK {
		t.Fatalf("eval: status %d: %s", code, body)
	}
	ev := decode[EvalResponse](t, body)
	if len(ev.Verdicts) != 3 {
		t.Fatalf("verdicts: %+v", ev)
	}
	// Child 0 sees the others: K0 muddy1 holds exactly where child 1 is
	// muddy (4 of 8 worlds), and holds at the actual all-muddy world.
	if v := ev.Verdicts[0]; v.Count != 4 || v.Marked == nil || !*v.Marked || len(v.Worlds) != 4 {
		t.Fatalf("K0 muddy1: %+v", v)
	}
	// No child knows its own state before any announcement.
	if v := ev.Verdicts[1]; v.Count != 0 || v.Marked == nil || *v.Marked {
		t.Fatalf("K0 muddy0: %+v", v)
	}
	if v := ev.Verdicts[2]; v.Count != 0 {
		t.Fatalf("C of disjunction before announcement: %+v", v)
	}

	nobody := "~(K0 muddy0 | K0 ~muddy0) & ~(K1 muddy1 | K1 ~muddy1) & ~(K2 muddy2 | K2 ~muddy2)"
	wantWorlds := []int{7, 4, 1}
	for i, src := range []string{"muddy0 | muddy1 | muddy2", nobody, nobody} {
		code, body = do(t, ts, "POST", "/v1/sessions/"+sid+"/announce", AnnounceRequest{Formula: src}, "")
		if code != http.StatusOK {
			t.Fatalf("announce %d: status %d: %s", i, code, body)
		}
		st = decode[SessionState](t, body)
		if st.Link != i+1 || st.Worlds != wantWorlds[i] {
			t.Fatalf("announce %d: state %+v, want link %d worlds %d", i, st, i+1, wantWorlds[i])
		}
		if st.Marked < 0 {
			t.Fatalf("announce %d eliminated the actual world: %+v", i, st)
		}
	}

	code, body = do(t, ts, "POST", "/v1/sessions/"+sid+"/eval", EvalRequest{
		Formulas: []string{"K0 muddy0 & K1 muddy1 & K2 muddy2", "C (muddy0 & muddy1 & muddy2)"},
	}, "")
	if code != http.StatusOK {
		t.Fatalf("final eval: status %d: %s", code, body)
	}
	ev = decode[EvalResponse](t, body)
	for _, v := range ev.Verdicts {
		if v.Count != 1 || v.Marked == nil || !*v.Marked {
			t.Fatalf("after the dialogue: %+v", v)
		}
	}

	// A fourth "nobody knows" now contradicts the model: 422, link frozen.
	code, body = do(t, ts, "POST", "/v1/sessions/"+sid+"/announce", AnnounceRequest{Formula: nobody}, "")
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("inconsistent announcement: status %d: %s", code, body)
	}
	code, body = do(t, ts, "DELETE", "/v1/sessions/"+sid, nil, "")
	if code != http.StatusOK {
		t.Fatalf("close: status %d: %s", code, body)
	}
}

// TestR2D2MatchesDirectModel pins the serving layer against the library:
// the verdict world sets coming back over HTTP are exactly what evaluating
// on the underlying point model yields, and temporal formulas work at link
// zero, then fail with 422 once an announcement moves the session off the
// original structure.
func TestR2D2MatchesDirectModel(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, body := do(t, ts, "POST", "/v1/sessions", OpenRequest{System: "r2d2"}, "")
	if code != http.StatusCreated {
		t.Fatalf("open: status %d: %s", code, body)
	}
	st := decode[SessionState](t, body)
	sid := st.Session

	sys := core.R2D2Chain(6, 9)
	pm := sys.Model(runs.CompleteHistoryView, runs.Interpretation{
		"sent": runs.StablyTrue(runs.SentBy("m")),
	})
	if st.Worlds != pm.NumWorlds() {
		t.Fatalf("worlds %d, direct model has %d", st.Worlds, pm.NumWorlds())
	}

	for _, src := range []string{"K1 sent", "Ce[1] sent", "Cv sent"} {
		code, body = do(t, ts, "POST", "/v1/sessions/"+sid+"/eval", EvalRequest{
			Formulas: []string{src}, Worlds: true,
		}, "")
		if code != http.StatusOK {
			t.Fatalf("eval %q: status %d: %s", src, code, body)
		}
		ev := decode[EvalResponse](t, body)
		want, err := pm.Eval(logic.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		v := ev.Verdicts[0]
		if v.Count != want.Count() {
			t.Fatalf("%q: served count %d, direct %d", src, v.Count, want.Count())
		}
		got := make(map[int]bool, len(v.Worlds))
		for _, w := range v.Worlds {
			got[w] = true
		}
		for _, w := range want.Elements() {
			if !got[w] {
				t.Fatalf("%q: served worlds miss %d", src, w)
			}
		}
	}

	code, body = do(t, ts, "POST", "/v1/sessions/"+sid+"/announce", AnnounceRequest{Formula: "sent"}, "")
	if code != http.StatusOK {
		t.Fatalf("announce sent: status %d: %s", code, body)
	}
	st = decode[SessionState](t, body)

	// Publicly announcing sent makes it common knowledge on the restricted
	// model: K1 sent holds at every surviving world.
	code, body = do(t, ts, "POST", "/v1/sessions/"+sid+"/eval", EvalRequest{
		Formulas: []string{"K1 sent"},
	}, "")
	if code != http.StatusOK {
		t.Fatalf("eval after announce: status %d: %s", code, body)
	}
	if v := decode[EvalResponse](t, body).Verdicts[0]; v.Count != st.Worlds {
		t.Fatalf("K1 sent after announcing sent: count %d of %d worlds", v.Count, st.Worlds)
	}

	// Temporal operators need the run/time structure the restricted chain
	// no longer has.
	code, body = do(t, ts, "POST", "/v1/sessions/"+sid+"/eval", EvalRequest{
		Formulas: []string{"Ce[1] sent"},
	}, "")
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("temporal after announce: status %d: %s", code, body)
	}
}

// TestScenarioAndAttackSystems opens the remaining loader paths and spot
// checks a knowledge fact on each.
func TestScenarioAndAttackSystems(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, body := do(t, ts, "POST", "/v1/sessions", OpenRequest{System: "scenario:sync-fixed"}, "")
	if code != http.StatusCreated {
		t.Fatalf("open scenario: status %d: %s", code, body)
	}
	st := decode[SessionState](t, body)
	// The sync-fixed witness point attains full common knowledge of the
	// broadcast fact (the golden matrix's first row).
	code, body = do(t, ts, "POST", "/v1/sessions/"+st.Session+"/eval", EvalRequest{
		Formulas: []string{"C sent"},
	}, "")
	if code != http.StatusOK {
		t.Fatalf("eval scenario: status %d: %s", code, body)
	}
	if v := decode[EvalResponse](t, body).Verdicts[0]; v.Marked == nil || !*v.Marked {
		t.Fatalf("C sent at the sync-fixed witness: %+v", v)
	}

	code, body = do(t, ts, "POST", "/v1/sessions", OpenRequest{System: "attack"}, "")
	if code != http.StatusCreated {
		t.Fatalf("open attack: status %d: %s", code, body)
	}
	st = decode[SessionState](t, body)
	if st.Agents != 2 {
		t.Fatalf("attack agents: %+v", st)
	}
	// Announcing the first delivery bound restricts the model; the session
	// survives with a consistent chain.
	code, body = do(t, ts, "POST", "/v1/sessions/"+st.Session+"/announce", AnnounceRequest{Formula: "del1"}, "")
	if code != http.StatusOK {
		t.Fatalf("announce del1: status %d: %s", code, body)
	}
	after := decode[SessionState](t, body)
	if after.Link != 1 || after.Worlds > st.Worlds {
		t.Fatalf("announce del1: %+v (was %+v)", after, st)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	for _, tc := range []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"unknown system", "POST", "/v1/sessions", OpenRequest{System: "quantum"}, http.StatusBadRequest},
		{"bad muddy count", "POST", "/v1/sessions", OpenRequest{System: "muddy:99"}, http.StatusBadRequest},
		{"bad scenario", "POST", "/v1/sessions", OpenRequest{System: "scenario:quantum"}, http.StatusBadRequest},
		{"malformed body", "POST", "/v1/sessions", "not an object", http.StatusBadRequest},
		{"eval no session", "POST", "/v1/sessions/s999/eval", EvalRequest{Formulas: []string{"p"}}, http.StatusNotFound},
		{"announce no session", "POST", "/v1/sessions/s999/announce", AnnounceRequest{Formula: "p"}, http.StatusNotFound},
		{"close no session", "DELETE", "/v1/sessions/s999", nil, http.StatusNotFound},
	} {
		code, body := do(t, ts, tc.method, tc.path, tc.body, "")
		if code != tc.want {
			t.Errorf("%s: status %d, want %d: %s", tc.name, code, tc.want, body)
		}
	}

	// Formula-level failures need a live session.
	code, body := do(t, ts, "POST", "/v1/sessions", OpenRequest{System: "muddy:2"}, "")
	if code != http.StatusCreated {
		t.Fatalf("open: %d: %s", code, body)
	}
	sid := decode[SessionState](t, body).Session
	if code, body = do(t, ts, "POST", "/v1/sessions/"+sid+"/eval", EvalRequest{Formulas: []string{"K0 ("}}, ""); code != http.StatusBadRequest {
		t.Errorf("unparsable formula: status %d: %s", code, body)
	}
	if code, body = do(t, ts, "POST", "/v1/sessions/"+sid+"/eval", EvalRequest{}, ""); code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d: %s", code, body)
	}
	big := make([]string, maxBatch+1)
	for i := range big {
		big[i] = "muddy0"
	}
	if code, body = do(t, ts, "POST", "/v1/sessions/"+sid+"/eval", EvalRequest{Formulas: big}, ""); code != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d: %s", code, body)
	}
	// Semantic failure: agent out of range is a 422 from the evaluator.
	if code, body = do(t, ts, "POST", "/v1/sessions/"+sid+"/eval", EvalRequest{Formulas: []string{"K7 muddy0"}}, ""); code != http.StatusUnprocessableEntity {
		t.Errorf("agent out of range: status %d: %s", code, body)
	}
}

// TestDedupeReplaysStoredBytes asserts the single-flight idempotency
// semantics end to end: concurrent duplicates of one announce produce one
// chain link and byte-identical responses, and the dedupe-hit counter
// accounts for every duplicate.
func TestDedupeReplaysStoredBytes(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code, body := do(t, ts, "POST", "/v1/sessions", OpenRequest{System: "muddy:3"}, "")
	if code != http.StatusCreated {
		t.Fatalf("open: %d: %s", code, body)
	}
	sid := decode[SessionState](t, body).Session

	const dup = 8
	bodies := make([][]byte, dup)
	codes := make([]int, dup)
	var wg sync.WaitGroup
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], bodies[i] = do(t, ts, "POST", "/v1/sessions/"+sid+"/announce",
				AnnounceRequest{Formula: "muddy0 | muddy1 | muddy2"}, "announce-father")
		}(i)
	}
	wg.Wait()
	for i := 0; i < dup; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("duplicate %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("duplicate %d body differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	st := decode[SessionState](t, bodies[0])
	if st.Link != 1 {
		t.Fatalf("duplicates advanced the chain: %+v", st)
	}
	stats := s.StatsSnapshot()
	if stats.Announces != 1 {
		t.Fatalf("announce executed %d times, want 1", stats.Announces)
	}
	if stats.DedupeHits != dup-1 {
		t.Fatalf("dedupe hits %d, want %d", stats.DedupeHits, dup-1)
	}

	// A later retry with the same key replays the stored response without
	// touching the (already advanced) session.
	code, body = do(t, ts, "POST", "/v1/sessions/"+sid+"/announce",
		AnnounceRequest{Formula: "muddy0 | muddy1 | muddy2"}, "announce-father")
	if code != http.StatusOK || !bytes.Equal(body, bodies[0]) {
		t.Fatalf("late duplicate: status %d body %s", code, body)
	}
	if got := s.StatsSnapshot().Announces; got != 1 {
		t.Fatalf("late duplicate re-executed: %d announces", got)
	}
}

func TestDedupeWindowEviction(t *testing.T) {
	d := newDedupeWindow(2)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		e, first := d.begin(key)
		if !first {
			t.Fatalf("key %s already present", key)
		}
		d.finish(key, e, http.StatusOK, nil, []byte("{}"), false)
	}
	if n := d.size(); n > 2 {
		t.Fatalf("window holds %d keys, max 2", n)
	}
	// Transient responses are never remembered.
	e, _ := d.begin("transient")
	d.finish("transient", e, http.StatusTooManyRequests, nil, nil, true)
	if _, first := d.begin("transient"); !first {
		t.Fatal("transient entry was remembered")
	}
}

// TestAdmissionControl fills the compute slots and asserts overload is
// shed with 429 + Retry-After instead of queueing, and that a shed
// request carrying an idempotency key is retryable (not remembered).
func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{Queue: 2})
	s.sem <- struct{}{}
	s.sem <- struct{}{}

	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions", bytes.NewReader([]byte(`{"system":"muddy:2"}`)))
	req.Header.Set("Idempotency-Key", "shed-then-retry")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over capacity: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if got := s.StatsSnapshot().Shed; got != 1 {
		t.Fatalf("shed counter %d, want 1", got)
	}

	<-s.sem
	<-s.sem
	code, body := do(t, ts, "POST", "/v1/sessions", OpenRequest{System: "muddy:2"}, "shed-then-retry")
	if code != http.StatusCreated {
		t.Fatalf("retry after shed: status %d: %s (shed response was cached)", code, body)
	}
}

// TestPanicRecovery: a panicking handler becomes a 500 and the daemon
// keeps serving; under an idempotency key the panic response is transient,
// so a retry re-executes instead of replaying the failure forever.
func TestPanicRecovery(t *testing.T) {
	s := New(Config{})
	boom := func(w http.ResponseWriter, r *http.Request) { panic("poisoned request") }

	rec := httptest.NewRecorder()
	s.withRecover(boom)(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("recovered panic: status %d", rec.Code)
	}
	if got := s.panics.Load(); got != 1 {
		t.Fatalf("panics counter %d, want 1", got)
	}

	calls := 0
	flaky := s.withDedupe(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			panic("first time hurts")
		}
		writeJSON(w, http.StatusOK, map[string]int{"call": calls})
	})
	req := httptest.NewRequest("POST", "/x", nil)
	req.Header.Set("Idempotency-Key", "flaky")
	rec = httptest.NewRecorder()
	flaky(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("deduped panic: status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	flaky(rec, req.Clone(req.Context()))
	if rec.Code != http.StatusOK || calls != 2 {
		t.Fatalf("retry after panic: status %d calls %d", rec.Code, calls)
	}
}

func TestDrainingRefusesCompute(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.draining.Store(true)
	code, body := do(t, ts, "POST", "/v1/sessions", OpenRequest{System: "muddy:2"}, "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining open: status %d: %s", code, body)
	}
	code, body = do(t, ts, "GET", "/healthz", nil, "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", code)
	}
	if m := decode[map[string]string](t, body); m["status"] != "draining" {
		t.Fatalf("healthz body: %v", m)
	}
}

func TestSessionGet(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := do(t, ts, "POST", "/v1/sessions", OpenRequest{System: "muddy:2"}, "")
	if code != http.StatusCreated {
		t.Fatalf("open: %d: %s", code, body)
	}
	opened := decode[SessionState](t, body)

	code, body = do(t, ts, "GET", "/v1/sessions/"+opened.Session, nil, "")
	if code != http.StatusOK {
		t.Fatalf("get: %d: %s", code, body)
	}
	if got := decode[SessionState](t, body); got != opened {
		t.Fatalf("get state %+v, want %+v", got, opened)
	}

	code, _ = do(t, ts, "GET", "/v1/sessions/nope", nil, "")
	if code != http.StatusNotFound {
		t.Fatalf("get missing session: %d", code)
	}
}

func TestIdleEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{SessionTTL: time.Minute})
	base := time.Unix(1700000000, 0)
	s.now = func() time.Time { return base }
	code, body := do(t, ts, "POST", "/v1/sessions", OpenRequest{System: "muddy:2"}, "")
	if code != http.StatusCreated {
		t.Fatalf("open: %d: %s", code, body)
	}
	sid := decode[SessionState](t, body).Session

	s.evictIdle(base.Add(30 * time.Second))
	if s.session(sid) == nil {
		t.Fatal("session evicted before its TTL")
	}
	s.evictIdle(base.Add(2 * time.Minute))
	if s.session(sid) != nil {
		t.Fatal("idle session survived eviction")
	}
	if got := s.StatsSnapshot().Evicted; got != 1 {
		t.Fatalf("evicted counter %d, want 1", got)
	}
}

// TestSaveLoadSessions drains one daemon's sessions to disk and restores
// them in a fresh daemon: the replayed chains must match their records
// (worlds, quotient blocks, marked world) and serve identical verdicts;
// a tampered record is refused rather than served wrong.
func TestSaveLoadSessions(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{StateDir: dir})

	code, body := do(t, ts1, "POST", "/v1/sessions", OpenRequest{System: "muddy:3"}, "")
	if code != http.StatusCreated {
		t.Fatalf("open muddy: %d: %s", code, body)
	}
	muddySid := decode[SessionState](t, body).Session
	if code, body = do(t, ts1, "POST", "/v1/sessions/"+muddySid+"/announce",
		AnnounceRequest{Formula: "muddy0 | muddy1 | muddy2"}, ""); code != http.StatusOK {
		t.Fatalf("announce: %d: %s", code, body)
	}
	code, body = do(t, ts1, "POST", "/v1/sessions", OpenRequest{System: "r2d2"}, "")
	if code != http.StatusCreated {
		t.Fatalf("open r2d2: %d: %s", code, body)
	}
	r2d2Sid := decode[SessionState](t, body).Session
	if code, body = do(t, ts1, "POST", "/v1/sessions/"+r2d2Sid+"/announce",
		AnnounceRequest{Formula: "sent"}, ""); code != http.StatusOK {
		t.Fatalf("announce sent: %d: %s", code, body)
	}
	code, body = do(t, ts1, "POST", "/v1/sessions/"+muddySid+"/eval",
		EvalRequest{Formulas: []string{"K0 muddy0"}, Worlds: true}, "")
	if code != http.StatusOK {
		t.Fatalf("pre-drain eval: %d: %s", code, body)
	}
	before := body

	if _, err := s1.SaveSessions(); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Config{StateDir: dir})
	n, err := s2.LoadSessions()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("restored %d sessions, want 2", n)
	}
	code, body = do(t, ts2, "POST", "/v1/sessions/"+muddySid+"/eval",
		EvalRequest{Formulas: []string{"K0 muddy0"}, Worlds: true}, "")
	if code != http.StatusOK {
		t.Fatalf("post-restore eval: %d: %s", code, body)
	}
	if !bytes.Equal(body, before) {
		t.Fatalf("restored session serves different verdicts:\n%s\nvs\n%s", body, before)
	}
	// New sessions never collide with restored IDs.
	code, body = do(t, ts2, "POST", "/v1/sessions", OpenRequest{System: "muddy:2"}, "")
	if code != http.StatusCreated {
		t.Fatalf("open after restore: %d: %s", code, body)
	}
	if fresh := decode[SessionState](t, body).Session; fresh == muddySid || fresh == r2d2Sid {
		t.Fatalf("fresh session reused a restored ID: %s", fresh)
	}

	// Tamper with the record: the mismatching chain must be skipped.
	path := filepath.Join(dir, "sessions.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sf stateFile
	if err := json.Unmarshal(data, &sf); err != nil {
		t.Fatal(err)
	}
	sf.Sessions[0].Worlds++
	data, err = json.Marshal(sf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, _ := newTestServer(t, Config{StateDir: dir})
	n, err = s3.LoadSessions()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d sessions from tampered state, want 1", n)
	}

	// A missing state file restores nothing, without error.
	s4, _ := newTestServer(t, Config{StateDir: t.TempDir()})
	if n, err = s4.LoadSessions(); err != nil || n != 0 {
		t.Fatalf("missing state file: restored %d, err %v", n, err)
	}
}

// TestServeShutdown exercises the real listener path: serve, answer, then
// drain — Serve returns cleanly and the state file lands on disk.
func TestServeShutdown(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{StateDir: dir, SessionTTL: time.Minute})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()

	url := "http://" + l.Addr().String()
	resp, err := http.Post(url+"/v1/sessions", "application/json",
		bytes.NewReader([]byte(`{"system":"muddy:2"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open over listener: %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after shutdown")
	}
	if _, err := os.Stat(filepath.Join(dir, "sessions.json")); err != nil {
		t.Fatalf("drain did not persist sessions: %v", err)
	}
}

func TestSystemsAndStatsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := do(t, ts, "GET", "/v1/systems", nil, "")
	if code != http.StatusOK {
		t.Fatalf("systems: %d", code)
	}
	infos := decode[[]SystemInfo](t, body)
	specs := make(map[string]bool, len(infos))
	for _, in := range infos {
		specs[in.Spec] = true
	}
	for _, want := range []string{"muddy:N", "attack", "r2d2", "scenario:bounded", "scenario:dup"} {
		if !specs[want] {
			t.Errorf("systems listing misses %q: %v", want, specs)
		}
	}

	code, body = do(t, ts, "POST", "/v1/sessions", OpenRequest{System: "muddy:2"}, "")
	if code != http.StatusCreated {
		t.Fatalf("open: %d: %s", code, body)
	}
	code, body = do(t, ts, "GET", "/v1/sessions", nil, "")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if lst := decode[[]SessionState](t, body); len(lst) != 1 || lst[0].System != "muddy:2" {
		t.Fatalf("session list: %s", body)
	}
	code, body = do(t, ts, "GET", "/v1/stats", nil, "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st := decode[Stats](t, body); st.Sessions != 1 || st.Opened != 1 {
		t.Fatalf("stats: %s", body)
	}
}
